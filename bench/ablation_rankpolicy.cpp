// Ablation: Algorithm 1's cycle tie-break (minimum in-degree, then maximum
// out-degree) vs a naive arbitrary pick. The paper's rationale: ranking the
// address "with the most dependencies" first makes its transaction order
// authoritative for more downstream addresses, reducing the sorting
// anomalies that end in aborts.
#include <cstdio>

#include "bench/bench_util.h"
#include "cc/nezha/nezha_scheduler.h"
#include "runtime/concurrent_executor.h"
#include "workload/kv_workload.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

namespace {

double MeasureAborts(RankPolicy policy,
                     const std::vector<ReadWriteSet>& rwsets) {
  NezhaOptions options;
  options.rank_policy = policy;
  NezhaScheduler scheduler(options);
  return scheduler.BuildSchedule(rwsets)->AbortRate();
}

}  // namespace

int main() {
  const std::size_t txs_count = EnvSize("NEZHA_BENCH_TXS", 400);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 10);

  Header("Ablation — Algorithm 1 rank tie-break policy",
         "abort rates: paper policy vs naive victim, per workload & skew");

  Row({"workload", "skew", "alg.1 aborts", "naive aborts", "delta"});
  for (double skew : {0.8, 0.9, 1.0}) {
    double smart = 0, naive = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      WorkloadConfig config;
      config.num_accounts = 10'000;
      config.skew = skew;
      SmallBankWorkload workload(config, 600 + rep);
      StateDB db;
      const StateSnapshot snap = db.MakeSnapshot(0);
      const auto txs = workload.MakeBatch(txs_count);
      const auto exec = ExecuteBatchSerial(snap, txs);
      smart += MeasureAborts(RankPolicy::kNezha, exec.rwsets);
      naive += MeasureAborts(RankPolicy::kNaive, exec.rwsets);
    }
    const double r = static_cast<double>(reps);
    Row({"smallbank", Fmt(skew, 1), FmtPct(smart / r), FmtPct(naive / r),
         Fmt((naive - smart) / r * 100, 2) + " pp"});
  }
  for (double skew : {0.8, 0.9, 1.0}) {
    double smart = 0, naive = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      KVWorkloadConfig config;
      config.num_keys = 500;
      config.skew = skew;
      config.reads_per_tx = 3;
      config.writes_per_tx = 2;
      config.blind_write_fraction = 0.5;
      KVWorkload workload(config, 700 + rep);
      const auto rwsets = workload.MakeBatch(txs_count);
      smart += MeasureAborts(RankPolicy::kNezha, rwsets);
      naive += MeasureAborts(RankPolicy::kNaive, rwsets);
    }
    const double r = static_cast<double>(reps);
    Row({"kv-blind", Fmt(skew, 1), FmtPct(smart / r), FmtPct(naive / r),
         Fmt((naive - smart) / r * 100, 2) + " pp"});
  }
  std::printf(
      "\nBoth policies yield valid (serializable) schedules; the tie-break "
      "only\naffects which transactions abort. Measured honestly: on these "
      "workloads\nthe paper's most-dependencies heuristic aborts slightly "
      "MORE than the\nnaive smallest-subscript pick (the paper never "
      "evaluates this choice in\nisolation) — its real role is "
      "determinism across replicas, which both\npolicies provide.\n");
  return 0;
}
