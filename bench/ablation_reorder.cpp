// Ablation: the §IV.D reordering enhancement.
//
// SmallBank never issues blind writes (every written address is also read),
// so the write-write rescue path is idle there — Fig. 11's Nezha-vs-CG gap
// comes from Algorithm 2's read-writer reassignment instead. This bench
// drives the synthetic KV workload with multi-address blind writes (the
// exact Fig. 8 shape) and sweeps the blind-write fraction: the enhancement's
// benefit (aborts avoided) grows with the fraction of reorderable
// write-write conflicts.
#include <cstdio>

#include "bench/bench_util.h"
#include "cc/nezha/nezha_scheduler.h"
#include "workload/kv_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t txs_count = EnvSize("NEZHA_BENCH_TXS", 400);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 10);

  Header("Ablation — §IV.D reordering on blind-write workloads",
         "KV workload: 2 reads + 2 writes per tx, 1k keys, Zipf 0.9");

  Row({"blind frac", "aborts (on)", "aborts (off)", "rescued", "reduction"});
  for (double blind : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    double with_reorder = 0, without = 0, rescued = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      KVWorkloadConfig config;
      config.num_keys = 1000;
      config.skew = 0.9;
      config.reads_per_tx = 2;
      config.writes_per_tx = 2;
      config.blind_write_fraction = blind;
      KVWorkload workload(config, 300 + rep);
      const auto rwsets = workload.MakeBatch(txs_count);

      NezhaScheduler on;
      NezhaOptions off_options;
      off_options.enable_reordering = false;
      NezhaScheduler off(off_options);
      auto a = on.BuildSchedule(rwsets);
      auto b = off.BuildSchedule(rwsets);
      with_reorder += a->AbortRate();
      without += b->AbortRate();
      rescued += static_cast<double>(on.metrics().reordered_txs);
    }
    const double r = static_cast<double>(reps);
    const double reduction =
        without > 0 ? (without - with_reorder) / without : 0;
    Row({Fmt(blind, 2), FmtPct(with_reorder / r), FmtPct(without / r),
         Fmt(rescued / r, 1), FmtPct(reduction)});
  }

  std::printf(
      "\nShape check: with no blind writes the two variants coincide "
      "(SmallBank's\nregime); as blind multi-address writes appear, "
      "reordering rescues\ntransactions the plain algorithm would abort.\n");
  return 0;
}
