// Extension bench: heterogeneous contract traffic through the schedulers.
//
// The paper evaluates pure SmallBank; a production chain carries a mix.
// This bench runs SmallBank + raw-KV (blind writes) + token (reverts)
// traffic through every scheme and reports latency, abort composition, and
// the §IV.D rescue count — blind writes are where the enhancement finally
// earns its keep on-chain.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "cc/nezha/nezha_scheduler.h"
#include "common/stopwatch.h"
#include "node/full_node.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "workload/mixed_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t txs_count = EnvSize("NEZHA_BENCH_TXS", 1600);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 5);

  Header("Mixed-contract traffic — SmallBank + KV (blind writes) + token",
         "equal thirds, 1k entities per contract, skew 0.9, 1600 txs");

  MixedWorkloadConfig config;
  config.smallbank_accounts = 1000;
  config.kv_keys = 1000;
  config.token_holders = 1000;
  config.skew = 0.9;

  Row({"scheme", "cc(ms)", "reverted", "cc-aborted", "committed",
       "rescued", "max group"},
      13);
  for (SchemeKind kind : {SchemeKind::kOcc, SchemeKind::kCg,
                          SchemeKind::kNezha, SchemeKind::kNezhaNoReorder}) {
    double cc_ms = 0, reverted = 0, aborted = 0, committed = 0, rescued = 0;
    std::size_t max_group = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      MixedWorkload workload(config, 800 + rep);
      StateDB db;
      MixedWorkload::InitState(db, config, 200);  // modest funds: reverts
      const StateSnapshot snap = db.MakeSnapshot(0);
      const auto txs = workload.MakeBatch(txs_count);
      const auto exec = ExecuteBatchSerial(snap, txs);
      std::size_t execution_reverts = 0;
      for (const auto& rw : exec.rwsets) execution_reverts += rw.ok ? 0 : 1;

      auto scheduler = MakeScheduler(kind);
      Stopwatch watch;
      auto schedule = scheduler->BuildSchedule(exec.rwsets);
      cc_ms += watch.ElapsedMillis();
      if (!schedule.ok()) return 1;
      reverted += static_cast<double>(execution_reverts);
      aborted +=
          static_cast<double>(schedule->NumAborted() - execution_reverts);
      committed += static_cast<double>(schedule->NumCommitted());
      rescued += static_cast<double>(scheduler->metrics().reordered_txs);

      ThreadPool pool(0);
      StateDB state;
      const CommitStats stats =
          CommitSchedule(pool, state, *schedule, exec.rwsets);
      max_group = std::max(max_group, stats.max_group);
    }
    const double r = static_cast<double>(reps);
    Row({SchemeName(kind), Fmt(cc_ms / r, 2), Fmt(reverted / r, 0),
         Fmt(aborted / r, 0), Fmt(committed / r, 0), Fmt(rescued / r, 1),
         FmtInt(max_group)},
        13);
  }

  std::printf(
      "\nReverted = failed at execution (token overdrafts) — identical for "
      "every\nscheme. CC-aborted = serializability victims. Nezha rescues "
      "blind\nmulti-writes (KV kMultiSet) via §IV.D — visible as a lower "
      "cc-aborted\ncount than nezha-noreorder — while keeping cc two orders "
      "below CG.\n");
  return 0;
}
