// Sustained-load latency bench: every scheme under steady transaction
// arrival through mempool -> mining -> confirmed queue -> pipeline, with
// exact per-transaction end-to-end commit-latency percentiles from the
// lifecycle tracer (bench/sustained_load.h; docs/OBSERVABILITY.md).
//
// Knobs: NEZHA_BENCH_BLOCK_SIZE (200), NEZHA_BENCH_SUSTAINED_CONCURRENCY
// (4), NEZHA_BENCH_SUSTAINED_EPOCHS (6), NEZHA_BENCH_SUSTAINED_SKEW x100
// (60). `--json <path>` appends machine-readable results.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/sustained_load.h"

using namespace nezha;
using namespace nezha::bench;

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);

  SustainedLoadConfig base;
  base.block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  base.block_concurrency = EnvSize("NEZHA_BENCH_SUSTAINED_CONCURRENCY", 4);
  base.epochs = EnvSize("NEZHA_BENCH_SUSTAINED_EPOCHS", 6);
  base.skew =
      static_cast<double>(EnvSize("NEZHA_BENCH_SUSTAINED_SKEW", 60)) / 100.0;

  Header("Sustained load — client-observed commit latency",
         "steady arrival, open pipeline; exact per-tx e2e percentiles");
  std::printf("block %zu x %zu blocks/epoch, %zu epochs, skew %.2f\n\n",
              base.block_size, base.block_concurrency, base.epochs,
              base.skew);

  JsonReport report("sustained_load");
  Row({"scheme", "tps", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)",
       "aborts"});

  const SchemeKind kSchemes[] = {SchemeKind::kSerial, SchemeKind::kOcc,
                                 SchemeKind::kCg, SchemeKind::kNezha,
                                 SchemeKind::kNezhaNoReorder};
  for (const SchemeKind kind : kSchemes) {
    SustainedLoadConfig config = base;
    config.scheme = kind;
    const auto run = RunSustainedLoad(config);
    if (!run.ok()) {
      std::fprintf(stderr, "sustained_load: %s failed: %s\n",
                   SchemeName(kind), run.status().message().c_str());
      return 1;
    }

    JsonResult result;
    result.bench = "sustained_load";
    result.scheme = SchemeName(kind);
    result.params.Set("workload", "smallbank");
    result.params.Set("skew", config.skew);
    result.params.Set("block_size", config.block_size);
    result.params.Set("block_concurrency", config.block_concurrency);
    result.params.Set("epochs", config.epochs);
    result.params.Set("seed", config.seed);
    result.throughput_tps = run->throughput_tps;
    result.latency_ms = run->e2e_mean_ms;
    result.abort_rate = run->AbortRate();
    result.extra.Set("e2e_p50_ms", run->e2e_p50_ms);
    result.extra.Set("e2e_p95_ms", run->e2e_p95_ms);
    result.extra.Set("e2e_p99_ms", run->e2e_p99_ms);
    result.extra.Set("e2e_max_ms", run->e2e_max_ms);
    result.extra.Set("e2e_samples", run->sampled);
    result.extra.Set("wall_ms", run->wall_ms);
    report.Add(result);

    Row({SchemeName(kind), Fmt(run->throughput_tps, 1),
         Fmt(run->e2e_p50_ms, 2), Fmt(run->e2e_p95_ms, 2),
         Fmt(run->e2e_p99_ms, 2), Fmt(run->e2e_max_ms, 2),
         FmtPct(run->AbortRate())});
  }

  if (!json_path.empty() && !report.WriteTo(json_path)) {
    std::fprintf(stderr, "sustained_load: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  return 0;
}
