// Fig. 10 reproduction: latency of each concurrency-control sub-phase at
// block concurrency 4, skew 0.5 and 0.6.
//
// CG phases:    graph construction / cycle detection+removal / topo sorting
// Nezha phases: ACG construction  / sorting-rank division    / tx sorting
// plus the measured commitment latency for both.
#include <cstdio>

#include "bench/bench_util.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "common/stopwatch.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t omega = EnvSize("NEZHA_BENCH_CONCURRENCY", 4);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 5);

  Header("Fig. 10 — per-sub-phase concurrency-control latency (measured)",
         "block concurrency 4 (800 txs), skew 0.5 / 0.6");

  ThreadPool pool(0);
  for (double skew : {0.5, 0.6}) {
    std::printf("\n--- skew = %.1f ---\n", skew);
    Row({"scheme", "construct(ms)", "cycle/rank(ms)", "sort(ms)",
         "commit(ms)", "cycles", "aborts"});

    for (const char* scheme : {"nezha", "cg"}) {
      double construct = 0, cycle = 0, sort = 0, commit = 0;
      std::uint64_t cycles = 0, aborts = 0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        WorkloadConfig config;
        config.num_accounts = 10'000;
        config.skew = skew;
        SmallBankWorkload workload(config, 500 + rep);
        StateDB db;
        const StateSnapshot snap = db.MakeSnapshot(0);
        const auto txs = workload.MakeBatch(omega * block_size);
        const auto exec = ExecuteBatchSerial(snap, txs);

        std::unique_ptr<Scheduler> scheduler;
        if (std::string(scheme) == "nezha") {
          scheduler = std::make_unique<NezhaScheduler>();
        } else {
          scheduler = std::make_unique<CGScheduler>();
        }
        auto schedule = scheduler->BuildSchedule(exec.rwsets);
        if (!schedule.ok()) return 1;
        const SchedulerMetrics& m = scheduler->metrics();
        construct += m.construction_us / 1000.0;
        cycle += m.cycle_us / 1000.0;
        sort += m.sorting_us / 1000.0;
        cycles += m.cycles_found;
        aborts += schedule->NumAborted();

        Stopwatch watch;
        StateDB state;
        CommitSchedule(pool, state, *schedule, exec.rwsets);
        commit += watch.ElapsedMillis();
      }
      const double r = static_cast<double>(reps);
      Row({scheme, Fmt(construct / r, 3), Fmt(cycle / r, 3), Fmt(sort / r, 3),
           Fmt(commit / r, 3), FmtInt(cycles / reps), FmtInt(aborts / reps)});
    }
  }
  std::printf(
      "\nShape check: CG's construction dominates at skew 0.5 and its cycle\n"
      "detection+removal explodes at 0.6 (Johnson enumeration); Nezha's "
      "graph\nconstruction is negligible and its sorting stays stable — "
      "Fig. 10's story.\n");
  return 0;
}
