// Google-benchmark microbenchmarks for the core primitives: ACG
// construction, rank division, transaction sorting, the full Nezha/CG
// pipelines, Johnson enumeration, MPT updates, SHA-256 and the Zipfian
// sampler.
#include <benchmark/benchmark.h>

#include "analysis/det_checkpoint.h"
#include "analysis/schedule_verifier.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/acg.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/parallel_executor.h"
#include "cc/nezha/rank_division.h"
#include "cc/nezha/tx_sorter.h"
#include "common/sha256.h"
#include "common/zipfian.h"
#include "fault/fault.h"
#include "graph/johnson.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/tx_lifecycle.h"
#include "runtime/concurrent_executor.h"
#include "storage/mpt.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

std::vector<ReadWriteSet> MakeRWSets(std::size_t n, double skew,
                                     std::uint64_t seed = 42) {
  WorkloadConfig config;
  config.num_accounts = 10'000;
  config.skew = skew;
  SmallBankWorkload workload(config, seed);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(n);
  return ExecuteBatchSerial(snap, txs).rwsets;
}

void BM_AcgConstruction(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AddressConflictGraph::Build(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AcgConstruction)
    ->Args({400, 0})
    ->Args({2400, 0})
    ->Args({400, 8})
    ->Args({2400, 8});

// Sharded parallel ACG construction (docs/PARALLELISM.md) at 1/2/4/8 pool
// threads on the epoch-sized 4096-tx batch. On a single-core runner the
// interesting signal is the dispatch overhead vs BM_AcgConstruction; on
// real multi-core hardware the 8-thread point shows the shard scaling.
void BM_ParallelAcgBuild(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  ThreadPool pool(static_cast<std::size_t>(state.range(2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AddressConflictGraph::BuildSharded(rwsets, pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelAcgBuild)
    ->Args({4096, 8, 1})
    ->Args({4096, 8, 2})
    ->Args({4096, 8, 4})
    ->Args({4096, 8, 8});

// Group-parallel schedule execution (apply-recorded mode): per-iteration
// cost of draining one 4096-tx Nezha schedule's commit groups into a fresh
// StateDB through the write buffer.
void BM_GroupParallelExecute(benchmark::State& state) {
  const auto rwsets = MakeRWSets(4096, state.range(0) / 10.0);
  NezhaScheduler scheduler;
  const auto schedule = scheduler.BuildSchedule(rwsets);
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    StateDB db;
    const StateSnapshot snap = db.MakeSnapshot(0);
    benchmark::DoNotOptimize(
        ExecuteScheduleParallel(pool, db, snap, *schedule, rwsets));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(schedule->NumCommitted()));
}
BENCHMARK(BM_GroupParallelExecute)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 8});

void BM_RankDivision(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  const auto acg = AddressConflictGraph::Build(rwsets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSortingRanks(acg.dependencies()));
  }
}
BENCHMARK(BM_RankDivision)->Args({2400, 0})->Args({2400, 8});

void BM_TxSorting(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  const auto acg = AddressConflictGraph::Build(rwsets);
  const auto ranks = ComputeSortingRanks(acg.dependencies());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SortTransactions(acg, ranks, rwsets.size(), {}));
  }
}
BENCHMARK(BM_TxSorting)->Args({2400, 0})->Args({2400, 8});

void BM_NezhaFullSchedule(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  NezhaScheduler scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.BuildSchedule(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NezhaFullSchedule)
    ->Args({400, 2})
    ->Args({2400, 2})
    ->Args({400, 8})
    ->Args({2400, 8})
    ->Args({4096, 2})
    ->Args({4096, 8});

// Same schedule build with the metrics registry kill-switched off: the
// delta between this and BM_NezhaFullSchedule is the observability
// overhead (acceptance bar: < 3%).
void BM_NezhaFullScheduleMetricsOff(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  NezhaScheduler scheduler;
  obs::SetMetricsEnabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.BuildSchedule(rwsets));
  }
  obs::SetMetricsEnabled(true);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NezhaFullScheduleMetricsOff)
    ->Args({400, 2})
    ->Args({2400, 2})
    ->Args({400, 8})
    ->Args({2400, 8});

// Full schedule build with determinism checkpointing on (kAcg/kRank/kSort
// recorded per build): the delta against BM_NezhaFullSchedule at the same
// Args is the auditor's end-to-end overhead (acceptance bar: < 2% on the
// 4096-tx points; docs/ANALYSIS.md "Determinism auditor").
void BM_DetCheckpoint(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  NezhaScheduler scheduler;
  analysis::DetCheckpointRecorder& det =
      analysis::DetCheckpointRecorder::Global();
  det.SetEnabled(true);
  det.Clear();
  EpochId epoch = 0;
  for (auto _ : state) {
    det.BeginEpoch(++epoch, "bench");
    benchmark::DoNotOptimize(scheduler.BuildSchedule(rwsets));
  }
  det.SetEnabled(std::nullopt);
  det.Clear();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetCheckpoint)
    ->Args({2400, 8})
    ->Args({4096, 2})
    ->Args({4096, 8});

// Isolates one Record() call — SHA-256 over the canonical encoding of a
// 4096-tx schedule plus the ring update — the unit the pipeline pays at
// each stage boundary. Like BM_FlightRecorderRecord, the isolated cost
// resolves overhead ratios that subtracting two end-to-end timings cannot.
void BM_DetCheckpointRecord(benchmark::State& state) {
  const auto rwsets = MakeRWSets(4096, state.range(0) / 10.0);
  NezhaScheduler scheduler;
  const auto schedule = scheduler.BuildSchedule(rwsets);
  const std::string canonical = CanonicalScheduleEncoding(*schedule);
  analysis::DetCheckpointRecorder& det =
      analysis::DetCheckpointRecorder::Global();
  det.SetEnabled(true);
  det.Clear();
  det.BeginEpoch(1, "bench");
  for (auto _ : state) {
    det.Record(analysis::DetStage::kSort, canonical);
  }
  det.SetEnabled(std::nullopt);
  det.Clear();
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(canonical.size()));
}
BENCHMARK(BM_DetCheckpointRecord)->Arg(2)->Arg(8);

// Full schedule build PLUS one epoch flight record (what FullNode adds per
// epoch): the delta against BM_NezhaFullSchedule at the same Args is the
// flight-recorder overhead (acceptance bar: < 2% on the 4096-tx points).
void BM_NezhaFullScheduleFlightRecorded(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  NezhaScheduler scheduler;
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Clear();
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    auto schedule = scheduler.BuildSchedule(rwsets);
    obs::EpochFlightRecord record;
    record.epoch = ++epoch;
    record.scheme = "nezha";
    record.txs = static_cast<std::uint32_t>(rwsets.size());
    record.aborted =
        static_cast<std::uint32_t>(schedule->attribution.aborts.size());
    record.committed = record.txs - record.aborted;
    record.attribution = std::move(schedule->attribution);
    recorder.Record(std::move(record));
    benchmark::DoNotOptimize(recorder.TotalRecorded());
  }
  recorder.Clear();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NezhaFullScheduleFlightRecorded)
    ->Args({2400, 8})
    ->Args({4096, 2})
    ->Args({4096, 8});

// Isolates the per-epoch cost the recorder adds on top of a 4096-tx
// BuildSchedule: build one schedule up front, then time only the record
// construction + Record (copying the attribution, an upper bound — the node
// moves it). Overhead = this time / BM_NezhaFullSchedule/4096/N time; the
// ratio resolves well below 1% where subtracting two ~7 ms end-to-end
// timings cannot on a shared machine.
void BM_FlightRecorderRecord(benchmark::State& state) {
  const auto rwsets = MakeRWSets(4096, state.range(0) / 10.0);
  NezhaScheduler scheduler;
  const auto schedule = scheduler.BuildSchedule(rwsets);
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Clear();
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    obs::EpochFlightRecord record;
    record.epoch = ++epoch;
    record.scheme = "nezha";
    record.txs = static_cast<std::uint32_t>(rwsets.size());
    record.aborted =
        static_cast<std::uint32_t>(schedule->attribution.aborts.size());
    record.committed = record.txs - record.aborted;
    record.attribution = schedule->attribution;
    recorder.Record(std::move(record));
    benchmark::DoNotOptimize(recorder.TotalRecorded());
  }
  recorder.Clear();
}
BENCHMARK(BM_FlightRecorderRecord)->Arg(2)->Arg(8);

// Isolates the per-epoch lifecycle-tracer cost on one 4096-tx epoch: every
// stamp FullNode's pipeline issues — BeginEpoch (keying + ingress claim),
// the kConfirmed / kScheduled / kExecuted / kCommitted batch stamps, and
// one MarkAborted per scheduler abort. Overhead = this time /
// BM_NezhaFullSchedule/4096/N time (acceptance bar: < 2%); like
// BM_FlightRecorderRecord, the isolated ratio resolves where subtracting
// two end-to-end timings cannot.
void BM_TxLifecycleStamp(benchmark::State& state) {
  const std::size_t n = 4096;
  const auto rwsets = MakeRWSets(n, state.range(0) / 10.0);
  NezhaScheduler scheduler;
  const auto schedule = scheduler.BuildSchedule(rwsets);
  std::vector<std::uint64_t> keys(n);
  for (std::size_t t = 0; t < n; ++t) keys[t] = t * 0x9E3779B9u + 1;
  std::vector<std::pair<std::uint32_t, std::uint8_t>> aborts;
  for (const obs::AbortRecord& r : schedule->attribution.aborts) {
    aborts.emplace_back(r.tx, static_cast<std::uint8_t>(r.kind));
  }
  obs::TxLifecycleTracer& tracer = obs::Lifecycle();
  tracer.Clear();
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    tracer.BeginEpoch(++epoch, "nezha", keys);
    tracer.StampAll(obs::TxStage::kConfirmed);
    tracer.StampAll(obs::TxStage::kScheduled);
    tracer.MarkAbortedBatch(aborts);
    tracer.StampAll(obs::TxStage::kExecuted);
    tracer.StampAll(obs::TxStage::kCommitted);
    benchmark::DoNotOptimize(tracer.CurrentEpochSize());
  }
  tracer.Clear();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TxLifecycleStamp)->Arg(2)->Arg(8);

// FinishEpoch alone (sorted-vector percentiles + histogram publishing +
// top-K selection) on the same 4096-tx epoch — the once-per-epoch rollup
// cost, reported separately from the stamp path above because it runs off
// the phase-critical path (after the report is assembled).
void BM_TxLifecycleFinish(benchmark::State& state) {
  const std::size_t n = 4096;
  std::vector<std::uint64_t> keys(n);
  for (std::size_t t = 0; t < n; ++t) keys[t] = t * 0x9E3779B9u + 1;
  obs::TxLifecycleTracer& tracer = obs::Lifecycle();
  tracer.Clear();
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    state.PauseTiming();
    tracer.BeginEpoch(++epoch, "nezha", keys);
    tracer.StampAll(obs::TxStage::kConfirmed);
    tracer.StampAll(obs::TxStage::kScheduled);
    tracer.StampAll(obs::TxStage::kExecuted);
    tracer.StampAll(obs::TxStage::kCommitted);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tracer.FinishEpoch());
  }
  tracer.Clear();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TxLifecycleFinish);

// The per-task profiler stamp alone: what every pool task pays while an
// epoch profiling window is open — two thread-CPU clock reads, two
// steady-clock reads, and one striped RecordTask push
// (docs/OBSERVABILITY.md "Pipeline profiler" overhead table). The window
// is re-opened every 32k iterations so the sample buffer never hits the
// drop cap (a dropped sample skips the push and would flatter the
// number); the BeginEpoch cost amortizes to noise. Acceptance bar:
// O(100 ns) per stamp, i.e. microseconds per epoch at the pipeline's
// tens-of-tasks-per-epoch fan-out.
void BM_ProfilerStamp(benchmark::State& state) {
  obs::PipelineProfiler& profiler = obs::Profiler();
  profiler.SetEnabled(true);
  profiler.Clear();
  const obs::StageId stage = obs::InternStage("bm_profiler_stage");
  const std::uint32_t tid = obs::CurrentThreadId();
  std::uint64_t epoch = 0;
  std::uint64_t i = 0;
  profiler.BeginEpoch(++epoch, "microbench", 8);
  for (auto _ : state) {
    if ((++i & 0x7FFF) == 0) profiler.BeginEpoch(++epoch, "microbench", 8);
    const double cpu_begin = obs::ThreadCpuUs();
    const double start_us = obs::PhaseTracer::NowUs();
    const double finish_us = obs::PhaseTracer::NowUs();
    obs::TaskSample sample;
    sample.stage = stage;
    sample.tid = tid;
    sample.enqueue_us = start_us;
    sample.start_us = start_us;
    sample.finish_us = finish_us;
    sample.cpu_us = obs::ThreadCpuUs() - cpu_begin;
    profiler.RecordTask(sample);
    benchmark::DoNotOptimize(sample.cpu_us);
  }
  profiler.FinishEpoch();
  profiler.Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerStamp);

// FinishEpoch alone on an epoch-sized sample set (one stamp per task of a
// 4096-task fan-out across 8 workers and 4 stages, plus the pipeline's
// stage spans): the once-per-epoch aggregation — stripe drain, per-stage
// rollup, exact wait percentiles, idle-gap scan, Prometheus publishing —
// runs AFTER the epoch report is assembled, off the phase-critical path,
// so this cost bounds reporting latency rather than pipeline latency.
void BM_ProfilerEpochFinish(benchmark::State& state) {
  obs::PipelineProfiler& profiler = obs::Profiler();
  profiler.SetEnabled(true);
  profiler.Clear();
  const std::size_t tasks = static_cast<std::size_t>(state.range(0));
  const obs::StageId stages[4] = {
      obs::InternStage("bm_finish_a"), obs::InternStage("bm_finish_b"),
      obs::InternStage("bm_finish_c"), obs::InternStage("bm_finish_d")};
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    state.PauseTiming();
    profiler.BeginEpoch(++epoch, "microbench", 8);
    for (std::size_t t = 0; t < tasks; ++t) {
      obs::TaskSample sample;
      sample.stage = stages[t & 3];
      sample.tid = static_cast<std::uint32_t>(t & 7);
      sample.enqueue_us = static_cast<double>(t);
      sample.start_us = sample.enqueue_us + 5;
      sample.finish_us = sample.start_us + 40;
      sample.cpu_us = 35;
      profiler.RecordTask(sample);
    }
    {
      obs::ProfileSpan span("bm_finish_span");
      benchmark::DoNotOptimize(epoch);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(profiler.FinishEpoch());
  }
  profiler.Clear();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_ProfilerEpochFinish)->Arg(64)->Arg(4096);

// The serializability oracle alone on one epoch-sized batch (4096 txs is
// the paper's largest block-size point): the cost the debug/ASan suites pay
// per BuildSchedule, and the denominator for docs/ANALYSIS.md §Overhead.
void BM_VerifySchedule(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  SetScheduleVerification(false);  // measure the oracle alone
  NezhaScheduler scheduler;
  const auto schedule = scheduler.BuildSchedule(rwsets);
  SetScheduleVerification(std::nullopt);
  analysis::VerifierOptions options;
  options.reordered = schedule->reordered;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::VerifySchedule(*schedule, rwsets, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VerifySchedule)
    ->Args({400, 2})
    ->Args({4096, 2})
    ->Args({4096, 8});

// Full build with the oracle hooked in (what a debug-build BuildSchedule
// costs); compare against BM_NezhaFullSchedule for the end-to-end overhead.
void BM_NezhaFullScheduleVerified(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  NezhaScheduler scheduler;
  SetScheduleVerification(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.BuildSchedule(rwsets));
  }
  SetScheduleVerification(std::nullopt);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NezhaFullScheduleVerified)
    ->Args({400, 2})
    ->Args({4096, 2})
    ->Args({4096, 8});

void BM_CgFullSchedule(benchmark::State& state) {
  const auto rwsets = MakeRWSets(static_cast<std::size_t>(state.range(0)),
                                 state.range(1) / 10.0);
  CGScheduler scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.BuildSchedule(rwsets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CgFullSchedule)->Args({400, 2})->Args({400, 8})->Args({1200, 6});

void BM_JohnsonCompleteGraph(benchmark::State& state) {
  const auto n = static_cast<Digraph::Vertex>(state.range(0));
  Digraph g(n);
  for (Digraph::Vertex u = 0; u < n; ++u) {
    for (Digraph::Vertex v = 0; v < n; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindElementaryCircuits(g));
  }
}
BENCHMARK(BM_JohnsonCompleteGraph)->Arg(5)->Arg(7)->Arg(8);

void BM_MptPut(benchmark::State& state) {
  MerklePatriciaTrie trie;
  std::uint64_t i = 0;
  for (auto _ : state) {
    trie.Put("key" + std::to_string(i++ % 100000), "value");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MptPut);

void BM_MptRootHash(benchmark::State& state) {
  MerklePatriciaTrie trie;
  for (int i = 0; i < state.range(0); ++i) {
    trie.Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Dirty one leaf, recompute the root (incremental re-hash path).
    trie.Put("key" + std::to_string(i++ % state.range(0)), "new");
    benchmark::DoNotOptimize(trie.RootHash());
  }
}
BENCHMARK(BM_MptRootHash)->Arg(1000)->Arg(20000);

// The disarmed fault-injection probe: the per-site cost every production
// storage write / commit step pays. Must stay at "one relaxed atomic load"
// — single-digit nanoseconds (docs/ROBUSTNESS.md).
void BM_FaultCheckDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::Check(fault::sites::kKvWrite));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultCheckDisarmed);

// The armed counterpart (empty plan: every probe misses): what a test run
// pays per site. Orders of magnitude slower is fine — it never ships.
void BM_FaultCheckArmedMiss(benchmark::State& state) {
  fault::ScopedPlan armed(fault::Plan{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::Check(fault::sites::kKvWrite));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultCheckArmedMiss);

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator gen(10'000, state.range(0) / 10.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext)->Arg(0)->Arg(9);

void BM_SmallBankSimulation(benchmark::State& state) {
  WorkloadConfig config;
  config.num_accounts = 10'000;
  SmallBankWorkload workload(config, 5);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 1000, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(1000);
  const ExecMode mode =
      state.range(0) == 0 ? ExecMode::kNative : ExecMode::kBytecode;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateTransaction(snap, txs[i++ % 1000], mode));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallBankSimulation)->Arg(0)->Arg(1);

}  // namespace
}  // namespace nezha

BENCHMARK_MAIN();
