// Compares two bench-suite JSON reports (bench/bench_suite.cpp) and fails
// on throughput regressions — the C++/CMake perf gate CI runs against the
// committed baseline (docs/OBSERVABILITY.md, "Perf-regression harness").
//
// Modes:
//  * ratio (default): each result's throughput is normalized by the serial
//    scheme's throughput for the same bench+params in the SAME file, so
//    absolute machine speed cancels and only the scheme-vs-serial speedup is
//    compared. This is what makes a committed baseline meaningful across
//    developer laptops and CI runners.
//  * absolute: raw tx/s comparison, for same-machine A/B runs.
//
// A result regresses when current < baseline * (1 - tolerance). Abort rates
// are fully deterministic under fixed seeds, so they are compared with a
// tight epsilon regardless of mode.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.h"

using nezha::json::Value;

namespace {

struct Options {
  std::string baseline;
  std::string current;
  double tolerance = 0.15;
  /// Latency gate headroom. Latency is wall-clock (not modelled), so the
  /// gate is looser than the throughput one; p99 is reported but ungated.
  double latency_tolerance = 0.5;
  /// Parallel-efficiency gate headroom (ISSUE PR 9: 8-thread efficiency
  /// must not regress by more than 15%). Efficiency is already a ratio —
  /// busy / (workers x span) in percent — so it is compared the same way
  /// in both modes.
  double efficiency_tolerance = 0.15;
  double abort_epsilon = 0.001;
  bool ratio_mode = true;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baseline <file> --current <file> [--tolerance 0.15]\n"
      "          [--latency-tolerance 0.5] [--efficiency-tolerance 0.15]\n"
      "          [--abort-epsilon 0.001] [--mode ratio|absolute]\n",
      argv0);
  return 2;
}

/// Identity of one measured configuration across the two files.
std::string ResultKey(const Value& result) {
  return result["bench"].AsString() + "|" + result["scheme"].AsString() + "|" +
         result["params"].Dump();
}

/// Key of the serial-scheme result sharing this result's bench + params.
std::string SerialKey(const Value& result) {
  return result["bench"].AsString() + "|serial|" + result["params"].Dump();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      if (const char* v = next()) options.baseline = v;
    } else if (arg == "--current") {
      if (const char* v = next()) options.current = v;
    } else if (arg == "--tolerance") {
      if (const char* v = next()) options.tolerance = std::atof(v);
    } else if (arg == "--latency-tolerance") {
      if (const char* v = next()) options.latency_tolerance = std::atof(v);
    } else if (arg == "--efficiency-tolerance") {
      if (const char* v = next()) options.efficiency_tolerance = std::atof(v);
    } else if (arg == "--abort-epsilon") {
      if (const char* v = next()) options.abort_epsilon = std::atof(v);
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr || (std::strcmp(v, "ratio") != 0 &&
                           std::strcmp(v, "absolute") != 0)) {
        return Usage(argv[0]);
      }
      options.ratio_mode = std::strcmp(v, "ratio") == 0;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.baseline.empty() || options.current.empty()) {
    return Usage(argv[0]);
  }

  const auto baseline = nezha::json::ParseFile(options.baseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "cannot load baseline: %s\n",
                 baseline.status().message().c_str());
    return 2;
  }
  const auto current = nezha::json::ParseFile(options.current);
  if (!current.ok()) {
    std::fprintf(stderr, "cannot load current: %s\n",
                 current.status().message().c_str());
    return 2;
  }

  // Index each file: key -> result object.
  const auto index = [](const Value& doc) {
    std::unordered_map<std::string, const Value*> by_key;
    for (const Value& result : doc["results"].AsArray()) {
      by_key[ResultKey(result)] = &result;
    }
    return by_key;
  };
  const auto base_index = index(*baseline);
  const auto cur_index = index(*current);

  // Throughput, normalized per --mode. Results whose serial sibling is
  // missing (or zero) fall back to absolute comparison.
  const auto normalized = [&](const Value& result,
                              const std::unordered_map<std::string,
                                                       const Value*>& file) {
    const double tps = result["throughput_tps"].AsDouble();
    if (!options.ratio_mode) return tps;
    const auto serial = file.find(SerialKey(result));
    if (serial == file.end()) return tps;
    const double serial_tps = (*serial->second)["throughput_tps"].AsDouble();
    return serial_tps > 0 ? tps / serial_tps : tps;
  };

  std::printf("comparing %zu baseline results (%s mode, tolerance %.0f%%)\n",
              base_index.size(), options.ratio_mode ? "ratio" : "absolute",
              options.tolerance * 100);
  int failures = 0;
  for (const Value& base : (*baseline)["results"].AsArray()) {
    const std::string key = ResultKey(base);
    const auto found = cur_index.find(key);
    if (found == cur_index.end()) {
      std::printf("FAIL %-40s missing from current report\n", key.c_str());
      ++failures;
      continue;
    }
    const Value& cur = *found->second;

    const double base_norm = normalized(base, base_index);
    const double cur_norm = normalized(cur, cur_index);
    const double floor = base_norm * (1.0 - options.tolerance);
    const char* unit = options.ratio_mode ? "x serial" : "tps";
    // sustained_pipelined rows are gated by the dedicated pipelined section
    // below, self-consistently within the current file: the cross-file ratio
    // of a wall-clock sustained bench is too noisy to gate twice.
    const bool pipelined_row =
        base["bench"].AsString() == "sustained_pipelined";
    if (pipelined_row) {
      std::printf("ok   %-40s throughput %.3f %s (pipelined section gates)\n",
                  key.c_str(), cur_norm, unit);
    } else if (cur_norm < floor) {
      std::printf("FAIL %-40s throughput %.3f %s < floor %.3f (base %.3f)\n",
                  key.c_str(), cur_norm, unit, floor, base_norm);
      ++failures;
    } else {
      std::printf("ok   %-40s throughput %.3f %s (base %.3f)\n", key.c_str(),
                  cur_norm, unit, base_norm);
    }

    // Parallel-efficiency gate (the bench_suite "parallel_efficiency"
    // section): busy / (workers x span) is dimensionless, so no serial
    // normalization is needed — the committed percentage itself is the
    // baseline. Lower is worse; gate with --efficiency-tolerance.
    if (base.Contains("parallel_efficiency_pct") &&
        cur.Contains("parallel_efficiency_pct")) {
      const double base_eff = base["parallel_efficiency_pct"].AsDouble();
      const double cur_eff = cur["parallel_efficiency_pct"].AsDouble();
      const double eff_floor = base_eff * (1.0 - options.efficiency_tolerance);
      // Below 1% both sides are measurement noise (a 1-core runner reports
      // near-zero efficiency); relative tolerance on noise flakes, so skip.
      if (base_eff < 1.0 && cur_eff < 1.0) {
        std::printf("ok   %-40s efficiency %.1f%% (base %.1f%%, below floor"
                    " of measurement, ungated)\n",
                    key.c_str(), cur_eff, base_eff);
      } else if (base_eff > 0 && cur_eff < eff_floor) {
        std::printf("FAIL %-40s efficiency %.1f%% < floor %.1f%% (base %.1f%%)\n",
                    key.c_str(), cur_eff, eff_floor, base_eff);
        ++failures;
      } else {
        std::printf("ok   %-40s efficiency %.1f%% (base %.1f%%)\n",
                    key.c_str(), cur_eff, base_eff);
      }
    }

    const double base_aborts = base["abort_rate"].AsDouble();
    const double cur_aborts = cur["abort_rate"].AsDouble();
    if (std::abs(base_aborts - cur_aborts) > options.abort_epsilon) {
      std::printf("FAIL %-40s abort rate %.4f != baseline %.4f (eps %.4f)\n",
                  key.c_str(), cur_aborts, base_aborts,
                  options.abort_epsilon);
      ++failures;
    }

    // Latency gate: results carrying e2e percentiles (the sustained-load
    // bench) are compared the same way throughput is — normalized by the
    // serial sibling in the same file so machine speed cancels — but with
    // "lower is better" and the looser --latency-tolerance. p50 and p95
    // gate; p99 is printed only (one slow outlier on a noisy CI runner
    // should not fail the build).
    const auto latency_norm = [&](const Value& result,
                                  const std::unordered_map<
                                      std::string, const Value*>& file,
                                  const char* field) {
      const double ms = result[field].AsDouble();
      if (!options.ratio_mode) return ms;
      const auto serial = file.find(SerialKey(result));
      if (serial == file.end()) return ms;
      const double serial_ms = (*serial->second)[field].AsDouble();
      return serial_ms > 0 ? ms / serial_ms : ms;
    };
    for (const char* field : {"e2e_p50_ms", "e2e_p95_ms", "e2e_p99_ms"}) {
      if (!base.Contains(field) || !cur.Contains(field)) continue;
      const double base_lat = latency_norm(base, base_index, field);
      const double cur_lat = latency_norm(cur, cur_index, field);
      const double ceiling = base_lat * (1.0 + options.latency_tolerance);
      const char* lat_unit = options.ratio_mode ? "x serial" : "ms";
      const bool gated = std::strcmp(field, "e2e_p99_ms") != 0;
      if (gated && base_lat > 0 && cur_lat > ceiling) {
        std::printf("FAIL %-40s %s %.3f %s > ceiling %.3f (base %.3f)\n",
                    key.c_str(), field, cur_lat, lat_unit, ceiling,
                    base_lat);
        ++failures;
      } else {
        std::printf("ok   %-40s %s %.3f %s (base %.3f%s)\n", key.c_str(),
                    field, cur_lat, lat_unit, base_lat,
                    gated ? "" : ", ungated");
      }
    }
  }

  // Cross-epoch pipelining gate (the bench_suite "sustained_pipelined"
  // section): self-consistent within the CURRENT file, so machine speed
  // cancels by construction.
  //  * Throughput: every pipelined depth must stay within --tolerance of
  //    the depth-0 batch reference, and depth >= 2 must additionally show
  //    measured commit/prepare overlap (modelled_speedup > 1) — the
  //    pipeline must never cost throughput and must actually overlap.
  //  * Latency: per-epoch p95 grows with depth by design (in-window
  //    queueing), so the RATIO p95(depth)/p95(batch) is gated against the
  //    same ratio in the baseline with --latency-tolerance headroom.
  {
    const auto pipelined_rows = [](const Value& doc) {
      std::unordered_map<int, const Value*> by_depth;
      for (const Value& result : doc["results"].AsArray()) {
        if (result["bench"].AsString() != "sustained_pipelined" ||
            result["scheme"].AsString() != "nezha") {
          continue;
        }
        by_depth[static_cast<int>(result["params"]["depth"].AsDouble())] =
            &result;
      }
      return by_depth;
    };
    const auto cur_rows = pipelined_rows(*current);
    const auto base_rows = pipelined_rows(*baseline);
    const auto batch = cur_rows.find(0);
    if (!cur_rows.empty() && batch == cur_rows.end()) {
      std::printf("FAIL sustained_pipelined: no depth-0 batch reference\n");
      ++failures;
    }
    if (batch != cur_rows.end()) {
      const double batch_tps = (*batch->second)["throughput_tps"].AsDouble();
      const double batch_p95 =
          (*batch->second)["epoch_latency_p95_ms"].AsDouble();
      for (const auto& [depth, row] : cur_rows) {
        if (depth == 0) continue;
        const std::string key =
            "sustained_pipelined depth=" + std::to_string(depth);
        const double tps = (*row)["throughput_tps"].AsDouble();
        const double floor = batch_tps * (1.0 - options.tolerance);
        if (tps < floor) {
          std::printf("FAIL %-40s tps %.1f < batch floor %.1f (batch %.1f)\n",
                      key.c_str(), tps, floor, batch_tps);
          ++failures;
        } else {
          std::printf("ok   %-40s tps %.1f (batch %.1f)\n", key.c_str(), tps,
                      batch_tps);
        }
        if (depth >= 2) {
          const double speedup = (*row)["modelled_speedup"].AsDouble();
          if (speedup <= 1.0) {
            std::printf(
                "FAIL %-40s modelled speedup %.3f <= 1 (no overlap)\n",
                key.c_str(), speedup);
            ++failures;
          } else {
            std::printf("ok   %-40s modelled speedup %.3fx\n", key.c_str(),
                        speedup);
          }
        }
        const double p95 = (*row)["epoch_latency_p95_ms"].AsDouble();
        const double cur_ratio = batch_p95 > 0 ? p95 / batch_p95 : 0;
        const auto base_row = base_rows.find(depth);
        const auto base_batch = base_rows.find(0);
        if (base_row != base_rows.end() && base_batch != base_rows.end()) {
          const double bb_p95 =
              (*base_batch->second)["epoch_latency_p95_ms"].AsDouble();
          const double base_ratio =
              bb_p95 > 0 ? (*base_row->second)["epoch_latency_p95_ms"]
                                   .AsDouble() /
                               bb_p95
                         : 0;
          const double ceiling =
              base_ratio * (1.0 + options.latency_tolerance);
          if (base_ratio > 0 && cur_ratio > ceiling) {
            std::printf(
                "FAIL %-40s p95 ratio %.3f > ceiling %.3f (base %.3f)\n",
                key.c_str(), cur_ratio, ceiling, base_ratio);
            ++failures;
          } else {
            std::printf("ok   %-40s p95 ratio %.3f (base %.3f)\n",
                        key.c_str(), cur_ratio, base_ratio);
          }
        } else {
          std::printf("ok   %-40s p95 ratio %.3f (no baseline, ungated)\n",
                      key.c_str(), cur_ratio);
        }
      }
    }
  }

  if (failures > 0) {
    std::printf("\n%d regression(s) against %s\n", failures,
                options.baseline.c_str());
    return 1;
  }
  std::printf("\nno regressions\n");
  return 0;
}
