// Ablation: block-size sensitivity. The paper fixes the block size at 200
// transactions; this sweep holds the epoch's total transaction count fixed
// (1600) and varies how it is cut into blocks — showing that Nezha's
// concurrency-control cost depends on the BATCH (N_e), not on the block
// framing, while the conflict population grows with N_e exactly as Table I
// predicts when total count varies instead.
#include <cstdio>

#include "bench/bench_util.h"
#include "cc/nezha/nezha_scheduler.h"
#include "common/stopwatch.h"
#include "runtime/concurrent_executor.h"
#include "workload/conflict_model.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 5);

  Header("Ablation — block framing vs batch size",
         "SmallBank, 10k accounts, skew 0.6");

  // Part 1: fixed batch (1600 txs), different block framings. The batch is
  // identical, so the schedule and its cost must be identical too — the
  // scheduler sees N_e transactions, never blocks.
  std::printf("\nfixed batch of 1600 txs, varying block size (sanity):\n");
  Row({"block size", "blocks", "cc(ms)", "aborts"});
  for (std::size_t block_size : {50u, 100u, 200u, 400u, 1600u}) {
    WorkloadConfig config;
    config.num_accounts = 10'000;
    config.skew = 0.6;
    SmallBankWorkload workload(config, 4242);
    StateDB db;
    const StateSnapshot snap = db.MakeSnapshot(0);
    const auto txs = workload.MakeBatch(1600);
    const auto exec = ExecuteBatchSerial(snap, txs);
    NezhaScheduler scheduler;
    Stopwatch watch;
    auto schedule = scheduler.BuildSchedule(exec.rwsets);
    Row({FmtInt(block_size), FmtInt(1600 / block_size),
         Fmt(watch.ElapsedMillis(), 2), FmtPct(schedule->AbortRate())});
  }

  // Part 2: varying batch size (the real driver). CC latency and conflicts
  // grow with N_e; abort rate rises with the conflict density.
  std::printf("\nvarying batch size N_e:\n");
  Row({"N_e", "cc(ms)", "aborts", "meas. conflicts", "groups"});
  for (std::size_t n : {200u, 400u, 800u, 1600u, 3200u}) {
    double cc_ms = 0, aborts = 0, conflicts = 0, groups = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      WorkloadConfig config;
      config.num_accounts = 10'000;
      config.skew = 0.6;
      SmallBankWorkload workload(config, 900 + rep);
      StateDB db;
      const StateSnapshot snap = db.MakeSnapshot(0);
      const auto txs = workload.MakeBatch(n);
      const auto exec = ExecuteBatchSerial(snap, txs);
      NezhaScheduler scheduler;
      Stopwatch watch;
      auto schedule = scheduler.BuildSchedule(exec.rwsets);
      cc_ms += watch.ElapsedMillis();
      aborts += schedule->AbortRate();
      groups += static_cast<double>(schedule->groups.size());
      if (n <= 800) {  // quadratic measurement; skip for big batches
        conflicts +=
            static_cast<double>(MeasureConflicts(exec.rwsets).conflicting_pairs);
      }
    }
    const double r = static_cast<double>(reps);
    Row({FmtInt(n), Fmt(cc_ms / r, 2), FmtPct(aborts / r),
         n <= 800 ? Fmt(conflicts / r, 0) : std::string("(skipped)"),
         Fmt(groups / r, 0)});
  }

  std::printf(
      "\nShape check: identical batches schedule identically regardless of "
      "block\nframing; batch size is what drives conflicts, latency and "
      "aborts — the\nreason the paper sweeps block CONCURRENCY at fixed "
      "block size.\n");
  return 0;
}
