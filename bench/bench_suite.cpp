// The machine-readable benchmark suite behind the `bench_suite` CMake
// target and the CI perf-regression gate (docs/OBSERVABILITY.md).
//
// Runs every scheme over fixed-seed SmallBank workloads at low and high
// skew through the full node pipeline, with the calibrated execution cost
// model (machine-independent latencies; cc + commit measured), and writes
// one BENCH_nezha.json: per-scheme throughput, latency, abort rate, and the
// abort-attribution rollup read back from the epoch flight recorder.
// bench/check_bench_regression compares two such files.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sustained_load.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/parallel_executor.h"
#include "cc/occ/occ_scheduler.h"
#include "common/thread_pool.h"
#include "node/simulation.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "runtime/concurrent_executor.h"
#include "vm/cost_model.h"

using namespace nezha;
using namespace nezha::bench;

namespace {

/// Merges the attribution of every record the flight recorder currently
/// holds (one per processed epoch).
obs::AttributionRollup DrainRollup() {
  obs::AttributionRollup rollup;
  for (const obs::EpochFlightRecord& record :
       obs::FlightRecorder::Global().Records()) {
    rollup.Merge(obs::BuildRollup(record.attribution));
  }
  return rollup;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The threads dimension: BuildSchedule + group-parallel execute of one
/// 4096-tx epoch through the parallel pipeline at 1/2/4/8 pool threads.
/// Scheduling and buffer-merge time is measured; the execution phase uses
/// the calibrated cost model's group latency (sum of ceil(|g|/threads)
/// serial tx slots — docs/PARALLELISM.md), which is exact in the schedule's
/// group structure and machine-independent, so the 8-thread speedup gate
/// holds on single-core CI runners too. Emits one serial sibling per
/// threads value with identical params so check_bench_regression's ratio
/// mode pairs them. Returns the measured 1->8 thread speedup.
double RunParallelPipelineBench(bench::JsonReport& report) {
  const std::size_t num_txs = bench::EnvSize("NEZHA_BENCH_PARALLEL_TXS", 4096);
  const double skew = 0.6;
  const std::uint64_t seed = 91'000;
  const CostModel cost;

  WorkloadConfig workload_config;
  workload_config.num_accounts = 10'000;
  workload_config.skew = skew;
  SmallBankWorkload workload(workload_config, seed);
  StateDB workload_db;
  const StateSnapshot snap = workload_db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(num_txs);
  const auto rwsets = ExecuteBatchSerial(snap, txs).rwsets;

  const double serial_latency_ms = cost.SerialLatencyMs(num_txs);

  bench::Row({"threads", "scheme", "tps", "latency(ms)", "cc+merge(ms)",
              "exec(ms)"});
  double latency_at_1 = 0, latency_at_8 = 0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    NezhaOptions options;
    options.pool = &pool;
    NezhaScheduler scheduler(options);

    // Three repetitions, mean of the measured portion; the schedule itself
    // is deterministic so one copy serves the modelled phase.
    double measured_ms = 0;
    Result<Schedule> schedule = scheduler.BuildSchedule(rwsets);
    if (!schedule.ok()) {
      std::fprintf(stderr, "bench_suite: parallel pipeline failed: %s\n",
                   schedule.status().message().c_str());
      return 0;
    }
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      const double t0 = NowMs();
      Result<Schedule> rebuilt = scheduler.BuildSchedule(rwsets);
      StateDB db;
      const StateSnapshot epoch_snap = db.MakeSnapshot(0);
      ExecuteScheduleParallel(pool, db, epoch_snap, *rebuilt, rwsets);
      measured_ms += NowMs() - t0;
    }
    measured_ms /= kReps;

    std::vector<std::size_t> group_sizes;
    group_sizes.reserve(schedule->groups.size());
    for (const auto& group : schedule->groups) {
      group_sizes.push_back(group.size());
    }
    const double exec_ms = cost.GroupExecuteLatencyMs(group_sizes, threads);
    const double latency_ms = measured_ms + exec_ms;
    const double abort_rate =
        static_cast<double>(schedule->NumAborted()) /
        static_cast<double>(num_txs);
    if (threads == 1) latency_at_1 = latency_ms;
    if (threads == 8) latency_at_8 = latency_ms;

    JsonResult result;
    result.bench = "parallel_pipeline";
    result.scheme = "nezha";
    result.params.Set("workload", "smallbank");
    result.params.Set("skew", skew);
    result.params.Set("txs", num_txs);
    result.params.Set("threads", threads);
    result.params.Set("seed", seed);
    result.throughput_tps =
        static_cast<double>(schedule->NumCommitted()) / latency_ms * 1000.0;
    result.latency_ms = latency_ms;
    result.abort_rate = abort_rate;
    result.extra.Set("measured_cc_merge_ms", measured_ms);
    result.extra.Set("modelled_exec_ms", exec_ms);
    result.extra.Set("groups", schedule->groups.size());
    report.Add(result);

    // Serial sibling with identical params: the ratio-mode denominator.
    JsonResult serial;
    serial.bench = "parallel_pipeline";
    serial.scheme = "serial";
    serial.params = result.params;
    serial.throughput_tps =
        static_cast<double>(num_txs) / serial_latency_ms * 1000.0;
    serial.latency_ms = serial_latency_ms;
    serial.abort_rate = 0;
    report.Add(serial);

    bench::Row({bench::FmtInt(threads), "nezha",
                bench::Fmt(result.throughput_tps, 1),
                bench::Fmt(latency_ms, 2), bench::Fmt(measured_ms, 2),
                bench::Fmt(exec_ms, 2)});
    bench::Row({bench::FmtInt(threads), "serial",
                bench::Fmt(serial.throughput_tps, 1),
                bench::Fmt(serial_latency_ms, 2), "-", "-"});
  }
  return latency_at_8 > 0 ? latency_at_1 / latency_at_8 : 0;
}

/// The parallel-efficiency dimension: every concurrent scheme's measured
/// pool utilisation — busy / (workers x span), from the pipeline profiler
/// (src/obs/profiler.h) — over one real (not modelled) BuildSchedule +
/// group-parallel execute of the same fixed 4096-tx epoch the threads
/// dimension uses. Efficiency is a ratio of wall times, so machine speed
/// cancels and the committed value is comparable across runners; the best
/// of three profiled reps is reported because scheduler noise can only
/// LOWER the structure-limited efficiency, never raise it.
/// check_bench_regression gates the parallel_efficiency_pct member with
/// --efficiency-tolerance; throughput is deliberately 0 so the throughput
/// gate is inert for these rows.
bool RunParallelEfficiencySection(bench::JsonReport& report) {
  const std::size_t num_txs = bench::EnvSize("NEZHA_BENCH_PARALLEL_TXS", 4096);
  const double skew = 0.6;
  const std::uint64_t seed = 91'000;

  WorkloadConfig workload_config;
  workload_config.num_accounts = 10'000;
  workload_config.skew = skew;
  SmallBankWorkload workload(workload_config, seed);
  StateDB workload_db;
  const StateSnapshot snap = workload_db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(num_txs);
  const auto rwsets = ExecuteBatchSerial(snap, txs).rwsets;

  obs::Profiler().SetEnabled(true);
  bench::Row({"scheme", "threads", "eff(%)", "busy(ms)", "span(ms)", "tasks",
              "idle-gap(ms)", "dominant"});

  const char* kSchemes[] = {"occ", "cg", "nezha", "nezha-noreorder"};
  std::uint64_t window = 0;
  for (const char* scheme : kSchemes) {
    for (const std::size_t threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      std::unique_ptr<Scheduler> scheduler;
      if (std::string_view(scheme) == "occ") {
        scheduler = std::make_unique<OCCScheduler>();
      } else if (std::string_view(scheme) == "cg") {
        scheduler = std::make_unique<CGScheduler>();
      } else {
        NezhaOptions options;
        options.pool = &pool;
        options.enable_reordering =
            std::string_view(scheme) != "nezha-noreorder";
        scheduler = std::make_unique<NezhaScheduler>(options);
      }

      // Warm-up rep outside any profiling window (pool spin-up, allocator
      // warm-up), then three profiled reps; keep the best efficiency.
      double abort_rate = 0;
      obs::EpochProfile best;
      for (int rep = -1; rep < 3; ++rep) {
        if (rep >= 0) {
          obs::Profiler().BeginEpoch(++window, scheme, pool.size());
        }
        Result<Schedule> schedule = scheduler->BuildSchedule(rwsets);
        if (!schedule.ok()) {
          std::fprintf(stderr, "bench_suite: efficiency %s failed: %s\n",
                       scheme, schedule.status().message().c_str());
          return false;
        }
        StateDB db;
        const StateSnapshot epoch_snap = db.MakeSnapshot(0);
        ExecuteScheduleParallel(pool, db, epoch_snap, *schedule, rwsets);
        if (rep >= 0) {
          obs::EpochProfile profile = obs::Profiler().FinishEpoch();
          if (profile.efficiency_pct > best.efficiency_pct) {
            best = std::move(profile);
          }
        }
        abort_rate = static_cast<double>(schedule->NumAborted()) /
                     static_cast<double>(num_txs);
      }

      JsonResult result;
      result.bench = "parallel_efficiency";
      result.scheme = scheme;
      result.params.Set("workload", "smallbank");
      result.params.Set("skew", skew);
      result.params.Set("txs", num_txs);
      result.params.Set("threads", threads);
      result.params.Set("seed", seed);
      result.throughput_tps = 0;  // efficiency row: throughput gate inert
      result.latency_ms = best.span_ms;
      result.abort_rate = abort_rate;
      result.extra.Set("parallel_efficiency_pct", best.efficiency_pct);
      result.extra.Set("busy_ms", best.busy_ms);
      result.extra.Set("cpu_ms", best.cpu_ms);
      result.extra.Set("span_ms", best.span_ms);
      result.extra.Set("profile_tasks", best.tasks);
      result.extra.Set("inline_tasks", best.inline_tasks);
      result.extra.Set("largest_idle_gap_ms", best.largest_idle_gap_ms);
      result.extra.Set("dominant_stage", best.DominantStage());
      report.Add(result);

      bench::Row({scheme, bench::FmtInt(threads),
                  bench::Fmt(best.efficiency_pct, 1),
                  bench::Fmt(best.busy_ms, 2), bench::Fmt(best.span_ms, 2),
                  bench::FmtInt(best.tasks),
                  bench::Fmt(best.largest_idle_gap_ms, 2),
                  best.DominantStage()});
    }
  }
  return true;
}

/// The sustained-load dimension: every scheme under steady arrival through
/// mempool -> mining -> confirmed queue -> pipeline, with exact
/// per-transaction end-to-end commit-latency percentiles
/// (bench/sustained_load.h). The serial row is the ratio-mode denominator
/// for check_bench_regression's latency gate.
bool RunSustainedSection(bench::JsonReport& report) {
  SustainedLoadConfig base;
  base.block_size = bench::EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  base.block_concurrency =
      bench::EnvSize("NEZHA_BENCH_SUSTAINED_CONCURRENCY", 4);
  base.epochs = bench::EnvSize("NEZHA_BENCH_SUSTAINED_EPOCHS", 6);
  base.skew = 0.6;
  base.seed = 92'000;

  bench::Row({"scheme", "tps", "p50(ms)", "p95(ms)", "p99(ms)", "aborts"});
  const SchemeKind kSchemes[] = {SchemeKind::kSerial, SchemeKind::kOcc,
                                 SchemeKind::kCg, SchemeKind::kNezha,
                                 SchemeKind::kNezhaNoReorder};
  for (const SchemeKind kind : kSchemes) {
    SustainedLoadConfig config = base;
    config.scheme = kind;
    const auto run = RunSustainedLoad(config);
    if (!run.ok()) {
      std::fprintf(stderr, "bench_suite: sustained %s failed: %s\n",
                   SchemeName(kind), run.status().message().c_str());
      return false;
    }
    JsonResult result;
    result.bench = "sustained_load";
    result.scheme = SchemeName(kind);
    result.params.Set("workload", "smallbank");
    result.params.Set("skew", config.skew);
    result.params.Set("block_size", config.block_size);
    result.params.Set("block_concurrency", config.block_concurrency);
    result.params.Set("epochs", config.epochs);
    result.params.Set("seed", config.seed);
    result.throughput_tps = run->throughput_tps;
    result.latency_ms = run->e2e_mean_ms;
    result.abort_rate = run->AbortRate();
    result.extra.Set("e2e_p50_ms", run->e2e_p50_ms);
    result.extra.Set("e2e_p95_ms", run->e2e_p95_ms);
    result.extra.Set("e2e_p99_ms", run->e2e_p99_ms);
    result.extra.Set("e2e_max_ms", run->e2e_max_ms);
    result.extra.Set("e2e_samples", run->sampled);
    result.extra.Set("wall_ms", run->wall_ms);
    report.Add(result);

    bench::Row({SchemeName(kind), bench::Fmt(run->throughput_tps, 1),
                bench::Fmt(run->e2e_p50_ms, 2),
                bench::Fmt(run->e2e_p95_ms, 2),
                bench::Fmt(run->e2e_p99_ms, 2),
                bench::FmtPct(run->AbortRate())});
  }
  return true;
}

/// The cross-epoch pipelining dimension: the same sustained Nezha workload
/// driven by the batch driver (depth 0) and the EpochPipeline at depths
/// 1/2/4 (node/pipeline.h). Emits epochs/sec and per-epoch hand-off ->
/// durable-commit latency p50/p95; check_bench_regression gates pipelined
/// throughput against the depth-0 row and the latency ratio against the
/// committed baseline's ratio. Serial siblings (one batch serial run,
/// re-emitted per depth with matching params) are the ratio-mode
/// denominator so the throughput comparison survives machine changes.
bool RunPipelinedSection(bench::JsonReport& report) {
  SustainedLoadConfig base;
  base.block_size = bench::EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  base.block_concurrency =
      bench::EnvSize("NEZHA_BENCH_SUSTAINED_CONCURRENCY", 4);
  base.epochs = bench::EnvSize("NEZHA_BENCH_PIPELINED_EPOCHS", 8);
  base.skew = 0.6;
  base.seed = 93'000;

  SustainedLoadConfig serial_config = base;
  serial_config.scheme = SchemeKind::kSerial;
  const auto serial = RunSustainedLoadPipelined(serial_config, 0);
  if (!serial.ok()) {
    std::fprintf(stderr, "bench_suite: pipelined serial failed: %s\n",
                 serial.status().message().c_str());
    return false;
  }

  bench::Row({"depth", "tps", "epochs/s", "ep-p50(ms)", "ep-p95(ms)",
              "overlap(ms)", "speedup*"});
  base.scheme = SchemeKind::kNezha;
  for (const std::size_t depth : {0, 1, 2, 4}) {
    const auto run = RunSustainedLoadPipelined(base, depth);
    if (!run.ok()) {
      std::fprintf(stderr, "bench_suite: pipelined depth %zu failed: %s\n",
                   depth, run.status().message().c_str());
      return false;
    }
    JsonResult result;
    result.bench = "sustained_pipelined";
    result.scheme = "nezha";
    result.params.Set("workload", "smallbank");
    result.params.Set("skew", base.skew);
    result.params.Set("block_size", base.block_size);
    result.params.Set("block_concurrency", base.block_concurrency);
    result.params.Set("epochs", base.epochs);
    result.params.Set("seed", base.seed);
    result.params.Set("depth", depth);
    result.throughput_tps = run->load.throughput_tps;
    result.latency_ms = run->epoch_latency_p50_ms;
    result.abort_rate = run->load.AbortRate();
    result.extra.Set("epochs_per_sec", run->epochs_per_sec);
    result.extra.Set("epoch_latency_p50_ms", run->epoch_latency_p50_ms);
    result.extra.Set("epoch_latency_p95_ms", run->epoch_latency_p95_ms);
    result.extra.Set("wall_ms", run->load.wall_ms);
    result.extra.Set("overlap_ms", run->stats.overlap_us / 1000.0);
    result.extra.Set("tail_ms", run->stats.tail_us / 1000.0);
    result.extra.Set("prepare_ms", run->stats.prepare_us / 1000.0);
    result.extra.Set("commit_ms", run->stats.commit_us / 1000.0);
    result.extra.Set("backpressure_waits",
                     run->stats.backpressure_waits);
    result.extra.Set("modelled_speedup", run->modelled_speedup);
    report.Add(result);

    // Serial sibling with identical params: the ratio-mode denominator.
    JsonResult sibling;
    sibling.bench = "sustained_pipelined";
    sibling.scheme = "serial";
    sibling.params = result.params;
    sibling.throughput_tps = serial->load.throughput_tps;
    sibling.latency_ms = serial->epoch_latency_p50_ms;
    sibling.abort_rate = serial->load.AbortRate();
    sibling.extra.Set("epochs_per_sec", serial->epochs_per_sec);
    sibling.extra.Set("epoch_latency_p50_ms",
                      serial->epoch_latency_p50_ms);
    sibling.extra.Set("epoch_latency_p95_ms",
                      serial->epoch_latency_p95_ms);
    report.Add(sibling);

    bench::Row({bench::FmtInt(depth),
                bench::Fmt(run->load.throughput_tps, 1),
                bench::Fmt(run->epochs_per_sec, 2),
                bench::Fmt(run->epoch_latency_p50_ms, 2),
                bench::Fmt(run->epoch_latency_p95_ms, 2),
                bench::Fmt(run->stats.overlap_us / 1000.0, 2),
                bench::Fmt(run->modelled_speedup, 3)});
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  if (json_path.empty()) json_path = "BENCH_nezha.json";

  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t concurrency = EnvSize("NEZHA_BENCH_CONCURRENCY", 8);
  const std::size_t epochs = EnvSize("NEZHA_BENCH_EPOCHS", 3);

  Header("Benchmark suite — machine-readable perf snapshot",
         "SmallBank, fixed seeds, modelled execution cost; cc+commit "
         "measured");

  JsonReport report("bench_suite");
  Row({"skew", "scheme", "tps", "latency(ms)", "aborts", "conflicts"});

  const SchemeKind kSchemes[] = {SchemeKind::kSerial, SchemeKind::kOcc,
                                 SchemeKind::kCg, SchemeKind::kNezha,
                                 SchemeKind::kNezhaNoReorder};
  for (double skew : {0.2, 0.8}) {
    for (SchemeKind kind : kSchemes) {
      SimulationConfig config;
      config.workload.num_accounts = 10'000;
      config.workload.skew = skew;
      config.block_size = block_size;
      config.block_concurrency = concurrency;
      config.epochs = epochs;
      config.seed = 90'000 + static_cast<std::uint64_t>(skew * 10);
      config.node.scheme = kind;
      config.node.model_execution_cost = true;

      obs::FlightRecorder::Global().Clear();
      const auto summary = RunSimulation(config);
      if (!summary.ok()) {
        std::fprintf(stderr, "bench_suite: %s failed: %s\n", SchemeName(kind),
                     summary.status().message().c_str());
        return 1;
      }

      JsonResult result;
      result.bench = "suite";
      result.scheme = SchemeName(kind);
      result.params.Set("workload", "smallbank");
      result.params.Set("skew", skew);
      result.params.Set("block_size", block_size);
      result.params.Set("block_concurrency", concurrency);
      result.params.Set("epochs", epochs);
      result.params.Set("seed", config.seed);
      result.throughput_tps = summary->EffectiveTps();
      result.latency_ms = summary->MeanTotalMs();
      result.abort_rate = summary->AbortRate();
      result.rollup = DrainRollup();
      report.Add(result);

      Row({Fmt(skew, 1), SchemeName(kind), Fmt(result.throughput_tps, 1),
           Fmt(result.latency_ms, 2), FmtPct(result.abort_rate),
           FmtInt(result.rollup.ConflictAborts())});
    }
  }

  Header("Parallel pipeline — threads dimension",
         "4096-tx epoch; cc+merge measured, execution modelled per group "
         "(docs/PARALLELISM.md)");
  const double speedup = RunParallelPipelineBench(report);
  std::printf("\nBuildSchedule+Execute speedup, 1 -> 8 threads: %.2fx\n",
              speedup);
  // Acceptance gate (ISSUE: >= 2x at 4096 txs / 8 threads). The committed
  // baseline then locks the achieved ratio via check_bench_regression.
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "bench_suite: parallel pipeline speedup %.2fx < 2x gate\n",
                 speedup);
    return 1;
  }

  Header("Parallel efficiency — measured pool utilisation",
         "pipeline profiler busy/(workers x span) per scheme x threads; "
         "best of 3 reps (docs/OBSERVABILITY.md, \"Pipeline profiler\")");
  if (!RunParallelEfficiencySection(report)) return 1;

  Header("Sustained load — client-observed commit latency",
         "steady arrival, open pipeline; exact per-tx e2e percentiles "
         "(submitted -> durably committed)");
  if (!RunSustainedSection(report)) return 1;

  Header("Cross-epoch pipelining — sustained load through EpochPipeline",
         "batch (depth 0) vs pipelined depth 1/2/4; per-epoch hand-off -> "
         "durable-commit latency; *speedup modelled from measured overlap "
         "(docs/PARALLELISM.md)");
  if (!RunPipelinedSection(report)) return 1;

  if (!report.WriteTo(json_path)) {
    std::fprintf(stderr, "bench_suite: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
