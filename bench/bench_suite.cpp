// The machine-readable benchmark suite behind the `bench_suite` CMake
// target and the CI perf-regression gate (docs/OBSERVABILITY.md).
//
// Runs every scheme over fixed-seed SmallBank workloads at low and high
// skew through the full node pipeline, with the calibrated execution cost
// model (machine-independent latencies; cc + commit measured), and writes
// one BENCH_nezha.json: per-scheme throughput, latency, abort rate, and the
// abort-attribution rollup read back from the epoch flight recorder.
// bench/check_bench_regression compares two such files.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "node/simulation.h"
#include "obs/flight_recorder.h"

using namespace nezha;
using namespace nezha::bench;

namespace {

/// Merges the attribution of every record the flight recorder currently
/// holds (one per processed epoch).
obs::AttributionRollup DrainRollup() {
  obs::AttributionRollup rollup;
  for (const obs::EpochFlightRecord& record :
       obs::FlightRecorder::Global().Records()) {
    rollup.Merge(obs::BuildRollup(record.attribution));
  }
  return rollup;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv);
  if (json_path.empty()) json_path = "BENCH_nezha.json";

  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t concurrency = EnvSize("NEZHA_BENCH_CONCURRENCY", 8);
  const std::size_t epochs = EnvSize("NEZHA_BENCH_EPOCHS", 3);

  Header("Benchmark suite — machine-readable perf snapshot",
         "SmallBank, fixed seeds, modelled execution cost; cc+commit "
         "measured");

  JsonReport report("bench_suite");
  Row({"skew", "scheme", "tps", "latency(ms)", "aborts", "conflicts"});

  const SchemeKind kSchemes[] = {SchemeKind::kSerial, SchemeKind::kOcc,
                                 SchemeKind::kCg, SchemeKind::kNezha,
                                 SchemeKind::kNezhaNoReorder};
  for (double skew : {0.2, 0.8}) {
    for (SchemeKind kind : kSchemes) {
      SimulationConfig config;
      config.workload.num_accounts = 10'000;
      config.workload.skew = skew;
      config.block_size = block_size;
      config.block_concurrency = concurrency;
      config.epochs = epochs;
      config.seed = 90'000 + static_cast<std::uint64_t>(skew * 10);
      config.node.scheme = kind;
      config.node.model_execution_cost = true;

      obs::FlightRecorder::Global().Clear();
      const auto summary = RunSimulation(config);
      if (!summary.ok()) {
        std::fprintf(stderr, "bench_suite: %s failed: %s\n", SchemeName(kind),
                     summary.status().message().c_str());
        return 1;
      }

      JsonResult result;
      result.bench = "suite";
      result.scheme = SchemeName(kind);
      result.params.Set("workload", "smallbank");
      result.params.Set("skew", skew);
      result.params.Set("block_size", block_size);
      result.params.Set("block_concurrency", concurrency);
      result.params.Set("epochs", epochs);
      result.params.Set("seed", config.seed);
      result.throughput_tps = summary->EffectiveTps();
      result.latency_ms = summary->MeanTotalMs();
      result.abort_rate = summary->AbortRate();
      result.rollup = DrainRollup();
      report.Add(result);

      Row({Fmt(skew, 1), SchemeName(kind), Fmt(result.throughput_tps, 1),
           Fmt(result.latency_ms, 2), FmtPct(result.abort_rate),
           FmtInt(result.rollup.ConflictAborts())});
    }
  }

  if (!report.WriteTo(json_path)) {
    std::fprintf(stderr, "bench_suite: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
