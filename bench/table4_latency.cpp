// Table IV reproduction: overall transaction processing latency under a
// uniform workload (skew = 0), Serial baseline vs Nezha, block concurrency
// 2..12, 200-tx blocks.
//
// The Serial and Nezha-execute ("e") numbers use the calibrated EVM cost
// model (DESIGN.md §4) — they reflect the paper's 16-vCPU EVM testbed.
// The concurrency-control + commitment ("c") numbers are MEASURED on this
// machine's real implementation.
#include <cstdio>

#include "bench/bench_util.h"
#include "node/simulation.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t epochs = EnvSize("NEZHA_BENCH_EPOCHS", 3);

  Header("Table IV — transaction processing latency, uniform workload",
         "Serial & execute phases use the calibrated EVM cost model; "
         "cc+commit (\"c\") is measured");

  Row({"concurrency", "serial(ms)", "paper", "nezha e(ms)", "paper e",
       "nezha c(ms)", "paper c"}, 13);

  const double paper_serial[] = {4700, 10900, 17200, 23800, 30000, 36600};
  const double paper_e[] = {123.4, 246.4, 369.3, 511.7, 641.5, 743.4};
  const double paper_c[] = {22.1, 32.8, 44.9, 56.4, 71.6, 87.1};

  int idx = 0;
  for (std::size_t omega : {2u, 4u, 6u, 8u, 10u, 12u}) {
    SimulationConfig config;
    config.workload.num_accounts = 10'000;
    config.workload.skew = 0.0;
    config.block_size = block_size;
    config.block_concurrency = omega;
    config.epochs = epochs;
    config.seed = 40 + omega;
    config.node.model_execution_cost = true;

    config.node.scheme = SchemeKind::kSerial;
    auto serial = RunSimulation(config);
    config.node.scheme = SchemeKind::kNezha;
    auto nezha = RunSimulation(config);
    if (!serial.ok() || !nezha.ok()) {
      std::fprintf(stderr, "simulation failed\n");
      return 1;
    }
    Row({FmtInt(omega), Fmt(serial->MeanTotalMs(), 0),
         Fmt(paper_serial[idx], 0), Fmt(nezha->MeanExecuteMs(), 1),
         Fmt(paper_e[idx], 1), Fmt(nezha->MeanCcCommitMs(), 1),
         Fmt(paper_c[idx], 1)},
        13);
    ++idx;
  }

  std::printf(
      "\nShape check: Serial grows linearly toward ~37 s while Nezha's total "
      "stays\nwithin ~1 s per epoch; cc+commit is a small fraction of the "
      "total — the\npaper's up-to-40x speedup story.\n");
  return 0;
}
