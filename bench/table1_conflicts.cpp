// Table I reproduction: theoretical number of conflicts in a DAG-based
// blockchain as block concurrency grows (block size 20, Zipfian access over
// 10k accounts), alongside an empirical measurement on real SmallBank
// read/write sets.
//
// Paper row (in units of p, the pairwise conflict probability):
//   concurrency        2      4      6       8
//   total conflicts  780p  3160p  7140p  12720p
//   per address       26p    56p   106p    150p
#include <cstdio>

#include "bench/bench_util.h"
#include "runtime/concurrent_executor.h"
#include "storage/state_db.h"
#include "workload/conflict_model.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 20);
  const std::size_t accounts = EnvSize("NEZHA_BENCH_ACCOUNTS", 10'000);
  const double skew = 0.8;  // "a fixed Zipfian distribution"
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 8);

  Header("Table I — theoretical & measured conflicts vs block concurrency",
         "block size 20 txs, Zipfian(0.8) over 10k accounts (paper's setup)");

  Row({"concurrency", "N_e", "pairs=C/p", "paper C/p", "meas. p",
       "meas. conflicts", "addrs", "conf/addr"});

  const std::uint64_t paper_pairs[] = {780, 3160, 7140, 12720};
  int paper_idx = 0;
  for (std::size_t omega : {2u, 4u, 6u, 8u}) {
    const std::size_t n = omega * block_size;

    double sum_p = 0, sum_conflicts = 0, sum_addrs = 0, sum_per_addr = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      WorkloadConfig config;
      config.num_accounts = accounts;
      config.skew = skew;
      SmallBankWorkload workload(config, 1000 + rep);
      StateDB db;
      const StateSnapshot snap = db.MakeSnapshot(0);
      const auto txs = workload.MakeBatch(n);
      const auto exec = ExecuteBatchSerial(snap, txs);
      const ConflictStats stats = MeasureConflicts(exec.rwsets);
      sum_p += stats.conflict_probability;
      sum_conflicts += static_cast<double>(stats.conflicting_pairs);
      sum_addrs += static_cast<double>(stats.distinct_addresses);
      sum_per_addr += stats.avg_conflicts_per_address;
    }
    const double r = static_cast<double>(reps);
    Row({FmtInt(omega), FmtInt(n), FmtInt(ConflictPairCount(n)),
         FmtInt(paper_pairs[paper_idx++]) + "p", Fmt(sum_p / r, 4),
         Fmt(sum_conflicts / r, 1), Fmt(sum_addrs / r, 1),
         Fmt(sum_per_addr / r, 2)});
  }

  std::printf(
      "\nShape check: pairs grow ~quadratically (power law) with "
      "concurrency,\nand measured conflicts per address rise with N_e — the "
      "paper's motivation\nfor address-based detection.\n");

  // Analytic expected distinct addresses (the denominator of the paper's
  // per-address row), for reference.
  Header("Expected distinct addresses touched (analytic)", "");
  Row({"draws", "E[distinct] (Zipf 0.8, 20k cells)"});
  for (std::size_t omega : {2u, 4u, 6u, 8u}) {
    const std::size_t draws = omega * block_size * 2;  // ~2 addresses per tx
    Row({FmtInt(draws),
         Fmt(ExpectedDistinctAddresses(accounts * 2, skew, draws), 1)});
  }
  return 0;
}
