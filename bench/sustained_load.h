// Sustained-load driver: continuous multi-epoch processing under steady
// transaction arrival — the client-observed commit-latency harness behind
// `bench/sustained_load.cpp` and the bench suite's sustained section
// (docs/OBSERVABILITY.md, "Sustained-load latency").
//
// Unlike RunSimulation's closed-loop bursts (mine ω blocks, process, repeat
// with a fresh batch), this driver models an open pipeline with explicit
// hand-off queues:
//
//   arrivals -> Mempool -> mined blocks -> confirmed-epoch queue -> FullNode
//
// Each tick admits `arrival_per_tick` transactions, "mines" every epoch the
// mempool can fill (ω blocks x block_size — consensus confirming payloads
// ahead of execution, the paper's deferred-execution model), enqueues the
// confirmed payload on the bounded confirmed queue, and processes ONE
// queued epoch — building, appending and sealing its ledger blocks against
// the then-current state root, then executing. So when arrival outpaces
// processing, queues grow and the per-transaction lifecycle tracer sees
// real queueing delay in the submitted->included and included->confirmed
// waits; when the queue bound is hit, the oldest confirmed epoch is shed
// (load-shedding backpressure, nezha_confirmed_queue_dropped_total).
// End-to-end latency percentiles are exact (computed over every committed
// transaction's lifetime, not histogram buckets).
//
// Wall time is real: schemes are compared by what the machine actually did,
// so the ratio-mode latency gate (current/serial vs baseline/serial) is the
// meaningful cross-machine comparison, not the absolute numbers.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "ledger/epoch.h"
#include "node/full_node.h"
#include "node/mempool.h"
#include "node/pipeline.h"
#include "obs/metrics.h"
#include "obs/tx_lifecycle.h"
#include "workload/smallbank_workload.h"

namespace nezha::bench {

struct SustainedLoadConfig {
  SchemeKind scheme = SchemeKind::kNezha;
  std::size_t block_size = 200;
  std::size_t block_concurrency = 4;  ///< ω: blocks mined per epoch
  std::size_t epochs = 6;             ///< epochs to process before draining
  /// Transactions admitted to the mempool per tick; 0 = exactly one
  /// epoch's worth (block_size x block_concurrency), the steady state.
  std::size_t arrival_per_tick = 0;
  /// Bound on the confirmed-epoch queue. When a freshly sealed epoch would
  /// exceed it, the OLDEST queued epoch is dropped (its transactions never
  /// execute — backpressure by load-shedding, counted in
  /// nezha_confirmed_queue_dropped_total and the result below). 0 disables
  /// the bound (the pre-existing unbounded behaviour).
  std::size_t max_queue_depth = 64;
  double skew = 0.6;
  std::uint64_t num_accounts = 10'000;
  std::uint64_t seed = 92'000;
  StateValue initial_balance = 100'000;
};

struct SustainedLoadResult {
  std::size_t epochs_processed = 0;
  std::size_t epochs_dropped = 0;  ///< shed by the confirmed-queue bound
  std::size_t txs_dropped = 0;     ///< transactions inside shed epochs
  std::size_t total_txs = 0;
  std::size_t total_committed = 0;
  std::size_t total_aborted = 0;
  double wall_ms = 0;           ///< arrival to last durable commit
  double throughput_tps = 0;    ///< committed / wall
  std::size_t sampled = 0;      ///< committed lifetimes measured
  double e2e_mean_ms = 0;       ///< submitted -> durably-committed
  double e2e_p50_ms = 0;
  double e2e_p95_ms = 0;
  double e2e_p99_ms = 0;
  double e2e_max_ms = 0;

  double AbortRate() const {
    return total_txs == 0 ? 0
                          : static_cast<double>(total_aborted) /
                                static_cast<double>(total_txs);
  }
};

/// Interpolated percentile over an ascending-sorted sample vector.
inline double PercentileOfSorted(const std::vector<double>& sorted,
                                 double p) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] +
         (sorted[hi] - sorted[lo]) * (rank - static_cast<double>(lo));
}

inline Result<SustainedLoadResult> RunSustainedLoad(
    const SustainedLoadConfig& config) {
  if (config.block_size == 0 || config.block_concurrency == 0 ||
      config.epochs == 0) {
    return Status::InvalidArgument("block size/concurrency/epochs must be > 0");
  }
  const std::size_t epoch_txs = config.block_size * config.block_concurrency;
  const std::size_t arrival =
      config.arrival_per_tick == 0 ? epoch_txs : config.arrival_per_tick;

  NodeConfig node_config;
  node_config.scheme = config.scheme;
  node_config.max_chains = std::max<ChainId>(
      12, static_cast<ChainId>(config.block_concurrency));
  FullNode node(node_config, nullptr);

  WorkloadConfig workload_config;
  workload_config.num_accounts = config.num_accounts;
  workload_config.skew = config.skew;
  SmallBankWorkload workload(workload_config, config.seed);
  SmallBankWorkload::InitAccounts(node.state(), config.num_accounts,
                                  config.initial_balance,
                                  config.initial_balance);
  if (Status s = node.state().Flush(); !s.ok()) return s;
  node.ledger().CommitEpochRoot(0, node.state().RootHash());

  Mempool mempool(std::max<std::size_t>(
      100'000, arrival * config.epochs + epoch_txs));

  // The confirmed-epoch queue: consensus-confirmed per-chain payloads
  // waiting for deferred execution (their ledger blocks are built and
  // sealed at process time, against the state root execution has actually
  // reached), with their confirmation time so the oldest-age gauge is
  // meaningful.
  struct ConfirmedEpoch {
    std::vector<std::vector<Transaction>> chains;
    double sealed_us = 0;

    std::size_t TxCount() const {
      std::size_t n = 0;
      for (const auto& chain : chains) n += chain.size();
      return n;
    }
  };
  std::deque<ConfirmedEpoch> confirmed;
  obs::Gauge* queue_depth =
      obs::Registry().GetGauge("nezha_confirmed_queue_depth");
  obs::Gauge* queue_oldest_age =
      obs::Registry().GetGauge("nezha_confirmed_queue_oldest_age_ms");
  obs::Counter* queue_dropped =
      obs::Registry().GetCounter("nezha_confirmed_queue_dropped_total");
  const auto update_queue_gauges = [&] {
    queue_depth->Set(static_cast<std::int64_t>(confirmed.size()));
    queue_oldest_age->Set(
        confirmed.empty()
            ? 0
            : static_cast<std::int64_t>((obs::TxLifecycleTracer::NowUs() -
                                         confirmed.front().sealed_us) /
                                        1000.0));
  };

  SustainedLoadResult result;
  std::vector<double> e2e_ms;
  e2e_ms.reserve(config.epochs * epoch_txs);

  obs::TxLifecycleTracer& lifecycle = obs::Lifecycle();
  std::size_t epochs_confirmed = 0;  ///< consensus-side epoch count
  EpochId next_executed = 1;         ///< execution-side (ledger) epoch id
  const double start_us = obs::TxLifecycleTracer::NowUs();

  const auto process_one = [&]() -> Status {
    if (confirmed.empty()) return Status::Ok();
    ConfirmedEpoch front = std::move(confirmed.front());
    confirmed.pop_front();
    update_queue_gauges();
    // Deferred execution reaches this epoch now: build and seal its ledger
    // blocks against the state root the pipeline has actually committed.
    const EpochId epoch = next_executed++;
    for (ChainId chain = 0;
         chain < static_cast<ChainId>(front.chains.size()); ++chain) {
      Block block = node.ledger().BuildBlock(
          chain, epoch, std::move(front.chains[chain]));
      if (Status s = node.ledger().AppendBlock(std::move(block)); !s.ok()) {
        return s;
      }
    }
    auto batch = node.ledger().SealEpoch(epoch);
    if (!batch.ok()) return batch.status();
    auto report = node.ProcessEpoch(*batch);
    if (!report.ok()) return report.status();
    ++result.epochs_processed;
    result.total_txs += report->txs;
    result.total_committed += report->committed;
    result.total_aborted += report->aborted;
    for (const obs::TxLifetime& life : lifecycle.LastEpochLifetimes()) {
      if (life.aborted || !life.HasStage(obs::TxStage::kCommitted)) continue;
      const double ms = life.EndToEndMs();
      if (ms >= 0) e2e_ms.push_back(ms);
    }
    return Status::Ok();
  };

  for (std::size_t tick = 0; tick < config.epochs; ++tick) {
    // 1. Steady arrival into the mempool.
    mempool.AddAll(workload.MakeBatch(arrival));
    // 2. Consensus confirms every epoch the mempool can fill: the payload
    //    is fixed (kIncluded stamps) and queued for deferred execution.
    while (mempool.PendingCount() >= epoch_txs &&
           epochs_confirmed < config.epochs) {
      ++epochs_confirmed;
      ConfirmedEpoch entry;
      entry.chains.reserve(config.block_concurrency);
      for (std::size_t chain = 0; chain < config.block_concurrency;
           ++chain) {
        entry.chains.push_back(mempool.TakeBatch(config.block_size));
      }
      entry.sealed_us = obs::TxLifecycleTracer::NowUs();
      if (config.max_queue_depth > 0 &&
          confirmed.size() >= config.max_queue_depth) {
        // Queue full: shed the OLDEST epoch so fresh work keeps its
        // (shorter) queueing delay. Its transactions never execute —
        // forget their ingress stamps so the tracer table cannot grow
        // without bound under overload.
        ConfirmedEpoch shed = std::move(confirmed.front());
        confirmed.pop_front();
        ++result.epochs_dropped;
        result.txs_dropped += shed.TxCount();
        queue_dropped->Inc();
        for (const auto& chain : shed.chains) {
          for (const Transaction& tx : chain) {
            lifecycle.DropIngress(LifecycleKey(tx));
          }
        }
      }
      confirmed.push_back(std::move(entry));
      update_queue_gauges();
    }
    // 3. The pipeline drains one epoch per tick.
    if (Status s = process_one(); !s.ok()) return s;
  }
  // Drain: arrivals stopped; process whatever is still queued.
  while (!confirmed.empty()) {
    if (Status s = process_one(); !s.ok()) return s;
  }

  result.wall_ms = (obs::TxLifecycleTracer::NowUs() - start_us) / 1000.0;
  result.sampled = e2e_ms.size();
  if (!e2e_ms.empty()) {
    std::sort(e2e_ms.begin(), e2e_ms.end());
    double sum = 0;
    for (const double v : e2e_ms) sum += v;
    result.e2e_mean_ms = sum / static_cast<double>(e2e_ms.size());
    result.e2e_p50_ms = PercentileOfSorted(e2e_ms, 50);
    result.e2e_p95_ms = PercentileOfSorted(e2e_ms, 95);
    result.e2e_p99_ms = PercentileOfSorted(e2e_ms, 99);
    result.e2e_max_ms = e2e_ms.back();
  }
  result.throughput_tps =
      result.wall_ms > 0
          ? static_cast<double>(result.total_committed) /
                (result.wall_ms / 1000.0)
          : 0;
  return result;
}

/// Sustained load through the cross-epoch pipeline (node/pipeline.h): the
/// same steady-arrival admission as RunSustainedLoad, but confirmed epochs
/// are handed to an EpochPipeline at the given depth instead of processed
/// inline, so epoch N's durable tail overlaps epoch N+1's prepare half.
/// Latency here is per EPOCH (hand-off -> durable commit), not per
/// transaction: it includes the in-window queueing a deeper pipeline trades
/// for throughput — the number the bench regression gate ratio-checks
/// against the depth-0 batch reference.
struct PipelinedSustainedResult {
  SustainedLoadResult load;  ///< counts + wall + throughput (e2e_* unused)
  std::size_t depth = 0;     ///< 0 = batch reference (inline ProcessEpoch)
  double epochs_per_sec = 0;
  double epoch_latency_p50_ms = 0;
  double epoch_latency_p95_ms = 0;
  /// Overlap accounting; default-empty for the depth-0 batch reference.
  PipelineStats stats;
  /// Speedup the measured overlap implies on a machine with cores to spare:
  /// (prepare + commit) / (prepare + commit - overlap). 1.0 when no overlap
  /// was observed; always 1.0 at depth 0.
  double modelled_speedup = 1.0;
};

inline Result<PipelinedSustainedResult> RunSustainedLoadPipelined(
    const SustainedLoadConfig& config, std::size_t depth) {
  if (config.block_size == 0 || config.block_concurrency == 0 ||
      config.epochs == 0) {
    return Status::InvalidArgument("block size/concurrency/epochs must be > 0");
  }
  const std::size_t epoch_txs = config.block_size * config.block_concurrency;
  const std::size_t arrival =
      config.arrival_per_tick == 0 ? epoch_txs : config.arrival_per_tick;

  NodeConfig node_config;
  node_config.scheme = config.scheme;
  node_config.max_chains = std::max<ChainId>(
      12, static_cast<ChainId>(config.block_concurrency));
  FullNode node(node_config, nullptr);

  WorkloadConfig workload_config;
  workload_config.num_accounts = config.num_accounts;
  workload_config.skew = config.skew;
  SmallBankWorkload workload(workload_config, config.seed);
  SmallBankWorkload::InitAccounts(node.state(), config.num_accounts,
                                  config.initial_balance,
                                  config.initial_balance);
  if (Status s = node.state().Flush(); !s.ok()) return s;
  node.ledger().CommitEpochRoot(0, node.state().RootHash());

  Mempool mempool(std::max<std::size_t>(
      100'000, arrival * config.epochs + epoch_txs));

  PipelinedSustainedResult out;
  out.depth = depth;
  PipelineOptions options;
  options.depth = depth == 0 ? 1 : depth;
  std::unique_ptr<EpochPipeline> pipeline;
  if (depth > 0) pipeline = std::make_unique<EpochPipeline>(node, options);

  std::deque<std::vector<std::vector<Transaction>>> confirmed;
  std::vector<double> inline_latency_ms;  ///< depth-0 per-epoch wall
  std::size_t epochs_confirmed = 0;
  EpochId next_executed = 1;
  const double start_us = obs::TxLifecycleTracer::NowUs();

  const auto process_one = [&]() -> Status {
    if (confirmed.empty()) return Status::Ok();
    std::vector<std::vector<Transaction>> chains =
        std::move(confirmed.front());
    confirmed.pop_front();
    const EpochId epoch = next_executed++;
    if (pipeline != nullptr) {
      // Submit blocks while `depth` epochs are in flight — the pipeline's
      // own backpressure paces the admission loop.
      return pipeline->Submit(epoch, std::move(chains));
    }
    const double t0 = obs::TxLifecycleTracer::NowUs();
    for (ChainId chain = 0;
         chain < static_cast<ChainId>(chains.size()); ++chain) {
      Block block =
          node.ledger().BuildBlock(chain, epoch, std::move(chains[chain]));
      if (Status s = node.ledger().AppendBlock(std::move(block)); !s.ok()) {
        return s;
      }
    }
    auto batch = node.ledger().SealEpoch(epoch);
    if (!batch.ok()) return batch.status();
    auto report = node.ProcessEpoch(*batch);
    if (!report.ok()) return report.status();
    inline_latency_ms.push_back(
        (obs::TxLifecycleTracer::NowUs() - t0) / 1000.0);
    out.load.total_txs += report->txs;
    out.load.total_committed += report->committed;
    out.load.total_aborted += report->aborted;
    ++out.load.epochs_processed;
    return Status::Ok();
  };

  for (std::size_t tick = 0; tick < config.epochs; ++tick) {
    mempool.AddAll(workload.MakeBatch(arrival));
    while (mempool.PendingCount() >= epoch_txs &&
           epochs_confirmed < config.epochs) {
      ++epochs_confirmed;
      std::vector<std::vector<Transaction>> chains;
      chains.reserve(config.block_concurrency);
      for (std::size_t chain = 0; chain < config.block_concurrency;
           ++chain) {
        chains.push_back(mempool.TakeBatch(config.block_size));
      }
      confirmed.push_back(std::move(chains));
    }
    if (Status s = process_one(); !s.ok()) return s;
  }
  while (!confirmed.empty()) {
    if (Status s = process_one(); !s.ok()) return s;
  }

  std::vector<double> latency_ms;
  if (pipeline != nullptr) {
    auto reports = pipeline->Drain();
    if (!reports.ok()) return reports.status();
    for (const EpochReport& r : *reports) {
      out.load.total_txs += r.txs;
      out.load.total_committed += r.committed;
      out.load.total_aborted += r.aborted;
      ++out.load.epochs_processed;
    }
    out.stats = pipeline->stats();
    latency_ms = out.stats.epoch_latency_ms;
    const double halves = out.stats.prepare_us + out.stats.commit_us;
    if (halves > out.stats.overlap_us && out.stats.overlap_us > 0) {
      out.modelled_speedup = halves / (halves - out.stats.overlap_us);
    }
  } else {
    latency_ms = std::move(inline_latency_ms);
  }

  out.load.wall_ms =
      (obs::TxLifecycleTracer::NowUs() - start_us) / 1000.0;
  out.load.throughput_tps =
      out.load.wall_ms > 0
          ? static_cast<double>(out.load.total_committed) /
                (out.load.wall_ms / 1000.0)
          : 0;
  out.epochs_per_sec =
      out.load.wall_ms > 0
          ? static_cast<double>(out.load.epochs_processed) /
                (out.load.wall_ms / 1000.0)
          : 0;
  if (!latency_ms.empty()) {
    std::sort(latency_ms.begin(), latency_ms.end());
    out.epoch_latency_p50_ms = PercentileOfSorted(latency_ms, 50);
    out.epoch_latency_p95_ms = PercentileOfSorted(latency_ms, 95);
  }
  return out;
}

}  // namespace nezha::bench
