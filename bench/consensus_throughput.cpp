// Substrate bench: OHIE consensus scaling — confirmed-block throughput and
// confirmation latency as the number of parallel chains k grows, at a fixed
// per-chain mining rate (the protocol's core claim: throughput scales with
// k because chains run independent Nakamoto instances).
//
// This is the property that produces the block concurrency Nezha exploits:
// more chains => more concurrent blocks per epoch => more conflicts for the
// concurrency-control layer to resolve (Table I).
#include <cstdio>

#include "bench/bench_util.h"
#include "consensus/ohie_sim.h"
#include "consensus/dagrider_sim.h"
#include "consensus/treegraph_sim.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const double duration_ms =
      static_cast<double>(EnvSize("NEZHA_BENCH_DURATION_MS", 120'000));
  const double per_chain_interval_ms = 1000;  // 1 block/s/chain expected

  Header("OHIE consensus scaling — throughput vs parallel chains",
         "5 nodes, 1 block/s per chain, 100 ms +-50 ms latency, confirm "
         "depth 6, 2 min simulated");

  Row({"chains", "mined", "per-chain", "forked", "confirmed",
       "confirmed/s", "scale"});
  double base_rate = 0;
  for (ChainId k : {1u, 2u, 4u, 8u, 16u}) {
    OhieSimConfig config;
    config.num_chains = k;
    config.num_nodes = 5;
    config.mean_block_interval_ms = per_chain_interval_ms / k;
    config.base_latency_ms = 100;
    config.jitter_ms = 100;
    config.confirm_depth = 6;
    config.duration_ms = duration_ms;
    config.seed = 17;
    OhieSimulation sim(config);
    sim.Run();

    const OhieSimStats& stats = sim.stats();
    const double confirmed_per_s =
        static_cast<double>(stats.confirmed_blocks) / (duration_ms / 1000.0);
    if (k == 1) base_rate = confirmed_per_s;
    Row({FmtInt(k), FmtInt(stats.blocks_mined),
         Fmt(static_cast<double>(stats.blocks_mined) / k, 1),
         FmtInt(stats.forked_blocks), FmtInt(stats.confirmed_blocks),
         Fmt(confirmed_per_s, 2),
         Fmt(confirmed_per_s / (base_rate > 0 ? base_rate : 1), 1) + "x"});
  }

  std::printf(
      "\nShape check: confirmed throughput scales near-linearly with the "
      "number\nof chains at fixed per-chain rate — OHIE's \"scaling made "
      "simple\" claim,\nand the source of the block concurrency Nezha's "
      "scheduler is built for.\n");

  // The other mainstream DAG family (§II.A): Conflux-style tree-graph.
  // Here concurrency comes from raising the mining rate — concurrent
  // blocks are woven in by reference edges instead of being forked away,
  // and epoch sizes ARE the block concurrency ω_e of the paper's model.
  Header("Tree-graph (Conflux-style) — epoch concurrency vs mining rate",
         "5 nodes, 100 ms +-100 ms latency, confirm depth 8, 2 min "
         "simulated");
  Row({"interval ms", "mined", "confirmed", "epochs", "mean w_e", "max w_e",
       "utilization"});
  for (double interval : {1000.0, 500.0, 250.0, 125.0, 62.5}) {
    TreeGraphSimConfig config;
    config.num_nodes = 5;
    config.mean_block_interval_ms = interval;
    config.base_latency_ms = 100;
    config.jitter_ms = 100;
    config.confirm_depth = 8;
    config.duration_ms = duration_ms;
    config.seed = 23;
    TreeGraphSimulation sim(config);
    sim.Run();
    const TreeGraphSimStats& stats = sim.stats();
    Row({Fmt(interval, 0), FmtInt(stats.blocks_mined),
         FmtInt(stats.confirmed_blocks), FmtInt(stats.confirmed_epochs),
         Fmt(stats.mean_epoch_size, 2), Fmt(stats.max_epoch_size, 0),
         FmtPct(stats.blocks_mined == 0
                    ? 0
                    : static_cast<double>(stats.confirmed_blocks) /
                          static_cast<double>(stats.blocks_mined))});
  }
  std::printf(
      "\nShape check: as the mining interval shrinks toward the network "
      "latency,\nepoch concurrency (mean ω_e) grows while block utilization "
      "stays high —\nthe tree-graph discards nothing; concurrent blocks "
      "become the very B_e\nbatches the Nezha layer schedules.\n");

  // Third family: the BFT DAG (DAG-Rider-style). Rounds self-clock off
  // quorums, so vertex throughput tracks 1/latency and every committed
  // wave anchors one execution batch.
  Header("BFT DAG (DAG-Rider-style) — rounds and commits vs latency",
         "4 nodes, 20 ms emit delay, 1 min simulated");
  Row({"latency ms", "vertices", "rounds", "committed", "batches",
       "commit lag"});
  for (double latency : {25.0, 50.0, 100.0, 200.0}) {
    DagRiderSimConfig config;
    config.num_nodes = 4;
    config.base_latency_ms = latency;
    config.jitter_ms = latency;
    config.duration_ms = 60'000;
    config.seed = 29;
    DagRiderSimulation sim(config);
    sim.Run();
    const DagRiderSimStats& stats = sim.stats();
    Row({Fmt(latency, 0), FmtInt(stats.vertices_emitted),
         FmtInt(stats.max_round), FmtInt(stats.committed_vertices),
         FmtInt(stats.committed_batches),
         FmtPct(stats.vertices_emitted == 0
                    ? 0
                    : 1.0 - static_cast<double>(stats.committed_vertices) /
                                static_cast<double>(stats.vertices_emitted))});
  }
  std::printf(
      "\nShape check: round rate (and thus vertex throughput) scales "
      "inversely\nwith latency; the uncommitted tail (commit lag) stays a "
      "small fraction —\nwave commits keep pace with the DAG's growth.\n");
  return 0;
}
