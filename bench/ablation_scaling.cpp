// Ablation: worker-thread scaling of the two parallel phases — speculative
// execution and grouped commitment — plus the end-to-end epoch latency.
// (The paper's full node uses 16 vCPUs; this shows how the implementation
// scales on whatever this machine has.)
#include <cstdio>

#include "bench/bench_util.h"
#include "cc/nezha/nezha_scheduler.h"
#include "common/stopwatch.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t txs_count = EnvSize("NEZHA_BENCH_TXS", 20'000);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 5);

  Header("Ablation — thread scaling of execution & grouped commitment",
         "SmallBank, skew 0.2, 2400 txs (block concurrency 12), MiniVM "
         "bytecode execution");

  WorkloadConfig config;
  config.num_accounts = 10'000;
  config.skew = 0.2;
  SmallBankWorkload workload(config, 77);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 1000, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(txs_count);

  Row({"threads", "execute(ms)", "commit(ms)", "speedup(exec)"});
  double exec_base = 0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    double exec_ms = 0, commit_ms = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Stopwatch watch;
      const auto exec =
          ExecuteBatchConcurrent(pool, snap, txs, ExecMode::kBytecode);
      exec_ms += watch.ElapsedMillis();

      NezhaScheduler scheduler;
      auto schedule = scheduler.BuildSchedule(exec.rwsets);
      watch.Restart();
      StateDB state;
      CommitSchedule(pool, state, *schedule, exec.rwsets);
      commit_ms += watch.ElapsedMillis();
    }
    exec_ms /= static_cast<double>(reps);
    commit_ms /= static_cast<double>(reps);
    if (threads == 1) exec_base = exec_ms;
    Row({FmtInt(threads), Fmt(exec_ms, 2), Fmt(commit_ms, 2),
         Fmt(exec_base / exec_ms, 2) + "x"});
  }
  std::printf(
      "\nExecution is embarrassingly parallel (each tx simulates against "
      "one\nimmutable snapshot); scaling tracks physical cores. Commitment\n"
      "parallelism is bounded by commit-group sizes.\n");
  return 0;
}
