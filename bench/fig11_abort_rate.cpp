// Fig. 11 reproduction: transaction abort rate under rising Zipfian skew
// (0.6 .. 1.0), block concurrency 1 (the paper keeps CG alive by using a
// single 200-tx block). OCC is included as the extra baseline from the
// paper's Table II discussion.
#include <cstdio>

#include "bench/bench_util.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/occ/occ_scheduler.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main() {
  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 10);

  Header("Fig. 11 — transaction abort rate vs skew (block concurrency 1)",
         "SmallBank, 10k accounts, 200-tx batches, averaged over seeds");

  Row({"skew", "nezha", "nezha-noreorder", "cg", "occ", "nezha vs cg"});

  for (double skew : {0.6, 0.7, 0.8, 0.9, 1.0}) {
    double nezha = 0, noreorder = 0, cg = 0, occ = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      WorkloadConfig config;
      config.num_accounts = 10'000;
      config.skew = skew;
      SmallBankWorkload workload(config, 7000 + rep);
      StateDB db;
      const StateSnapshot snap = db.MakeSnapshot(0);
      const auto txs = workload.MakeBatch(block_size);
      const auto exec = ExecuteBatchSerial(snap, txs);

      NezhaScheduler nezha_scheduler;
      NezhaOptions no_reorder_options;
      no_reorder_options.enable_reordering = false;
      NezhaScheduler noreorder_scheduler(no_reorder_options);
      CGScheduler cg_scheduler;
      OCCScheduler occ_scheduler;

      nezha += nezha_scheduler.BuildSchedule(exec.rwsets)->AbortRate();
      noreorder += noreorder_scheduler.BuildSchedule(exec.rwsets)->AbortRate();
      cg += cg_scheduler.BuildSchedule(exec.rwsets)->AbortRate();
      occ += occ_scheduler.BuildSchedule(exec.rwsets)->AbortRate();
    }
    const double r = static_cast<double>(reps);
    Row({Fmt(skew, 1), FmtPct(nezha / r), FmtPct(noreorder / r),
         FmtPct(cg / r), FmtPct(occ / r),
         Fmt((cg - nezha) / r * 100, 1) + " pp lower"});
  }

  std::printf(
      "\nShape check: all schemes' abort rates climb steeply with skew; "
      "Nezha\ntracks CG at low skew and beats it as skew approaches 1.0 "
      "(paper: 3.5 pp\nat skew 1.0). OCC aborts the most throughout.\n");
  return 0;
}
