// Fig. 11 reproduction: transaction abort rate under rising Zipfian skew
// (0.6 .. 1.0), block concurrency 1 (the paper keeps CG alive by using a
// single 200-tx block). OCC is included as the extra baseline from the
// paper's Table II discussion.
//
// Abort counting goes through the schedule's attribution rollup — the same
// records the flight recorder stores — so the rate shown here and the
// per-cause breakdown always agree (docs/OBSERVABILITY.md).
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/occ/occ_scheduler.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 10);

  Header("Fig. 11 — transaction abort rate vs skew (block concurrency 1)",
         "SmallBank, 10k accounts, 200-tx batches, averaged over seeds");

  Row({"skew", "nezha", "nezha-noreorder", "cg", "occ", "nezha vs cg"});

  JsonReport report("fig11_abort_rate");
  std::map<std::string, obs::AttributionRollup> last_rollups;
  for (double skew : {0.6, 0.7, 0.8, 0.9, 1.0}) {
    // scheme -> merged attribution rollup across reps.
    std::map<std::string, obs::AttributionRollup> rollups;
    std::size_t total_txs = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      WorkloadConfig config;
      config.num_accounts = 10'000;
      config.skew = skew;
      SmallBankWorkload workload(config, 7000 + rep);
      StateDB db;
      const StateSnapshot snap = db.MakeSnapshot(0);
      const auto txs = workload.MakeBatch(block_size);
      const auto exec = ExecuteBatchSerial(snap, txs);
      total_txs += txs.size();

      NezhaScheduler nezha_scheduler;
      NezhaOptions no_reorder_options;
      no_reorder_options.enable_reordering = false;
      NezhaScheduler noreorder_scheduler(no_reorder_options);
      CGScheduler cg_scheduler;
      OCCScheduler occ_scheduler;
      Scheduler* schedulers[] = {&nezha_scheduler, &noreorder_scheduler,
                                 &cg_scheduler, &occ_scheduler};
      const char* names[] = {"nezha", "nezha-noreorder", "cg", "occ"};
      for (std::size_t s = 0; s < 4; ++s) {
        const auto schedule = schedulers[s]->BuildSchedule(exec.rwsets);
        if (!schedule.ok()) return 1;
        // One record per aborted tx (PublishSchedulerObs guarantees it), so
        // the rollup IS the abort count — no ad-hoc flag counting.
        rollups[names[s]].Merge(obs::BuildRollup(schedule->attribution));
      }
    }
    const auto rate = [&](const char* scheme) {
      return static_cast<double>(rollups[scheme].total_aborts) /
             static_cast<double>(total_txs);
    };
    const double nezha = rate("nezha");
    const double cg = rate("cg");
    Row({Fmt(skew, 1), FmtPct(nezha), FmtPct(rate("nezha-noreorder")),
         FmtPct(cg), FmtPct(rate("occ")),
         Fmt((cg - nezha) * 100, 1) + " pp lower"});

    for (const auto& [scheme, rollup] : rollups) {
      JsonResult result;
      result.bench = "abort_rate";
      result.scheme = scheme;
      result.params.Set("workload", "smallbank");
      result.params.Set("skew", skew);
      result.params.Set("block_size", block_size);
      result.params.Set("reps", reps);
      result.abort_rate = rate(scheme.c_str());
      result.rollup = rollup;
      report.Add(result);
    }
    last_rollups = rollups;
  }

  // The per-cause split of the most contended row, from the same rollup
  // that produced the rates above.
  std::printf("\nAbort causes at skew 1.0:\n");
  Row({"scheme", "read-write", "ww-unreord.", "rank-cycle", "reorders"});
  for (const auto& [scheme, rollup] : last_rollups) {
    Row({scheme, FmtInt(rollup.Kind(obs::ConflictKind::kReadWrite)),
         FmtInt(rollup.Kind(obs::ConflictKind::kWriteWriteUnreorderable)),
         FmtInt(rollup.Kind(obs::ConflictKind::kRankCycle)),
         FmtInt(rollup.reorder_commits) + "/" +
             FmtInt(rollup.reorder_attempts)});
  }
  std::printf(
      "\nShape check: all schemes' abort rates climb steeply with skew; "
      "Nezha\ntracks CG at low skew and beats it as skew approaches 1.0 "
      "(paper: 3.5 pp\nat skew 1.0). OCC aborts the most throughout.\n");

  if (!json_path.empty() && !report.WriteTo(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
