// Table II, quantified: the paper's qualitative scheme comparison rendered
// as measured properties on one contended workload — does the scheme
// execute concurrently, does it COMMIT concurrently (max commit-group
// size), does it need special hardware (all: no), and does it stay
// efficient under considerable conflicts (cc latency + abort rate at skew
// 0.8, concurrency 8).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "node/full_node.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  const std::size_t txs_count = EnvSize("NEZHA_BENCH_TXS", 1600);
  const double skew = 0.8;
  JsonReport report("table2_schemes");

  Header("Table II (quantified) — scheme properties under high contention",
         "SmallBank, skew 0.8, 1600 txs (block concurrency 8)");

  WorkloadConfig config;
  config.num_accounts = 10'000;
  config.skew = skew;
  SmallBankWorkload workload(config, 22);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(txs_count);
  const auto exec = ExecuteBatchSerial(snap, txs);

  ThreadPool pool(0);
  Row({"scheme", "cc(ms)", "aborts", "groups", "max group", "commit conc."},
      13);
  for (SchemeKind kind : {SchemeKind::kOcc, SchemeKind::kCg,
                          SchemeKind::kNezha}) {
    auto scheduler = MakeScheduler(kind);
    Stopwatch watch;
    auto schedule = scheduler->BuildSchedule(exec.rwsets);
    const double cc_ms = watch.ElapsedMillis();
    if (!schedule.ok()) return 1;
    StateDB state;
    const CommitStats stats = CommitSchedule(pool, state, *schedule,
                                             exec.rwsets);
    Row({std::string(scheduler->name()), Fmt(cc_ms, 2),
         FmtPct(schedule->AbortRate()), FmtInt(stats.groups),
         FmtInt(stats.max_group),
         stats.max_group > 1 ? "yes" : "no (serial)"},
        13);

    JsonResult result;
    result.bench = "scheme_properties";
    result.scheme = std::string(scheduler->name());
    result.params.Set("workload", "smallbank");
    result.params.Set("skew", skew);
    result.params.Set("txs", txs_count);
    result.latency_ms = cc_ms;
    result.abort_rate = schedule->AbortRate();
    result.rollup = obs::BuildRollup(schedule->attribution);
    result.extra.Set("commit_groups", stats.groups);
    result.extra.Set("max_commit_group", stats.max_group);
    report.Add(result);
  }
  if (!json_path.empty() && !report.WriteTo(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  std::printf(
      "\nTable II's qualitative claims, measured: OCC is cheap but aborts "
      "the\nmost and commits serially; CG reduces aborts but pays heavy "
      "cycle\nhandling and still commits serially; Nezha keeps cc cheap, "
      "aborts least,\nand is the only scheme with concurrent commitment "
      "(max group > 1).\nNo scheme here assumes special software/hardware "
      "(no STM/HTM).\n");
  return 0;
}
