// Shared helpers for the paper-reproduction bench binaries: aligned table
// printing, environment-variable knobs (every bench runs standalone with
// sensible defaults; NEZHA_BENCH_* variables scale them up or down), and the
// machine-readable JSON emitter behind the common `--json <path>` flag
// (docs/OBSERVABILITY.md, "Perf-regression harness").
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "obs/abort_attribution.h"

namespace nezha::bench {

/// Reads a positive integer knob from the environment, with a default.
inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Prints a section header matching the paper artifact style.
inline void Header(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

/// Fixed-width row printer: Row({"col1", "col2"}) with a 14-char default.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(std::uint64_t v) { return std::to_string(v); }

inline std::string FmtPct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

// ---------------------------------------------------------------------------
// Machine-readable results: every bench binary accepts `--json <path>` (or
// `--json=<path>`) and, when given, appends its measurements to a JSON report
// shaped for bench/check_bench_regression:
//   {"machine":..., "git_sha":..., "suite":...,
//    "results":[{"bench","scheme","params":{...},"throughput_tps",
//                "latency_ms","abort_rate","aborts":{cause: n, ...},
//                "reorders":{"attempted","committed"}}, ...]}
// ---------------------------------------------------------------------------

/// Extracts the `--json <path>` / `--json=<path>` flag; empty = not given.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

inline std::string MachineName() {
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) != 0) return "unknown";
  return host[0] != '\0' ? host : "unknown";
}

/// Commit under test: $NEZHA_GIT_SHA override, else CI's $GITHUB_SHA.
inline std::string GitSha() {
  for (const char* var : {"NEZHA_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* sha = std::getenv(var); sha != nullptr && sha[0] != '\0') {
      return sha;
    }
  }
  return "unknown";
}

/// Renders an attribution rollup as {"aborts":{cause: n},"reorders":{...}}
/// members appended onto `result`.
inline void AppendRollupJson(json::Value& result,
                             const obs::AttributionRollup& rollup) {
  json::Value aborts;
  aborts.Set("total", rollup.total_aborts);
  for (std::size_t i = 0; i < obs::kNumConflictKinds; ++i) {
    aborts.Set(
        obs::ConflictKindName(static_cast<obs::ConflictKind>(i)),
        rollup.by_kind[i]);
  }
  result.Set("aborts", std::move(aborts));
  json::Value reorders;
  reorders.Set("attempted", rollup.reorder_attempts);
  reorders.Set("committed", rollup.reorder_commits);
  result.Set("reorders", std::move(reorders));
  json::Value hot;
  for (const obs::AddressHeat& h : rollup.hot_addresses) {
    json::Value entry;
    entry.Set("address", h.address);
    entry.Set("readers", h.readers);
    entry.Set("writers", h.writers);
    entry.Set("aborts", h.aborts);
    hot.Append(std::move(entry));
  }
  if (!hot.is_null()) result.Set("hot_addresses", std::move(hot));
}

/// One measured configuration of one bench.
struct JsonResult {
  std::string bench;    ///< e.g. "throughput", "abort_rate"
  std::string scheme;   ///< serial / occ / cg / nezha / nezha-noreorder
  json::Value params;   ///< workload parameters (object)
  double throughput_tps = 0;
  double latency_ms = 0;
  double abort_rate = 0;
  obs::AttributionRollup rollup;
  json::Value extra;    ///< optional bench-specific members (object)
};

/// Accumulates JsonResults and writes the report document.
class JsonReport {
 public:
  explicit JsonReport(std::string suite) : suite_(std::move(suite)) {}

  void Add(JsonResult r) { results_.push_back(std::move(r)); }
  bool empty() const { return results_.empty(); }
  std::size_t size() const { return results_.size(); }

  json::Value Build() const {
    json::Value doc;
    doc.Set("machine", MachineName());
    doc.Set("git_sha", GitSha());
    doc.Set("suite", suite_);
    json::Value results;
    for (const JsonResult& r : results_) {
      json::Value entry;
      entry.Set("bench", r.bench);
      entry.Set("scheme", r.scheme);
      entry.Set("params", r.params);
      entry.Set("throughput_tps", r.throughput_tps);
      entry.Set("latency_ms", r.latency_ms);
      entry.Set("abort_rate", r.abort_rate);
      AppendRollupJson(entry, r.rollup);
      if (r.extra.is_object()) {
        for (const auto& [key, value] : r.extra.AsObject()) {
          entry.Set(key, value);
        }
      }
      results.Append(std::move(entry));
    }
    if (results.is_null()) results = json::Array{};
    doc.Set("results", std::move(results));
    return doc;
  }

  /// Writes the report (pretty-printed, trailing newline); false on I/O
  /// failure. Prints a one-line confirmation so CI logs show the path.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = Build().Dump(2) + "\n";
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    if (std::fclose(f) != 0 || !ok) return false;
    std::printf("\n[json] wrote %zu results to %s\n", results_.size(),
                path.c_str());
    return true;
  }

 private:
  std::string suite_;
  std::vector<JsonResult> results_;
};

}  // namespace nezha::bench
