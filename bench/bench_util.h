// Shared helpers for the paper-reproduction bench binaries: aligned table
// printing and environment-variable knobs (every bench runs standalone with
// sensible defaults; NEZHA_BENCH_* variables scale them up or down).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace nezha::bench {

/// Reads a positive integer knob from the environment, with a default.
inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Prints a section header matching the paper artifact style.
inline void Header(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

/// Fixed-width row printer: Row({"col1", "col2"}) with a 14-char default.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string FmtInt(std::uint64_t v) { return std::to_string(v); }

inline std::string FmtPct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace nezha::bench
