// Fig. 9 reproduction: concurrency-control + commitment latency of Nezha vs
// the CG scheme under varying block concurrency (2..12) and Zipfian skew
// (0.2 / 0.4 / 0.6 / 0.8). All numbers are measured on the real
// implementations; "FAIL(mem)" marks runs where CG's Johnson enumeration
// blew its budget — the condition under which the paper's CG prototype died
// of OOM (skew 0.8, concurrency > 4).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

using namespace nezha;
using namespace nezha::bench;

namespace {

struct Measurement {
  double cc_commit_ms = 0;
  bool exhausted = false;
};

Measurement MeasureScheme(Scheduler& scheduler,
                          const std::vector<ReadWriteSet>& rwsets,
                          ThreadPool& pool) {
  Stopwatch watch;
  auto schedule = scheduler.BuildSchedule(rwsets);
  if (!schedule.ok()) return {};
  StateDB state;
  CommitSchedule(pool, state, *schedule, rwsets);
  Measurement m;
  m.cc_commit_ms = watch.ElapsedMillis();
  m.exhausted = scheduler.metrics().resource_exhausted;
  return m;
}

}  // namespace

int main() {
  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t reps = EnvSize("NEZHA_BENCH_REPS", 3);

  Header("Fig. 9 — cc + commitment latency: Nezha vs CG (measured)",
         "SmallBank, 10k accounts, 200-tx blocks; paper: CG explodes with "
         "skew & concurrency, Nezha stays flat");

  ThreadPool pool(0);
  for (double skew : {0.2, 0.4, 0.6, 0.8}) {
    std::printf("\n--- skew = %.1f ---\n", skew);
    Row({"concurrency", "txs", "nezha(ms)", "cg(ms)", "cg status",
         "speedup"});
    for (std::size_t omega : {2u, 4u, 6u, 8u, 10u, 12u}) {
      double nezha_ms = 0, cg_ms = 0;
      bool exhausted = false;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        WorkloadConfig config;
        config.num_accounts = 10'000;
        config.skew = skew;
        SmallBankWorkload workload(config, 9000 + omega * 10 + rep);
        StateDB db;
        const StateSnapshot snap = db.MakeSnapshot(0);
        const auto txs = workload.MakeBatch(omega * block_size);
        const auto exec = ExecuteBatchSerial(snap, txs);

        NezhaScheduler nezha;
        CGScheduler cg;
        nezha_ms += MeasureScheme(nezha, exec.rwsets, pool).cc_commit_ms;
        const Measurement m = MeasureScheme(cg, exec.rwsets, pool);
        cg_ms += m.cc_commit_ms;
        exhausted |= m.exhausted;
      }
      nezha_ms /= static_cast<double>(reps);
      cg_ms /= static_cast<double>(reps);
      Row({FmtInt(omega), FmtInt(omega * block_size), Fmt(nezha_ms, 2),
           Fmt(cg_ms, 2), exhausted ? "FAIL(mem)" : "ok",
           Fmt(cg_ms / (nezha_ms > 0 ? nezha_ms : 1e-9), 1) + "x"});
    }
  }
  std::printf(
      "\nShape check: Nezha latency stays low and nearly flat across skew "
      "and\nconcurrency; CG grows much faster and trips its memory budget at "
      "high\nskew — matching Fig. 9's blow-up and the paper's OOM note.\n");
  return 0;
}
