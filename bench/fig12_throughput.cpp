// Fig. 12 reproduction: effective system throughput (committed tx/s) under
// varying block concurrency, skew 0.2 and 0.6, with a 1 s expected block
// generation cadence. Serial & execute-phase latencies come from the
// calibrated EVM cost model; concurrency control and commitment are
// measured (DESIGN.md §4).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "node/simulation.h"

using namespace nezha;
using namespace nezha::bench;

int main(int argc, char** argv) {
  const std::string json_path = JsonPathFromArgs(argc, argv);
  const std::size_t block_size = EnvSize("NEZHA_BENCH_BLOCK_SIZE", 200);
  const std::size_t epochs = EnvSize("NEZHA_BENCH_EPOCHS", 3);
  JsonReport report("fig12_throughput");

  Header("Fig. 12 — effective throughput vs block concurrency (1 s epochs)",
         "committed tx/s; Serial/execute modelled on the paper's testbed, "
         "cc+commit measured");

  for (double skew : {0.2, 0.6}) {
    std::printf("\n--- skew = %.1f ---\n", skew);
    Row({"concurrency", "serial tps", "cg tps", "nezha tps", "nezha aborts"});
    for (std::size_t omega : {2u, 4u, 6u, 8u, 10u, 12u}) {
      SimulationConfig config;
      config.workload.num_accounts = 10'000;
      config.workload.skew = skew;
      config.block_size = block_size;
      config.block_concurrency = omega;
      config.epochs = epochs;
      config.seed = 1200 + omega;
      config.node.model_execution_cost = true;

      config.node.scheme = SchemeKind::kSerial;
      auto serial = RunSimulation(config);
      config.node.scheme = SchemeKind::kCg;
      auto cg = RunSimulation(config);
      config.node.scheme = SchemeKind::kNezha;
      auto nezha = RunSimulation(config);
      if (!serial.ok() || !cg.ok() || !nezha.ok()) {
        std::fprintf(stderr, "simulation failed\n");
        return 1;
      }
      Row({FmtInt(omega), Fmt(serial->EffectiveTps(), 1),
           Fmt(cg->EffectiveTps(), 1), Fmt(nezha->EffectiveTps(), 1),
           FmtPct(nezha->AbortRate())});

      const SimulationSummary* summaries[] = {&*serial, &*cg, &*nezha};
      const char* names[] = {"serial", "cg", "nezha"};
      for (std::size_t s = 0; s < 3; ++s) {
        JsonResult result;
        result.bench = "throughput";
        result.scheme = names[s];
        result.params.Set("workload", "smallbank");
        result.params.Set("skew", skew);
        result.params.Set("block_size", block_size);
        result.params.Set("block_concurrency", omega);
        result.params.Set("epochs", epochs);
        result.throughput_tps = summaries[s]->EffectiveTps();
        result.latency_ms = summaries[s]->MeanTotalMs();
        result.abort_rate = summaries[s]->AbortRate();
        report.Add(result);
      }
    }
  }
  if (!json_path.empty() && !report.WriteTo(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  std::printf(
      "\nShape check: Serial stays flat (~60-90 tps) regardless of "
      "concurrency;\nNezha scales near-linearly with concurrency and holds "
      "up at skew 0.6,\nwhere CG's concurrency-control latency erodes its "
      "throughput at high\nconcurrency — Fig. 12's crossover.\n");
  return 0;
}
