// detlint — the determinism lint pass (docs/ANALYSIS.md "Determinism
// auditor").
//
// Scans a source tree for textual patterns that historically produce
// nondeterministic behavior in this codebase: hash-table iteration feeding
// ordered output, wall-clock reads outside the observability layer,
// unseeded RNGs, pointer-value ordering/hashing, thread-id-dependent
// branching, and std::hash in consensus-visible paths. Findings not covered
// by the committed allowlist (tools/detlint/allowlist.txt, one justified
// entry per benign site) fail the run — the tool is wired into ctest and CI
// with warnings-as-errors semantics.
//
// This is a line-oriented heuristic pass, not a compiler plugin: it trades
// precision for zero build-time dependencies and a reviewable allowlist.
// Every rule errs toward flagging; the allowlist is where human judgment
// about benign sites lives, one justification per entry.
//
// Usage: detlint <src-root> <allowlist-file>
// Exit codes: 0 clean, 1 unallowlisted findings (or stale allowlist
// entries), 2 usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string rule;
  std::string file;   // path relative to the scanned root
  std::size_t line = 0;
  std::string text;   // the offending line, trimmed
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string file;   // relative path, must match the finding's exactly
  std::string token;  // substring that must appear on the flagged line
  std::string justification;
  std::size_t source_line = 0;
  bool used = false;
};

std::string Trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(begin, end - begin + 1));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Strips // and /* */ comments plus string/char literal *contents* so
/// patterns never match documentation or log text. Block-comment state
/// carries across lines via `in_block_comment`.
std::string StripCommentsAndStrings(const std::string& line,
                                    bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// One scanned file: raw lines plus comment/string-stripped lines.
struct FileText {
  std::string rel_path;
  std::vector<std::string> raw;
  std::vector<std::string> code;  // stripped
};

// ---------------------------------------------------------------------------
// Rules. Each returns findings for one file.
// ---------------------------------------------------------------------------

/// unordered-iter: range-for (or explicit iterator loop) over a variable
/// declared as std::unordered_map/set/multimap/multiset in the same file.
/// Iterating a hash table is fine on its own — feeding the iteration into
/// ordered output, hashing, or serialization is not, and this pass cannot
/// tell the two apart, so every such loop is flagged and benign ones are
/// allowlisted with a justification.
std::vector<Finding> RuleUnorderedIteration(const FileText& file) {
  std::vector<Finding> findings;
  // Pass 1: names declared with an unordered container type.
  static const std::regex decl_re(
      R"((?:std::)?unordered_(?:flat_)?(?:map|set|multimap|multiset)\s*<[^;()]*>\s+([A-Za-z_]\w*)\s*[;={(])");
  static const std::regex alias_re(
      R"(using\s+([A-Za-z_]\w*)\s*=\s*(?:std::)?unordered_(?:map|set|multimap|multiset)\b)");
  std::set<std::string> unordered_names;
  std::set<std::string> unordered_types;
  for (const std::string& code : file.code) {
    for (auto it = std::sregex_iterator(code.begin(), code.end(), decl_re);
         it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(), alias_re);
         it != std::sregex_iterator(); ++it) {
      unordered_types.insert((*it)[1].str());
    }
  }
  // Pass 1b: names declared via an in-file alias of an unordered container.
  if (!unordered_types.empty()) {
    for (const std::string& code : file.code) {
      for (const std::string& type : unordered_types) {
        const std::regex aliased_decl(type + R"(\s+([A-Za-z_]\w*)\s*[;={(])");
        for (auto it =
                 std::sregex_iterator(code.begin(), code.end(), aliased_decl);
             it != std::sregex_iterator(); ++it) {
          unordered_names.insert((*it)[1].str());
        }
      }
    }
  }
  if (unordered_names.empty()) return findings;
  // Pass 2: iteration over one of those names.
  static const std::regex range_for_re(
      R"(for\s*\(.*:\s*\*?([A-Za-z_]\w*(?:\.\w+|->\w+)*)\s*\))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(file.code[i], m, range_for_re)) continue;
    // Match either the name itself or a member access ending in it
    // (shard.dirty); take the last path component.
    std::string target = m[1].str();
    const auto dot = target.find_last_of(".>");
    if (dot != std::string::npos) target = target.substr(dot + 1);
    if (unordered_names.count(target) == 0) continue;
    findings.push_back(
        {"unordered-iter", file.rel_path, i + 1, Trim(file.raw[i]),
         "range-for over unordered container '" + target +
             "' — iteration order is hash-table layout, not data; sort "
             "before feeding ordered output/hash/serialization"});
  }
  return findings;
}

/// wall-clock: time reads outside src/obs (the observability layer owns
/// time). Consensus, scheduling and storage must be simulated-time or
/// input-driven — a wall-clock read there makes replays diverge.
std::vector<Finding> RuleWallClock(const FileText& file) {
  std::vector<Finding> findings;
  if (StartsWith(file.rel_path, "obs/")) return findings;
  static const std::regex clock_re(
      R"((?:std::chrono::(?:system_clock|steady_clock|high_resolution_clock)::now\s*\()|(?:\bgettimeofday\s*\()|(?:\bclock_gettime\s*\()|(?:\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], clock_re)) continue;
    findings.push_back({"wall-clock", file.rel_path, i + 1, Trim(file.raw[i]),
                        "wall-clock read outside src/obs — consensus and "
                        "pipeline code must be simulated-time or input-"
                        "driven, or replays diverge"});
  }
  return findings;
}

/// unseeded-rng: sources of randomness that cannot be replayed from a seed.
std::vector<Finding> RuleUnseededRng(const FileText& file) {
  std::vector<Finding> findings;
  static const std::regex rng_re(
      R"((?:std::random_device)|(?:\bsrand\s*\()|(?:\brand\s*\(\s*\))|(?:std::default_random_engine\s+\w+\s*;)|(?:std::mt19937(?:_64)?\s+\w+\s*;))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], rng_re)) continue;
    findings.push_back(
        {"unseeded-rng", file.rel_path, i + 1, Trim(file.raw[i]),
         "non-replayable randomness — use common/rng.h (seeded) so every "
         "run reproduces from its seed"});
  }
  return findings;
}

/// pointer-order: ordering or hashing by pointer value. Addresses change
/// run to run (ASLR, allocator), so any pointer-keyed order leaks
/// nondeterminism into whatever consumes it.
std::vector<Finding> RulePointerOrder(const FileText& file) {
  std::vector<Finding> findings;
  static const std::regex ptr_re(
      R"((?:std::hash\s*<\s*[A-Za-z_][\w:]*\s*\*\s*>)|(?:std::less\s*<\s*(?:void|[A-Za-z_][\w:]*)\s*\*\s*>)|(?:reinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>)|(?:\bset\s*<\s*[A-Za-z_][\w:]*\s*\*\s*>)|(?:\bmap\s*<\s*[A-Za-z_][\w:]*\s*\*\s*,)|(?:sort\s*\([^;]*\]\s*\(\s*(?:const\s+)?\w+\s*\*\s*\w+,\s*(?:const\s+)?\w+\s*\*\s*\w+\s*\)))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], ptr_re)) continue;
    findings.push_back(
        {"pointer-order", file.rel_path, i + 1, Trim(file.raw[i]),
         "ordering/hashing by pointer value — addresses vary per run "
         "(ASLR, allocator); key on stable identity instead"});
  }
  return findings;
}

/// thread-id: branching on which thread runs the code. Worker identity is
/// scheduling-dependent; using it for anything but diagnostics diverges.
std::vector<Finding> RuleThreadId(const FileText& file) {
  std::vector<Finding> findings;
  static const std::regex tid_re(
      R"((?:std::this_thread::get_id\s*\()|(?:std::thread::id\b)|(?:pthread_self\s*\())");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], tid_re)) continue;
    findings.push_back(
        {"thread-id", file.rel_path, i + 1, Trim(file.raw[i]),
         "thread-identity read — which worker runs a task is scheduling-"
         "dependent; acceptable for diagnostics only"});
  }
  return findings;
}

/// std-hash: std::hash in consensus-visible paths (cc, consensus, node,
/// storage, ledger). libstdc++'s std::hash for integers is the identity
/// today, but the standard does not pin it — consensus-visible digests and
/// orders must come from the project's fixed hash (common/sha256.h) or an
/// explicit function, never std::hash.
std::vector<Finding> RuleStdHash(const FileText& file) {
  std::vector<Finding> findings;
  const bool consensus_visible =
      StartsWith(file.rel_path, "cc/") ||
      StartsWith(file.rel_path, "consensus/") ||
      StartsWith(file.rel_path, "node/") ||
      StartsWith(file.rel_path, "storage/") ||
      StartsWith(file.rel_path, "ledger/");
  if (!consensus_visible) return findings;
  static const std::regex hash_re(R"(std::hash\s*<)");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], hash_re)) continue;
    findings.push_back(
        {"std-hash", file.rel_path, i + 1, Trim(file.raw[i]),
         "std::hash in a consensus-visible path — its value is "
         "implementation-defined; use common/sha256.h or an explicit "
         "function for anything that crosses a node or a run"});
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

std::vector<AllowEntry> LoadAllowlist(const fs::path& path, bool& ok) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  ok = static_cast<bool>(in);
  if (!ok) return entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // rule|file|token|justification
    std::vector<std::string> parts;
    std::stringstream ss(trimmed);
    std::string part;
    while (std::getline(ss, part, '|')) parts.push_back(Trim(part));
    if (parts.size() != 4 || parts[3].empty()) {
      std::cerr << path.string() << ":" << lineno
                << ": malformed allowlist entry (want "
                   "rule|file|token|justification, justification non-empty)\n";
      ok = false;
      continue;
    }
    entries.push_back({parts[0], parts[1], parts[2], parts[3], lineno, false});
  }
  return entries;
}

bool Allowed(const Finding& f, std::vector<AllowEntry>& allow) {
  for (AllowEntry& entry : allow) {
    if (entry.rule != f.rule) continue;
    if (entry.file != f.file) continue;
    if (f.text.find(entry.token) == std::string::npos) continue;
    entry.used = true;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: detlint <src-root> <allowlist-file>\n";
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::is_directory(root)) {
    std::cerr << "detlint: not a directory: " << root.string() << "\n";
    return 2;
  }
  bool allow_ok = true;
  std::vector<AllowEntry> allow = LoadAllowlist(argv[2], allow_ok);
  if (!allow_ok) {
    std::cerr << "detlint: cannot use allowlist " << argv[2] << "\n";
    return 2;
  }

  std::vector<fs::path> sources;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".h" || ext == ".hpp") {
      sources.push_back(entry.path());
    }
  }
  std::sort(sources.begin(), sources.end());

  std::vector<Finding> violations;
  std::size_t allowed = 0;
  for (const fs::path& path : sources) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "detlint: cannot read " << path.string() << "\n";
      return 2;
    }
    FileText file;
    file.rel_path = fs::relative(path, root).generic_string();
    std::string line;
    bool in_block_comment = false;
    while (std::getline(in, line)) {
      file.raw.push_back(line);
      file.code.push_back(StripCommentsAndStrings(line, in_block_comment));
    }
    for (auto* rule :
         {RuleUnorderedIteration, RuleWallClock, RuleUnseededRng,
          RulePointerOrder, RuleThreadId, RuleStdHash}) {
      for (Finding& f : rule(file)) {
        if (Allowed(f, allow)) {
          ++allowed;
        } else {
          violations.push_back(std::move(f));
        }
      }
    }
  }

  for (const Finding& f : violations) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n    " << f.text << "\n";
  }
  bool stale = false;
  for (const AllowEntry& entry : allow) {
    if (entry.used) continue;
    stale = true;
    std::cerr << argv[2] << ":" << entry.source_line
              << ": stale allowlist entry (matched nothing): " << entry.rule
              << "|" << entry.file << "|" << entry.token << "\n";
  }

  std::fprintf(stderr,
               "detlint: %zu files, %zu violations, %zu allowlisted, %zu "
               "allowlist entries\n",
               sources.size(), violations.size(), allowed, allow.size());
  return (violations.empty() && !stale) ? 0 : 1;
}
