// Tests for the address-based conflict graph, anchored on the paper's own
// running example (Table III / Fig. 4): six transactions T1..T6 over
// addresses A1..A4. TxIndex is 0-based here, so paper T_k = index k-1.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cc/nezha/acg.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

ReadWriteSet RW(std::vector<std::uint64_t> reads,
                std::vector<std::uint64_t> writes) {
  ReadWriteSet rw;
  for (std::uint64_t a : reads) rw.reads.push_back(Address(a));
  for (std::uint64_t a : writes) {
    rw.writes.push_back(Address(a));
    rw.write_values.push_back(1);
  }
  std::sort(rw.reads.begin(), rw.reads.end());
  std::sort(rw.writes.begin(), rw.writes.end());
  return rw;
}

/// The paper's Table III: reads / writes of T1..T6.
std::vector<ReadWriteSet> PaperExample() {
  return {
      RW({2}, {1}),  // T1: reads A2, writes A1
      RW({3}, {2}),  // T2: reads A3, writes A2
      RW({4}, {2}),  // T3: reads A4, writes A2
      RW({4}, {3}),  // T4: reads A4, writes A3
      RW({4}, {4}),  // T5: reads A4, writes A4
      RW({1}, {3}),  // T6: reads A1, writes A3
  };
}

TEST(AcgTest, PaperExampleEntries) {
  const auto rwsets = PaperExample();
  const auto acg = AddressConflictGraph::Build(rwsets);

  ASSERT_EQ(acg.NumAddresses(), 4u);
  // Entries are in ascending address order: A1, A2, A3, A4.
  EXPECT_EQ(acg.entries()[0].address, Address(1));
  EXPECT_EQ(acg.entries()[3].address, Address(4));

  // A1: read by T6, written by T1.
  EXPECT_EQ(acg.entries()[0].readers, (std::vector<TxIndex>{5}));
  EXPECT_EQ(acg.entries()[0].writers, (std::vector<TxIndex>{0}));
  // A2: read by T1, written by T2, T3.
  EXPECT_EQ(acg.entries()[1].readers, (std::vector<TxIndex>{0}));
  EXPECT_EQ(acg.entries()[1].writers, (std::vector<TxIndex>{1, 2}));
  // A3: read by T2, written by T4, T6.
  EXPECT_EQ(acg.entries()[2].readers, (std::vector<TxIndex>{1}));
  EXPECT_EQ(acg.entries()[2].writers, (std::vector<TxIndex>{3, 5}));
  // A4: read by T3, T4, T5, written by T5.
  EXPECT_EQ(acg.entries()[3].readers, (std::vector<TxIndex>{2, 3, 4}));
  EXPECT_EQ(acg.entries()[3].writers, (std::vector<TxIndex>{4}));
}

TEST(AcgTest, PaperExampleDependencyEdges) {
  const auto rwsets = PaperExample();
  const auto acg = AddressConflictGraph::Build(rwsets);
  const Digraph& deps = acg.dependencies();

  const auto idx = [&](std::uint64_t a) {
    return static_cast<Digraph::Vertex>(acg.IndexOf(Address(a)));
  };
  // Fig. 6: A1-->A2 (T1), A2-->A3 (T2), A2-->A4 (T3), A3-->A4 (T4),
  // A3-->A1 (T6). T5's self write/read on A4 adds no edge.
  EXPECT_EQ(deps.NumEdges(), 5u);
  EXPECT_TRUE(deps.HasEdge(idx(1), idx(2)));
  EXPECT_TRUE(deps.HasEdge(idx(2), idx(3)));
  EXPECT_TRUE(deps.HasEdge(idx(2), idx(4)));
  EXPECT_TRUE(deps.HasEdge(idx(3), idx(4)));
  EXPECT_TRUE(deps.HasEdge(idx(3), idx(1)));
  EXPECT_FALSE(deps.HasEdge(idx(4), idx(4)));
}

TEST(AcgTest, IndexOfUnknownAddress) {
  const auto rwsets = PaperExample();
  const auto acg = AddressConflictGraph::Build(rwsets);
  EXPECT_EQ(acg.IndexOf(Address(99)), -1);
  EXPECT_GE(acg.IndexOf(Address(1)), 0);
}

TEST(AcgTest, RevertedTransactionsExcluded) {
  auto rwsets = PaperExample();
  rwsets[0].ok = false;  // T1 reverted at execution
  const auto acg = AddressConflictGraph::Build(rwsets);
  // A1 loses its writer; A2 loses its reader.
  EXPECT_TRUE(acg.entries()[0].writers.empty());
  EXPECT_TRUE(acg.entries()[1].readers.empty());
  EXPECT_EQ(acg.NumEdges(), 4u);  // T1's edge gone
}

TEST(AcgTest, EmptyBatch) {
  const auto acg = AddressConflictGraph::Build({});
  EXPECT_EQ(acg.NumAddresses(), 0u);
  EXPECT_EQ(acg.NumEdges(), 0u);
}

TEST(AcgTest, DuplicateEdgesDeduplicated) {
  // Two transactions with the same write->read address pair: one edge.
  const std::vector<ReadWriteSet> rwsets = {RW({2}, {1}), RW({2}, {1})};
  const auto acg = AddressConflictGraph::Build(rwsets);
  EXPECT_EQ(acg.NumEdges(), 1u);
}

TEST(AcgTest, ReaderAndWriterListsStaySubscriptOrdered) {
  WorkloadConfig config;
  config.num_accounts = 30;
  config.skew = 1.0;
  SmallBankWorkload workload(config, 5);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(300);
  const auto exec = ExecuteBatchSerial(snap, txs);
  const auto acg = AddressConflictGraph::Build(exec.rwsets);
  for (const auto& entry : acg.entries()) {
    EXPECT_TRUE(std::is_sorted(entry.readers.begin(), entry.readers.end()));
    EXPECT_TRUE(std::is_sorted(entry.writers.begin(), entry.writers.end()));
  }
}

TEST(AcgTest, CoversEveryPairwiseConflict) {
  // Completeness property (DESIGN.md invariant 4): every conflicting pair
  // detectable by pairwise comparison shares at least one ACG entry where
  // one of them writes.
  WorkloadConfig config;
  config.num_accounts = 40;
  config.skew = 0.9;
  SmallBankWorkload workload(config, 21);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(150);
  const auto exec = ExecuteBatchSerial(snap, txs);
  const auto acg = AddressConflictGraph::Build(exec.rwsets);

  // tx -> set of entries where it appears as reader/writer.
  const std::size_t n = exec.rwsets.size();
  std::vector<std::set<int>> reads_at(n), writes_at(n);
  for (int e = 0; e < static_cast<int>(acg.NumAddresses()); ++e) {
    for (TxIndex t : acg.entries()[static_cast<std::size_t>(e)].readers) {
      reads_at[t].insert(e);
    }
    for (TxIndex t : acg.entries()[static_cast<std::size_t>(e)].writers) {
      writes_at[t].insert(e);
    }
  }
  const auto shares = [](const std::set<int>& a, const std::set<int>& b) {
    for (int x : a) {
      if (b.count(x)) return true;
    }
    return false;
  };
  for (TxIndex u = 0; u < n; ++u) {
    for (TxIndex v = u + 1; v < n; ++v) {
      if (!Conflicts(exec.rwsets[u], exec.rwsets[v])) continue;
      const bool covered = shares(writes_at[u], writes_at[v]) ||
                           shares(writes_at[u], reads_at[v]) ||
                           shares(reads_at[u], writes_at[v]);
      EXPECT_TRUE(covered) << "conflict T" << u << "/T" << v
                           << " not visible in any ACG entry";
    }
  }
}

}  // namespace
}  // namespace nezha
