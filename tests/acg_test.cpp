// Tests for the address-based conflict graph, anchored on the paper's own
// running example (Table III / Fig. 4): six transactions T1..T6 over
// addresses A1..A4. TxIndex is 0-based here, so paper T_k = index k-1.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "cc/nezha/acg.h"
#include "common/thread_pool.h"
#include "runtime/concurrent_executor.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

ReadWriteSet RW(std::vector<std::uint64_t> reads,
                std::vector<std::uint64_t> writes) {
  ReadWriteSet rw;
  for (std::uint64_t a : reads) rw.reads.push_back(Address(a));
  for (std::uint64_t a : writes) {
    rw.writes.push_back(Address(a));
    rw.write_values.push_back(1);
  }
  std::sort(rw.reads.begin(), rw.reads.end());
  std::sort(rw.writes.begin(), rw.writes.end());
  return rw;
}

/// The paper's Table III: reads / writes of T1..T6.
std::vector<ReadWriteSet> PaperExample() {
  return {
      RW({2}, {1}),  // T1: reads A2, writes A1
      RW({3}, {2}),  // T2: reads A3, writes A2
      RW({4}, {2}),  // T3: reads A4, writes A2
      RW({4}, {3}),  // T4: reads A4, writes A3
      RW({4}, {4}),  // T5: reads A4, writes A4
      RW({1}, {3}),  // T6: reads A1, writes A3
  };
}

TEST(AcgTest, PaperExampleEntries) {
  const auto rwsets = PaperExample();
  const auto acg = AddressConflictGraph::Build(rwsets);

  ASSERT_EQ(acg.NumAddresses(), 4u);
  // Entries are in ascending address order: A1, A2, A3, A4.
  EXPECT_EQ(acg.entries()[0].address, Address(1));
  EXPECT_EQ(acg.entries()[3].address, Address(4));

  // A1: read by T6, written by T1.
  EXPECT_EQ(acg.entries()[0].readers, (std::vector<TxIndex>{5}));
  EXPECT_EQ(acg.entries()[0].writers, (std::vector<TxIndex>{0}));
  // A2: read by T1, written by T2, T3.
  EXPECT_EQ(acg.entries()[1].readers, (std::vector<TxIndex>{0}));
  EXPECT_EQ(acg.entries()[1].writers, (std::vector<TxIndex>{1, 2}));
  // A3: read by T2, written by T4, T6.
  EXPECT_EQ(acg.entries()[2].readers, (std::vector<TxIndex>{1}));
  EXPECT_EQ(acg.entries()[2].writers, (std::vector<TxIndex>{3, 5}));
  // A4: read by T3, T4, T5, written by T5.
  EXPECT_EQ(acg.entries()[3].readers, (std::vector<TxIndex>{2, 3, 4}));
  EXPECT_EQ(acg.entries()[3].writers, (std::vector<TxIndex>{4}));
}

TEST(AcgTest, PaperExampleDependencyEdges) {
  const auto rwsets = PaperExample();
  const auto acg = AddressConflictGraph::Build(rwsets);
  const Digraph& deps = acg.dependencies();

  const auto idx = [&](std::uint64_t a) {
    return static_cast<Digraph::Vertex>(acg.IndexOf(Address(a)));
  };
  // Fig. 6: A1-->A2 (T1), A2-->A3 (T2), A2-->A4 (T3), A3-->A4 (T4),
  // A3-->A1 (T6). T5's self write/read on A4 adds no edge.
  EXPECT_EQ(deps.NumEdges(), 5u);
  EXPECT_TRUE(deps.HasEdge(idx(1), idx(2)));
  EXPECT_TRUE(deps.HasEdge(idx(2), idx(3)));
  EXPECT_TRUE(deps.HasEdge(idx(2), idx(4)));
  EXPECT_TRUE(deps.HasEdge(idx(3), idx(4)));
  EXPECT_TRUE(deps.HasEdge(idx(3), idx(1)));
  EXPECT_FALSE(deps.HasEdge(idx(4), idx(4)));
}

TEST(AcgTest, IndexOfUnknownAddress) {
  const auto rwsets = PaperExample();
  const auto acg = AddressConflictGraph::Build(rwsets);
  EXPECT_EQ(acg.IndexOf(Address(99)), -1);
  EXPECT_GE(acg.IndexOf(Address(1)), 0);
}

TEST(AcgTest, RevertedTransactionsExcluded) {
  auto rwsets = PaperExample();
  rwsets[0].ok = false;  // T1 reverted at execution
  const auto acg = AddressConflictGraph::Build(rwsets);
  // A1 loses its writer; A2 loses its reader.
  EXPECT_TRUE(acg.entries()[0].writers.empty());
  EXPECT_TRUE(acg.entries()[1].readers.empty());
  EXPECT_EQ(acg.NumEdges(), 4u);  // T1's edge gone
}

TEST(AcgTest, EmptyBatch) {
  const auto acg = AddressConflictGraph::Build({});
  EXPECT_EQ(acg.NumAddresses(), 0u);
  EXPECT_EQ(acg.NumEdges(), 0u);
}

TEST(AcgTest, DuplicateEdgesDeduplicated) {
  // Two transactions with the same write->read address pair: one edge.
  const std::vector<ReadWriteSet> rwsets = {RW({2}, {1}), RW({2}, {1})};
  const auto acg = AddressConflictGraph::Build(rwsets);
  EXPECT_EQ(acg.NumEdges(), 1u);
}

TEST(AcgTest, ReaderAndWriterListsStaySubscriptOrdered) {
  WorkloadConfig config;
  config.num_accounts = 30;
  config.skew = 1.0;
  SmallBankWorkload workload(config, 5);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(300);
  const auto exec = ExecuteBatchSerial(snap, txs);
  const auto acg = AddressConflictGraph::Build(exec.rwsets);
  for (const auto& entry : acg.entries()) {
    EXPECT_TRUE(std::is_sorted(entry.readers.begin(), entry.readers.end()));
    EXPECT_TRUE(std::is_sorted(entry.writers.begin(), entry.writers.end()));
  }
}

TEST(AcgTest, CoversEveryPairwiseConflict) {
  // Completeness property (DESIGN.md invariant 4): every conflicting pair
  // detectable by pairwise comparison shares at least one ACG entry where
  // one of them writes.
  WorkloadConfig config;
  config.num_accounts = 40;
  config.skew = 0.9;
  SmallBankWorkload workload(config, 21);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(150);
  const auto exec = ExecuteBatchSerial(snap, txs);
  const auto acg = AddressConflictGraph::Build(exec.rwsets);

  // tx -> set of entries where it appears as reader/writer.
  const std::size_t n = exec.rwsets.size();
  std::vector<std::set<int>> reads_at(n), writes_at(n);
  for (int e = 0; e < static_cast<int>(acg.NumAddresses()); ++e) {
    for (TxIndex t : acg.entries()[static_cast<std::size_t>(e)].readers) {
      reads_at[t].insert(e);
    }
    for (TxIndex t : acg.entries()[static_cast<std::size_t>(e)].writers) {
      writes_at[t].insert(e);
    }
  }
  const auto shares = [](const std::set<int>& a, const std::set<int>& b) {
    for (int x : a) {
      if (b.count(x)) return true;
    }
    return false;
  };
  for (TxIndex u = 0; u < n; ++u) {
    for (TxIndex v = u + 1; v < n; ++v) {
      if (!Conflicts(exec.rwsets[u], exec.rwsets[v])) continue;
      const bool covered = shares(writes_at[u], writes_at[v]) ||
                           shares(writes_at[u], reads_at[v]) ||
                           shares(reads_at[u], writes_at[v]);
      EXPECT_TRUE(covered) << "conflict T" << u << "/T" << v
                           << " not visible in any ACG entry";
    }
  }
}

// ---------- incremental construction (AcgBuilder) ----------

/// Exact-equality oracle for two graphs: same vertex set in the same
/// subscript order, same readers/writers lists, same edge multiset. The
/// canonical encoding pins all of it at once (it sorts adjacency, so a
/// Build/BuildSharded/Seal trio that differs only in internal ordering
/// still encodes identically); the field-level checks keep failures
/// readable.
void ExpectSameAcg(const AddressConflictGraph& expected,
                   const AddressConflictGraph& actual,
                   const std::string& label) {
  ASSERT_EQ(expected.NumAddresses(), actual.NumAddresses()) << label;
  EXPECT_EQ(expected.NumEdges(), actual.NumEdges()) << label;
  for (std::size_t i = 0; i < expected.NumAddresses(); ++i) {
    EXPECT_EQ(expected.entries()[i].address, actual.entries()[i].address)
        << label << " entry " << i;
    EXPECT_EQ(expected.entries()[i].readers, actual.entries()[i].readers)
        << label << " entry " << i;
    EXPECT_EQ(expected.entries()[i].writers, actual.entries()[i].writers)
        << label << " entry " << i;
  }
  EXPECT_EQ(expected.CanonicalEncoding(), actual.CanonicalEncoding()) << label;
}

/// Deterministic contended rwsets with a sprinkle of reverted transactions
/// (which the graph must exclude, however they were appended).
std::vector<ReadWriteSet> BuilderWorkload(std::size_t total,
                                          std::uint64_t seed) {
  WorkloadConfig config;
  config.num_accounts = 40;
  config.skew = 0.9;
  SmallBankWorkload workload(config, seed);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(total);
  auto rwsets = ExecuteBatchSerial(snap, txs).rwsets;
  for (std::size_t i = 0; i < rwsets.size(); ++i) {
    if (i % 13 == 5) rwsets[i].ok = false;
  }
  return rwsets;
}

// Property: a random block stream appended through AcgBuilder and sealed is
// EXACTLY the one-shot Build() over the concatenation — across batch sizes
// on both sides of the <32-transaction serial-fallback boundary (decided on
// the TOTAL count at Seal time, not per append), random chunkings that
// include empty blocks, and serial vs pooled/sharded scatter.
TEST(AcgBuilderTest, IncrementalAppendMatchesOneShotBuild) {
  ThreadPool pool(4);
  // Sizes straddling the serial-fallback boundary (kShardedBuildMinTxs=32):
  // tiny totals must seal through the serial path even when appended in
  // many chunks with a pool attached.
  const std::size_t kTotals[] = {0, 1, 7, 31, 32, 33, 64, 150, 300};
  for (const std::size_t total : kTotals) {
    const auto rwsets = BuilderWorkload(total, 100 + total);
    const auto reference =
        AddressConflictGraph::Build(std::span<const ReadWriteSet>(rwsets));
    for (const std::uint64_t chunk_seed : {1u, 2u, 3u}) {
      std::mt19937 rng(chunk_seed * 977 + total);
      std::uniform_int_distribution<std::size_t> chunk_len(0, 10);
      // Serial builder, pooled builder (auto shards), pooled 3-shard.
      struct BuilderCase {
        const char* name;
        ThreadPool* pool;
        std::size_t shards;
      };
      ThreadPool* p = &pool;
      const BuilderCase kCases[] = {
          {"serial", nullptr, 0}, {"pooled", p, 0}, {"sharded3", p, 3}};
      for (const BuilderCase& c : kCases) {
        AcgBuilder builder(c.pool, c.shards);
        std::size_t offset = 0;
        std::mt19937 case_rng = rng;  // same chunking for all three cases
        while (offset < rwsets.size()) {
          const std::size_t len =
              std::min(chunk_len(case_rng), rwsets.size() - offset);
          builder.AppendBlock(
              std::span<const ReadWriteSet>(rwsets).subspan(offset, len));
          offset += len;  // len may be 0: empty blocks must be harmless
          if (len == 0) {
            builder.AppendBlock(std::span<const ReadWriteSet>(
                rwsets).subspan(offset, std::min<std::size_t>(
                                            1, rwsets.size() - offset)));
            offset += std::min<std::size_t>(1, rwsets.size() - offset);
          }
        }
        ASSERT_EQ(builder.TxCount(), rwsets.size());
        const AddressConflictGraph sealed = builder.Seal();
        ExpectSameAcg(reference, sealed,
                      std::string(c.name) + " total=" +
                          std::to_string(total) +
                          " chunk_seed=" + std::to_string(chunk_seed));
      }
    }
  }
}

// The sharded one-shot build and a sealed incremental build agree too (all
// three construction paths are interchangeable), and a whole-batch single
// append is just Build with extra steps.
TEST(AcgBuilderTest, SingleAppendAndShardedBuildAgree) {
  ThreadPool pool(4);
  const auto rwsets = BuilderWorkload(200, 9);
  const auto reference =
      AddressConflictGraph::Build(std::span<const ReadWriteSet>(rwsets));
  const auto sharded = AddressConflictGraph::BuildSharded(
      std::span<const ReadWriteSet>(rwsets), pool, 4);
  ExpectSameAcg(reference, sharded, "one-shot sharded");

  AcgBuilder builder(&pool, 4);
  builder.AppendTxs(std::span<const ReadWriteSet>(rwsets));
  const AddressConflictGraph sealed = builder.Seal();
  ExpectSameAcg(reference, sealed, "single whole-batch append");
}

}  // namespace
}  // namespace nezha
