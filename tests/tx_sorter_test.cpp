// Tests for Algorithm 2 (per-address transaction sorting) and the §IV.D
// reordering enhancement, anchored on the paper's Fig. 7 walkthrough and on
// the sorting-anomaly scenarios of Fig. 5 and Fig. 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cc/nezha/acg.h"
#include "cc/nezha/rank_division.h"
#include "cc/nezha/tx_sorter.h"
#include "obs/abort_attribution.h"
#include "runtime/serializability.h"

namespace nezha {
namespace {

ReadWriteSet RW(std::vector<std::uint64_t> reads,
                std::vector<std::uint64_t> writes) {
  ReadWriteSet rw;
  for (std::uint64_t a : reads) rw.reads.push_back(Address(a));
  for (std::uint64_t a : writes) {
    rw.writes.push_back(Address(a));
    rw.write_values.push_back(1);
  }
  std::sort(rw.reads.begin(), rw.reads.end());
  std::sort(rw.writes.begin(), rw.writes.end());
  return rw;
}

TxSorterResult SortAll(const std::vector<ReadWriteSet>& rwsets,
                       bool reorder = true) {
  const auto acg = AddressConflictGraph::Build(rwsets);
  const auto ranks = ComputeSortingRanks(acg.dependencies());
  TxSorterOptions options;
  options.enable_reordering = reorder;
  return SortTransactions(acg, ranks, rwsets.size(), options);
}

/// Checks the fundamental per-address invariants on the sorter's raw output.
void ExpectSound(const std::vector<ReadWriteSet>& rwsets,
                 const TxSorterResult& result) {
  Schedule schedule;
  schedule.sequence = result.sequence;
  schedule.aborted = result.aborted;
  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    if (!schedule.aborted[t] && schedule.sequence[t] == kUnassignedSeq) {
      schedule.sequence[t] = 1;  // untouched txs join group 1
    }
  }
  schedule.RebuildGroups();
  const auto report = ValidateScheduleInvariants(schedule, rwsets);
  EXPECT_TRUE(report.ok) << report.violation;
}

// ---------- the paper's Fig. 7 walkthrough ----------

TEST(TxSorterTest, PaperFig7EndToEnd) {
  const std::vector<ReadWriteSet> rwsets = {
      RW({2}, {1}),  // T1
      RW({3}, {2}),  // T2
      RW({4}, {2}),  // T3
      RW({4}, {3}),  // T4
      RW({4}, {4}),  // T5
      RW({1}, {3}),  // T6
  };
  const TxSorterResult result = SortAll(rwsets);

  // Fig. 7: T1 is the unserializable victim and aborts.
  EXPECT_TRUE(result.aborted[0]);
  for (TxIndex t = 1; t < 6; ++t) EXPECT_FALSE(result.aborted[t]) << t;

  // T3 and T4 share a sequence number (their writes do not conflict) —
  // the paper's "certain degree of concurrency".
  EXPECT_EQ(result.sequence[2], result.sequence[3]);
  // T2 precedes T3/T4 (its write on A2 carries rank-1 ordering).
  EXPECT_LT(result.sequence[1], result.sequence[2]);
  // T5 and T6 come after T3/T4.
  EXPECT_GT(result.sequence[4], result.sequence[2]);
  EXPECT_GT(result.sequence[5], result.sequence[2]);

  ExpectSound(rwsets, result);
}

// ---------- basic shapes ----------

TEST(TxSorterTest, DisjointTxsShareTheFirstGroup) {
  const std::vector<ReadWriteSet> rwsets = {RW({}, {1}), RW({}, {2}),
                                            RW({}, {3})};
  const TxSorterResult result = SortAll(rwsets);
  EXPECT_EQ(result.sequence[0], result.sequence[1]);
  EXPECT_EQ(result.sequence[1], result.sequence[2]);
  EXPECT_FALSE(result.aborted[0]);
  ExpectSound(rwsets, result);
}

TEST(TxSorterTest, ReadersShareOneNumberWritersStack) {
  // Three readers + two writers of one address: reads share a number, the
  // writes get distinct larger numbers ordered by subscript.
  const std::vector<ReadWriteSet> rwsets = {
      RW({9}, {}), RW({9}, {}), RW({9}, {}), RW({}, {9}), RW({}, {9})};
  const TxSorterResult result = SortAll(rwsets);
  EXPECT_EQ(result.sequence[0], result.sequence[1]);
  EXPECT_EQ(result.sequence[1], result.sequence[2]);
  EXPECT_GT(result.sequence[3], result.sequence[0]);
  EXPECT_GT(result.sequence[4], result.sequence[3]);  // subscript order
  ExpectSound(rwsets, result);
}

TEST(TxSorterTest, PureReadersNeverAbort) {
  const std::vector<ReadWriteSet> rwsets = {
      RW({1, 2, 3}, {}), RW({1}, {}), RW({2, 3}, {}), RW({}, {1}),
      RW({}, {2})};
  const TxSorterResult result = SortAll(rwsets);
  EXPECT_FALSE(result.aborted[0]);
  EXPECT_FALSE(result.aborted[1]);
  EXPECT_FALSE(result.aborted[2]);
  ExpectSound(rwsets, result);
}

TEST(TxSorterTest, TwoReadModifyWritesOnOneAddressAbortOne) {
  // Both increment address 5 from the snapshot: inherently unserializable;
  // exactly one must survive (the smaller subscript).
  const std::vector<ReadWriteSet> rwsets = {RW({5}, {5}), RW({5}, {5})};
  const TxSorterResult result = SortAll(rwsets);
  EXPECT_FALSE(result.aborted[0]);
  EXPECT_TRUE(result.aborted[1]);
  ExpectSound(rwsets, result);
}

TEST(TxSorterTest, SingleReadModifyWriteSurvives) {
  const std::vector<ReadWriteSet> rwsets = {RW({5}, {5}), RW({5}, {}),
                                            RW({}, {5})};
  const TxSorterResult result = SortAll(rwsets);
  EXPECT_FALSE(result.aborted[0]);
  EXPECT_FALSE(result.aborted[1]);
  EXPECT_FALSE(result.aborted[2]);
  // RMW write must exceed the plain read's number; plain write above both.
  EXPECT_GT(result.sequence[0], result.sequence[1]);
  EXPECT_NE(result.sequence[2], result.sequence[0]);
  ExpectSound(rwsets, result);
}

// ---------- Fig. 8 reordering scenario ----------

TEST(TxSorterTest, ReorderingRescuesWriteWriteAnomaly) {
  // Fig. 8: Tu (smaller subscript) writes A10 and A20; Tv writes A10 and
  // reads A20. On A10 the write units get increasing numbers by subscript
  // (Tu below Tv), so on A20 Tu's write lands below Tv's read — the
  // unserializable signature. Reordering re-seats Tu above everything it
  // touches instead of aborting it.
  const std::vector<ReadWriteSet> rwsets = {
      RW({}, {10, 20}),  // Tu (index 0)
      RW({20}, {10}),    // Tv (index 1)
  };
  const TxSorterResult with_reorder = SortAll(rwsets, /*reorder=*/true);
  EXPECT_FALSE(with_reorder.aborted[0]);
  EXPECT_FALSE(with_reorder.aborted[1]);
  EXPECT_EQ(with_reorder.reordered_txs, 1u);
  EXPECT_GT(with_reorder.sequence[0], with_reorder.sequence[1]);
  ExpectSound(rwsets, with_reorder);

  // Without the enhancement the paper's plain Algorithm 2 aborts Tu.
  const TxSorterResult without = SortAll(rwsets, /*reorder=*/false);
  EXPECT_TRUE(without.aborted[0]);
  EXPECT_FALSE(without.aborted[1]);
  ExpectSound(rwsets, without);
}

TEST(TxSorterTest, ReorderingRefusedWhenReadPinsTx) {
  // T0 writes A1 and A2; T1 reads A2, writes A1 — T0's write on A2 would
  // need to move above T1's read, but T0 (as analysed in Fig. 5) cannot
  // always be re-seated when its own reads pin it below existing writes.
  // Whatever the outcome, the result must stay sound.
  const std::vector<ReadWriteSet> rwsets = {
      RW({3}, {1, 2}),  // T0 also reads A3
      RW({2}, {1}),     // T1
      RW({}, {3}),      // T2 writes A3 (pins T0's read from above)
  };
  const TxSorterResult result = SortAll(rwsets);
  ExpectSound(rwsets, result);
}

// ---------- chains across addresses ----------

TEST(TxSorterTest, AddressDependencyChainOrdersTotally) {
  // Figure 1's scenario: T1, T2 write A1; T3 reads A1, writes A2;
  // T4 reads A2. Total order must be {T1, T2} before T3 before T4 — i.e.
  // T3's write number exceeds T1/T2's... no: T1/T2 write A1 which T3 reads,
  // so T3's read must come BEFORE T1/T2's writes. The paper's Fig. 1 uses
  // dependent-transaction semantics where T1, T2 precede T3; under snapshot
  // reads the sound order is reads-first. Assert soundness + totality.
  const std::vector<ReadWriteSet> rwsets = {
      RW({}, {1}),   // T1
      RW({}, {1}),   // T2
      RW({1}, {2}),  // T3
      RW({2}, {}),   // T4
  };
  const TxSorterResult result = SortAll(rwsets);
  ExpectSound(rwsets, result);
  // T3 reads A1 => before T1 and T2's writes. T4 reads A2 => before T3's
  // write.
  EXPECT_LT(result.sequence[2], result.sequence[0]);
  EXPECT_LT(result.sequence[2], result.sequence[1]);
  EXPECT_LT(result.sequence[3], result.sequence[2]);
}

TEST(TxSorterTest, DeterministicAcrossRuns) {
  const std::vector<ReadWriteSet> rwsets = {
      RW({2}, {1}), RW({3}, {2}), RW({4}, {2}), RW({4}, {3}),
      RW({4}, {4}), RW({1}, {3}), RW({1, 4}, {2, 3}), RW({}, {5})};
  const TxSorterResult a = SortAll(rwsets);
  const TxSorterResult b = SortAll(rwsets);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.aborted, b.aborted);
}

TEST(TxSorterTest, EmptyBatch) {
  const TxSorterResult result = SortAll({});
  EXPECT_TRUE(result.sequence.empty());
}

// ---------- adversarial structures ----------

TEST(TxSorterTest, LongDependencyChainStaysSound) {
  // T_i reads A_i and writes A_{i+1}: a 60-deep address-dependency chain.
  std::vector<ReadWriteSet> rwsets;
  for (std::uint64_t i = 0; i < 60; ++i) {
    rwsets.push_back(RW({i}, {i + 1}));
  }
  const TxSorterResult result = SortAll(rwsets);
  ExpectSound(rwsets, result);
  // No conflicts except read-write chains; everything should commit.
  for (TxIndex t = 0; t < 60; ++t) EXPECT_FALSE(result.aborted[t]) << t;
  // Each T_i reads what T_{i-1} writes, so T_i must precede T_{i-1}.
  for (TxIndex t = 1; t < 60; ++t) {
    EXPECT_LT(result.sequence[t], result.sequence[t - 1]) << t;
  }
}

TEST(TxSorterTest, StarHubWriterAgainstManyReaders) {
  // 30 readers of one hub address + 1 writer; then 30 writers of leaf
  // addresses the hub writer also reads.
  std::vector<ReadWriteSet> rwsets;
  for (std::uint64_t i = 0; i < 30; ++i) rwsets.push_back(RW({100}, {}));
  rwsets.push_back(RW({}, {100}));  // hub writer (index 30)
  const TxSorterResult result = SortAll(rwsets);
  ExpectSound(rwsets, result);
  for (TxIndex t = 0; t <= 30; ++t) EXPECT_FALSE(result.aborted[t]);
  // All readers share one number; the writer exceeds it.
  for (TxIndex t = 1; t < 30; ++t) {
    EXPECT_EQ(result.sequence[t], result.sequence[0]);
  }
  EXPECT_GT(result.sequence[30], result.sequence[0]);
}

TEST(TxSorterTest, MultiAddressCycleDetected) {
  // A 3-step unserializable cycle through three addresses:
  // T0 reads A1 writes A2; T1 reads A2 writes A3; T2 reads A3 writes A1.
  // Serially ordering any one first breaks another's snapshot read — at
  // least one must abort, and the result must stay sound.
  const std::vector<ReadWriteSet> rwsets = {
      RW({1}, {2}), RW({2}, {3}), RW({3}, {1})};
  const TxSorterResult result = SortAll(rwsets);
  ExpectSound(rwsets, result);
  const auto aborted =
      std::count(result.aborted.begin(), result.aborted.end(), true);
  EXPECT_GE(aborted, 1);
  EXPECT_LE(aborted, 2);  // never nukes the whole cycle
}

TEST(TxSorterTest, ManyIndependentClustersScheduleConcurrently) {
  // 20 disjoint 3-tx clusters: sound, zero aborts, and the group count is
  // bounded by one cluster's depth (clusters share numbers).
  std::vector<ReadWriteSet> rwsets;
  for (std::uint64_t c = 0; c < 20; ++c) {
    const std::uint64_t base = c * 10;
    rwsets.push_back(RW({base}, {}));
    rwsets.push_back(RW({base}, {}));
    rwsets.push_back(RW({}, {base}));
  }
  const TxSorterResult result = SortAll(rwsets);
  ExpectSound(rwsets, result);
  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    EXPECT_FALSE(result.aborted[t]);
  }
  std::set<SeqNum> distinct(result.sequence.begin(), result.sequence.end());
  EXPECT_LE(distinct.size(), 3u);
}

TEST(TxSorterTest, WideTransactionTouchingManyAddresses) {
  // One transaction reads 20 addresses and writes 20 others, among a crowd
  // of small transactions on the same addresses.
  std::vector<ReadWriteSet> rwsets;
  {
    std::vector<std::uint64_t> reads, writes;
    for (std::uint64_t i = 0; i < 20; ++i) {
      reads.push_back(i);
      writes.push_back(100 + i);
    }
    rwsets.push_back(RW(reads, writes));
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    rwsets.push_back(RW({100 + i}, {i}));  // inverts the wide tx's direction
  }
  const TxSorterResult result = SortAll(rwsets);
  ExpectSound(rwsets, result);
}

// ---------- abort attribution (docs/OBSERVABILITY.md taxonomy) ----------
//
// Each scenario drives one decision point in SortTransactions and pins the
// AbortRecord it emits: conflict kind, address, sequence number at the
// decision, and whether/why the §IV.D raise failed. Where the natural
// ComputeSortingRanks order would dodge the conflict, the test hands
// SortTransactions an explicit rank order (entries() is ascending by
// address, vertex i == entries()[i]).

TxSorterResult SortWithRankOrder(const std::vector<ReadWriteSet>& rwsets,
                                 std::vector<Digraph::Vertex> order,
                                 bool reorder = true) {
  const auto acg = AddressConflictGraph::Build(rwsets);
  TxSorterOptions options;
  options.enable_reordering = reorder;
  return SortTransactions(acg, order, rwsets.size(), options);
}

TEST(TxSorterTest, AttributionDuplicateRmwIsReadWriteNotAttempted) {
  // Two read-modify-writes on address 5: the second read-writer dies in
  // Phase B without a raise attempt (RMW conflicts are never reorderable).
  const std::vector<ReadWriteSet> rwsets = {RW({5}, {5}), RW({5}, {5})};
  const TxSorterResult result = SortAll(rwsets);
  ASSERT_EQ(result.abort_records.size(), 1u);
  const obs::AbortRecord& record = result.abort_records[0];
  EXPECT_EQ(record.tx, 1u);
  EXPECT_EQ(record.address, 5u);
  EXPECT_EQ(record.kind, obs::ConflictKind::kReadWrite);
  EXPECT_FALSE(record.reorder_attempted);
  EXPECT_EQ(record.reorder_failure, obs::ReorderFailure::kNotAttempted);
  EXPECT_EQ(result.reorder_attempts, 0u);
}

TEST(TxSorterTest, AttributionPinnedRmwIsReadWriteUpperBound) {
  // Address 1 sorts first: T0 reads it (seq 1), T1 writes it (seq 2).
  // On address 2, T0 is a read-writer at max_read — Phase B must raise it,
  // but any number >= 2 would order T1's committed write on address 1
  // before T0's read there. The raise hits the read-side upper bound.
  const std::vector<ReadWriteSet> rwsets = {
      RW({1, 2}, {2}),  // T0: RMW on A2, pinned by its read of A1
      RW({}, {1}),      // T1: writes A1 above T0's read
      RW({2}, {}),      // T2: plain reader holding max_read on A2
  };
  const TxSorterResult result = SortWithRankOrder(rwsets, {0, 1});
  ASSERT_EQ(result.abort_records.size(), 1u);
  const obs::AbortRecord& record = result.abort_records[0];
  EXPECT_EQ(record.tx, 0u);
  EXPECT_EQ(record.address, 2u);
  EXPECT_EQ(record.kind, obs::ConflictKind::kReadWrite);
  EXPECT_EQ(record.seq_at_decision, 1u);
  EXPECT_TRUE(record.reorder_attempted);
  EXPECT_EQ(record.reorder_failure, obs::ReorderFailure::kUpperBoundHit);
  // Phase B raises are not §IV.D write-side attempts.
  EXPECT_EQ(result.reorder_attempts, 0u);
  EXPECT_FALSE(result.aborted[1]);
  EXPECT_FALSE(result.aborted[2]);
}

TEST(TxSorterTest, AttributionPlainAlgorithm2AbortIsRankCycle) {
  // Fig. 8 with reordering disabled: Tu's write on A20 lands below Tv's
  // read — the unserializability signature, attributed as a rank cycle
  // with no raise attempted.
  const std::vector<ReadWriteSet> rwsets = {
      RW({}, {10, 20}),  // Tu
      RW({20}, {10}),    // Tv
  };
  const TxSorterResult result = SortAll(rwsets, /*reorder=*/false);
  ASSERT_EQ(result.abort_records.size(), 1u);
  const obs::AbortRecord& record = result.abort_records[0];
  EXPECT_EQ(record.tx, 0u);
  EXPECT_EQ(record.address, 20u);
  EXPECT_EQ(record.kind, obs::ConflictKind::kRankCycle);
  EXPECT_EQ(record.seq_at_decision, 1u);
  EXPECT_FALSE(record.reorder_attempted);
  EXPECT_EQ(record.reorder_failure, obs::ReorderFailure::kNotAttempted);
  EXPECT_EQ(result.reorder_attempts, 0u);
}

TEST(TxSorterTest, AttributionFailedRaiseIsRankCycleUpperBound) {
  // Sorting A30 first seats T0's read at 1 and T2's write at 2. When T0's
  // write on A20 then lands below T1's read, the §IV.D raise needs a number
  // above 2 — past T2's committed write over T0's read of A30. Attempt
  // counted, upper bound hit, rank-cycle abort.
  const std::vector<ReadWriteSet> rwsets = {
      RW({30}, {10, 20}),  // T0
      RW({20}, {10}),      // T1
      RW({}, {30}),        // T2
  };
  // entries: 10 -> 0, 20 -> 1, 30 -> 2; sort A30 before the conflict.
  const TxSorterResult result = SortWithRankOrder(rwsets, {2, 0, 1});
  ASSERT_EQ(result.abort_records.size(), 1u);
  const obs::AbortRecord& record = result.abort_records[0];
  EXPECT_EQ(record.tx, 0u);
  EXPECT_EQ(record.address, 20u);
  EXPECT_EQ(record.kind, obs::ConflictKind::kRankCycle);
  EXPECT_EQ(record.seq_at_decision, 1u);
  EXPECT_TRUE(record.reorder_attempted);
  EXPECT_EQ(record.reorder_failure, obs::ReorderFailure::kUpperBoundHit);
  EXPECT_EQ(result.reorder_attempts, 1u);
  EXPECT_EQ(result.reordered_txs, 0u);
}

TEST(TxSorterTest, AttributionWriteCollisionIsWriteWriteUnreorderable) {
  // T0 and T1 pick up the same number (1) on disjoint addresses A1/A2, then
  // both write A3. T1's duplicate number must move, but its read of A4
  // (sorted first, with T2's write at 2 above it) caps the raise. The
  // collision — not a read — kills it: write-write-unreorderable.
  const std::vector<ReadWriteSet> rwsets = {
      RW({}, {1, 3}),   // T0
      RW({4}, {2, 3}),  // T1
      RW({}, {4}),      // T2
  };
  // entries: 1 -> 0, 2 -> 1, 3 -> 2, 4 -> 3; sort A4, A1, A2, then A3.
  for (const bool reorder : {true, false}) {
    const TxSorterResult result =
        SortWithRankOrder(rwsets, {3, 0, 1, 2}, reorder);
    ASSERT_EQ(result.abort_records.size(), 1u) << "reorder=" << reorder;
    const obs::AbortRecord& record = result.abort_records[0];
    EXPECT_EQ(record.tx, 1u);
    EXPECT_EQ(record.address, 3u);
    EXPECT_EQ(record.kind, obs::ConflictKind::kWriteWriteUnreorderable);
    EXPECT_EQ(record.seq_at_decision, 1u);
    EXPECT_EQ(record.reorder_attempted, reorder);
    EXPECT_EQ(record.reorder_failure,
              reorder ? obs::ReorderFailure::kUpperBoundHit
                      : obs::ReorderFailure::kNotAttempted);
    EXPECT_EQ(result.reorder_attempts, reorder ? 1u : 0u);
    EXPECT_FALSE(result.aborted[0]);
    EXPECT_FALSE(result.aborted[2]);
  }
}

TEST(TxSorterTest, AttributionSuccessfulRescueLeavesNoRecord) {
  // The Fig. 8 rescue: the raise succeeds, so the attempt is counted but
  // no abort record is emitted and the rescued tx lands in `reordered`.
  const std::vector<ReadWriteSet> rwsets = {
      RW({}, {10, 20}),  // Tu
      RW({20}, {10}),    // Tv
  };
  const TxSorterResult result = SortAll(rwsets, /*reorder=*/true);
  EXPECT_TRUE(result.abort_records.empty());
  EXPECT_EQ(result.reorder_attempts, 1u);
  ASSERT_EQ(result.reordered.size(), 1u);
  EXPECT_EQ(result.reordered[0], 0u);
}

TEST(TxSorterTest, SequenceNumbersStartAtConfiguredInitial) {
  const std::vector<ReadWriteSet> rwsets = {RW({1}, {}), RW({}, {1})};
  const auto acg = AddressConflictGraph::Build(rwsets);
  const auto ranks = ComputeSortingRanks(acg.dependencies());
  TxSorterOptions options;
  options.initial_seq = 1000;
  const TxSorterResult result =
      SortTransactions(acg, ranks, rwsets.size(), options);
  EXPECT_EQ(result.sequence[0], 1000u);
  EXPECT_GT(result.sequence[1], 1000u);
}

}  // namespace
}  // namespace nezha
