// Tests for the Conflux-style tree-graph substrate: GHOST pivot selection,
// reference weaving, epoch formation/ordering, confirmation, network
// simulation convergence, and the execution bridge.
#include <gtest/gtest.h>

#include <set>

#include "consensus/treegraph_sim.h"
#include "node/treegraph_bridge.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

class TreeGraphTest : public ::testing::Test {
 protected:
  TreeGraphTest() : view_(0, /*confirm_depth=*/2) {}

  TGBlock Mine(const TreeGraphView& from) {
    TGBlock block = from.PrepareBlock(counter_++, {});
    block.Seal();
    return block;
  }

  TreeGraphView view_;
  std::uint64_t counter_ = 0;
};

TEST_F(TreeGraphTest, StartsAtGenesis) {
  EXPECT_EQ(view_.NumBlocks(), 1u);
  EXPECT_EQ(view_.PivotTip()->height, 0u);
  EXPECT_TRUE(view_.ConfirmedEpochs().empty());
  EXPECT_TRUE(view_.LooseTips().empty());
}

TEST_F(TreeGraphTest, LinearChainGrowsPivot) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(view_.OnBlock(Mine(view_)).ok());
  }
  EXPECT_EQ(view_.PivotTip()->height, 5u);
  EXPECT_EQ(view_.PivotChain().size(), 6u);
  EXPECT_TRUE(view_.LooseTips().empty());  // every block is someone's parent
}

TEST_F(TreeGraphTest, GhostPicksHeavierSubtree) {
  // Fork at genesis: branch A gets 1 block, branch B gets 3.
  TreeGraphView a(1, 2), b(2, 2);
  const TGBlock block_a = Mine(a);
  ASSERT_TRUE(a.OnBlock(block_a).ok());

  TGBlock b1 = Mine(b);
  ASSERT_TRUE(b.OnBlock(b1).ok());
  // Build b's chain without seeing a's block.
  TGBlock b2 = Mine(b);
  ASSERT_TRUE(b.OnBlock(b2).ok());
  TGBlock b3 = Mine(b);
  ASSERT_TRUE(b.OnBlock(b3).ok());

  ASSERT_TRUE(view_.OnBlock(block_a).ok());
  ASSERT_TRUE(view_.OnBlock(b1).ok());
  ASSERT_TRUE(view_.OnBlock(b2).ok());
  ASSERT_TRUE(view_.OnBlock(b3).ok());
  EXPECT_EQ(view_.PivotTip()->hash, b3.hash);  // heavier branch wins
  // a's block is a loose tip (nothing references it yet in view_).
  const auto tips = view_.LooseTips();
  ASSERT_EQ(tips.size(), 1u);
  EXPECT_EQ(tips[0], block_a.hash);
}

TEST_F(TreeGraphTest, NewBlockWeavesLooseTipsIn) {
  // Create a fork, then mine on top: the new block must reference the
  // losing tip, folding it into the DAG.
  TreeGraphView other(1, 2);
  const TGBlock fork = Mine(other);
  ASSERT_TRUE(view_.OnBlock(Mine(view_)).ok());
  ASSERT_TRUE(view_.OnBlock(fork).ok());
  ASSERT_EQ(view_.LooseTips().size(), 1u);

  const TGBlock weaver = Mine(view_);
  EXPECT_EQ(weaver.references.size(), 1u);
  ASSERT_TRUE(view_.OnBlock(weaver).ok());
  EXPECT_TRUE(view_.LooseTips().empty());
}

TEST_F(TreeGraphTest, TamperedBlockRejected) {
  TGBlock block = Mine(view_);
  block.txs.push_back(Transaction{});
  EXPECT_FALSE(view_.OnBlock(block).ok());
  TGBlock bad_hash = Mine(view_);
  bad_hash.hash.bytes[0] ^= 1;
  EXPECT_FALSE(view_.OnBlock(bad_hash).ok());
}

TEST_F(TreeGraphTest, OrphanBufferedUntilDependenciesArrive) {
  TreeGraphView other(1, 2);
  const TGBlock first = Mine(other);
  ASSERT_TRUE(other.OnBlock(first).ok());
  const TGBlock second = Mine(other);
  ASSERT_TRUE(other.OnBlock(second).ok());

  auto r = view_.OnBlock(second);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  EXPECT_EQ(view_.NumOrphans(), 1u);
  r = view_.OnBlock(first);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
  EXPECT_EQ(view_.NumOrphans(), 0u);
}

TEST_F(TreeGraphTest, EpochsPartitionTheDag) {
  // Fork + weave + grow past confirm depth, then check every confirmed
  // block appears in exactly one epoch, pivot last in its epoch.
  TreeGraphView other(1, 2);
  const TGBlock fork = Mine(other);
  ASSERT_TRUE(view_.OnBlock(Mine(view_)).ok());
  ASSERT_TRUE(view_.OnBlock(fork).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(view_.OnBlock(Mine(view_)).ok());
  }
  const auto epochs = view_.ConfirmedEpochs();
  ASSERT_FALSE(epochs.empty());
  std::set<Hash256> seen;
  for (const TGEpoch& epoch : epochs) {
    ASSERT_FALSE(epoch.blocks.empty());
    // Pivot (the block at epoch.pivot_height on the pivot chain) is last.
    EXPECT_EQ(epoch.blocks.back()->height, epoch.pivot_height);
    for (const TGBlock* block : epoch.blocks) {
      EXPECT_TRUE(seen.insert(block->hash).second)
          << "block in two epochs";
    }
  }
  // The woven-in fork block must appear in some epoch.
  EXPECT_TRUE(seen.count(fork.hash) > 0);
}

TEST_F(TreeGraphTest, EpochOrderRespectsDependencies) {
  TreeGraphView other(1, 2);
  const TGBlock fork = Mine(other);
  ASSERT_TRUE(view_.OnBlock(Mine(view_)).ok());
  ASSERT_TRUE(view_.OnBlock(fork).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(view_.OnBlock(Mine(view_)).ok());
  }
  for (const TGEpoch& epoch : view_.ConfirmedEpochs()) {
    // Topological soundness: no block's dependency (parent or reference)
    // may appear LATER than the block within the same epoch.
    std::set<Hash256> remaining;
    for (const TGBlock* block : epoch.blocks) remaining.insert(block->hash);
    for (const TGBlock* block : epoch.blocks) {
      remaining.erase(block->hash);
      EXPECT_EQ(remaining.count(block->parent), 0u)
          << "parent emitted after its child";
      for (const Hash256& ref : block->references) {
        EXPECT_EQ(remaining.count(ref), 0u)
            << "reference emitted after its dependant";
      }
    }
  }
}

// ---------- network simulation ----------

TEST(TreeGraphSimTest, AllNodesConvergeToSameEpochs) {
  TreeGraphSimConfig config;
  config.num_nodes = 5;
  config.mean_block_interval_ms = 150;
  config.duration_ms = 30'000;
  config.seed = 5;
  TreeGraphSimulation sim(config);
  sim.Run();
  ASSERT_GT(sim.stats().blocks_mined, 50u);
  ASSERT_GT(sim.stats().confirmed_epochs, 5u);

  const auto reference = sim.node(0).ConfirmedEpochs();
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto other = sim.node(i).ConfirmedEpochs();
    ASSERT_EQ(other.size(), reference.size()) << "node " << i;
    for (std::size_t e = 0; e < reference.size(); ++e) {
      ASSERT_EQ(other[e].blocks.size(), reference[e].blocks.size());
      for (std::size_t b = 0; b < reference[e].blocks.size(); ++b) {
        EXPECT_EQ(other[e].blocks[b]->hash, reference[e].blocks[b]->hash);
      }
    }
  }
}

TEST(TreeGraphSimTest, EveryMinedBlockLandsInSomeEpochEventually) {
  // Unlike plain Nakamoto, the tree-graph wastes no blocks: forked blocks
  // get woven in by reference edges and contribute to epochs.
  TreeGraphSimConfig config;
  config.mean_block_interval_ms = 60;  // aggressive: many concurrent blocks
  config.base_latency_ms = 100;
  config.jitter_ms = 100;
  config.duration_ms = 30'000;
  config.confirm_depth = 8;
  config.seed = 6;
  TreeGraphSimulation sim(config);
  sim.Run();
  ASSERT_GT(sim.stats().blocks_mined, 100u);
  // Concurrency shows up as multi-block epochs.
  EXPECT_GT(sim.stats().max_epoch_size, 1.0);
  EXPECT_GT(sim.stats().mean_epoch_size, 1.0);
  // Confirmed blocks track mined blocks closely (minus the unconfirmed
  // tail): nothing is permanently discarded.
  EXPECT_GT(sim.stats().confirmed_blocks,
            sim.stats().blocks_mined * 6 / 10);
}

TEST(TreeGraphSimTest, Deterministic) {
  TreeGraphSimConfig config;
  config.duration_ms = 10'000;
  config.seed = 7;
  TreeGraphSimulation a(config), b(config);
  a.Run();
  b.Run();
  EXPECT_EQ(a.stats().blocks_mined, b.stats().blocks_mined);
  EXPECT_EQ(a.node(0).PivotTip()->hash, b.node(0).PivotTip()->hash);
}

// ---------- execution bridge ----------

TEST(TreeGraphBridgeTest, ReplicasAgreeOnState) {
  WorkloadConfig wl;
  wl.num_accounts = 400;
  wl.skew = 0.8;
  SmallBankWorkload workload(wl, 77);
  TreeGraphSimConfig config;
  config.num_nodes = 4;
  config.mean_block_interval_ms = 100;
  config.duration_ms = 20'000;
  config.confirm_depth = 5;
  config.seed = 8;
  TreeGraphSimulation sim(config, [&workload](NodeId) {
    return workload.MakeBatch(10);
  });
  sim.Run();
  ASSERT_GT(sim.stats().confirmed_epochs, 5u);

  Hash256 reference{};
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    TreeGraphDeferredExecutor executor(DeferredExecConfig{});
    auto reports = executor.CatchUp(sim.node(i));
    ASSERT_TRUE(reports.ok());
    ASSERT_FALSE(reports->empty());
    const Hash256 root = executor.state().RootHash();
    if (i == 0) {
      reference = root;
      EXPECT_FALSE(root.IsZero());
    } else {
      EXPECT_EQ(root, reference) << "node " << i;
    }
  }
}

TEST(TreeGraphBridgeTest, IncrementalMatchesOneShot) {
  WorkloadConfig wl;
  wl.num_accounts = 300;
  wl.skew = 0.6;
  TreeGraphSimConfig config;
  config.duration_ms = 20'000;
  config.mean_block_interval_ms = 100;
  config.confirm_depth = 5;
  config.seed = 9;

  const auto run_sim = [&](double horizon) {
    SmallBankWorkload workload(wl, 55);
    TreeGraphSimConfig c = config;
    c.duration_ms = horizon;
    auto sim = std::make_unique<TreeGraphSimulation>(
        c, [workload = std::move(workload)](NodeId) mutable {
          return workload.MakeBatch(8);
        });
    sim->Run();
    return sim;
  };

  auto full = run_sim(20'000);
  TreeGraphDeferredExecutor one_shot(DeferredExecConfig{});
  ASSERT_TRUE(one_shot.CatchUp(full->node(0)).ok());

  TreeGraphDeferredExecutor incremental(DeferredExecConfig{});
  for (double horizon : {8'000.0, 14'000.0, 20'000.0}) {
    auto partial = run_sim(horizon);
    ASSERT_TRUE(incremental.CatchUp(partial->node(0)).ok());
  }
  EXPECT_EQ(incremental.executed_epochs(), one_shot.executed_epochs());
  EXPECT_EQ(incremental.state().RootHash(), one_shot.state().RootHash());
}

}  // namespace
}  // namespace nezha
