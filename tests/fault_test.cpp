// Fault-injection tests: the injector machinery itself, the storage-layer
// fault semantics (torn/failed writes, failed flushes), the
// crash-at-every-site epoch-commit recovery sweep across all schemes, and
// state sync under injected network faults (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "node/full_node.h"
#include "node/pipeline.h"
#include "node/state_sync.h"
#include "storage/kvstore.h"
#include "storage/state_db.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

// ---------- the injector itself ----------

TEST(FaultInjectorTest, DisarmedReturnsNone) {
  EXPECT_FALSE(fault::Injector::Global().Armed());
  EXPECT_FALSE(fault::Check("anything").fired());
}

TEST(FaultInjectorTest, FiresOnExactHitNumber) {
  fault::ScopedPlan armed(fault::Plan().FailAt("site/x", 3));
  EXPECT_FALSE(fault::Check("site/x").fired());
  EXPECT_FALSE(fault::Check("site/x").fired());
  EXPECT_EQ(fault::Check("site/x").action, fault::Action::kFail);
  EXPECT_FALSE(fault::Check("site/x").fired());  // max_fires = 1 exhausted
  EXPECT_FALSE(fault::Check("site/other").fired());
}

TEST(FaultInjectorTest, MaxFiresBoundsRepeatedRule) {
  fault::Plan plan;
  plan.Add({"site/x", fault::Action::kFail, /*hit_number=*/0,
            /*probability=*/1.0, /*param=*/0, /*max_fires=*/2});
  fault::ScopedPlan armed(std::move(plan));
  EXPECT_TRUE(fault::Check("site/x").fired());
  EXPECT_TRUE(fault::Check("site/x").fired());
  EXPECT_FALSE(fault::Check("site/x").fired());
  EXPECT_EQ(fault::Injector::Global().FireCount(), 2u);
}

TEST(FaultInjectorTest, ProbabilityIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    fault::Plan plan(seed);
    plan.WithProbability("site/p", fault::Action::kDrop, 0.5);
    fault::ScopedPlan armed(std::move(plan));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fault::Check("site/p").fired());
    return fired;
  };
  const auto a = run(7);
  EXPECT_EQ(a, run(7));       // same seed, same schedule
  EXPECT_NE(a, run(8));       // different seed, different schedule
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);  // p=0.5 over 64 draws
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjectorTest, HitCountsObserveSites) {
  fault::ScopedPlan armed(fault::Plan{});  // empty plan: count, fire nothing
  (void)fault::Check("site/a");
  (void)fault::Check("site/a");
  (void)fault::Check("site/b");
  const auto hits = fault::Injector::Global().HitCounts();
  EXPECT_EQ(hits.at("site/a"), 2u);
  EXPECT_EQ(hits.at("site/b"), 1u);
  EXPECT_EQ(fault::Injector::Global().FireCount(), 0u);
}

TEST(FaultInjectorTest, CrashStatusIsRecognizable) {
  const Status crash = fault::CrashStatus("site/x");
  EXPECT_EQ(crash.code(), StatusCode::kAborted);
  EXPECT_TRUE(fault::IsInjectedCrash(crash));
  EXPECT_FALSE(fault::IsInjectedCrash(Status::Aborted("real abort")));
  EXPECT_FALSE(fault::IsInjectedCrash(Status::Ok()));
}

// ---------- storage-layer fault semantics ----------

TEST(StorageFaultTest, FailedWriteLeavesStoreUntouched) {
  KVStore kv;
  kv.Put("keep", "1");
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  fault::ScopedPlan armed(fault::Plan().FailAt(fault::sites::kKvWrite));
  EXPECT_EQ(kv.Write(batch).code(), StatusCode::kUnavailable);
  EXPECT_FALSE(kv.Contains("a"));
  EXPECT_FALSE(kv.Contains("b"));
  EXPECT_TRUE(kv.Contains("keep"));
}

TEST(StorageFaultTest, TornWriteAppliesExactPrefix) {
  KVStore kv;
  WriteBatch batch;
  for (char c = 'a'; c <= 'e'; ++c) batch.Put(std::string(1, c), "v");
  fault::ScopedPlan armed(fault::Plan().TearAt(fault::sites::kKvWrite, 2));
  EXPECT_EQ(kv.Write(batch).code(), StatusCode::kAborted);
  EXPECT_TRUE(kv.Contains("a"));
  EXPECT_TRUE(kv.Contains("b"));
  EXPECT_FALSE(kv.Contains("c"));  // the tear point
  EXPECT_FALSE(kv.Contains("e"));
}

TEST(StorageFaultTest, FailedFlushKeepsDirtyForRetry) {
  KVStore kv;
  StateDB db(&kv);
  db.Set(Address(1), 11);
  fault::ScopedPlan armed(fault::Plan().FailAt(fault::sites::kStateFlush));
  EXPECT_FALSE(db.Flush().ok());
  EXPECT_EQ(kv.Size(), 0u);
  // The single-fire rule is spent: the retry must succeed and persist
  // everything the failed attempt carried.
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_EQ(kv.Size(), 1u);
  StateDB recovered(&kv);
  ASSERT_TRUE(recovered.LoadFromStorage().ok());
  EXPECT_EQ(recovered.Get(Address(1)), 11);
}

TEST(StorageFaultTest, LedgerAppendCrashBeforeAndAfterPersist) {
  // param 0: crash before the block is persisted (block lost);
  // param 1: crash after (block durable, only recovery sees it).
  for (const std::uint64_t when : {0u, 1u}) {
    KVStore kv;
    ParallelChainLedger ledger(1, &kv);
    ASSERT_TRUE(ledger.AppendBlock(ledger.BuildBlock(0, 1, {})).ok());
    fault::Plan plan;
    plan.Add({fault::sites::kLedgerAppend, fault::Action::kCrash, 1, 1.0,
              when, 1});
    fault::ScopedPlan armed(std::move(plan));
    const Status s = ledger.AppendBlock(ledger.BuildBlock(0, 2, {}));
    ASSERT_TRUE(fault::IsInjectedCrash(s)) << s.ToString();
    EXPECT_EQ(ledger.ChainHeight(0), 1u);  // never attached in memory

    ParallelChainLedger recovered(1, &kv);
    ASSERT_TRUE(recovered.LoadFromStorage().ok());
    EXPECT_EQ(recovered.ChainHeight(0), when == 0 ? 1u : 2u);
  }
}

// ---------- crash-at-every-site recovery sweep ----------

NodeConfig MakeConfig(SchemeKind scheme) {
  NodeConfig config;
  config.scheme = scheme;
  config.worker_threads = 2;
  config.max_chains = 2;
  return config;
}

void InitNode(FullNode& node, const WorkloadConfig& wl) {
  SmallBankWorkload::InitAccounts(node.state(), wl.num_accounts, 100, 100);
  ASSERT_TRUE(node.state().Flush().ok());
  node.ledger().CommitEpochRoot(0, node.state().RootHash());
}

void AppendEpochBlocks(FullNode& node, SmallBankWorkload& workload,
                       EpochId epoch) {
  for (ChainId chain = 0; chain < 2; ++chain) {
    Block block =
        node.ledger().BuildBlock(chain, epoch, workload.MakeBatch(20));
    ASSERT_TRUE(node.ledger().AppendBlock(std::move(block)).ok());
  }
}

Result<EpochReport> ProcessSealed(FullNode& node, EpochId epoch) {
  auto batch = node.ledger().SealEpoch(epoch);
  if (!batch.ok()) return batch.status();
  return node.ProcessEpoch(*batch);
}

TEST(CrashRecoverySweepTest, EverySiteEverySchemeNeverTearsState) {
  // For every scheme and every commit-path injection site: process epoch 1
  // cleanly, crash (or tear the commit batch) while committing epoch 2,
  // recover a fresh node, and require the recovered state to be EXACTLY the
  // pre-epoch-2 state or EXACTLY the fully-committed epoch-2 state — with
  // roots, receipt root, journal epoch and ledger agreeing — never a blend.
  const SchemeKind schemes[] = {SchemeKind::kSerial, SchemeKind::kOcc,
                                SchemeKind::kCg, SchemeKind::kNezha,
                                SchemeKind::kNezhaNoReorder};
  WorkloadConfig wl;
  wl.num_accounts = 120;
  wl.skew = 0.5;

  for (const SchemeKind scheme : schemes) {
    // Control run: both epochs clean, recording the two committed reports.
    KVStore kv_control;
    FullNode control(MakeConfig(scheme), &kv_control);
    SmallBankWorkload workload_control(wl, 42);
    InitNode(control, wl);
    AppendEpochBlocks(control, workload_control, 1);
    auto r1 = ProcessSealed(control, 1);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    AppendEpochBlocks(control, workload_control, 2);
    auto r2 = ProcessSealed(control, 2);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();

    for (const std::string& site : fault::CommitPathSites()) {
      SCOPED_TRACE(std::string(SchemeName(scheme)) + " crash at " + site);
      KVStore kv;
      {
        FullNode node(MakeConfig(scheme), &kv);
        SmallBankWorkload workload(wl, 42);
        InitNode(node, wl);
        AppendEpochBlocks(node, workload, 1);
        ASSERT_TRUE(ProcessSealed(node, 1).ok());
        AppendEpochBlocks(node, workload, 2);
        // Arm only around the commit under test; the kvstore/write site is
        // torn mid-batch (record 3) instead of crashed to also exercise the
        // partial-batch repair.
        fault::Plan plan;
        if (site == fault::sites::kKvWrite) {
          plan.TearAt(site, 3);
        } else {
          plan.CrashAt(site);
        }
        fault::ScopedPlan armed(std::move(plan));
        auto report = ProcessSealed(node, 2);
        ASSERT_FALSE(report.ok()) << "injection did not fire";
      }  // the node object dies with everything in memory

      FullNode recovered(MakeConfig(scheme), &kv);
      auto rec = recovered.Recover();
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();

      // Before the journal lands, the epoch is as if it never happened;
      // from the journal write onwards it must recover fully committed.
      const bool committed = site != fault::sites::kCommitBeforeJournal;
      const EpochReport& expected = committed ? *r2 : *r1;
      EXPECT_EQ(rec->state_root, expected.state_root);
      EXPECT_EQ(recovered.state().RootHash(), expected.state_root);
      EXPECT_EQ(rec->receipt_root, expected.receipt_root);
      EXPECT_EQ(rec->last_committed, committed ? EpochId(2) : EpochId(1));
      EXPECT_EQ(recovered.ledger().LastCommittedEpoch(),
                committed ? EpochId(2) : EpochId(1));
      // Roll-forward happens exactly when the crash hit between the pending
      // journal write and the end of the commit batch.
      const bool expect_roll = site == fault::sites::kCommitAfterJournal ||
                               site == fault::sites::kCommitBeforeFlush ||
                               site == fault::sites::kKvWrite;
      EXPECT_EQ(rec->rolled_forward, expect_roll);
      // Epoch-2 blocks were persisted before the commit in every scenario.
      EXPECT_EQ(recovered.ledger().TotalBlocks(), 4u);

      // The recovered node must be able to CONTINUE. If epoch 2 was lost,
      // reprocessing it from the recovered ledger's own blocks must land on
      // the control's epoch-2 state.
      if (!committed) {
        auto redo = ProcessSealed(recovered, 2);
        ASSERT_TRUE(redo.ok()) << redo.status().ToString();
        EXPECT_EQ(redo->state_root, r2->state_root);
        EXPECT_EQ(redo->receipt_root, r2->receipt_root);
      }
    }
  }
}

TEST(CrashRecoverySweepTest, PipelinedEverySiteRecoversAtomically) {
  // The cross-epoch pipeline must not weaken the crash contract: with
  // epoch 2's commit overlapping nothing less than epoch 1's full history,
  // crash (or tear) epoch 2's commit at every site and require recovery to
  // land on EXACTLY the pre-epoch-2 state or EXACTLY the fully-committed
  // epoch-2 state — identical to the batch driver's contract above. Each
  // site fires on its SECOND hit: epoch 1's clean commit is hit one.
  WorkloadConfig wl;
  wl.num_accounts = 120;
  wl.skew = 0.5;
  struct ModeCase {
    SchemeKind scheme;
    std::size_t depth;
  };
  // Nezha at both pipeline depths plus the Serial passthrough.
  const ModeCase modes[] = {{SchemeKind::kNezha, 1},
                            {SchemeKind::kNezha, 2},
                            {SchemeKind::kSerial, 2}};

  for (const ModeCase& mode : modes) {
    // Control run: the batch driver, both epochs clean.
    KVStore kv_control;
    FullNode control(MakeConfig(mode.scheme), &kv_control);
    SmallBankWorkload workload_control(wl, 42);
    InitNode(control, wl);
    AppendEpochBlocks(control, workload_control, 1);
    auto r1 = ProcessSealed(control, 1);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    AppendEpochBlocks(control, workload_control, 2);
    auto r2 = ProcessSealed(control, 2);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();

    for (const std::string& site : fault::CommitPathSites()) {
      SCOPED_TRACE(std::string(SchemeName(mode.scheme)) + " depth=" +
                   std::to_string(mode.depth) + " crash at " + site);
      KVStore kv;
      {
        FullNode node(MakeConfig(mode.scheme), &kv);
        SmallBankWorkload workload(wl, 42);
        InitNode(node, wl);
        fault::Plan plan;
        if (site == fault::sites::kKvWrite) {
          plan.TearAt(site, /*record=*/3, /*hit_number=*/2);
        } else {
          plan.CrashAt(site, /*hit_number=*/2);
        }
        fault::ScopedPlan armed(std::move(plan));
        PipelineOptions options;
        options.depth = mode.depth;
        EpochPipeline pipeline(node, options);
        for (EpochId epoch = 1; epoch <= 2; ++epoch) {
          std::vector<std::vector<Transaction>> chain_txs(2);
          for (ChainId chain = 0; chain < 2; ++chain) {
            chain_txs[chain] = workload.MakeBatch(20);
          }
          // Submit may already surface the latched crash; Drain must.
          if (!pipeline.Submit(epoch, std::move(chain_txs)).ok()) break;
        }
        auto reports = pipeline.Drain();
        ASSERT_FALSE(reports.ok()) << "injection did not fire";
      }  // node and pipeline die with everything in memory

      FullNode recovered(MakeConfig(mode.scheme), &kv);
      auto rec = recovered.Recover();
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();

      const bool committed = site != fault::sites::kCommitBeforeJournal;
      const EpochReport& expected = committed ? *r2 : *r1;
      EXPECT_EQ(rec->state_root, expected.state_root);
      EXPECT_EQ(recovered.state().RootHash(), expected.state_root);
      EXPECT_EQ(rec->receipt_root, expected.receipt_root);
      EXPECT_EQ(rec->last_committed, committed ? EpochId(2) : EpochId(1));
      EXPECT_EQ(recovered.ledger().LastCommittedEpoch(),
                committed ? EpochId(2) : EpochId(1));
      const bool expect_roll = site == fault::sites::kCommitAfterJournal ||
                               site == fault::sites::kCommitBeforeFlush ||
                               site == fault::sites::kKvWrite;
      EXPECT_EQ(rec->rolled_forward, expect_roll);
      // The prepare thread appended epoch 2's blocks before its commit
      // crashed, so the recovered ledger holds all four.
      EXPECT_EQ(recovered.ledger().TotalBlocks(), 4u);

      // A lost epoch 2 must be reprocessable from the recovered ledger's
      // own blocks — through the plain batch driver — onto the control's
      // epoch-2 state.
      if (!committed) {
        auto redo = ProcessSealed(recovered, 2);
        ASSERT_TRUE(redo.ok()) << redo.status().ToString();
        EXPECT_EQ(redo->state_root, r2->state_root);
        EXPECT_EQ(redo->receipt_root, r2->receipt_root);
      }
    }
  }
}

// ---------- state sync under fire ----------

void FillState(StateDB& db, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    db.Set(Address(i * 3 + 1), static_cast<StateValue>(i * 13 + 7));
  }
}

TEST(SyncFaultTest, CompletesUnderDropAndCorruption) {
  StateDB source;
  FillState(source, 2000);
  StateSyncServer server(source, /*chunk_size=*/64);
  ServerChunkSource transport(server);

  // 20% drops + 5% in-flight corruption + occasional over-deadline delays.
  fault::Plan plan(1234);
  plan.WithProbability(fault::sites::kSyncServeChunk, fault::Action::kDrop,
                       0.20);
  plan.WithProbability(fault::sites::kSyncServeChunk, fault::Action::kCorrupt,
                       0.05, /*mode: transport flip*/ 0);
  plan.WithProbability(fault::sites::kSyncServeChunk, fault::Action::kDelay,
                       0.05, /*ms*/ 200);
  fault::ScopedPlan armed(std::move(plan));

  StateSyncClient client(server.root());
  SyncRetryPolicy policy;
  policy.max_attempts_per_chunk = 32;
  policy.chunk_timeout_ms = 50;  // the injected 200ms delay times out
  StateDB target;
  const Status s = client.SyncFrom(transport, target, policy);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(target.RootHash(), server.root());
  EXPECT_EQ(target.Size(), source.Size());

  const SyncStats& stats = client.stats();
  EXPECT_EQ(stats.chunks_verified, server.NumChunks());
  EXPECT_GT(stats.drops, 0u);
  EXPECT_GT(stats.checksum_failures, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.backoff_ms_total, 0.0);
  EXPECT_EQ(stats.proof_failures, 0u);  // transport noise is not a lie
  EXPECT_EQ(stats.sources_blacklisted, 0u);
}

TEST(SyncFaultTest, TruncatedChunkIsRetried) {
  StateDB source;
  FillState(source, 300);
  StateSyncServer server(source, 100);
  ServerChunkSource transport(server);
  fault::Plan plan;
  plan.Add({fault::sites::kSyncServeChunk, fault::Action::kTruncate, 1, 1.0,
            0, 1});
  fault::ScopedPlan armed(std::move(plan));

  StateSyncClient client(server.root());
  StateDB target;
  ASSERT_TRUE(client.SyncFrom(transport, target, {}).ok());
  EXPECT_EQ(target.RootHash(), server.root());
  EXPECT_EQ(client.stats().checksum_failures, 1u);
  EXPECT_EQ(client.stats().retries, 1u);
}

/// A malicious source: forges a boundary record AND recomputes the checksum
/// so only the boundary proof can expose the lie.
class ForgingSource : public ChunkSource {
 public:
  explicit ForgingSource(const StateSyncServer& server) : server_(server) {}

  Result<StateChunk> FetchChunk(std::uint64_t index,
                                double /*timeout_ms*/) override {
    auto chunk = server_.GetChunk(index);
    if (chunk.ok() && !chunk->records.empty()) {
      chunk->records.back().value ^= 1;
      chunk->checksum = chunk->ComputeChecksum();
    }
    return chunk;
  }
  std::string Name() const override { return "forger"; }

 private:
  const StateSyncServer& server_;
};

TEST(SyncFaultTest, ForgedProofServerIsBlacklisted) {
  StateDB source;
  FillState(source, 500);
  StateSyncServer server(source, 100);
  ForgingSource forger(server);

  StateSyncClient client(server.root());
  SyncRetryPolicy policy;
  policy.blacklist_after_proof_failures = 3;
  StateDB target;
  const Status s = client.SyncFrom(forger, target, policy);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.stats().proof_failures, 3u);
  EXPECT_EQ(client.stats().sources_blacklisted, 1u);
  EXPECT_EQ(target.Size(), 0u);  // nothing installed from a liar
}

TEST(SyncFaultTest, FailsOverFromForgerToHonestSource) {
  StateDB source;
  FillState(source, 500);
  StateSyncServer server(source, 100);
  ForgingSource forger(server);
  ServerChunkSource honest(server, "honest");

  StateSyncClient client(server.root());
  ChunkSource* const sources[] = {&forger, &honest};
  StateDB target;
  const Status s = client.SyncFrom(sources, target, {});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(target.RootHash(), server.root());
  EXPECT_EQ(client.stats().sources_blacklisted, 1u);
  EXPECT_GE(client.stats().proof_failures, 3u);
}

}  // namespace
}  // namespace nezha
