// Unit + property tests for the Merkle Patricia Trie: CRUD, root
// determinism, structural collapse on delete, and proof verification.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "storage/mpt.h"

namespace nezha {
namespace {

TEST(MptTest, EmptyTrie) {
  MerklePatriciaTrie trie;
  EXPECT_EQ(trie.Size(), 0u);
  EXPECT_TRUE(trie.RootHash().IsZero());
  EXPECT_FALSE(trie.Get("missing").ok());
}

TEST(MptTest, SingleKey) {
  MerklePatriciaTrie trie;
  trie.Put("hello", "world");
  EXPECT_EQ(trie.Size(), 1u);
  EXPECT_EQ(*trie.Get("hello"), "world");
  EXPECT_FALSE(trie.RootHash().IsZero());
}

TEST(MptTest, OverwriteKeepsSize) {
  MerklePatriciaTrie trie;
  trie.Put("k", "1");
  const Hash256 first = trie.RootHash();
  trie.Put("k", "2");
  EXPECT_EQ(trie.Size(), 1u);
  EXPECT_EQ(*trie.Get("k"), "2");
  EXPECT_NE(trie.RootHash(), first);
}

TEST(MptTest, PrefixKeysSplitCorrectly) {
  MerklePatriciaTrie trie;
  trie.Put("abc", "1");
  trie.Put("abcd", "2");  // extends past a leaf
  trie.Put("ab", "3");    // prefix of both
  trie.Put("abce", "4");
  EXPECT_EQ(*trie.Get("abc"), "1");
  EXPECT_EQ(*trie.Get("abcd"), "2");
  EXPECT_EQ(*trie.Get("ab"), "3");
  EXPECT_EQ(*trie.Get("abce"), "4");
  EXPECT_EQ(trie.Size(), 4u);
  EXPECT_FALSE(trie.Get("abcf").ok());
  EXPECT_FALSE(trie.Get("a").ok());
}

TEST(MptTest, EmptyKeyAndEmptyValue) {
  MerklePatriciaTrie trie;
  trie.Put("", "empty key");
  trie.Put("k", "");
  EXPECT_EQ(*trie.Get(""), "empty key");
  EXPECT_EQ(*trie.Get("k"), "");
  EXPECT_EQ(trie.Size(), 2u);
}

TEST(MptTest, DeleteLeaf) {
  MerklePatriciaTrie trie;
  trie.Put("a", "1");
  EXPECT_TRUE(trie.Delete("a"));
  EXPECT_EQ(trie.Size(), 0u);
  EXPECT_TRUE(trie.RootHash().IsZero());
  EXPECT_FALSE(trie.Delete("a"));  // second delete finds nothing
}

TEST(MptTest, DeleteCollapsesBranches) {
  MerklePatriciaTrie trie;
  trie.Put("abc", "1");
  trie.Put("abd", "2");
  const Hash256 two_keys = trie.RootHash();
  trie.Put("abe", "3");
  EXPECT_TRUE(trie.Delete("abe"));
  // Root must return exactly to the two-key shape (canonical structure).
  EXPECT_EQ(trie.RootHash(), two_keys);
  EXPECT_EQ(*trie.Get("abc"), "1");
  EXPECT_EQ(*trie.Get("abd"), "2");
}

TEST(MptTest, RootIndependentOfInsertionOrder) {
  const std::vector<std::pair<std::string, std::string>> items = {
      {"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}, {"al", "4"},
      {"alphabet", "5"}};
  MerklePatriciaTrie forward, backward;
  for (const auto& [k, v] : items) forward.Put(k, v);
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    backward.Put(it->first, it->second);
  }
  EXPECT_EQ(forward.RootHash(), backward.RootHash());
}

TEST(MptTest, RootMatchesAfterInsertDeleteChurn) {
  // Inserting extra keys then deleting them must restore the exact root.
  MerklePatriciaTrie trie;
  trie.Put("base1", "v1");
  trie.Put("base2", "v2");
  const Hash256 base = trie.RootHash();
  Rng rng(99);
  std::vector<std::string> extras;
  for (int i = 0; i < 200; ++i) {
    extras.push_back("extra" + std::to_string(rng.Below(10000)));
    trie.Put(extras.back(), "x");
  }
  for (const auto& k : extras) trie.Delete(k);
  EXPECT_EQ(trie.RootHash(), base);
  EXPECT_EQ(trie.Size(), 2u);
}

TEST(MptTest, ItemsReturnsSortedContents) {
  MerklePatriciaTrie trie;
  trie.Put("b", "2");
  trie.Put("a", "1");
  trie.Put("c", "3");
  const auto items = trie.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "a");
  EXPECT_EQ(items[1].first, "b");
  EXPECT_EQ(items[2].first, "c");
}

TEST(MptTest, MirrorsStdMapUnderRandomOps) {
  // Property: the trie behaves exactly like std::map under a random
  // insert/overwrite/delete workload, and equal contents imply equal roots.
  Rng rng(12345);
  MerklePatriciaTrie trie;
  std::map<std::string, std::string> reference;
  for (int step = 0; step < 3000; ++step) {
    const std::string key = "k" + std::to_string(rng.Below(400));
    const int action = static_cast<int>(rng.Below(3));
    if (action < 2) {
      const std::string value = "v" + std::to_string(rng.Below(1000));
      trie.Put(key, value);
      reference[key] = value;
    } else {
      const bool trie_removed = trie.Delete(key);
      const bool map_removed = reference.erase(key) > 0;
      EXPECT_EQ(trie_removed, map_removed) << "step " << step;
    }
  }
  EXPECT_EQ(trie.Size(), reference.size());
  for (const auto& [k, v] : reference) {
    auto got = trie.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
  // Rebuild from the reference map: identical root.
  MerklePatriciaTrie rebuilt;
  for (const auto& [k, v] : reference) rebuilt.Put(k, v);
  EXPECT_EQ(rebuilt.RootHash(), trie.RootHash());
}

// ---------- proofs ----------

TEST(MptProofTest, MembershipProofVerifies) {
  MerklePatriciaTrie trie;
  trie.Put("account1", "100");
  trie.Put("account2", "200");
  trie.Put("acct", "300");
  const Hash256 root = trie.RootHash();
  const auto proof = trie.GenerateProof("account2");
  auto proven = MerklePatriciaTrie::VerifyProof(root, "account2", proof);
  ASSERT_TRUE(proven.ok());
  EXPECT_EQ(*proven, "200");
}

TEST(MptProofTest, NonMembershipProofVerifies) {
  MerklePatriciaTrie trie;
  trie.Put("abc", "1");
  trie.Put("abd", "2");
  const Hash256 root = trie.RootHash();
  const auto proof = trie.GenerateProof("abe");
  const auto result = MerklePatriciaTrie::VerifyProof(root, "abe", proof);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MptProofTest, TamperedProofRejected) {
  MerklePatriciaTrie trie;
  trie.Put("key", "value");
  trie.Put("kez", "other");
  const Hash256 root = trie.RootHash();
  auto proof = trie.GenerateProof("key");
  ASSERT_FALSE(proof.empty());
  proof.back()[proof.back().size() - 1] ^= 1;  // flip one bit of the value
  const auto result = MerklePatriciaTrie::VerifyProof(root, "key", proof);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(MptProofTest, WrongRootRejected) {
  MerklePatriciaTrie trie;
  trie.Put("key", "value");
  const auto proof = trie.GenerateProof("key");
  Hash256 wrong = trie.RootHash();
  wrong.bytes[0] ^= 0xff;
  const auto result = MerklePatriciaTrie::VerifyProof(wrong, "key", proof);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(MptProofTest, EmptyTrieNonMembership) {
  MerklePatriciaTrie trie;
  const auto result =
      MerklePatriciaTrie::VerifyProof(Hash256{}, "anything", {});
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MptProofTest, ProofsForManyRandomKeys) {
  MerklePatriciaTrie trie;
  Rng rng(777);
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) {
    keys.push_back("key" + std::to_string(i));
    trie.Put(keys.back(), "value" + std::to_string(i));
  }
  const Hash256 root = trie.RootHash();
  for (int i = 0; i < 300; i += 7) {
    const auto proof = trie.GenerateProof(keys[static_cast<std::size_t>(i)]);
    auto proven = MerklePatriciaTrie::VerifyProof(
        root, keys[static_cast<std::size_t>(i)], proof);
    ASSERT_TRUE(proven.ok()) << keys[static_cast<std::size_t>(i)];
    EXPECT_EQ(*proven, "value" + std::to_string(i));
  }
}

}  // namespace
}  // namespace nezha
