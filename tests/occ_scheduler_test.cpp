// Tests for the Fabric-style OCC baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "cc/occ/occ_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "runtime/concurrent_executor.h"
#include "runtime/serializability.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

ReadWriteSet RW(std::vector<std::uint64_t> reads,
                std::vector<std::uint64_t> writes) {
  ReadWriteSet rw;
  for (std::uint64_t a : reads) rw.reads.push_back(Address(a));
  for (std::uint64_t a : writes) {
    rw.writes.push_back(Address(a));
    rw.write_values.push_back(1);
  }
  std::sort(rw.reads.begin(), rw.reads.end());
  std::sort(rw.writes.begin(), rw.writes.end());
  return rw;
}

TEST(OccSchedulerTest, StaleReadAborts) {
  // T0 writes A1; T1 then reads A1 -> T1's snapshot read is stale.
  const std::vector<ReadWriteSet> rwsets = {RW({}, {1}), RW({1}, {})};
  OCCScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(schedule->aborted[0]);
  EXPECT_TRUE(schedule->aborted[1]);
}

TEST(OccSchedulerTest, ReadBeforeWriteOrderCommitsBoth) {
  // The reader validates first (subscript order), so both commit.
  const std::vector<ReadWriteSet> rwsets = {RW({1}, {}), RW({}, {1})};
  OCCScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted(), 0u);
}

TEST(OccSchedulerTest, BlindWritesAllCommit) {
  const std::vector<ReadWriteSet> rwsets = {RW({}, {1}), RW({}, {1}),
                                            RW({}, {1})};
  OCCScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted(), 0u);
  // Serial commit groups.
  EXPECT_EQ(schedule->groups.size(), 3u);
}

TEST(OccSchedulerTest, RmwChainAbortsAllButFirst) {
  const std::vector<ReadWriteSet> rwsets = {RW({1}, {1}), RW({1}, {1}),
                                            RW({1}, {1})};
  OCCScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(schedule->aborted[0]);
  EXPECT_TRUE(schedule->aborted[1]);
  EXPECT_TRUE(schedule->aborted[2]);
}

TEST(OccSchedulerTest, SchedulesAreSerializable) {
  WorkloadConfig config;
  config.num_accounts = 50;
  config.skew = 0.9;
  SmallBankWorkload workload(config, 41);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 1000, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(150);
  const auto exec = ExecuteBatchSerial(snap, txs);

  OCCScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(schedule.ok());
  const auto structural = ValidateScheduleInvariants(*schedule, exec.rwsets);
  EXPECT_TRUE(structural.ok) << structural.violation;
  const auto replay = ValidateByReplay(snap, txs, *schedule, exec.rwsets);
  EXPECT_TRUE(replay.ok) << replay.violation;
}

TEST(OccSchedulerTest, AbortsMoreThanNezhaUnderContention) {
  // The paper's Table II story: plain OCC over-aborts; Nezha's dependency-
  // aware ordering commits strictly more under a contended workload.
  WorkloadConfig config;
  config.num_accounts = 10'000;
  config.skew = 1.0;
  SmallBankWorkload workload(config, 43);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(400);
  const auto exec = ExecuteBatchSerial(snap, txs);

  OCCScheduler occ;
  NezhaScheduler nezha;
  auto occ_schedule = occ.BuildSchedule(exec.rwsets);
  auto nezha_schedule = nezha.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(occ_schedule.ok());
  ASSERT_TRUE(nezha_schedule.ok());
  EXPECT_GT(occ_schedule->NumAborted(), nezha_schedule->NumAborted());
}

}  // namespace
}  // namespace nezha
