// Tests for Algorithm 1 (sorting-rank division), anchored on the paper's
// Fig. 6 example and exercising the cycle-handling tie-breaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cc/nezha/rank_division.h"
#include "common/rng.h"

namespace nezha {
namespace {

using Vertex = Digraph::Vertex;

TEST(RankDivisionTest, PaperFig6Example) {
  // Vertices 0..3 = addresses A1..A4; edges from Fig. 6:
  // A1->A2, A2->A3, A2->A4, A3->A4, A3->A1 (cycle A1->A2->A3->A1).
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(2, 0);
  const auto order = ComputeSortingRanks(g);
  // Paper: A2 ranks first (min in-degree tie broken by max out-degree),
  // then A3, then A1, then A4.
  EXPECT_EQ(order, (std::vector<Vertex>{1, 2, 0, 3}));
}

TEST(RankDivisionTest, AcyclicGraphIsPlainTopoOrder) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_EQ(ComputeSortingRanks(g), (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(RankDivisionTest, NoEdgesGivesSubscriptOrder) {
  Digraph g(5);
  EXPECT_EQ(ComputeSortingRanks(g), (std::vector<Vertex>{0, 1, 2, 3, 4}));
}

TEST(RankDivisionTest, PureCycleBreaksByOutDegree) {
  // 0 -> 1 -> 2 -> 0 plus 1 -> 3: all cycle members have in-degree 1; vertex
  // 1 has out-degree 2 (most dependencies) and must rank first.
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(1, 3);
  const auto order = ComputeSortingRanks(g);
  EXPECT_EQ(order[0], 1u);
}

TEST(RankDivisionTest, OutDegreeTieBreaksBySubscript) {
  // Symmetric two-cycle: equal in/out degrees everywhere; the smaller
  // subscript wins.
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(ComputeSortingRanks(g), (std::vector<Vertex>{0, 1}));
}

TEST(RankDivisionTest, EveryVertexAppearsOnce) {
  Digraph g(30);
  // dense-ish graph with multiple cycles
  for (Vertex v = 0; v < 30; ++v) {
    g.AddEdge(v, (v + 1) % 30, true);
    g.AddEdge(v, (v + 7) % 30, true);
  }
  const auto order = ComputeSortingRanks(g);
  std::set<Vertex> seen(order.begin(), order.end());
  EXPECT_EQ(order.size(), 30u);
  EXPECT_EQ(seen.size(), 30u);
}

TEST(RankDivisionTest, AcyclicPortionRespectsEdges) {
  // Edges outside cycles must still be respected: ranks follow topological
  // order wherever no cycle forces a tie-break.
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  // cycle among 3,4
  g.AddEdge(3, 4);
  g.AddEdge(4, 3);
  g.AddEdge(2, 3);
  const auto order = ComputeSortingRanks(g);
  std::vector<std::size_t> pos(6);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_LT(pos[2], pos[4]);
}

TEST(RankDivisionTest, DeterministicAcrossRuns) {
  Digraph g(50);
  std::uint64_t x = 12345;
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<Vertex>(SplitMix64(x) % 50);
    const auto v = static_cast<Vertex>(SplitMix64(x) % 50);
    if (u != v) g.AddEdge(u, v, true);
  }
  EXPECT_EQ(ComputeSortingRanks(g), ComputeSortingRanks(g));
}

TEST(RankDivisionTest, EmptyGraph) {
  Digraph g(0);
  EXPECT_TRUE(ComputeSortingRanks(g).empty());
}

TEST(RankDivisionTest, OptimizedMatchesReferenceOnRandomGraphs) {
  // The bucketed implementation must produce byte-identical rank orders to
  // the literal pseudocode across graph densities and both policies.
  std::uint64_t x = 424242;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + SplitMix64(x) % 120;
    const std::size_t edges = SplitMix64(x) % (4 * n);
    Digraph g(n);
    for (std::size_t i = 0; i < edges; ++i) {
      const auto u = static_cast<Vertex>(SplitMix64(x) % n);
      const auto v = static_cast<Vertex>(SplitMix64(x) % n);
      if (u != v) g.AddEdge(u, v, true);
    }
    for (RankPolicy policy : {RankPolicy::kNezha, RankPolicy::kNaive}) {
      EXPECT_EQ(ComputeSortingRanks(g, policy),
                ComputeSortingRanksReference(g, policy))
          << "trial " << trial << " n=" << n << " edges=" << edges;
    }
  }
}

TEST(RankDivisionTest, OptimizedMatchesReferenceOnWorstCaseCycles) {
  // Nested cycles sharing vertices: the densest break-path exercise.
  Digraph g(40);
  for (Vertex v = 0; v < 40; ++v) {
    g.AddEdge(v, (v + 1) % 40, true);
    g.AddEdge(v, (v + 13) % 40, true);
    g.AddEdge((v + 7) % 40, v, true);
  }
  EXPECT_EQ(ComputeSortingRanks(g), ComputeSortingRanksReference(g));
}

}  // namespace
}  // namespace nezha
