// MiniVM robustness fuzzing: arbitrary instruction streams must never
// crash, hang, corrupt the logged state view, or escape gas metering —
// blockchain nodes execute adversarial bytecode.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/state_db.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"

namespace nezha {
namespace {

Program RandomProgram(Rng& rng, std::size_t max_len) {
  const std::size_t len = 1 + rng.Below(max_len);
  Program p;
  p.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    Instruction ins;
    ins.op = static_cast<OpCode>(rng.Below(15));  // all opcodes incl. bad mixes
    switch (rng.Below(4)) {
      case 0:
        ins.imm = static_cast<std::int64_t>(rng.Below(len + 4));  // plausible jump
        break;
      case 1:
        ins.imm = static_cast<std::int64_t>(rng.Below(1000));  // small value
        break;
      case 2:
        ins.imm = -static_cast<std::int64_t>(rng.Below(1000));  // negative
        break;
      default:
        ins.imm = static_cast<std::int64_t>(rng.Next());  // garbage
        break;
    }
    p.push_back(ins);
  }
  return p;
}

TEST(MiniVmFuzzTest, RandomProgramsNeverCrashOrHang) {
  StateDB db;
  for (std::uint64_t i = 0; i < 50; ++i) db.Set(Address(i), 1);
  const StateSnapshot snap = db.MakeSnapshot(0);

  Rng rng(0xF022);
  VmLimits limits;
  limits.gas_limit = 20'000;
  std::size_t clean = 0, faulted = 0, reverted = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    LoggedStateView view(snap);
    const Program p = RandomProgram(rng, 40);
    const VmOutcome outcome = RunProgram(p, view, limits);
    ASSERT_LE(outcome.gas_used, limits.gas_limit + 50);  // metering holds
    if (!outcome.status.ok()) {
      ++faulted;
    } else if (outcome.reverted) {
      ++reverted;
    } else {
      ++clean;
    }
    // The logged view must stay internally consistent no matter what.
    const ReadWriteSet rw = view.TakeRWSet();
    EXPECT_TRUE(std::is_sorted(rw.reads.begin(), rw.reads.end()));
    EXPECT_TRUE(std::is_sorted(rw.writes.begin(), rw.writes.end()));
    EXPECT_EQ(rw.writes.size(), rw.write_values.size());
  }
  // All three outcome classes should appear across 20k random programs.
  EXPECT_GT(clean, 0u);
  EXPECT_GT(faulted, 0u);
  EXPECT_GT(reverted, 0u);
}

TEST(MiniVmFuzzTest, DeterministicUnderRepetition) {
  StateDB db;
  db.Set(Address(3), 42);
  const StateSnapshot snap = db.MakeSnapshot(0);
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 2'000; ++trial) {
    const Program p = RandomProgram(rng, 30);
    LoggedStateView v1(snap), v2(snap);
    const VmOutcome o1 = RunProgram(p, v1);
    const VmOutcome o2 = RunProgram(p, v2);
    ASSERT_EQ(o1.status.code(), o2.status.code());
    ASSERT_EQ(o1.reverted, o2.reverted);
    ASSERT_EQ(o1.gas_used, o2.gas_used);
    ReadWriteSet r1 = v1.TakeRWSet(), r2 = v2.TakeRWSet();
    ASSERT_EQ(r1.reads, r2.reads);
    ASSERT_EQ(r1.writes, r2.writes);
    ASSERT_EQ(r1.write_values, r2.write_values);
  }
}

TEST(MiniVmFuzzTest, TightGasAlwaysTerminates) {
  // Even with a gas limit of 1 the interpreter must exit immediately.
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  Rng rng(0xCAFE);
  VmLimits limits;
  limits.gas_limit = 1;
  for (int trial = 0; trial < 5'000; ++trial) {
    LoggedStateView view(snap);
    const Program p = RandomProgram(rng, 20);
    const VmOutcome outcome = RunProgram(p, view, limits);
    ASSERT_LE(outcome.gas_used, 51u);  // one instruction at most (max cost 50)
  }
}

TEST(MiniVmFuzzTest, StackLimitEnforced) {
  // A push loop must fault on max_stack, not allocate unboundedly.
  Program p = {{OpCode::kPush, 1}, {OpCode::kJump, 0}};
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  LoggedStateView view(snap);
  VmLimits limits;
  limits.gas_limit = 1'000'000;
  limits.max_stack = 64;
  const VmOutcome outcome = RunProgram(p, view, limits);
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_NE(outcome.status.message().find("stack overflow"),
            std::string::npos);
}

}  // namespace
}  // namespace nezha
