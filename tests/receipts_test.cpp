// Tests for transaction receipts: outcome classification, serialization,
// Merkle roots, the KV-backed store, and end-to-end receipt generation
// through the full node.
#include <gtest/gtest.h>

#include "node/full_node.h"
#include "node/receipts.h"
#include "vm/token_contract.h"
#include "workload/mixed_workload.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

Receipt SomeReceipt(std::uint8_t tag, TxOutcome outcome) {
  Receipt receipt;
  receipt.tx_id.bytes[0] = tag;
  receipt.outcome = outcome;
  receipt.epoch = 7;
  receipt.seq = outcome == TxOutcome::kCommitted ? 3 : kUnassignedSeq;
  receipt.writes = outcome == TxOutcome::kCommitted ? 2 : 0;
  return receipt;
}

TEST(ReceiptTest, SerializeRoundTrip) {
  for (TxOutcome outcome :
       {TxOutcome::kCommitted, TxOutcome::kRevertedAtExecution,
        TxOutcome::kAbortedBySchedule}) {
    const Receipt original = SomeReceipt(9, outcome);
    auto decoded = Receipt::Deserialize(original.Serialize());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, original);
  }
}

TEST(ReceiptTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Receipt::Deserialize("short").ok());
  std::string bytes = SomeReceipt(1, TxOutcome::kCommitted).Serialize();
  bytes[32] = 7;  // invalid outcome tag
  EXPECT_FALSE(Receipt::Deserialize(bytes).ok());
  bytes = SomeReceipt(1, TxOutcome::kCommitted).Serialize();
  bytes += "x";
  EXPECT_FALSE(Receipt::Deserialize(bytes).ok());
}

TEST(ReceiptTest, OutcomeNames) {
  EXPECT_STREQ(TxOutcomeName(TxOutcome::kCommitted), "committed");
  EXPECT_STREQ(TxOutcomeName(TxOutcome::kRevertedAtExecution), "reverted");
  EXPECT_STREQ(TxOutcomeName(TxOutcome::kAbortedBySchedule), "aborted");
}

TEST(ReceiptRootTest, EmptyIsZeroAndContentSensitive) {
  EXPECT_TRUE(ComputeReceiptRoot({}).IsZero());
  const std::vector<Receipt> a = {SomeReceipt(1, TxOutcome::kCommitted),
                                  SomeReceipt(2, TxOutcome::kCommitted)};
  std::vector<Receipt> b = a;
  EXPECT_EQ(ComputeReceiptRoot(a), ComputeReceiptRoot(b));
  b[1].outcome = TxOutcome::kAbortedBySchedule;
  EXPECT_NE(ComputeReceiptRoot(a), ComputeReceiptRoot(b));
  std::vector<Receipt> swapped = {a[1], a[0]};
  EXPECT_NE(ComputeReceiptRoot(a), ComputeReceiptRoot(swapped));
}

TEST(ReceiptStoreTest, PutGetRoundTrip) {
  KVStore kv;
  ReceiptStore store(&kv);
  const std::vector<Receipt> receipts = {
      SomeReceipt(1, TxOutcome::kCommitted),
      SomeReceipt(2, TxOutcome::kRevertedAtExecution)};
  ASSERT_TRUE(store.Put(receipts).ok());
  auto got = store.Get(receipts[1].tx_id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, receipts[1]);
  Hash256 unknown;
  unknown.bytes[5] = 0x77;
  EXPECT_FALSE(store.Get(unknown).ok());
}

TEST(ReceiptBuildTest, ClassifiesAllThreeOutcomes) {
  std::vector<Transaction> txs(3);
  txs[0].payload = MakeSmallBankCall(SmallBankOp::kGetBalance, {1});
  txs[1].payload = MakeSmallBankCall(SmallBankOp::kGetBalance, {2});
  txs[2].payload = MakeSmallBankCall(SmallBankOp::kGetBalance, {3});
  std::vector<ReadWriteSet> rwsets(3);
  rwsets[0].writes = {Address(1)};
  rwsets[0].write_values = {5};
  rwsets[1].ok = false;  // reverted at execution
  Schedule schedule;
  schedule.sequence = {4, kUnassignedSeq, kUnassignedSeq};
  schedule.aborted = {false, true, true};
  schedule.RebuildGroups();

  const auto receipts = BuildReceipts(9, txs, rwsets, schedule);
  ASSERT_EQ(receipts.size(), 3u);
  EXPECT_EQ(receipts[0].outcome, TxOutcome::kCommitted);
  EXPECT_EQ(receipts[0].seq, 4u);
  EXPECT_EQ(receipts[0].writes, 1u);
  EXPECT_EQ(receipts[0].epoch, 9u);
  EXPECT_EQ(receipts[1].outcome, TxOutcome::kRevertedAtExecution);
  EXPECT_EQ(receipts[2].outcome, TxOutcome::kAbortedBySchedule);
  EXPECT_EQ(receipts[0].tx_id, txs[0].Id());
}

TEST(ReceiptEndToEndTest, FullNodeWritesQueryableReceipts) {
  KVStore kv;
  NodeConfig config;
  config.scheme = SchemeKind::kNezha;
  config.worker_threads = 2;
  config.max_chains = 1;
  FullNode node(config, &kv);
  node.ledger().CommitEpochRoot(0, node.state().RootHash());

  // A batch with all three outcomes: a committed transfer, a token
  // overdraft (revert), and two RMW racers (one cc-abort).
  std::vector<Transaction> txs(4);
  txs[0].payload = MakeSmallBankCall(SmallBankOp::kUpdateBalance, {1, 50});
  txs[1].payload = MakeTokenCall(TokenOp::kTransfer, {1, 2, 100});  // broke
  txs[2].payload = MakeSmallBankCall(SmallBankOp::kUpdateSavings, {3, 5});
  txs[3].payload = MakeSmallBankCall(SmallBankOp::kUpdateSavings, {3, 9});

  Block block = node.ledger().BuildBlock(0, 1, txs);
  ASSERT_TRUE(node.ledger().AppendBlock(std::move(block)).ok());
  auto batch = node.ledger().SealEpoch(1);
  ASSERT_TRUE(batch.ok());
  auto report = node.ProcessEpoch(*batch);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->receipt_root.IsZero());

  auto committed = node.receipts().Get(txs[0].Id());
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->outcome, TxOutcome::kCommitted);
  EXPECT_GT(committed->seq, 0u);

  auto reverted = node.receipts().Get(txs[1].Id());
  ASSERT_TRUE(reverted.ok());
  EXPECT_EQ(reverted->outcome, TxOutcome::kRevertedAtExecution);

  auto racer_a = node.receipts().Get(txs[2].Id());
  auto racer_b = node.receipts().Get(txs[3].Id());
  ASSERT_TRUE(racer_a.ok());
  ASSERT_TRUE(racer_b.ok());
  const int aborted =
      (racer_a->outcome == TxOutcome::kAbortedBySchedule ? 1 : 0) +
      (racer_b->outcome == TxOutcome::kAbortedBySchedule ? 1 : 0);
  EXPECT_EQ(aborted, 1);  // exactly one RMW racer survives
}

Hash256 RunContendedEpochReceiptRoot() {
  MixedWorkloadConfig wl;
  wl.skew = 1.0;
  MixedWorkload workload(wl, 3);
  KVStore kv;
  NodeConfig config;
  config.worker_threads = 2;
  config.max_chains = 1;
  FullNode node(config, &kv);
  MixedWorkload::InitState(node.state(), wl, 100);
  EXPECT_TRUE(node.state().Flush().ok());
  node.ledger().CommitEpochRoot(0, node.state().RootHash());
  Block block = node.ledger().BuildBlock(0, 1, workload.MakeBatch(200));
  EXPECT_TRUE(node.ledger().AppendBlock(std::move(block)).ok());
  auto batch = node.ledger().SealEpoch(1);
  EXPECT_TRUE(batch.ok());
  auto report = node.ProcessEpoch(*batch);
  EXPECT_TRUE(report.ok());
  return report.ok() ? report->receipt_root : Hash256{};
}

TEST(ReceiptEndToEndTest, ReceiptRootIsDeterministic) {
  const Hash256 first = RunContendedEpochReceiptRoot();
  const Hash256 second = RunContendedEpochReceiptRoot();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.IsZero());
}

}  // namespace
}  // namespace nezha
