// Unit tests for src/common: SHA-256, byte utilities, RNG, Zipfian sampler,
// histogram, status/result, thread pool, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/histogram.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sha256.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "common/zipfian.h"

namespace nezha {
namespace {

// ---------- SHA-256 (FIPS 180-4 test vectors) ----------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Digest("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Digest("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(hasher.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data = "The quick brown fox jumps over the lazy dog";
  Sha256 hasher;
  for (char c : data) hasher.Update(std::string_view(&c, 1));
  EXPECT_EQ(hasher.Finish(), Sha256::Digest(data));
}

TEST(Sha256Test, ExactBlockBoundary) {
  const std::string block(64, 'x');
  const std::string two_blocks(128, 'x');
  EXPECT_NE(Sha256::Digest(block), Sha256::Digest(two_blocks));
  // 55/56/57 bytes straddle the padding boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    Sha256 split;
    const std::string msg(len, 'y');
    split.Update(msg.substr(0, len / 2));
    split.Update(msg.substr(len / 2));
    EXPECT_EQ(split.Finish(), Sha256::Digest(msg)) << "len=" << len;
  }
}

// The SHA-NI fast path must be byte-identical to the portable compression
// function on every length around the block/padding boundaries and on
// multi-block bulk updates. On machines without the SHA extensions both
// sides run the portable code and the test is a tautology.
TEST(Sha256Test, HardwarePathMatchesPortablePath) {
  std::string data;
  data.reserve(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    data.push_back(static_cast<char>((i * 131 + 7) & 0xff));
  }
  for (std::size_t len = 0; len <= 300; ++len) {
    const std::string_view msg(data.data(), len);
    const Hash256 fast = Sha256::Digest(msg);
    Sha256::ForceScalarForTest(true);
    const Hash256 portable = Sha256::Digest(msg);
    Sha256::ForceScalarForTest(false);
    ASSERT_EQ(fast, portable) << "len=" << len;
  }
  const Hash256 fast = Sha256::Digest(data);
  Sha256::ForceScalarForTest(true);
  const Hash256 portable = Sha256::Digest(data);
  Sha256::ForceScalarForTest(false);
  EXPECT_EQ(fast, portable);
}

TEST(Hash256Test, ZeroDetection) {
  Hash256 h;
  EXPECT_TRUE(h.IsZero());
  h.bytes[31] = 1;
  EXPECT_FALSE(h.IsZero());
}

TEST(Hash256Test, HexIs64Chars) {
  EXPECT_EQ(Sha256::Digest("x").ToHex().size(), 64u);
}

// ---------- bytes ----------

TEST(BytesTest, HexRoundTrip) {
  const std::string data = "\x00\x01\xab\xff\x7f";
  const std::string data_full(data.data(), 5);
  EXPECT_EQ(FromHex(ToHex(data_full)), data_full);
}

TEST(BytesTest, HexRejectsMalformed) {
  EXPECT_EQ(FromHex("abc"), "");   // odd length
  EXPECT_EQ(FromHex("zz"), "");    // bad digit
}

TEST(BytesTest, Fixed64RoundTrip) {
  std::string out;
  PutFixed64(out, 0xdeadbeefcafebabeull);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(GetFixed64(out), 0xdeadbeefcafebabeull);
}

TEST(BytesTest, Fixed64BigEndianOrdering) {
  // Big-endian encoding preserves numeric order lexicographically.
  std::string a, b;
  PutFixed64(a, 5);
  PutFixed64(b, 300);
  EXPECT_LT(a, b);
}

TEST(BytesTest, Fixed32RoundTrip) {
  std::string out;
  PutFixed32(out, 0x12345678u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(GetFixed32(out), 0x12345678u);
}

TEST(BytesTest, VarintRoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          ~0ull, 0xdeadbeefull}) {
    std::string out;
    PutVarint64(out, v);
    std::size_t offset = 0;
    std::uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(out, &offset, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(offset, out.size());
  }
}

TEST(BytesTest, VarintTruncatedFails) {
  std::string out;
  PutVarint64(out, 1u << 20);
  out.pop_back();
  std::size_t offset = 0;
  std::uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(out, &offset, &decoded));
}

// ---------- types ----------

TEST(AddressTest, OrderingAndEquality) {
  EXPECT_LT(Address(1), Address(2));
  EXPECT_EQ(Address(7), Address(7));
  EXPECT_NE(Address(7), Address(8));
  EXPECT_EQ(ToString(Address(17)), "A17");
}

TEST(AddressTest, HashSpreadsSequentialIds) {
  std::set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<Address>{}(Address(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on a small range
}

// ---------- status / result ----------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  const Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Aborted("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  EXPECT_EQ(r.value_or(-1), -1);
}

// ---------- RNG ----------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ---------- Zipfian ----------

TEST(ZipfianTest, UniformAtZeroSkew) {
  ZipfianGenerator gen(100, 0.0);
  Rng rng(1);
  int counts[100] = {};
  for (int i = 0; i < 100000; ++i) ++counts[gen.Next(rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(ZipfianTest, RankZeroIsHottest) {
  ZipfianGenerator gen(1000, 0.99);
  Rng rng(2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[gen.Next(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[999]);
  // Rank 0 under theta~1 over 1000 items should take a noticeable share.
  EXPECT_GT(counts[0], 5000);
}

TEST(ZipfianTest, EmpiricalMatchesAnalyticMass) {
  const std::uint64_t n = 100;
  ZipfianGenerator gen(n, 0.8);
  Rng rng(3);
  constexpr int kSamples = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[gen.Next(rng)];
  for (std::uint64_t k : {0ull, 1ull, 5ull, 20ull}) {
    const double expected = gen.ProbabilityOfRank(k) * kSamples;
    EXPECT_NEAR(counts[k], expected, std::max(50.0, expected * 0.15))
        << "rank " << k;
  }
}

TEST(ZipfianTest, ProbabilitiesSumToOne) {
  ZipfianGenerator gen(500, 0.6);
  double sum = 0;
  for (std::uint64_t k = 0; k < 500; ++k) sum += gen.ProbabilityOfRank(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfianTest, ScrambledPreservesHotSetSize) {
  // Scrambling must move the hot key away from rank 0 but keep skewness:
  // the most frequent key's share should match the unscrambled rank-0 share.
  const std::uint64_t n = 1000;
  ScrambledZipfianGenerator scrambled(n, 0.99);
  ZipfianGenerator plain(n, 0.99);
  Rng rng(4);
  std::vector<int> counts(n, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[scrambled.Next(rng)];
  const int hottest = *std::max_element(counts.begin(), counts.end());
  const double expected_share = plain.ProbabilityOfRank(0);
  EXPECT_NEAR(hottest, expected_share * kSamples,
              expected_share * kSamples * 0.2);
}

// ---------- histogram ----------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Median(), 50.5, 1.0);
  EXPECT_NEAR(h.Percentile(99), 99, 1.5);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, ReserveKeepsRawSemantics) {
  Histogram h;
  h.Reserve(1000);
  for (int i = 1; i <= 10; ++i) h.Add(i);
  EXPECT_EQ(h.Count(), 10u);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
}

TEST(HistogramTest, StreamingMatchesRawStats) {
  Histogram raw, streaming;
  streaming.EnableStreaming(0.1, 10'000, 512);
  EXPECT_TRUE(streaming.streaming());
  EXPECT_FALSE(raw.streaming());
  for (int i = 1; i <= 10'000; ++i) {
    raw.Add(i);
    streaming.Add(i);
  }
  EXPECT_EQ(streaming.Count(), raw.Count());
  EXPECT_DOUBLE_EQ(streaming.Mean(), raw.Mean());
  EXPECT_DOUBLE_EQ(streaming.Min(), raw.Min());
  EXPECT_DOUBLE_EQ(streaming.Max(), raw.Max());
  // Log-bucket interpolation: within ~2% of the exact percentile.
  EXPECT_NEAR(streaming.Median(), raw.Median(), raw.Median() * 0.02);
  EXPECT_NEAR(streaming.P99(), raw.P99(), raw.P99() * 0.02);
}

TEST(HistogramTest, EnableStreamingFoldsExistingSamples) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  h.EnableStreaming(0.5, 1000, 256);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Median(), 50.5, 2.0);
}

TEST(HistogramTest, StreamingClampsOutOfRangeToEdgeBuckets) {
  Histogram h;
  h.EnableStreaming(1, 100, 16);
  h.Add(0.001);  // below lo
  h.Add(1e9);    // above hi
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.001);
  EXPECT_DOUBLE_EQ(h.Max(), 1e9);
  // Percentiles clamp to the observed range, not the bucket bounds.
  EXPECT_GE(h.Percentile(1), 0.001);
  EXPECT_LE(h.Percentile(99), 1e9);
}

TEST(HistogramTest, StreamingMergeIdenticalConfigIsExact) {
  Histogram a, b;
  a.EnableStreaming(1, 1000, 64);
  b.EnableStreaming(1, 1000, 64);
  for (int i = 1; i <= 50; ++i) a.Add(i);
  for (int i = 51; i <= 100; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 100u);
  EXPECT_DOUBLE_EQ(a.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(a.Min(), 1);
  EXPECT_DOUBLE_EQ(a.Max(), 100);
}

TEST(HistogramTest, MergeRawIntoStreaming) {
  Histogram streaming, raw;
  streaming.EnableStreaming(1, 1000, 64);
  raw.Add(10);
  raw.Add(20);
  streaming.Merge(raw);
  EXPECT_EQ(streaming.Count(), 2u);
  EXPECT_DOUBLE_EQ(streaming.Mean(), 15.0);
}

TEST(HistogramTest, StreamingClearResets) {
  Histogram h;
  h.EnableStreaming(1, 100, 16);
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  h.Add(7);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 7);
}

// ---------- thread pool ----------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 10,
                                [](std::size_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ChunkedGivesDistinctSlots) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::size_t> slots;
  pool.ParallelForChunked(0, 100,
                          [&](std::size_t lo, std::size_t hi,
                              std::size_t slot) {
                            EXPECT_LT(lo, hi);
                            std::lock_guard lock(mu);
                            slots.insert(slot);
                          });
  EXPECT_GE(slots.size(), 1u);
  EXPECT_LE(slots.size(), 4u);
}

TEST(ThreadPoolTest, ParallelForGroupsCoversEveryItemOnce) {
  ThreadPool pool(4);
  const std::size_t sizes[] = {3, 0, 1, 17, 5};
  std::mutex mu;
  std::map<std::pair<std::size_t, std::size_t>, int> hits;
  pool.ParallelForGroups(sizes, [&](std::size_t g, std::size_t i) {
    std::lock_guard lock(mu);
    ++hits[{g, i}];
  });
  std::size_t total = 0;
  for (std::size_t g = 0; g < std::size(sizes); ++g) total += sizes[g];
  ASSERT_EQ(hits.size(), total);
  for (const auto& [key, count] : hits) {
    EXPECT_EQ(count, 1) << "group " << key.first << " item " << key.second;
    EXPECT_LT(key.second, sizes[key.first]);
  }
}

TEST(ThreadPoolTest, ParallelForGroupsBarriersBetweenGroups) {
  // Every item of group g must observe all of group g-1's effects: each item
  // checks the running count of completed earlier-group items.
  ThreadPool pool(4);
  const std::size_t sizes[] = {8, 8, 8, 8};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> barrier_violated{false};
  pool.ParallelForGroups(sizes, [&](std::size_t g, std::size_t) {
    if (done.load() < g * 8) barrier_violated = true;
    done.fetch_add(1);
  });
  EXPECT_FALSE(barrier_violated.load());
  EXPECT_EQ(done.load(), 32u);
}

TEST(ThreadPoolTest, ParallelForGroupsInlineFallbackFromWorkerThread) {
  // A task already running on the pool must not deadlock when it drives
  // ParallelForGroups over the same pool: everything runs inline.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  bool was_on_worker = false;
  auto fut = pool.Submit([&] {
    was_on_worker = pool.OnWorkerThread();
    const std::size_t sizes[] = {4, 4};
    pool.ParallelForGroups(sizes,
                           [&](std::size_t, std::size_t) { count.fetch_add(1); });
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  fut.get();
  EXPECT_TRUE(was_on_worker);
  EXPECT_FALSE(pool.OnWorkerThread());  // the test thread is not a worker
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, ParallelForGroupsPropagatesExceptionAndStops) {
  ThreadPool pool(2);
  std::atomic<bool> later_group_ran{false};
  const std::size_t sizes[] = {1, 4, 1};
  EXPECT_THROW(
      pool.ParallelForGroups(sizes,
                             [&](std::size_t g, std::size_t) {
                               if (g == 1) throw std::runtime_error("boom");
                               if (g == 2) later_group_ran = true;
                             }),
      std::runtime_error);
  EXPECT_FALSE(later_group_ran.load());
}

TEST(ThreadPoolTest, ParallelForGroupsEmpty) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelForGroups({}, [&](std::size_t, std::size_t) { ran = true; });
  const std::size_t all_empty[] = {0, 0, 0};
  pool.ParallelForGroups(all_empty,
                         [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// ---------- stopwatch ----------

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(w.ElapsedMillis(), 5.0);
  EXPECT_LT(w.ElapsedSeconds(), 5.0);
}

TEST(PhaseTimerTest, Accumulates) {
  PhaseTimer t;
  t.Add(100);
  t.Add(200);
  EXPECT_DOUBLE_EQ(t.TotalMicros(), 300);
  EXPECT_DOUBLE_EQ(t.MeanMicros(), 150);
  EXPECT_EQ(t.count(), 2u);
}

// ---------- logging ----------

TEST(LoggingTest, LevelGate) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  NEZHA_LOG(kInfo) << "suppressed";  // should not crash, goes nowhere
  NEZHA_LOG(kError) << "visible";
  SetLogLevel(before);
}

TEST(LoggingTest, LogEveryNSamplesTheCallSite) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  int evaluations = 0;
  for (int i = 0; i < 100; ++i) {
    NEZHA_LOG_EVERY_N(kInfo, 10) << "tick " << ++evaluations;
  }
  SetLogLevel(before);
  // The message expression only runs on the sampled hits (1 in 10).
  EXPECT_EQ(evaluations, 10);
}

// ---------- JSON (common/json.h) ----------

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE((*json::Parse("null")).is_null());
  EXPECT_EQ((*json::Parse("true")).AsBool(), true);
  EXPECT_EQ((*json::Parse("false")).AsBool(), false);
  EXPECT_DOUBLE_EQ((*json::Parse("-2.5e3")).AsDouble(), -2500);
  EXPECT_EQ((*json::Parse("42")).AsInt(), 42);
  EXPECT_EQ((*json::Parse("\"hi\\n\"")).AsString(), "hi\n");
}

TEST(JsonTest, ParsesNestedDocumentAndPreservesKeyOrder) {
  const auto parsed = json::Parse(
      R"({"b": 1, "a": {"list": [1, "two", null, {"deep": true}]}})");
  ASSERT_TRUE(parsed.ok());
  const json::Value& v = *parsed;
  EXPECT_EQ(v.AsObject()[0].first, "b");  // insertion order, not sorted
  EXPECT_EQ(v.AsObject()[1].first, "a");
  const json::Value& list = v["a"]["list"];
  ASSERT_EQ(list.AsArray().size(), 4u);
  EXPECT_EQ(list.AsArray()[1].AsString(), "two");
  EXPECT_TRUE(list.AsArray()[2].is_null());
  EXPECT_TRUE(list.AsArray()[3]["deep"].AsBool());
}

TEST(JsonTest, RoundTripsThroughDump) {
  const char* docs[] = {
      R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5}})",
      R"([1,2,3])",
      R"("escaped \" backslash \\ newline \n")",
      R"({"unicode":"é€"})",
  };
  for (const char* doc : docs) {
    const auto first = json::Parse(doc);
    ASSERT_TRUE(first.ok()) << doc;
    const std::string dumped = first->Dump();
    const auto second = json::Parse(dumped);
    ASSERT_TRUE(second.ok()) << dumped;
    // Dump is canonical: a second round-trip is byte-identical.
    EXPECT_EQ(second->Dump(), dumped);
  }
}

TEST(JsonTest, NumbersPrintShortestRoundTrip) {
  json::Value v;
  v.Set("int", 42);
  v.Set("skew", 0.8);
  v.Set("third", 1.0 / 3.0);
  const std::string dumped = v.Dump();
  EXPECT_NE(dumped.find("\"int\":42"), std::string::npos);
  // 0.8 prints as 0.8, not 0.80000000000000004.
  EXPECT_NE(dumped.find("\"skew\":0.8"), std::string::npos);
  const auto parsed = json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ((*parsed)["third"].AsDouble(), 1.0 / 3.0);
}

TEST(JsonTest, SurrogatePairsDecodeToUtf8) {
  const auto parsed = json::Parse(R"("😀")");  // 😀 U+1F600
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",       "{",           "[1,",          "{\"a\":}", "tru",
      "1 2",    "\"unclosed",  "{\"a\" 1}",    "[1,]",     "nan",
      "{\"a\":1,}",
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(json::Parse(doc).ok()) << "'" << doc << "' parsed";
  }
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(json::Parse(deep).ok());
}

TEST(JsonTest, ObjectAccessorsAndMutation) {
  json::Value v;
  v.Set("x", 1);
  v.Set("y", "two");
  v.Set("x", 3);  // overwrite, not duplicate
  EXPECT_EQ(v.AsObject().size(), 2u);
  EXPECT_EQ(v["x"].AsInt(), 3);
  EXPECT_TRUE(v.Contains("y"));
  EXPECT_FALSE(v.Contains("z"));
  EXPECT_TRUE(v["z"].is_null());  // missing key reads as null
  json::Value arr;
  arr.Append(1);
  arr.Append("two");
  EXPECT_EQ(arr.AsArray().size(), 2u);
}

}  // namespace
}  // namespace nezha
