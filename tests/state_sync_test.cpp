// Tests for consensus-block wire serialization and the Merkle-verified
// state-sync protocol.
#include <gtest/gtest.h>

#include "consensus/ohie_node.h"
#include "consensus/treegraph.h"
#include "node/state_sync.h"
#include "vm/executor.h"
#include "vm/smallbank.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

Transaction SomeTx(std::uint64_t nonce) {
  Transaction tx;
  tx.nonce = nonce;
  tx.payload = MakeSmallBankCall(SmallBankOp::kSendPayment, {1, 2, 10});
  return tx;
}

// ---------- OHIE block wire format ----------

TEST(OhieWireTest, RoundTripPreservesEverything) {
  OhieNodeView view(3, 4, 2);
  OhieBlock block = view.PrepareBlock(9, {SomeTx(1), SomeTx(2)});
  block.Seal(4);

  auto decoded = OhieBlock::Deserialize(block.Serialize(), 4);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->hash, block.hash);
  EXPECT_EQ(decoded->chain, block.chain);
  EXPECT_EQ(decoded->miner, 3u);
  EXPECT_EQ(decoded->parent_tips, block.parent_tips);
  EXPECT_EQ(decoded->txs.size(), 2u);
  // The decoded block attaches cleanly to a fresh view.
  OhieNodeView other(1, 4, 2);
  EXPECT_TRUE(other.OnBlock(*decoded).ok());
  EXPECT_TRUE(other.Knows(block.hash));
}

TEST(OhieWireTest, TamperedPayloadChangesIdentity) {
  OhieNodeView view(0, 2, 2);
  OhieBlock block = view.PrepareBlock(1, {SomeTx(1)});
  block.Seal(2);
  std::string bytes = block.Serialize();
  bytes[bytes.size() / 2] ^= 0x01;
  auto decoded = OhieBlock::Deserialize(bytes, 2);
  // Either the encoding breaks, or it decodes to a different block whose
  // recomputed commitments no longer match — it can never impersonate.
  if (decoded.ok()) {
    const bool differs = decoded->hash != block.hash ||
                         ComputeTxMerkleRoot(decoded->txs) != decoded->tx_root;
    EXPECT_TRUE(differs);
  }
}

TEST(OhieWireTest, TruncationRejected) {
  OhieNodeView view(0, 2, 2);
  OhieBlock block = view.PrepareBlock(1, {SomeTx(1)});
  block.Seal(2);
  std::string bytes = block.Serialize();
  for (std::size_t cut : {1u, 10u, 33u}) {
    if (cut < bytes.size()) {
      EXPECT_FALSE(
          OhieBlock::Deserialize(bytes.substr(0, bytes.size() - cut), 2).ok());
    }
  }
  EXPECT_FALSE(OhieBlock::Deserialize(bytes + "x", 2).ok());
}

// ---------- tree-graph block wire format ----------

TEST(TreeGraphWireTest, RoundTripAndAttach) {
  TreeGraphView view(2, 2);
  TGBlock first = view.PrepareBlock(0, {SomeTx(1)});
  first.Seal();
  ASSERT_TRUE(view.OnBlock(first).ok());
  TGBlock second = view.PrepareBlock(1, {SomeTx(2), SomeTx(3)});
  second.Seal();

  auto decoded = TGBlock::Deserialize(second.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->hash, second.hash);
  EXPECT_EQ(decoded->parent, first.hash);
  EXPECT_EQ(decoded->txs.size(), 2u);

  TreeGraphView other(3, 2);
  ASSERT_TRUE(other.OnBlock(first).ok());
  EXPECT_TRUE(other.OnBlock(*decoded).ok());
  EXPECT_EQ(other.PivotTip()->hash, second.hash);
}

TEST(TreeGraphWireTest, GarbageRejected) {
  EXPECT_FALSE(TGBlock::Deserialize("garbage").ok());
  EXPECT_FALSE(TGBlock::Deserialize("").ok());
}

// ---------- state sync ----------

void FillState(StateDB& db, std::uint64_t cells, std::uint64_t seed = 11) {
  Rng rng(seed);
  for (std::uint64_t i = 0; i < cells; ++i) {
    db.Set(Address(rng.Below(1u << 20)),
           static_cast<StateValue>(rng.Below(1'000'000)));
  }
}

TEST(StateSyncTest, FullSyncReproducesRootAndValues) {
  StateDB source;
  FillState(source, 5000);
  const Hash256 root = source.RootHash();

  StateSyncServer server(source, /*chunk_size=*/256);
  EXPECT_EQ(server.root(), root);  // same canonical encoding as StateDB

  StateSyncClient client(root);
  for (std::uint64_t i = 0; i < server.NumChunks(); ++i) {
    auto chunk = server.GetChunk(i);
    ASSERT_TRUE(chunk.ok());
    ASSERT_TRUE(client.AddChunk(*chunk).ok()) << "chunk " << i;
  }
  ASSERT_TRUE(client.Complete());

  StateDB target;
  ASSERT_TRUE(client.Finish(target).ok());
  EXPECT_EQ(target.RootHash(), root);
  EXPECT_EQ(target.Size(), source.Size());
  // Keep the snapshot alive across the loop: items() references into it.
  const StateSnapshot snapshot = source.MakeSnapshot(0);
  for (const auto& [address, value] : snapshot.items()) {
    EXPECT_EQ(target.Get(Address(address)), value);
  }
}

TEST(StateSyncTest, EmptyStateSyncs) {
  StateDB source;
  StateSyncServer server(source);
  EXPECT_EQ(server.NumChunks(), 1u);
  StateSyncClient client(server.root());
  auto chunk = server.GetChunk(0);
  ASSERT_TRUE(chunk.ok());
  EXPECT_TRUE(chunk->last);
  ASSERT_TRUE(client.AddChunk(*chunk).ok());
  StateDB target;
  EXPECT_TRUE(client.Finish(target).ok());
  EXPECT_EQ(target.Size(), 0u);
}

TEST(StateSyncTest, TamperedValueDetectedAtBoundary) {
  StateDB source;
  FillState(source, 600);
  StateSyncServer server(source, 100);
  StateSyncClient client(server.root());
  auto chunk = server.GetChunk(0);
  ASSERT_TRUE(chunk.ok());
  chunk->records.front().value += 1;  // lie about a proven record
  chunk->checksum = chunk->ComputeChecksum();  // malicious server: forged
  EXPECT_EQ(client.AddChunk(*chunk).code(), StatusCode::kCorruption);
  EXPECT_FALSE(StateSyncClient::IsChecksumFailure(client.AddChunk(*chunk)));
}

TEST(StateSyncTest, InteriorTamperingCaughtAtFinish) {
  StateDB source;
  FillState(source, 600);
  StateSyncServer server(source, 100);
  StateSyncClient client(server.root());
  for (std::uint64_t i = 0; i < server.NumChunks(); ++i) {
    auto chunk = server.GetChunk(i);
    ASSERT_TRUE(chunk.ok());
    if (i == 1) {
      chunk->records[50].value += 1;  // interior, not proven
      chunk->checksum = chunk->ComputeChecksum();  // forged by the server
    }
    ASSERT_TRUE(client.AddChunk(*chunk).ok());
  }
  StateDB target;
  EXPECT_EQ(client.Finish(target).code(), StatusCode::kCorruption);
  EXPECT_EQ(target.Size(), 0u);  // nothing installed
}

TEST(StateSyncTest, DroppedRecordCaughtAtFinish) {
  StateDB source;
  FillState(source, 600);
  StateSyncServer server(source, 100);
  StateSyncClient client(server.root());
  for (std::uint64_t i = 0; i < server.NumChunks(); ++i) {
    auto chunk = server.GetChunk(i);
    ASSERT_TRUE(chunk.ok());
    if (i == 2) {
      chunk->records.erase(chunk->records.begin() + 10);  // interior drop
      chunk->checksum = chunk->ComputeChecksum();  // forged by the server
    }
    ASSERT_TRUE(client.AddChunk(*chunk).ok());
  }
  StateDB target;
  EXPECT_EQ(client.Finish(target).code(), StatusCode::kCorruption);
}

TEST(StateSyncTest, WrongRootRejectedImmediately) {
  StateDB source;
  FillState(source, 100);
  StateSyncServer server(source, 50);
  Hash256 wrong = server.root();
  wrong.bytes[0] ^= 0xff;
  StateSyncClient client(wrong);
  auto chunk = server.GetChunk(0);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(client.AddChunk(*chunk).code(), StatusCode::kCorruption);
}

TEST(StateSyncTest, OutOfOrderChunksRejected) {
  StateDB source;
  FillState(source, 600);
  StateSyncServer server(source, 100);
  StateSyncClient client(server.root());
  auto chunk1 = server.GetChunk(1);
  ASSERT_TRUE(chunk1.ok());
  EXPECT_FALSE(client.AddChunk(*chunk1).ok());
}

TEST(StateSyncTest, ReorderedRecordsRejected) {
  StateDB source;
  FillState(source, 600);
  StateSyncServer server(source, 100);
  StateSyncClient client(server.root());
  auto chunk = server.GetChunk(0);
  ASSERT_TRUE(chunk.ok());
  std::swap(chunk->records[10], chunk->records[20]);
  chunk->checksum = chunk->ComputeChecksum();  // forged by the server
  EXPECT_EQ(client.AddChunk(*chunk).code(), StatusCode::kCorruption);
}

TEST(StateSyncTest, SyncedNodeContinuesProcessing) {
  // End-to-end: sync a node's state, then both the source and the synced
  // node process the same epoch batch and stay in agreement.
  WorkloadConfig wl;
  wl.num_accounts = 300;
  StateDB source;
  SmallBankWorkload::InitAccounts(source, wl.num_accounts, 1000, 1000);
  SmallBankWorkload workload(wl, 5);

  StateSyncServer server(source, 128);
  StateSyncClient client(source.RootHash());
  for (std::uint64_t i = 0; i < server.NumChunks(); ++i) {
    ASSERT_TRUE(client.AddChunk(*server.GetChunk(i)).ok());
  }
  StateDB synced;
  ASSERT_TRUE(client.Finish(synced).ok());

  const auto txs = workload.MakeBatch(100);
  for (StateDB* db : {&source, &synced}) {
    const StateSnapshot snap = db->MakeSnapshot(1);
    for (const Transaction& tx : txs) {
      auto rw = SimulateTransaction(snap, tx);
      ASSERT_TRUE(rw.ok());
      for (std::size_t i = 0; i < rw->writes.size(); ++i) {
        db->Set(rw->writes[i], rw->write_values[i]);
      }
    }
  }
  EXPECT_EQ(source.RootHash(), synced.RootHash());
}

}  // namespace
}  // namespace nezha
