// Unit tests for the SmallBank workload generator and the Table I conflict
// model.
#include <gtest/gtest.h>

#include <set>

#include "runtime/concurrent_executor.h"
#include "workload/conflict_model.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

TEST(WorkloadTest, DeterministicFromSeed) {
  WorkloadConfig config;
  SmallBankWorkload a(config, 7), b(config, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextTransaction(), b.NextTransaction());
  }
}

TEST(WorkloadTest, NoncesAreUnique) {
  SmallBankWorkload workload(WorkloadConfig{}, 1);
  std::set<std::uint64_t> nonces;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(nonces.insert(workload.NextTransaction().nonce).second);
  }
}

TEST(WorkloadTest, AllOpsAppear) {
  SmallBankWorkload workload(WorkloadConfig{}, 3);
  std::set<std::uint32_t> ops;
  for (int i = 0; i < 1000; ++i) {
    ops.insert(workload.NextTransaction().payload.op);
  }
  EXPECT_EQ(ops.size(), kNumSmallBankOps);
}

TEST(WorkloadTest, OpDistributionIsUniform) {
  SmallBankWorkload workload(WorkloadConfig{}, 5);
  int counts[kNumSmallBankOps] = {};
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[workload.NextTransaction().payload.op];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kNumSmallBankOps,
                kSamples / kNumSmallBankOps * 0.1);
  }
}

TEST(WorkloadTest, AccountsWithinRange) {
  WorkloadConfig config;
  config.num_accounts = 17;
  SmallBankWorkload workload(config, 9);
  for (int i = 0; i < 2000; ++i) {
    const Transaction tx = workload.NextTransaction();
    for (std::size_t a = 0; a < tx.payload.args.size(); ++a) {
      // amount args can exceed the account range; only check account args.
      const auto op = static_cast<SmallBankOp>(tx.payload.op);
      const bool is_account =
          (a == 0) ||
          (a == 1 && (op == SmallBankOp::kSendPayment ||
                      op == SmallBankOp::kAmalgamate));
      if (is_account) {
        EXPECT_LT(tx.payload.args[a], 17u);
      }
    }
  }
}

TEST(WorkloadTest, TwoAccountOpsUseDistinctAccounts) {
  WorkloadConfig config;
  config.num_accounts = 5;  // tiny world to stress the retry path
  config.skew = 1.2;
  SmallBankWorkload workload(config, 11);
  for (int i = 0; i < 2000; ++i) {
    const Transaction tx = workload.NextTransaction();
    const auto op = static_cast<SmallBankOp>(tx.payload.op);
    if (op == SmallBankOp::kSendPayment || op == SmallBankOp::kAmalgamate) {
      EXPECT_NE(tx.payload.args[0], tx.payload.args[1]);
    }
  }
}

TEST(WorkloadTest, SkewConcentratesAccesses) {
  // Higher skew => fewer distinct accounts across a fixed batch.
  auto distinct_accounts = [](double skew) {
    WorkloadConfig config;
    config.num_accounts = 10'000;
    config.skew = skew;
    SmallBankWorkload workload(config, 13);
    std::set<std::uint64_t> accounts;
    for (int i = 0; i < 2000; ++i) {
      const Transaction tx = workload.NextTransaction();
      accounts.insert(tx.payload.args[0]);
    }
    return accounts.size();
  };
  const std::size_t uniform = distinct_accounts(0.0);
  const std::size_t skewed = distinct_accounts(0.9);
  // Measured: ~1813 distinct under uniform vs ~1023 under skew 0.9
  // (the analytic expectation gives the same ~1.7x separation).
  EXPECT_GT(uniform * 10, skewed * 15);
}

TEST(WorkloadTest, InitAccountsFundsEveryAccount) {
  StateDB db;
  SmallBankWorkload::InitAccounts(db, 10, 111, 222);
  for (std::uint64_t a = 0; a < 10; ++a) {
    EXPECT_EQ(db.Get(SavingsAddress(a)), 111);
    EXPECT_EQ(db.Get(CheckingAddress(a)), 222);
  }
  EXPECT_EQ(db.Size(), 20u);
}

// ---------- conflict model (Table I) ----------

TEST(ConflictModelTest, PairCountsMatchTableI) {
  // Table I: block size 20, block concurrency {2,4,6,8} => N = {40,...,160};
  // total conflicts (in units of p): 780, 3160, 7140, 12720.
  EXPECT_EQ(ConflictPairCount(40), 780u);
  EXPECT_EQ(ConflictPairCount(80), 3160u);
  EXPECT_EQ(ConflictPairCount(120), 7140u);
  EXPECT_EQ(ConflictPairCount(160), 12720u);
}

TEST(ConflictModelTest, PairCountGrowsSuperlinearly) {
  // The paper's "power-law growth" claim: doubling N roughly quadruples C.
  const double ratio = static_cast<double>(ConflictPairCount(160)) /
                       static_cast<double>(ConflictPairCount(80));
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 4.5);
}

TEST(ConflictModelTest, ExpectedDistinctAddressesBounds) {
  const double d = ExpectedDistinctAddresses(10'000, 0.8, 100);
  EXPECT_GT(d, 1.0);
  EXPECT_LE(d, 100.0);  // can't exceed the number of draws
  // Uniform draws over a huge space barely collide.
  const double u = ExpectedDistinctAddresses(1'000'000, 0.0, 100);
  EXPECT_NEAR(u, 100.0, 1.0);
}

TEST(ConflictModelTest, MoreDrawsMoreDistinct) {
  const double d1 = ExpectedDistinctAddresses(1000, 0.9, 50);
  const double d2 = ExpectedDistinctAddresses(1000, 0.9, 500);
  EXPECT_GT(d2, d1);
}

TEST(ConflictModelTest, MeasuredConflictsRiseWithSkew) {
  auto measure = [](double skew) {
    WorkloadConfig config;
    config.num_accounts = 10'000;
    config.skew = skew;
    SmallBankWorkload workload(config, 17);
    StateDB db;
    const StateSnapshot snap = db.MakeSnapshot(0);
    const auto txs = workload.MakeBatch(200);
    const auto exec = ExecuteBatchSerial(snap, txs);
    return MeasureConflicts(exec.rwsets);
  };
  const ConflictStats low = measure(0.0);
  const ConflictStats high = measure(1.0);
  EXPECT_GT(high.conflict_probability, low.conflict_probability);
  EXPECT_LT(high.distinct_addresses, low.distinct_addresses);
  EXPECT_GT(high.max_txs_on_one_address, low.max_txs_on_one_address);
}

TEST(ConflictModelTest, NoConflictsOnDisjointTxs) {
  std::vector<ReadWriteSet> rwsets(3);
  for (std::size_t i = 0; i < 3; ++i) {
    rwsets[i].reads = {Address(i * 10)};
    rwsets[i].writes = {Address(i * 10 + 1)};
    rwsets[i].write_values = {1};
  }
  const ConflictStats stats = MeasureConflicts(rwsets);
  EXPECT_EQ(stats.conflicting_pairs, 0u);
  EXPECT_EQ(stats.distinct_addresses, 6u);
}

TEST(ConflictModelTest, ReadOnlyPairsDoNotConflict) {
  std::vector<ReadWriteSet> rwsets(2);
  rwsets[0].reads = {Address(1)};
  rwsets[1].reads = {Address(1)};
  EXPECT_EQ(MeasureConflicts(rwsets).conflicting_pairs, 0u);
}

TEST(ConflictModelTest, WriteWriteConflictDetected) {
  std::vector<ReadWriteSet> rwsets(2);
  rwsets[0].writes = {Address(1)};
  rwsets[0].write_values = {1};
  rwsets[1].writes = {Address(1)};
  rwsets[1].write_values = {2};
  EXPECT_EQ(MeasureConflicts(rwsets).conflicting_pairs, 1u);
}

}  // namespace
}  // namespace nezha
