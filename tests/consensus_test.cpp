// Tests for the OHIE consensus substrate: the event queue, block sealing
// and rank derivation, fork choice, orphan handling, confirmation, and
// whole-network simulation properties (convergence, determinism, order
// consistency under latency).
#include <gtest/gtest.h>

#include <set>

#include "consensus/event_queue.h"
#include "consensus/ohie_node.h"
#include "consensus/ohie_sim.h"

namespace nezha {
namespace {

// ---------- EventQueue ----------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(30, [&] { order.push_back(3); });
  queue.ScheduleAt(10, [&] { order.push_back(1); });
  queue.ScheduleAt(20, [&] { order.push_back(2); });
  queue.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.Now(), 30);
}

TEST(EventQueueTest, TiesResolveByInsertion) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(5, [&] { order.push_back(1); });
  queue.ScheduleAt(5, [&] { order.push_back(2); });
  queue.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(1, [&] {
    ++fired;
    queue.ScheduleAfter(1, [&] { ++fired; });
  });
  queue.RunToCompletion();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.Now(), 2);
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(10, [&] { ++fired; });
  queue.ScheduleAt(20, [&] { ++fired; });
  queue.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.Now(), 15);
  EXPECT_EQ(queue.Pending(), 1u);
}

TEST(EventQueueTest, PropertyRandomInterleavingsKeepTimeAndFifoOrder) {
  // Property pinned by every chaos scenario: whatever order events are
  // scheduled in — including events scheduled from inside running events —
  // execution visits them in non-decreasing time, and events that share a
  // timestamp fire in insertion (FIFO) order.
  struct Fired {
    double time;
    std::uint64_t insertion;  ///< global scheduling order
  };
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    EventQueue queue;
    std::vector<Fired> fired;
    std::uint64_t insertion = 0;

    // A coarse time grid forces plenty of exact ties.
    const auto random_time = [&](double from) {
      return from + static_cast<double>(rng.Below(8)) * 5.0;
    };
    const std::function<void(double, int)> schedule = [&](double at,
                                                          int depth) {
      const std::uint64_t id = insertion++;
      queue.ScheduleAt(at, [&, at, id, depth] {
        fired.push_back(Fired{at, id});
        // Some events schedule follow-ups relative to their own time —
        // the self-clocking pattern every simulation uses.
        if (depth > 0 && rng.Below(2) == 0) {
          schedule(random_time(queue.Now()), depth - 1);
        }
      });
    };

    // Random interleaving of schedules and partial drains.
    for (int round = 0; round < 40; ++round) {
      schedule(random_time(queue.Now()), /*depth=*/2);
      if (rng.Below(3) == 0) {
        const std::size_t steps = rng.Below(3);
        for (std::size_t s = 0; s < steps; ++s) queue.Step();
      }
    }
    queue.RunToCompletion();

    ASSERT_GE(fired.size(), 40u);
    for (std::size_t i = 1; i < fired.size(); ++i) {
      // Time never decreases...
      ASSERT_LE(fired[i - 1].time, fired[i].time) << "seed " << seed;
      // ...and at equal times, insertion order (FIFO tie-break) holds.
      if (fired[i - 1].time == fired[i].time) {
        ASSERT_LT(fired[i - 1].insertion, fired[i].insertion)
            << "seed " << seed << " at t=" << fired[i].time;
      }
    }
  }
}

// ---------- block sealing / genesis ----------

TEST(OhieBlockTest, SealAssignsChainFromHash) {
  OhieBlock block;
  block.miner = 1;
  block.mine_counter = 7;
  block.parent_tips = {OhieGenesisHash(0), OhieGenesisHash(1)};
  block.Seal(2);
  EXPECT_FALSE(block.hash.IsZero());
  EXPECT_LT(block.chain, 2u);
  // Deterministic: sealing the same content gives the same assignment.
  OhieBlock again = block;
  again.Seal(2);
  EXPECT_EQ(again.hash, block.hash);
  EXPECT_EQ(again.chain, block.chain);
}

TEST(OhieBlockTest, ChainAssignmentIsRoughlyUniform) {
  constexpr ChainId kChains = 4;
  std::vector<int> counts(kChains, 0);
  for (std::uint64_t i = 0; i < 4000; ++i) {
    OhieBlock block;
    block.mine_counter = i;
    block.parent_tips.assign(kChains, Hash256{});
    block.Seal(kChains);
    ++counts[block.chain];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(OhieBlockTest, GenesisBlocksAreDistinctPerChain) {
  EXPECT_NE(OhieGenesisHash(0), OhieGenesisHash(1));
  const OhieBlock g = MakeOhieGenesis(3);
  EXPECT_EQ(g.chain, 3u);
  EXPECT_EQ(g.rank, 0u);
  EXPECT_EQ(g.next_rank, 1u);
}

// ---------- node view ----------

class OhieNodeTest : public ::testing::Test {
 protected:
  static constexpr ChainId kChains = 3;
  OhieNodeTest() : view_(0, kChains, /*confirm_depth=*/2) {}

  /// Mines a block on top of `view` (retries counters until the sealed
  /// block lands on `want_chain`, if specified).
  OhieBlock Mine(const OhieNodeView& view, int want_chain = -1) {
    for (;;) {
      OhieBlock block = view.PrepareBlock(counter_++, {});
      block.Seal(kChains);
      if (want_chain < 0 || block.chain == static_cast<ChainId>(want_chain)) {
        return block;
      }
    }
  }

  OhieNodeView view_;
  std::uint64_t counter_ = 0;
};

TEST_F(OhieNodeTest, StartsAtGenesis) {
  EXPECT_EQ(view_.NumBlocks(), kChains);
  for (ChainId chain = 0; chain < kChains; ++chain) {
    EXPECT_EQ(view_.Tip(chain)->height, 0u);
  }
  EXPECT_TRUE(view_.ConfirmedOrder().empty());
}

TEST_F(OhieNodeTest, AttachExtendsTipAndDerivesRank) {
  const OhieBlock block = Mine(view_);
  auto attached = view_.OnBlock(block);
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(*attached, 1u);
  const OhieBlock* tip = view_.Tip(block.chain);
  EXPECT_EQ(tip->hash, block.hash);
  EXPECT_EQ(tip->height, 1u);
  EXPECT_EQ(tip->rank, 1u);       // parent (genesis) next_rank
  EXPECT_EQ(tip->next_rank, 2u);  // rank + 1 (all tips were genesis)
}

TEST_F(OhieNodeTest, NextRankCatchesUpAcrossChains) {
  // Grow chain 0 a few blocks, then mine on another chain: its next_rank
  // must jump to chain 0's tip next_rank (the OHIE catch-up rule).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(view_.OnBlock(Mine(view_, 0)).ok());
  }
  const std::uint64_t chain0_next = view_.Tip(0)->next_rank;
  ASSERT_GE(chain0_next, 4u);
  const OhieBlock other = Mine(view_, 1);
  ASSERT_TRUE(view_.OnBlock(other).ok());
  EXPECT_EQ(view_.Tip(1)->rank, 1u);  // parent genesis next_rank
  EXPECT_EQ(view_.Tip(1)->next_rank, chain0_next);
}

TEST_F(OhieNodeTest, DuplicateBlockIsIgnored) {
  const OhieBlock block = Mine(view_);
  ASSERT_TRUE(view_.OnBlock(block).ok());
  auto again = view_.OnBlock(block);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST_F(OhieNodeTest, TamperedBlockRejected) {
  OhieBlock block = Mine(view_);
  block.txs.push_back(Transaction{});  // payload no longer matches tx_root
  EXPECT_FALSE(view_.OnBlock(block).ok());
}

TEST_F(OhieNodeTest, WrongHashRejected) {
  OhieBlock block = Mine(view_);
  block.hash.bytes[0] ^= 1;
  EXPECT_FALSE(view_.OnBlock(block).ok());
}

TEST_F(OhieNodeTest, OrphanBufferedThenAttached) {
  // Build two blocks in a row on a second view; deliver child first.
  OhieNodeView other(1, kChains, 2);
  const OhieBlock first = Mine(other);
  ASSERT_TRUE(other.OnBlock(first).ok());
  const OhieBlock second = Mine(other);
  ASSERT_TRUE(other.OnBlock(second).ok());

  auto r1 = view_.OnBlock(second);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 0u);  // orphaned
  EXPECT_EQ(view_.NumOrphans(), 1u);

  auto r2 = view_.OnBlock(first);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 2u);  // first + the waiting orphan
  EXPECT_EQ(view_.NumOrphans(), 0u);
  EXPECT_TRUE(view_.Knows(second.hash));
}

TEST_F(OhieNodeTest, ForkChoicePrefersLongerThenSmallerHash) {
  // Two competing blocks at height 1 on the same chain.
  OhieNodeView a(1, kChains, 2), b(2, kChains, 2);
  const OhieBlock block_a = Mine(a, 0);
  OhieBlock block_b;
  do {
    block_b = Mine(b, 0);
  } while (block_b.hash == block_a.hash);

  ASSERT_TRUE(view_.OnBlock(block_a).ok());
  ASSERT_TRUE(view_.OnBlock(block_b).ok());
  const Hash256 expected =
      block_a.hash < block_b.hash ? block_a.hash : block_b.hash;
  EXPECT_EQ(view_.Tip(0)->hash, expected);

  // A child of the losing block flips the tip (longest chain wins).
  OhieNodeView loser_view(3, kChains, 2);
  const OhieBlock& loser =
      expected == block_a.hash ? block_b : block_a;
  ASSERT_TRUE(loser_view.OnBlock(loser).ok());
  const OhieBlock child = Mine(loser_view, 0);
  ASSERT_TRUE(view_.OnBlock(child).ok());
  EXPECT_EQ(view_.Tip(0)->hash, child.hash);
  EXPECT_EQ(view_.Tip(0)->height, 2u);
}

TEST_F(OhieNodeTest, ConfirmationNeedsDepthOnEveryChain) {
  // Bury chain 0 under confirm_depth blocks: still nothing confirmed,
  // because other chains' bars stay at genesis.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(view_.OnBlock(Mine(view_, 0)).ok());
  }
  EXPECT_TRUE(view_.ConfirmedOrder().empty());

  // Grow every chain past the confirmation depth.
  for (ChainId chain = 1; chain < kChains; ++chain) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(view_.OnBlock(Mine(view_, static_cast<int>(chain))).ok());
    }
  }
  const auto confirmed = view_.ConfirmedOrder();
  EXPECT_FALSE(confirmed.empty());
  // Order is by (rank, chain), ranks non-decreasing.
  for (std::size_t i = 1; i < confirmed.size(); ++i) {
    EXPECT_LE(confirmed[i - 1]->rank, confirmed[i]->rank);
    if (confirmed[i - 1]->rank == confirmed[i]->rank) {
      EXPECT_LT(confirmed[i - 1]->chain, confirmed[i]->chain);
    }
  }
}

// ---------- whole-network simulation ----------

TEST(OhieSimTest, AllNodesConvergeToSameConfirmedOrder) {
  OhieSimConfig config;
  config.num_chains = 4;
  config.num_nodes = 5;
  config.mean_block_interval_ms = 200;
  config.duration_ms = 30'000;
  config.seed = 11;
  OhieSimulation sim(config);
  sim.Run();

  ASSERT_GT(sim.stats().blocks_mined, 50u);
  const auto reference = sim.node(0).ConfirmedOrder();
  ASSERT_FALSE(reference.empty());
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto other = sim.node(i).ConfirmedOrder();
    ASSERT_EQ(other.size(), reference.size()) << "node " << i;
    for (std::size_t j = 0; j < reference.size(); ++j) {
      EXPECT_EQ(other[j]->hash, reference[j]->hash)
          << "node " << i << " position " << j;
    }
  }
}

TEST(OhieSimTest, DeterministicAcrossRuns) {
  OhieSimConfig config;
  config.duration_ms = 10'000;
  config.seed = 22;
  OhieSimulation a(config), b(config);
  a.Run();
  b.Run();
  EXPECT_EQ(a.stats().blocks_mined, b.stats().blocks_mined);
  const auto ca = a.node(0).ConfirmedOrder();
  const auto cb = b.node(0).ConfirmedOrder();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i]->hash, cb[i]->hash);
  }
}

TEST(OhieSimTest, DifferentSeedsDiverge) {
  OhieSimConfig config;
  config.duration_ms = 10'000;
  config.seed = 1;
  OhieSimulation a(config);
  config.seed = 2;
  OhieSimulation b(config);
  a.Run();
  b.Run();
  // Poisson arrivals differ, so the mined counts almost surely differ.
  EXPECT_NE(a.node(0).Tip(0)->hash, b.node(0).Tip(0)->hash);
}

TEST(OhieSimTest, ChainLoadIsBalanced) {
  OhieSimConfig config;
  config.num_chains = 4;
  config.mean_block_interval_ms = 100;
  config.duration_ms = 40'000;
  config.seed = 33;
  OhieSimulation sim(config);
  sim.Run();
  const auto& per_chain = sim.stats().blocks_per_chain;
  const double mean = static_cast<double>(sim.stats().blocks_mined) /
                      static_cast<double>(per_chain.size());
  for (std::size_t chain = 0; chain < per_chain.size(); ++chain) {
    EXPECT_NEAR(static_cast<double>(per_chain[chain]), mean, mean * 0.35)
        << "chain " << chain;
  }
}

TEST(OhieSimTest, HighLatencyCausesForksButOrderStaysConsistent) {
  // Aggressive settings: block interval comparable to latency.
  OhieSimConfig config;
  config.num_chains = 2;
  config.num_nodes = 6;
  config.mean_block_interval_ms = 60;
  config.base_latency_ms = 100;
  config.jitter_ms = 100;
  config.duration_ms = 20'000;
  config.seed = 44;
  OhieSimulation sim(config);
  sim.Run();
  EXPECT_GT(sim.stats().forked_blocks, 0u);  // latency produced real forks
  // Convergence still holds after delivery settles.
  const auto reference = sim.node(0).ConfirmedOrder();
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto other = sim.node(i).ConfirmedOrder();
    ASSERT_EQ(other.size(), reference.size());
    for (std::size_t j = 0; j < reference.size(); ++j) {
      EXPECT_EQ(other[j]->hash, reference[j]->hash);
    }
  }
}

TEST(OhieSimTest, TxSourceFillsBlocks) {
  OhieSimConfig config;
  config.mean_block_interval_ms = 100;
  config.duration_ms = 20'000;
  config.seed = 55;
  std::uint64_t next_nonce = 1;
  OhieSimulation sim(config, [&next_nonce](NodeId) {
    std::vector<Transaction> txs(3);
    for (auto& tx : txs) tx.nonce = next_nonce++;
    return txs;
  });
  sim.Run();
  const auto confirmed = sim.node(0).ConfirmedOrder();
  ASSERT_FALSE(confirmed.empty());
  for (const OhieBlock* block : confirmed) {
    EXPECT_EQ(block->txs.size(), 3u);
    EXPECT_EQ(ComputeTxMerkleRoot(block->txs), block->tx_root);
  }
}

TEST(OhieSimTest, LossyNetworkConvergesViaGossip) {
  // 25% of broadcast deliveries vanish; periodic anti-entropy pulls must
  // recover every block and all replicas must still agree.
  OhieSimConfig config;
  config.num_chains = 3;
  config.num_nodes = 5;
  config.mean_block_interval_ms = 150;
  config.drop_probability = 0.25;
  config.gossip_interval_ms = 500;
  config.duration_ms = 30'000;
  config.seed = 77;
  OhieSimulation sim(config);
  sim.Run();

  EXPECT_GT(sim.stats().dropped_deliveries, 50u);  // losses really happened
  EXPECT_GT(sim.stats().gossip_transfers, 10u);    // recovery really ran
  // Every node ends with every mined block.
  const std::size_t expected_blocks =
      sim.stats().blocks_mined + config.num_chains;  // + genesis blocks
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    EXPECT_EQ(sim.node(i).NumBlocks(), expected_blocks) << "node " << i;
    EXPECT_EQ(sim.node(i).NumOrphans(), 0u) << "node " << i;
  }
  const auto reference = sim.node(0).ConfirmedOrder();
  ASSERT_FALSE(reference.empty());
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto other = sim.node(i).ConfirmedOrder();
    ASSERT_EQ(other.size(), reference.size());
    for (std::size_t j = 0; j < reference.size(); ++j) {
      EXPECT_EQ(other[j]->hash, reference[j]->hash);
    }
  }
}

TEST(OhieSimTest, LossyNetworkIsStillDeterministic) {
  OhieSimConfig config;
  config.drop_probability = 0.3;
  config.gossip_interval_ms = 400;
  config.duration_ms = 10'000;
  config.seed = 78;
  OhieSimulation a(config), b(config);
  a.Run();
  b.Run();
  EXPECT_EQ(a.stats().dropped_deliveries, b.stats().dropped_deliveries);
  EXPECT_EQ(a.stats().gossip_transfers, b.stats().gossip_transfers);
  EXPECT_EQ(a.node(0).Tip(0)->hash, b.node(0).Tip(0)->hash);
}

TEST(OhieSimTest, ConfirmedOrderGrowsMonotonically) {
  // Safety over time: an earlier confirmed order must be a prefix of a
  // later one on the same node (no reorg below the confirmation bar).
  OhieSimConfig config;
  config.num_chains = 3;
  config.num_nodes = 4;
  config.mean_block_interval_ms = 150;
  config.confirm_depth = 8;
  config.duration_ms = 60'000;
  config.seed = 66;

  // Re-run the simulation twice with different horizons; determinism makes
  // the longer run an extension of the shorter one.
  OhieSimConfig half = config;
  half.duration_ms = 30'000;
  OhieSimulation short_run(half), long_run(config);
  short_run.Run();
  long_run.Run();
  const auto early = short_run.node(0).ConfirmedOrder();
  const auto late = long_run.node(0).ConfirmedOrder();
  ASSERT_LE(early.size(), late.size());
  for (std::size_t i = 0; i < early.size(); ++i) {
    EXPECT_EQ(early[i]->hash, late[i]->hash) << "position " << i;
  }
}

}  // namespace
}  // namespace nezha
