// Unit + property tests for the execution layer: SmallBank semantics, the
// MiniVM interpreter, native-vs-bytecode equivalence, and the logged state
// view.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "storage/state_db.h"
#include "vm/cost_model.h"
#include "vm/executor.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"
#include "vm/smallbank.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

StateSnapshot SnapshotWith(
    std::initializer_list<std::pair<Address, StateValue>> values) {
  StateDB db;
  for (const auto& [a, v] : values) db.Set(a, v);
  return db.MakeSnapshot(0);
}

// ---------- LoggedStateView ----------

TEST(LoggedStateTest, RecordsReadsAndWrites) {
  const StateSnapshot snap = SnapshotWith({{Address(1), 10}});
  LoggedStateView view(snap);
  EXPECT_EQ(view.Read(Address(1)), 10);
  view.Write(Address(2), 99);
  const ReadWriteSet rw = view.TakeRWSet();
  EXPECT_EQ(rw.reads, (std::vector<Address>{Address(1)}));
  EXPECT_EQ(rw.writes, (std::vector<Address>{Address(2)}));
  EXPECT_EQ(rw.write_values, (std::vector<StateValue>{99}));
  EXPECT_TRUE(rw.ok);
}

TEST(LoggedStateTest, ReadYourOwnWriteIsNotARead) {
  const StateSnapshot snap = SnapshotWith({{Address(1), 10}});
  LoggedStateView view(snap);
  view.Write(Address(1), 50);
  EXPECT_EQ(view.Read(Address(1)), 50);  // own write, not snapshot
  const ReadWriteSet rw = view.TakeRWSet();
  EXPECT_TRUE(rw.reads.empty());  // satisfied locally
}

TEST(LoggedStateTest, LastWriteWins) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  view.Write(Address(3), 1);
  view.Write(Address(3), 2);
  const ReadWriteSet rw = view.TakeRWSet();
  ASSERT_EQ(rw.writes.size(), 1u);
  EXPECT_EQ(rw.write_values[0], 2);
}

TEST(LoggedStateTest, RevertClearsOk) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  view.Revert();
  EXPECT_FALSE(view.TakeRWSet().ok);
}

TEST(LoggedStateTest, OverlayShadowsSnapshot) {
  const StateSnapshot snap = SnapshotWith({{Address(1), 10}});
  LoggedStateView::Overlay overlay{{1, 77}};
  LoggedStateView view(snap, &overlay);
  EXPECT_EQ(view.Read(Address(1)), 77);
}

// ---------- SmallBank semantics ----------

TEST(SmallBankTest, AddressMapping) {
  EXPECT_EQ(SavingsAddress(5), Address(10));
  EXPECT_EQ(CheckingAddress(5), Address(11));
  EXPECT_EQ(AccountOfAddress(Address(10)), 5u);
  EXPECT_EQ(AccountOfAddress(Address(11)), 5u);
  EXPECT_TRUE(IsSavingsAddress(Address(10)));
  EXPECT_FALSE(IsSavingsAddress(Address(11)));
}

TEST(SmallBankTest, UpdateSavingsAddsDelta) {
  const StateSnapshot snap = SnapshotWith({{SavingsAddress(1), 100}});
  LoggedStateView view(snap);
  ASSERT_TRUE(ExecuteSmallBank(
                  MakeSmallBankCall(SmallBankOp::kUpdateSavings, {1, 25}),
                  view)
                  .ok());
  const ReadWriteSet rw = view.TakeRWSet();
  ASSERT_EQ(rw.writes.size(), 1u);
  EXPECT_EQ(rw.writes[0], SavingsAddress(1));
  EXPECT_EQ(rw.write_values[0], 125);
}

TEST(SmallBankTest, SendPaymentMovesMoney) {
  const StateSnapshot snap = SnapshotWith(
      {{CheckingAddress(1), 100}, {CheckingAddress(2), 50}});
  LoggedStateView view(snap);
  ASSERT_TRUE(ExecuteSmallBank(
                  MakeSmallBankCall(SmallBankOp::kSendPayment, {1, 2, 30}),
                  view)
                  .ok());
  const ReadWriteSet rw = view.TakeRWSet();
  ASSERT_EQ(rw.writes.size(), 2u);
  EXPECT_EQ(rw.write_values[0], 70);   // checking(1) = 100 - 30
  EXPECT_EQ(rw.write_values[1], 80);   // checking(2) = 50 + 30
}

TEST(SmallBankTest, WriteCheckNormal) {
  const StateSnapshot snap = SnapshotWith(
      {{SavingsAddress(1), 100}, {CheckingAddress(1), 50}});
  LoggedStateView view(snap);
  ASSERT_TRUE(
      ExecuteSmallBank(MakeSmallBankCall(SmallBankOp::kWriteCheck, {1, 120}),
                       view)
          .ok());
  const ReadWriteSet rw = view.TakeRWSet();
  EXPECT_EQ(rw.write_values[0], -70);  // 50 - 120, no penalty (total 150)
}

TEST(SmallBankTest, WriteCheckOverdraftPenalty) {
  const StateSnapshot snap = SnapshotWith(
      {{SavingsAddress(1), 10}, {CheckingAddress(1), 10}});
  LoggedStateView view(snap);
  ASSERT_TRUE(
      ExecuteSmallBank(MakeSmallBankCall(SmallBankOp::kWriteCheck, {1, 50}),
                       view)
          .ok());
  const ReadWriteSet rw = view.TakeRWSet();
  EXPECT_EQ(rw.write_values[0], 10 - 50 - 1);  // penalty applied
}

TEST(SmallBankTest, AmalgamateMovesEverything) {
  const StateSnapshot snap = SnapshotWith({{SavingsAddress(1), 100},
                                           {CheckingAddress(1), 20},
                                           {CheckingAddress(2), 5}});
  LoggedStateView view(snap);
  ASSERT_TRUE(
      ExecuteSmallBank(MakeSmallBankCall(SmallBankOp::kAmalgamate, {1, 2}),
                       view)
          .ok());
  const ReadWriteSet rw = view.TakeRWSet();
  ASSERT_EQ(rw.writes.size(), 3u);
  // writes sorted by address: savings(1)=2, checking(1)=3, checking(2)=5.
  EXPECT_EQ(rw.writes[0], SavingsAddress(1));
  EXPECT_EQ(rw.write_values[0], 0);
  EXPECT_EQ(rw.writes[1], CheckingAddress(1));
  EXPECT_EQ(rw.write_values[1], 0);
  EXPECT_EQ(rw.writes[2], CheckingAddress(2));
  EXPECT_EQ(rw.write_values[2], 125);
}

TEST(SmallBankTest, GetBalanceIsReadOnly) {
  const StateSnapshot snap = SnapshotWith({{SavingsAddress(3), 1}});
  LoggedStateView view(snap);
  ASSERT_TRUE(ExecuteSmallBank(
                  MakeSmallBankCall(SmallBankOp::kGetBalance, {3}), view)
                  .ok());
  const ReadWriteSet rw = view.TakeRWSet();
  EXPECT_EQ(rw.reads.size(), 2u);
  EXPECT_TRUE(rw.writes.empty());
}

TEST(SmallBankTest, RejectsWrongArgCount) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  TxPayload bad = MakeSmallBankCall(SmallBankOp::kSendPayment, {1, 2});
  EXPECT_FALSE(ExecuteSmallBank(bad, view).ok());
}

TEST(SmallBankTest, RejectsWrongContract) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  TxPayload bad = MakeSmallBankCall(SmallBankOp::kGetBalance, {1});
  bad.contract = 99;
  EXPECT_FALSE(ExecuteSmallBank(bad, view).ok());
}

TEST(SmallBankTest, OpNamesAreDistinct) {
  std::set<std::string> names;
  for (std::uint32_t op = 0; op < kNumSmallBankOps; ++op) {
    names.insert(SmallBankOpName(static_cast<SmallBankOp>(op)));
  }
  EXPECT_EQ(names.size(), kNumSmallBankOps);
}

// ---------- MiniVM ----------

TEST(MiniVmTest, ArithmeticAndStack) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  // (2 + 3) * 4 - 1 = 19, stored at address 7.
  const Program p = {
      {OpCode::kPush, 7},  {OpCode::kPush, 2},  {OpCode::kPush, 3},
      {OpCode::kAdd, 0},   {OpCode::kPush, 4},  {OpCode::kMul, 0},
      {OpCode::kPush, 1},  {OpCode::kSub, 0},   {OpCode::kSStore, 0},
      {OpCode::kStop, 0}};
  const VmOutcome outcome = RunProgram(p, view);
  ASSERT_TRUE(outcome.status.ok());
  const ReadWriteSet rw = view.TakeRWSet();
  ASSERT_EQ(rw.writes.size(), 1u);
  EXPECT_EQ(rw.write_values[0], 19);
}

TEST(MiniVmTest, ConditionalJumpTaken) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  const Program p = {
      {OpCode::kPush, 1},    // condition
      {OpCode::kJumpI, 4},   // jump over the "wrong" store
      {OpCode::kPush, 0},    // (skipped)
      {OpCode::kStop, 0},    // (skipped)
      {OpCode::kPush, 5},    // addr
      {OpCode::kPush, 123},  // value
      {OpCode::kSStore, 0},
      {OpCode::kStop, 0}};
  ASSERT_TRUE(RunProgram(p, view).status.ok());
  EXPECT_EQ(view.TakeRWSet().write_values[0], 123);
}

TEST(MiniVmTest, StackUnderflowFaults) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  const Program p = {{OpCode::kAdd, 0}};
  EXPECT_FALSE(RunProgram(p, view).status.ok());
}

TEST(MiniVmTest, JumpOutOfRangeFaults) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  const Program p = {{OpCode::kJump, 99}};
  EXPECT_FALSE(RunProgram(p, view).status.ok());
}

TEST(MiniVmTest, NegativeAddressFaults) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  const Program p = {{OpCode::kPush, -1}, {OpCode::kSLoad, 0}};
  EXPECT_FALSE(RunProgram(p, view).status.ok());
}

TEST(MiniVmTest, GasLimitStopsInfiniteLoop) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  const Program p = {{OpCode::kJump, 0}};
  VmLimits limits;
  limits.gas_limit = 1000;
  const VmOutcome outcome = RunProgram(p, view, limits);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_GE(outcome.gas_used, limits.gas_limit);
}

TEST(MiniVmTest, RevertMarksStateView) {
  const StateSnapshot snap = SnapshotWith({});
  LoggedStateView view(snap);
  const Program p = {{OpCode::kPush, 1}, {OpCode::kPush, 2},
                     {OpCode::kSStore, 0}, {OpCode::kRevert, 0}};
  const VmOutcome outcome = RunProgram(p, view);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_TRUE(outcome.reverted);
  EXPECT_FALSE(view.TakeRWSet().ok);
}

TEST(MiniVmTest, GasAccountsStorageHeavier) {
  EXPECT_GT(GasCost(OpCode::kSStore), GasCost(OpCode::kSLoad));
  EXPECT_GT(GasCost(OpCode::kSLoad), GasCost(OpCode::kAdd));
}

TEST(MiniVmTest, DisassembleListsInstructions) {
  const Program p = {{OpCode::kPush, 42}, {OpCode::kStop, 0}};
  const std::string text = Disassemble(p);
  EXPECT_NE(text.find("PUSH 42"), std::string::npos);
  EXPECT_NE(text.find("STOP"), std::string::npos);
}

// ---------- native vs bytecode equivalence (property test) ----------

class ExecEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(ExecEquivalenceTest, NativeAndBytecodeAgreeOnRandomWorkload) {
  // Property: for every SmallBank transaction the MiniVM bytecode produces
  // exactly the native read set, write set, and written values.
  WorkloadConfig config;
  config.num_accounts = 50;  // small world -> plenty of collisions
  config.skew = GetParam();
  SmallBankWorkload workload(config, /*seed=*/2024);

  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 1000, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);

  for (int i = 0; i < 500; ++i) {
    const Transaction tx = workload.NextTransaction();
    auto native = SimulateTransaction(snap, tx, ExecMode::kNative);
    auto bytecode = SimulateTransaction(snap, tx, ExecMode::kBytecode);
    ASSERT_TRUE(native.ok());
    ASSERT_TRUE(bytecode.ok());
    EXPECT_EQ(native->reads, bytecode->reads) << "tx " << i;
    EXPECT_EQ(native->writes, bytecode->writes) << "tx " << i;
    EXPECT_EQ(native->write_values, bytecode->write_values) << "tx " << i;
    EXPECT_EQ(native->ok, bytecode->ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ExecEquivalenceTest,
                         ::testing::Values(0.0, 0.6, 0.9, 1.2));

TEST(ExecutorTest, UnknownContractRejected) {
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  Transaction tx;
  tx.payload.contract = 42;
  EXPECT_FALSE(SimulateTransaction(snap, tx).ok());
}

// ---------- cost model ----------

TEST(CostModelTest, MatchesTableIVWithinTolerance) {
  // The calibrated model must reproduce every Table IV cell within 5%.
  CostModel model;
  const struct {
    std::size_t txs;
    double serial_ms;
    double execute_ms;
  } kTableIV[] = {
      {400, 4700, 123.4},   {800, 10900, 246.4},  {1200, 17200, 369.3},
      {1600, 23800, 511.7}, {2000, 30000, 641.5}, {2400, 36600, 743.4},
  };
  for (const auto& row : kTableIV) {
    EXPECT_NEAR(model.SerialLatencyMs(row.txs), row.serial_ms,
                row.serial_ms * 0.05)
        << "N=" << row.txs;
    EXPECT_NEAR(model.ConcurrentExecuteLatencyMs(row.txs), row.execute_ms,
                row.execute_ms * 0.05)
        << "N=" << row.txs;
  }
}

}  // namespace
}  // namespace nezha
