// System-level integration: OHIE consensus simulation feeding the deferred
// execution pipeline. The headline property is replica consistency — every
// node, independently executing its own confirmed order in protocol-defined
// rank-window epochs, reaches the same state root no matter when or how
// often it catches up.
#include <gtest/gtest.h>

#include "consensus/ohie_sim.h"
#include "node/ohie_bridge.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

OhieSimConfig SimConfig(std::uint64_t seed) {
  OhieSimConfig config;
  config.num_chains = 3;
  config.num_nodes = 4;
  config.mean_block_interval_ms = 100;
  config.confirm_depth = 4;
  config.duration_ms = 20'000;
  config.seed = seed;
  return config;
}

/// A shared deterministic transaction source: all miners draw from one
/// global client stream (a simple stand-in for a gossiping mempool).
class SharedTxSource {
 public:
  explicit SharedTxSource(double skew)
      : workload_(MakeConfig(skew), /*seed=*/99) {}

  std::vector<Transaction> Take(std::size_t n) {
    return workload_.MakeBatch(n);
  }

 private:
  static WorkloadConfig MakeConfig(double skew) {
    WorkloadConfig config;
    config.num_accounts = 500;
    config.skew = skew;
    return config;
  }
  SmallBankWorkload workload_;
};

TEST(OhieBridgeTest, AllReplicasReachTheSameStateRoot) {
  SharedTxSource source(0.7);
  OhieSimulation sim(SimConfig(7), [&source](NodeId) {
    return source.Take(10);
  });
  sim.Run();
  ASSERT_GT(sim.node(0).ConfirmedOrder().size(), 10u);

  Hash256 reference{};
  std::size_t reference_committed = 0;
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    OhieBridgeConfig bridge_config;
    bridge_config.worker_threads = 2;
    OhieDeferredExecutor executor(bridge_config);
    auto reports = executor.CatchUp(sim.node(i));
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_FALSE(reports->empty());
    std::size_t committed = 0;
    for (const EpochReport& r : *reports) committed += r.committed;
    const Hash256 root = reports->back().state_root;
    if (i == 0) {
      reference = root;
      reference_committed = committed;
      EXPECT_FALSE(reference.IsZero());
      EXPECT_GT(committed, 0u);
    } else {
      EXPECT_EQ(root, reference) << "node " << i;
      EXPECT_EQ(committed, reference_committed);
    }
  }
}

TEST(OhieBridgeTest, CatchUpCadenceDoesNotChangeTheState) {
  // Replica A executes once at the end; replica B catches up after every
  // few hundred simulated milliseconds (via deterministic re-runs with
  // increasing horizons). Rank-window epochs make both walks identical.
  SharedTxSource source_a(0.5);
  OhieSimulation final_run(SimConfig(8), [&source_a](NodeId) {
    return source_a.Take(8);
  });
  final_run.Run();

  OhieBridgeConfig config;
  config.worker_threads = 2;
  OhieDeferredExecutor one_shot(config);
  auto full = one_shot.CatchUp(final_run.node(0));
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->empty());

  OhieDeferredExecutor incremental(config);
  for (double horizon : {7'000.0, 13'000.0, 20'000.0}) {
    OhieSimConfig partial_config = SimConfig(8);
    partial_config.duration_ms = horizon;
    SharedTxSource source_b(0.5);  // same stream, same seed
    OhieSimulation partial(partial_config, [&source_b](NodeId) {
      return source_b.Take(8);
    });
    partial.Run();
    ASSERT_TRUE(incremental.CatchUp(partial.node(0)).ok());
  }
  EXPECT_EQ(incremental.executed_windows(), one_shot.executed_windows());
  EXPECT_EQ(incremental.executed_blocks(), one_shot.executed_blocks());
  EXPECT_EQ(incremental.state().RootHash(), one_shot.state().RootHash());
}

TEST(OhieBridgeTest, EmptyViewExecutesNothing) {
  OhieNodeView view(0, 2, 4);
  OhieDeferredExecutor executor(OhieBridgeConfig{});
  auto reports = executor.CatchUp(view);
  ASSERT_TRUE(reports.ok());
  EXPECT_TRUE(reports->empty());
  EXPECT_EQ(executor.executed_blocks(), 0u);
}

TEST(OhieBridgeTest, WindowsOnlyExecuteOncePassedByTheBar) {
  SharedTxSource source(0.3);
  OhieSimulation sim(SimConfig(9), [&source](NodeId) {
    return source.Take(5);
  });
  sim.Run();
  const std::uint64_t bar = sim.node(0).ConfirmBar();
  ASSERT_GT(bar, 4u);

  OhieBridgeConfig config;
  config.ranks_per_epoch = 4;
  OhieDeferredExecutor executor(config);
  auto reports = executor.CatchUp(sim.node(0));
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(executor.executed_windows(), bar / 4);
  // Confirmed blocks beyond the last complete window stay unexecuted.
  EXPECT_LE(executor.executed_blocks(), sim.node(0).ConfirmedOrder().size());
  // A second catch-up on the same view adds nothing.
  auto again = executor.CatchUp(sim.node(0));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(OhieBridgeTest, DuplicateTransactionsExecuteOnce) {
  // Miners that package the same transactions: the bridge's
  // first-appearance rule must keep duplicates from double-applying.
  SmallBankWorkload workload(WorkloadConfig{}, 1);
  const auto shared_txs = workload.MakeBatch(5);
  OhieSimConfig config = SimConfig(10);
  OhieSimulation sim(config, [&shared_txs](NodeId) { return shared_txs; });
  sim.Run();
  ASSERT_GT(sim.node(0).ConfirmedOrder().size(), 1u);

  OhieDeferredExecutor executor(OhieBridgeConfig{});
  auto reports = executor.CatchUp(sim.node(0));
  ASSERT_TRUE(reports.ok());
  std::size_t total_txs = 0;
  for (const EpochReport& r : *reports) total_txs += r.txs;
  // Every block carried the same 5 txs; only 5 unique ones execute.
  EXPECT_EQ(total_txs, 5u);
}

TEST(OhieBridgeTest, SchemesAgreeOnConflictFreeTraffic) {
  // With a huge account space the traffic is (almost surely) conflict-free;
  // nezha / cg / occ bridges must agree with the serial-scheme result.
  WorkloadConfig wl;
  wl.num_accounts = 10'000'000;
  SmallBankWorkload workload(wl, 5);
  OhieSimConfig config = SimConfig(11);
  OhieSimulation sim(config, [&workload](NodeId) {
    return workload.MakeBatch(3);
  });
  sim.Run();
  ASSERT_FALSE(sim.node(0).ConfirmedOrder().empty());

  Hash256 roots[4];
  const SchemeKind kinds[] = {SchemeKind::kSerial, SchemeKind::kOcc,
                              SchemeKind::kCg, SchemeKind::kNezha};
  for (int i = 0; i < 4; ++i) {
    OhieBridgeConfig bridge_config;
    bridge_config.scheme = kinds[i];
    OhieDeferredExecutor executor(bridge_config);
    auto reports = executor.CatchUp(sim.node(0));
    ASSERT_TRUE(reports.ok());
    ASSERT_FALSE(reports->empty());
    roots[i] = executor.state().RootHash();
  }
  EXPECT_EQ(roots[1], roots[0]);
  EXPECT_EQ(roots[2], roots[0]);
  EXPECT_EQ(roots[3], roots[0]);
}

TEST(OhieBridgeTest, ContentiousTrafficStillConvergesAcrossReplicas) {
  // High contention (skew 1.0, small account set): lots of aborts, and the
  // replicas must still agree transaction-for-transaction.
  SharedTxSource source(1.0);
  OhieSimulation sim(SimConfig(12), [&source](NodeId) {
    return source.Take(12);
  });
  sim.Run();

  Hash256 reference{};
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    OhieDeferredExecutor executor(OhieBridgeConfig{});
    auto reports = executor.CatchUp(sim.node(i));
    ASSERT_TRUE(reports.ok());
    const Hash256 root = executor.state().RootHash();
    if (i == 0) {
      reference = root;
      std::size_t aborted = 0;
      for (const EpochReport& r : *reports) aborted += r.aborted;
      EXPECT_GT(aborted, 0u);  // contention really happened
    } else {
      EXPECT_EQ(root, reference) << "node " << i;
    }
  }
}

}  // namespace
}  // namespace nezha
