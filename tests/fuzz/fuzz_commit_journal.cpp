// Fuzz harness for the NZJL commit-journal frame parser
// (node/commit_journal.h). Deserialize must reject arbitrary bytes with a
// Corruption status — never crash, never accept a frame whose re-serialized
// round-trip disagrees with itself.
//
// Two build modes share this file:
//   * NEZHA_FUZZER_BUILD (clang, -fsanitize=fuzzer): a libFuzzer target —
//     see tests/fuzz/CMakeLists.txt and the fuzz-smoke CI job.
//   * plain (any compiler): just the FuzzCommitJournalOneInput entry point,
//     driven over the checked-in corpus by tests/fuzz_corpus_test.cpp so
//     tier-1 ctest replays every corpus input even without clang.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "node/commit_journal.h"

namespace nezha {

int FuzzCommitJournalOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const Result<CommitJournal> parsed = CommitJournal::Deserialize(input);
  if (!parsed.ok()) return 0;  // rejected cleanly — the common case
  // Accepted frames must round-trip: Serialize() of the parsed journal must
  // re-parse to a byte-identical serialization (the checksummed encoding is
  // canonical, so equality of bytes is equality of journals).
  const std::string bytes = parsed->Serialize();
  const Result<CommitJournal> again = CommitJournal::Deserialize(bytes);
  if (!again.ok()) std::abort();
  if (again->Serialize() != bytes) std::abort();
  return 0;
}

}  // namespace nezha

#ifdef NEZHA_FUZZER_BUILD
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nezha::FuzzCommitJournalOneInput(data, size);
}
#endif
