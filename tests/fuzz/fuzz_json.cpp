// Fuzz harness for the JSON parser (common/json.h). Parse must handle
// arbitrary text without crashing, and accepted documents must round-trip
// through Dump() → Parse() → Dump() to a fixed point.
//
// Build modes: see fuzz_commit_journal.cpp.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/json.h"

namespace nezha {

int FuzzJsonOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const Result<json::Value> parsed = json::Parse(input);
  if (!parsed.ok()) return 0;
  // Dump() of a parsed document must itself parse, and re-dumping the
  // re-parse must be byte-stable (insertion-ordered objects make Dump
  // canonical for a given document).
  const std::string dumped = parsed->Dump();
  const Result<json::Value> again = json::Parse(dumped);
  if (!again.ok()) std::abort();
  if (again->Dump() != dumped) std::abort();
  return 0;
}

}  // namespace nezha

#ifdef NEZHA_FUZZER_BUILD
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nezha::FuzzJsonOneInput(data, size);
}
#endif
