// Fuzz harness for the NZCP checkpoint frame parser (storage/kvstore.h).
// Restore must reject arbitrary bytes with a Corruption status, leave the
// store contents intact on rejection, and round-trip accepted frames.
//
// Build modes: see fuzz_commit_journal.cpp.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "storage/kvstore.h"

namespace nezha {

int FuzzKvCheckpointOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  KVStore store;
  // Pre-populate so a rejected restore has contents to preserve.
  (void)store.Put("sentinel", "value");
  const Status restored = store.Restore(input);
  if (!restored.ok()) {
    // Rejection must not have touched the store.
    const auto sentinel = store.Get("sentinel");
    if (!sentinel.ok() || *sentinel != "value") std::abort();
    return 0;
  }
  // Accepted frames must round-trip: checkpointing the restored store and
  // restoring that into a fresh store must reproduce the checkpoint bytes
  // (the frame encodes a sorted map, so the encoding is canonical).
  const std::string checkpoint = store.Checkpoint();
  KVStore second;
  if (!second.Restore(checkpoint).ok()) std::abort();
  if (second.Checkpoint() != checkpoint) std::abort();
  return 0;
}

}  // namespace nezha

#ifdef NEZHA_FUZZER_BUILD
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nezha::FuzzKvCheckpointOneInput(data, size);
}
#endif
