// N-node convergence under chaos: every consensus scheme, driven through a
// seeded network fault plan (drop / delay / reorder / duplicate /
// partition-heal) and a Byzantine cast (equivocate / withhold / invalid),
// must still leave every honest replica with the same committed order —
// and, through the deferred-execution bridges, byte-identical per-epoch
// state roots, receipt roots and final state. The serializability oracle is
// forced ON for every bridge run, so a schedule that merely "looks" right
// fails loudly.
//
// Equivocation caveat (docs/ROBUSTNESS.md): DAG-Rider resolves an
// equivocating pair by admission order (first wins), so it is only paired
// with ORDER-PRESERVING chaos — deterministic delays and partitions, never
// probabilistic drop/reorder on vertex traffic. The fork-choice schemes
// (OHIE, tree-graph) resolve equivocation by hash tie-break and tolerate
// any plan.
#include <gtest/gtest.h>

#include <vector>

#include "cc/scheduler.h"
#include "consensus/dagrider_sim.h"
#include "consensus/ohie_sim.h"
#include "consensus/treegraph_sim.h"
#include "fault/net_plan.h"
#include "ledger/validation.h"
#include "node/dagrider_bridge.h"
#include "node/ohie_bridge.h"
#include "node/treegraph_bridge.h"
#include "obs/metrics.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

/// Forces the serializability oracle on for the scope of one test.
struct ForcedOracle {
  ForcedOracle() { SetScheduleVerification(true); }
  ~ForcedOracle() { SetScheduleVerification(std::nullopt); }
};

/// One global client stream all miners draw from (stand-in for a gossiping
/// mempool) — keeps block payloads deterministic per (seed, call order).
class SharedTxSource {
 public:
  explicit SharedTxSource(std::uint64_t seed)
      : workload_(MakeConfig(), seed) {}

  std::vector<Transaction> Take(std::size_t n) {
    return workload_.MakeBatch(n);
  }

 private:
  static WorkloadConfig MakeConfig() {
    WorkloadConfig config;
    config.num_accounts = 300;
    config.skew = 0.6;
    return config;
  }
  SmallBankWorkload workload_;
};

/// One entry of the chaos matrix. `order_preserving` marks plans that keep
/// per-sender FIFO delivery order — the only ones DAG-Rider equivocation
/// may be paired with (see the header comment).
struct ChaosCase {
  const char* name;
  fault::NetPlan plan;
  bool order_preserving;
  bool needs_gossip;  ///< plan loses messages; anti-entropy must recover
};

std::vector<ChaosCase> ChaosMatrix(double duration_ms) {
  std::vector<ChaosCase> cases;
  {
    fault::NetPlan plan(101);
    plan.Delay(1.0, 120);
    cases.push_back({"delay", plan, true, false});
  }
  {
    fault::NetPlan plan(102);
    plan.Partition({0, 1}, duration_ms * 0.2, duration_ms * 0.6);
    cases.push_back({"partition-heal", plan, true, false});
  }
  {
    fault::NetPlan plan(103);
    plan.Duplicate(0.4, 35);
    cases.push_back({"duplicate", plan, true, false});
  }
  {
    fault::NetPlan plan(104);
    plan.Drop(0.2);
    cases.push_back({"drop", plan, false, true});
  }
  {
    fault::NetPlan plan(105);
    plan.Reorder(0.5, 250);
    cases.push_back({"reorder", plan, false, false});
  }
  return cases;
}

std::uint64_t InvalidCount(const char* component, const char* reason) {
  return obs::Registry()
      .GetCounter("nezha_invalid_block_total",
                  {{"component", component}, {"reason", reason}})
      ->Value();
}

// ---------------------------------------------------------------------------
// DAG-Rider
// ---------------------------------------------------------------------------

/// Runs one DAG-Rider configuration and asserts that every replica —
/// Byzantine ones keep a coherent honest-side state too — holds the same
/// committed sequence, and that independently executing each replica's
/// batches yields identical per-epoch state/receipt roots and final state.
void CheckDagRiderConvergence(const DagRiderSimConfig& config,
                              const char* label) {
  SCOPED_TRACE(label);
  SharedTxSource source(1234);
  DagRiderSimulation sim(config,
                         [&source](NodeId) { return source.Take(4); });
  sim.Run();
  ASSERT_GT(sim.node(0).NumBatches(), 3u);

  const auto& reference = sim.node(0).CommittedSequence();
  ASSERT_FALSE(reference.empty());
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto& committed = sim.node(i).CommittedSequence();
    ASSERT_EQ(committed.size(), reference.size()) << "node " << i;
    for (std::size_t v = 0; v < committed.size(); ++v) {
      ASSERT_EQ(committed[v]->hash, reference[v]->hash)
          << "node " << i << " vertex " << v;
    }
    ASSERT_EQ(sim.node(i).NumBatches(), sim.node(0).NumBatches());
  }

  ForcedOracle oracle;
  std::vector<Hash256> ref_state_roots;
  std::vector<Hash256> ref_receipt_roots;
  Hash256 ref_final{};
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    DeferredExecConfig exec_config;
    exec_config.worker_threads = 2;
    DagRiderDeferredExecutor executor(exec_config);
    auto reports = executor.CatchUp(sim.node(i));
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_FALSE(reports->empty());
    const Hash256 final_root = executor.state().RootHash();
    if (i == 0) {
      for (const EpochReport& r : *reports) {
        ref_state_roots.push_back(r.state_root);
        ref_receipt_roots.push_back(r.receipt_root);
      }
      ref_final = final_root;
      EXPECT_FALSE(ref_final.IsZero());
    } else {
      ASSERT_EQ(reports->size(), ref_state_roots.size()) << "node " << i;
      for (std::size_t e = 0; e < reports->size(); ++e) {
        EXPECT_EQ((*reports)[e].state_root, ref_state_roots[e])
            << "node " << i << " epoch " << e;
        EXPECT_EQ((*reports)[e].receipt_root, ref_receipt_roots[e])
            << "node " << i << " epoch " << e;
      }
      EXPECT_EQ(final_root, ref_final) << "node " << i;
    }
  }
}

TEST(ConvergenceTest, DagRiderChaosMatrix) {
  constexpr double kDurationMs = 12'000;
  for (const ChaosCase& chaos : ChaosMatrix(kDurationMs)) {
    DagRiderSimConfig config;
    config.num_nodes = 4;
    config.duration_ms = kDurationMs;
    config.seed = 11;
    config.net_plan = chaos.plan;
    if (chaos.needs_gossip) config.gossip_interval_ms = 500;
    CheckDagRiderConvergence(config, chaos.name);
  }
}

TEST(ConvergenceTest, DagRiderEquivocatorThroughPartition) {
  // The headline "after heal" scenario: an equivocating node while {0,1}
  // are partitioned from {2,3}. Order-preserving chaos only (see header).
  const std::uint64_t before =
      InvalidCount("dagrider", "equivocation");
  DagRiderSimConfig config;
  config.num_nodes = 4;
  config.duration_ms = 15'000;
  config.seed = 12;
  config.net_plan = fault::NetPlan(201).Partition({0, 1}, 3'000, 9'000);
  config.byzantine.behavior = fault::ByzBehavior::kEquivocate;
  config.byzantine.nodes = {3};
  SharedTxSource source(55);
  DagRiderSimulation sim(config,
                         [&source](NodeId) { return source.Take(4); });
  sim.Run();
  EXPECT_GT(sim.stats().byz_equivocations, 0u);
  // Every honest replica rejected the conflicting twins at admission.
  EXPECT_GT(InvalidCount("dagrider", "equivocation"), before);
  CheckDagRiderConvergence(config, "partition+equivocate");
}

TEST(ConvergenceTest, DagRiderWithholderUnderDrop) {
  DagRiderSimConfig config;
  config.num_nodes = 4;
  config.duration_ms = 15'000;
  config.seed = 13;
  config.net_plan = fault::NetPlan(202).Drop(0.15);
  config.gossip_interval_ms = 500;
  config.byzantine.behavior = fault::ByzBehavior::kWithhold;
  config.byzantine.nodes = {2};
  config.byzantine.release_ms = 8'000;
  SharedTxSource source(56);
  DagRiderSimulation sim(config,
                         [&source](NodeId) { return source.Take(4); });
  sim.Run();
  EXPECT_GT(sim.stats().byz_withheld, 0u);
  CheckDagRiderConvergence(config, "drop+withhold");
}

TEST(ConvergenceTest, DagRiderInvalidVerticesRejectedWithExactReasons) {
  const std::uint64_t bad_tx_root = InvalidCount("dagrider", "bad-tx-root");
  const std::uint64_t duplicate_tx = InvalidCount("dagrider", "duplicate-tx");
  const std::uint64_t bad_hash = InvalidCount("dagrider", "bad-hash");
  const std::uint64_t dup_parent =
      InvalidCount("dagrider", "duplicate-parent-source");

  DagRiderSimConfig config;
  config.num_nodes = 4;
  config.duration_ms = 15'000;
  config.seed = 14;
  config.net_plan = fault::NetPlan(203).Delay(1.0, 80);
  config.byzantine.behavior = fault::ByzBehavior::kInvalidBlock;
  config.byzantine.nodes = {1};
  SharedTxSource source(57);
  DagRiderSimulation sim(config,
                         [&source](NodeId) { return source.Take(4); });
  sim.Run();
  ASSERT_GT(sim.stats().byz_invalid, 8u);  // all four flavours rotated

  // Every flavour of invalid vertex was rejected with its taxonomy reason.
  EXPECT_GT(InvalidCount("dagrider", "bad-tx-root"), bad_tx_root);
  EXPECT_GT(InvalidCount("dagrider", "duplicate-tx"), duplicate_tx);
  EXPECT_GT(InvalidCount("dagrider", "bad-hash"), bad_hash);
  EXPECT_GT(InvalidCount("dagrider", "duplicate-parent-source"), dup_parent);
  CheckDagRiderConvergence(config, "delay+invalid");
}

// ---------------------------------------------------------------------------
// OHIE
// ---------------------------------------------------------------------------

OhieSimConfig BaseOhieConfig(std::uint64_t seed) {
  OhieSimConfig config;
  config.num_chains = 3;
  config.num_nodes = 5;
  config.mean_block_interval_ms = 100;
  config.confirm_depth = 4;
  config.duration_ms = 15'000;
  config.seed = seed;
  return config;
}

void CheckOhieConvergence(const OhieSimConfig& config, const char* label) {
  SCOPED_TRACE(label);
  SharedTxSource source(2345);
  OhieSimulation sim(config, [&source](NodeId) { return source.Take(6); });
  sim.Run();

  const auto reference = sim.node(0).ConfirmedOrder();
  ASSERT_GT(reference.size(), 10u);
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto confirmed = sim.node(i).ConfirmedOrder();
    ASSERT_EQ(confirmed.size(), reference.size()) << "node " << i;
    for (std::size_t b = 0; b < confirmed.size(); ++b) {
      ASSERT_EQ(confirmed[b]->hash, reference[b]->hash)
          << "node " << i << " block " << b;
    }
  }

  ForcedOracle oracle;
  std::vector<Hash256> ref_state_roots;
  std::vector<Hash256> ref_receipt_roots;
  Hash256 ref_final{};
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    OhieBridgeConfig bridge_config;
    bridge_config.worker_threads = 2;
    OhieDeferredExecutor executor(bridge_config);
    auto reports = executor.CatchUp(sim.node(i));
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_FALSE(reports->empty());
    const Hash256 final_root = executor.state().RootHash();
    if (i == 0) {
      for (const EpochReport& r : *reports) {
        ref_state_roots.push_back(r.state_root);
        ref_receipt_roots.push_back(r.receipt_root);
      }
      ref_final = final_root;
      EXPECT_FALSE(ref_final.IsZero());
    } else {
      ASSERT_EQ(reports->size(), ref_state_roots.size()) << "node " << i;
      for (std::size_t e = 0; e < reports->size(); ++e) {
        EXPECT_EQ((*reports)[e].state_root, ref_state_roots[e])
            << "node " << i << " epoch " << e;
        EXPECT_EQ((*reports)[e].receipt_root, ref_receipt_roots[e])
            << "node " << i << " epoch " << e;
      }
      EXPECT_EQ(final_root, ref_final) << "node " << i;
    }
  }
}

TEST(ConvergenceTest, OhieChaosMatrix) {
  constexpr double kDurationMs = 12'000;
  for (const ChaosCase& chaos : ChaosMatrix(kDurationMs)) {
    OhieSimConfig config = BaseOhieConfig(21);
    config.duration_ms = kDurationMs;
    config.net_plan = chaos.plan;
    config.gossip_interval_ms = 500;  // anti-entropy covers lossy plans
    CheckOhieConvergence(config, chaos.name);
  }
}

TEST(ConvergenceTest, OhieEquivocatorThroughPartition) {
  // Fork-choice consensus: the equivocating pair is two VALID blocks; the
  // longest-chain rule plus hash tie-break resolves them identically on
  // every replica, even across a partition heal.
  OhieSimConfig config = BaseOhieConfig(22);
  config.net_plan = fault::NetPlan(211).Partition({0, 1}, 3'000, 9'000);
  config.gossip_interval_ms = 500;
  config.byzantine.behavior = fault::ByzBehavior::kEquivocate;
  config.byzantine.nodes = {4};
  SharedTxSource source(58);
  OhieSimulation sim(config, [&source](NodeId) { return source.Take(6); });
  sim.Run();
  EXPECT_GT(sim.stats().byz_equivocations, 0u);
  EXPECT_GT(sim.stats().forked_blocks, 0u);
  CheckOhieConvergence(config, "partition+equivocate");
}

TEST(ConvergenceTest, OhieWithholderConverges) {
  OhieSimConfig config = BaseOhieConfig(23);
  config.net_plan = fault::NetPlan(212).Drop(0.15);
  config.gossip_interval_ms = 500;
  config.byzantine.behavior = fault::ByzBehavior::kWithhold;
  config.byzantine.nodes = {0};
  config.byzantine.release_ms = 8'000;
  SharedTxSource source(59);
  OhieSimulation sim(config, [&source](NodeId) { return source.Take(6); });
  sim.Run();
  EXPECT_GT(sim.stats().byz_withheld, 0u);
  CheckOhieConvergence(config, "drop+withhold");
}

TEST(ConvergenceTest, OhieInvalidBlocksRejectedWithExactReasons) {
  const std::uint64_t bad_tx_root = InvalidCount("ohie", "bad-tx-root");
  const std::uint64_t duplicate_tx = InvalidCount("ohie", "duplicate-tx");
  const std::uint64_t bad_hash = InvalidCount("ohie", "bad-hash");
  const std::uint64_t bad_parents = InvalidCount("ohie", "bad-parent-count");

  OhieSimConfig config = BaseOhieConfig(24);
  config.net_plan = fault::NetPlan(213).Reorder(0.5, 200);
  config.gossip_interval_ms = 500;
  config.byzantine.behavior = fault::ByzBehavior::kInvalidBlock;
  config.byzantine.nodes = {2};
  SharedTxSource source(60);
  OhieSimulation sim(config, [&source](NodeId) { return source.Take(6); });
  sim.Run();
  ASSERT_GT(sim.stats().byz_invalid, 8u);  // all four flavours rotated

  EXPECT_GT(InvalidCount("ohie", "bad-tx-root"), bad_tx_root);
  EXPECT_GT(InvalidCount("ohie", "duplicate-tx"), duplicate_tx);
  EXPECT_GT(InvalidCount("ohie", "bad-hash"), bad_hash);
  EXPECT_GT(InvalidCount("ohie", "bad-parent-count"), bad_parents);
  CheckOhieConvergence(config, "reorder+invalid");
}

// ---------------------------------------------------------------------------
// Tree-graph
// ---------------------------------------------------------------------------

TreeGraphSimConfig BaseTreeGraphConfig(std::uint64_t seed) {
  TreeGraphSimConfig config;
  config.num_nodes = 5;
  config.mean_block_interval_ms = 120;
  config.confirm_depth = 5;
  config.duration_ms = 15'000;
  config.seed = seed;
  return config;
}

void CheckTreeGraphConvergence(const TreeGraphSimConfig& config,
                               const char* label) {
  SCOPED_TRACE(label);
  SharedTxSource source(3456);
  TreeGraphSimulation sim(config,
                          [&source](NodeId) { return source.Take(6); });
  sim.Run();

  // Confirmed epochs — pivot heights and per-epoch block order — agree.
  const auto reference = sim.node(0).ConfirmedEpochs();
  ASSERT_GT(reference.size(), 5u);
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto epochs = sim.node(i).ConfirmedEpochs();
    ASSERT_EQ(epochs.size(), reference.size()) << "node " << i;
    for (std::size_t e = 0; e < epochs.size(); ++e) {
      ASSERT_EQ(epochs[e].pivot_height, reference[e].pivot_height);
      ASSERT_EQ(epochs[e].blocks.size(), reference[e].blocks.size())
          << "node " << i << " epoch " << e;
      for (std::size_t b = 0; b < epochs[e].blocks.size(); ++b) {
        ASSERT_EQ(epochs[e].blocks[b]->hash, reference[e].blocks[b]->hash)
            << "node " << i << " epoch " << e << " block " << b;
      }
    }
  }

  ForcedOracle oracle;
  std::vector<Hash256> ref_state_roots;
  std::vector<Hash256> ref_receipt_roots;
  Hash256 ref_final{};
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    DeferredExecConfig exec_config;
    exec_config.worker_threads = 2;
    TreeGraphDeferredExecutor executor(exec_config);
    auto reports = executor.CatchUp(sim.node(i));
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_FALSE(reports->empty());
    const Hash256 final_root = executor.state().RootHash();
    if (i == 0) {
      for (const EpochReport& r : *reports) {
        ref_state_roots.push_back(r.state_root);
        ref_receipt_roots.push_back(r.receipt_root);
      }
      ref_final = final_root;
      EXPECT_FALSE(ref_final.IsZero());
    } else {
      ASSERT_EQ(reports->size(), ref_state_roots.size()) << "node " << i;
      for (std::size_t e = 0; e < reports->size(); ++e) {
        EXPECT_EQ((*reports)[e].state_root, ref_state_roots[e])
            << "node " << i << " epoch " << e;
        EXPECT_EQ((*reports)[e].receipt_root, ref_receipt_roots[e])
            << "node " << i << " epoch " << e;
      }
      EXPECT_EQ(final_root, ref_final) << "node " << i;
    }
  }
}

TEST(ConvergenceTest, TreeGraphChaosMatrix) {
  constexpr double kDurationMs = 12'000;
  for (const ChaosCase& chaos : ChaosMatrix(kDurationMs)) {
    TreeGraphSimConfig config = BaseTreeGraphConfig(31);
    config.duration_ms = kDurationMs;
    config.net_plan = chaos.plan;
    if (chaos.needs_gossip) config.gossip_interval_ms = 500;
    CheckTreeGraphConvergence(config, chaos.name);
  }
}

TEST(ConvergenceTest, TreeGraphEquivocatorThroughPartition) {
  TreeGraphSimConfig config = BaseTreeGraphConfig(32);
  config.net_plan = fault::NetPlan(221).Partition({0, 1}, 3'000, 9'000);
  config.byzantine.behavior = fault::ByzBehavior::kEquivocate;
  config.byzantine.nodes = {4};
  SharedTxSource source(61);
  TreeGraphSimulation sim(config,
                          [&source](NodeId) { return source.Take(6); });
  sim.Run();
  EXPECT_GT(sim.stats().byz_equivocations, 0u);
  CheckTreeGraphConvergence(config, "partition+equivocate");
}

TEST(ConvergenceTest, TreeGraphWithholderConverges) {
  TreeGraphSimConfig config = BaseTreeGraphConfig(33);
  config.net_plan = fault::NetPlan(222).Drop(0.15);
  config.gossip_interval_ms = 500;
  config.byzantine.behavior = fault::ByzBehavior::kWithhold;
  config.byzantine.nodes = {1};
  config.byzantine.release_ms = 8'000;
  SharedTxSource source(62);
  TreeGraphSimulation sim(config,
                          [&source](NodeId) { return source.Take(6); });
  sim.Run();
  EXPECT_GT(sim.stats().byz_withheld, 0u);
  CheckTreeGraphConvergence(config, "drop+withhold");
}

TEST(ConvergenceTest, TreeGraphInvalidBlocksRejectedWithExactReasons) {
  const std::uint64_t bad_tx_root = InvalidCount("treegraph", "bad-tx-root");
  const std::uint64_t duplicate_tx =
      InvalidCount("treegraph", "duplicate-tx");
  const std::uint64_t bad_hash = InvalidCount("treegraph", "bad-hash");

  TreeGraphSimConfig config = BaseTreeGraphConfig(34);
  config.net_plan = fault::NetPlan(223).Delay(1.0, 100);
  config.byzantine.behavior = fault::ByzBehavior::kInvalidBlock;
  config.byzantine.nodes = {3};
  SharedTxSource source(63);
  TreeGraphSimulation sim(config,
                          [&source](NodeId) { return source.Take(6); });
  sim.Run();
  ASSERT_GT(sim.stats().byz_invalid, 6u);  // all three flavours rotated

  EXPECT_GT(InvalidCount("treegraph", "bad-tx-root"), bad_tx_root);
  EXPECT_GT(InvalidCount("treegraph", "duplicate-tx"), duplicate_tx);
  EXPECT_GT(InvalidCount("treegraph", "bad-hash"), bad_hash);
  CheckTreeGraphConvergence(config, "delay+invalid");
}

}  // namespace
}  // namespace nezha
