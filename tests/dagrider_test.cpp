// Tests for the DAG-Rider-style BFT DAG: vertex validation, the round
// clock, wave commits (including leader skipping), BFT agreement across the
// simulated network, and the execution bridge.
#include <gtest/gtest.h>

#include "consensus/dagrider_sim.h"
#include "node/dagrider_bridge.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

// A hand-driven 4-node network where every vertex is delivered to every
// view immediately (a synchronous round).
class DagRiderHarness {
 public:
  static constexpr std::uint32_t kNodes = 4;

  DagRiderHarness() {
    for (NodeId id = 0; id < kNodes; ++id) {
      views_.emplace_back(id, kNodes);
    }
  }

  /// Every node emits its next vertex; all vertices broadcast to everyone.
  /// `skip` suppresses one node's emission for the round (a slow node).
  void RunRound(int skip = -1) {
    std::vector<DagVertex> emitted;
    for (NodeId id = 0; id < kNodes; ++id) {
      if (static_cast<int>(id) == skip) continue;
      EXPECT_TRUE(views_[id].CanEmit()) << "node " << id;
      DagVertex vertex = views_[id].PrepareVertex({});
      vertex.Seal();
      emitted.push_back(std::move(vertex));
    }
    for (const DagVertex& vertex : emitted) {
      for (NodeId id = 0; id < kNodes; ++id) {
        EXPECT_TRUE(views_[id].OnVertex(vertex).ok());
      }
    }
  }

  DagRiderView& view(NodeId id) { return views_[id]; }

 private:
  std::vector<DagRiderView> views_;
};

TEST(DagRiderTest, RoundClockAdvancesWithQuorum) {
  DagRiderHarness net;
  EXPECT_EQ(net.view(0).NextEmitRound(), 1u);
  EXPECT_TRUE(net.view(0).CanEmit());
  net.RunRound();
  EXPECT_EQ(net.view(0).NextEmitRound(), 2u);
  EXPECT_TRUE(net.view(0).CanEmit());  // full round 1 present
}

TEST(DagRiderTest, CannotEmitWithoutQuorum) {
  // Node 0 emits round 1 alone; without 2f+1 = 3 round-1 vertices it is
  // stuck at round 2.
  DagRiderView lone(0, 4);
  DagVertex vertex = lone.PrepareVertex({});
  vertex.Seal();
  ASSERT_TRUE(lone.OnVertex(vertex).ok());
  EXPECT_EQ(lone.NextEmitRound(), 2u);
  EXPECT_FALSE(lone.CanEmit());
}

TEST(DagRiderTest, FirstWaveCommitsAfterFourRounds) {
  DagRiderHarness net;
  for (int round = 0; round < 3; ++round) net.RunRound();
  EXPECT_TRUE(net.view(0).CommittedSequence().empty());
  net.RunRound();  // round 4 completes wave 0
  const auto& committed = net.view(0).CommittedSequence();
  ASSERT_FALSE(committed.empty());
  // Wave 0's anchor is the leader's round-1 vertex; its causal history is
  // exactly that single vertex (round-1 vertices have no parents).
  EXPECT_EQ(committed.back()->round, 1u);
  EXPECT_EQ(committed.back()->source,
            DagRiderView::WaveLeader(0, DagRiderHarness::kNodes));
  EXPECT_EQ(net.view(0).NumBatches(), 1u);
}

TEST(DagRiderTest, CommittedSequencesAgreeAcrossViews) {
  DagRiderHarness net;
  for (int round = 0; round < 13; ++round) net.RunRound();
  const auto& reference = net.view(0).CommittedSequence();
  ASSERT_GT(reference.size(), 4u);
  for (NodeId id = 1; id < DagRiderHarness::kNodes; ++id) {
    const auto& other = net.view(id).CommittedSequence();
    ASSERT_EQ(other.size(), reference.size()) << "node " << id;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(other[i]->hash, reference[i]->hash);
    }
  }
}

TEST(DagRiderTest, CausalHistoryDeliversEveryVertexExactlyOnce) {
  DagRiderHarness net;
  for (int round = 0; round < 17; ++round) net.RunRound();
  const auto& committed = net.view(0).CommittedSequence();
  std::set<Hash256> seen;
  for (const DagVertex* vertex : committed) {
    EXPECT_TRUE(seen.insert(vertex->hash).second) << "delivered twice";
  }
  // With synchronous rounds every wave commits, so all vertices up to the
  // last committed wave's first round are delivered: at least 4 nodes x 9
  // rounds' worth for 17 rounds (waves 0 and 1 fully, wave 2's leader...).
  EXPECT_GE(committed.size(), 4u * 9u);
}

TEST(DagRiderTest, SlowLeaderWaveIsSkippedButOrderStaysConsistent) {
  // Suppress the wave-1 leader's first-round vertex (round 5): wave 1
  // cannot commit directly; wave 2's commit must still produce agreement.
  const NodeId wave1_leader =
      DagRiderView::WaveLeader(1, DagRiderHarness::kNodes);
  DagRiderHarness net;
  for (int round = 1; round <= 16; ++round) {
    net.RunRound(round == 5 ? static_cast<int>(wave1_leader) : -1);
  }
  const auto& reference = net.view(0).CommittedSequence();
  ASSERT_FALSE(reference.empty());
  for (NodeId id = 1; id < DagRiderHarness::kNodes; ++id) {
    const auto& other = net.view(id).CommittedSequence();
    ASSERT_EQ(other.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(other[i]->hash, reference[i]->hash);
    }
  }
  // The suppressed leader vertex is absent from the committed sequence.
  for (const DagVertex* vertex : reference) {
    EXPECT_FALSE(vertex->round == 5 && vertex->source == wave1_leader);
  }
}

TEST(DagRiderTest, RejectsMalformedVertices) {
  DagRiderHarness net;
  net.RunRound();
  DagRiderView& view = net.view(0);

  DagVertex thin = view.PrepareVertex({});
  thin.parents.resize(2);  // below the 2f+1 = 3 quorum
  thin.Seal();
  EXPECT_FALSE(view.OnVertex(thin).ok());

  DagVertex tampered = view.PrepareVertex({});
  tampered.Seal();
  tampered.txs.push_back(Transaction{});
  EXPECT_FALSE(view.OnVertex(tampered).ok());

  DagVertex bad_round1 = view.PrepareVertex({});
  bad_round1.round = 1;  // round-1 vertices must have no parents
  bad_round1.Seal();
  EXPECT_FALSE(view.OnVertex(bad_round1).ok());
}

TEST(DagRiderTest, OrphansAttachWhenParentsArrive) {
  DagRiderHarness producer;
  producer.RunRound();
  // Build a round-2 vertex in the full network, then feed it to a fresh
  // view before its parents.
  DagVertex late = producer.view(1).PrepareVertex({});
  late.Seal();

  DagRiderView fresh(2, 4);
  auto r = fresh.OnVertex(late);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  EXPECT_EQ(fresh.NumOrphans(), 1u);
  // Deliver the round-1 parents; the orphan should cascade in.
  std::size_t attached = 0;
  for (NodeId id = 0; id < 4; ++id) {
    DagVertex parent = DagRiderView(id, 4).PrepareVertex({});
    parent.Seal();
    auto result = fresh.OnVertex(parent);
    ASSERT_TRUE(result.ok());
    attached += *result;
  }
  EXPECT_TRUE(fresh.Knows(late.hash));
  EXPECT_EQ(fresh.NumOrphans(), 0u);
  EXPECT_EQ(attached, 5u);  // 4 parents + the orphan
}

// ---------- network simulation ----------

TEST(DagRiderSimTest, AsynchronousNetworkCommitsAndAgrees) {
  DagRiderSimConfig config;
  config.num_nodes = 4;
  config.duration_ms = 30'000;
  config.seed = 3;
  DagRiderSimulation sim(config);
  sim.Run();
  ASSERT_GT(sim.stats().vertices_emitted, 100u);
  ASSERT_GT(sim.stats().committed_vertices, 50u);
  ASSERT_GT(sim.stats().committed_batches, 5u);

  const auto& reference = sim.node(0).CommittedSequence();
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto& other = sim.node(i).CommittedSequence();
    const std::size_t common = std::min(other.size(), reference.size());
    // Views may trail each other slightly at the horizon, but the committed
    // prefix must agree vertex-for-vertex.
    for (std::size_t j = 0; j < common; ++j) {
      ASSERT_EQ(other[j]->hash, reference[j]->hash)
          << "node " << i << " diverges at " << j;
    }
  }
}

TEST(DagRiderSimTest, Deterministic) {
  DagRiderSimConfig config;
  config.duration_ms = 10'000;
  config.seed = 4;
  DagRiderSimulation a(config), b(config);
  a.Run();
  b.Run();
  EXPECT_EQ(a.stats().vertices_emitted, b.stats().vertices_emitted);
  EXPECT_EQ(a.stats().committed_vertices, b.stats().committed_vertices);
}

TEST(DagRiderSimTest, SevenNodesAlsoAgree) {
  DagRiderSimConfig config;
  config.num_nodes = 7;  // f = 2, quorum = 5
  config.duration_ms = 20'000;
  config.seed = 5;
  DagRiderSimulation sim(config);
  sim.Run();
  ASSERT_GT(sim.stats().committed_vertices, 20u);
  const auto& reference = sim.node(0).CommittedSequence();
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    const auto& other = sim.node(i).CommittedSequence();
    const std::size_t common = std::min(other.size(), reference.size());
    for (std::size_t j = 0; j < common; ++j) {
      ASSERT_EQ(other[j]->hash, reference[j]->hash);
    }
  }
}

// ---------- execution bridge ----------

TEST(DagRiderBridgeTest, ReplicasAgreeOnState) {
  WorkloadConfig wl;
  wl.num_accounts = 400;
  wl.skew = 0.8;
  SmallBankWorkload workload(wl, 21);
  DagRiderSimConfig config;
  config.num_nodes = 4;
  config.duration_ms = 20'000;
  config.seed = 6;
  DagRiderSimulation sim(config, [&workload](NodeId) {
    return workload.MakeBatch(5);
  });
  sim.Run();
  ASSERT_GT(sim.stats().committed_batches, 3u);

  // Execute the common committed-batch prefix on every replica.
  std::size_t common_batches = sim.node(0).NumBatches();
  for (std::size_t i = 1; i < sim.num_nodes(); ++i) {
    common_batches = std::min(common_batches, sim.node(i).NumBatches());
  }
  ASSERT_GT(common_batches, 0u);

  Hash256 reference{};
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    DagRiderDeferredExecutor executor(DeferredExecConfig{});
    // Feed only the common prefix by a partial catch-up trick: process all
    // batches, then compare roots after the common prefix using a second
    // executor. Simpler: all views ran to convergence after the drain, so
    // batch counts actually match; assert and compare full roots.
    ASSERT_EQ(sim.node(i).NumBatches(), common_batches) << "node " << i;
    auto reports = executor.CatchUp(sim.node(i));
    ASSERT_TRUE(reports.ok());
    const Hash256 root = executor.state().RootHash();
    if (i == 0) {
      reference = root;
      EXPECT_FALSE(root.IsZero());
    } else {
      EXPECT_EQ(root, reference) << "node " << i;
    }
  }
}

TEST(DagRiderBridgeTest, IncrementalCatchUpIsConsistent) {
  WorkloadConfig wl;
  wl.num_accounts = 200;
  DagRiderSimConfig config;
  config.duration_ms = 20'000;
  config.seed = 7;

  const auto run_sim = [&](double horizon) {
    SmallBankWorkload workload(wl, 9);
    DagRiderSimConfig c = config;
    c.duration_ms = horizon;
    auto sim = std::make_unique<DagRiderSimulation>(
        c, [workload = std::move(workload)](NodeId) mutable {
          return workload.MakeBatch(4);
        });
    sim->Run();
    return sim;
  };

  auto full = run_sim(20'000);
  DagRiderDeferredExecutor one_shot(DeferredExecConfig{});
  ASSERT_TRUE(one_shot.CatchUp(full->node(0)).ok());

  DagRiderDeferredExecutor incremental(DeferredExecConfig{});
  for (double horizon : {8'000.0, 14'000.0, 20'000.0}) {
    auto partial = run_sim(horizon);
    ASSERT_TRUE(incremental.CatchUp(partial->node(0)).ok());
  }
  EXPECT_EQ(incremental.executed_batches(), one_shot.executed_batches());
  EXPECT_EQ(incremental.state().RootHash(), one_shot.state().RootHash());
}

}  // namespace
}  // namespace nezha
