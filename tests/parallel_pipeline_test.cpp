// Differential lockdown of the parallel schedule pipeline
// (docs/PARALLELISM.md): for 200 seeded workloads spanning uniform and
// zipfian (0.6 / 0.9 / 0.99) contention and 1–8 worker threads, the
// parallel pipeline — sharded ACG build, cluster-parallel transaction
// sorting, group-parallel execution — must produce output byte-identical to
// the single-threaded path: same schedule (sequence numbers, aborts,
// groups, reorders), same abort attribution, and the same committed state
// root. The serializability oracle is forced ON for every build, so each of
// the 400 schedules is also independently re-verified.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "cc/nezha/acg.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/parallel_executor.h"
#include "cc/nezha/tx_sorter.h"
#include "common/thread_pool.h"
#include "storage/state_db.h"
#include "vm/logged_state.h"
#include "workload/kv_workload.h"

namespace nezha {
namespace {

// One pool per thread count 1..8, shared across all cases (pool creation is
// not what is under test).
ThreadPool& PoolWithThreads(std::size_t threads) {
  static std::array<std::unique_ptr<ThreadPool>, 9> pools;
  if (!pools[threads]) pools[threads] = std::make_unique<ThreadPool>(threads);
  return *pools[threads];
}

void ExpectSameAttribution(const obs::ScheduleAttribution& serial,
                           const obs::ScheduleAttribution& parallel,
                           const std::string& label) {
  EXPECT_EQ(serial.reorder_attempts, parallel.reorder_attempts) << label;
  EXPECT_EQ(serial.reorder_commits, parallel.reorder_commits) << label;
  ASSERT_EQ(serial.aborts.size(), parallel.aborts.size()) << label;
  for (std::size_t i = 0; i < serial.aborts.size(); ++i) {
    const obs::AbortRecord& a = serial.aborts[i];
    const obs::AbortRecord& b = parallel.aborts[i];
    EXPECT_EQ(a.tx, b.tx) << label << " abort " << i;
    EXPECT_EQ(a.address, b.address) << label << " abort " << i;
    EXPECT_EQ(a.kind, b.kind) << label << " abort " << i;
    EXPECT_EQ(a.seq_at_decision, b.seq_at_decision) << label << " abort " << i;
    EXPECT_EQ(a.reorder_attempted, b.reorder_attempted)
        << label << " abort " << i;
    EXPECT_EQ(a.reorder_failure, b.reorder_failure) << label << " abort " << i;
  }
  ASSERT_EQ(serial.hot_addresses.size(), parallel.hot_addresses.size())
      << label;
  for (std::size_t i = 0; i < serial.hot_addresses.size(); ++i) {
    EXPECT_EQ(serial.hot_addresses[i].address,
              parallel.hot_addresses[i].address)
        << label << " hot " << i;
    EXPECT_EQ(serial.hot_addresses[i].aborts, parallel.hot_addresses[i].aborts)
        << label << " hot " << i;
  }
}

/// Serial reference commit: replay the schedule's groups one transaction at
/// a time, in (sequence, TxIndex) order, against a fresh StateDB.
Hash256 SerialReplayRoot(const Schedule& schedule,
                         std::span<const ReadWriteSet> rwsets) {
  StateDB db;
  for (const auto& group : schedule.groups) {
    for (const TxIndex t : group) {
      const ReadWriteSet& rw = rwsets[t];
      for (std::size_t i = 0; i < rw.writes.size(); ++i) {
        db.Set(rw.writes[i], rw.write_values[i]);
      }
    }
  }
  return db.RootHash();
}

class ParallelPipelineTest : public ::testing::Test {
 protected:
  // Acceptance criterion: every differential build runs with the
  // serializability oracle forced on.
  void SetUp() override { SetScheduleVerification(true); }
  void TearDown() override { SetScheduleVerification(std::nullopt); }
};

TEST_F(ParallelPipelineTest, TwoHundredSeededWorkloadsAreByteIdentical) {
  const double kSkews[] = {0.0, 0.6, 0.9, 0.99};
  constexpr std::uint64_t kSeedsPerSkew = 50;
  std::size_t cases = 0;
  for (const double skew : kSkews) {
    for (std::uint64_t seed = 1; seed <= kSeedsPerSkew; ++seed, ++cases) {
      const std::size_t threads = cases % 8 + 1;
      const std::string label = "skew=" + std::to_string(skew) +
                                " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
      KVWorkloadConfig config;
      config.num_keys = 400;
      config.skew = skew;
      config.reads_per_tx = 2;
      config.writes_per_tx = 2;
      // Cycle the blind-write fraction so both the RMW abort paths and the
      // §IV.D blind-write rescue paths stay under differential coverage.
      config.blind_write_fraction = 0.25 * static_cast<double>(seed % 5);
      KVWorkload workload(config, 7'000 + seed);
      const std::vector<ReadWriteSet> rwsets = workload.MakeBatch(160);

      NezhaScheduler serial_scheduler;
      NezhaOptions parallel_options;
      parallel_options.pool = &PoolWithThreads(threads);
      NezhaScheduler parallel_scheduler(parallel_options);

      auto serial = serial_scheduler.BuildSchedule(rwsets);
      auto parallel = parallel_scheduler.BuildSchedule(rwsets);
      ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().ToString();
      ASSERT_TRUE(parallel.ok())
          << label << ": " << parallel.status().ToString();

      // Schedule: byte-identical.
      EXPECT_EQ(serial->sequence, parallel->sequence) << label;
      EXPECT_EQ(serial->aborted, parallel->aborted) << label;
      EXPECT_EQ(serial->groups, parallel->groups) << label;
      EXPECT_EQ(serial->reordered, parallel->reordered) << label;
      ExpectSameAttribution(serial->attribution, parallel->attribution, label);

      // Committed state root: group-parallel execution against the epoch
      // snapshot must land exactly where serial replay lands.
      const Hash256 expected_root = SerialReplayRoot(*serial, rwsets);
      StateDB parallel_db;
      const StateSnapshot snapshot = parallel_db.MakeSnapshot(0);
      ExecuteScheduleParallel(PoolWithThreads(threads), parallel_db, snapshot,
                              *parallel, rwsets);
      EXPECT_EQ(parallel_db.RootHash(), expected_root) << label;
    }
  }
  EXPECT_EQ(cases, 200u);
}

TEST_F(ParallelPipelineTest, ReExecutionModeMatchesSerialReplayRoot) {
  // kReExecute runs each group concurrently against snapshot + overlay; a
  // replay TxExecFn (reads the recorded reads, writes the recorded writes)
  // must land on the serial-replay root for every thread count.
  KVWorkloadConfig config;
  config.num_keys = 120;
  config.skew = 0.9;
  config.blind_write_fraction = 0.5;
  KVWorkload workload(config, 42);
  const std::vector<ReadWriteSet> rwsets = workload.MakeBatch(200);

  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  const Hash256 expected_root = SerialReplayRoot(*schedule, rwsets);

  for (std::size_t threads = 1; threads <= 8; ++threads) {
    StateDB db;
    const StateSnapshot snapshot = db.MakeSnapshot(0);
    const TxExecFn replay = [&rwsets](TxIndex t, LoggedStateView& view) {
      const ReadWriteSet& rw = rwsets[t];
      for (const Address a : rw.reads) view.Read(a);
      for (std::size_t i = 0; i < rw.writes.size(); ++i) {
        view.Write(rw.writes[i], rw.write_values[i]);
      }
      return Status::Ok();
    };
    const ParallelExecStats stats = ExecuteScheduleParallel(
        PoolWithThreads(threads), db, snapshot, *schedule, rwsets,
        ParallelExecMode::kReExecute, replay);
    EXPECT_EQ(db.RootHash(), expected_root) << "threads=" << threads;
    EXPECT_EQ(stats.reexecuted_txs, schedule->NumCommitted())
        << "threads=" << threads;
    EXPECT_EQ(stats.groups, schedule->groups.size());
  }
}

TEST_F(ParallelPipelineTest, ShardedAcgAndParallelSorterStandAlone) {
  // The pipeline pieces individually: BuildSharded and
  // SortTransactionsParallel must match their serial counterparts on a
  // contended batch large enough to dodge every small-batch fallback.
  KVWorkloadConfig config;
  config.num_keys = 300;
  config.skew = 0.99;
  config.blind_write_fraction = 0.75;
  KVWorkload workload(config, 99);
  const std::vector<ReadWriteSet> rwsets = workload.MakeBatch(512);

  const AddressConflictGraph serial_acg = AddressConflictGraph::Build(rwsets);
  for (std::size_t threads : {2, 5, 8}) {
    ThreadPool& pool = PoolWithThreads(threads);
    const AddressConflictGraph parallel_acg =
        AddressConflictGraph::BuildSharded(rwsets, pool);
    ASSERT_EQ(parallel_acg.NumAddresses(), serial_acg.NumAddresses());
    ASSERT_EQ(parallel_acg.NumEdges(), serial_acg.NumEdges());
    for (std::size_t e = 0; e < serial_acg.NumAddresses(); ++e) {
      EXPECT_EQ(parallel_acg.entries()[e].address,
                serial_acg.entries()[e].address);
      EXPECT_EQ(parallel_acg.entries()[e].readers,
                serial_acg.entries()[e].readers);
      EXPECT_EQ(parallel_acg.entries()[e].writers,
                serial_acg.entries()[e].writers);
    }

    const auto ranks = ComputeSortingRanks(serial_acg.dependencies(),
                                           RankPolicy::kNezha, nullptr);
    const TxSorterResult serial_sort =
        SortTransactions(serial_acg, ranks, rwsets.size());
    const TxSorterResult parallel_sort =
        SortTransactionsParallel(parallel_acg, ranks, rwsets.size(), pool);
    EXPECT_EQ(parallel_sort.sequence, serial_sort.sequence);
    EXPECT_EQ(parallel_sort.aborted, serial_sort.aborted);
    EXPECT_EQ(parallel_sort.reordered, serial_sort.reordered);
    EXPECT_EQ(parallel_sort.reordered_txs, serial_sort.reordered_txs);
    EXPECT_EQ(parallel_sort.reorder_attempts, serial_sort.reorder_attempts);
    ASSERT_EQ(parallel_sort.abort_records.size(),
              serial_sort.abort_records.size());
    for (std::size_t i = 0; i < serial_sort.abort_records.size(); ++i) {
      EXPECT_EQ(parallel_sort.abort_records[i].tx,
                serial_sort.abort_records[i].tx);
      EXPECT_EQ(parallel_sort.abort_records[i].address,
                serial_sort.abort_records[i].address);
      EXPECT_EQ(parallel_sort.abort_records[i].kind,
                serial_sort.abort_records[i].kind);
    }
  }
}

}  // namespace
}  // namespace nezha
