// Unit tests for the KV store, write batches, and the StateDB.
#include <gtest/gtest.h>

#include <thread>

#include "common/thread_pool.h"
#include "storage/kvstore.h"
#include "storage/state_db.h"
#include "storage/write_batch.h"

namespace nezha {
namespace {

// ---------- WriteBatch ----------

TEST(WriteBatchTest, CollectsOps) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Delete("b");
  EXPECT_EQ(batch.Count(), 2u);
  EXPECT_EQ(batch.ops()[0].type, WriteBatch::OpType::kPut);
  EXPECT_EQ(batch.ops()[1].type, WriteBatch::OpType::kDelete);
}

TEST(WriteBatchTest, SerializeRoundTrip) {
  WriteBatch batch;
  batch.Put("key1", "value with \0 byte");
  batch.Put(std::string("\x00\x01", 2), "bin");
  batch.Delete("gone");
  WriteBatch decoded;
  ASSERT_TRUE(WriteBatch::Deserialize(batch.Serialize(), &decoded));
  ASSERT_EQ(decoded.Count(), 3u);
  EXPECT_EQ(decoded.ops()[0].key, "key1");
  EXPECT_EQ(decoded.ops()[1].key, std::string("\x00\x01", 2));
  EXPECT_EQ(decoded.ops()[2].type, WriteBatch::OpType::kDelete);
}

TEST(WriteBatchTest, DeserializeRejectsGarbage) {
  WriteBatch decoded;
  EXPECT_FALSE(WriteBatch::Deserialize("not a batch", &decoded));
}

TEST(WriteBatchTest, DeserializeRejectsTruncation) {
  WriteBatch batch;
  batch.Put("abcdef", "ghijkl");
  std::string bytes = batch.Serialize();
  bytes.resize(bytes.size() - 3);
  WriteBatch decoded;
  EXPECT_FALSE(WriteBatch::Deserialize(bytes, &decoded));
}

// ---------- KVStore ----------

TEST(KVStoreTest, PutGetDelete) {
  KVStore kv;
  ASSERT_TRUE(kv.Put("k", "v").ok());
  auto got = kv.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v");
  ASSERT_TRUE(kv.Delete("k").ok());
  EXPECT_EQ(kv.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(KVStoreTest, OverwriteReplaces) {
  KVStore kv;
  kv.Put("k", "1");
  kv.Put("k", "2");
  EXPECT_EQ(*kv.Get("k"), "2");
  EXPECT_EQ(kv.Size(), 1u);
}

TEST(KVStoreTest, BatchIsAtomicallyVisible) {
  KVStore kv;
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(kv.Write(batch).ok());
  EXPECT_FALSE(kv.Contains("a"));
  EXPECT_EQ(*kv.Get("b"), "2");
}

TEST(KVStoreTest, SnapshotIsStableUnderWrites) {
  KVStore kv;
  kv.Put("x", "old");
  const KVSnapshot snap = kv.GetSnapshot();
  kv.Put("x", "new");
  kv.Put("y", "added");
  EXPECT_EQ(*snap.Get("x"), "old");
  EXPECT_FALSE(snap.Get("y").ok());
  EXPECT_EQ(*kv.Get("x"), "new");
}

TEST(KVStoreTest, IteratorRange) {
  KVStore kv;
  for (char c = 'a'; c <= 'f'; ++c) {
    kv.Put(std::string(1, c), "v");
  }
  auto it = kv.NewIterator("b", "e");
  std::string seen;
  for (; it.Valid(); it.Next()) seen += it.key();
  EXPECT_EQ(seen, "bcd");
}

TEST(KVStoreTest, IteratorFullScanIsOrdered) {
  KVStore kv;
  kv.Put("zebra", "1");
  kv.Put("apple", "2");
  kv.Put("mango", "3");
  auto it = kv.NewIterator();
  std::vector<std::string> keys;
  for (; it.Valid(); it.Next()) keys.push_back(it.key());
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(KVStoreTest, CheckpointRestoreRoundTrip) {
  KVStore kv;
  kv.Put("a", "1");
  kv.Put("b", "2");
  const std::string checkpoint = kv.Checkpoint();

  KVStore other;
  other.Put("junk", "x");
  ASSERT_TRUE(other.Restore(checkpoint).ok());
  EXPECT_EQ(other.Size(), 2u);
  EXPECT_EQ(*other.Get("a"), "1");
  EXPECT_FALSE(other.Contains("junk"));
}

TEST(KVStoreTest, RestoreRejectsCorruption) {
  KVStore kv;
  EXPECT_EQ(kv.Restore("garbage").code(), StatusCode::kCorruption);
}

TEST(KVStoreTest, RestoreCorruptionSweep) {
  // Flip one byte at EVERY offset of a checkpoint: each mutant must be
  // rejected as Corruption and must leave the target store untouched.
  KVStore kv;
  kv.Put("alpha", "1");
  kv.Put("beta", std::string("\x00\xff", 2));
  kv.Delete("absent");
  const std::string checkpoint = kv.Checkpoint();

  for (std::size_t offset = 0; offset < checkpoint.size(); ++offset) {
    for (const char flip : {char(0x01), char(0x80)}) {
      std::string mutant = checkpoint;
      mutant[offset] = static_cast<char>(mutant[offset] ^ flip);
      KVStore target;
      target.Put("sentinel", "intact");
      const Status s = target.Restore(mutant);
      EXPECT_EQ(s.code(), StatusCode::kCorruption)
          << "offset " << offset << ": " << s.ToString();
      EXPECT_EQ(*target.Get("sentinel"), "intact")
          << "store mutated by rejected restore at offset " << offset;
    }
  }
}

TEST(KVStoreTest, RestoreTruncationSweep) {
  // Every proper prefix of a checkpoint must be rejected without touching
  // the store.
  KVStore kv;
  kv.Put("key", "value");
  const std::string checkpoint = kv.Checkpoint();

  for (std::size_t len = 0; len < checkpoint.size(); ++len) {
    KVStore target;
    target.Put("sentinel", "intact");
    const Status s = target.Restore(checkpoint.substr(0, len));
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "length " << len;
    EXPECT_EQ(*target.Get("sentinel"), "intact") << "length " << len;
  }
}

TEST(KVStoreTest, ConcurrentReadersAndWriters) {
  KVStore kv;
  ThreadPool pool(4);
  pool.ParallelFor(0, 1000, [&](std::size_t i) {
    const std::string key = "k" + std::to_string(i % 50);
    kv.Put(key, std::to_string(i));
    auto snap = kv.GetSnapshot();
    (void)snap.Get(key);
    (void)kv.Get(key);
  });
  EXPECT_EQ(kv.Size(), 50u);
}

// ---------- StateDB ----------

TEST(StateDBTest, MissingAddressReadsZero) {
  StateDB db;
  EXPECT_EQ(db.Get(Address(42)), 0);
}

TEST(StateDBTest, SetGet) {
  StateDB db;
  db.Set(Address(1), 100);
  db.Set(Address(2), -50);
  EXPECT_EQ(db.Get(Address(1)), 100);
  EXPECT_EQ(db.Get(Address(2)), -50);
  EXPECT_EQ(db.Size(), 2u);
}

TEST(StateDBTest, ApplyWritesBatch) {
  StateDB db;
  const std::vector<StateWrite> writes = {{Address(1), 5}, {Address(2), 6}};
  db.ApplyWrites(writes);
  EXPECT_EQ(db.Get(Address(1)), 5);
  EXPECT_EQ(db.Get(Address(2)), 6);
}

TEST(StateDBTest, SnapshotIsImmutable) {
  StateDB db;
  db.Set(Address(1), 10);
  const StateSnapshot snap = db.MakeSnapshot(1);
  db.Set(Address(1), 20);
  db.Set(Address(2), 30);
  EXPECT_EQ(snap.Get(Address(1)), 10);
  EXPECT_EQ(snap.Get(Address(2)), 0);
  EXPECT_EQ(snap.epoch(), 1u);
}

TEST(StateDBTest, RootHashChangesWithState) {
  StateDB db;
  const Hash256 empty_root = db.RootHash();
  db.Set(Address(1), 1);
  const Hash256 one_root = db.RootHash();
  EXPECT_NE(empty_root, one_root);
  db.Set(Address(1), 2);
  EXPECT_NE(db.RootHash(), one_root);
}

TEST(StateDBTest, RootHashIsOrderInsensitive) {
  StateDB a, b;
  a.Set(Address(1), 10);
  a.Set(Address(2), 20);
  b.Set(Address(2), 20);
  b.Set(Address(1), 10);
  EXPECT_EQ(a.RootHash(), b.RootHash());
}

TEST(StateDBTest, RootHashIsStableAcrossCalls) {
  StateDB db;
  db.Set(Address(7), 7);
  EXPECT_EQ(db.RootHash(), db.RootHash());
}

TEST(StateDBTest, FlushPersistsToKV) {
  KVStore kv;
  StateDB db(&kv);
  db.Set(Address(1), 42);
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_GE(kv.Size(), 1u);
  // Flushing twice with no new writes adds nothing.
  const std::size_t size_after = kv.Size();
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_EQ(kv.Size(), size_after);
}

TEST(StateDBTest, RootHashSurvivesFlush) {
  // Regression: Flush consumes the dirty markers; the commitment trie must
  // be synced first or a post-flush RootHash would miss the writes.
  StateDB db;
  db.Set(Address(9), 99);
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_FALSE(db.RootHash().IsZero());

  StateDB reference;
  reference.Set(Address(9), 99);
  EXPECT_EQ(db.RootHash(), reference.RootHash());
}

TEST(StateDBTest, ConcurrentDisjointWritesAreSafe) {
  StateDB db;
  ThreadPool pool(4);
  pool.ParallelFor(0, 10000, [&](std::size_t i) {
    db.Set(Address(i), static_cast<StateValue>(i));
  });
  for (std::size_t i = 0; i < 10000; i += 997) {
    EXPECT_EQ(db.Get(Address(i)), static_cast<StateValue>(i));
  }
  EXPECT_EQ(db.Size(), 10000u);
}

TEST(StateDBTest, SnapshotSizeMatches) {
  StateDB db;
  for (std::uint64_t i = 0; i < 100; ++i) db.Set(Address(i), 1);
  EXPECT_EQ(db.MakeSnapshot(0).Size(), 100u);
}

}  // namespace
}  // namespace nezha
