// Pipeline-profiler suite (src/obs/profiler.h): synthetic workloads with
// KNOWN parallel structure — a pure-serial stage, a perfectly parallel
// stage, a one-straggler group — must come back with the efficiency,
// idle-gap and critical-path numbers that structure implies. Timing
// assertions use wide tolerances (busy time is task WALL, so CI
// oversubscription stretches numerator and denominator together); the
// structural facts (which stage dominates, where the idle gap is, what the
// chain contains) are asserted exactly.
//
// The concurrent-stamping tests run in CI's TSan job: RecordTask from every
// worker, StageScope on racing submitter threads, and the inline-fallback
// path all stamp through the same striped buffers.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace nezha {
namespace {

using obs::AnalyzeCriticalPath;
using obs::CriticalPathReport;
using obs::EpochProfile;
using obs::PipelineProfiler;
using obs::ProfileSpan;
using obs::Profiler;
using obs::StageProfile;
using obs::StageScope;

/// True when the binary runs under a sanitizer that owns operator new (the
/// profiler's allocation counter is compiled out there).
constexpr bool SanitizedBuild() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Burns wall-clock on the calling thread (not sleep: the profiler's busy
/// and CPU numbers should both see this work).
void SpinFor(double ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000));
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < deadline) sink = sink + 1;
}

const StageProfile* FindStage(const EpochProfile& profile,
                              const std::string& name) {
  for (const StageProfile& stage : profile.stages) {
    if (stage.stage == name) return &stage;
  }
  return nullptr;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler().SetEnabled(true);
    Profiler().Clear();
  }
  void TearDown() override { Profiler().Clear(); }
};

TEST_F(ProfilerTest, StageInterningRoundTrips) {
  const obs::StageId a = obs::InternStage("intern_alpha");
  const obs::StageId b = obs::InternStage("intern_beta");
  EXPECT_NE(a, obs::kStageNone);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, obs::InternStage("intern_alpha"));
  EXPECT_EQ(obs::StageName(a), "intern_alpha");
  EXPECT_EQ(obs::StageName(obs::kStageNone), "untagged");
}

TEST_F(ProfilerTest, StageScopeNestsAndRestores) {
  EXPECT_EQ(obs::CurrentStage(), obs::kStageNone);
  {
    StageScope outer("scope_outer");
    const obs::StageId outer_id = obs::CurrentStage();
    EXPECT_EQ(obs::StageName(outer_id), "scope_outer");
    {
      StageScope inner("scope_inner");
      EXPECT_EQ(obs::StageName(obs::CurrentStage()), "scope_inner");
    }
    EXPECT_EQ(obs::CurrentStage(), outer_id);
  }
  EXPECT_EQ(obs::CurrentStage(), obs::kStageNone);
}

TEST_F(ProfilerTest, WindowGatesSampling) {
  EXPECT_FALSE(Profiler().Sampling());
  Profiler().BeginEpoch(1, "gate", 2);
  EXPECT_TRUE(Profiler().Sampling());
  const EpochProfile profile = Profiler().FinishEpoch();
  EXPECT_FALSE(Profiler().Sampling());
  EXPECT_GT(profile.span_ms, 0);

  // No window open: FinishEpoch degrades to an empty profile and spans
  // degrade to plain stage scopes.
  { ProfileSpan orphan("orphan_span"); }
  const EpochProfile empty = Profiler().FinishEpoch();
  EXPECT_EQ(empty.span_ms, 0);
  EXPECT_TRUE(empty.spans.empty());
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler().SetEnabled(false);
  Profiler().BeginEpoch(1, "off", 2);
  EXPECT_FALSE(Profiler().Sampling());
  { ProfileSpan span("off_span"); }
  const EpochProfile profile = Profiler().FinishEpoch();
  EXPECT_TRUE(profile.spans.empty());
  EXPECT_EQ(profile.tasks, 0u);
  Profiler().SetEnabled(true);
}

// ---------------------------------------------------------------------------
// Synthetic workload 1: a pure-serial stage. One thread works, the pool's
// four workers never see a task — efficiency collapses toward zero and the
// largest idle gap is (essentially) the whole epoch, attributed to the
// serial stage's span.
// ---------------------------------------------------------------------------
TEST_F(ProfilerTest, PureSerialStageHasNearZeroEfficiency) {
  ThreadPool pool(4);
  Profiler().BeginEpoch(10, "synthetic", pool.size());
  {
    ProfileSpan span("serial_stage");
    SpinFor(20);
  }
  const EpochProfile profile = Profiler().FinishEpoch();

  ASSERT_GT(profile.span_ms, 0);
  EXPECT_EQ(profile.tasks, 0u);
  EXPECT_LT(profile.efficiency_pct, 10.0);
  // No worker ever ran: the idle gap is the whole span, and the stage that
  // held the pipeline while they starved is the serial one.
  EXPECT_GE(profile.largest_idle_gap_ms, profile.span_ms * 0.8);
  EXPECT_EQ(profile.idle_gap_stage, "serial_stage");

  const StageProfile* stage = FindStage(profile, "serial_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_GE(stage->wall_ms, 15.0);
  // The driving thread spun, so the span's CPU tracks its wall.
  EXPECT_GT(stage->cpu_ms, stage->wall_ms * 0.3);
}

// ---------------------------------------------------------------------------
// Synthetic workload 2: a perfectly parallel stage. Four equal chunks on
// four workers — busy ~= workers x span, so efficiency lands high. Busy is
// task wall (not CPU), so a loaded CI machine stretches busy and span
// together and the ratio survives.
// ---------------------------------------------------------------------------
TEST_F(ProfilerTest, PerfectlyParallelStageHasHighEfficiency) {
  ThreadPool pool(4);
  Profiler().BeginEpoch(11, "synthetic", pool.size());
  {
    StageScope stage("parallel_stage");
    pool.ParallelFor(0, 4, [](std::size_t) { SpinFor(10); });
  }
  const EpochProfile profile = Profiler().FinishEpoch();

  ASSERT_EQ(profile.tasks, 4u);
  EXPECT_GT(profile.efficiency_pct, 50.0);
  EXPECT_LT(profile.largest_idle_gap_ms, profile.span_ms);

  const StageProfile* stage = FindStage(profile, "parallel_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->tasks, 4u);
  EXPECT_GT(stage->busy_ms, 30.0);  // 4 x 10 ms of task wall
  EXPECT_GT(stage->efficiency_pct, 50.0);
  EXPECT_GE(stage->wait_p95_us, stage->wait_p50_us);
}

// ---------------------------------------------------------------------------
// Synthetic workload 3: one straggler. Three 2 ms chunks and one 24 ms
// chunk on four workers: the epoch span is the straggler's wall, three
// workers starve for most of it, and efficiency sits near
// (24 + 3x2) / (4 x 24) ~= 31%.
// ---------------------------------------------------------------------------
TEST_F(ProfilerTest, StragglerGroupShowsIdleGap) {
  ThreadPool pool(4);
  Profiler().BeginEpoch(12, "synthetic", pool.size());
  {
    // ProfileSpan (not a bare StageScope): idle-gap attribution names the
    // recorded SPAN overlapping the gap, so the stage must record one.
    ProfileSpan stage("straggler_stage");
    pool.ParallelFor(0, 4,
                     [](std::size_t i) { SpinFor(i == 0 ? 24.0 : 2.0); });
  }
  const EpochProfile profile = Profiler().FinishEpoch();

  ASSERT_EQ(profile.tasks, 4u);
  // Structurally bounded: at best (24+6)/96 ~= 31%; give noise headroom.
  EXPECT_LT(profile.efficiency_pct, 60.0);
  EXPECT_GT(profile.efficiency_pct, 5.0);
  // Some worker idled while the straggler ran for ~22 of the ~24 ms span.
  EXPECT_GT(profile.largest_idle_gap_ms, 10.0);
  EXPECT_EQ(profile.idle_gap_stage, "straggler_stage");
}

// ---------------------------------------------------------------------------
// Critical path: two sequential leaf spans under one envelope. The chain
// must contain exactly the leaves (the envelope is not a link), the longer
// leaf is the #1 bottleneck, and its Amdahl estimate exceeds the other's.
// ---------------------------------------------------------------------------
TEST_F(ProfilerTest, CriticalPathFindsLeavesAndBottleneck) {
  ThreadPool pool(4);
  Profiler().BeginEpoch(13, "synthetic", pool.size());
  {
    ProfileSpan envelope("cp_envelope");
    {
      ProfileSpan first("cp_short");
      SpinFor(4);
    }
    {
      ProfileSpan second("cp_long");
      SpinFor(12);
    }
  }
  const EpochProfile profile = Profiler().FinishEpoch();
  ASSERT_EQ(profile.spans.size(), 3u);

  const CriticalPathReport path = AnalyzeCriticalPath(profile);
  ASSERT_EQ(path.chain.size(), 2u);
  EXPECT_EQ(path.chain[0].stage, "cp_short");
  EXPECT_EQ(path.chain[1].stage, "cp_long");
  EXPECT_GT(path.total_wall_ms, 12.0);
  EXPECT_GT(path.covered_pct, 50.0);

  ASSERT_FALSE(path.bottlenecks.empty());
  EXPECT_EQ(path.bottlenecks[0].stage, "cp_long");
  EXPECT_GT(path.bottlenecks[0].amdahl_speedup, 1.0);
  EXPECT_GT(path.bottlenecks[0].amdahl_speedup,
            path.bottlenecks[1].amdahl_speedup);
}

// ---------------------------------------------------------------------------
// Inline-fallback attribution: a nested ParallelFor from inside a pool task
// runs inline on that worker; its runtime must land on the worker's
// timeline as an inline sample, tagged with the submitting stage.
// ---------------------------------------------------------------------------
TEST_F(ProfilerTest, InlineFallbackAttributesToWorkerTimeline) {
  ThreadPool pool(2);
  Profiler().BeginEpoch(14, "synthetic", pool.size());
  {
    StageScope stage("nested_stage");
    pool.ParallelFor(0, 2, [&](std::size_t) {
      // Nested submission: OnWorkerThread() -> inline execution.
      pool.ParallelFor(0, 2, [](std::size_t) { SpinFor(2); });
    });
  }
  const EpochProfile profile = Profiler().FinishEpoch();

  EXPECT_GE(profile.inline_tasks, 2u);
  const StageProfile* stage = FindStage(profile, "nested_stage");
  ASSERT_NE(stage, nullptr);
  // Outer tasks + their inlined nested loops all carry the stage tag.
  EXPECT_GE(stage->tasks, 4u);
  EXPECT_GE(stage->inline_tasks, 2u);
}

// Submit captures the submitter's stage even when the submitting thread is
// not a pool worker and several submitters race with different tags.
TEST_F(ProfilerTest, ConcurrentSubmittersKeepTheirStageTags) {
  ThreadPool pool(4);
  Profiler().BeginEpoch(15, "synthetic", pool.size());
  constexpr int kPerThread = 64;
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &ran, t] {
      StageScope stage(t % 2 == 0 ? "race_even" : "race_odd");
      for (int i = 0; i < kPerThread; ++i) {
        pool.Submit([&ran] { ran.fetch_add(1); }).get();
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  const EpochProfile profile = Profiler().FinishEpoch();

  EXPECT_EQ(ran.load(), 4 * kPerThread);
  EXPECT_EQ(profile.tasks, 4u * kPerThread);
  const StageProfile* even = FindStage(profile, "race_even");
  const StageProfile* odd = FindStage(profile, "race_odd");
  ASSERT_NE(even, nullptr);
  ASSERT_NE(odd, nullptr);
  EXPECT_EQ(even->tasks, 2u * kPerThread);
  EXPECT_EQ(odd->tasks, 2u * kPerThread);
}

// The TSan meat: spans and tasks stamped from every thread at once while
// an epoch window opens and closes around them.
TEST_F(ProfilerTest, ConcurrentStampingIsRaceFree) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    Profiler().BeginEpoch(20 + round, "stress", pool.size());
    std::vector<std::thread> drivers;
    for (int t = 0; t < 3; ++t) {
      drivers.emplace_back([&pool, t] {
        ProfileSpan span(t == 0 ? "stress_a" : "stress_b");
        pool.ParallelFor(0, 32, [](std::size_t) { SpinFor(0.1); });
      });
    }
    for (auto& thread : drivers) thread.join();
    const EpochProfile profile = Profiler().FinishEpoch();
    EXPECT_GT(profile.tasks + profile.inline_tasks, 0u);
    EXPECT_LE(profile.spans.size(), 3u);
  }
}

TEST_F(ProfilerTest, AllocationCounterCountsOutsideSanitizers) {
  const std::uint64_t before = obs::AllocationCount();
  std::vector<std::unique_ptr<int>> junk;
  for (int i = 0; i < 64; ++i) junk.push_back(std::make_unique<int>(i));
  const std::uint64_t after = obs::AllocationCount();
  if (SanitizedBuild()) {
    EXPECT_EQ(after, 0u);  // counter compiled out; sanitizer owns new
  } else {
    EXPECT_GE(after, before + 64);
  }
}

TEST_F(ProfilerTest, EpochProfileJsonHasSchemaFields) {
  ThreadPool pool(2);
  Profiler().BeginEpoch(30, "json", pool.size());
  {
    StageScope stage("json_stage");
    pool.ParallelFor(0, 2, [](std::size_t) { SpinFor(1); });
  }
  const EpochProfile profile = Profiler().FinishEpoch();
  const std::string json = profile.ToJson();
  for (const char* key :
       {"\"epoch\"", "\"scheme\"", "\"workers\"", "\"span_ms\"",
        "\"efficiency_pct\"", "\"largest_idle_gap_ms\"", "\"peak_rss_kb\"",
        "\"stages\"", "\"critical_path\"", "\"json_stage\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(ProfilerTest, ThreadCpuClockAdvancesWithWork) {
  const double before = obs::ThreadCpuUs();
  SpinFor(5);
  const double after = obs::ThreadCpuUs();
  EXPECT_GT(after, before);
}

// ---------- interleaved epoch windows (cross-epoch pipeline) ----------

// Regression: with epoch N's commit window and epoch N+1's prepare window
// open at once, FinishEpochWindow(N) must aggregate ONLY the samples whose
// recording thread was bound to N — epoch N+1's pool traffic, recorded in
// the same wall interval through the same striped buffers, stays buffered
// for its own window. (Single-window FinishEpoch used to claim everything
// in the buffers, which under the pipeline attributed epoch N+1's prepare
// work to epoch N's profile.)
TEST_F(ProfilerTest, InterleavedWindowsAttributeSamplesToOwningEpoch) {
  ThreadPool pool(2);
  const auto run_tagged = [&pool](const char* stage, int tasks) {
    StageScope scope(stage);
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(tasks));
    for (int i = 0; i < tasks; ++i) {
      futures.push_back(pool.Submit([] { SpinFor(0.2); }));
    }
    for (auto& f : futures) f.get();
  };

  // Epoch 1 opens and does some commit-half work.
  const obs::ProfileWindowId w1 = Profiler().BeginEpochWindow(1, "nezha", 2);
  run_tagged("iw_commit_n", 4);

  // Epoch 2's window opens while epoch 1 is still in flight (this thread
  // now binds to w2, exactly like the pipeline's prepare thread).
  const obs::ProfileWindowId w2 = Profiler().BeginEpochWindow(2, "nezha", 2);
  ASSERT_NE(w1, w2);
  run_tagged("iw_prepare_n1", 6);

  // Epoch 1's durable tail, on a thread re-bound to w1 the way the
  // pipeline's commit thread is.
  {
    obs::ProfileWindowScope rebind(w1);
    EXPECT_EQ(obs::CurrentProfileWindow(), w1);
    run_tagged("iw_commit_tail", 3);
  }
  EXPECT_EQ(obs::CurrentProfileWindow(), w2);

  const EpochProfile p1 = Profiler().FinishEpochWindow(w1);
  EXPECT_EQ(p1.epoch, 1u);
  const StageProfile* commit_n = FindStage(p1, "iw_commit_n");
  const StageProfile* commit_tail = FindStage(p1, "iw_commit_tail");
  ASSERT_NE(commit_n, nullptr);
  ASSERT_NE(commit_tail, nullptr);
  EXPECT_EQ(commit_n->tasks, 4u);
  EXPECT_EQ(commit_tail->tasks, 3u);
  EXPECT_EQ(FindStage(p1, "iw_prepare_n1"), nullptr)
      << "epoch 2's prepare work leaked into epoch 1's profile";
  EXPECT_EQ(p1.tasks, 7u);

  const EpochProfile p2 = Profiler().FinishEpochWindow(w2);
  EXPECT_EQ(p2.epoch, 2u);
  const StageProfile* prepare = FindStage(p2, "iw_prepare_n1");
  ASSERT_NE(prepare, nullptr);
  EXPECT_EQ(prepare->tasks, 6u);
  EXPECT_EQ(FindStage(p2, "iw_commit_n"), nullptr);
  EXPECT_EQ(FindStage(p2, "iw_commit_tail"), nullptr);
  EXPECT_EQ(p2.tasks, 6u);
}

// Unbound (window-0) stamps belong to the EARLIEST open window, and only
// when that window closes: a newer window finishing first — which happens
// when an epoch aborts or the depth window reorders teardown — must leave
// strays buffered for the older epoch rather than swallowing them.
TEST_F(ProfilerTest, StrayStampsWaitForTheEarliestOpenWindow) {
  const obs::ProfileWindowId w1 = Profiler().BeginEpochWindow(7, "nezha", 1);
  const obs::ProfileWindowId w2 = Profiler().BeginEpochWindow(8, "nezha", 1);

  // Attribution is what's under test; the stamps' clock values are inert
  // (only stage presence and task counts are asserted).
  const double now = 1'000'000.0;
  obs::TaskSample stray;
  stray.stage = obs::InternStage("iw_stray");
  stray.window = obs::kProfileWindowNone;
  stray.tid = 1;
  stray.enqueue_us = now;
  stray.start_us = now;
  stray.finish_us = now + 100;
  Profiler().RecordTask(stray);

  obs::TaskSample bound = stray;
  bound.stage = obs::InternStage("iw_bound");
  bound.window = w2;
  Profiler().RecordTask(bound);

  // w2 closes first: it takes its bound sample, not the stray.
  const EpochProfile p2 = Profiler().FinishEpochWindow(w2);
  EXPECT_EQ(p2.epoch, 8u);
  EXPECT_NE(FindStage(p2, "iw_bound"), nullptr);
  EXPECT_EQ(FindStage(p2, "iw_stray"), nullptr)
      << "stray claimed by a window that was not the earliest open";

  // The stray is still buffered and lands with the earliest window.
  const EpochProfile p1 = Profiler().FinishEpochWindow(w1);
  EXPECT_EQ(p1.epoch, 7u);
  const StageProfile* claimed = FindStage(p1, "iw_stray");
  ASSERT_NE(claimed, nullptr);
  EXPECT_EQ(claimed->tasks, 1u);

  // Closing an already-closed window is a harmless no-op.
  EXPECT_EQ(Profiler().FinishEpochWindow(w2).epoch, 0u);
}

}  // namespace
}  // namespace nezha
