// Tests for the contract registry, the KV and token contracts (native +
// bytecode equivalence, revert semantics, address namespacing), and
// mixed-contract traffic through the schedulers.
#include <gtest/gtest.h>

#include "cc/nezha/nezha_scheduler.h"
#include "runtime/concurrent_executor.h"
#include "runtime/serializability.h"
#include "vm/contract.h"
#include "vm/executor.h"
#include "vm/kv_contract.h"
#include "vm/smallbank.h"
#include "vm/token_contract.h"
#include "workload/mixed_workload.h"

namespace nezha {
namespace {

StateSnapshot SnapshotWith(
    std::initializer_list<std::pair<Address, StateValue>> values) {
  StateDB db;
  for (const auto& [a, v] : values) db.Set(a, v);
  return db.MakeSnapshot(0);
}

ReadWriteSet MustRun(const StateSnapshot& snap, const TxPayload& payload,
                     ExecMode mode = ExecMode::kNative) {
  Transaction tx;
  tx.payload = payload;
  auto result = SimulateTransaction(snap, tx, mode);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result.value()) : ReadWriteSet{};
}

// ---------- registry ----------

TEST(ContractRegistryTest, FindsAllThreeContracts) {
  ASSERT_NE(FindContract(kSmallBankContract), nullptr);
  ASSERT_NE(FindContract(kKVContract), nullptr);
  ASSERT_NE(FindContract(kTokenContract), nullptr);
  EXPECT_EQ(FindContract(999), nullptr);
  EXPECT_STREQ(FindContract(kKVContract)->name, "kvstore");
}

TEST(ContractRegistryTest, NamespacesAreDisjoint) {
  // The three contracts' addresses can never collide.
  const Address smallbank = CheckingAddress(123456);
  const Address kv = KVAddress(123456);
  const Address token = TokenBalanceAddress(123456);
  const Address allowance = TokenAllowanceAddress(1, 2);
  EXPECT_NE(smallbank, kv);
  EXPECT_NE(kv, token);
  EXPECT_NE(token, allowance);
  EXPECT_LT(smallbank.value, 1ull << 40);
  EXPECT_GE(kv.value, 1ull << 40);
  EXPECT_LT(kv.value, 2ull << 40);
  EXPECT_GE(token.value, 2ull << 40);
}

// ---------- KV contract ----------

TEST(KVContractTest, SetIsBlindWrite) {
  const StateSnapshot snap = SnapshotWith({});
  const ReadWriteSet rw = MustRun(snap, MakeKVCall(KVOp::kSet, {7, 42}));
  EXPECT_TRUE(rw.reads.empty());  // the defining property: no read
  ASSERT_EQ(rw.writes.size(), 1u);
  EXPECT_EQ(rw.writes[0], KVAddress(7));
  EXPECT_EQ(rw.write_values[0], 42);
}

TEST(KVContractTest, AddIsReadModifyWrite) {
  const StateSnapshot snap = SnapshotWith({{KVAddress(7), 10}});
  const ReadWriteSet rw = MustRun(snap, MakeKVCall(KVOp::kAdd, {7, 5}));
  EXPECT_EQ(rw.reads, (std::vector<Address>{KVAddress(7)}));
  EXPECT_EQ(rw.write_values[0], 15);
}

TEST(KVContractTest, MultiSetWritesTwoAddresses) {
  const StateSnapshot snap = SnapshotWith({});
  const ReadWriteSet rw =
      MustRun(snap, MakeKVCall(KVOp::kMultiSet, {1, 11, 2, 22}));
  EXPECT_TRUE(rw.reads.empty());
  ASSERT_EQ(rw.writes.size(), 2u);
  EXPECT_EQ(rw.write_values[0], 11);
  EXPECT_EQ(rw.write_values[1], 22);
}

TEST(KVContractTest, CopyReadsSourceWritesDestination) {
  const StateSnapshot snap = SnapshotWith({{KVAddress(1), 99}});
  const ReadWriteSet rw = MustRun(snap, MakeKVCall(KVOp::kCopy, {1, 2}));
  EXPECT_EQ(rw.reads, (std::vector<Address>{KVAddress(1)}));
  EXPECT_EQ(rw.writes, (std::vector<Address>{KVAddress(2)}));
  EXPECT_EQ(rw.write_values[0], 99);
}

TEST(KVContractTest, RejectsBadArgCounts) {
  const StateSnapshot snap = SnapshotWith({});
  Transaction tx;
  tx.payload = MakeKVCall(KVOp::kSet, {1});
  EXPECT_FALSE(SimulateTransaction(snap, tx).ok());
  tx.payload = MakeKVCall(KVOp::kMultiSet, {1, 2, 3});
  EXPECT_FALSE(SimulateTransaction(snap, tx).ok());
}

// ---------- token contract ----------

TEST(TokenContractTest, MintIncreasesBalance) {
  const StateSnapshot snap = SnapshotWith({{TokenBalanceAddress(5), 10}});
  const ReadWriteSet rw = MustRun(snap, MakeTokenCall(TokenOp::kMint, {5, 7}));
  EXPECT_TRUE(rw.ok);
  EXPECT_EQ(rw.write_values[0], 17);
}

TEST(TokenContractTest, TransferMovesFunds) {
  const StateSnapshot snap = SnapshotWith(
      {{TokenBalanceAddress(1), 100}, {TokenBalanceAddress(2), 5}});
  const ReadWriteSet rw =
      MustRun(snap, MakeTokenCall(TokenOp::kTransfer, {1, 2, 40}));
  EXPECT_TRUE(rw.ok);
  ASSERT_EQ(rw.writes.size(), 2u);
  EXPECT_EQ(rw.write_values[0], 60);  // sender
  EXPECT_EQ(rw.write_values[1], 45);  // receiver
}

TEST(TokenContractTest, InsufficientTransferReverts) {
  const StateSnapshot snap = SnapshotWith({{TokenBalanceAddress(1), 10}});
  const ReadWriteSet rw =
      MustRun(snap, MakeTokenCall(TokenOp::kTransfer, {1, 2, 40}));
  EXPECT_FALSE(rw.ok);  // reverted: commits nothing downstream
}

TEST(TokenContractTest, ExactBalanceTransferSucceeds) {
  const StateSnapshot snap = SnapshotWith({{TokenBalanceAddress(1), 40}});
  const ReadWriteSet rw =
      MustRun(snap, MakeTokenCall(TokenOp::kTransfer, {1, 2, 40}));
  EXPECT_TRUE(rw.ok);
  EXPECT_EQ(rw.write_values[0], 0);
}

TEST(TokenContractTest, TransferFromChecksAllowanceAndBalance) {
  const StateSnapshot snap = SnapshotWith(
      {{TokenBalanceAddress(1), 100}, {TokenAllowanceAddress(1, 9), 30}});
  // Within allowance: ok.
  ReadWriteSet ok_rw =
      MustRun(snap, MakeTokenCall(TokenOp::kTransferFrom, {9, 1, 2, 25}));
  EXPECT_TRUE(ok_rw.ok);
  // Over allowance: revert.
  ReadWriteSet over_allowance =
      MustRun(snap, MakeTokenCall(TokenOp::kTransferFrom, {9, 1, 2, 31}));
  EXPECT_FALSE(over_allowance.ok);
  // Allowance fine but balance short: revert.
  const StateSnapshot poor = SnapshotWith(
      {{TokenBalanceAddress(1), 10}, {TokenAllowanceAddress(1, 9), 30}});
  ReadWriteSet over_balance =
      MustRun(poor, MakeTokenCall(TokenOp::kTransferFrom, {9, 1, 2, 25}));
  EXPECT_FALSE(over_balance.ok);
}

TEST(TokenContractTest, ApproveIsBlindWrite) {
  const StateSnapshot snap = SnapshotWith({});
  const ReadWriteSet rw =
      MustRun(snap, MakeTokenCall(TokenOp::kApprove, {1, 2, 50}));
  EXPECT_TRUE(rw.reads.empty());
  EXPECT_EQ(rw.writes[0], TokenAllowanceAddress(1, 2));
}

// ---------- native vs bytecode equivalence across contracts ----------

class MixedEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(MixedEquivalenceTest, NativeAndBytecodeAgree) {
  MixedWorkloadConfig config;
  config.smallbank_accounts = 40;
  config.kv_keys = 40;
  config.token_holders = 40;
  config.skew = GetParam();
  MixedWorkload workload(config, 2025);
  StateDB db;
  MixedWorkload::InitState(db, config, 50);  // low balances: some reverts
  const StateSnapshot snap = db.MakeSnapshot(0);

  int reverts = 0;
  for (int i = 0; i < 600; ++i) {
    const Transaction tx = workload.NextTransaction();
    auto native = SimulateTransaction(snap, tx, ExecMode::kNative);
    auto bytecode = SimulateTransaction(snap, tx, ExecMode::kBytecode);
    ASSERT_TRUE(native.ok());
    ASSERT_TRUE(bytecode.ok());
    EXPECT_EQ(native->ok, bytecode->ok) << "tx " << i;
    EXPECT_EQ(native->reads, bytecode->reads) << "tx " << i;
    EXPECT_EQ(native->writes, bytecode->writes) << "tx " << i;
    EXPECT_EQ(native->write_values, bytecode->write_values) << "tx " << i;
    reverts += native->ok ? 0 : 1;
  }
  EXPECT_GT(reverts, 0);  // the revert path really got exercised
}

INSTANTIATE_TEST_SUITE_P(Skews, MixedEquivalenceTest,
                         ::testing::Values(0.0, 0.8, 1.1));

// ---------- mixed traffic through the scheduler ----------

TEST(MixedTrafficTest, NezhaSchedulesMixedContractsSerializably) {
  MixedWorkloadConfig config;
  config.smallbank_accounts = 100;
  config.kv_keys = 100;
  config.token_holders = 100;
  config.skew = 0.9;
  MixedWorkload workload(config, 31);
  StateDB db;
  MixedWorkload::InitState(db, config, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(400);
  const auto exec = ExecuteBatchSerial(snap, txs);

  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(schedule.ok());
  const auto structural = ValidateScheduleInvariants(*schedule, exec.rwsets);
  EXPECT_TRUE(structural.ok) << structural.violation;
  const auto replay = ValidateByReplay(snap, txs, *schedule, exec.rwsets);
  EXPECT_TRUE(replay.ok) << replay.violation;
  // The KV contract's blind writes give §IV.D something to rescue.
  EXPECT_GT(schedule->NumCommitted(), 0u);
}

TEST(MixedTrafficTest, RevertedTokenTransfersAbortAtExecution) {
  // Token holders with zero balance: every transfer reverts, and those txs
  // must come out aborted without reaching the conflict graph.
  MixedWorkloadConfig config;
  config.smallbank_weight = 0;
  config.kv_weight = 0;
  config.token_weight = 1;
  config.token_holders = 50;
  MixedWorkload workload(config, 17);
  StateDB db;  // nobody funded
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(200);
  const auto exec = ExecuteBatchSerial(snap, txs);

  std::size_t reverted = 0;
  for (const auto& rw : exec.rwsets) reverted += rw.ok ? 0 : 1;
  EXPECT_GT(reverted, 30u);

  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(schedule.ok());
  for (TxIndex t = 0; t < exec.rwsets.size(); ++t) {
    if (!exec.rwsets[t].ok) {
      EXPECT_TRUE(schedule->aborted[t]);
    }
  }
}

TEST(MixedTrafficTest, ReorderingFiresOnChainWithKVTraffic) {
  // Pure KV traffic with blind multi-writes under contention: the §IV.D
  // path must rescue at least one transaction somewhere across seeds.
  MixedWorkloadConfig config;
  config.smallbank_weight = 0;
  config.token_weight = 0;
  config.kv_weight = 1;
  config.kv_keys = 30;
  config.skew = 1.0;
  std::size_t total_rescued = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    MixedWorkload workload(config, seed);
    StateDB db;
    const StateSnapshot snap = db.MakeSnapshot(0);
    const auto txs = workload.MakeBatch(150);
    const auto exec = ExecuteBatchSerial(snap, txs);
    NezhaScheduler scheduler;
    auto schedule = scheduler.BuildSchedule(exec.rwsets);
    ASSERT_TRUE(schedule.ok());
    const auto report = ValidateScheduleInvariants(*schedule, exec.rwsets);
    ASSERT_TRUE(report.ok) << report.violation;
    total_rescued += scheduler.metrics().reordered_txs;
  }
  EXPECT_GT(total_rescued, 0u);
}

}  // namespace
}  // namespace nezha
