// Tests for the runtime layer: concurrent executor, grouped committer, and
// the serializability validator itself (including negative cases).
#include <gtest/gtest.h>

#include <algorithm>

#include "cc/nezha/nezha_scheduler.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "runtime/serializability.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

// ---------- concurrent executor ----------

TEST(ConcurrentExecutorTest, MatchesSerialReference) {
  WorkloadConfig config;
  config.num_accounts = 100;
  config.skew = 0.7;
  SmallBankWorkload workload(config, 3);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, 100, 500, 500);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(200);

  ThreadPool pool(4);
  const auto concurrent = ExecuteBatchConcurrent(pool, snap, txs);
  const auto serial = ExecuteBatchSerial(snap, txs);
  ASSERT_EQ(concurrent.rwsets.size(), serial.rwsets.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(concurrent.rwsets[i].writes, serial.rwsets[i].writes);
    EXPECT_EQ(concurrent.rwsets[i].write_values,
              serial.rwsets[i].write_values);
  }
}

TEST(ConcurrentExecutorTest, MalformedTxsAreFlagged) {
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  std::vector<Transaction> txs(2);
  txs[0].payload = MakeSmallBankCall(SmallBankOp::kGetBalance, {1});
  txs[1].payload.contract = 99;  // unknown contract
  ThreadPool pool(2);
  const auto result = ExecuteBatchConcurrent(pool, snap, txs);
  EXPECT_TRUE(result.rwsets[0].ok);
  EXPECT_FALSE(result.rwsets[1].ok);
  EXPECT_EQ(result.malformed, 1u);
}

TEST(ConcurrentExecutorTest, BytecodeModeWorks) {
  WorkloadConfig config;
  config.num_accounts = 20;
  SmallBankWorkload workload(config, 5);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(50);
  ThreadPool pool(2);
  const auto native =
      ExecuteBatchConcurrent(pool, snap, txs, ExecMode::kNative);
  const auto bytecode =
      ExecuteBatchConcurrent(pool, snap, txs, ExecMode::kBytecode);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(native.rwsets[i].write_values, bytecode.rwsets[i].write_values);
  }
}

// ---------- committer ----------

TEST(CommitterTest, AppliesAllCommittedWrites) {
  std::vector<ReadWriteSet> rwsets(3);
  for (std::size_t i = 0; i < 3; ++i) {
    rwsets[i].writes = {Address(i)};
    rwsets[i].write_values = {static_cast<StateValue>(i * 10)};
  }
  Schedule schedule;
  schedule.sequence = {1, 1, 2};
  schedule.aborted = {false, false, false};
  schedule.RebuildGroups();

  ThreadPool pool(2);
  StateDB state;
  const CommitStats stats = CommitSchedule(pool, state, schedule, rwsets);
  EXPECT_EQ(stats.committed_txs, 3u);
  EXPECT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.max_group, 2u);
  EXPECT_EQ(stats.writes_applied, 3u);
  EXPECT_EQ(state.Get(Address(0)), 0);
  EXPECT_EQ(state.Get(Address(1)), 10);
  EXPECT_EQ(state.Get(Address(2)), 20);
}

TEST(CommitterTest, AbortedTxsWriteNothing) {
  std::vector<ReadWriteSet> rwsets(2);
  rwsets[0].writes = {Address(1)};
  rwsets[0].write_values = {111};
  rwsets[1].writes = {Address(2)};
  rwsets[1].write_values = {222};
  Schedule schedule;
  schedule.sequence = {1, kUnassignedSeq};
  schedule.aborted = {false, true};
  schedule.RebuildGroups();

  ThreadPool pool(2);
  StateDB state;
  CommitSchedule(pool, state, schedule, rwsets);
  EXPECT_EQ(state.Get(Address(1)), 111);
  EXPECT_EQ(state.Get(Address(2)), 0);  // untouched
}

TEST(CommitterTest, LaterGroupsOverwriteEarlier) {
  std::vector<ReadWriteSet> rwsets(2);
  rwsets[0].writes = {Address(7)};
  rwsets[0].write_values = {1};
  rwsets[1].writes = {Address(7)};
  rwsets[1].write_values = {2};
  Schedule schedule;
  schedule.sequence = {1, 2};
  schedule.aborted = {false, false};
  schedule.RebuildGroups();

  ThreadPool pool(2);
  StateDB state;
  CommitSchedule(pool, state, schedule, rwsets);
  EXPECT_EQ(state.Get(Address(7)), 2);
}

TEST(CommitterTest, LargeConcurrentGroupIsCorrect) {
  constexpr std::size_t kTxs = 2000;
  std::vector<ReadWriteSet> rwsets(kTxs);
  Schedule schedule;
  schedule.sequence.assign(kTxs, 1);
  schedule.aborted.assign(kTxs, false);
  for (std::size_t i = 0; i < kTxs; ++i) {
    rwsets[i].writes = {Address(i)};
    rwsets[i].write_values = {static_cast<StateValue>(i)};
  }
  schedule.RebuildGroups();

  ThreadPool pool(8);
  StateDB state;
  const CommitStats stats = CommitSchedule(pool, state, schedule, rwsets);
  EXPECT_EQ(stats.max_group, kTxs);
  for (std::size_t i = 0; i < kTxs; i += 311) {
    EXPECT_EQ(state.Get(Address(i)), static_cast<StateValue>(i));
  }
}

// ---------- end-to-end: execute -> schedule -> commit equals serial ----------

TEST(RuntimeEndToEndTest, NezhaCommitEqualsSerialReplayState) {
  WorkloadConfig config;
  config.num_accounts = 300;
  config.skew = 0.9;
  SmallBankWorkload workload(config, 8);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, 300, 1000, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(400);

  ThreadPool pool(4);
  const auto exec = ExecuteBatchConcurrent(pool, snap, txs);
  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(schedule.ok());

  // Commit through the grouped committer.
  CommitSchedule(pool, db, *schedule, exec.rwsets);

  // Serial replay of committed txs into an overlay must agree with the
  // committed StateDB on every address the batch wrote.
  LoggedStateView::Overlay evolving;
  std::vector<TxIndex> order;
  for (TxIndex t = 0; t < txs.size(); ++t) {
    if (!schedule->aborted[t]) order.push_back(t);
  }
  std::sort(order.begin(), order.end(), [&](TxIndex a, TxIndex b) {
    if (schedule->sequence[a] != schedule->sequence[b]) {
      return schedule->sequence[a] < schedule->sequence[b];
    }
    return a < b;
  });
  for (TxIndex t : order) {
    LoggedStateView view(snap, &evolving);
    ASSERT_TRUE(ExecuteSmallBank(txs[t].payload, view).ok());
    ReadWriteSet rw = view.TakeRWSet();
    for (std::size_t i = 0; i < rw.writes.size(); ++i) {
      evolving[rw.writes[i].value] = rw.write_values[i];
    }
  }
  for (const auto& [addr, value] : evolving) {
    EXPECT_EQ(db.Get(Address(addr)), value) << "A" << addr;
  }
}

// ---------- validator negative cases ----------

TEST(ValidatorTest, DetectsReadAfterWrite) {
  std::vector<ReadWriteSet> rwsets(2);
  rwsets[0].writes = {Address(1)};
  rwsets[0].write_values = {5};
  rwsets[1].reads = {Address(1)};
  Schedule bad;
  bad.sequence = {1, 2};  // reader AFTER writer: invalid
  bad.aborted = {false, false};
  bad.RebuildGroups();
  EXPECT_FALSE(ValidateScheduleInvariants(bad, rwsets).ok);
}

TEST(ValidatorTest, DetectsWriteWriteCollision) {
  std::vector<ReadWriteSet> rwsets(2);
  rwsets[0].writes = {Address(1)};
  rwsets[0].write_values = {5};
  rwsets[1].writes = {Address(1)};
  rwsets[1].write_values = {6};
  Schedule bad;
  bad.sequence = {3, 3};  // same group, same written address
  bad.aborted = {false, false};
  bad.RebuildGroups();
  EXPECT_FALSE(ValidateScheduleInvariants(bad, rwsets).ok);
}

TEST(ValidatorTest, AcceptsValidSchedule) {
  std::vector<ReadWriteSet> rwsets(2);
  rwsets[0].reads = {Address(1)};
  rwsets[1].writes = {Address(1)};
  rwsets[1].write_values = {9};
  Schedule good;
  good.sequence = {1, 2};
  good.aborted = {false, false};
  good.RebuildGroups();
  EXPECT_TRUE(ValidateScheduleInvariants(good, rwsets).ok);
}

TEST(ValidatorTest, DetectsSizeMismatch) {
  std::vector<ReadWriteSet> rwsets(2);
  Schedule bad;
  bad.sequence = {1};
  bad.aborted = {false};
  EXPECT_FALSE(ValidateScheduleInvariants(bad, rwsets).ok);
}

TEST(ValidatorTest, ReplayCatchesWrongValue) {
  StateDB db;
  db.Set(CheckingAddress(1), 100);
  const StateSnapshot snap = db.MakeSnapshot(0);
  std::vector<Transaction> txs(1);
  txs[0].payload = MakeSmallBankCall(SmallBankOp::kUpdateBalance, {1, 10});
  std::vector<ReadWriteSet> rwsets(1);
  rwsets[0].reads = {CheckingAddress(1)};
  rwsets[0].writes = {CheckingAddress(1)};
  rwsets[0].write_values = {42};  // WRONG: real execution writes 110
  Schedule schedule;
  schedule.sequence = {1};
  schedule.aborted = {false};
  schedule.RebuildGroups();
  EXPECT_FALSE(ValidateByReplay(snap, txs, schedule, rwsets).ok);
}

}  // namespace
}  // namespace nezha
