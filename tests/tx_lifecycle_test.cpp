// Per-transaction lifecycle tracer (src/obs/tx_lifecycle.h): ingress
// claiming, sentinel semantics, epoch rollups, JSON schema — plus the
// pipeline-level monotonicity property: under every scheme and both sim
// drivers, committed transactions carry non-decreasing stage stamps ending
// at durably-committed, and aborted transactions carry an attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "bench/sustained_load.h"
#include "common/json.h"
#include "ledger/transaction.h"
#include "node/deferred_executor.h"
#include "node/simulation.h"
#include "obs/abort_attribution.h"
#include "obs/metrics.h"
#include "obs/tx_lifecycle.h"
#include "workload/smallbank_workload.h"

namespace nezha::obs {
namespace {

class TxLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    Registry().ResetAll();
    Lifecycle().SetEnabled(true);
    Lifecycle().Clear();
  }
  void TearDown() override { Lifecycle().Clear(); }
};

TEST_F(TxLifecycleTest, UnstampedLifetimeReportsSentinels) {
  TxLifetime life;
  EXPECT_FALSE(life.HasStage(TxStage::kSubmitted));
  EXPECT_LT(life.EndToEndMs(), 0);
  for (std::size_t w = 0; w < kNumStageWaits; ++w) {
    EXPECT_LT(life.WaitMs(w), 0) << StageWaitName(w);
  }
}

TEST_F(TxLifecycleTest, WaitMsRequiresBothEndpoints) {
  TxLifetime life;
  life.stamp_us[static_cast<std::size_t>(TxStage::kConfirmed)] = 1000;
  // schedule wait = confirmed -> scheduled; scheduled missing.
  EXPECT_LT(life.WaitMs(2), 0);
  life.stamp_us[static_cast<std::size_t>(TxStage::kScheduled)] = 3500;
  EXPECT_DOUBLE_EQ(life.WaitMs(2), 2.5);
  // End-to-end spans first stamp -> committed.
  life.stamp_us[static_cast<std::size_t>(TxStage::kCommitted)] = 11'000;
  EXPECT_DOUBLE_EQ(life.EndToEndMs(), 10.0);
}

TEST_F(TxLifecycleTest, AbortedLifetimeEndsAtAbortStamp) {
  TxLifetime life;
  life.stamp_us[static_cast<std::size_t>(TxStage::kSubmitted)] = 500;
  life.aborted = true;
  life.stamp_us[static_cast<std::size_t>(TxStage::kAborted)] = 4500;
  EXPECT_DOUBLE_EQ(life.EndToEndMs(), 4.0);
}

TEST_F(TxLifecycleTest, IngressStampsAreClaimedIntoTheEpoch) {
  TxLifecycleTracer& tracer = Lifecycle();
  const std::uint64_t keys[] = {101, 202, 303};
  for (const std::uint64_t key : keys) {
    tracer.StampIngress(key, TxStage::kSubmitted);
  }
  tracer.StampIngressBatch(keys, TxStage::kIncluded);
  EXPECT_EQ(tracer.IngressCount(), 3u);

  tracer.BeginEpoch(7, "nezha", keys);
  // Claiming moves the entries: the ingress tier is empty afterwards.
  EXPECT_EQ(tracer.IngressCount(), 0u);
  EXPECT_TRUE(tracer.EpochActive());
  EXPECT_EQ(tracer.CurrentEpochSize(), 3u);

  tracer.StampAll(TxStage::kConfirmed);
  tracer.StampAll(TxStage::kScheduled);
  tracer.StampAll(TxStage::kExecuted);
  tracer.StampAll(TxStage::kCommitted);
  const EpochLatencySummary summary = tracer.FinishEpoch();

  EXPECT_EQ(summary.epoch, 7u);
  EXPECT_EQ(summary.scheme, "nezha");
  EXPECT_EQ(summary.tracked, 3u);
  EXPECT_EQ(summary.committed, 3u);
  EXPECT_EQ(summary.aborted, 0u);
  EXPECT_FALSE(tracer.EpochActive());

  for (const TxLifetime& life : tracer.LastEpochLifetimes()) {
    EXPECT_TRUE(life.HasStage(TxStage::kSubmitted));
    EXPECT_TRUE(life.HasStage(TxStage::kIncluded));
    EXPECT_TRUE(life.HasStage(TxStage::kCommitted));
    EXPECT_GE(life.EndToEndMs(), 0);
    double prev = life.StampUs(TxStage::kSubmitted);
    for (std::size_t s = 1; s <= 5; ++s) {
      const double cur = life.stamp_us[s];
      EXPECT_GE(cur, prev) << "stage " << s;
      prev = cur;
    }
  }
}

TEST_F(TxLifecycleTest, DroppedIngressEntriesAreForgotten) {
  TxLifecycleTracer& tracer = Lifecycle();
  tracer.StampIngress(42, TxStage::kSubmitted);
  EXPECT_EQ(tracer.IngressCount(), 1u);
  tracer.DropIngress(42);
  EXPECT_EQ(tracer.IngressCount(), 0u);
}

TEST_F(TxLifecycleTest, MarkAbortedIsTerminalAndCarriesKind) {
  TxLifecycleTracer& tracer = Lifecycle();
  const std::uint64_t keys[] = {1, 2, 3, 4};
  tracer.BeginEpoch(1, "occ", keys);
  tracer.StampAll(TxStage::kConfirmed);
  tracer.MarkAborted(2, static_cast<std::uint8_t>(ConflictKind::kReadWrite));
  // Later batch stamps must skip the aborted transaction.
  tracer.StampAll(TxStage::kExecuted);
  tracer.StampAll(TxStage::kCommitted);
  const EpochLatencySummary summary = tracer.FinishEpoch();
  EXPECT_EQ(summary.committed, 3u);
  EXPECT_EQ(summary.aborted, 1u);

  const std::vector<TxLifetime> lifetimes = tracer.LastEpochLifetimes();
  ASSERT_EQ(lifetimes.size(), 4u);
  const TxLifetime& aborted = lifetimes[2];
  EXPECT_TRUE(aborted.aborted);
  EXPECT_EQ(aborted.abort_kind,
            static_cast<std::uint8_t>(ConflictKind::kReadWrite));
  EXPECT_TRUE(aborted.HasStage(TxStage::kAborted));
  EXPECT_FALSE(aborted.HasStage(TxStage::kExecuted));
  EXPECT_FALSE(aborted.HasStage(TxStage::kCommitted));
}

TEST_F(TxLifecycleTest, BeginEpochDiscardsAnUnfinishedEpoch) {
  TxLifecycleTracer& tracer = Lifecycle();
  const std::uint64_t first[] = {1, 2, 3};
  tracer.BeginEpoch(1, "nezha", first);
  const std::uint64_t second[] = {9, 10};
  tracer.BeginEpoch(2, "nezha", second);
  EXPECT_EQ(tracer.CurrentEpochSize(), 2u);
  const EpochLatencySummary summary = tracer.FinishEpoch();
  EXPECT_EQ(summary.epoch, 2u);
  EXPECT_EQ(summary.tracked, 2u);
}

TEST_F(TxLifecycleTest, FinishWithoutActiveEpochIsEmpty) {
  const EpochLatencySummary summary = Lifecycle().FinishEpoch();
  EXPECT_EQ(summary.tracked, 0u);
  EXPECT_EQ(summary.slowest.size(), 0u);
}

TEST_F(TxLifecycleTest, DisabledTracerIgnoresEverything) {
  TxLifecycleTracer& tracer = Lifecycle();
  tracer.SetEnabled(false);
  tracer.StampIngress(5, TxStage::kSubmitted);
  EXPECT_EQ(tracer.IngressCount(), 0u);
  const std::uint64_t keys[] = {5};
  tracer.BeginEpoch(1, "nezha", keys);
  EXPECT_FALSE(tracer.EpochActive());
  tracer.SetEnabled(true);
}

TEST_F(TxLifecycleTest, FinishEpochKeepsTopKSlowestSorted) {
  TxLifecycleTracer& tracer = Lifecycle();
  std::vector<std::uint64_t> keys(16);
  for (std::size_t t = 0; t < keys.size(); ++t) keys[t] = t + 1;
  tracer.BeginEpoch(3, "cg", keys);
  tracer.StampAll(TxStage::kConfirmed);
  tracer.StampAll(TxStage::kCommitted);
  const EpochLatencySummary summary = tracer.FinishEpoch(/*top_k=*/4);
  ASSERT_EQ(summary.slowest.size(), 4u);
  for (std::size_t i = 1; i < summary.slowest.size(); ++i) {
    EXPECT_GE(summary.slowest[i - 1].e2e_ms, summary.slowest[i].e2e_ms);
  }
  // p50 <= p95 <= p99 <= max over the committed population.
  EXPECT_LE(summary.e2e.p50_ms, summary.e2e.p95_ms);
  EXPECT_LE(summary.e2e.p95_ms, summary.e2e.p99_ms);
  EXPECT_LE(summary.e2e.p99_ms, summary.e2e.max_ms);
  EXPECT_EQ(summary.e2e.count, 16u);
}

TEST_F(TxLifecycleTest, SummaryJsonParsesAndCarriesTheSchema) {
  TxLifecycleTracer& tracer = Lifecycle();
  const std::uint64_t keys[] = {11, 22};
  tracer.BeginEpoch(5, "nezha", keys);
  tracer.StampAll(TxStage::kConfirmed);
  tracer.StampAll(TxStage::kScheduled);
  tracer.StampAll(TxStage::kExecuted);
  tracer.StampAll(TxStage::kCommitted);
  const EpochLatencySummary summary = tracer.FinishEpoch(/*top_k=*/1);

  const auto doc = json::Parse(summary.ToJson());
  ASSERT_TRUE(doc.ok()) << summary.ToJson();
  EXPECT_EQ((*doc)["epoch"].AsDouble(), 5);
  EXPECT_EQ((*doc)["scheme"].AsString(), "nezha");
  EXPECT_EQ((*doc)["tracked"].AsDouble(), 2);
  EXPECT_EQ((*doc)["committed"].AsDouble(), 2);
  EXPECT_TRUE((*doc).Contains("e2e_ms"));
  const auto& stage_waits = (*doc)["stage_wait_ms"];
  for (std::size_t w = 0; w < kNumStageWaits; ++w) {
    EXPECT_TRUE(stage_waits.Contains(StageWaitName(w)));
  }
  EXPECT_EQ((*doc)["slowest"].AsArray().size(), 1u);
}

TEST_F(TxLifecycleTest, FinishEpochPublishesPerSchemeSeries) {
  TxLifecycleTracer& tracer = Lifecycle();
  const std::uint64_t keys[] = {7};
  tracer.BeginEpoch(9, "nezha", keys);
  tracer.StampAll(TxStage::kConfirmed);
  tracer.StampAll(TxStage::kCommitted);
  tracer.FinishEpoch();
  EXPECT_EQ(Registry()
                .GetCounter("nezha_tx_lifecycle_committed_total",
                            {{"scheme", "nezha"}})
                ->Value(),
            1u);
  EXPECT_EQ(Registry()
                .GetCounter("nezha_tx_lifecycle_epochs_total",
                            {{"scheme", "nezha"}})
                ->Value(),
            1u);
  const auto hist = Registry()
                        .GetHistogram("nezha_tx_e2e_ms", {{"scheme", "nezha"}},
                                      DefaultLatencyBoundsMs())
                        ->Snapshot();
  EXPECT_EQ(hist.count, 1u);
}

// LifecycleKey: deterministic, never zero, and distinct across the batch
// (the ingress tier keys on it; a collision merges two transactions).
TEST_F(TxLifecycleTest, LifecycleKeysAreDistinctAcrossABatch) {
  WorkloadConfig config;
  config.num_accounts = 1000;
  config.skew = 0.9;
  SmallBankWorkload workload(config, 7);
  const auto txs = workload.MakeBatch(2000);
  std::vector<std::uint64_t> keys;
  keys.reserve(txs.size());
  for (const Transaction& tx : txs) {
    const std::uint64_t key = LifecycleKey(tx);
    EXPECT_NE(key, 0u);
    EXPECT_EQ(key, LifecycleKey(tx));  // deterministic
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

// ---- Pipeline property: monotone stamps under every scheme ----

void ExpectMonotoneLifetimes(const std::vector<TxLifetime>& lifetimes,
                             const char* scheme) {
  ASSERT_FALSE(lifetimes.empty()) << scheme;
  for (const TxLifetime& life : lifetimes) {
    if (life.aborted) {
      EXPECT_TRUE(life.HasStage(TxStage::kAborted)) << scheme;
      EXPECT_FALSE(life.HasStage(TxStage::kCommitted)) << scheme;
      continue;
    }
    EXPECT_TRUE(life.HasStage(TxStage::kCommitted)) << scheme;
    EXPECT_GE(life.EndToEndMs(), 0) << scheme;
    // Stamps that exist must be non-decreasing in stage order.
    double prev = -1;
    for (std::size_t s = 0; s <= 5; ++s) {
      if (life.stamp_us[s] < 0) continue;
      EXPECT_GE(life.stamp_us[s], prev)
          << scheme << " stage " << TxStageName(static_cast<TxStage>(s));
      prev = life.stamp_us[s];
    }
  }
}

TEST_F(TxLifecycleTest, FullNodePipelineStampsAreMonotone) {
  const SchemeKind kSchemes[] = {SchemeKind::kSerial, SchemeKind::kOcc,
                                 SchemeKind::kCg, SchemeKind::kNezha,
                                 SchemeKind::kNezhaNoReorder};
  for (const SchemeKind scheme : kSchemes) {
    Lifecycle().Clear();
    SimulationConfig config;
    config.node.scheme = scheme;
    config.block_size = 40;
    config.block_concurrency = 2;
    config.epochs = 2;
    config.workload.num_accounts = 200;
    config.workload.skew = 0.8;
    const auto summary = RunSimulation(config);
    ASSERT_TRUE(summary.ok()) << SchemeName(scheme);

    // Every epoch report carries a latency decomposition covering the batch.
    for (const EpochReport& report : summary->reports) {
      EXPECT_EQ(report.latency.tracked, report.txs) << SchemeName(scheme);
      EXPECT_EQ(report.latency.committed, report.committed)
          << SchemeName(scheme);
      EXPECT_EQ(report.latency.aborted, report.aborted) << SchemeName(scheme);
      EXPECT_EQ(report.latency.scheme, SchemeName(scheme));
    }

    // The last epoch's lifetimes are retained: check stamp monotonicity.
    const auto lifetimes = Lifecycle().LastEpochLifetimes();
    ExpectMonotoneLifetimes(lifetimes, SchemeName(scheme));
    // The mempool path stamps submitted + included before confirmation.
    for (const TxLifetime& life : lifetimes) {
      EXPECT_TRUE(life.HasStage(TxStage::kSubmitted)) << SchemeName(scheme);
      EXPECT_TRUE(life.HasStage(TxStage::kIncluded)) << SchemeName(scheme);
      EXPECT_TRUE(life.HasStage(TxStage::kConfirmed)) << SchemeName(scheme);
    }
  }
}

TEST_F(TxLifecycleTest, DeferredPipelineStampsAreMonotone) {
  const SchemeKind kSchemes[] = {SchemeKind::kOcc, SchemeKind::kCg,
                                 SchemeKind::kNezha};
  for (const SchemeKind scheme : kSchemes) {
    Lifecycle().Clear();
    DeferredExecConfig config;
    config.scheme = scheme;
    DeferredExecutionPipeline pipeline(config);
    SmallBankWorkload::InitAccounts(pipeline.state(), 200, 5000, 5000);

    WorkloadConfig wconfig;
    wconfig.num_accounts = 200;
    wconfig.skew = 0.8;
    SmallBankWorkload workload(wconfig, 11);
    const auto report = pipeline.ProcessBatch(workload.MakeBatch(80));
    ASSERT_TRUE(report.ok()) << SchemeName(scheme);
    EXPECT_EQ(report->latency.tracked, report->txs) << SchemeName(scheme);
    EXPECT_EQ(report->latency.committed + report->latency.aborted,
              report->txs)
        << SchemeName(scheme);
    ExpectMonotoneLifetimes(Lifecycle().LastEpochLifetimes(),
                            SchemeName(scheme));
  }
}

// ---------------------------------------------------------------------------
// Sustained-load confirmed-epoch queue bound (bench/sustained_load.h)
// ---------------------------------------------------------------------------

TEST_F(TxLifecycleTest, SustainedLoadQueueBoundShedsOldestEpochs) {
  Counter* dropped =
      Registry().GetCounter("nezha_confirmed_queue_dropped_total");
  const std::uint64_t before = dropped->Value();

  // Arrival outruns processing 4:1 and the queue holds at most 2 epochs,
  // so the driver must shed — always the oldest — instead of queueing
  // without bound.
  bench::SustainedLoadConfig config;
  config.block_size = 20;
  config.block_concurrency = 2;
  config.epochs = 6;
  config.arrival_per_tick = 4 * config.block_size * config.block_concurrency;
  config.max_queue_depth = 2;
  config.num_accounts = 1'000;
  const auto result = bench::RunSustainedLoad(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result->epochs_dropped, 0u);
  EXPECT_EQ(result->epochs_dropped * config.block_size *
                config.block_concurrency,
            result->txs_dropped);
  // Every mined epoch either executed or was shed; none vanished.
  EXPECT_EQ(result->epochs_processed + result->epochs_dropped,
            config.epochs);
  EXPECT_EQ(dropped->Value(), before + result->epochs_dropped);
  // Shed transactions never reached an epoch, so their ingress stamps were
  // forgotten — only the never-mined mempool backlog remains tracked, the
  // same residue the unbounded run leaves (no leak from shedding).
  const std::size_t mined_txs =
      config.epochs * config.block_size * config.block_concurrency;
  EXPECT_EQ(Lifecycle().IngressCount(),
            config.epochs * config.arrival_per_tick - mined_txs);
  EXPECT_GT(result->total_committed, 0u);
}

TEST_F(TxLifecycleTest, SustainedLoadUnboundedQueueDropsNothing) {
  Counter* dropped =
      Registry().GetCounter("nezha_confirmed_queue_dropped_total");
  const std::uint64_t before = dropped->Value();

  bench::SustainedLoadConfig config;
  config.block_size = 20;
  config.block_concurrency = 2;
  config.epochs = 4;
  config.arrival_per_tick = 4 * config.block_size * config.block_concurrency;
  config.max_queue_depth = 0;  // pre-existing unbounded behaviour
  config.num_accounts = 1'000;
  const auto result = bench::RunSustainedLoad(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->epochs_dropped, 0u);
  EXPECT_EQ(result->txs_dropped, 0u);
  EXPECT_EQ(result->epochs_processed, config.epochs);
  EXPECT_EQ(dropped->Value(), before);
}

}  // namespace
}  // namespace nezha::obs
