// Registry and tracer semantics: counters/gauges/histograms under
// concurrent writers, label canonicalisation, snapshot stability, span
// nesting, ring-buffer bounds, and both export formats.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nezha::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    Registry().ResetAll();
    PhaseTracer::Global().SetEnabled(false);
    PhaseTracer::Global().Clear();
  }
};

TEST_F(ObsTest, CounterConcurrentWritersLoseNothing) {
  Counter* counter = Registry().GetCounter("obs_test_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge* gauge = Registry().GetGauge("obs_test_gauge");
  gauge->Set(42);
  EXPECT_EQ(gauge->Value(), 42);
  gauge->Add(-50);
  EXPECT_EQ(gauge->Value(), -8);
}

TEST_F(ObsTest, GaugeConcurrentAddBalances) {
  Gauge* gauge = Registry().GetGauge("obs_test_gauge_conc");
  gauge->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < 5'000; ++i) {
        gauge->Add(3);
        gauge->Add(-3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST_F(ObsTest, SameNameAndLabelsYieldSameMetric) {
  Counter* a = Registry().GetCounter("obs_test_dedup", {{"x", "1"}, {"y", "2"}});
  // Label order must not matter (canonicalised by key).
  Counter* b = Registry().GetCounter("obs_test_dedup", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  Counter* c = Registry().GetCounter("obs_test_dedup", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(a, c);
}

TEST_F(ObsTest, HistogramBucketsAndStats) {
  BucketHistogram* h =
      Registry().GetHistogram("obs_test_hist", {}, {10, 100, 1000});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  h->Observe(5000);
  const HistogramData data = h->Snapshot();
  EXPECT_EQ(data.count, 4u);
  EXPECT_DOUBLE_EQ(data.sum, 5555);
  EXPECT_DOUBLE_EQ(data.min, 5);
  EXPECT_DOUBLE_EQ(data.max, 5000);
  ASSERT_EQ(data.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(data.counts[0], 1u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 1u);
  EXPECT_EQ(data.counts[3], 1u);
  EXPECT_GE(data.Percentile(99), 500);
  EXPECT_LE(data.Percentile(1), 10);
  EXPECT_GE(data.Mean(), 1000);
}

TEST_F(ObsTest, HistogramConcurrentObserversLoseNothing) {
  BucketHistogram* h = Registry().GetHistogram("obs_test_hist_conc");
  constexpr int kThreads = 8;
  constexpr int kSamples = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kSamples; ++i) {
        h->Observe(static_cast<double>(t * kSamples + i) / 100.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramData data = h->Snapshot();
  EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads) * kSamples);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : data.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, data.count);
}

TEST_F(ObsTest, SnapshotIsStableUnderConcurrentWriters) {
  Counter* counter = Registry().GetCounter("obs_test_snap_counter");
  BucketHistogram* hist = Registry().GetHistogram("obs_test_snap_hist");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      counter->Inc();
      hist->Observe(1.0);
    }
  });
  double last_counter = -1;
  for (int round = 0; round < 50; ++round) {
    const RegistrySnapshot snapshot = Registry().Snapshot();
    const double v = snapshot.Value("obs_test_snap_counter");
    EXPECT_GE(v, last_counter);  // counters are monotone across snapshots
    last_counter = v;
    const MetricSample* s = snapshot.Find("obs_test_snap_hist");
    ASSERT_NE(s, nullptr);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t c : s->histogram.counts) bucket_total += c;
    // Internal consistency: the reported count never exceeds the buckets.
    EXPECT_LE(s->histogram.count, bucket_total);
  }
  stop.store(true);
  writer.join();
}

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  Counter* counter = Registry().GetCounter("obs_test_disabled");
  counter->Reset();
  SetMetricsEnabled(false);
  counter->Inc(100);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter->Value(), 0u);
  counter->Inc(1);
  EXPECT_EQ(counter->Value(), 1u);
}

TEST_F(ObsTest, RenderTextExposesAllKinds) {
  Registry().GetCounter("obs_test_render_total", {{"kind", "a"}})->Inc(7);
  Registry().GetGauge("obs_test_render_depth")->Set(3);
  Registry()
      .GetHistogram("obs_test_render_lat_us", {}, {10, 100})
      ->Observe(42);
  const std::string text = Registry().RenderText();
  EXPECT_NE(text.find("# TYPE obs_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_total{kind=\"a\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_render_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_depth 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_sum 42"), std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_count 1"), std::string::npos);
}

TEST_F(ObsTest, ResetAllZeroesEverything) {
  Counter* counter = Registry().GetCounter("obs_test_reset");
  counter->Inc(9);
  Registry().ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetEnabled(true);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  tracer.SetEnabled(false);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->tid, inner->tid);
  // Containment: the inner span starts and ends inside the outer one.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  PhaseTracer& tracer = PhaseTracer::Global();
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("ignored");
  }
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST_F(ObsTest, RingBufferStaysBounded) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetCapacity(16);
  tracer.SetEnabled(true);
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("span " + std::to_string(i));
  }
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.EventCount(), 16u);
  EXPECT_EQ(tracer.TotalRecorded(), 100u);
  // The ring keeps the newest events.
  bool found_last = false;
  for (const TraceEvent& e : tracer.Events()) {
    if (e.name == "span 99") found_last = true;
  }
  EXPECT_TRUE(found_last);
  tracer.SetCapacity(65536);
}

TEST_F(ObsTest, ConcurrentSpansFromManyThreads) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetEnabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        TraceSpan span("worker");
      }
    });
  }
  for (auto& t : threads) t.join();
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.TotalRecorded(), 8u * 500u);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetEnabled(true);
  {
    TraceSpan span("epoch 1");
    TraceSpan nested("validate \"quoted\"");
  }
  tracer.SetEnabled(false);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch 1\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ObsTest, SnapshotHelpersFindAndSum) {
  Registry().GetCounter("obs_test_sum", {{"k", "a"}})->Inc(2);
  Registry().GetCounter("obs_test_sum", {{"k", "b"}})->Inc(3);
  const RegistrySnapshot snapshot = Registry().Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.SumAcrossLabels("obs_test_sum"), 5);
  EXPECT_DOUBLE_EQ(snapshot.Value("obs_test_sum", "{k=\"b\"}"), 3);
  EXPECT_EQ(snapshot.Find("obs_test_missing"), nullptr);
}

}  // namespace
}  // namespace nezha::obs
