// Registry and tracer semantics: counters/gauges/histograms under
// concurrent writers, label canonicalisation, snapshot stability, span
// nesting, ring-buffer bounds, and both export formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "obs/abort_attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nezha::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    Registry().ResetAll();
    PhaseTracer::Global().SetEnabled(false);
    PhaseTracer::Global().Clear();
  }
};

TEST_F(ObsTest, CounterConcurrentWritersLoseNothing) {
  Counter* counter = Registry().GetCounter("obs_test_counter");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge* gauge = Registry().GetGauge("obs_test_gauge");
  gauge->Set(42);
  EXPECT_EQ(gauge->Value(), 42);
  gauge->Add(-50);
  EXPECT_EQ(gauge->Value(), -8);
}

TEST_F(ObsTest, GaugeConcurrentAddBalances) {
  Gauge* gauge = Registry().GetGauge("obs_test_gauge_conc");
  gauge->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < 5'000; ++i) {
        gauge->Add(3);
        gauge->Add(-3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST_F(ObsTest, SameNameAndLabelsYieldSameMetric) {
  Counter* a = Registry().GetCounter("obs_test_dedup", {{"x", "1"}, {"y", "2"}});
  // Label order must not matter (canonicalised by key).
  Counter* b = Registry().GetCounter("obs_test_dedup", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(a, b);
  Counter* c = Registry().GetCounter("obs_test_dedup", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(a, c);
}

TEST_F(ObsTest, HistogramBucketsAndStats) {
  BucketHistogram* h =
      Registry().GetHistogram("obs_test_hist", {}, {10, 100, 1000});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  h->Observe(5000);
  const HistogramData data = h->Snapshot();
  EXPECT_EQ(data.count, 4u);
  EXPECT_DOUBLE_EQ(data.sum, 5555);
  EXPECT_DOUBLE_EQ(data.min, 5);
  EXPECT_DOUBLE_EQ(data.max, 5000);
  ASSERT_EQ(data.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(data.counts[0], 1u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 1u);
  EXPECT_EQ(data.counts[3], 1u);
  EXPECT_GE(data.Percentile(99), 500);
  EXPECT_LE(data.Percentile(1), 10);
  EXPECT_GE(data.Mean(), 1000);
}

TEST_F(ObsTest, HistogramConcurrentObserversLoseNothing) {
  BucketHistogram* h = Registry().GetHistogram("obs_test_hist_conc");
  constexpr int kThreads = 8;
  constexpr int kSamples = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kSamples; ++i) {
        h->Observe(static_cast<double>(t * kSamples + i) / 100.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramData data = h->Snapshot();
  EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads) * kSamples);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : data.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, data.count);
}

TEST_F(ObsTest, SnapshotIsStableUnderConcurrentWriters) {
  Counter* counter = Registry().GetCounter("obs_test_snap_counter");
  BucketHistogram* hist = Registry().GetHistogram("obs_test_snap_hist");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      counter->Inc();
      hist->Observe(1.0);
    }
  });
  double last_counter = -1;
  for (int round = 0; round < 50; ++round) {
    const RegistrySnapshot snapshot = Registry().Snapshot();
    const double v = snapshot.Value("obs_test_snap_counter");
    EXPECT_GE(v, last_counter);  // counters are monotone across snapshots
    last_counter = v;
    const MetricSample* s = snapshot.Find("obs_test_snap_hist");
    ASSERT_NE(s, nullptr);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t c : s->histogram.counts) bucket_total += c;
    // Internal consistency: the reported count never exceeds the buckets.
    EXPECT_LE(s->histogram.count, bucket_total);
  }
  stop.store(true);
  writer.join();
}

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  Counter* counter = Registry().GetCounter("obs_test_disabled");
  counter->Reset();
  SetMetricsEnabled(false);
  counter->Inc(100);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter->Value(), 0u);
  counter->Inc(1);
  EXPECT_EQ(counter->Value(), 1u);
}

TEST_F(ObsTest, RenderTextExposesAllKinds) {
  Registry().GetCounter("obs_test_render_total", {{"kind", "a"}})->Inc(7);
  Registry().GetGauge("obs_test_render_depth")->Set(3);
  Registry()
      .GetHistogram("obs_test_render_lat_us", {}, {10, 100})
      ->Observe(42);
  const std::string text = Registry().RenderText();
  EXPECT_NE(text.find("# TYPE obs_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_total{kind=\"a\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_render_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_depth 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_sum 42"), std::string::npos);
  EXPECT_NE(text.find("obs_test_render_lat_us_count 1"), std::string::npos);
}

TEST_F(ObsTest, ResetAllZeroesEverything) {
  Counter* counter = Registry().GetCounter("obs_test_reset");
  counter->Inc(9);
  Registry().ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetEnabled(true);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  tracer.SetEnabled(false);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->tid, inner->tid);
  // Containment: the inner span starts and ends inside the outer one.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
}

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  PhaseTracer& tracer = PhaseTracer::Global();
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("ignored");
  }
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST_F(ObsTest, RingBufferStaysBounded) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetCapacity(16);
  tracer.SetEnabled(true);
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("span " + std::to_string(i));
  }
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.EventCount(), 16u);
  EXPECT_EQ(tracer.TotalRecorded(), 100u);
  // The ring keeps the newest events.
  bool found_last = false;
  for (const TraceEvent& e : tracer.Events()) {
    if (e.name == "span 99") found_last = true;
  }
  EXPECT_TRUE(found_last);
  tracer.SetCapacity(65536);
}

TEST_F(ObsTest, ConcurrentSpansFromManyThreads) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetEnabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        TraceSpan span("worker");
      }
    });
  }
  for (auto& t : threads) t.join();
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.TotalRecorded(), 8u * 500u);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed) {
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.SetEnabled(true);
  {
    TraceSpan span("epoch 1");
    TraceSpan nested("validate \"quoted\"");
  }
  tracer.SetEnabled(false);
  const std::string json = tracer.ExportChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch 1\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ObsTest, PercentileOnUniformDistributionIsExact) {
  // Per-value buckets over 1..100 with one observation each: percentiles
  // interpolate to the exact order statistics.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(i);
  BucketHistogram* h = Registry().GetHistogram("obs_test_pct_uniform", {},
                                               bounds);
  for (int i = 1; i <= 100; ++i) h->Observe(i);
  const HistogramData data = h->Snapshot();
  EXPECT_DOUBLE_EQ(data.Percentile(50), 50);
  EXPECT_DOUBLE_EQ(data.Percentile(95), 95);
  EXPECT_DOUBLE_EQ(data.Percentile(99), 99);
  EXPECT_DOUBLE_EQ(data.Percentile(100), 100);
}

TEST_F(ObsTest, PercentileOnSkewedTwoPointDistribution) {
  // 90 fast samples at 1, 10 slow at 100 (bounds {1, 100}): the median sits
  // in the fast bucket; the tail percentiles interpolate inside [1, 100].
  BucketHistogram* h =
      Registry().GetHistogram("obs_test_pct_skewed", {}, {1, 100});
  for (int i = 0; i < 90; ++i) h->Observe(1);
  for (int i = 0; i < 10; ++i) h->Observe(100);
  const HistogramData data = h->Snapshot();
  EXPECT_DOUBLE_EQ(data.Percentile(50), 1);
  EXPECT_DOUBLE_EQ(data.Percentile(90), 1);
  // target 95: 5 of the 10 slow samples in → halfway through [1, 100].
  EXPECT_NEAR(data.Percentile(95), 50.5, 1e-9);
  EXPECT_NEAR(data.Percentile(99), 90.1, 1e-9);
}

TEST_F(ObsTest, PercentileEdgeCases) {
  BucketHistogram* h =
      Registry().GetHistogram("obs_test_pct_edge", {}, {10, 100});
  EXPECT_DOUBLE_EQ(h->Snapshot().Percentile(50), 0);  // empty → 0
  h->Observe(7);
  // A single sample reports the sample for every percentile (clamped to
  // observed min/max, not bucket edges).
  EXPECT_DOUBLE_EQ(h->Snapshot().Percentile(1), 7);
  EXPECT_DOUBLE_EQ(h->Snapshot().Percentile(50), 7);
  EXPECT_DOUBLE_EQ(h->Snapshot().Percentile(99), 7);
}

TEST_F(ObsTest, PercentileClampsOutOfRangeRequests) {
  BucketHistogram* h =
      Registry().GetHistogram("obs_test_pct_clamp", {}, {10, 100});
  h->Observe(5);
  h->Observe(50);
  const HistogramData data = h->Snapshot();
  // p <= 0 pins to the observed min, p >= 100 to the observed max — never
  // off the end of the bucket array.
  EXPECT_DOUBLE_EQ(data.Percentile(0), 5);
  EXPECT_DOUBLE_EQ(data.Percentile(-10), 5);
  EXPECT_DOUBLE_EQ(data.Percentile(100), 50);
  EXPECT_DOUBLE_EQ(data.Percentile(250), 50);
}

TEST_F(ObsTest, PercentileOnSingleBucketHistogram) {
  // One bound means two buckets (under + overflow); all mass in one bucket
  // must not divide by a zero width or read past the bounds vector.
  BucketHistogram* h =
      Registry().GetHistogram("obs_test_pct_single", {}, {10});
  for (int i = 0; i < 4; ++i) h->Observe(3);
  const HistogramData data = h->Snapshot();
  const double p50 = data.Percentile(50);
  EXPECT_GE(p50, 3);
  EXPECT_LE(p50, 10);
  // Degenerate histogram data (no counts at all) must also return 0.
  HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0);
}

TEST_F(ObsTest, ObserveManyMatchesRepeatedObserve) {
  const std::vector<double> samples = {5, 15, 15, 250, 3000};
  BucketHistogram* one =
      Registry().GetHistogram("obs_test_many_one", {}, {10, 100, 1000});
  for (const double v : samples) one->Observe(v);
  BucketHistogram* bulk =
      Registry().GetHistogram("obs_test_many_bulk", {}, {10, 100, 1000});
  bulk->ObserveMany(samples);

  const HistogramData a = one->Snapshot();
  const HistogramData b = bulk->Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  ASSERT_EQ(a.counts.size(), b.counts.size());
  for (std::size_t i = 0; i < a.counts.size(); ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << "bucket " << i;
  }
}

TEST_F(ObsTest, ObserveManyEmptySpanIsANoOp) {
  BucketHistogram* h =
      Registry().GetHistogram("obs_test_many_empty", {}, {10});
  h->ObserveMany({});
  EXPECT_EQ(h->Snapshot().count, 0u);
}

TEST_F(ObsTest, RenderTextEmitsQuantileLines) {
  BucketHistogram* h = Registry().GetHistogram(
      "obs_test_quant_us", {{"phase", "cc"}}, {1, 2, 4, 8, 16});
  for (int i = 0; i < 100; ++i) h->Observe(i % 2 == 0 ? 1 : 8);
  const std::string text = Registry().RenderText();
  EXPECT_NE(text.find("obs_test_quant_us{phase=\"cc\",quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_quant_us{phase=\"cc\",quantile=\"0.95\"} "),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_quant_us{phase=\"cc\",quantile=\"0.99\"} "),
            std::string::npos);
  // Unlabelled histograms get a bare {quantile=...} label set.
  Registry().GetHistogram("obs_test_quant_plain", {}, {1, 2})->Observe(1);
  const std::string plain = Registry().RenderText();
  EXPECT_NE(plain.find("obs_test_quant_plain{quantile=\"0.5\"} "),
            std::string::npos);
}

TEST_F(ObsTest, ConcurrentWritersAndExporterSeeNoTornSpans) {
  // N writer threads emit sequence-numbered spans while a reader loops the
  // Chrome export: every export must be balanced, and the final buffer must
  // hold only fully-formed spans whose per-thread sequence numbers and
  // timestamps are monotonic. Run under TSan in CI.
  PhaseTracer& tracer = PhaseTracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = tracer.ExportChromeTrace();
      EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
                std::count(json.begin(), json.end(), '}'));
      EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    }
  });
  constexpr int kThreads = 4;
  constexpr int kSpans = 300;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span("w" + std::to_string(t) + "." + std::to_string(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.TotalRecorded(),
            static_cast<std::uint64_t>(kThreads) * kSpans);
  std::map<std::uint32_t, double> last_ts;
  std::map<std::uint32_t, long> last_seq;
  for (const TraceEvent& e : tracer.Events()) {
    // A torn span would have a foreign name, negative duration or zero tid.
    ASSERT_FALSE(e.name.empty());
    ASSERT_EQ(e.name[0], 'w');
    EXPECT_GT(e.tid, 0u);
    EXPECT_GE(e.dur_us, 0);
    const auto dot = e.name.find('.');
    ASSERT_NE(dot, std::string::npos);
    const long seq = std::strtol(e.name.c_str() + dot + 1, nullptr, 10);
    // Events() is start-time ordered; within one thread the spans were
    // created sequentially, so both clock and sequence must advance.
    auto [ts_it, ts_new] = last_ts.try_emplace(e.tid, e.ts_us);
    if (!ts_new) {
      EXPECT_GE(e.ts_us, ts_it->second);
      ts_it->second = e.ts_us;
    }
    auto [seq_it, seq_new] = last_seq.try_emplace(e.tid, seq);
    if (!seq_new) {
      EXPECT_GT(seq, seq_it->second);
      seq_it->second = seq;
    }
  }
  EXPECT_EQ(last_seq.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(ObsTest, RollupCountsAbortsByKind) {
  // Abort counting goes through BuildRollup — the same path the node, the
  // flight recorder and the benches read — not ad-hoc flag counting.
  ScheduleAttribution attribution;
  const auto add = [&](ConflictKind kind, std::uint64_t address) {
    AbortRecord r;
    r.tx = static_cast<std::uint32_t>(attribution.aborts.size());
    r.address = address;
    r.kind = kind;
    attribution.aborts.push_back(r);
  };
  add(ConflictKind::kReadWrite, 7);
  add(ConflictKind::kReadWrite, 7);
  add(ConflictKind::kWriteWriteUnreorderable, 9);
  add(ConflictKind::kRankCycle, 7);
  add(ConflictKind::kReverted, 0);
  attribution.reorder_attempts = 4;
  attribution.reorder_commits = 1;
  const AttributionRollup rollup = BuildRollup(attribution);
  EXPECT_EQ(rollup.total_aborts, 5u);
  EXPECT_EQ(rollup.Kind(ConflictKind::kReadWrite), 2u);
  EXPECT_EQ(rollup.Kind(ConflictKind::kWriteWriteUnreorderable), 1u);
  EXPECT_EQ(rollup.Kind(ConflictKind::kRankCycle), 1u);
  EXPECT_EQ(rollup.Kind(ConflictKind::kReverted), 1u);
  EXPECT_EQ(rollup.ConflictAborts(), 4u);  // reverts excluded
  EXPECT_EQ(rollup.reorder_attempts, 4u);
  EXPECT_EQ(rollup.reorder_commits, 1u);
}

TEST_F(ObsTest, RollupMergeFoldsHotAddressesByAddress) {
  AttributionRollup a;
  a.total_aborts = 2;
  a.by_kind[0] = 2;
  a.hot_addresses.push_back({/*address=*/7, /*readers=*/3, /*writers=*/1,
                             /*aborts=*/2});
  AttributionRollup b;
  b.total_aborts = 3;
  b.by_kind[2] = 3;
  b.hot_addresses.push_back({7, 5, 1, 1});
  b.hot_addresses.push_back({9, 1, 4, 2});
  a.Merge(b);
  EXPECT_EQ(a.total_aborts, 5u);
  EXPECT_EQ(a.Kind(ConflictKind::kReadWrite), 2u);
  EXPECT_EQ(a.Kind(ConflictKind::kRankCycle), 3u);
  ASSERT_EQ(a.hot_addresses.size(), 2u);
  // Address 7: aborts sum (2+1=3), populations take the max snapshot.
  EXPECT_EQ(a.hot_addresses[0].address, 7u);
  EXPECT_EQ(a.hot_addresses[0].aborts, 3u);
  EXPECT_EQ(a.hot_addresses[0].readers, 5u);
  EXPECT_EQ(a.hot_addresses[1].address, 9u);
}

TEST_F(ObsTest, SelectTopKOrdersByAbortsThenPopulation) {
  std::vector<AddressHeat> heat = {
      {/*address=*/1, /*readers=*/1, /*writers=*/1, /*aborts=*/0},
      {2, 9, 9, 2},
      {3, 1, 1, 5},
      {4, 5, 5, 2},
  };
  SelectTopK(heat, 3);
  ASSERT_EQ(heat.size(), 3u);
  EXPECT_EQ(heat[0].address, 3u);  // most aborts
  EXPECT_EQ(heat[1].address, 2u);  // aborts tie → larger population
  EXPECT_EQ(heat[2].address, 4u);
}

TEST_F(ObsTest, PublishAttributionEmitsCauseAndHotAddressSeries) {
  AttributionRollup rollup;
  rollup.total_aborts = 3;
  rollup.by_kind[static_cast<std::size_t>(ConflictKind::kReadWrite)] = 2;
  rollup.by_kind[static_cast<std::size_t>(ConflictKind::kRankCycle)] = 1;
  rollup.reorder_attempts = 5;
  rollup.reorder_commits = 2;
  rollup.hot_addresses.push_back({/*address=*/42, 3, 2, 3});
  PublishAttribution("obs_test_sched", rollup);
  const RegistrySnapshot snapshot = Registry().Snapshot();
  EXPECT_DOUBLE_EQ(
      snapshot.Value("nezha_abort_cause_total",
                     "{cause=\"read-write\",scheduler=\"obs_test_sched\"}"),
      2);
  EXPECT_DOUBLE_EQ(
      snapshot.Value("nezha_abort_cause_total",
                     "{cause=\"rank-cycle\",scheduler=\"obs_test_sched\"}"),
      1);
  EXPECT_DOUBLE_EQ(
      snapshot.Value("nezha_reorder_attempts_total",
                     "{scheduler=\"obs_test_sched\"}"),
      5);
  EXPECT_DOUBLE_EQ(snapshot.Value("nezha_hot_address_id",
                                  "{rank=\"0\",scheduler=\"obs_test_sched\"}"),
                   42);
  EXPECT_DOUBLE_EQ(
      snapshot.Value("nezha_hot_address_aborts",
                     "{rank=\"0\",scheduler=\"obs_test_sched\"}"),
      3);
}

TEST_F(ObsTest, SnapshotHelpersFindAndSum) {
  Registry().GetCounter("obs_test_sum", {{"k", "a"}})->Inc(2);
  Registry().GetCounter("obs_test_sum", {{"k", "b"}})->Inc(3);
  const RegistrySnapshot snapshot = Registry().Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.SumAcrossLabels("obs_test_sum"), 5);
  EXPECT_DOUBLE_EQ(snapshot.Value("obs_test_sum", "{k=\"b\"}"), 3);
  EXPECT_EQ(snapshot.Find("obs_test_missing"), nullptr);
}

}  // namespace
}  // namespace nezha::obs
