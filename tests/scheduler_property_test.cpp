// Property-based tests over all concurrency-control schemes (DESIGN.md §6):
// for randomized SmallBank workloads across skews, batch sizes, and seeds,
// every scheduler must produce schedules that are
//   (1) structurally serializable (per-address read<write, distinct writes),
//   (2) equivalent to a serial replay of the committed transactions,
//   (3) deterministic,
//   (4) concurrency-safe inside commit groups (no conflicting pair shares a
//       group).
// Plus Nezha-specific properties: it never aborts a conflict-free batch and
// reordering only reduces aborts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <random>

#include "analysis/schedule_verifier.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/acg.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/parallel_executor.h"
#include "cc/occ/occ_scheduler.h"
#include "common/thread_pool.h"
#include "runtime/concurrent_executor.h"
#include "runtime/serializability.h"
#include "vm/contract.h"
#include "vm/logged_state.h"
#include "workload/kv_workload.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

struct Scenario {
  const char* scheme;
  double skew;
  std::size_t num_accounts;
  std::size_t batch_size;
  std::uint64_t seed;
};

std::unique_ptr<Scheduler> Make(const std::string& scheme,
                                ThreadPool* pool = nullptr) {
  if (scheme == "nezha") {
    NezhaOptions options;
    options.pool = pool;
    return std::make_unique<NezhaScheduler>(options);
  }
  if (scheme == "nezha-noreorder") {
    NezhaOptions options;
    options.enable_reordering = false;
    options.pool = pool;
    return std::make_unique<NezhaScheduler>(options);
  }
  if (scheme == "cg") return std::make_unique<CGScheduler>();
  if (scheme == "occ") return std::make_unique<OCCScheduler>();
  return nullptr;
}

/// Forces the serializability oracle on for the enclosing scope, restoring
/// the environment-driven default even when an assertion bails out early.
struct ForcedVerification {
  ForcedVerification() { SetScheduleVerification(true); }
  ~ForcedVerification() { SetScheduleVerification(std::nullopt); }
};

class SchedulerPropertyTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& s = GetParam();
    WorkloadConfig config;
    config.num_accounts = s.num_accounts;
    config.skew = s.skew;
    SmallBankWorkload workload(config, s.seed);
    SmallBankWorkload::InitAccounts(db_, s.num_accounts, 5000, 5000);
    snapshot_ = db_.MakeSnapshot(0);
    txs_ = workload.MakeBatch(s.batch_size);
    exec_ = ExecuteBatchSerial(snapshot_, txs_);
  }

  StateDB db_;
  StateSnapshot snapshot_;
  std::vector<Transaction> txs_;
  BatchExecutionResult exec_;
};

TEST_P(SchedulerPropertyTest, StructurallySerializable) {
  auto scheduler = Make(GetParam().scheme);
  auto schedule = scheduler->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(schedule.ok());
  const auto report = ValidateScheduleInvariants(*schedule, exec_.rwsets);
  EXPECT_TRUE(report.ok) << GetParam().scheme << ": " << report.violation;
}

TEST_P(SchedulerPropertyTest, ReplayEquivalentToSerialExecution) {
  auto scheduler = Make(GetParam().scheme);
  auto schedule = scheduler->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(schedule.ok());
  const auto report =
      ValidateByReplay(snapshot_, txs_, *schedule, exec_.rwsets);
  EXPECT_TRUE(report.ok) << GetParam().scheme << ": " << report.violation;
}

TEST_P(SchedulerPropertyTest, OracleProvesSerializabilityWithWitness) {
  // The independent precedence-graph oracle (src/analysis) must accept the
  // schedule and exhibit an equivalent serial order over exactly the
  // committed transactions.
  auto scheduler = Make(GetParam().scheme);
  auto schedule = scheduler->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(schedule.ok());
  analysis::VerifierOptions options;
  options.reordered = schedule->reordered;
  const auto report =
      analysis::VerifySchedule(*schedule, exec_.rwsets, options);
  ASSERT_TRUE(report.ok)
      << GetParam().scheme << ": " << report.counterexample.ToString();
  EXPECT_EQ(report.witness.size(), schedule->NumCommitted());
  EXPECT_EQ(report.graph_vertices, schedule->NumCommitted());
}

TEST_P(SchedulerPropertyTest, WitnessReplayMatchesScheduledState) {
  // State equivalence against serial execution: re-executing the committed
  // transactions one-by-one, in the oracle's witness order, against an
  // evolving state must land in exactly the state the schedule's recorded
  // write sets produce.
  auto scheduler = Make(GetParam().scheme);
  auto schedule = scheduler->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(schedule.ok());
  const auto report = analysis::VerifySchedule(*schedule, exec_.rwsets);
  ASSERT_TRUE(report.ok) << report.counterexample.ToString();

  LoggedStateView::Overlay scheduled;
  for (const TxIndex t : report.witness) {
    const ReadWriteSet& rw = exec_.rwsets[t];
    for (std::size_t i = 0; i < rw.writes.size(); ++i) {
      scheduled[rw.writes[i].value] = rw.write_values[i];
    }
  }

  LoggedStateView::Overlay evolving;
  for (const TxIndex t : report.witness) {
    LoggedStateView view(snapshot_, &evolving);
    ASSERT_TRUE(ExecuteContract(txs_[t].payload, view).ok());
    ReadWriteSet rw = view.TakeRWSet();
    ASSERT_TRUE(rw.ok) << GetParam().scheme << ": committed T" << t
                       << " reverted when replayed in witness order";
    for (std::size_t i = 0; i < rw.writes.size(); ++i) {
      evolving[rw.writes[i].value] = rw.write_values[i];
    }
  }

  ASSERT_EQ(evolving.size(), scheduled.size()) << GetParam().scheme;
  for (const auto& [addr, value] : scheduled) {
    const auto it = evolving.find(addr);
    ASSERT_NE(it, evolving.end())
        << GetParam().scheme << ": witness replay missed "
        << ToString(Address(addr));
    EXPECT_EQ(it->second, value)
        << GetParam().scheme << ": divergence at " << ToString(Address(addr));
  }
}

TEST_P(SchedulerPropertyTest, Deterministic) {
  auto s1 = Make(GetParam().scheme);
  auto s2 = Make(GetParam().scheme);
  auto a = s1->BuildSchedule(exec_.rwsets);
  auto b = s2->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sequence, b->sequence);
  EXPECT_EQ(a->aborted, b->aborted);
  EXPECT_EQ(a->groups, b->groups);
}

TEST_P(SchedulerPropertyTest, CommitGroupsAreConflictFree) {
  auto scheduler = Make(GetParam().scheme);
  auto schedule = scheduler->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(schedule.ok());
  for (const auto& group : schedule->groups) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        EXPECT_FALSE(Conflicts(exec_.rwsets[group[i]],
                               exec_.rwsets[group[j]]))
            << GetParam().scheme << ": T" << group[i] << " and T" << group[j]
            << " conflict inside one commit group";
      }
    }
  }
}

TEST_P(SchedulerPropertyTest, AbortedPlusCommittedIsEverything) {
  auto scheduler = Make(GetParam().scheme);
  auto schedule = scheduler->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted() + schedule->NumCommitted(),
            exec_.rwsets.size());
}

TEST_P(SchedulerPropertyTest, ParallelExecutorMatchesSerialReplayUnderOracle) {
  // Every scheme's schedule, built with the oracle forced on (so the
  // precedence-graph verifier re-proves serializability inside
  // BuildSchedule), must commit to the same state root under the
  // group-parallel executor as under one-at-a-time serial replay — in both
  // apply-recorded and re-execute modes. Nezha schemes additionally build
  // through the full parallel pipeline (sharded ACG + cluster sorter).
  const ForcedVerification forced;
  const Scenario& s = GetParam();
  ThreadPool pool(4);
  const bool is_nezha = std::string(s.scheme).rfind("nezha", 0) == 0;
  auto scheduler = Make(s.scheme, is_nezha ? &pool : nullptr);
  auto schedule = scheduler->BuildSchedule(exec_.rwsets);
  ASSERT_TRUE(schedule.ok()) << s.scheme << ": " << schedule.status().ToString();

  StateDB serial_db;
  SmallBankWorkload::InitAccounts(serial_db, s.num_accounts, 5000, 5000);
  for (const auto& group : schedule->groups) {
    for (const TxIndex t : group) {
      const ReadWriteSet& rw = exec_.rwsets[t];
      for (std::size_t i = 0; i < rw.writes.size(); ++i) {
        serial_db.Set(rw.writes[i], rw.write_values[i]);
      }
    }
  }
  const Hash256 expected_root = serial_db.RootHash();

  StateDB recorded_db;
  SmallBankWorkload::InitAccounts(recorded_db, s.num_accounts, 5000, 5000);
  const StateSnapshot recorded_snap = recorded_db.MakeSnapshot(1);
  const ParallelExecStats recorded = ExecuteScheduleParallel(
      pool, recorded_db, recorded_snap, *schedule, exec_.rwsets);
  EXPECT_EQ(recorded_db.RootHash(), expected_root) << s.scheme;
  EXPECT_EQ(recorded.committed_txs, schedule->NumCommitted()) << s.scheme;

  StateDB rerun_db;
  SmallBankWorkload::InitAccounts(rerun_db, s.num_accounts, 5000, 5000);
  const StateSnapshot rerun_snap = rerun_db.MakeSnapshot(1);
  const TxExecFn exec_tx = [this](TxIndex t, LoggedStateView& view) {
    return ExecuteContract(txs_[t].payload, view);
  };
  ExecuteScheduleParallel(pool, rerun_db, rerun_snap, *schedule, exec_.rwsets,
                          ParallelExecMode::kReExecute, exec_tx);
  EXPECT_EQ(rerun_db.RootHash(), expected_root) << s.scheme;
}

constexpr Scenario kScenarios[] = {
    // scheme, skew, accounts, batch, seed
    {"nezha", 0.0, 10'000, 200, 1},
    {"nezha", 0.6, 10'000, 400, 2},
    {"nezha", 0.8, 1'000, 400, 3},
    {"nezha", 1.0, 1'000, 300, 4},
    {"nezha", 1.2, 100, 200, 5},     // brutal contention
    {"nezha", 0.9, 20, 150, 6},      // tiny hot world
    {"nezha-noreorder", 0.8, 1'000, 300, 7},
    {"nezha-noreorder", 1.0, 100, 200, 8},
    {"cg", 0.0, 10'000, 150, 9},
    {"cg", 0.6, 1'000, 150, 10},
    {"cg", 0.9, 200, 120, 11},
    {"occ", 0.6, 1'000, 300, 12},
    {"occ", 1.0, 100, 300, 13},
};

INSTANTIATE_TEST_SUITE_P(
    Workloads, SchedulerPropertyTest, ::testing::ValuesIn(kScenarios),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      const Scenario& s = info.param;
      std::string name = s.scheme;
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_skew" + std::to_string(static_cast<int>(s.skew * 10)) +
             "_n" + std::to_string(s.batch_size) + "_seed" +
             std::to_string(s.seed);
    });

// ---------- Nezha-specific properties ----------

TEST(NezhaPropertyTest, ConflictFreeBatchCommitsEverythingInOneGroup) {
  // Transactions over disjoint addresses: nothing aborts and everything can
  // share one sequence number (maximum commit concurrency).
  std::vector<ReadWriteSet> rwsets;
  for (std::uint64_t i = 0; i < 50; ++i) {
    ReadWriteSet rw;
    rw.reads = {Address(1000 + i)};
    rw.writes = {Address(2000 + i)};
    rw.write_values = {1};
    rwsets.push_back(rw);
  }
  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted(), 0u);
  EXPECT_EQ(schedule->groups.size(), 1u);
  EXPECT_EQ(schedule->groups[0].size(), 50u);
}

TEST(NezhaPropertyTest, ReorderingNeverAbortsMore) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    WorkloadConfig config;
    config.num_accounts = 200;
    config.skew = 1.0;
    SmallBankWorkload workload(config, seed);
    StateDB db;
    const StateSnapshot snap = db.MakeSnapshot(0);
    const auto txs = workload.MakeBatch(250);
    const auto exec = ExecuteBatchSerial(snap, txs);

    NezhaScheduler with;
    NezhaOptions no_opts;
    no_opts.enable_reordering = false;
    NezhaScheduler without(no_opts);
    auto a = with.BuildSchedule(exec.rwsets);
    auto b = without.BuildSchedule(exec.rwsets);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LE(a->NumAborted(), b->NumAborted()) << "seed " << seed;
  }
}

TEST(NezhaPropertyTest, GroupCountFarBelowTxCount) {
  // The "certain degree of concurrency": on a mildly contended batch the
  // number of commit groups must be well below the committed tx count
  // (unlike CG/OCC whose commit is fully serial).
  WorkloadConfig config;
  config.num_accounts = 10'000;
  config.skew = 0.4;
  SmallBankWorkload workload(config, 55);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(800);
  const auto exec = ExecuteBatchSerial(snap, txs);

  NezhaScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_LT(schedule->groups.size(), schedule->NumCommitted() / 4);
}

TEST(NezhaPropertyTest, AbortRateRisesWithSkew) {
  auto abort_rate = [](double skew) {
    WorkloadConfig config;
    config.num_accounts = 10'000;
    config.skew = skew;
    SmallBankWorkload workload(config, 77);
    StateDB db;
    const StateSnapshot snap = db.MakeSnapshot(0);
    // Fig. 11 uses block concurrency 1 => 200 transactions per batch.
    const auto txs = workload.MakeBatch(200);
    const auto exec = ExecuteBatchSerial(snap, txs);
    NezhaScheduler scheduler;
    auto schedule = scheduler.BuildSchedule(exec.rwsets);
    return schedule->AbortRate();
  };
  // The paper's Fig. 11 shape: modest aborts at skew 0.6, monotonically and
  // sharply higher toward 1.0 (measured ~5% -> ~35% here; the paper's EVM
  // workload sits lower in absolute terms but rises identically).
  const double at06 = abort_rate(0.6);
  const double at08 = abort_rate(0.8);
  const double at10 = abort_rate(1.0);
  EXPECT_LT(at06, 0.10);
  EXPECT_GT(at08, at06);
  EXPECT_GT(at10, at08);
  EXPECT_GT(at10, 2 * at06);
}

// ---------- blind-write fuzz (exercises the §IV.D TryRaise machinery) ----------

struct KVScenario {
  double skew;
  double blind_fraction;
  std::size_t num_keys;
  std::size_t writes_per_tx;
};

class KVWorkloadFuzzTest : public ::testing::TestWithParam<KVScenario> {};

TEST_P(KVWorkloadFuzzTest, AllSchedulersStaySoundOnBlindWrites) {
  // SmallBank never issues blind writes; this fuzz drives the synthetic KV
  // workload (multi-address blind writes = the Fig. 8 shape) through every
  // scheduler across many seeds and checks structural serializability.
  const KVScenario& s = GetParam();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    KVWorkloadConfig config;
    config.num_keys = s.num_keys;
    config.skew = s.skew;
    config.reads_per_tx = 2;
    config.writes_per_tx = s.writes_per_tx;
    config.blind_write_fraction = s.blind_fraction;
    KVWorkload workload(config, seed);
    const auto rwsets = workload.MakeBatch(120);

    for (const char* scheme :
         {"nezha", "nezha-noreorder", "cg", "occ"}) {
      auto scheduler = Make(scheme);
      auto schedule = scheduler->BuildSchedule(rwsets);
      ASSERT_TRUE(schedule.ok());
      const auto report = ValidateScheduleInvariants(*schedule, rwsets);
      ASSERT_TRUE(report.ok)
          << scheme << " seed=" << seed << ": " << report.violation;
      analysis::VerifierOptions options;
      options.reordered = schedule->reordered;
      const auto oracle = analysis::VerifySchedule(*schedule, rwsets, options);
      ASSERT_TRUE(oracle.ok) << scheme << " seed=" << seed << ": "
                             << oracle.counterexample.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlindWrites, KVWorkloadFuzzTest,
    ::testing::Values(KVScenario{0.0, 1.0, 50, 2},
                      KVScenario{0.9, 1.0, 50, 2},
                      KVScenario{0.9, 0.5, 100, 3},
                      KVScenario{1.2, 1.0, 20, 2},
                      KVScenario{1.0, 0.25, 30, 4},
                      KVScenario{1.4, 0.75, 10, 3}),
    [](const ::testing::TestParamInfo<KVScenario>& info) {
      const KVScenario& s = info.param;
      return "skew" + std::to_string(static_cast<int>(s.skew * 10)) +
             "_blind" + std::to_string(static_cast<int>(s.blind_fraction * 100)) +
             "_keys" + std::to_string(s.num_keys) + "_w" +
             std::to_string(s.writes_per_tx);
    });

TEST(NezhaPropertyTest, IdenticalResultsAcrossThreadCounts) {
  // Determinism across execution parallelism: rwsets computed with 1 or 8
  // threads are identical, hence so is the schedule.
  WorkloadConfig config;
  config.num_accounts = 500;
  config.skew = 0.8;
  SmallBankWorkload workload(config, 91);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 100, 100);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(300);

  ThreadPool pool1(1), pool8(8);
  const auto serial = ExecuteBatchConcurrent(pool1, snap, txs);
  const auto parallel = ExecuteBatchConcurrent(pool8, snap, txs);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(serial.rwsets[i].reads, parallel.rwsets[i].reads);
    EXPECT_EQ(serial.rwsets[i].writes, parallel.rwsets[i].writes);
    EXPECT_EQ(serial.rwsets[i].write_values, parallel.rwsets[i].write_values);
  }
  NezhaScheduler s1, s2;
  auto a = s1.BuildSchedule(serial.rwsets);
  auto b = s2.BuildSchedule(parallel.rwsets);
  EXPECT_EQ(a->sequence, b->sequence);
}

// ---------- sharded ACG construction property ----------

/// Asserts BuildSharded produced the exact vertex set, subscript
/// assignment, readers/writers lists, and edge multiset of the serial
/// builder. Adjacency is compared as sorted neighbor lists: the serial
/// builder deduplicates edges, so sorted adjacency IS the edge multiset.
void ExpectSameAcg(const AddressConflictGraph& serial,
                   const AddressConflictGraph& sharded,
                   const std::string& label) {
  ASSERT_EQ(sharded.NumAddresses(), serial.NumAddresses()) << label;
  ASSERT_EQ(sharded.NumEdges(), serial.NumEdges()) << label;
  for (std::size_t v = 0; v < serial.NumAddresses(); ++v) {
    const AddressRWSet& a = serial.entries()[v];
    const AddressRWSet& b = sharded.entries()[v];
    EXPECT_EQ(b.address, a.address) << label << " vertex " << v;
    EXPECT_EQ(b.readers, a.readers) << label << " vertex " << v;
    EXPECT_EQ(b.writers, a.writers) << label << " vertex " << v;
    EXPECT_EQ(sharded.IndexOf(a.address), static_cast<int>(v)) << label;

    const auto sn = serial.dependencies().OutNeighbors(v);
    const auto pn = sharded.dependencies().OutNeighbors(v);
    std::vector<Digraph::Vertex> sorted_serial(sn.begin(), sn.end());
    std::vector<Digraph::Vertex> sorted_sharded(pn.begin(), pn.end());
    std::sort(sorted_serial.begin(), sorted_serial.end());
    std::sort(sorted_sharded.begin(), sorted_sharded.end());
    EXPECT_EQ(sorted_sharded, sorted_serial) << label << " vertex " << v;
  }
}

TEST(ShardedAcgPropertyTest, MatchesSerialBuilderOnRandomizedRWSets) {
  ThreadPool pool(4);
  std::mt19937_64 rng(20260805);
  for (int iter = 0; iter < 25; ++iter) {
    // Random batches over a deliberately small key space so shards collide,
    // with empty reads/writes, overlapping units, and reverted txs mixed in.
    const std::size_t num_txs = 40 + rng() % 300;
    const std::uint64_t key_space = 4 + rng() % 120;
    std::vector<ReadWriteSet> rwsets(num_txs);
    for (ReadWriteSet& rw : rwsets) {
      const std::size_t reads = rng() % 4;
      const std::size_t writes = rng() % 4;
      for (std::size_t i = 0; i < reads; ++i) {
        rw.reads.push_back(Address(rng() % key_space));
      }
      for (std::size_t i = 0; i < writes; ++i) {
        rw.writes.push_back(Address(rng() % key_space));
        rw.write_values.push_back(static_cast<StateValue>(rng() % 1000));
      }
      std::sort(rw.reads.begin(), rw.reads.end());
      rw.reads.erase(std::unique(rw.reads.begin(), rw.reads.end()),
                     rw.reads.end());
      std::sort(rw.writes.begin(), rw.writes.end());
      rw.writes.erase(std::unique(rw.writes.begin(), rw.writes.end()),
                      rw.writes.end());
      rw.write_values.resize(rw.writes.size());
      rw.ok = rng() % 10 != 0;  // ~10% reverted: must contribute no units
    }
    const AddressConflictGraph serial = AddressConflictGraph::Build(rwsets);
    for (const std::size_t shards : {0, 2, 3, 7, 16}) {
      ExpectSameAcg(serial,
                    AddressConflictGraph::BuildSharded(rwsets, pool, shards),
                    "iter=" + std::to_string(iter) +
                        " shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardedAcgPropertyTest, DegenerateShapes) {
  ThreadPool pool(3);
  // All-read batch: vertices with readers only, zero edges.
  std::vector<ReadWriteSet> all_read(64);
  for (std::size_t t = 0; t < all_read.size(); ++t) {
    all_read[t].reads = {Address(t % 7), Address(100 + t % 3)};
    std::sort(all_read[t].reads.begin(), all_read[t].reads.end());
  }
  ExpectSameAcg(AddressConflictGraph::Build(all_read),
                AddressConflictGraph::BuildSharded(all_read, pool),
                "all-read");

  // All-write batch: vertices with writers only; no read units means no
  // Definition 3 edges either.
  std::vector<ReadWriteSet> all_write(64);
  for (std::size_t t = 0; t < all_write.size(); ++t) {
    all_write[t].writes = {Address(t % 5)};
    all_write[t].write_values = {static_cast<StateValue>(t)};
  }
  ExpectSameAcg(AddressConflictGraph::Build(all_write),
                AddressConflictGraph::BuildSharded(all_write, pool),
                "all-write");

  // Empty epoch and all-empty rwsets: zero vertices, zero edges.
  const std::vector<ReadWriteSet> empty_epoch;
  ExpectSameAcg(AddressConflictGraph::Build(empty_epoch),
                AddressConflictGraph::BuildSharded(empty_epoch, pool),
                "empty-epoch");
  const std::vector<ReadWriteSet> empty_units(50);
  ExpectSameAcg(AddressConflictGraph::Build(empty_units),
                AddressConflictGraph::BuildSharded(empty_units, pool),
                "empty-units");
}

}  // namespace
}  // namespace nezha
