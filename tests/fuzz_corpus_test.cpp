// Corpus-regression driver for the fuzz harnesses (tests/fuzz/). The
// libFuzzer targets themselves need clang; this GTest runs on any compiler
// and keeps the harness contracts enforced in tier-1 ctest:
//
//   * every checked-in corpus input replays through its harness (a past
//     crasher that regresses fails the build, libFuzzer or not);
//   * a deterministic mutation sweep (seeded Rng: byte flips, truncations,
//     extensions, splices of valid frames) probes each parser's rejection
//     paths the same way every run;
//   * freshly built valid frames round-trip through each harness, so the
//     "accepted input must round-trip" aborts inside the harnesses are
//     exercised on the accepting path too.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "node/commit_journal.h"
#include "storage/kvstore.h"

namespace nezha {

// Harness entry points (tests/fuzz/fuzz_*.cpp, linked into this binary
// without NEZHA_FUZZER_BUILD). Each aborts on a contract violation.
int FuzzCommitJournalOneInput(const std::uint8_t* data, std::size_t size);
int FuzzKvCheckpointOneInput(const std::uint8_t* data, std::size_t size);
int FuzzJsonOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

using HarnessFn = int (*)(const std::uint8_t*, std::size_t);

void RunHarness(HarnessFn harness, const std::string& input) {
  harness(reinterpret_cast<const std::uint8_t*>(input.data()), input.size());
}

std::vector<std::string> LoadCorpus(const std::string& name) {
  const fs::path dir = fs::path(NEZHA_FUZZ_CORPUS_DIR) / name;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<std::string> inputs;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    inputs.push_back(std::move(bytes));
  }
  return inputs;
}

/// Replays the corpus, then sweeps deterministic mutations of every input:
/// single byte flips, truncations, head/tail extensions, and two-input
/// splices. ~200 mutants per input, same ones every run (fixed seed).
void ReplayAndMutate(HarnessFn harness, const std::vector<std::string>& corpus,
                     std::uint64_t seed) {
  for (const std::string& input : corpus) RunHarness(harness, input);
  Rng rng(seed);
  for (const std::string& input : corpus) {
    for (int round = 0; round < 200; ++round) {
      std::string mutant = input;
      switch (rng.Below(5)) {
        case 0:  // flip one byte
          if (!mutant.empty()) {
            mutant[rng.Below(mutant.size())] ^=
                static_cast<char>(1 + rng.Below(255));
          }
          break;
        case 1:  // truncate
          mutant.resize(mutant.empty() ? 0 : rng.Below(mutant.size()));
          break;
        case 2:  // append garbage
          mutant.push_back(static_cast<char>(rng.Below(256)));
          break;
        case 3:  // drop the head
          if (!mutant.empty()) mutant.erase(0, 1 + rng.Below(mutant.size()));
          break;
        case 4: {  // splice with another corpus input
          const std::string& other = corpus[rng.Below(corpus.size())];
          const std::size_t cut =
              mutant.empty() ? 0 : rng.Below(mutant.size());
          mutant = mutant.substr(0, cut) + other;
          break;
        }
      }
      RunHarness(harness, mutant);
    }
  }
}

TEST(FuzzCorpusTest, CommitJournalCorpusReplays) {
  const auto corpus = LoadCorpus("commit_journal");
  ASSERT_FALSE(corpus.empty()) << "corpus/commit_journal has no seeds";
  ReplayAndMutate(FuzzCommitJournalOneInput, corpus, 0x11);
}

TEST(FuzzCorpusTest, KvCheckpointCorpusReplays) {
  const auto corpus = LoadCorpus("kv_checkpoint");
  ASSERT_FALSE(corpus.empty()) << "corpus/kv_checkpoint has no seeds";
  ReplayAndMutate(FuzzKvCheckpointOneInput, corpus, 0x22);
}

TEST(FuzzCorpusTest, JsonCorpusReplays) {
  const auto corpus = LoadCorpus("json");
  ASSERT_FALSE(corpus.empty()) << "corpus/json has no seeds";
  ReplayAndMutate(FuzzJsonOneInput, corpus, 0x33);
}

// Freshly built valid frames: the accepting path of each harness (round-trip
// checks included) runs even if the checked-in corpus somehow rots.
TEST(FuzzCorpusTest, FreshValidFramesAccepted) {
  CommitJournal journal;
  journal.epoch = 42;
  journal.state_root = Sha256::Digest("state");
  journal.receipt_root = Sha256::Digest("receipts");
  journal.block_ids = {Sha256::Digest("block0"), Sha256::Digest("block1")};
  journal.chain_tips = {{0, Sha256::Digest("tip0")}};
  journal.redo = "redo-bytes";
  RunHarness(FuzzCommitJournalOneInput, journal.Serialize());

  KVStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  ASSERT_TRUE(store.Put("b", "2").ok());
  RunHarness(FuzzKvCheckpointOneInput, store.Checkpoint());

  json::Value doc;
  doc.Set("name", "nezha").Set("epochs", 42).Set("ok", true);
  RunHarness(FuzzJsonOneInput, doc.Dump());
}

}  // namespace
}  // namespace nezha
