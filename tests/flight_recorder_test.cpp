// Flight-recorder semantics: ring/striping bounds, arrival ordering, JSON
// schema (validated with the common JSON parser), JSONL export, post-mortem
// dump gating, and the two real dump triggers — a serializability-oracle
// rejection and an injected fault crash — each naming the offending epoch.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cc/scheduler.h"
#include "common/json.h"
#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace nezha::obs {
namespace {

EpochFlightRecord MakeRecord(std::uint64_t epoch) {
  EpochFlightRecord record;
  record.epoch = epoch;
  record.scheme = "nezha";
  record.blocks = 4;
  record.txs = 800;
  record.committed = 700;
  record.aborted = 100;
  record.validate_ms = 1.5;
  record.cc_ms = 2.25;
  record.acg_vertices = 1200;
  record.acg_edges = 900;
  return record;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The dump-gating assertions depend on the env fallback being absent.
    ::unsetenv("NEZHA_FLIGHT_DUMP_DIR");
    SetMetricsEnabled(true);
    FlightRecorder& recorder = FlightRecorder::Global();
    recorder.SetEnabled(true);
    recorder.SetDumpDirectory(std::nullopt);
    recorder.SetCapacity(512);
    recorder.Clear();
  }
  void TearDown() override {
    FlightRecorder& recorder = FlightRecorder::Global();
    recorder.SetDumpDirectory(std::nullopt);
    recorder.SetCapacity(512);
    recorder.Clear();
    SetScheduleVerification(std::nullopt);
  }
};

TEST_F(FlightRecorderTest, RecordsComeBackInArrivalOrder) {
  FlightRecorder& recorder = FlightRecorder::Global();
  for (std::uint64_t e = 1; e <= 20; ++e) recorder.Record(MakeRecord(e));
  const auto records = recorder.Records();
  ASSERT_EQ(records.size(), 20u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].epoch, i + 1);
  }
  EXPECT_EQ(recorder.RecordCount(), 20u);
  EXPECT_EQ(recorder.TotalRecorded(), 20u);
}

TEST_F(FlightRecorderTest, RingOverwritesOldestAcrossStripes) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetCapacity(16);
  for (std::uint64_t e = 1; e <= 100; ++e) recorder.Record(MakeRecord(e));
  EXPECT_EQ(recorder.TotalRecorded(), 100u);
  const auto records = recorder.Records();
  ASSERT_EQ(records.size(), 16u);
  // Striped ring: each of the 8 stripes keeps its own newest 2, which is
  // globally the newest 16 records.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].epoch, 85 + i);
  }
}

TEST_F(FlightRecorderTest, CapacityClampsToOnePerStripe) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetCapacity(1);  // below the stripe count
  for (std::uint64_t e = 1; e <= 20; ++e) recorder.Record(MakeRecord(e));
  EXPECT_EQ(recorder.RecordCount(), 8u);
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsRecords) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetEnabled(false);
  recorder.Record(MakeRecord(1));
  EXPECT_EQ(recorder.RecordCount(), 0u);
  EXPECT_EQ(recorder.TotalRecorded(), 0u);
  recorder.SetEnabled(true);
}

TEST_F(FlightRecorderTest, ToJsonMatchesDocumentedSchema) {
  EpochFlightRecord record = MakeRecord(7);
  record.attribution.rank.cycle_breaks = 5;
  record.attribution.rank.tiebreak_subscript = 3;
  record.attribution.reorder_attempts = 2;
  record.attribution.reorder_commits = 1;
  record.attribution.hot_addresses.push_back(
      {/*address=*/42, /*readers=*/9, /*writers=*/4, /*aborts=*/6});
  AbortRecord abort;
  abort.tx = 13;
  abort.address = 42;
  abort.kind = ConflictKind::kRankCycle;
  abort.seq_at_decision = 3;
  abort.reorder_attempted = true;
  abort.reorder_failure = ReorderFailure::kUpperBoundHit;
  record.attribution.aborts.push_back(abort);

  const auto parsed = json::Parse(record.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& v = *parsed;
  EXPECT_EQ(v["epoch"].AsInt(), 7);
  EXPECT_EQ(v["scheme"].AsString(), "nezha");
  EXPECT_EQ(v["txs"].AsInt(), 800);
  EXPECT_DOUBLE_EQ(v["phases_ms"]["cc"].AsDouble(), 2.25);
  EXPECT_EQ(v["acg"]["vertices"].AsInt(), 1200);
  EXPECT_EQ(v["rank"]["cycle_breaks"].AsInt(), 5);
  EXPECT_EQ(v["rank"]["tiebreak_subscript"].AsInt(), 3);
  EXPECT_EQ(v["reorders"]["attempted"].AsInt(), 2);
  ASSERT_EQ(v["hot_addresses"].AsArray().size(), 1u);
  EXPECT_EQ(v["hot_addresses"].AsArray()[0]["address"].AsInt(), 42);
  ASSERT_EQ(v["aborts"].AsArray().size(), 1u);
  const json::Value& a = v["aborts"].AsArray()[0];
  EXPECT_EQ(a["tx"].AsInt(), 13);
  EXPECT_EQ(a["kind"].AsString(), "rank-cycle");
  EXPECT_EQ(a["seq"].AsInt(), 3);
  EXPECT_TRUE(a["reorder_attempted"].AsBool());
  EXPECT_EQ(a["reorder_failure"].AsString(), "upper-bound");
}

TEST_F(FlightRecorderTest, ExportJsonlHasOneParsableLinePerRecord) {
  FlightRecorder& recorder = FlightRecorder::Global();
  for (std::uint64_t e = 1; e <= 3; ++e) recorder.Record(MakeRecord(e));
  const auto lines = Lines(recorder.ExportJsonl());
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto parsed = json::Parse(lines[i]);
    ASSERT_TRUE(parsed.ok()) << lines[i];
    EXPECT_EQ((*parsed)["epoch"].AsInt(),
              static_cast<std::int64_t>(i + 1));
  }
}

TEST_F(FlightRecorderTest, WriteJsonlRoundTrips) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(MakeRecord(9));
  const std::string path = ::testing::TempDir() + "flight_roundtrip.jsonl";
  ASSERT_TRUE(recorder.WriteJsonl(path));
  const auto lines = Lines(ReadFile(path));
  ASSERT_EQ(lines.size(), 1u);
  const auto parsed = json::Parse(lines[0]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)["epoch"].AsInt(), 9);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, DumpIsGatedButCounterAlwaysTicks) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(MakeRecord(1));
  const double before = Registry().Snapshot().Value(
      "nezha_flight_dumps_total", "{reason=\"gated-test\"}");
  EXPECT_EQ(recorder.DumpPostMortem("gated-test"), "");
  const double after = Registry().Snapshot().Value(
      "nezha_flight_dumps_total", "{reason=\"gated-test\"}");
  EXPECT_DOUBLE_EQ(after, before + 1);
}

TEST_F(FlightRecorderTest, DumpWritesRingPlusTrailerNamingTheEpoch) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetDumpDirectory(::testing::TempDir());
  recorder.SetCurrentEpoch(42);
  recorder.Record(MakeRecord(41));
  recorder.Record(MakeRecord(42));
  const std::string path = recorder.DumpPostMortem("unit-test");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("nezha_flight_unit-test_"), std::string::npos);
  const auto lines = Lines(ReadFile(path));
  ASSERT_EQ(lines.size(), 3u);  // 2 records + trailer
  const auto trailer = json::Parse(lines.back());
  ASSERT_TRUE(trailer.ok());
  EXPECT_EQ((*trailer)["postmortem"].AsString(), "unit-test");
  EXPECT_EQ((*trailer)["epoch"].AsInt(), 42);
  EXPECT_EQ((*trailer)["records"].AsInt(), 2);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, DumpSanitizesReasonIntoFilename) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetDumpDirectory(::testing::TempDir());
  const std::string path =
      recorder.DumpPostMortem("fault-crash:node/commit after?journal");
  ASSERT_FALSE(path.empty());
  const std::string base = path.substr(path.rfind('/') + 1);
  EXPECT_NE(base.find("fault-crash-node-commit"), std::string::npos);
  EXPECT_EQ(base.find(':'), std::string::npos);
  EXPECT_EQ(base.find('?'), std::string::npos);
  std::remove(path.c_str());
}

/// A scheduler that deliberately commits two conflicting read-modify-write
/// transactions in the same commit group — the serializability oracle must
/// reject it, which must leave a post-mortem dump naming the epoch.
class CorruptScheduler : public Scheduler {
 public:
  std::string_view name() const override { return "corrupt-test"; }
  const SchedulerMetrics& metrics() const override { return metrics_; }

 protected:
  Result<Schedule> BuildScheduleImpl(
      std::span<const ReadWriteSet> rwsets) override {
    Schedule schedule;
    schedule.sequence.assign(rwsets.size(), 1);  // everyone concurrent
    schedule.aborted.assign(rwsets.size(), false);
    schedule.RebuildGroups();
    return schedule;
  }

 private:
  SchedulerMetrics metrics_;
};

TEST_F(FlightRecorderTest, OracleRejectionDumpsAndNamesTheEpoch) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetDumpDirectory(::testing::TempDir());
  recorder.SetCurrentEpoch(77);
  SetScheduleVerification(true);

  std::vector<ReadWriteSet> rwsets(2);
  for (ReadWriteSet& rw : rwsets) {
    rw.reads = {Address{7}};
    rw.writes = {Address{7}};
    rw.write_values = {1};
  }
  CorruptScheduler scheduler;
  const auto result = scheduler.BuildSchedule(rwsets);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);

  // The rejected schedule is in the ring and the dump names epoch 77.
  const auto records = recorder.Records();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().scheme, "corrupt-test");
  EXPECT_EQ(records.back().epoch, 77u);

  // Find the dump the rejection wrote (counter n is process-wide, so scan).
  const std::string dir = ::testing::TempDir();
  std::string found;
  for (int n = 1; n < 200 && found.empty(); ++n) {
    const std::string candidate =
        dir + "nezha_flight_oracle-rejection_" + std::to_string(n) + ".jsonl";
    if (std::FILE* f = std::fopen(candidate.c_str(), "rb")) {
      std::fclose(f);
      found = candidate;
    }
  }
  ASSERT_FALSE(found.empty());
  const auto lines = Lines(ReadFile(found));
  const auto trailer = json::Parse(lines.back());
  ASSERT_TRUE(trailer.ok());
  EXPECT_EQ((*trailer)["postmortem"].AsString(), "oracle-rejection");
  EXPECT_EQ((*trailer)["epoch"].AsInt(), 77);
  std::remove(found.c_str());
}

TEST_F(FlightRecorderTest, InjectedCrashDumpsWithSiteInReason) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetDumpDirectory(::testing::TempDir());
  recorder.SetCurrentEpoch(5);
  recorder.Record(MakeRecord(5));
  const Status crashed = fault::CrashStatus("node/commit/after_journal");
  EXPECT_TRUE(fault::IsInjectedCrash(crashed));
  const std::string dir = ::testing::TempDir();
  std::string found;
  for (int n = 1; n < 200 && found.empty(); ++n) {
    const std::string candidate = dir +
                                  "nezha_flight_fault-crash-node-commit-"
                                  "after_journal_" +
                                  std::to_string(n) + ".jsonl";
    if (std::FILE* f = std::fopen(candidate.c_str(), "rb")) {
      std::fclose(f);
      found = candidate;
    }
  }
  ASSERT_FALSE(found.empty());
  const auto lines = Lines(ReadFile(found));
  const auto trailer = json::Parse(lines.back());
  ASSERT_TRUE(trailer.ok());
  EXPECT_EQ((*trailer)["postmortem"].AsString(),
            "fault-crash:node/commit/after_journal");
  EXPECT_EQ((*trailer)["epoch"].AsInt(), 5);
  std::remove(found.c_str());
}

}  // namespace
}  // namespace nezha::obs
