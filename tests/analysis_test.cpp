// Serializability-oracle tests (docs/ANALYSIS.md): the oracle must accept
// every schedule the real schedulers emit, reject hand-crafted
// non-serializable schedules with the correct counterexample (including the
// explicit precedence cycle), reject 100% of a seeded mutation sweep with a
// violation kind the corruption can legitimately produce, and enforce its
// verdict through the Scheduler::BuildSchedule verification hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analysis/schedule_mutator.h"
#include "analysis/schedule_verifier.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/occ/occ_scheduler.h"
#include "cc/serial/serial_scheduler.h"
#include "obs/metrics.h"
#include "workload/kv_workload.h"

namespace nezha::analysis {
namespace {

ReadWriteSet RW(std::vector<std::uint64_t> reads,
                std::vector<std::uint64_t> writes) {
  ReadWriteSet rw;
  for (const std::uint64_t a : reads) rw.reads.push_back(Address(a));
  for (const std::uint64_t a : writes) {
    rw.writes.push_back(Address(a));
    rw.write_values.push_back(1);
  }
  std::sort(rw.reads.begin(), rw.reads.end());
  std::sort(rw.writes.begin(), rw.writes.end());
  return rw;
}

Schedule MakeSchedule(std::vector<SeqNum> sequence,
                      std::vector<bool> aborted = {}) {
  Schedule s;
  s.sequence = std::move(sequence);
  s.aborted = aborted.empty() ? std::vector<bool>(s.sequence.size(), false)
                              : std::move(aborted);
  s.RebuildGroups();
  return s;
}

std::unique_ptr<Scheduler> Make(const std::string& scheme) {
  if (scheme == "nezha") return std::make_unique<NezhaScheduler>();
  if (scheme == "nezha-noreorder") {
    NezhaOptions options;
    options.enable_reordering = false;
    return std::make_unique<NezhaScheduler>(options);
  }
  if (scheme == "cg") return std::make_unique<CGScheduler>();
  if (scheme == "occ") return std::make_unique<OCCScheduler>();
  return nullptr;
}

// ---------- acceptance ----------

TEST(ScheduleVerifierTest, AcceptsConflictFreeBatchWithWitness) {
  std::vector<ReadWriteSet> rwsets = {RW({1}, {10}), RW({2}, {20}),
                                      RW({3}, {30})};
  const Schedule s = MakeSchedule({1, 1, 1});
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_TRUE(report.ok) << report.counterexample.ToString();
  EXPECT_EQ(report.witness, (std::vector<TxIndex>{0, 1, 2}));
  EXPECT_EQ(report.graph_vertices, 3u);
  EXPECT_EQ(report.graph_edges, 0u);
}

TEST(ScheduleVerifierTest, AcceptsReadersBelowWriterAndDerivesEdges) {
  // T0, T1 read address 5; T2 writes it. Readers share seq 1, writer at 2.
  std::vector<ReadWriteSet> rwsets = {RW({5}, {}), RW({5}, {}), RW({}, {5})};
  const Schedule s = MakeSchedule({1, 1, 2});
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_TRUE(report.ok) << report.counterexample.ToString();
  EXPECT_EQ(report.graph_edges, 2u);  // r->w from each reader
  EXPECT_EQ(report.witness, (std::vector<TxIndex>{0, 1, 2}));
}

TEST(ScheduleVerifierTest, AcceptsAbortedTransactionsAbsentFromOrder) {
  std::vector<ReadWriteSet> rwsets = {RW({5}, {}), RW({5}, {5}),
                                      RW({5}, {5})};
  // The two read-modify-writes of one address can't both commit; one aborts.
  const Schedule s = MakeSchedule({1, 2, kUnassignedSeq},
                                  {false, false, true});
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_TRUE(report.ok) << report.counterexample.ToString();
  EXPECT_EQ(report.witness, (std::vector<TxIndex>{0, 1}));
}

// ---------- rejection: explicit precedence cycles ----------

TEST(ScheduleVerifierTest, RejectsInherentTwoCycleWithCycleCounterexample) {
  // T0 reads a, writes b; T1 reads b, writes a. Snapshot reads force
  // T0 before T1 (via a) and T1 before T0 (via b): no serial order exists,
  // whatever sequence numbers are assigned.
  constexpr std::uint64_t a = 7, b = 8;
  std::vector<ReadWriteSet> rwsets = {RW({a}, {b}), RW({b}, {a})};
  const Schedule s = MakeSchedule({1, 2});
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_FALSE(report.ok);
  const Counterexample& c = report.counterexample;
  EXPECT_EQ(c.kind, ViolationKind::kPrecedenceCycle);
  ASSERT_EQ(c.txs.size(), 2u);
  EXPECT_NE(std::find(c.txs.begin(), c.txs.end(), TxIndex{0}), c.txs.end());
  EXPECT_NE(std::find(c.txs.begin(), c.txs.end(), TxIndex{1}), c.txs.end());
  // One inducing address per cycle edge, and both conflict addresses appear.
  ASSERT_EQ(c.addresses.size(), 2u);
  EXPECT_NE(std::find(c.addresses.begin(), c.addresses.end(), Address(a)),
            c.addresses.end());
  EXPECT_NE(std::find(c.addresses.begin(), c.addresses.end(), Address(b)),
            c.addresses.end());
  EXPECT_NE(c.ToString().find("precedence-cycle"), std::string::npos);
}

TEST(ScheduleVerifierTest, RejectsThreeCycleAndNamesEveryEdge) {
  // T0: r{1} w{2}; T1: r{2} w{3}; T2: r{3} w{1} — a 3-cycle through
  // addresses 1, 2, 3.
  std::vector<ReadWriteSet> rwsets = {RW({1}, {2}), RW({2}, {3}),
                                      RW({3}, {1})};
  const Schedule s = MakeSchedule({1, 2, 3});
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.counterexample.kind, ViolationKind::kPrecedenceCycle);
  EXPECT_EQ(report.counterexample.txs.size(), 3u);
  EXPECT_EQ(report.counterexample.addresses.size(), 3u);
}

// ---------- rejection: pairwise invariants ----------

TEST(ScheduleVerifierTest, RejectsReadSequencedAfterWrite) {
  std::vector<ReadWriteSet> rwsets = {RW({5}, {}), RW({}, {5})};
  const Schedule s = MakeSchedule({3, 2});  // reader above writer
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_FALSE(report.ok);
  const Counterexample& c = report.counterexample;
  EXPECT_EQ(c.kind, ViolationKind::kReadAfterWrite);
  EXPECT_EQ(c.txs, (std::vector<TxIndex>{0, 1}));
  EXPECT_EQ(c.addresses, (std::vector<Address>{Address(5)}));
}

TEST(ScheduleVerifierTest, RejectsWriterSequenceCollision) {
  std::vector<ReadWriteSet> rwsets = {RW({}, {5}), RW({}, {5})};
  const Schedule s = MakeSchedule({4, 4});
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.counterexample.kind, ViolationKind::kWriterSeqCollision);
  EXPECT_EQ(report.counterexample.txs, (std::vector<TxIndex>{0, 1}));
}

TEST(ScheduleVerifierTest, RejectsAbortedTransactionInCommitOrder) {
  std::vector<ReadWriteSet> rwsets = {RW({}, {5}), RW({}, {6})};
  Schedule s = MakeSchedule({1, 2});
  s.aborted[1] = true;  // still carries seq 2 and sits in a group
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.counterexample.kind, ViolationKind::kAbortedInOrder);
  EXPECT_EQ(report.counterexample.txs, (std::vector<TxIndex>{1}));
}

TEST(ScheduleVerifierTest, RejectsRevertedTransactionMarkedCommitted) {
  std::vector<ReadWriteSet> rwsets = {RW({}, {5})};
  rwsets[0].ok = false;
  const Schedule s = MakeSchedule({1});
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.counterexample.kind, ViolationKind::kAbortedInOrder);
}

TEST(ScheduleVerifierTest, RejectsGroupsInconsistentWithSequence) {
  std::vector<ReadWriteSet> rwsets = {RW({}, {5}), RW({}, {6})};
  Schedule s = MakeSchedule({1, 2});
  s.groups[0].push_back(1);  // T1 now in two groups
  const VerifyReport report = VerifySchedule(s, rwsets);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.counterexample.kind, ViolationKind::kMalformedSchedule);
}

TEST(ScheduleVerifierTest, RejectsReorderedTxLandingBelowReader) {
  // T1 claims to be a §IV.D rescue but sits at the reader's number.
  std::vector<ReadWriteSet> rwsets = {RW({5}, {}), RW({}, {5}),
                                      RW({9}, {9})};
  const Schedule s = MakeSchedule({2, 3, 1});
  const std::vector<TxIndex> reordered = {1};
  VerifierOptions options;
  options.reordered = reordered;
  // Valid as a schedule...
  ASSERT_TRUE(VerifySchedule(s, rwsets).ok);
  // ...but T1 at seq 3 with reader T0 at seq 2 satisfies the landing rule,
  // so corrupt it: drop T1 to the reader's number via a fresh schedule.
  const Schedule bad = MakeSchedule({2, 2, 1});
  const VerifyReport report = VerifySchedule(bad, rwsets, options);
  ASSERT_FALSE(report.ok);
  // The tie also violates reads-before-writes, which fires first; either
  // way the reordered transaction is implicated.
  EXPECT_TRUE(report.counterexample.kind == ViolationKind::kReadAfterWrite ||
              report.counterexample.kind == ViolationKind::kReorderViolation);
}

TEST(ScheduleVerifierTest, RejectsReorderedTxThatAborted) {
  std::vector<ReadWriteSet> rwsets = {RW({}, {5}), RW({}, {6})};
  const Schedule s = MakeSchedule({1, kUnassignedSeq}, {false, true});
  const std::vector<TxIndex> reordered = {1};
  VerifierOptions options;
  options.reordered = reordered;
  const VerifyReport report = VerifySchedule(s, rwsets, options);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.counterexample.kind, ViolationKind::kReorderViolation);
}

// ---------- evolving-state (serial) semantics ----------

TEST(ScheduleVerifierTest, EvolvingStateAcceptsAnyTotalOrder) {
  // Two RMWs of one address are unserializable under snapshot reads but are
  // a perfectly good serial execution under evolving state.
  std::vector<ReadWriteSet> rwsets = {RW({5}, {5}), RW({5}, {5})};
  const Schedule s = MakeSchedule({1, 2});
  VerifierOptions options;
  options.snapshot_semantics = false;
  const VerifyReport report = VerifySchedule(s, rwsets, options);
  ASSERT_TRUE(report.ok) << report.counterexample.ToString();
  EXPECT_FALSE(VerifySchedule(s, rwsets).ok);  // snapshot mode: cycle
}

TEST(ScheduleVerifierTest, EvolvingStateStillRejectsWriterCollision) {
  std::vector<ReadWriteSet> rwsets = {RW({}, {5}), RW({}, {5})};
  const Schedule s = MakeSchedule({3, 3});
  VerifierOptions options;
  options.snapshot_semantics = false;
  const VerifyReport report = VerifySchedule(s, rwsets, options);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.counterexample.kind, ViolationKind::kWriterSeqCollision);
}

// ---------- the BuildSchedule verification hook ----------

/// Emits a deliberately unserializable schedule: every transaction gets
/// sequence 1, conflicts and all.
class CorruptScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "corrupt"; }
  const SchedulerMetrics& metrics() const override { return metrics_; }

 protected:
  Result<Schedule> BuildScheduleImpl(
      std::span<const ReadWriteSet> rwsets) override {
    Schedule s;
    s.sequence.assign(rwsets.size(), 1);
    s.aborted.assign(rwsets.size(), false);
    s.RebuildGroups();
    return s;
  }

 private:
  SchedulerMetrics metrics_;
};

class VerificationHookTest : public ::testing::Test {
 protected:
  void TearDown() override { SetScheduleVerification(std::nullopt); }
  std::vector<ReadWriteSet> conflicting_ = {RW({}, {5}), RW({}, {5})};
};

TEST_F(VerificationHookTest, RejectsCorruptSchedulerWithInternalStatus) {
  SetScheduleVerification(true);
  CorruptScheduler scheduler;
  auto result = scheduler.BuildSchedule(conflicting_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("serializability"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("writer-seq-collision"),
            std::string::npos);
}

TEST_F(VerificationHookTest, DisabledVerificationLetsSchedulesThrough) {
  SetScheduleVerification(false);
  CorruptScheduler scheduler;
  EXPECT_TRUE(scheduler.BuildSchedule(conflicting_).ok());
}

TEST_F(VerificationHookTest, PublishesVerifyMetrics) {
  obs::SetMetricsEnabled(true);
  obs::Registry().ResetAll();
  SetScheduleVerification(true);

  NezhaScheduler good;
  ASSERT_TRUE(good.BuildSchedule(conflicting_).ok());
  CorruptScheduler bad;
  ASSERT_FALSE(bad.BuildSchedule(conflicting_).ok());

  const auto snapshot = obs::Registry().Snapshot();
  EXPECT_EQ(snapshot.Value("nezha_verify_schedules_total",
                           obs::RenderLabels({{"scheduler", "nezha"}})),
            1.0);
  EXPECT_EQ(snapshot.Value("nezha_verify_schedules_total",
                           obs::RenderLabels({{"scheduler", "corrupt"}})),
            1.0);
  EXPECT_EQ(snapshot.Value("nezha_verify_failures_total",
                           obs::RenderLabels({{"scheduler", "corrupt"}})),
            1.0);
}

TEST_F(VerificationHookTest, SerialSchedulerPassesUnderEvolvingSemantics) {
  SetScheduleVerification(true);
  // Conflicting batch: the serial identity order is NOT snapshot-
  // serializable, but serial execution uses evolving state, so the hook
  // must accept it (snapshot_semantics() == false).
  std::vector<ReadWriteSet> rwsets = {RW({5}, {5}), RW({5}, {5})};
  SerialScheduler scheduler;
  EXPECT_TRUE(scheduler.BuildSchedule(rwsets).ok());
}

// ---------- seeded mutation sweep (the oracle's own adversary) ----------

class MutationSweepTest : public ::testing::TestWithParam<const char*> {
 protected:
  void TearDown() override { SetScheduleVerification(std::nullopt); }
};

TEST_P(MutationSweepTest, EveryMutationRejectedWithExpectedKind) {
  // A contended Zipfian KV batch gives the mutator plenty of read/write and
  // write/write targets under every scheme.
  KVWorkloadConfig config;
  config.num_keys = 60;
  config.skew = 1.0;
  config.reads_per_tx = 2;
  config.writes_per_tx = 2;
  config.blind_write_fraction = 0.5;
  KVWorkload workload(config, /*seed=*/42);
  const auto rwsets = workload.MakeBatch(150);

  SetScheduleVerification(true);  // the build itself is oracle-checked
  auto scheduler = Make(GetParam());
  auto schedule = scheduler->BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();

  const std::vector<Mutation> mutations =
      MutateSchedule(*schedule, rwsets, /*seed=*/0xC0FFEE, /*count=*/120);
  ASSERT_GE(mutations.size(), 100u) << GetParam();

  std::size_t rejected = 0;
  for (const Mutation& m : mutations) {
    const VerifyReport report = VerifySchedule(m.schedule, rwsets);
    ASSERT_FALSE(report.ok)
        << GetParam() << ": oracle accepted corrupt schedule (" << m.description
        << ")";
    ++rejected;
    const Counterexample& c = report.counterexample;
    EXPECT_NE(std::find(m.expected.begin(), m.expected.end(), c.kind),
              m.expected.end())
        << GetParam() << ": " << m.description << " reported "
        << ViolationKindName(c.kind);
    // Counterexamples must be concrete: a named violation plus evidence.
    EXPECT_FALSE(c.detail.empty()) << m.description;
    if (c.kind != ViolationKind::kMalformedSchedule) {
      EXPECT_FALSE(c.txs.empty()) << m.description;
    }
  }
  EXPECT_EQ(rejected, mutations.size());
}

INSTANTIATE_TEST_SUITE_P(Schemes, MutationSweepTest,
                         ::testing::Values("nezha", "nezha-noreorder", "cg",
                                           "occ"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace nezha::analysis
