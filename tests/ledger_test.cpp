// Unit tests for the ledger substrate: transaction/block serialization and
// hashing, Merkle roots, epoch flattening, and parallel-chain validation.
#include <gtest/gtest.h>

#include "ledger/block.h"
#include "ledger/epoch.h"
#include "ledger/ledger.h"
#include "ledger/transaction.h"
#include "ledger/validation.h"
#include "obs/metrics.h"
#include "vm/smallbank.h"

namespace nezha {
namespace {

Transaction MakeTx(std::uint64_t nonce, std::uint64_t account = 1) {
  Transaction tx;
  tx.nonce = nonce;
  tx.payload =
      MakeSmallBankCall(SmallBankOp::kUpdateBalance, {account, 10});
  return tx;
}

// ---------- Transaction ----------

TEST(TransactionTest, SerializeRoundTrip) {
  const Transaction tx = MakeTx(42, 7);
  auto decoded = Transaction::Deserialize(tx.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, tx);
}

TEST(TransactionTest, IdIsStable) {
  EXPECT_EQ(MakeTx(1).Id(), MakeTx(1).Id());
  EXPECT_NE(MakeTx(1).Id(), MakeTx(2).Id());
}

TEST(TransactionTest, IdDependsOnPayload) {
  Transaction a = MakeTx(1, 5);
  Transaction b = MakeTx(1, 6);
  EXPECT_NE(a.Id(), b.Id());
}

TEST(TransactionTest, DeserializeRejectsTruncated) {
  std::string bytes = MakeTx(1).Serialize();
  bytes.pop_back();
  EXPECT_FALSE(Transaction::Deserialize(bytes).ok());
}

TEST(TransactionTest, DeserializeRejectsTrailing) {
  std::string bytes = MakeTx(1).Serialize();
  bytes += "x";
  EXPECT_FALSE(Transaction::Deserialize(bytes).ok());
}

// ---------- Merkle root ----------

TEST(MerkleRootTest, EmptyIsZero) {
  EXPECT_TRUE(ComputeTxMerkleRoot({}).IsZero());
}

TEST(MerkleRootTest, SensitiveToContentAndOrder) {
  const std::vector<Transaction> a = {MakeTx(1), MakeTx(2)};
  const std::vector<Transaction> b = {MakeTx(2), MakeTx(1)};
  const std::vector<Transaction> c = {MakeTx(1), MakeTx(3)};
  EXPECT_NE(ComputeTxMerkleRoot(a), ComputeTxMerkleRoot(b));
  EXPECT_NE(ComputeTxMerkleRoot(a), ComputeTxMerkleRoot(c));
  EXPECT_EQ(ComputeTxMerkleRoot(a), ComputeTxMerkleRoot(a));
}

TEST(MerkleRootTest, OddCountsWork) {
  for (std::uint64_t n : {1u, 3u, 5u, 7u}) {
    std::vector<Transaction> txs;
    for (std::uint64_t i = 0; i < n; ++i) txs.push_back(MakeTx(i));
    EXPECT_FALSE(ComputeTxMerkleRoot(txs).IsZero()) << n;
  }
}

// ---------- Block ----------

TEST(BlockTest, SerializeRoundTrip) {
  Block block;
  block.header.epoch = 3;
  block.header.chain = 2;
  block.header.height = 5;
  block.header.proposer = 9;
  block.transactions = {MakeTx(1), MakeTx(2), MakeTx(3)};
  block.header.tx_root = ComputeTxMerkleRoot(block.transactions);

  auto decoded = Block::Deserialize(block.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.epoch, 3u);
  EXPECT_EQ(decoded->header.chain, 2u);
  EXPECT_EQ(decoded->transactions.size(), 3u);
  EXPECT_EQ(decoded->Hash(), block.Hash());
}

TEST(BlockTest, HashCoversHeaderFields) {
  Block a, b;
  a.header.epoch = 1;
  b.header.epoch = 2;
  EXPECT_NE(a.Hash(), b.Hash());
  b.header.epoch = 1;
  EXPECT_EQ(a.Hash(), b.Hash());
  b.header.prev_state_root.bytes[0] = 1;
  EXPECT_NE(a.Hash(), b.Hash());
}

// ---------- EpochBatch ----------

TEST(EpochBatchTest, FlattensInBlockOrder) {
  Block b0, b1;
  b0.header.chain = 0;
  b0.transactions = {MakeTx(1), MakeTx(2)};
  b1.header.chain = 1;
  b1.transactions = {MakeTx(3)};
  const EpochBatch batch = EpochBatch::FromBlocks(1, {b0, b1});
  ASSERT_EQ(batch.TxCount(), 3u);
  EXPECT_EQ(batch.txs[0].nonce, 1u);
  EXPECT_EQ(batch.txs[1].nonce, 2u);
  EXPECT_EQ(batch.txs[2].nonce, 3u);
  EXPECT_EQ(batch.BlockConcurrency(), 2u);
}

TEST(EpochBatchTest, DropsDuplicates) {
  Block b0, b1;
  b0.transactions = {MakeTx(1), MakeTx(2)};
  b1.transactions = {MakeTx(2), MakeTx(3)};  // tx 2 repeated
  const EpochBatch batch = EpochBatch::FromBlocks(1, {b0, b1});
  EXPECT_EQ(batch.TxCount(), 3u);
  EXPECT_EQ(batch.duplicates_dropped, 1u);
}

// ---------- ParallelChainLedger ----------

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() : ledger_(4, &kv_) {}

  Block MakeValidBlock(ChainId chain, EpochId epoch,
                       std::vector<Transaction> txs) {
    return ledger_.BuildBlock(chain, epoch, std::move(txs));
  }

  KVStore kv_;
  ParallelChainLedger ledger_;
};

TEST_F(LedgerTest, AppendValidBlocks) {
  for (ChainId c = 0; c < 4; ++c) {
    ASSERT_TRUE(ledger_.AppendBlock(MakeValidBlock(c, 1, {MakeTx(c)})).ok());
  }
  EXPECT_EQ(ledger_.TotalBlocks(), 4u);
  EXPECT_EQ(ledger_.ChainHeight(0), 1u);
}

TEST_F(LedgerTest, RejectsWrongChainId) {
  Block block = MakeValidBlock(0, 1, {});
  block.header.chain = 7;  // out of range
  EXPECT_FALSE(ledger_.ValidateBlock(block).ok());
}

TEST_F(LedgerTest, RejectsWrongParentHash) {
  ASSERT_TRUE(ledger_.AppendBlock(MakeValidBlock(0, 1, {MakeTx(1)})).ok());
  Block block = MakeValidBlock(0, 2, {MakeTx(2)});
  block.header.parent_hash.bytes[5] ^= 1;
  EXPECT_FALSE(ledger_.ValidateBlock(block).ok());
}

TEST_F(LedgerTest, RejectsWrongHeight) {
  Block block = MakeValidBlock(0, 1, {});
  block.header.height = 3;
  EXPECT_FALSE(ledger_.ValidateBlock(block).ok());
}

TEST_F(LedgerTest, RejectsStaleStateRoot) {
  // Paper §III.B: a block whose state root does not match the previous
  // epoch's state is invalid and discarded.
  ASSERT_TRUE(ledger_.AppendBlock(MakeValidBlock(0, 1, {MakeTx(1)})).ok());
  Hash256 new_root;
  new_root.bytes[0] = 0xaa;
  ledger_.CommitEpochRoot(1, new_root);

  Block stale = MakeValidBlock(0, 2, {MakeTx(2)});
  stale.header.prev_state_root = Hash256{};  // pretends epoch 1 never ran
  EXPECT_FALSE(ledger_.ValidateBlock(stale).ok());

  Block fresh = MakeValidBlock(0, 2, {MakeTx(2)});
  EXPECT_EQ(fresh.header.prev_state_root, new_root);
  EXPECT_TRUE(ledger_.AppendBlock(std::move(fresh)).ok());
}

TEST_F(LedgerTest, RejectsWrongTxRoot) {
  Block block = MakeValidBlock(0, 1, {MakeTx(1)});
  block.transactions.push_back(MakeTx(99));  // body no longer matches root
  EXPECT_FALSE(ledger_.ValidateBlock(block).ok());
}

TEST_F(LedgerTest, RejectsNonAdvancingEpoch) {
  ASSERT_TRUE(ledger_.AppendBlock(MakeValidBlock(0, 2, {})).ok());
  Block block = MakeValidBlock(0, 2, {});
  EXPECT_FALSE(ledger_.ValidateBlock(block).ok());
}

TEST_F(LedgerTest, RejectionMatrixReportsExactReasons) {
  // Every header/body field a Byzantine producer could tamper with maps to
  // its own taxonomy reason (docs/ROBUSTNESS.md): mutate one field at a
  // time and pin the exact reason parsed back from the Status message.
  using ledger::RejectReason;
  using ledger::RejectReasonOf;

  // Anchor some history so parent/height/epoch mutations have a real tip
  // to disagree with.
  ASSERT_TRUE(ledger_.AppendBlock(MakeValidBlock(0, 1, {MakeTx(1)})).ok());
  Hash256 root;
  root.bytes[0] = 0xaa;
  ledger_.CommitEpochRoot(1, root);

  const auto reason_of = [&](const Block& block) {
    const Status status = ledger_.ValidateBlock(block);
    EXPECT_FALSE(status.ok());
    return RejectReasonOf(status);
  };

  {
    Block b = MakeValidBlock(0, 2, {MakeTx(2)});
    b.header.chain = 9;
    EXPECT_EQ(reason_of(b), RejectReason::kChainOutOfRange);
  }
  {
    Block b = MakeValidBlock(0, 2, {MakeTx(2)});
    b.header.height += 2;
    EXPECT_EQ(reason_of(b), RejectReason::kBadHeight);
  }
  {
    Block b = MakeValidBlock(0, 2, {MakeTx(2)});
    b.header.parent_hash.bytes[3] ^= 0xFF;
    EXPECT_EQ(reason_of(b), RejectReason::kBadParent);
  }
  {
    Block b = MakeValidBlock(0, 2, {MakeTx(2)});
    b.header.epoch = 1;  // does not advance past the chain tip's epoch
    EXPECT_EQ(reason_of(b), RejectReason::kEpochRegression);
  }
  {
    Block b = MakeValidBlock(0, 2, {MakeTx(2)});
    b.header.prev_state_root.bytes[0] ^= 0xFF;
    EXPECT_EQ(reason_of(b), RejectReason::kBadStateRoot);
  }
  {
    const std::size_t cap = ledger_.max_block_txs();
    ledger_.SetMaxBlockTxs(2);
    Block b = MakeValidBlock(0, 2, {MakeTx(2), MakeTx(3), MakeTx(4)});
    EXPECT_EQ(reason_of(b), RejectReason::kOversize);
    ledger_.SetMaxBlockTxs(cap);
  }
  {
    Block b = MakeValidBlock(0, 2, {MakeTx(2)});
    b.header.tx_root.bytes[7] ^= 0xFF;  // root no longer covers the body
    EXPECT_EQ(reason_of(b), RejectReason::kBadTxRoot);
  }
  {
    // Body carries the same transaction twice; the root honestly covers
    // the duplicated body, so only the dedup check can catch it.
    Block b = MakeValidBlock(0, 2, {MakeTx(2), MakeTx(2)});
    EXPECT_EQ(reason_of(b), RejectReason::kDuplicateTx);
  }

  // Each rejection above also bumped the taxonomy metric for the ledger.
  EXPECT_GE(obs::Registry()
                .GetCounter("nezha_invalid_block_total",
                            {{"component", "ledger"},
                             {"reason", "duplicate-tx"}})
                ->Value(),
            1u);

  // The untampered block still validates and appends.
  EXPECT_TRUE(ledger_.AppendBlock(MakeValidBlock(0, 2, {MakeTx(2)})).ok());
}

TEST_F(LedgerTest, SealEpochCollectsAcrossChains) {
  for (ChainId c = 0; c < 3; ++c) {
    ASSERT_TRUE(
        ledger_.AppendBlock(MakeValidBlock(c, 1, {MakeTx(10 + c)})).ok());
  }
  auto batch = ledger_.SealEpoch(1);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->BlockConcurrency(), 3u);
  EXPECT_EQ(batch->TxCount(), 3u);
  // Blocks must be ordered by chain id.
  EXPECT_EQ(batch->blocks[0].header.chain, 0u);
  EXPECT_EQ(batch->blocks[2].header.chain, 2u);
}

TEST_F(LedgerTest, SealEmptyEpochFails) {
  EXPECT_FALSE(ledger_.SealEpoch(9).ok());
}

TEST_F(LedgerTest, PersistsAndReloadsBlocks) {
  const Block original = MakeValidBlock(1, 1, {MakeTx(5), MakeTx(6)});
  ASSERT_TRUE(ledger_.AppendBlock(original).ok());
  auto loaded = ledger_.LoadBlock(1, 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Hash(), original.Hash());
  EXPECT_EQ(loaded->transactions.size(), 2u);
}

TEST_F(LedgerTest, StateRootBeforeWalksHistory) {
  EXPECT_TRUE(ledger_.StateRootBefore(1).IsZero());
  Hash256 r1, r2;
  r1.bytes[0] = 1;
  r2.bytes[0] = 2;
  ledger_.CommitEpochRoot(1, r1);
  ledger_.CommitEpochRoot(2, r2);
  EXPECT_TRUE(ledger_.StateRootBefore(1).IsZero());
  EXPECT_EQ(ledger_.StateRootBefore(2), r1);
  EXPECT_EQ(ledger_.StateRootBefore(3), r2);
  EXPECT_EQ(ledger_.StateRootBefore(100), r2);
}

}  // namespace
}  // namespace nezha
