// Determinism matrix + divergence-localization tests for the stage-level
// checkpoint auditor (src/analysis/det_checkpoint.h, docs/ANALYSIS.md
// "Determinism auditor").
//
//   * Matrix: 20 seeded workloads x {1,2,4,8} execution threads x
//     {serial-build, 2-shard, 8-shard ACG} x all five schemes must produce
//     stage-identical checkpoint digests — the parallel pipeline's
//     byte-identical-output promise, now checked per stage instead of only
//     at the final state root.
//   * Localization: an injected stage-local perturbation
//     (PerturbStageForTest) and real configuration ablations (naive rank
//     policy, reordering off) must surface as a FIRST divergence at exactly
//     the stage that changed, with every upstream stage reported as
//     matched — the bisection property that turns "roots differ" into
//     "sort stage, line N".
//   * Recorder mechanics: ring shedding, epoch-slot reuse, capture-mode
//     line diffs, enable/disable, and the consensus-sim kConsensus record.
//
// This test runs in the TSan CI job as well: every Record() call under the
// group-parallel executor crosses threads, so the recorder's locking is
// exercised under the race detector.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/det_checkpoint.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/parallel_executor.h"
#include "cc/occ/occ_scheduler.h"
#include "cc/serial/serial_scheduler.h"
#include "cc/scheduler.h"
#include "common/thread_pool.h"
#include "consensus/ohie_sim.h"
#include "node/simulation.h"
#include "storage/state_db.h"
#include "workload/kv_workload.h"

namespace nezha {
namespace {

using analysis::DetCheckpointRecorder;
using analysis::DetStage;
using analysis::DivergenceReport;
using analysis::EpochCheckpoints;

// One pool per thread count, shared across all cases (pool creation is not
// what is under test).
ThreadPool& PoolWithThreads(std::size_t threads) {
  static std::array<std::unique_ptr<ThreadPool>, 9> pools;
  if (!pools[threads]) pools[threads] = std::make_unique<ThreadPool>(threads);
  return *pools[threads];
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
    det.SetEnabled(true);
    det.SetCapture(true);
    det.PerturbStageForTest(std::nullopt);
    det.Clear();
    // The serializability oracle is differential-tested elsewhere
    // (parallel_pipeline_test); keep the 500+ pipeline runs here about
    // checkpoint equality so the matrix stays fast under TSan.
    SetScheduleVerification(false);
  }
  void TearDown() override {
    DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
    det.PerturbStageForTest(std::nullopt);
    det.SetCapture(false);
    det.SetEnabled(std::nullopt);
    det.Clear();
    SetScheduleVerification(std::nullopt);
  }
};

/// Builds the schedule and group-parallel-executes it against a fresh
/// StateDB with checkpointing on, returning the run's checkpoint records.
std::vector<EpochCheckpoints> RunPipelineOnce(
    Scheduler& scheduler, std::span<const ReadWriteSet> rwsets,
    const std::string& scheme, std::size_t threads) {
  DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
  det.Clear();
  det.BeginEpoch(1, scheme);
  auto schedule = scheduler.BuildSchedule(rwsets);
  EXPECT_TRUE(schedule.ok()) << scheme << ": " << schedule.status().ToString();
  if (!schedule.ok()) return {};
  StateDB db;
  const StateSnapshot snapshot = db.MakeSnapshot(0);
  ExecuteScheduleParallel(PoolWithThreads(threads), db, snapshot, *schedule,
                          rwsets);
  return det.Snapshot();
}

std::vector<ReadWriteSet> MakeWorkload(std::uint64_t seed, double skew,
                                       std::size_t txs) {
  KVWorkloadConfig config;
  config.num_keys = 300;
  config.skew = skew;
  config.reads_per_tx = 2;
  config.writes_per_tx = 2;
  // Cycle the blind-write fraction so RMW aborts and the §IV.D blind-write
  // rescue paths both feed the checkpoint encodings.
  config.blind_write_fraction = 0.25 * static_cast<double>(seed % 5);
  return KVWorkload(config, 9'000 + seed).MakeBatch(txs);
}

struct SchemeCase {
  std::string name;
  bool sharded;  ///< Nezha schemes: the ACG build takes pool + shard count
};

std::unique_ptr<Scheduler> MakeCaseScheduler(const SchemeCase& scheme,
                                             ThreadPool* pool,
                                             std::size_t shards) {
  if (scheme.name == "serial") return std::make_unique<SerialScheduler>();
  if (scheme.name == "occ") return std::make_unique<OCCScheduler>();
  if (scheme.name == "cg") return std::make_unique<CGScheduler>();
  NezhaOptions options;
  options.enable_reordering = scheme.name == "nezha";
  options.pool = pool;
  options.acg_shards = shards;
  return std::make_unique<NezhaScheduler>(options);
}

// 20 seeds x {1,2,4,8} threads x {serial-build, 2-shard, 8-shard ACG} x all
// five schemes: every recorded stage digest must equal the single-threaded
// serial-build reference. Non-Nezha schemes have no sharded ACG build, so
// their matrix varies the execution pool only.
TEST_F(DeterminismTest, MatrixStageDigestsInvariantAcrossThreadsAndShards) {
  const SchemeCase kSchemes[] = {{"serial", false},
                                 {"occ", false},
                                 {"cg", false},
                                 {"nezha", true},
                                 {"nezha-noreorder", true}};
  const double kSkews[] = {0.0, 0.6, 0.9, 0.99};
  const std::size_t kThreads[] = {2, 4, 8};
  const std::size_t kShards[] = {2, 8};
  constexpr std::uint64_t kSeeds = 20;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const std::vector<ReadWriteSet> rwsets =
        MakeWorkload(seed, kSkews[seed % 4], 128);
    for (const SchemeCase& scheme : kSchemes) {
      // Reference: 1 execution thread, serial (unsharded, poolless) build.
      auto ref_scheduler = MakeCaseScheduler(scheme, nullptr, 0);
      const auto reference =
          RunPipelineOnce(*ref_scheduler, rwsets, scheme.name, 1);
      ASSERT_EQ(reference.size(), 1u) << scheme.name;
      EXPECT_TRUE(reference[0].Has(DetStage::kSort));
      EXPECT_TRUE(reference[0].Has(DetStage::kExecute));
      if (scheme.sharded) {
        EXPECT_TRUE(reference[0].Has(DetStage::kAcg));
        EXPECT_TRUE(reference[0].Has(DetStage::kRank));
      }

      for (const std::size_t threads : kThreads) {
        const std::size_t shard_cases = scheme.sharded ? 2 : 1;
        for (std::size_t si = 0; si < shard_cases; ++si) {
          const std::size_t shards = scheme.sharded ? kShards[si] : 0;
          auto scheduler = MakeCaseScheduler(
              scheme, scheme.sharded ? &PoolWithThreads(threads) : nullptr,
              shards);
          const auto run = RunPipelineOnce(*scheduler, rwsets, scheme.name,
                                           threads);
          const DivergenceReport report =
              analysis::DiffCheckpoints(reference, run);
          EXPECT_FALSE(report.diverged)
              << scheme.name << " seed=" << seed << " threads=" << threads
              << " shards=" << shards << ": " << report.summary;
          // Every stage recorded by the reference must also have been
          // recorded (and matched) by the variant run.
          EXPECT_EQ(report.matched_stages.size(),
                    scheme.sharded ? 4u : 2u)
              << scheme.name << " seed=" << seed;
        }
      }
    }
  }
}

// The PerturbStageForTest hook simulates a stage-local nondeterminism bug:
// the diff must report exactly the perturbed stage as the first divergence,
// with every upstream stage in matched_stages (bisection evidence that the
// break is local, not inherited).
TEST_F(DeterminismTest, InjectedPerturbationLocalizesToPerturbedStage) {
  const std::vector<ReadWriteSet> rwsets = MakeWorkload(3, 0.9, 128);
  NezhaScheduler reference_scheduler;
  const auto reference =
      RunPipelineOnce(reference_scheduler, rwsets, "nezha", 1);
  ASSERT_EQ(reference.size(), 1u);

  const struct {
    DetStage stage;
    std::size_t upstream;  ///< stages recorded before it in pipeline order
  } kCases[] = {{DetStage::kAcg, 0},
                {DetStage::kRank, 1},
                {DetStage::kSort, 2},
                {DetStage::kExecute, 3}};
  for (const auto& c : kCases) {
    DetCheckpointRecorder::Global().PerturbStageForTest(c.stage);
    NezhaScheduler scheduler;
    const auto perturbed = RunPipelineOnce(scheduler, rwsets, "nezha", 4);
    DetCheckpointRecorder::Global().PerturbStageForTest(std::nullopt);

    const DivergenceReport report =
        analysis::DiffCheckpoints(reference, perturbed);
    ASSERT_TRUE(report.diverged) << analysis::DetStageName(c.stage);
    EXPECT_EQ(report.stage, c.stage);
    EXPECT_EQ(report.epoch, 1u);
    EXPECT_EQ(report.matched_stages.size(), c.upstream)
        << analysis::DetStageName(c.stage);
    for (const DetStage matched : report.matched_stages) {
      EXPECT_LT(static_cast<int>(matched), static_cast<int>(c.stage));
    }
  }
}

// Real configuration ablation #1: the naive rank policy (Algorithm 1
// tie-break baseline) changes rank division and nothing upstream of it —
// the first divergence must land on kRank with kAcg matched.
TEST_F(DeterminismTest, RankPolicyAblationFirstDivergesAtRank) {
  bool diverged_somewhere = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::vector<ReadWriteSet> rwsets = MakeWorkload(seed, 0.99, 160);
    NezhaScheduler nezha;
    const auto reference = RunPipelineOnce(nezha, rwsets, "nezha", 2);

    NezhaOptions naive_options;
    naive_options.rank_policy = RankPolicy::kNaive;
    NezhaScheduler naive(naive_options);
    const auto ablated = RunPipelineOnce(naive, rwsets, "nezha", 2);

    const DivergenceReport report =
        analysis::DiffCheckpoints(reference, ablated);
    if (!report.diverged) continue;  // no ACG cycle this seed; tie-break moot
    diverged_somewhere = true;
    EXPECT_EQ(report.stage, DetStage::kRank) << "seed=" << seed;
    ASSERT_FALSE(report.matched_stages.empty()) << "seed=" << seed;
    EXPECT_EQ(report.matched_stages[0], DetStage::kAcg) << "seed=" << seed;
  }
  EXPECT_TRUE(diverged_somewhere)
      << "no contended seed separated the rank policies";
}

// Real configuration ablation #2: disabling §IV.D reordering changes the
// schedule (kSort) but not the ACG or the ranks — and capture mode must
// point at the exact first differing canonical line.
TEST_F(DeterminismTest, ReorderAblationFirstDivergesAtSortWithLineDiff) {
  bool diverged_somewhere = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::vector<ReadWriteSet> rwsets = MakeWorkload(seed, 0.99, 160);
    NezhaScheduler nezha;
    const auto reference = RunPipelineOnce(nezha, rwsets, "nezha", 2);

    NezhaOptions options;
    options.enable_reordering = false;
    NezhaScheduler noreorder(options);
    const auto ablated = RunPipelineOnce(noreorder, rwsets, "nezha", 2);

    const DivergenceReport report =
        analysis::DiffCheckpoints(reference, ablated);
    if (!report.diverged) continue;  // nothing to rescue this seed
    diverged_somewhere = true;
    EXPECT_EQ(report.stage, DetStage::kSort) << "seed=" << seed;
    ASSERT_GE(report.matched_stages.size(), 2u) << "seed=" << seed;
    EXPECT_EQ(report.matched_stages[0], DetStage::kAcg);
    EXPECT_EQ(report.matched_stages[1], DetStage::kRank);
    // Capture mode was on: the report must carry a line-level diff.
    EXPECT_GT(report.line, 0u) << "seed=" << seed;
    EXPECT_NE(report.line_a, report.line_b) << "seed=" << seed;
    EXPECT_NE(report.summary.find("sort"), std::string::npos)
        << report.summary;
  }
  EXPECT_TRUE(diverged_somewhere)
      << "no contended seed exercised the reordering enhancement";
}

// Full-node runs (speculative execution -> scheduling -> group-parallel
// commit -> durable root) across worker-thread counts: the kSort, kExecute
// and kCommit records of every epoch must match the single-threaded run.
TEST_F(DeterminismTest, FullNodeCheckpointsInvariantAcrossWorkerThreads) {
  auto run = [](std::size_t threads) {
    DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
    det.Clear();
    SimulationConfig config;
    config.node.scheme = SchemeKind::kNezha;
    config.node.worker_threads = threads;
    config.workload.num_accounts = 200;
    config.workload.skew = 0.9;
    config.block_size = 50;
    config.block_concurrency = 2;
    config.epochs = 3;
    config.seed = 7;
    auto summary = RunSimulation(config);
    EXPECT_TRUE(summary.ok());
    return det.Snapshot();
  };

  const auto reference = run(1);
  ASSERT_EQ(reference.size(), 3u);
  for (const EpochCheckpoints& epoch : reference) {
    EXPECT_TRUE(epoch.Has(DetStage::kSort)) << epoch.epoch;
    EXPECT_TRUE(epoch.Has(DetStage::kExecute)) << epoch.epoch;
    EXPECT_TRUE(epoch.Has(DetStage::kCommit)) << epoch.epoch;
    EXPECT_EQ(epoch.scheme, "nezha");
  }
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto run_t = run(threads);
    const DivergenceReport report =
        analysis::DiffCheckpoints(reference, run_t);
    EXPECT_FALSE(report.diverged)
        << "threads=" << threads << ": " << report.summary;
  }
}

// The serial baseline records its own kExecute/kCommit overlay encodings;
// two identical runs must match, and serial-vs-nezha state roots agreeing
// is already covered elsewhere.
TEST_F(DeterminismTest, SerialBaselineFullNodeIsSelfConsistent) {
  auto run = [] {
    DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
    det.Clear();
    SimulationConfig config;
    config.node.scheme = SchemeKind::kSerial;
    config.workload.num_accounts = 200;
    config.block_size = 40;
    config.block_concurrency = 2;
    config.epochs = 2;
    config.seed = 13;
    auto summary = RunSimulation(config);
    EXPECT_TRUE(summary.ok());
    return det.Snapshot();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 2u);
  for (const EpochCheckpoints& epoch : a) {
    EXPECT_TRUE(epoch.Has(DetStage::kExecute)) << epoch.epoch;
    EXPECT_TRUE(epoch.Has(DetStage::kCommit)) << epoch.epoch;
  }
  const DivergenceReport report = analysis::DiffCheckpoints(a, b);
  EXPECT_FALSE(report.diverged) << report.summary;
}

// ---------- recorder mechanics ----------

TEST_F(DeterminismTest, DisabledRecorderRecordsNothing) {
  DetCheckpointRecorder recorder(8);
  recorder.SetEnabled(false);
  recorder.BeginEpoch(1, "test");
  recorder.Record(DetStage::kSort, "payload");
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST_F(DeterminismTest, RecordWithoutOpenEpochIsANoOp) {
  DetCheckpointRecorder recorder(8);
  recorder.SetEnabled(true);
  recorder.Record(DetStage::kSort, "payload");
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST_F(DeterminismTest, RingShedsOldestEpochs) {
  DetCheckpointRecorder recorder(4);
  recorder.SetEnabled(true);
  for (EpochId epoch = 1; epoch <= 6; ++epoch) {
    recorder.BeginEpoch(epoch, "test");
    recorder.Record(DetStage::kSort, "e" + std::to_string(epoch));
  }
  const auto snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(snapshot[i].epoch, i + 3);
  }
  EXPECT_FALSE(recorder.Find(1, "test").has_value());
  EXPECT_TRUE(recorder.Find(6, "test").has_value());
}

TEST_F(DeterminismTest, ReopeningAnEpochReusesItsSlot) {
  DetCheckpointRecorder recorder(8);
  recorder.SetEnabled(true);
  recorder.BeginEpoch(1, "test");
  recorder.Record(DetStage::kSort, "sort-bytes");
  recorder.BeginEpoch(2, "test");
  recorder.Record(DetStage::kSort, "other");
  recorder.BeginEpoch(1, "test");  // multi-phase pipelines re-open
  recorder.Record(DetStage::kCommit, "commit-bytes");
  const auto record = recorder.Find(1, "test");
  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->Has(DetStage::kSort));
  EXPECT_TRUE(record->Has(DetStage::kCommit));
  EXPECT_EQ(recorder.Snapshot().size(), 2u);
}

TEST_F(DeterminismTest, SameEpochDifferentSchemesKeepSeparateRecords) {
  DetCheckpointRecorder recorder(8);
  recorder.SetEnabled(true);
  recorder.BeginEpoch(1, "nezha");
  recorder.Record(DetStage::kSort, "nezha-schedule");
  recorder.BeginEpoch(1, "occ");
  recorder.Record(DetStage::kSort, "occ-schedule");
  const auto nezha = recorder.Find(1, "nezha");
  const auto occ = recorder.Find(1, "occ");
  ASSERT_TRUE(nezha.has_value());
  ASSERT_TRUE(occ.has_value());
  EXPECT_NE(nezha->Digest(DetStage::kSort), occ->Digest(DetStage::kSort));
}

TEST_F(DeterminismTest, CaptureModeRetainsCanonicalEncodings) {
  DetCheckpointRecorder recorder(8);
  recorder.SetEnabled(true);
  recorder.BeginEpoch(1, "test");
  recorder.Record(DetStage::kSort, "digest-only");
  recorder.SetCapture(true);
  recorder.BeginEpoch(2, "test");
  recorder.Record(DetStage::kSort, "captured-bytes");
  EXPECT_TRUE(recorder.Find(1, "test")->Canonical(DetStage::kSort).empty());
  EXPECT_EQ(recorder.Find(2, "test")->Canonical(DetStage::kSort),
            "captured-bytes");
}

TEST_F(DeterminismTest, FirstDifferingLineReportsOneBasedLine) {
  std::string la, lb;
  EXPECT_EQ(analysis::FirstDifferingLine("a\nb\nc", "a\nb\nc", &la, &lb), 0u);
  EXPECT_EQ(analysis::FirstDifferingLine("a\nb\nc", "a\nx\nc", &la, &lb), 2u);
  EXPECT_EQ(la, "b");
  EXPECT_EQ(lb, "x");
  EXPECT_EQ(analysis::FirstDifferingLine("a\nb", "a\nb\nc", &la, &lb), 3u);
  EXPECT_EQ(la, "<missing>");
  EXPECT_EQ(lb, "c");
}

TEST_F(DeterminismTest, DiffReportsEpochPresentOnOneSideOnly) {
  EpochCheckpoints only_a;
  only_a.epoch = 5;
  const DivergenceReport report = analysis::DiffCheckpoints({only_a}, {});
  EXPECT_TRUE(report.diverged);
  EXPECT_EQ(report.epoch, 5u);
  EXPECT_NE(report.summary.find("only on side A"), std::string::npos);
}

// The consensus sims record kConsensus under (epoch 0, "<sim>-sim"): two
// identical runs must digest identically; different seeds must not.
TEST_F(DeterminismTest, ConsensusSimRecordIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
    det.Clear();
    OhieSimConfig config;
    config.num_chains = 2;
    config.num_nodes = 3;
    config.mean_block_interval_ms = 200;
    config.duration_ms = 5'000;
    config.seed = seed;
    OhieSimulation sim(config);
    sim.Run();
    const auto record = det.Find(0, "ohie-sim");
    EXPECT_TRUE(record.has_value());
    return record.value_or(EpochCheckpoints{});
  };
  const EpochCheckpoints a1 = run(21);
  const EpochCheckpoints a2 = run(21);
  const EpochCheckpoints b = run(22);
  ASSERT_TRUE(a1.Has(DetStage::kConsensus));
  EXPECT_EQ(a1.Digest(DetStage::kConsensus), a2.Digest(DetStage::kConsensus));
  EXPECT_NE(a1.Digest(DetStage::kConsensus), b.Digest(DetStage::kConsensus));
}

}  // namespace
}  // namespace nezha
