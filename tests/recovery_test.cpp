// Crash-recovery and mempool tests: reloading state/ledger from the KV
// store, root cross-checks, corruption detection, commit-journal
// roll-forward, and transaction-pool behaviour.
#include <gtest/gtest.h>

#include <atomic>

#include "common/thread_pool.h"
#include "fault/fault.h"
#include "node/commit_journal.h"
#include "node/full_node.h"
#include "node/mempool.h"
#include "obs/metrics.h"
#include "vm/smallbank.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

// ---------- StateDB recovery ----------

TEST(StateRecoveryTest, RoundTripsThroughKV) {
  KVStore kv;
  {
    StateDB db(&kv);
    db.Set(Address(1), 100);
    db.Set(Address(999), -5);
    ASSERT_TRUE(db.Flush().ok());
  }
  StateDB recovered(&kv);
  ASSERT_TRUE(recovered.LoadFromStorage().ok());
  EXPECT_EQ(recovered.Get(Address(1)), 100);
  EXPECT_EQ(recovered.Get(Address(999)), -5);
  EXPECT_EQ(recovered.Size(), 2u);
}

TEST(StateRecoveryTest, RecoveredRootMatchesOriginal) {
  KVStore kv;
  Hash256 original;
  {
    StateDB db(&kv);
    for (std::uint64_t i = 0; i < 500; ++i) {
      db.Set(Address(i), static_cast<StateValue>(i * 7));
    }
    ASSERT_TRUE(db.Flush().ok());
    original = db.RootHash();
  }
  StateDB recovered(&kv);
  ASSERT_TRUE(recovered.LoadFromStorage().ok());
  EXPECT_EQ(recovered.RootHash(), original);
}

TEST(StateRecoveryTest, UnflushedWritesAreLost) {
  KVStore kv;
  {
    StateDB db(&kv);
    db.Set(Address(1), 1);
    ASSERT_TRUE(db.Flush().ok());
    db.Set(Address(2), 2);  // never flushed: the "crash" loses it
  }
  StateDB recovered(&kv);
  ASSERT_TRUE(recovered.LoadFromStorage().ok());
  EXPECT_EQ(recovered.Get(Address(1)), 1);
  EXPECT_EQ(recovered.Get(Address(2)), 0);
}

TEST(StateRecoveryTest, RequiresKVAndEmptyDB) {
  StateDB no_kv;
  EXPECT_FALSE(no_kv.LoadFromStorage().ok());

  KVStore kv;
  StateDB db(&kv);
  db.Set(Address(1), 1);
  EXPECT_FALSE(db.LoadFromStorage().ok());  // not empty
}

TEST(StateRecoveryTest, DetectsCorruptRecord) {
  KVStore kv;
  {
    StateDB db(&kv);
    db.Set(Address(1), 1);
    ASSERT_TRUE(db.Flush().ok());
  }
  // Truncate the stored value.
  auto it = kv.NewIterator("s/", "s0");
  ASSERT_TRUE(it.Valid());
  kv.Put(it.key(), "short");
  StateDB recovered(&kv);
  EXPECT_EQ(recovered.LoadFromStorage().code(), StatusCode::kCorruption);
}

// ---------- ledger recovery ----------

TEST(LedgerRecoveryTest, ReloadsChainsAndRoots) {
  KVStore kv;
  Hash256 tip0, root;
  {
    ParallelChainLedger ledger(2, &kv);
    Transaction tx;
    tx.payload = MakeSmallBankCall(SmallBankOp::kGetBalance, {1});
    ASSERT_TRUE(ledger.AppendBlock(ledger.BuildBlock(0, 1, {tx})).ok());
    ASSERT_TRUE(ledger.AppendBlock(ledger.BuildBlock(1, 1, {})).ok());
    root.bytes[0] = 0x42;
    ledger.CommitEpochRoot(1, root);
    ASSERT_TRUE(ledger.AppendBlock(ledger.BuildBlock(0, 2, {})).ok());
    tip0 = ledger.ChainTip(0);
  }
  ParallelChainLedger recovered(2, &kv);
  ASSERT_TRUE(recovered.LoadFromStorage().ok());
  EXPECT_EQ(recovered.ChainHeight(0), 2u);
  EXPECT_EQ(recovered.ChainHeight(1), 1u);
  EXPECT_EQ(recovered.ChainTip(0), tip0);
  EXPECT_EQ(recovered.StateRootBefore(2), root);
}

TEST(LedgerRecoveryTest, DetectsTamperedBlock) {
  KVStore kv;
  {
    ParallelChainLedger ledger(1, &kv);
    ASSERT_TRUE(ledger.AppendBlock(ledger.BuildBlock(0, 1, {})).ok());
  }
  // Corrupt the stored block bytes.
  auto it = kv.NewIterator("b/", "b0");
  ASSERT_TRUE(it.Valid());
  std::string bytes = it.value();
  bytes[bytes.size() / 2] ^= 0x01;
  kv.Put(it.key(), bytes);

  ParallelChainLedger recovered(1, &kv);
  EXPECT_FALSE(recovered.LoadFromStorage().ok());
}

TEST(LedgerRecoveryTest, RejectsNonEmptyLedger) {
  KVStore kv;
  ParallelChainLedger ledger(1, &kv);
  ASSERT_TRUE(ledger.AppendBlock(ledger.BuildBlock(0, 1, {})).ok());
  EXPECT_FALSE(ledger.LoadFromStorage().ok());
}

// ---------- full node recovery ----------

TEST(NodeRecoveryTest, RestartContinuesIdenticallyToUnbrokenRun) {
  // Run A: 4 epochs straight through. Run B: 2 epochs, "crash", recover a
  // fresh node from storage, process epochs 3-4. Final roots must match.
  const auto make_config = [] {
    NodeConfig config;
    config.scheme = SchemeKind::kNezha;
    config.worker_threads = 2;
    config.max_chains = 2;
    return config;
  };
  const auto drive = [](FullNode& node, SmallBankWorkload& workload,
                        EpochId from, EpochId to) -> Hash256 {
    Hash256 root{};
    for (EpochId epoch = from; epoch <= to; ++epoch) {
      for (ChainId chain = 0; chain < 2; ++chain) {
        Block block =
            node.ledger().BuildBlock(chain, epoch, workload.MakeBatch(30));
        EXPECT_TRUE(node.ledger().AppendBlock(std::move(block)).ok());
      }
      auto batch = node.ledger().SealEpoch(epoch);
      EXPECT_TRUE(batch.ok());
      auto report = node.ProcessEpoch(*batch);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      root = report->state_root;
    }
    return root;
  };
  WorkloadConfig wl;
  wl.num_accounts = 200;
  wl.skew = 0.6;

  // Continuous run.
  KVStore kv_a;
  FullNode node_a(make_config(), &kv_a);
  SmallBankWorkload workload_a(wl, 77);
  SmallBankWorkload::InitAccounts(node_a.state(), wl.num_accounts, 100, 100);
  ASSERT_TRUE(node_a.state().Flush().ok());
  node_a.ledger().CommitEpochRoot(0, node_a.state().RootHash());
  const Hash256 continuous = drive(node_a, workload_a, 1, 4);

  // Crash-and-recover run (same workload stream).
  KVStore kv_b;
  SmallBankWorkload workload_b(wl, 77);
  {
    FullNode node_b(make_config(), &kv_b);
    SmallBankWorkload::InitAccounts(node_b.state(), wl.num_accounts, 100, 100);
    ASSERT_TRUE(node_b.state().Flush().ok());
    node_b.ledger().CommitEpochRoot(0, node_b.state().RootHash());
    drive(node_b, workload_b, 1, 2);
  }  // crash: everything in memory is gone
  FullNode recovered(make_config(), &kv_b);
  ASSERT_TRUE(recovered.RecoverFromStorage().ok());
  const Hash256 resumed = drive(recovered, workload_b, 3, 4);

  EXPECT_EQ(resumed, continuous);
}

TEST(NodeRecoveryTest, DetectsStateLedgerMismatch) {
  KVStore kv;
  {
    FullNode node(NodeConfig{}, &kv);
    node.state().Set(Address(1), 1);
    ASSERT_TRUE(node.state().Flush().ok());
    node.ledger().CommitEpochRoot(0, node.state().RootHash());
  }
  // Tamper with the persisted state so it no longer matches the root.
  auto it = kv.NewIterator("s/", "s0");
  ASSERT_TRUE(it.Valid());
  std::string bytes = it.value();
  bytes[7] = static_cast<char>(bytes[7] + 1);
  kv.Put(it.key(), bytes);

  FullNode recovered(NodeConfig{}, &kv);
  EXPECT_EQ(recovered.RecoverFromStorage().code(), StatusCode::kCorruption);
}

// ---------- commit journal ----------

TEST(CommitJournalTest, SerializeRoundTrip) {
  CommitJournal journal;
  journal.epoch = 7;
  journal.state_root.bytes[0] = 0xab;
  journal.receipt_root.bytes[31] = 0xcd;
  journal.block_ids.resize(2);
  journal.block_ids[1].bytes[5] = 0x11;
  journal.chain_tips.emplace_back(0, Hash256{});
  journal.chain_tips.emplace_back(3, journal.block_ids[1]);
  journal.redo = "opaque redo bytes";

  auto decoded = CommitJournal::Deserialize(journal.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 7u);
  EXPECT_EQ(decoded->state_root, journal.state_root);
  EXPECT_EQ(decoded->receipt_root, journal.receipt_root);
  EXPECT_EQ(decoded->block_ids, journal.block_ids);
  EXPECT_EQ(decoded->chain_tips, journal.chain_tips);
  EXPECT_EQ(decoded->redo, journal.redo);
  // Header() is the journal minus the (bulky) redo payload.
  auto header = CommitJournal::Deserialize(journal.Header().Serialize());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->epoch, 7u);
  EXPECT_TRUE(header->redo.empty());
}

TEST(CommitJournalTest, EveryByteFlipIsDetected) {
  CommitJournal journal;
  journal.epoch = 3;
  journal.redo = "redo";
  journal.block_ids.resize(1);
  const std::string bytes = journal.Serialize();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutant = bytes;
    mutant[i] ^= 0x01;
    EXPECT_EQ(CommitJournal::Deserialize(mutant).status().code(),
              StatusCode::kCorruption)
        << "flip at offset " << i;
  }
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(CommitJournal::Deserialize(bytes.substr(0, len)).ok())
        << "truncated to " << len;
  }
}

TEST(NodeRecoveryTest, PendingJournalRollsForwardAfterCrash) {
  // Crash between the journal write and the commit batch; the restarted
  // node must report a roll-forward and land on the committed state.
  NodeConfig config;
  config.max_chains = 1;
  config.worker_threads = 1;
  WorkloadConfig wl;
  wl.num_accounts = 60;

  KVStore kv;
  {
    FullNode node(config, &kv);
    SmallBankWorkload workload(wl, 9);
    SmallBankWorkload::InitAccounts(node.state(), wl.num_accounts, 100, 100);
    ASSERT_TRUE(node.state().Flush().ok());
    node.ledger().CommitEpochRoot(0, node.state().RootHash());
    Block block = node.ledger().BuildBlock(0, 1, workload.MakeBatch(25));
    ASSERT_TRUE(node.ledger().AppendBlock(std::move(block)).ok());
    auto batch = node.ledger().SealEpoch(1);
    ASSERT_TRUE(batch.ok());
    fault::ScopedPlan armed(
        fault::Plan().CrashAt(fault::sites::kCommitAfterJournal));
    auto report = node.ProcessEpoch(*batch);
    ASSERT_FALSE(report.ok());
    ASSERT_TRUE(fault::IsInjectedCrash(report.status()));
  }
  ASSERT_TRUE(kv.Contains(kPendingJournalKey));

  FullNode recovered(config, &kv);
  auto rec = recovered.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->rolled_forward);
  EXPECT_EQ(rec->last_committed, EpochId(1));
  EXPECT_EQ(recovered.state().RootHash(), rec->state_root);
  EXPECT_FALSE(kv.Contains(kPendingJournalKey));  // consumed by roll-forward
  EXPECT_TRUE(kv.Contains(kLastJournalKey));
}

TEST(NodeRecoveryTest, CorruptPendingJournalDetected) {
  KVStore kv;
  {
    FullNode node(NodeConfig{}, &kv);
    node.state().Set(Address(1), 1);
    ASSERT_TRUE(node.state().Flush().ok());
    node.ledger().CommitEpochRoot(0, node.state().RootHash());
  }
  kv.Put(kPendingJournalKey, "definitely not a journal");
  FullNode recovered(NodeConfig{}, &kv);
  EXPECT_EQ(recovered.Recover().status().code(), StatusCode::kCorruption);
}

TEST(NodeRecoveryTest, CorruptLastJournalDetected) {
  KVStore kv;
  {
    FullNode node(NodeConfig{}, &kv);
    SmallBankWorkload workload(WorkloadConfig{}, 1);
    SmallBankWorkload::InitAccounts(node.state(), 50, 100, 100);
    ASSERT_TRUE(node.state().Flush().ok());
    node.ledger().CommitEpochRoot(0, node.state().RootHash());
    Block block = node.ledger().BuildBlock(0, 1, workload.MakeBatch(10));
    ASSERT_TRUE(node.ledger().AppendBlock(std::move(block)).ok());
    auto batch = node.ledger().SealEpoch(1);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(node.ProcessEpoch(*batch).ok());
  }
  auto bytes = kv.Get(kLastJournalKey);
  ASSERT_TRUE(bytes.ok());
  std::string mutant = *bytes;
  mutant[mutant.size() / 2] ^= 0x01;
  kv.Put(kLastJournalKey, mutant);
  FullNode recovered(NodeConfig{}, &kv);
  EXPECT_EQ(recovered.Recover().status().code(), StatusCode::kCorruption);
}

// ---------- mempool ----------

Transaction TxWithNonce(std::uint64_t nonce) {
  Transaction tx;
  tx.nonce = nonce;
  tx.payload = MakeSmallBankCall(SmallBankOp::kGetBalance, {nonce});
  return tx;
}

TEST(MempoolTest, FifoOrder) {
  Mempool pool;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(pool.Add(TxWithNonce(i)).ok());
  }
  const auto batch = pool.TakeBatch(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].nonce, 1u);
  EXPECT_EQ(batch[2].nonce, 3u);
  EXPECT_EQ(pool.PendingCount(), 2u);
}

TEST(MempoolTest, RejectsDuplicates) {
  Mempool pool;
  ASSERT_TRUE(pool.Add(TxWithNonce(1)).ok());
  EXPECT_EQ(pool.Add(TxWithNonce(1)).code(), StatusCode::kAlreadyExists);
  // Still deduplicated after the tx leaves in a batch (until committed).
  pool.TakeBatch(1);
  EXPECT_EQ(pool.Add(TxWithNonce(1)).code(), StatusCode::kAlreadyExists);
}

TEST(MempoolTest, DuplicateRejectIsIdempotentAndCounted) {
  obs::Counter* duplicates =
      obs::Registry().GetCounter("nezha_mempool_duplicate_total");
  const std::uint64_t before = duplicates->Value();

  Mempool pool;
  ASSERT_TRUE(pool.Add(TxWithNonce(7)).ok());
  ASSERT_TRUE(pool.Add(TxWithNonce(8)).ok());
  const std::size_t depth = pool.PendingCount();

  // Re-submitting the same transaction N times rejects every attempt,
  // bumps the counter per attempt, and leaves the pool untouched.
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(pool.Add(TxWithNonce(7)).code(), StatusCode::kAlreadyExists);
  }
  EXPECT_EQ(duplicates->Value(), before + 3);
  EXPECT_EQ(pool.PendingCount(), depth);

  // FIFO order is preserved — the duplicate did not re-queue or reorder.
  const auto batch = pool.TakeBatch(10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].nonce, 7u);
  EXPECT_EQ(batch[1].nonce, 8u);
}

TEST(MempoolTest, CapacityBound) {
  Mempool pool(2);
  ASSERT_TRUE(pool.Add(TxWithNonce(1)).ok());
  ASSERT_TRUE(pool.Add(TxWithNonce(2)).ok());
  EXPECT_EQ(pool.Add(TxWithNonce(3)).code(), StatusCode::kOutOfRange);
}

TEST(MempoolTest, RemoveCommittedReleasesDedup) {
  Mempool pool;
  const Transaction tx = TxWithNonce(1);
  ASSERT_TRUE(pool.Add(tx).ok());
  const Hash256 id = tx.Id();
  pool.RemoveCommitted(std::vector<Hash256>{id});
  EXPECT_EQ(pool.PendingCount(), 0u);
  EXPECT_FALSE(pool.Contains(id));
  // Re-submission after commitment is allowed again.
  EXPECT_TRUE(pool.Add(tx).ok());
}

TEST(MempoolTest, RemoveCommittedDropsPending) {
  Mempool pool;
  const Transaction keep = TxWithNonce(1);
  const Transaction drop = TxWithNonce(2);
  ASSERT_TRUE(pool.Add(keep).ok());
  ASSERT_TRUE(pool.Add(drop).ok());
  pool.RemoveCommitted(std::vector<Hash256>{drop.Id()});
  const auto batch = pool.TakeBatch(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].nonce, 1u);
}

TEST(MempoolTest, ConcurrentProducersAndConsumer) {
  Mempool pool;
  ThreadPool workers(4);
  std::atomic<std::size_t> taken{0};
  workers.ParallelFor(0, 1000, [&](std::size_t i) {
    if (i % 10 == 9) {
      taken += pool.TakeBatch(5).size();
    } else {
      (void)pool.Add(TxWithNonce(i));
    }
  });
  taken += pool.TakeBatch(10'000).size();
  EXPECT_EQ(taken.load(), 900u);  // every admitted tx comes out exactly once
}

}  // namespace
}  // namespace nezha
