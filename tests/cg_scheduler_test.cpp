// Tests for the conflict-graph baseline (Fabric++-style): pairwise edge
// construction, Johnson-based cycle removal, serial topological commit
// order, and the budget-exhaustion path that models the paper's OOM.
#include <gtest/gtest.h>

#include <algorithm>

#include "cc/cg/cg_scheduler.h"
#include "runtime/concurrent_executor.h"
#include "runtime/serializability.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

ReadWriteSet RW(std::vector<std::uint64_t> reads,
                std::vector<std::uint64_t> writes) {
  ReadWriteSet rw;
  for (std::uint64_t a : reads) rw.reads.push_back(Address(a));
  for (std::uint64_t a : writes) {
    rw.writes.push_back(Address(a));
    rw.write_values.push_back(1);
  }
  std::sort(rw.reads.begin(), rw.reads.end());
  std::sort(rw.writes.begin(), rw.writes.end());
  return rw;
}

TEST(CgSchedulerTest, NonConflictingAllCommitSerially) {
  const std::vector<ReadWriteSet> rwsets = {RW({}, {1}), RW({}, {2}),
                                            RW({}, {3})};
  CGScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted(), 0u);
  // CG commits serially: one group per transaction.
  EXPECT_EQ(schedule->groups.size(), 3u);
  for (const auto& g : schedule->groups) EXPECT_EQ(g.size(), 1u);
}

TEST(CgSchedulerTest, AcyclicDependenciesKeptInOrder) {
  // T0 reads A1 which T1 writes: rw edge T0 -> T1; no cycle, no aborts.
  const std::vector<ReadWriteSet> rwsets = {RW({1}, {}), RW({}, {1})};
  CGScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted(), 0u);
  EXPECT_LT(schedule->sequence[0], schedule->sequence[1]);
  EXPECT_EQ(scheduler.metrics().graph_edges, 1u);
}

TEST(CgSchedulerTest, CycleForcesAbort) {
  // T0 reads A1 / writes A2; T1 reads A2 / writes A1: classic 2-cycle.
  const std::vector<ReadWriteSet> rwsets = {RW({1}, {2}), RW({2}, {1})};
  CGScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted(), 1u);
  EXPECT_GE(scheduler.metrics().cycles_found, 1u);
  const auto report = ValidateScheduleInvariants(*schedule, rwsets);
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(CgSchedulerTest, VictimBreaksMostCycles) {
  // T1 participates in two cycles (with T0 and with T2); aborting it alone
  // resolves both, so the greedy victim choice must pick it.
  const std::vector<ReadWriteSet> rwsets = {
      RW({1}, {2}),      // T0: cycle with T1 via A1/A2
      RW({2, 4}, {1, 3}),// T1: hub
      RW({3}, {4}),      // T2: cycle with T1 via A3/A4
  };
  CGScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->NumAborted(), 1u);
  EXPECT_TRUE(schedule->aborted[1]);
}

TEST(CgSchedulerTest, RevertedTxsAbortImmediately) {
  std::vector<ReadWriteSet> rwsets = {RW({}, {1}), RW({}, {2})};
  rwsets[0].ok = false;
  CGScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->aborted[0]);
  EXPECT_FALSE(schedule->aborted[1]);
}

TEST(CgSchedulerTest, BudgetExhaustionDegradesGracefully) {
  // A dense all-RMW hotspot produces factorially many circuits; with a tiny
  // budget the scheduler must flag exhaustion and still emit a valid,
  // acyclic (heavily aborted) schedule.
  std::vector<ReadWriteSet> rwsets;
  for (int i = 0; i < 12; ++i) rwsets.push_back(RW({1, 2}, {1, 2}));
  CGOptions options;
  options.max_circuits = 5;
  CGScheduler scheduler(options);
  auto schedule = scheduler.BuildSchedule(rwsets);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(scheduler.metrics().resource_exhausted);
  EXPECT_GE(schedule->NumAborted(), 10u);
  const auto report = ValidateScheduleInvariants(*schedule, rwsets);
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST(CgSchedulerTest, MetricsPhasesPopulated) {
  WorkloadConfig config;
  config.num_accounts = 100;
  config.skew = 0.8;
  SmallBankWorkload workload(config, 31);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 1000, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(100);
  const auto exec = ExecuteBatchSerial(snap, txs);

  CGScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(schedule.ok());
  const SchedulerMetrics& m = scheduler.metrics();
  EXPECT_GT(m.construction_us, 0);
  EXPECT_GT(m.sorting_us, 0);
  EXPECT_EQ(m.graph_vertices, 100u);
  EXPECT_GT(m.graph_edges, 0u);
}

TEST(CgSchedulerTest, ScheduleIsSerializableOnContendedWorkload) {
  WorkloadConfig config;
  config.num_accounts = 60;
  config.skew = 0.9;
  SmallBankWorkload workload(config, 33);
  StateDB db;
  SmallBankWorkload::InitAccounts(db, config.num_accounts, 1000, 1000);
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(120);
  const auto exec = ExecuteBatchSerial(snap, txs);

  CGScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(schedule.ok());
  const auto structural = ValidateScheduleInvariants(*schedule, exec.rwsets);
  EXPECT_TRUE(structural.ok) << structural.violation;
  const auto replay =
      ValidateByReplay(snap, txs, *schedule, exec.rwsets);
  EXPECT_TRUE(replay.ok) << replay.violation;
}

TEST(CgSchedulerTest, DeterministicAcrossRuns) {
  WorkloadConfig config;
  config.num_accounts = 50;
  config.skew = 1.0;
  SmallBankWorkload workload(config, 35);
  StateDB db;
  const StateSnapshot snap = db.MakeSnapshot(0);
  const auto txs = workload.MakeBatch(80);
  const auto exec = ExecuteBatchSerial(snap, txs);

  CGScheduler s1, s2;
  auto a = s1.BuildSchedule(exec.rwsets);
  auto b = s2.BuildSchedule(exec.rwsets);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sequence, b->sequence);
  EXPECT_EQ(a->aborted, b->aborted);
}

}  // namespace
}  // namespace nezha
