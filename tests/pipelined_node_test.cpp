// Differential suite for the cross-epoch pipelined driver
// (node/pipeline.h): the pipelined node must be byte-equivalent to the
// batch driver — not just "same final state" but identical per-epoch stage
// digests (kAcg/kRank/kSort/kExecute/kCommit), state roots, receipt roots
// and abort outcomes — across seeds, pipeline depths, worker-thread counts
// and schemes, with the serializability oracle AND the determinism
// checkpoints forced on for every run.
//
//   * Matrix: seeds x {batch, pipelined depth 1/2/4} x {1,4,8} worker
//     threads under Nezha, with the incremental block-by-block ACG feed.
//   * Incremental-ACG off, the non-Nezha schemes, and the Serial
//     passthrough each get their own differential case.
//   * Durable mode: a KV-backed batch node and a KV-backed pipelined node
//     fed the same workload must end with byte-identical KV checkpoints —
//     same journals, same commit batches, same receipts, same roots.
//   * Driver mechanics: backpressure/overlap accounting and
//     submit-after-drain rejection.
//
// This test runs in the TSan CI job as well: the pipeline's prepare and
// commit threads race by design (handoff condvar, shared ThreadPool,
// overlapping obs windows), so every run here exercises that interleaving
// under the race detector.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/det_checkpoint.h"
#include "node/full_node.h"
#include "node/pipeline.h"
#include "node/simulation.h"
#include "storage/kvstore.h"
#include "workload/smallbank_workload.h"

namespace nezha {
namespace {

using analysis::DetCheckpointRecorder;
using analysis::DetStage;
using analysis::DivergenceReport;
using analysis::EpochCheckpoints;

class PipelinedNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
    det.SetEnabled(true);
    det.SetCapture(true);
    det.PerturbStageForTest(std::nullopt);
    det.Clear();
    // Unlike the determinism matrix (which trades the oracle for volume),
    // every pipelined run here re-proves serializability: an overlap bug
    // that produced a wrong-but-internally-consistent schedule would
    // surface here even if both drivers drifted together.
    SetScheduleVerification(true);
  }
  void TearDown() override {
    DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
    det.PerturbStageForTest(std::nullopt);
    det.SetCapture(false);
    det.SetEnabled(std::nullopt);
    det.Clear();
    SetScheduleVerification(std::nullopt);
  }
};

SimulationConfig MakeConfig(SchemeKind scheme, std::size_t threads,
                            std::uint64_t seed, std::size_t epochs = 5) {
  SimulationConfig config;
  config.node.scheme = scheme;
  config.node.worker_threads = threads;
  config.workload.num_accounts = 150;
  config.workload.skew = 0.9;
  config.block_size = 40;
  config.block_concurrency = 2;
  config.epochs = epochs;
  config.seed = seed;
  return config;
}

struct RunResult {
  SimulationSummary summary;
  std::vector<EpochCheckpoints> checkpoints;
};

RunResult RunBatch(const SimulationConfig& config) {
  DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
  det.Clear();
  auto summary = RunSimulation(config);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  RunResult result;
  if (summary.ok()) result.summary = std::move(summary.value());
  result.checkpoints = det.Snapshot();
  return result;
}

RunResult RunPipelined(const SimulationConfig& config, std::size_t depth,
                       bool incremental_acg = true,
                       PipelineStats* stats = nullptr) {
  DetCheckpointRecorder& det = DetCheckpointRecorder::Global();
  det.Clear();
  auto summary =
      RunSimulationPipelined(config, depth, incremental_acg, stats);
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  RunResult result;
  if (summary.ok()) result.summary = std::move(summary.value());
  result.checkpoints = det.Snapshot();
  return result;
}

/// The equivalence oracle: stage digests diff clean AND every per-epoch
/// report field that attests an output (counts, roots, abort outcomes)
/// matches exactly.
void ExpectEquivalent(const RunResult& reference, const RunResult& other,
                      const std::string& label) {
  const DivergenceReport report =
      analysis::DiffCheckpoints(reference.checkpoints, other.checkpoints);
  EXPECT_FALSE(report.diverged) << label << ": " << report.summary;
  ASSERT_EQ(reference.summary.reports.size(), other.summary.reports.size())
      << label;
  for (std::size_t i = 0; i < reference.summary.reports.size(); ++i) {
    const EpochReport& a = reference.summary.reports[i];
    const EpochReport& b = other.summary.reports[i];
    EXPECT_EQ(a.epoch, b.epoch) << label;
    EXPECT_EQ(a.block_concurrency, b.block_concurrency) << label;
    EXPECT_EQ(a.txs, b.txs) << label << " epoch " << a.epoch;
    EXPECT_EQ(a.committed, b.committed) << label << " epoch " << a.epoch;
    EXPECT_EQ(a.aborted, b.aborted) << label << " epoch " << a.epoch;
    EXPECT_EQ(a.max_commit_group, b.max_commit_group)
        << label << " epoch " << a.epoch;
    EXPECT_EQ(a.state_root, b.state_root) << label << " epoch " << a.epoch;
    EXPECT_EQ(a.receipt_root, b.receipt_root)
        << label << " epoch " << a.epoch;
  }
}

// Seeds x worker threads x pipeline depths under Nezha with the incremental
// ACG feed: every pipelined run must be stage-digest- and report-identical
// to the batch driver at the same seed and thread count.
TEST_F(PipelinedNodeTest, NezhaDifferentialMatrix) {
  const std::uint64_t kSeeds[] = {3, 11, 29};
  const std::size_t kThreads[] = {1, 4, 8};
  const std::size_t kDepths[] = {1, 2, 4};
  for (const std::uint64_t seed : kSeeds) {
    for (const std::size_t threads : kThreads) {
      const SimulationConfig config =
          MakeConfig(SchemeKind::kNezha, threads, seed);
      const RunResult reference = RunBatch(config);
      ASSERT_EQ(reference.checkpoints.size(), config.epochs);
      for (const EpochCheckpoints& epoch : reference.checkpoints) {
        EXPECT_TRUE(epoch.Has(DetStage::kAcg)) << epoch.epoch;
        EXPECT_TRUE(epoch.Has(DetStage::kRank)) << epoch.epoch;
        EXPECT_TRUE(epoch.Has(DetStage::kSort)) << epoch.epoch;
        EXPECT_TRUE(epoch.Has(DetStage::kExecute)) << epoch.epoch;
        EXPECT_TRUE(epoch.Has(DetStage::kCommit)) << epoch.epoch;
        EXPECT_EQ(epoch.scheme, "nezha");
      }
      for (const std::size_t depth : kDepths) {
        const RunResult pipelined = RunPipelined(config, depth);
        ExpectEquivalent(reference, pipelined,
                         "seed=" + std::to_string(seed) +
                             " threads=" + std::to_string(threads) +
                             " depth=" + std::to_string(depth));
      }
    }
  }
}

// The incremental block-by-block ACG feed is an optimization, not a
// semantic switch: turning it off must not change a single digest either.
TEST_F(PipelinedNodeTest, IncrementalAcgDisabledStillMatchesBatch) {
  const SimulationConfig config = MakeConfig(SchemeKind::kNezha, 4, 17);
  const RunResult reference = RunBatch(config);
  const RunResult whole_batch_acg =
      RunPipelined(config, 2, /*incremental_acg=*/false);
  ExpectEquivalent(reference, whole_batch_acg, "incremental_acg=off");
  const RunResult incremental = RunPipelined(config, 2);
  ExpectEquivalent(reference, incremental, "incremental_acg=on");
}

// The prepare/commit split is scheme-agnostic: OCC, CG and
// Nezha-without-reordering ride the same pipeline and must match their
// batch runs.
TEST_F(PipelinedNodeTest, OtherSchemesMatchBatchDriver) {
  const SchemeKind kSchemes[] = {SchemeKind::kOcc, SchemeKind::kCg,
                                 SchemeKind::kNezhaNoReorder};
  for (const SchemeKind scheme : kSchemes) {
    const SimulationConfig config = MakeConfig(scheme, 4, 23);
    const RunResult reference = RunBatch(config);
    const RunResult pipelined = RunPipelined(config, 2);
    ExpectEquivalent(reference, pipelined, SchemeName(scheme));
  }
}

// Serial has no prepare/commit split; the pipeline must degrade to the
// batch driver (whole epochs on the commit thread) without changing
// anything.
TEST_F(PipelinedNodeTest, SerialPassthroughMatchesBatchDriver) {
  const SimulationConfig config = MakeConfig(SchemeKind::kSerial, 1, 5);
  const RunResult reference = RunBatch(config);
  const RunResult pipelined = RunPipelined(config, 2);
  ExpectEquivalent(reference, pipelined, "serial");
}

// Durable mode, the strongest oracle available: a KV-backed batch node and
// a KV-backed pipelined node fed the same workload must end with
// byte-identical KV checkpoints — every journal record, commit batch,
// block, receipt and root record included. In-order commit on the pipeline
// thread is what makes the journal chain line up.
TEST_F(PipelinedNodeTest, DurableCommitStreamMatchesBatchDriver) {
  NodeConfig node_config;
  node_config.scheme = SchemeKind::kNezha;
  node_config.worker_threads = 4;
  node_config.max_chains = 2;
  WorkloadConfig wl;
  wl.num_accounts = 120;
  wl.skew = 0.9;
  constexpr EpochId kEpochs = 4;
  constexpr std::size_t kBlockTxs = 25;

  const auto init = [&wl](FullNode& node) {
    SmallBankWorkload::InitAccounts(node.state(), wl.num_accounts, 100, 100);
    ASSERT_TRUE(node.state().Flush().ok());
    node.ledger().CommitEpochRoot(0, node.state().RootHash());
  };

  KVStore kv_batch;
  Hash256 batch_final_root{};
  {
    FullNode node(node_config, &kv_batch);
    SmallBankWorkload workload(wl, 77);
    init(node);
    for (EpochId epoch = 1; epoch <= kEpochs; ++epoch) {
      for (ChainId chain = 0; chain < 2; ++chain) {
        Block block = node.ledger().BuildBlock(chain, epoch,
                                               workload.MakeBatch(kBlockTxs));
        ASSERT_TRUE(node.ledger().AppendBlock(std::move(block)).ok());
      }
      auto sealed = node.ledger().SealEpoch(epoch);
      ASSERT_TRUE(sealed.ok());
      auto report = node.ProcessEpoch(*sealed);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      batch_final_root = report->state_root;
    }
  }

  KVStore kv_pipelined;
  Hash256 pipelined_final_root{};
  {
    FullNode node(node_config, &kv_pipelined);
    SmallBankWorkload workload(wl, 77);
    init(node);
    PipelineOptions options;
    options.depth = 2;
    EpochPipeline pipeline(node, options);
    for (EpochId epoch = 1; epoch <= kEpochs; ++epoch) {
      std::vector<std::vector<Transaction>> chain_txs(2);
      for (ChainId chain = 0; chain < 2; ++chain) {
        chain_txs[chain] = workload.MakeBatch(kBlockTxs);
      }
      ASSERT_TRUE(pipeline.Submit(epoch, std::move(chain_txs)).ok());
    }
    auto reports = pipeline.Drain();
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_EQ(reports->size(), kEpochs);
    pipelined_final_root = reports->back().state_root;
  }

  EXPECT_EQ(batch_final_root, pipelined_final_root);
  const std::string a = kv_batch.Checkpoint();
  const std::string b = kv_pipelined.Checkpoint();
  EXPECT_TRUE(a == b) << "durable stores differ (" << a.size() << " vs "
                      << b.size() << " checkpoint bytes)";
}

// Driver mechanics: depth-1 backpressure blocks the submitter, reports come
// back in submission order, and the overlap accounting closes sanely.
TEST_F(PipelinedNodeTest, StatsAccountBackpressureAndOverlap) {
  const SimulationConfig config =
      MakeConfig(SchemeKind::kNezha, 2, 13, /*epochs=*/6);
  PipelineStats stats;
  const RunResult run = RunPipelined(config, 1, true, &stats);
  ASSERT_EQ(run.summary.reports.size(), 6u);
  for (std::size_t i = 0; i < run.summary.reports.size(); ++i) {
    EXPECT_EQ(run.summary.reports[i].epoch, EpochId(i + 1));
  }
  EXPECT_EQ(stats.epochs, 6u);
  EXPECT_GT(stats.prepare_us, 0.0);
  EXPECT_GT(stats.commit_us, 0.0);
  // Depth 1 admits one epoch in flight: with six near-instant submissions,
  // at least one must have waited for a commit.
  EXPECT_GE(stats.backpressure_waits, 1u);
  // Overlap is bounded by the committed halves it intersects.
  EXPECT_LE(stats.overlap_us, stats.commit_us);
  EXPECT_LE(stats.tail_us, stats.commit_us);
}

TEST_F(PipelinedNodeTest, SubmitAfterDrainIsRejected) {
  FullNode node(NodeConfig{}, nullptr);
  EpochPipeline pipeline(node, PipelineOptions{});
  auto reports = pipeline.Drain();
  ASSERT_TRUE(reports.ok());
  EXPECT_TRUE(reports->empty());
  const Status s = pipeline.Submit(1, {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace nezha
