// Unit tests for the graph substrate: digraph, Tarjan SCC, Johnson
// elementary circuits, and topological sorting/leveling.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/digraph.h"
#include "graph/johnson.h"
#include "graph/tarjan.h"
#include "graph/toposort.h"

namespace nezha {
namespace {

using Vertex = Digraph::Vertex;

// ---------- Digraph ----------

TEST(DigraphTest, EdgesAndDegrees) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(DigraphTest, DeduplicateSkipsRepeats) {
  Digraph g(2);
  g.AddEdge(0, 1, /*deduplicate=*/true);
  g.AddEdge(0, 1, /*deduplicate=*/true);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(DigraphTest, ReversedFlipsEdges) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_EQ(r.NumEdges(), 2u);
}

// ---------- Tarjan ----------

TEST(TarjanTest, DagHasSingletonComponents) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const auto sccs = TarjanSCC(g);
  EXPECT_EQ(sccs.size(), 4u);
  for (const auto& scc : sccs) EXPECT_EQ(scc.size(), 1u);
  EXPECT_FALSE(HasCycle(g));
}

TEST(TarjanTest, FindsSimpleCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  const auto sccs = TarjanSCC(g);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].size(), 3u);
  EXPECT_TRUE(HasCycle(g));
}

TEST(TarjanTest, MixedComponents) {
  // 0 <-> 1 cycle, 2 -> 3 chain, 4 isolated.
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  const auto sccs = TarjanSCC(g);
  std::multiset<std::size_t> sizes;
  for (const auto& scc : sccs) sizes.insert(scc.size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 1, 1, 2}));
}

TEST(TarjanTest, SelfLoopIsCycle) {
  Digraph g(2);
  g.AddEdge(0, 0);
  EXPECT_TRUE(HasCycle(g));
}

TEST(TarjanTest, DeepChainDoesNotOverflowStack) {
  constexpr std::size_t kDepth = 200'000;
  Digraph g(kDepth);
  for (Vertex v = 0; v + 1 < kDepth; ++v) g.AddEdge(v, v + 1);
  EXPECT_EQ(TarjanSCC(g).size(), kDepth);  // iterative: no stack overflow
}

TEST(TarjanTest, ComponentsCoverAllVerticesExactlyOnce) {
  Rng rng(42);
  Digraph g(100);
  for (int i = 0; i < 300; ++i) {
    g.AddEdge(static_cast<Vertex>(rng.Below(100)),
              static_cast<Vertex>(rng.Below(100)));
  }
  const auto sccs = TarjanSCC(g);
  std::set<Vertex> seen;
  for (const auto& scc : sccs) {
    for (Vertex v : scc) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(seen.size(), 100u);
}

// ---------- Johnson ----------

std::set<std::vector<Vertex>> Canonical(
    const std::vector<std::vector<Vertex>>& circuits) {
  std::set<std::vector<Vertex>> out;
  for (auto c : circuits) {
    // Rotate so the smallest vertex leads (canonical cycle form).
    const auto it = std::min_element(c.begin(), c.end());
    std::rotate(c.begin(), it, c.end());
    out.insert(c);
  }
  return out;
}

TEST(JohnsonTest, NoCyclesInDag) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  const auto result = FindElementaryCircuits(g);
  EXPECT_TRUE(result.circuits.empty());
  EXPECT_FALSE(result.budget_exceeded);
}

TEST(JohnsonTest, SingleTriangle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  const auto result = FindElementaryCircuits(g);
  EXPECT_EQ(Canonical(result.circuits),
            (std::set<std::vector<Vertex>>{{0, 1, 2}}));
}

TEST(JohnsonTest, TwoVertexCycleAndTriangle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  const auto result = FindElementaryCircuits(g);
  EXPECT_EQ(Canonical(result.circuits),
            (std::set<std::vector<Vertex>>{{0, 1}, {0, 1, 2}}));
}

TEST(JohnsonTest, SelfLoopCounts) {
  Digraph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  const auto result = FindElementaryCircuits(g);
  EXPECT_EQ(Canonical(result.circuits),
            (std::set<std::vector<Vertex>>{{0}}));
}

TEST(JohnsonTest, CompleteGraphCircuitCount) {
  // K4 (directed, both directions) has 20 elementary circuits:
  // 6 of length 2, 8 of length 3, 6 of length 4.
  Digraph g(4);
  for (Vertex u = 0; u < 4; ++u) {
    for (Vertex v = 0; v < 4; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  const auto result = FindElementaryCircuits(g);
  EXPECT_EQ(result.circuits.size(), 20u);
  std::size_t len2 = 0, len3 = 0, len4 = 0;
  for (const auto& c : result.circuits) {
    if (c.size() == 2) ++len2;
    if (c.size() == 3) ++len3;
    if (c.size() == 4) ++len4;
  }
  EXPECT_EQ(len2, 6u);
  EXPECT_EQ(len3, 8u);
  EXPECT_EQ(len4, 6u);
}

TEST(JohnsonTest, BudgetStopsEnumeration) {
  // K6 has 409 elementary circuits; a budget of 10 must stop early.
  Digraph g(6);
  for (Vertex u = 0; u < 6; ++u) {
    for (Vertex v = 0; v < 6; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  JohnsonOptions opts;
  opts.max_circuits = 10;
  const auto result = FindElementaryCircuits(g, opts);
  EXPECT_TRUE(result.budget_exceeded);
  EXPECT_EQ(result.circuits.size(), 10u);
}

TEST(JohnsonTest, VertexBudgetStopsEnumeration) {
  Digraph g(5);
  for (Vertex u = 0; u < 5; ++u) {
    for (Vertex v = 0; v < 5; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  JohnsonOptions opts;
  opts.max_total_vertices = 30;
  const auto result = FindElementaryCircuits(g, opts);
  EXPECT_TRUE(result.budget_exceeded);
  std::size_t total = 0;
  for (const auto& c : result.circuits) total += c.size();
  EXPECT_GE(total, 30u);
  EXPECT_LT(total, 40u);  // stopped promptly after tripping
}

TEST(JohnsonTest, DisjointCyclesAllFound) {
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  g.AddEdge(4, 5);
  g.AddEdge(5, 4);
  const auto result = FindElementaryCircuits(g);
  EXPECT_EQ(result.circuits.size(), 3u);
}

// ---------- topological sort ----------

TEST(TopoSortTest, LinearChain) {
  Digraph g(4);
  g.AddEdge(3, 2);
  g.AddEdge(2, 1);
  g.AddEdge(1, 0);
  const auto order = TopologicalSort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<Vertex>{3, 2, 1, 0}));
}

TEST(TopoSortTest, DeterministicSmallestFirst) {
  Digraph g(4);
  g.AddEdge(2, 3);  // 0, 1, 2 all sources: must come out 0, 1, 2
  const auto order = TopologicalSort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(TopoSortTest, CycleReturnsNullopt) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_FALSE(TopologicalSort(g).has_value());
  EXPECT_FALSE(TopologicalLevels(g).has_value());
}

TEST(TopoSortTest, OrderRespectsAllEdges) {
  Rng rng(9);
  Digraph g(50);
  // Random DAG: edges only from lower to higher ids.
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<Vertex>(rng.Below(49));
    const auto v = static_cast<Vertex>(u + 1 + rng.Below(49 - u));
    g.AddEdge(u, v);
  }
  const auto order = TopologicalSort(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(50);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (Vertex u = 0; u < 50; ++u) {
    for (Vertex v : g.OutNeighbors(u)) EXPECT_LT(pos[u], pos[v]);
  }
}

TEST(TopoLevelsTest, LevelsAreLongestPathDepth) {
  // Diamond: 0 -> {1,2} -> 3; plus a long path 0 -> 4 -> 3.
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(0, 4);
  g.AddEdge(4, 3);
  const auto levels = TopologicalLevels(g);
  ASSERT_TRUE(levels.has_value());
  EXPECT_EQ((*levels)[0], 0u);
  EXPECT_EQ((*levels)[1], 1u);
  EXPECT_EQ((*levels)[2], 1u);
  EXPECT_EQ((*levels)[4], 1u);
  EXPECT_EQ((*levels)[3], 2u);
}

TEST(TopoLevelsTest, SameLevelVerticesAreIndependent) {
  Rng rng(13);
  Digraph g(40);
  for (int i = 0; i < 120; ++i) {
    const auto u = static_cast<Vertex>(rng.Below(39));
    const auto v = static_cast<Vertex>(u + 1 + rng.Below(39 - u));
    g.AddEdge(u, v);
  }
  const auto levels = TopologicalLevels(g);
  ASSERT_TRUE(levels.has_value());
  for (Vertex u = 0; u < 40; ++u) {
    for (Vertex v : g.OutNeighbors(u)) {
      EXPECT_NE((*levels)[u], (*levels)[v]);  // an edge separates levels
    }
  }
}

}  // namespace
}  // namespace nezha
