// Integration tests: the full-node pipeline over the parallel-chain ledger,
// the simulation driver, and cross-scheme state agreement.
#include <gtest/gtest.h>

#include "node/full_node.h"
#include "node/simulation.h"
#include "obs/metrics.h"

namespace nezha {
namespace {

SimulationConfig SmallConfig(SchemeKind scheme, double skew = 0.5,
                             std::size_t omega = 3) {
  SimulationConfig config;
  config.node.scheme = scheme;
  config.node.worker_threads = 2;
  config.workload.num_accounts = 500;
  config.workload.skew = skew;
  config.block_size = 50;
  config.block_concurrency = omega;
  config.epochs = 3;
  config.seed = 1234;
  return config;
}

TEST(SimulationTest, NezhaPipelineRuns) {
  auto summary = RunSimulation(SmallConfig(SchemeKind::kNezha));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->reports.size(), 3u);
  EXPECT_EQ(summary->TotalTxs(), 3u * 3u * 50u);
  EXPECT_GT(summary->TotalCommitted(), 0u);
  EXPECT_EQ(summary->TotalCommitted() + summary->TotalAborted(),
            summary->TotalTxs());
  for (const auto& r : summary->reports) {
    EXPECT_EQ(r.block_concurrency, 3u);
    EXPECT_FALSE(r.state_root.IsZero());
  }
}

TEST(SimulationTest, EpochRootsEvolve) {
  auto summary = RunSimulation(SmallConfig(SchemeKind::kNezha));
  ASSERT_TRUE(summary.ok());
  EXPECT_NE(summary->reports[0].state_root, summary->reports[1].state_root);
  EXPECT_NE(summary->reports[1].state_root, summary->reports[2].state_root);
}

TEST(SimulationTest, SerialCommitsEverything) {
  auto summary = RunSimulation(SmallConfig(SchemeKind::kSerial));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->TotalAborted(), 0u);
  EXPECT_EQ(summary->TotalCommitted(), summary->TotalTxs());
}

TEST(SimulationTest, AllSchemesProduceSameRootOnConflictFreeWorkload) {
  // With skew 0 over a huge account space and few transactions, conflicts
  // are (almost surely) absent, so every scheme commits everything and all
  // schemes must agree on the final state root.
  auto config_for = [](SchemeKind scheme) {
    SimulationConfig config;
    config.node.scheme = scheme;
    config.node.worker_threads = 2;
    config.workload.num_accounts = 200'000;
    config.workload.skew = 0.0;
    config.block_size = 20;
    config.block_concurrency = 2;
    config.epochs = 2;
    config.seed = 777;
    return config;
  };
  auto serial = RunSimulation(config_for(SchemeKind::kSerial));
  auto nezha = RunSimulation(config_for(SchemeKind::kNezha));
  auto cg = RunSimulation(config_for(SchemeKind::kCg));
  auto occ = RunSimulation(config_for(SchemeKind::kOcc));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(nezha.ok());
  ASSERT_TRUE(cg.ok());
  ASSERT_TRUE(occ.ok());
  ASSERT_EQ(nezha->TotalAborted(), 0u);  // precondition: conflict-free
  const Hash256 expected = serial->reports.back().state_root;
  EXPECT_EQ(nezha->reports.back().state_root, expected);
  EXPECT_EQ(cg->reports.back().state_root, expected);
  EXPECT_EQ(occ->reports.back().state_root, expected);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto a = RunSimulation(SmallConfig(SchemeKind::kNezha, 0.9));
  auto b = RunSimulation(SmallConfig(SchemeKind::kNezha, 0.9));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->reports.back().state_root, b->reports.back().state_root);
  EXPECT_EQ(a->TotalAborted(), b->TotalAborted());
}

TEST(SimulationTest, NezhaCommitGroupsExploitConcurrency) {
  auto summary = RunSimulation(SmallConfig(SchemeKind::kNezha, 0.2, 4));
  ASSERT_TRUE(summary.ok());
  for (const auto& r : summary->reports) {
    EXPECT_GT(r.max_commit_group, 1u);  // parallel commitment happened
  }
}

TEST(SimulationTest, ModeledCostReportsTableIVScale) {
  SimulationConfig config = SmallConfig(SchemeKind::kSerial, 0.0, 2);
  config.node.model_execution_cost = true;
  config.block_size = 200;
  config.epochs = 1;
  auto summary = RunSimulation(config);
  ASSERT_TRUE(summary.ok());
  // 400 txs * 11.75 ms/tx ~ 4700 ms (Table IV, concurrency 2).
  EXPECT_NEAR(summary->MeanTotalMs(), 4700, 300);
}

TEST(SimulationTest, RejectsZeroConcurrency) {
  SimulationConfig config = SmallConfig(SchemeKind::kNezha);
  config.block_concurrency = 0;
  EXPECT_FALSE(RunSimulation(config).ok());
}

TEST(FullNodeTest, SchemeParsingRoundTrips) {
  for (SchemeKind kind :
       {SchemeKind::kSerial, SchemeKind::kOcc, SchemeKind::kCg,
        SchemeKind::kNezha, SchemeKind::kNezhaNoReorder}) {
    auto parsed = ParseScheme(SchemeName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseScheme("bogus").ok());
}

TEST(FullNodeTest, RejectsTamperedEpoch) {
  NodeConfig config;
  config.scheme = SchemeKind::kNezha;
  config.worker_threads = 2;
  config.max_chains = 2;
  FullNode node(config, nullptr);
  node.ledger().CommitEpochRoot(0, node.state().RootHash());

  Transaction tx;
  tx.payload = MakeSmallBankCall(SmallBankOp::kUpdateBalance, {1, 5});
  Block block = node.ledger().BuildBlock(0, 1, {tx});
  ASSERT_TRUE(node.ledger().AppendBlock(block).ok());
  auto batch = node.ledger().SealEpoch(1);
  ASSERT_TRUE(batch.ok());

  // Tamper with the sealed batch: swap in a different transaction.
  EpochBatch tampered = *batch;
  tampered.blocks[0].transactions[0].payload.args[1] = 999;
  EXPECT_FALSE(node.ProcessEpoch(tampered).ok());

  // The untampered batch processes fine.
  EXPECT_TRUE(node.ProcessEpoch(*batch).ok());
}

TEST(ObservabilityTest, RegistrySnapshotAgreesWithEpochReport) {
  // EpochReport / SchedulerMetrics are thin views over the registry: after a
  // run, the published series must reproduce the report for every scheme.
  for (SchemeKind kind :
       {SchemeKind::kSerial, SchemeKind::kOcc, SchemeKind::kCg,
        SchemeKind::kNezha, SchemeKind::kNezhaNoReorder}) {
    SCOPED_TRACE(SchemeName(kind));
    obs::Registry().ResetAll();
    auto summary = RunSimulation(SmallConfig(kind, 0.8));
    ASSERT_TRUE(summary.ok());
    const obs::RegistrySnapshot snapshot = obs::Registry().Snapshot();

    // Node-level totals agree with the summary.
    const std::string scheme_labels =
        std::string("{scheme=\"") + SchemeName(kind) + "\"}";
    EXPECT_DOUBLE_EQ(snapshot.Value("nezha_node_epochs_total", scheme_labels),
                     static_cast<double>(summary->reports.size()));
    EXPECT_DOUBLE_EQ(snapshot.Value("nezha_node_txs_total", scheme_labels),
                     static_cast<double>(summary->TotalTxs()));
    EXPECT_DOUBLE_EQ(
        snapshot.Value("nezha_node_committed_total", scheme_labels),
        static_cast<double>(summary->TotalCommitted()));
    EXPECT_DOUBLE_EQ(snapshot.Value("nezha_node_aborted_total", scheme_labels),
                     static_cast<double>(summary->TotalAborted()));

    if (kind == SchemeKind::kSerial) continue;  // no scheduler build

    // Scheduler-level totals: every transaction of every epoch was fed to
    // exactly one BuildSchedule, and every abort carries a reason label.
    const std::string sched_labels =
        std::string("{scheduler=\"") + SchemeName(kind) + "\"}";
    EXPECT_DOUBLE_EQ(snapshot.Value("nezha_scheduler_builds_total",
                                    sched_labels),
                     static_cast<double>(summary->reports.size()));
    EXPECT_DOUBLE_EQ(snapshot.Value("nezha_scheduler_txs_total", sched_labels),
                     static_cast<double>(summary->TotalTxs()));
    EXPECT_DOUBLE_EQ(
        snapshot.Value("nezha_scheduler_committed_total", sched_labels),
        static_cast<double>(summary->TotalCommitted()));
    EXPECT_DOUBLE_EQ(
        snapshot.SumAcrossLabels("nezha_scheduler_aborts_total"),
        static_cast<double>(summary->TotalAborted()));

    // The last build's SchedulerMetrics round-trips through the registry.
    const SchedulerMetrics& expected = summary->reports.back().cc_metrics;
    const SchedulerMetrics got =
        SchedulerMetricsFromSnapshot(snapshot, SchemeName(kind));
    EXPECT_NEAR(got.construction_us, expected.construction_us, 1e-3);
    EXPECT_NEAR(got.cycle_us, expected.cycle_us, 1e-3);
    EXPECT_NEAR(got.sorting_us, expected.sorting_us, 1e-3);
    EXPECT_EQ(got.graph_vertices, expected.graph_vertices);
    EXPECT_EQ(got.graph_edges, expected.graph_edges);
    EXPECT_EQ(got.cycles_found, expected.cycles_found);
    EXPECT_EQ(got.resource_exhausted, expected.resource_exhausted);
    EXPECT_EQ(got.reordered_txs, expected.reordered_txs);
  }
}

TEST(FullNodeTest, ThroughputAccountingUsesCadenceFloor) {
  SimulationSummary summary;
  EpochReport fast;
  fast.committed = 100;
  fast.commit_ms = 10;  // well under the 1 s cadence
  summary.reports = {fast};
  EXPECT_NEAR(summary.EffectiveTps(1.0), 100.0, 1e-9);

  EpochReport slow = fast;
  slow.commit_ms = 4000;  // pipeline-bound epoch
  summary.reports = {slow};
  EXPECT_NEAR(summary.EffectiveTps(1.0), 25.0, 1e-9);
}

}  // namespace
}  // namespace nezha
