#include "ledger/validation.h"

#include <unordered_set>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace nezha::ledger {

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kBadHash:
      return "bad-hash";
    case RejectReason::kBadTxRoot:
      return "bad-tx-root";
    case RejectReason::kDuplicateTx:
      return "duplicate-tx";
    case RejectReason::kOversize:
      return "oversize";
    case RejectReason::kChainOutOfRange:
      return "chain-out-of-range";
    case RejectReason::kBadHeight:
      return "bad-height";
    case RejectReason::kBadParent:
      return "bad-parent";
    case RejectReason::kEpochRegression:
      return "epoch-regression";
    case RejectReason::kBadStateRoot:
      return "bad-state-root";
    case RejectReason::kBadRound:
      return "bad-round";
    case RejectReason::kBadSource:
      return "bad-source";
    case RejectReason::kBadParentCount:
      return "bad-parent-count";
    case RejectReason::kBadParentRound:
      return "bad-parent-round";
    case RejectReason::kDuplicateParentSource:
      return "duplicate-parent-source";
    case RejectReason::kEquivocation:
      return "equivocation";
    case RejectReason::kBadParentChain:
      return "bad-parent-chain";
  }
  return "?";
}

namespace {

/// All reasons, for the message->enum reverse map. Kept in enum order so a
/// new reason added to the enum fails loudly here (exhaustive switch above).
constexpr RejectReason kAllReasons[] = {
    RejectReason::kBadHash,         RejectReason::kBadTxRoot,
    RejectReason::kDuplicateTx,     RejectReason::kOversize,
    RejectReason::kChainOutOfRange, RejectReason::kBadHeight,
    RejectReason::kBadParent,       RejectReason::kEpochRegression,
    RejectReason::kBadStateRoot,    RejectReason::kBadRound,
    RejectReason::kBadSource,       RejectReason::kBadParentCount,
    RejectReason::kBadParentRound,  RejectReason::kDuplicateParentSource,
    RejectReason::kEquivocation,    RejectReason::kBadParentChain,
};

constexpr std::string_view kPrefix = "reject/";

}  // namespace

Status RejectBlock(std::string_view component, RejectReason reason,
                   std::string_view detail) {
  const char* name = RejectReasonName(reason);
  obs::Registry()
      .GetCounter("nezha_invalid_block_total",
                  {{"component", std::string(component)},
                   {"reason", name}})
      ->Inc();
  obs::FlightRecorder::Global().RecordEvent(
      std::string(component), std::string(kPrefix) + name,
      std::string(detail));
  std::string message = std::string(kPrefix) + name;
  if (!detail.empty()) {
    message += ": ";
    message += detail;
  }
  return Status::InvalidArgument(message);
}

RejectReason RejectReasonOf(const Status& status) {
  if (status.ok()) return RejectReason::kNone;
  const std::string& message = status.message();
  if (message.compare(0, kPrefix.size(), kPrefix) != 0) {
    return RejectReason::kNone;
  }
  std::string_view rest = std::string_view(message).substr(kPrefix.size());
  if (const std::size_t colon = rest.find(':');
      colon != std::string_view::npos) {
    rest = rest.substr(0, colon);
  }
  for (const RejectReason reason : kAllReasons) {
    if (rest == RejectReasonName(reason)) return reason;
  }
  return RejectReason::kNone;
}

bool HasDuplicateTxIds(const std::vector<Transaction>& txs) {
  std::unordered_set<Hash256> seen;
  seen.reserve(txs.size());
  for (const Transaction& tx : txs) {
    if (!seen.insert(tx.Id()).second) return true;
  }
  return false;
}

}  // namespace nezha::ledger
