#include "ledger/block.h"

#include "common/bytes.h"

namespace nezha {
namespace {

void PutHash(std::string& out, const Hash256& h) {
  out.append(reinterpret_cast<const char*>(h.bytes.data()), 32);
}

bool GetHash(std::string_view data, std::size_t* offset, Hash256* out) {
  if (*offset + 32 > data.size()) return false;
  for (int i = 0; i < 32; ++i) {
    out->bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        data[*offset + static_cast<std::size_t>(i)]);
  }
  *offset += 32;
  return true;
}

}  // namespace

std::string BlockHeader::Serialize() const {
  std::string out;
  PutVarint64(out, epoch);
  PutVarint64(out, chain);
  PutVarint64(out, height);
  PutHash(out, parent_hash);
  PutHash(out, prev_state_root);
  PutHash(out, tx_root);
  PutVarint64(out, proposer);
  return out;
}

Result<BlockHeader> BlockHeader::Deserialize(std::string_view data) {
  BlockHeader h;
  std::size_t offset = 0;
  std::uint64_t chain = 0;
  if (!GetVarint64(data, &offset, &h.epoch) ||
      !GetVarint64(data, &offset, &chain) ||
      !GetVarint64(data, &offset, &h.height) ||
      !GetHash(data, &offset, &h.parent_hash) ||
      !GetHash(data, &offset, &h.prev_state_root) ||
      !GetHash(data, &offset, &h.tx_root) ||
      !GetVarint64(data, &offset, &h.proposer)) {
    return Status::Corruption("truncated block header");
  }
  h.chain = static_cast<ChainId>(chain);
  if (offset != data.size()) {
    return Status::Corruption("trailing bytes after block header");
  }
  return h;
}

Hash256 BlockHeader::Hash() const { return Sha256::Digest(Serialize()); }

std::string Block::Serialize() const {
  std::string out;
  const std::string header_bytes = header.Serialize();
  PutVarint64(out, header_bytes.size());
  out += header_bytes;
  PutVarint64(out, transactions.size());
  for (const Transaction& tx : transactions) {
    const std::string tx_bytes = tx.Serialize();
    PutVarint64(out, tx_bytes.size());
    out += tx_bytes;
  }
  return out;
}

Result<Block> Block::Deserialize(std::string_view data) {
  Block block;
  std::size_t offset = 0;
  std::uint64_t header_len = 0;
  if (!GetVarint64(data, &offset, &header_len) ||
      offset + header_len > data.size()) {
    return Status::Corruption("truncated block");
  }
  auto header = BlockHeader::Deserialize(data.substr(offset, header_len));
  if (!header.ok()) return header.status();
  block.header = std::move(header.value());
  offset += header_len;

  std::uint64_t num_txs = 0;
  if (!GetVarint64(data, &offset, &num_txs)) {
    return Status::Corruption("truncated block tx count");
  }
  block.transactions.reserve(num_txs);
  for (std::uint64_t i = 0; i < num_txs; ++i) {
    std::uint64_t tx_len = 0;
    if (!GetVarint64(data, &offset, &tx_len) ||
        offset + tx_len > data.size()) {
      return Status::Corruption("truncated block tx");
    }
    auto tx = Transaction::Deserialize(data.substr(offset, tx_len));
    if (!tx.ok()) return tx.status();
    block.transactions.push_back(std::move(tx.value()));
    offset += tx_len;
  }
  if (offset != data.size()) {
    return Status::Corruption("trailing bytes after block");
  }
  return block;
}

Hash256 ComputeTxMerkleRoot(const std::vector<Transaction>& txs) {
  if (txs.empty()) return Hash256{};
  std::vector<Hash256> level;
  level.reserve(txs.size());
  for (const Transaction& tx : txs) level.push_back(tx.Id());
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    std::vector<Hash256> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      Sha256 hasher;
      hasher.Update(std::span<const std::uint8_t>(level[i].bytes.data(), 32));
      hasher.Update(
          std::span<const std::uint8_t>(level[i + 1].bytes.data(), 32));
      next.push_back(hasher.Finish());
    }
    level = std::move(next);
  }
  return level[0];
}

}  // namespace nezha
