// Block-rejection taxonomy — the shared vocabulary every admission path
// (ParallelChainLedger::ValidateBlock, the three consensus Attach paths,
// and the node bridges) uses to refuse an invalid block
// (docs/ROBUSTNESS.md §6).
//
// A rejection is three things at once:
//  * a Status whose message starts "reject/<reason>: ..." so callers and
//    tests can assert the EXACT cause (RejectReasonOf parses it back);
//  * one tick of nezha_invalid_block_total{component,reason} so a running
//    node under Byzantine traffic shows WHAT it is refusing and WHERE;
//  * one flight-recorder event, so a post-mortem dump of a diverged
//    replica carries the refusal history alongside the epoch records.
//
// The honest paths never produce these; every reason corresponds to a
// malformed or malicious block a correct replica must refuse at admission.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ledger/transaction.h"

namespace nezha::ledger {

/// Why a block (or DAG vertex) was refused at admission. Names are stable:
/// they appear verbatim as the metric's `reason` label and inside Status
/// messages the rejection-matrix tests pin.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kBadHash,               ///< sealed hash does not match the recomputed one
  kBadTxRoot,             ///< tx merkle root does not cover the body
  kDuplicateTx,           ///< one transaction id appears twice in the body
  kOversize,              ///< body exceeds the admission cap
  kChainOutOfRange,       ///< chain id >= k
  kBadHeight,             ///< height is not the chain's next slot
  kBadParent,             ///< parent hash does not match the tip
  kEpochRegression,       ///< epoch fails to advance along the chain
  kBadStateRoot,          ///< prev_state_root differs from the local root
  kBadRound,              ///< DAG round outside the protocol's range
  kBadSource,             ///< proposer/source id out of range
  kBadParentCount,        ///< wrong number of parent references
  kBadParentRound,        ///< DAG parent from the wrong round
  kDuplicateParentSource, ///< two parents by one source
  kEquivocation,          ///< second block/vertex for an occupied slot
  kBadParentChain,        ///< effective parent lives on another chain
};

/// The stable kebab-case name ("bad-tx-root", "equivocation", ...).
const char* RejectReasonName(RejectReason reason);

/// Builds the canonical rejection Status ("reject/<reason>: <detail>"),
/// bumps nezha_invalid_block_total{component,reason}, and records a flight
/// event — call it instead of Status::InvalidArgument on admission paths.
/// `component` names the validator ("ledger", "dagrider", "ohie",
/// "treegraph").
Status RejectBlock(std::string_view component, RejectReason reason,
                   std::string_view detail);

/// Parses the reason back out of a rejection Status. kNone when `status`
/// is OK or did not come from RejectBlock.
RejectReason RejectReasonOf(const Status& status);

/// True when two transactions in `txs` share an id — the kDuplicateTx
/// admission check every block body goes through.
bool HasDuplicateTxIds(const std::vector<Transaction>& txs);

}  // namespace nezha::ledger
