#include "ledger/ledger.h"

#include <algorithm>

#include "common/bytes.h"
#include "fault/fault.h"
#include "ledger/validation.h"

namespace nezha {

ParallelChainLedger::ParallelChainLedger(ChainId num_chains, KVStore* kv)
    : num_chains_(num_chains), kv_(kv), chains_(num_chains) {}

Hash256 ParallelChainLedger::StateRootBefore(EpochId epoch) const {
  // The root "before epoch e" is the root committed for epoch e-1; walk the
  // recorded roots backwards to find the newest one older than `epoch`.
  Hash256 root{};  // empty-state root (all zero) before any commit
  for (const auto& [e, r] : epoch_roots_) {
    if (e < epoch) root = r;
  }
  return root;
}

void ParallelChainLedger::CommitEpochRoot(EpochId epoch, const Hash256& root) {
  CommitEpochRootLocal(epoch, root);
  if (kv_ != nullptr) {
    const auto [key, value] = EpochRootRecord(epoch, root);
    (void)kv_->Put(key, value);
  }
}

std::pair<std::string, std::string> ParallelChainLedger::EpochRootRecord(
    EpochId epoch, const Hash256& root) {
  std::string key = "r/";
  PutFixed64(key, epoch);
  return {std::move(key),
          std::string(reinterpret_cast<const char*>(root.bytes.data()), 32)};
}

void ParallelChainLedger::CommitEpochRootLocal(EpochId epoch,
                                               const Hash256& root) {
  // Idempotent: the pipelined commit path installs the root before the
  // durable write tail (so epoch N+1 validation can overlap the tail) and
  // the shared tail re-installs it; the duplicate is dropped here.
  if (!epoch_roots_.empty() && epoch_roots_.back().first == epoch &&
      epoch_roots_.back().second == root) {
    return;
  }
  epoch_roots_.emplace_back(epoch, root);
}

EpochId ParallelChainLedger::LastCommittedEpoch() const {
  EpochId last = 0;
  for (const auto& [epoch, root] : epoch_roots_) last = std::max(last, epoch);
  return last;
}

Status ParallelChainLedger::LoadFromStorage() {
  if (kv_ == nullptr) return Status::InvalidArgument("no KV store attached");
  if (TotalBlocks() != 0 || !epoch_roots_.empty()) {
    return Status::InvalidArgument("ledger is not empty");
  }
  // Epoch roots first (block validation checks prev_state_root against
  // them). Keys are big-endian, so iteration order is epoch order.
  for (auto it = kv_->NewIterator("r/", "r0"); it.Valid(); it.Next()) {
    if (it.value().size() != 32) {
      return Status::Corruption("bad epoch root record");
    }
    const EpochId epoch = GetFixed64(std::string_view(it.key()).substr(2));
    Hash256 root;
    for (int i = 0; i < 32; ++i) {
      root.bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(it.value()[static_cast<std::size_t>(i)]);
    }
    epoch_roots_.emplace_back(epoch, root);
  }
  // Blocks: keys order as (chain, height) ascending — exactly the order in
  // which re-validation succeeds chain by chain. Everything is fully
  // re-validated; a corrupted record fails the recovery.
  for (auto it = kv_->NewIterator("b/", "b0"); it.Valid(); it.Next()) {
    auto block = Block::Deserialize(it.value());
    if (!block.ok()) return block.status();
    // AppendBlock would redundantly re-persist; validate and attach.
    if (Status s = ValidateBlock(block.value()); !s.ok()) return s;
    chains_[block->header.chain].push_back(std::move(block.value()));
  }
  return Status::Ok();
}

BlockHeight ParallelChainLedger::ChainHeight(ChainId chain) const {
  return chains_[chain].size();
}

Hash256 ParallelChainLedger::ChainTip(ChainId chain) const {
  const auto& c = chains_[chain];
  return c.empty() ? Hash256{} : c.back().Hash();
}

bool ParallelChainLedger::ChainContains(ChainId chain,
                                        const Hash256& hash) const {
  if (chain >= num_chains_) return false;
  for (const Block& block : chains_[chain]) {
    if (block.Hash() == hash) return true;
  }
  return false;
}

bool ParallelChainLedger::ContainsBlock(const Hash256& hash) const {
  for (ChainId chain = 0; chain < num_chains_; ++chain) {
    if (ChainContains(chain, hash)) return true;
  }
  return false;
}

Status ParallelChainLedger::ValidateBlock(const Block& block) const {
  using ledger::RejectBlock;
  using ledger::RejectReason;
  constexpr std::string_view kComponent = "ledger";
  const BlockHeader& h = block.header;
  if (h.chain >= num_chains_) {
    return RejectBlock(kComponent, RejectReason::kChainOutOfRange,
                       "chain " + std::to_string(h.chain) + " >= " +
                           std::to_string(num_chains_));
  }
  const auto& chain = chains_[h.chain];
  if (h.height != chain.size()) {
    return RejectBlock(kComponent, RejectReason::kBadHeight,
                       "height " + std::to_string(h.height) + ", expected " +
                           std::to_string(chain.size()));
  }
  const Hash256 expected_parent =
      chain.empty() ? Hash256{} : chain.back().Hash();
  if (h.parent_hash != expected_parent) {
    return RejectBlock(kComponent, RejectReason::kBadParent,
                       "parent hash does not match the chain tip");
  }
  if (!chain.empty() && h.epoch <= chain.back().header.epoch) {
    return RejectBlock(kComponent, RejectReason::kEpochRegression,
                       "epoch " + std::to_string(h.epoch) +
                           " does not advance past " +
                           std::to_string(chain.back().header.epoch));
  }
  // The paper's validation phase: the state root in the block must match
  // the local state of the previous epoch; otherwise the block is discarded.
  if (h.prev_state_root != StateRootBefore(h.epoch)) {
    return RejectBlock(kComponent, RejectReason::kBadStateRoot,
                       "previous state root mismatch at epoch " +
                           std::to_string(h.epoch));
  }
  if (block.transactions.size() > max_block_txs_) {
    return RejectBlock(kComponent, RejectReason::kOversize,
                       std::to_string(block.transactions.size()) +
                           " txs exceed the cap of " +
                           std::to_string(max_block_txs_));
  }
  if (h.tx_root != ComputeTxMerkleRoot(block.transactions)) {
    return RejectBlock(kComponent, RejectReason::kBadTxRoot,
                       "transaction merkle root does not cover the body");
  }
  if (ledger::HasDuplicateTxIds(block.transactions)) {
    return RejectBlock(kComponent, RejectReason::kDuplicateTx,
                       "transaction id appears twice in one block");
  }
  return Status::Ok();
}

Status ParallelChainLedger::AppendBlock(Block block) {
  if (Status s = ValidateBlock(block); !s.ok()) return s;
  // Injection site: param 0 crashes before the block is persisted (block
  // lost), param 1 crashes after (block durable but never attached in
  // memory — recovery must pick it up from storage).
  const fault::Hit hit = fault::Check(fault::sites::kLedgerAppend);
  if (hit.action == fault::Action::kFail) {
    return Status::Unavailable("fault: block append rejected");
  }
  if (hit.action == fault::Action::kCrash && hit.param == 0) {
    return fault::CrashStatus(fault::sites::kLedgerAppend);
  }
  if (kv_ != nullptr) {
    const Status s = kv_->Put(BlockKey(block.header.chain, block.header.height),
                              block.Serialize());
    if (!s.ok()) return s;
  }
  if (hit.action == fault::Action::kCrash) {
    return fault::CrashStatus(fault::sites::kLedgerAppend);
  }
  chains_[block.header.chain].push_back(std::move(block));
  return Status::Ok();
}

Block ParallelChainLedger::BuildBlock(ChainId chain, EpochId epoch,
                                      std::vector<Transaction> txs) const {
  Block block;
  block.header.chain = chain;
  block.header.epoch = epoch;
  block.header.height = ChainHeight(chain);
  block.header.parent_hash = ChainTip(chain);
  block.header.prev_state_root = StateRootBefore(epoch);
  block.header.tx_root = ComputeTxMerkleRoot(txs);
  block.header.proposer = chain;  // one miner per chain in the simulator
  block.transactions = std::move(txs);
  return block;
}

Result<EpochBatch> ParallelChainLedger::SealEpoch(EpochId epoch) const {
  std::vector<Block> blocks;
  for (const auto& chain : chains_) {
    for (const Block& block : chain) {
      if (block.header.epoch == epoch) blocks.push_back(block);
    }
  }
  if (blocks.empty()) {
    return Status::NotFound("no blocks in epoch");
  }
  std::sort(blocks.begin(), blocks.end(), [](const Block& a, const Block& b) {
    return a.header.chain < b.header.chain;
  });
  return EpochBatch::FromBlocks(epoch, std::move(blocks));
}

std::string ParallelChainLedger::BlockKey(ChainId chain, BlockHeight height) {
  std::string key = "b/";
  PutFixed32(key, chain);
  key.push_back('/');
  PutFixed64(key, height);
  return key;
}

Result<Block> ParallelChainLedger::LoadBlock(ChainId chain,
                                             BlockHeight height) const {
  if (kv_ == nullptr) return Status::InvalidArgument("no KV store attached");
  auto bytes = kv_->Get(BlockKey(chain, height));
  if (!bytes.ok()) return bytes.status();
  return Block::Deserialize(bytes.value());
}

std::size_t ParallelChainLedger::TotalBlocks() const {
  std::size_t total = 0;
  for (const auto& chain : chains_) total += chain.size();
  return total;
}

}  // namespace nezha
