// Blocks of the DAG ledger.
//
// Matching the paper's workflow (§III.B), consensus nodes do NOT execute
// transactions before proposing: each block instead carries the state root
// of the *previous* epoch, which validation checks against the local state.
// Blocks also commit to their transaction list via a binary Merkle root.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "common/types.h"
#include "ledger/transaction.h"

namespace nezha {

struct BlockHeader {
  EpochId epoch = 0;
  ChainId chain = 0;
  BlockHeight height = 0;
  Hash256 parent_hash{};     ///< previous block on the same chain
  Hash256 prev_state_root{}; ///< state root after epoch-1 (validated)
  Hash256 tx_root{};         ///< Merkle root over transaction ids
  std::uint64_t proposer = 0;

  std::string Serialize() const;
  static Result<BlockHeader> Deserialize(std::string_view data);

  /// Block hash = SHA-256 of the serialized header.
  Hash256 Hash() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  std::string Serialize() const;
  static Result<Block> Deserialize(std::string_view data);
  Hash256 Hash() const { return header.Hash(); }
};

/// Binary Merkle root over the transactions' ids. Empty list hashes to the
/// zero hash; odd levels duplicate the last node (Bitcoin-style).
Hash256 ComputeTxMerkleRoot(const std::vector<Transaction>& txs);

}  // namespace nezha
