// ParallelChainLedger: an OHIE-style DAG ledger simulator.
//
// The paper evaluates Nezha on OHIE, which runs k parallel Nakamoto chain
// instances and confirms blocks in batches. This simulator reproduces the
// structural properties the transaction-processing layer depends on:
//
//  * k independent chains, each a hash-linked block sequence;
//  * per epoch, up to k concurrent valid blocks (the block concurrency ω_e),
//    delivered in a deterministic total order (by chain id);
//  * every block carries the state root of the previous epoch, which
//    validation checks (the paper's "Validation phase");
//  * block data optionally persisted to the KVStore.
//
// Mining/network behaviour is out of scope: all reported measurements in the
// paper are taken after consensus, on the full node (see DESIGN.md §4).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ledger/block.h"
#include "ledger/epoch.h"
#include "storage/kvstore.h"

namespace nezha {

class ParallelChainLedger {
 public:
  /// num_chains: the maximum block concurrency (12 in the paper's setup).
  explicit ParallelChainLedger(ChainId num_chains, KVStore* kv = nullptr);

  ChainId num_chains() const { return num_chains_; }

  /// State root recorded for epoch e (set by CommitEpochRoot). The genesis
  /// root (epoch "-1", i.e. before epoch 0) is the empty-state root.
  Hash256 StateRootBefore(EpochId epoch) const;

  /// Records the post-commit state root of epoch e (persisted to the
  /// KVStore when one is attached, for crash recovery).
  void CommitEpochRoot(EpochId epoch, const Hash256& root);

  /// The KV key/value encoding of one epoch-root record — exposed so
  /// FullNode can fold the root write into its atomic epoch-commit batch
  /// instead of issuing a separate (crash-tearable) Put.
  static std::pair<std::string, std::string> EpochRootRecord(
      EpochId epoch, const Hash256& root);

  /// Records the root in memory only; storage is the caller's business
  /// (used together with EpochRootRecord in the atomic commit path).
  /// Idempotent: re-recording the newest (epoch, root) pair is a no-op, so
  /// the pipelined commit path may install the root early (before the
  /// durable write tail) and the shared tail may install it again.
  void CommitEpochRootLocal(EpochId epoch, const Hash256& root);

  /// Newest epoch with a committed root (0 when none committed yet; check
  /// HasCommittedRoot to disambiguate a real epoch 0).
  EpochId LastCommittedEpoch() const;
  bool HasCommittedRoot() const { return !epoch_roots_.empty(); }

  /// Rebuilds the ledger (epoch roots + all chains) from the attached
  /// KVStore, re-validating every block on the way in. The ledger must be
  /// freshly constructed (empty chains).
  Status LoadFromStorage();

  /// Height of the tip on `chain` (number of blocks appended so far).
  BlockHeight ChainHeight(ChainId chain) const;

  /// Hash of the tip block on `chain` (zero hash for an empty chain).
  Hash256 ChainTip(ChainId chain) const;

  /// True iff `hash` is a block on `chain`. Recovery cross-checks journaled
  /// tips with this: a tip recorded at commit time may legitimately have
  /// been extended by later appends, but must still be on its chain.
  bool ChainContains(ChainId chain, const Hash256& hash) const;

  /// True iff `hash` is a block on any chain.
  bool ContainsBlock(const Hash256& hash) const;

  /// Full structural + semantic validation of a proposed block:
  /// chain id in range, height/parent linkage, epoch monotonicity,
  /// prev_state_root matches the recorded root, tx_root matches the body,
  /// no duplicate transaction ids, body within the admission cap.
  /// Rejections use the shared taxonomy (ledger/validation.h): the Status
  /// message is "reject/<reason>: ...", the nezha_invalid_block_total
  /// counter ticks, and a flight event is recorded.
  Status ValidateBlock(const Block& block) const;

  /// Admission cap on transactions per block (satellite of the Byzantine
  /// hardening: an adversary must not be able to stuff an unbounded body).
  void SetMaxBlockTxs(std::size_t max_txs) { max_block_txs_ = max_txs; }
  std::size_t max_block_txs() const { return max_block_txs_; }

  /// Validates and appends. Persists to the KVStore when one is attached.
  Status AppendBlock(Block block);

  /// Builds a valid next block for `chain` at `epoch` from the given
  /// transactions (fills in parent hash, height, roots).
  Block BuildBlock(ChainId chain, EpochId epoch,
                   std::vector<Transaction> txs) const;

  /// Collects all blocks appended with header.epoch == epoch, in chain-id
  /// order, flattened into an EpochBatch. Error if no blocks exist.
  Result<EpochBatch> SealEpoch(EpochId epoch) const;

  /// Reloads a block from the KVStore (testing persistence round-trips).
  Result<Block> LoadBlock(ChainId chain, BlockHeight height) const;

  std::size_t TotalBlocks() const;

 private:
  static std::string BlockKey(ChainId chain, BlockHeight height);

  ChainId num_chains_;
  KVStore* kv_;
  std::size_t max_block_txs_ = 65'536;
  std::vector<std::vector<Block>> chains_;
  std::vector<std::pair<EpochId, Hash256>> epoch_roots_;  // append-only
};

}  // namespace nezha
