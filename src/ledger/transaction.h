// Transactions: smart-contract calls carried by blocks.
//
// A transaction's payload is a structured contract call (contract id,
// operation id, integer arguments). The execution layer (src/vm) interprets
// the call against a state snapshot and records the read/write sets the
// concurrency-control layer consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"

namespace nezha {

/// A structured contract call.
struct TxPayload {
  std::uint32_t contract = 0;  ///< contract id (e.g. kSmallBankContract)
  std::uint32_t op = 0;        ///< operation selector within the contract
  std::vector<std::uint64_t> args;

  friend bool operator==(const TxPayload& a, const TxPayload& b) {
    return a.contract == b.contract && a.op == b.op && a.args == b.args;
  }
};

struct Transaction {
  std::uint64_t nonce = 0;  ///< client-assigned; makes duplicates detectable
  TxPayload payload;

  /// Canonical byte encoding (varint-framed) — the hashing preimage.
  std::string Serialize() const;
  static Result<Transaction> Deserialize(std::string_view data);

  /// SHA-256 of the canonical encoding; identifies the transaction.
  Hash256 Id() const;

  friend bool operator==(const Transaction& a, const Transaction& b) {
    return a.nonce == b.nonce && a.payload == b.payload;
  }
};

}  // namespace nezha
