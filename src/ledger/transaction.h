// Transactions: smart-contract calls carried by blocks.
//
// A transaction's payload is a structured contract call (contract id,
// operation id, integer arguments). The execution layer (src/vm) interprets
// the call against a state snapshot and records the read/write sets the
// concurrency-control layer consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"

namespace nezha {

/// A structured contract call.
struct TxPayload {
  std::uint32_t contract = 0;  ///< contract id (e.g. kSmallBankContract)
  std::uint32_t op = 0;        ///< operation selector within the contract
  std::vector<std::uint64_t> args;

  friend bool operator==(const TxPayload& a, const TxPayload& b) {
    return a.contract == b.contract && a.op == b.op && a.args == b.args;
  }
};

struct Transaction {
  std::uint64_t nonce = 0;  ///< client-assigned; makes duplicates detectable
  TxPayload payload;

  /// Canonical byte encoding (varint-framed) — the hashing preimage.
  std::string Serialize() const;
  static Result<Transaction> Deserialize(std::string_view data);

  /// SHA-256 of the canonical encoding; identifies the transaction.
  Hash256 Id() const;

  friend bool operator==(const Transaction& a, const Transaction& b) {
    return a.nonce == b.nonce && a.payload == b.payload;
  }
};

/// Cheap (non-cryptographic) 64-bit key over the transaction content, for
/// keyed observability tables (obs::TxLifecycleTracer). Unlike Id() this
/// costs a handful of multiplies, not a SHA-256 over the serialization.
/// Always nonzero; collisions merely merge two lifecycle records.
inline std::uint64_t LifecycleKey(const Transaction& tx) {
  std::uint64_t h = (tx.nonce + 1) * 0x9E3779B97F4A7C15ULL;
  h ^= ((static_cast<std::uint64_t>(tx.payload.contract) << 32) |
        tx.payload.op) +
       0xBF58476D1CE4E5B9ULL;
  h *= 0x94D049BB133111EBULL;
  for (const std::uint64_t arg : tx.payload.args) {
    h ^= arg + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
  }
  h ^= h >> 29;
  return h | 1;  // never zero
}

}  // namespace nezha
