// EpochBatch: the unit of concurrent transaction processing.
//
// In a main-chain / parallel-chain DAG blockchain, each epoch e delivers a
// set of concurrent blocks B_e (block concurrency ω_e). The node flattens
// them — in the deterministic consensus order — into a single transaction
// batch, keeping only the first appearance of any duplicate transaction
// (§III.B). TxIndex positions in this flattened order are the transaction
// "subscripts" the sorting algorithms use for deterministic tie-breaking.
#pragma once

#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "ledger/block.h"

namespace nezha {

struct EpochBatch {
  EpochId epoch = 0;
  std::vector<Block> blocks;        ///< consensus order (by chain id)
  std::vector<Transaction> txs;     ///< flattened, deduplicated
  std::size_t duplicates_dropped = 0;

  std::size_t BlockConcurrency() const { return blocks.size(); }
  std::size_t TxCount() const { return txs.size(); }

  /// Flattens blocks (assumed already in consensus order) into the batch.
  static EpochBatch FromBlocks(EpochId epoch, std::vector<Block> blocks) {
    EpochBatch batch;
    batch.epoch = epoch;
    batch.blocks = std::move(blocks);
    std::unordered_set<Hash256> seen;
    for (const Block& block : batch.blocks) {
      for (const Transaction& tx : block.transactions) {
        if (seen.insert(tx.Id()).second) {
          batch.txs.push_back(tx);
        } else {
          ++batch.duplicates_dropped;
        }
      }
    }
    return batch;
  }
};

}  // namespace nezha
