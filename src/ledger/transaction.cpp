#include "ledger/transaction.h"

#include "common/bytes.h"

namespace nezha {

std::string Transaction::Serialize() const {
  std::string out;
  PutVarint64(out, nonce);
  PutVarint64(out, payload.contract);
  PutVarint64(out, payload.op);
  PutVarint64(out, payload.args.size());
  for (std::uint64_t arg : payload.args) PutVarint64(out, arg);
  return out;
}

Result<Transaction> Transaction::Deserialize(std::string_view data) {
  Transaction tx;
  std::size_t offset = 0;
  std::uint64_t contract = 0, op = 0, num_args = 0;
  if (!GetVarint64(data, &offset, &tx.nonce) ||
      !GetVarint64(data, &offset, &contract) ||
      !GetVarint64(data, &offset, &op) ||
      !GetVarint64(data, &offset, &num_args)) {
    return Status::Corruption("truncated transaction");
  }
  tx.payload.contract = static_cast<std::uint32_t>(contract);
  tx.payload.op = static_cast<std::uint32_t>(op);
  tx.payload.args.reserve(num_args);
  for (std::uint64_t i = 0; i < num_args; ++i) {
    std::uint64_t arg = 0;
    if (!GetVarint64(data, &offset, &arg)) {
      return Status::Corruption("truncated transaction args");
    }
    tx.payload.args.push_back(arg);
  }
  if (offset != data.size()) {
    return Status::Corruption("trailing bytes after transaction");
  }
  return tx;
}

Hash256 Transaction::Id() const { return Sha256::Digest(Serialize()); }

}  // namespace nezha
