// KVStore: the LevelDB-shaped storage engine the ledger persists block data
// and flushed state into.
//
// The paper's prototype used LevelDB; this in-memory engine reproduces the
// parts of its contract the system depends on: ordered keys, atomic write
// batches, point reads, range iteration, and immutable snapshots. Durability
// is provided as serialization round-trips (Checkpoint / Restore) rather
// than on-disk SSTables — none of the paper's measured latencies include
// disk fsync.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/write_batch.h"

namespace nezha {

/// Forward iteration over an ordered key range (a stable snapshot of the
/// store at creation time).
class KVIterator {
 public:
  explicit KVIterator(std::vector<std::pair<std::string, std::string>> items)
      : items_(std::move(items)) {}

  bool Valid() const { return pos_ < items_.size(); }
  void Next() { ++pos_; }
  const std::string& key() const { return items_[pos_].first; }
  const std::string& value() const { return items_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
  std::size_t pos_ = 0;
};

/// Immutable point-in-time view of the store.
class KVSnapshot {
 public:
  explicit KVSnapshot(std::shared_ptr<const std::map<std::string, std::string>>
                          data)
      : data_(std::move(data)) {}

  Result<std::string> Get(std::string_view key) const;
  std::size_t Size() const { return data_->size(); }

 private:
  std::shared_ptr<const std::map<std::string, std::string>> data_;
};

/// Thread-safe ordered key-value store with copy-on-write snapshots.
///
/// Writers take an exclusive lock; readers either take a shared lock (Get)
/// or grab a snapshot (lock-free reads afterwards). Write batches are
/// applied atomically: a concurrent reader sees all or none of a batch.
class KVStore {
 public:
  KVStore();

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Result<std::string> Get(std::string_view key) const;
  bool Contains(std::string_view key) const;

  /// Applies all operations in the batch atomically.
  Status Write(const WriteBatch& batch);

  /// Point-in-time snapshot (O(1); copy-on-write on the next mutation).
  KVSnapshot GetSnapshot() const;

  /// Iterates keys in [start, limit); empty limit means "to the end".
  KVIterator NewIterator(std::string_view start = {},
                         std::string_view limit = {}) const;

  std::size_t Size() const;

  /// Serializes the full store contents as a checksummed frame
  /// (magic + version + length + WriteBatch payload + SHA-256).
  std::string Checkpoint() const;

  /// Replaces the store contents from a Checkpoint() string. Rejects
  /// truncated, bit-flipped, or otherwise malformed frames with a
  /// descriptive Corruption status, leaving the current contents intact.
  Status Restore(std::string_view checkpoint);

 private:
  using Map = std::map<std::string, std::string>;

  /// Clones the underlying map if any snapshot still references it.
  Map& MutableMap() REQUIRES(mutex_);

  mutable SharedMutex mutex_;
  std::shared_ptr<Map> data_ GUARDED_BY(mutex_);
};

}  // namespace nezha
