#include "storage/kvstore.h"

#include "common/bytes.h"
#include "common/sha256.h"
#include "fault/fault.h"

namespace nezha {

namespace {

// Checkpoint framing: magic + version + payload length + payload + SHA-256
// over everything before the digest. Any single flipped or missing byte is
// detected before the store is touched.
constexpr char kCheckpointMagic[4] = {'N', 'Z', 'C', 'P'};
constexpr char kCheckpointVersion = 0x01;
constexpr std::size_t kCheckpointHeader = 4 + 1 + 8;  // magic+version+length
constexpr std::size_t kCheckpointDigest = 32;

}  // namespace

Result<std::string> KVSnapshot::Get(std::string_view key) const {
  const auto it = data_->find(std::string(key));
  if (it == data_->end()) return Status::NotFound("key not in snapshot");
  return it->second;
}

KVStore::KVStore() : data_(std::make_shared<Map>()) {}

KVStore::Map& KVStore::MutableMap() {
  // Caller holds the exclusive lock. If a snapshot (or iterator) still
  // shares the map, clone it so their view stays stable.
  if (data_.use_count() > 1) {
    data_ = std::make_shared<Map>(*data_);
  }
  return *data_;
}

Status KVStore::Put(std::string_view key, std::string_view value) {
  MutexLock lock(mutex_);
  MutableMap()[std::string(key)] = std::string(value);
  return Status::Ok();
}

Status KVStore::Delete(std::string_view key) {
  MutexLock lock(mutex_);
  MutableMap().erase(std::string(key));
  return Status::Ok();
}

Result<std::string> KVStore::Get(std::string_view key) const {
  ReaderMutexLock lock(mutex_);
  const auto it = data_->find(std::string(key));
  if (it == data_->end()) return Status::NotFound("key not found");
  return it->second;
}

bool KVStore::Contains(std::string_view key) const {
  ReaderMutexLock lock(mutex_);
  return data_->contains(std::string(key));
}

Status KVStore::Write(const WriteBatch& batch) {
  // Injection site: a full-batch failure (kFail) models a rejected write, a
  // tear (kTear, param k) models the torn prefix a mid-batch power cut
  // leaves behind, and a crash (kCrash) models dying right after the batch
  // lands durably.
  const fault::Hit hit = fault::Check(fault::sites::kKvWrite);
  if (hit.action == fault::Action::kFail) {
    return Status::Unavailable("fault: write batch rejected");
  }
  MutexLock lock(mutex_);
  Map& map = MutableMap();
  std::size_t applied = 0;
  for (const auto& op : batch.ops()) {
    if (hit.action == fault::Action::kTear && applied >= hit.param) {
      return Status::Aborted("fault: write batch torn after " +
                             std::to_string(applied) + " of " +
                             std::to_string(batch.Count()) + " records");
    }
    if (op.type == WriteBatch::OpType::kPut) {
      map[op.key] = op.value;
    } else {
      map.erase(op.key);
    }
    ++applied;
  }
  if (hit.action == fault::Action::kCrash) {
    return fault::CrashStatus(fault::sites::kKvWrite);
  }
  return Status::Ok();
}

KVSnapshot KVStore::GetSnapshot() const {
  ReaderMutexLock lock(mutex_);
  return KVSnapshot(data_);
}

KVIterator KVStore::NewIterator(std::string_view start,
                                std::string_view limit) const {
  ReaderMutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::string>> items;
  auto it = start.empty() ? data_->begin()
                          : data_->lower_bound(std::string(start));
  const auto end = limit.empty() ? data_->end()
                                 : data_->lower_bound(std::string(limit));
  for (; it != end; ++it) items.emplace_back(it->first, it->second);
  return KVIterator(std::move(items));
}

std::size_t KVStore::Size() const {
  ReaderMutexLock lock(mutex_);
  return data_->size();
}

std::string KVStore::Checkpoint() const {
  std::string payload;
  {
    ReaderMutexLock lock(mutex_);
    WriteBatch batch;
    for (const auto& [key, value] : *data_) batch.Put(key, value);
    payload = batch.Serialize();
  }
  std::string out(kCheckpointMagic, sizeof(kCheckpointMagic));
  out.push_back(kCheckpointVersion);
  PutFixed64(out, payload.size());
  out += payload;
  const Hash256 digest = Sha256::Digest(out);
  out.append(reinterpret_cast<const char*>(digest.bytes.data()),
             kCheckpointDigest);
  return out;
}

Status KVStore::Restore(std::string_view checkpoint) {
  if (const fault::Hit hit = fault::Check(fault::sites::kKvRestore);
      hit.action == fault::Action::kFail) {
    return Status::Unavailable("fault: restore rejected");
  }
  // Validate the framing end to end before touching the store: a failed
  // Restore must leave the previous contents intact.
  if (checkpoint.size() < kCheckpointHeader + kCheckpointDigest) {
    return Status::Corruption("checkpoint truncated: " +
                              std::to_string(checkpoint.size()) +
                              " bytes is smaller than the minimal frame");
  }
  if (checkpoint.compare(0, sizeof(kCheckpointMagic),
                         std::string_view(kCheckpointMagic,
                                          sizeof(kCheckpointMagic))) != 0) {
    return Status::Corruption("checkpoint magic mismatch (not a checkpoint)");
  }
  if (checkpoint[4] != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(checkpoint[4]));
  }
  const std::uint64_t payload_size = GetFixed64(checkpoint.substr(5));
  if (payload_size !=
      checkpoint.size() - kCheckpointHeader - kCheckpointDigest) {
    return Status::Corruption("checkpoint length field disagrees with frame");
  }
  const std::string_view body =
      checkpoint.substr(0, checkpoint.size() - kCheckpointDigest);
  const Hash256 expected = Sha256::Digest(body);
  const std::string_view stored =
      checkpoint.substr(checkpoint.size() - kCheckpointDigest);
  if (std::string_view(reinterpret_cast<const char*>(expected.bytes.data()),
                       kCheckpointDigest) != stored) {
    return Status::Corruption("checkpoint checksum mismatch (corrupt bytes)");
  }
  WriteBatch batch;
  if (!WriteBatch::Deserialize(
          checkpoint.substr(kCheckpointHeader, payload_size), &batch)) {
    return Status::Corruption("checkpoint payload does not parse");
  }
  MutexLock lock(mutex_);
  data_ = std::make_shared<Map>();
  for (const auto& op : batch.ops()) {
    if (op.type == WriteBatch::OpType::kPut) (*data_)[op.key] = op.value;
  }
  return Status::Ok();
}

}  // namespace nezha
