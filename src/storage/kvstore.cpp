#include "storage/kvstore.h"

namespace nezha {

Result<std::string> KVSnapshot::Get(std::string_view key) const {
  const auto it = data_->find(std::string(key));
  if (it == data_->end()) return Status::NotFound("key not in snapshot");
  return it->second;
}

KVStore::KVStore() : data_(std::make_shared<Map>()) {}

KVStore::Map& KVStore::MutableMap() {
  // Caller holds the exclusive lock. If a snapshot (or iterator) still
  // shares the map, clone it so their view stays stable.
  if (data_.use_count() > 1) {
    data_ = std::make_shared<Map>(*data_);
  }
  return *data_;
}

Status KVStore::Put(std::string_view key, std::string_view value) {
  std::unique_lock lock(mutex_);
  MutableMap()[std::string(key)] = std::string(value);
  return Status::Ok();
}

Status KVStore::Delete(std::string_view key) {
  std::unique_lock lock(mutex_);
  MutableMap().erase(std::string(key));
  return Status::Ok();
}

Result<std::string> KVStore::Get(std::string_view key) const {
  std::shared_lock lock(mutex_);
  const auto it = data_->find(std::string(key));
  if (it == data_->end()) return Status::NotFound("key not found");
  return it->second;
}

bool KVStore::Contains(std::string_view key) const {
  std::shared_lock lock(mutex_);
  return data_->count(std::string(key)) > 0;
}

Status KVStore::Write(const WriteBatch& batch) {
  std::unique_lock lock(mutex_);
  Map& map = MutableMap();
  for (const auto& op : batch.ops()) {
    if (op.type == WriteBatch::OpType::kPut) {
      map[op.key] = op.value;
    } else {
      map.erase(op.key);
    }
  }
  return Status::Ok();
}

KVSnapshot KVStore::GetSnapshot() const {
  std::shared_lock lock(mutex_);
  return KVSnapshot(data_);
}

KVIterator KVStore::NewIterator(std::string_view start,
                                std::string_view limit) const {
  std::shared_lock lock(mutex_);
  std::vector<std::pair<std::string, std::string>> items;
  auto it = start.empty() ? data_->begin()
                          : data_->lower_bound(std::string(start));
  const auto end = limit.empty() ? data_->end()
                                 : data_->lower_bound(std::string(limit));
  for (; it != end; ++it) items.emplace_back(it->first, it->second);
  return KVIterator(std::move(items));
}

std::size_t KVStore::Size() const {
  std::shared_lock lock(mutex_);
  return data_->size();
}

std::string KVStore::Checkpoint() const {
  std::shared_lock lock(mutex_);
  WriteBatch batch;
  for (const auto& [key, value] : *data_) batch.Put(key, value);
  return batch.Serialize();
}

Status KVStore::Restore(std::string_view checkpoint) {
  WriteBatch batch;
  if (!WriteBatch::Deserialize(checkpoint, &batch)) {
    return Status::Corruption("bad checkpoint");
  }
  std::unique_lock lock(mutex_);
  data_ = std::make_shared<Map>();
  for (const auto& op : batch.ops()) {
    if (op.type == WriteBatch::OpType::kPut) (*data_)[op.key] = op.value;
  }
  return Status::Ok();
}

}  // namespace nezha
