#include "storage/mpt.h"

#include <cassert>

#include "common/bytes.h"

namespace nezha {
namespace {

// A decoded view of a serialized node, used for proof verification.
struct DecodedNode {
  char kind = 0;  // 'L', 'E', 'B'
  std::vector<std::uint8_t> path;
  std::optional<std::string> value;
  std::array<std::optional<Hash256>, 16> children;
  std::optional<Hash256> ext_child;
};

bool ReadHash(std::string_view data, std::size_t* offset, Hash256* out) {
  if (*offset + 32 > data.size()) return false;
  for (int i = 0; i < 32; ++i) {
    out->bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(data[*offset + static_cast<std::size_t>(i)]);
  }
  *offset += 32;
  return true;
}

bool DecodeNodeBytes(std::string_view data, DecodedNode* out) {
  if (data.empty()) return false;
  std::size_t offset = 0;
  out->kind = data[offset++];
  if (out->kind == 'L' || out->kind == 'E') {
    std::uint64_t path_len = 0;
    if (!GetVarint64(data, &offset, &path_len)) return false;
    if (offset + path_len > data.size()) return false;
    out->path.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                     data.begin() +
                         static_cast<std::ptrdiff_t>(offset + path_len));
    offset += path_len;
    if (out->kind == 'L') {
      std::uint64_t value_len = 0;
      if (!GetVarint64(data, &offset, &value_len)) return false;
      if (offset + value_len > data.size()) return false;
      out->value = std::string(data.substr(offset, value_len));
      offset += value_len;
    } else {
      Hash256 h;
      if (!ReadHash(data, &offset, &h)) return false;
      out->ext_child = h;
    }
  } else if (out->kind == 'B') {
    if (offset + 2 > data.size()) return false;
    const std::uint16_t bitmap =
        static_cast<std::uint16_t>(
            (static_cast<unsigned char>(data[offset]) << 8) |
            static_cast<unsigned char>(data[offset + 1]));
    offset += 2;
    for (int i = 0; i < 16; ++i) {
      if (bitmap & (1u << i)) {
        Hash256 h;
        if (!ReadHash(data, &offset, &h)) return false;
        out->children[static_cast<std::size_t>(i)] = h;
      }
    }
    if (offset >= data.size()) return false;
    const char has_value = data[offset++];
    if (has_value == 1) {
      std::uint64_t value_len = 0;
      if (!GetVarint64(data, &offset, &value_len)) return false;
      if (offset + value_len > data.size()) return false;
      out->value = std::string(data.substr(offset, value_len));
      offset += value_len;
    }
  } else {
    return false;
  }
  return offset == data.size();
}

}  // namespace

std::vector<std::uint8_t> MerklePatriciaTrie::ToNibbles(std::string_view key) {
  std::vector<std::uint8_t> nibbles;
  nibbles.reserve(key.size() * 2);
  for (unsigned char c : key) {
    nibbles.push_back(static_cast<std::uint8_t>(c >> 4));
    nibbles.push_back(static_cast<std::uint8_t>(c & 0xf));
  }
  return nibbles;
}

std::size_t MerklePatriciaTrie::CommonPrefixLen(
    const std::vector<std::uint8_t>& a, std::size_t a_off,
    const std::vector<std::uint8_t>& b, std::size_t b_off) {
  std::size_t n = 0;
  while (a_off + n < a.size() && b_off + n < b.size() &&
         a[a_off + n] == b[b_off + n]) {
    ++n;
  }
  return n;
}

void MerklePatriciaTrie::Put(std::string_view key, std::string_view value) {
  const auto nibbles = ToNibbles(key);
  root_ = Insert(std::move(root_), nibbles, 0, value);
}

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::Insert(
    NodePtr node, const std::vector<std::uint8_t>& nibbles, std::size_t depth,
    std::string_view value) {
  if (!node) {
    auto leaf = std::make_unique<Node>(Kind::kLeaf);
    leaf->path.assign(nibbles.begin() + static_cast<std::ptrdiff_t>(depth),
                      nibbles.end());
    leaf->value = std::string(value);
    ++size_;
    return leaf;
  }
  node->cached_hash.reset();

  switch (node->kind) {
    case Kind::kLeaf: {
      const std::size_t common =
          CommonPrefixLen(node->path, 0, nibbles, depth);
      const std::size_t remaining = nibbles.size() - depth;
      if (common == node->path.size() && common == remaining) {
        node->value = std::string(value);  // overwrite, size unchanged
        return node;
      }
      // Split into a branch (optionally behind an extension).
      auto branch = std::make_unique<Node>(Kind::kBranch);
      // Re-seat the old leaf.
      if (node->path.size() == common) {
        branch->value = std::move(node->value);
      } else {
        const std::uint8_t idx = node->path[common];
        auto old_leaf = std::make_unique<Node>(Kind::kLeaf);
        old_leaf->path.assign(
            node->path.begin() + static_cast<std::ptrdiff_t>(common + 1),
            node->path.end());
        old_leaf->value = std::move(node->value);
        branch->children[idx] = std::move(old_leaf);
      }
      // Seat the new value.
      if (remaining == common) {
        branch->value = std::string(value);
      } else {
        const std::uint8_t idx = nibbles[depth + common];
        auto new_leaf = std::make_unique<Node>(Kind::kLeaf);
        new_leaf->path.assign(
            nibbles.begin() + static_cast<std::ptrdiff_t>(depth + common + 1),
            nibbles.end());
        new_leaf->value = std::string(value);
        branch->children[idx] = std::move(new_leaf);
      }
      ++size_;
      if (common == 0) return branch;
      auto ext = std::make_unique<Node>(Kind::kExtension);
      ext->path.assign(node->path.begin(),
                       node->path.begin() + static_cast<std::ptrdiff_t>(common));
      ext->ext_child = std::move(branch);
      return ext;
    }

    case Kind::kExtension: {
      const std::size_t common =
          CommonPrefixLen(node->path, 0, nibbles, depth);
      if (common == node->path.size()) {
        node->ext_child =
            Insert(std::move(node->ext_child), nibbles, depth + common, value);
        return node;
      }
      // Split the extension at `common`.
      auto branch = std::make_unique<Node>(Kind::kBranch);
      // Old extension remainder.
      {
        const std::uint8_t idx = node->path[common];
        if (common + 1 == node->path.size()) {
          branch->children[idx] = std::move(node->ext_child);
        } else {
          auto tail = std::make_unique<Node>(Kind::kExtension);
          tail->path.assign(
              node->path.begin() + static_cast<std::ptrdiff_t>(common + 1),
              node->path.end());
          tail->ext_child = std::move(node->ext_child);
          branch->children[idx] = std::move(tail);
        }
      }
      // New value.
      const std::size_t remaining = nibbles.size() - depth;
      if (remaining == common) {
        branch->value = std::string(value);
      } else {
        const std::uint8_t idx = nibbles[depth + common];
        auto new_leaf = std::make_unique<Node>(Kind::kLeaf);
        new_leaf->path.assign(
            nibbles.begin() + static_cast<std::ptrdiff_t>(depth + common + 1),
            nibbles.end());
        new_leaf->value = std::string(value);
        branch->children[idx] = std::move(new_leaf);
      }
      ++size_;
      if (common == 0) return branch;
      auto ext = std::make_unique<Node>(Kind::kExtension);
      ext->path.assign(node->path.begin(),
                       node->path.begin() + static_cast<std::ptrdiff_t>(common));
      ext->ext_child = std::move(branch);
      return ext;
    }

    case Kind::kBranch: {
      if (depth == nibbles.size()) {
        if (!node->value.has_value()) ++size_;
        node->value = std::string(value);
        return node;
      }
      const std::uint8_t idx = nibbles[depth];
      node->children[idx] =
          Insert(std::move(node->children[idx]), nibbles, depth + 1, value);
      return node;
    }
  }
  return node;  // unreachable
}

Result<std::string> MerklePatriciaTrie::Get(std::string_view key) const {
  const auto nibbles = ToNibbles(key);
  const Node* node = Find(root_.get(), nibbles, 0);
  if (node == nullptr || !node->value.has_value()) {
    return Status::NotFound("key not in trie");
  }
  return *node->value;
}

const MerklePatriciaTrie::Node* MerklePatriciaTrie::Find(
    const Node* node, const std::vector<std::uint8_t>& nibbles,
    std::size_t depth) const {
  while (node != nullptr) {
    switch (node->kind) {
      case Kind::kLeaf: {
        const std::size_t remaining = nibbles.size() - depth;
        if (node->path.size() == remaining &&
            CommonPrefixLen(node->path, 0, nibbles, depth) == remaining) {
          return node;
        }
        return nullptr;
      }
      case Kind::kExtension: {
        const std::size_t common =
            CommonPrefixLen(node->path, 0, nibbles, depth);
        if (common != node->path.size()) return nullptr;
        depth += common;
        node = node->ext_child.get();
        break;
      }
      case Kind::kBranch: {
        if (depth == nibbles.size()) return node;
        node = node->children[nibbles[depth]].get();
        ++depth;
        break;
      }
    }
  }
  return nullptr;
}

bool MerklePatriciaTrie::Delete(std::string_view key) {
  const auto nibbles = ToNibbles(key);
  bool removed = false;
  root_ = Remove(std::move(root_), nibbles, 0, &removed);
  if (removed) --size_;
  return removed;
}

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::Remove(
    NodePtr node, const std::vector<std::uint8_t>& nibbles, std::size_t depth,
    bool* removed) {
  if (!node) return nullptr;

  switch (node->kind) {
    case Kind::kLeaf: {
      const std::size_t remaining = nibbles.size() - depth;
      if (node->path.size() == remaining &&
          CommonPrefixLen(node->path, 0, nibbles, depth) == remaining) {
        *removed = true;
        return nullptr;
      }
      return node;
    }
    case Kind::kExtension: {
      const std::size_t common =
          CommonPrefixLen(node->path, 0, nibbles, depth);
      if (common != node->path.size()) return node;
      node->cached_hash.reset();
      node->ext_child = Remove(std::move(node->ext_child), nibbles,
                               depth + common, removed);
      if (!node->ext_child) return nullptr;
      // Merge extension with a leaf/extension child.
      Node* child = node->ext_child.get();
      if (child->kind == Kind::kLeaf || child->kind == Kind::kExtension) {
        child->path.insert(child->path.begin(), node->path.begin(),
                           node->path.end());
        child->cached_hash.reset();
        return std::move(node->ext_child);
      }
      return node;
    }
    case Kind::kBranch: {
      if (depth == nibbles.size()) {
        if (node->value.has_value()) {
          node->value.reset();
          node->cached_hash.reset();
          *removed = true;
        }
      } else {
        const std::uint8_t idx = nibbles[depth];
        if (node->children[idx]) {
          node->cached_hash.reset();
          node->children[idx] =
              Remove(std::move(node->children[idx]), nibbles, depth + 1,
                     removed);
        }
      }
      if (!*removed) return node;
      return Normalize(std::move(node));
    }
  }
  return node;  // unreachable
}

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::Normalize(NodePtr node) {
  assert(node->kind == Kind::kBranch);
  int child_count = 0;
  int only_idx = -1;
  for (int i = 0; i < 16; ++i) {
    if (node->children[static_cast<std::size_t>(i)]) {
      ++child_count;
      only_idx = i;
    }
  }
  if (child_count == 0) {
    if (!node->value.has_value()) return nullptr;
    // Branch holding just a value -> leaf with empty path.
    auto leaf = std::make_unique<Node>(Kind::kLeaf);
    leaf->value = std::move(node->value);
    return leaf;
  }
  if (child_count == 1 && !node->value.has_value()) {
    // Single-child branch -> fold into the child with the nibble prepended.
    NodePtr child = std::move(node->children[static_cast<std::size_t>(only_idx)]);
    const auto idx_nibble = static_cast<std::uint8_t>(only_idx);
    if (child->kind == Kind::kLeaf || child->kind == Kind::kExtension) {
      child->path.insert(child->path.begin(), idx_nibble);
      child->cached_hash.reset();
      return child;
    }
    auto ext = std::make_unique<Node>(Kind::kExtension);
    ext->path.push_back(idx_nibble);
    ext->ext_child = std::move(child);
    return ext;
  }
  return node;
}

std::string MerklePatriciaTrie::EncodeNode(const Node& node) {
  std::string out;
  switch (node.kind) {
    case Kind::kLeaf: {
      out.push_back('L');
      PutVarint64(out, node.path.size());
      for (std::uint8_t nib : node.path) {
        out.push_back(static_cast<char>(nib));
      }
      PutVarint64(out, node.value->size());
      out += *node.value;
      break;
    }
    case Kind::kExtension: {
      out.push_back('E');
      PutVarint64(out, node.path.size());
      for (std::uint8_t nib : node.path) {
        out.push_back(static_cast<char>(nib));
      }
      const Hash256 child_hash = HashNode(*node.ext_child);
      out.append(reinterpret_cast<const char*>(child_hash.bytes.data()), 32);
      break;
    }
    case Kind::kBranch: {
      out.push_back('B');
      std::uint16_t bitmap = 0;
      for (int i = 0; i < 16; ++i) {
        if (node.children[static_cast<std::size_t>(i)]) {
          bitmap = static_cast<std::uint16_t>(bitmap | (1u << i));
        }
      }
      out.push_back(static_cast<char>(bitmap >> 8));
      out.push_back(static_cast<char>(bitmap & 0xff));
      for (int i = 0; i < 16; ++i) {
        const auto& child = node.children[static_cast<std::size_t>(i)];
        if (child) {
          const Hash256 h = HashNode(*child);
          out.append(reinterpret_cast<const char*>(h.bytes.data()), 32);
        }
      }
      if (node.value.has_value()) {
        out.push_back(1);
        PutVarint64(out, node.value->size());
        out += *node.value;
      } else {
        out.push_back(0);
      }
      break;
    }
  }
  return out;
}

Hash256 MerklePatriciaTrie::HashNode(const Node& node) {
  if (node.cached_hash.has_value()) return *node.cached_hash;
  const Hash256 h = Sha256::Digest(EncodeNode(node));
  node.cached_hash = h;
  return h;
}

Hash256 MerklePatriciaTrie::RootHash() const {
  if (!root_) return Hash256{};  // all-zero = empty trie
  return HashNode(*root_);
}

void MerklePatriciaTrie::CollectProof(const Node* node,
                                      const std::vector<std::uint8_t>& nibbles,
                                      std::size_t depth,
                                      std::vector<std::string>& out) const {
  while (node != nullptr) {
    out.push_back(EncodeNode(*node));
    switch (node->kind) {
      case Kind::kLeaf:
        return;
      case Kind::kExtension: {
        const std::size_t common =
            CommonPrefixLen(node->path, 0, nibbles, depth);
        if (common != node->path.size()) return;
        depth += common;
        node = node->ext_child.get();
        break;
      }
      case Kind::kBranch: {
        if (depth == nibbles.size()) return;
        node = node->children[nibbles[depth]].get();
        ++depth;
        break;
      }
    }
  }
}

std::vector<std::string> MerklePatriciaTrie::GenerateProof(
    std::string_view key) const {
  std::vector<std::string> proof;
  if (!root_) return proof;
  CollectProof(root_.get(), ToNibbles(key), 0, proof);
  return proof;
}

Result<std::string> MerklePatriciaTrie::VerifyProof(
    const Hash256& root, std::string_view key,
    const std::vector<std::string>& proof) {
  if (proof.empty()) {
    if (root.IsZero()) return Status::NotFound("empty trie");
    return Status::Corruption("empty proof for non-empty root");
  }
  const auto nibbles = ToNibbles(key);
  Hash256 expected = root;
  std::size_t depth = 0;

  for (std::size_t i = 0; i < proof.size(); ++i) {
    if (Sha256::Digest(proof[i]) != expected) {
      return Status::Corruption("proof node hash mismatch");
    }
    DecodedNode node;
    if (!DecodeNodeBytes(proof[i], &node)) {
      return Status::Corruption("undecodable proof node");
    }
    const bool last = (i + 1 == proof.size());
    if (node.kind == 'L') {
      const std::size_t remaining = nibbles.size() - depth;
      const bool match =
          node.path.size() == remaining &&
          std::equal(node.path.begin(), node.path.end(),
                     nibbles.begin() + static_cast<std::ptrdiff_t>(depth));
      if (!last) return Status::Corruption("leaf before end of proof");
      if (match) return *node.value;
      return Status::NotFound("proven absent (diverging leaf)");
    }
    if (node.kind == 'E') {
      const std::size_t common = [&] {
        std::size_t n = 0;
        while (n < node.path.size() && depth + n < nibbles.size() &&
               node.path[n] == nibbles[depth + n]) {
          ++n;
        }
        return n;
      }();
      if (common != node.path.size()) {
        if (!last) return Status::Corruption("diverging extension mid-proof");
        return Status::NotFound("proven absent (diverging extension)");
      }
      depth += common;
      if (last) return Status::Corruption("proof ends inside extension");
      expected = *node.ext_child;
      continue;
    }
    // Branch.
    if (depth == nibbles.size()) {
      if (!last) return Status::Corruption("branch terminal but proof longer");
      if (node.value.has_value()) return *node.value;
      return Status::NotFound("proven absent (no value at branch)");
    }
    const std::uint8_t idx = nibbles[depth];
    ++depth;
    if (!node.children[idx].has_value()) {
      if (!last) return Status::Corruption("missing child mid-proof");
      return Status::NotFound("proven absent (no child)");
    }
    if (last) return Status::Corruption("proof ends at internal branch");
    expected = *node.children[idx];
  }
  return Status::Corruption("unterminated proof");
}

void MerklePatriciaTrie::CollectItems(
    const Node* node, std::vector<std::uint8_t>& prefix,
    std::vector<std::pair<std::string, std::string>>& out) const {
  if (node == nullptr) return;
  const auto nibbles_to_key = [](const std::vector<std::uint8_t>& nibbles) {
    std::string key;
    key.reserve(nibbles.size() / 2);
    for (std::size_t i = 0; i + 1 < nibbles.size(); i += 2) {
      key.push_back(static_cast<char>((nibbles[i] << 4) | nibbles[i + 1]));
    }
    return key;
  };
  switch (node->kind) {
    case Kind::kLeaf: {
      prefix.insert(prefix.end(), node->path.begin(), node->path.end());
      out.emplace_back(nibbles_to_key(prefix), *node->value);
      prefix.resize(prefix.size() - node->path.size());
      break;
    }
    case Kind::kExtension: {
      prefix.insert(prefix.end(), node->path.begin(), node->path.end());
      CollectItems(node->ext_child.get(), prefix, out);
      prefix.resize(prefix.size() - node->path.size());
      break;
    }
    case Kind::kBranch: {
      if (node->value.has_value()) {
        out.emplace_back(nibbles_to_key(prefix), *node->value);
      }
      for (std::uint8_t i = 0; i < 16; ++i) {
        if (node->children[i]) {
          prefix.push_back(i);
          CollectItems(node->children[i].get(), prefix, out);
          prefix.pop_back();
        }
      }
      break;
    }
  }
}

std::vector<std::pair<std::string, std::string>> MerklePatriciaTrie::Items()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  std::vector<std::uint8_t> prefix;
  CollectItems(root_.get(), prefix, out);
  return out;
}

}  // namespace nezha
