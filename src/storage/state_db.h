// StateDB: the account-model world state.
//
// Each Address (one state cell, e.g. an account's savings or checking
// balance) maps to a signed 64-bit value. The DB supports:
//  * immutable snapshots, used by the concurrent speculative execution phase
//    (every transaction of an epoch executes against the snapshot of epoch
//    e-1, §III.B);
//  * thread-safe concurrent writes (sharded locks), used by the grouped
//    commitment phase where transactions with equal sequence numbers commit
//    in parallel;
//  * authenticated commitments via a Merkle Patricia Trie (the state root
//    each block carries), and flushing to the underlying KVStore.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "storage/kvstore.h"
#include "storage/mpt.h"

namespace nezha {

/// The value stored at one state address (an account balance in SmallBank).
using StateValue = std::int64_t;

/// An immutable point-in-time view of the state. Reads are lock-free and
/// safe from any number of threads.
class StateSnapshot {
 public:
  using Map = std::unordered_map<std::uint64_t, StateValue>;

  StateSnapshot() : data_(std::make_shared<Map>()) {}
  StateSnapshot(std::shared_ptr<const Map> data, Hash256 root, EpochId epoch)
      : data_(std::move(data)), root_(root), epoch_(epoch) {}

  /// Missing addresses read as 0 (accounts start empty).
  StateValue Get(Address a) const {
    const auto it = data_->find(a.value);
    return it == data_->end() ? 0 : it->second;
  }

  bool Contains(Address a) const { return data_->contains(a.value); }
  std::size_t Size() const { return data_->size(); }
  const Hash256& root() const { return root_; }
  EpochId epoch() const { return epoch_; }

  /// Read-only access to the raw contents (state sync, tests).
  const Map& items() const { return *data_; }

 private:
  std::shared_ptr<const Map> data_;
  Hash256 root_{};
  EpochId epoch_ = 0;
};

/// One write produced by a committed transaction.
struct StateWrite {
  Address address;
  StateValue value;
};

class StateDB {
 public:
  /// kv may be null (no persistence); the MPT commitment always works.
  explicit StateDB(KVStore* kv = nullptr) : kv_(kv) {}

  StateValue Get(Address a) const;
  void Set(Address a, StateValue v);

  /// Applies a batch of writes. Safe to call concurrently from multiple
  /// threads as long as no two concurrent calls write the same address
  /// (guaranteed for Nezha's same-sequence-number commit groups).
  void ApplyWrites(std::span<const StateWrite> writes);

  /// Recomputes the MPT over all dirty addresses and returns the root.
  Hash256 RootHash();

  /// Creates an immutable snapshot tagged with the epoch id; also computes
  /// the current root so validation can check it.
  StateSnapshot MakeSnapshot(EpochId epoch);

  /// Flushes all dirty entries to the KVStore as one atomic batch.
  /// No-op (OK) when the DB was constructed without a KVStore.
  Status Flush();

  /// Appends every dirty entry (as canonical StateKey/EncodeValue puts) to
  /// `batch` after syncing the commitment trie, WITHOUT clearing the dirty
  /// markers — the caller owns the KV write (FullNode folds the state flush
  /// into one atomic epoch-commit batch) and calls ClearDirty() once it
  /// lands.
  void AppendDirtyTo(WriteBatch& batch);

  /// Marks every entry clean after the caller durably wrote the batch
  /// produced by AppendDirtyTo. Leaving entries dirty on a failed write is
  /// what makes a retried flush still complete.
  void ClearDirty();

  /// Canonical storage/commitment encoding of one state cell — shared by
  /// the KV flush path, the commitment trie, and state sync.
  static std::string StateKey(Address a);
  static std::string EncodeValue(StateValue v);

  /// Recovery: repopulates the DB from the "s/" records in the attached
  /// KVStore (the DB must be freshly constructed/empty). Loaded entries are
  /// marked dirty so the commitment trie resyncs on the next RootHash().
  Status LoadFromStorage();

  std::size_t Size() const;

 private:
  static constexpr std::size_t kNumShards = 64;

  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<std::uint64_t, StateValue> data GUARDED_BY(mutex);
    std::unordered_set<std::uint64_t> dirty GUARDED_BY(mutex);
  };

  static std::size_t ShardOf(Address a) {
    // Fixed SplitMix64 finalizer, NOT std::hash: shard choice only
    // partitions locks, but pinning it keeps lock-contention profiles (and
    // any shard-labeled diagnostics) identical across standard-library
    // versions. std::hash's value is implementation-defined.
    std::uint64_t x = a.value + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31)) % kNumShards;
  }

  std::array<Shard, kNumShards> shards_;
  KVStore* kv_;

  Mutex trie_mutex_;
  MerklePatriciaTrie trie_ GUARDED_BY(trie_mutex_);
};

}  // namespace nezha
