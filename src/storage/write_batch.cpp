#include "storage/write_batch.h"

#include "common/bytes.h"

namespace nezha {

std::string WriteBatch::Serialize() const {
  std::string out;
  PutVarint64(out, ops_.size());
  for (const Op& op : ops_) {
    out.push_back(op.type == OpType::kPut ? '\x01' : '\x02');
    PutVarint64(out, op.key.size());
    out += op.key;
    if (op.type == OpType::kPut) {
      PutVarint64(out, op.value.size());
      out += op.value;
    }
  }
  return out;
}

bool WriteBatch::Deserialize(std::string_view data, WriteBatch* out) {
  out->Clear();
  std::size_t offset = 0;
  std::uint64_t count = 0;
  if (!GetVarint64(data, &offset, &count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (offset >= data.size()) return false;
    const char tag = data[offset++];
    std::uint64_t key_len = 0;
    if (!GetVarint64(data, &offset, &key_len)) return false;
    if (offset + key_len > data.size()) return false;
    std::string key(data.substr(offset, key_len));
    offset += key_len;
    if (tag == '\x01') {
      std::uint64_t value_len = 0;
      if (!GetVarint64(data, &offset, &value_len)) return false;
      if (offset + value_len > data.size()) return false;
      out->Put(key, data.substr(offset, value_len));
      offset += value_len;
    } else if (tag == '\x02') {
      out->Delete(key);
    } else {
      return false;
    }
  }
  return offset == data.size();
}

}  // namespace nezha
