// Merkle Patricia Trie (hexary) providing authenticated state commitments.
//
// The paper's prototype organizes account state in an MPT; every block
// carries the state root of the previous epoch and validation checks it
// (§III.B "Validation phase"). This implementation supports Put / Get /
// Delete, deterministic root hashing (SHA-256 over a canonical node
// encoding), and Merkle proofs with offline verification.
//
// Node kinds follow Ethereum's design: Leaf (key suffix + value),
// Extension (shared nibble run + one child), Branch (16 children + optional
// value). Keys are arbitrary byte strings, expanded to nibbles internally.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"

namespace nezha {

class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie() = default;
  ~MerklePatriciaTrie() = default;

  MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept = default;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) noexcept = default;

  /// Inserts or overwrites key -> value. Empty values are legal.
  void Put(std::string_view key, std::string_view value);

  /// Returns the value or NotFound.
  Result<std::string> Get(std::string_view key) const;

  /// Removes the key; returns true if it was present.
  bool Delete(std::string_view key);

  /// Number of key/value pairs.
  std::size_t Size() const { return size_; }

  /// Deterministic commitment over the full contents. The root of an empty
  /// trie is the all-zero hash. Cached between mutations.
  Hash256 RootHash() const;

  /// Serialized nodes along the path from the root to `key` (inclusive).
  /// Empty result if the trie is empty.
  std::vector<std::string> GenerateProof(std::string_view key) const;

  /// Verifies a proof against a root: returns the proven value, NotFound for
  /// a valid non-membership proof, or Corruption if the proof is invalid.
  static Result<std::string> VerifyProof(const Hash256& root,
                                         std::string_view key,
                                         const std::vector<std::string>& proof);

  /// All key/value pairs in lexicographic key order (for tests/inspection).
  std::vector<std::pair<std::string, std::string>> Items() const;

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  enum class Kind : std::uint8_t { kLeaf, kExtension, kBranch };

  struct Node {
    Kind kind;
    // Leaf/Extension: path nibbles. Branch: unused.
    std::vector<std::uint8_t> path;
    // Leaf: the value. Branch: value stored at this exact key (may be unset).
    std::optional<std::string> value;
    // Extension: children[0] is the single child. Branch: 16 slots.
    std::array<NodePtr, 16> children{};
    NodePtr ext_child;

    // Cached hash; empty optional means "dirty".
    mutable std::optional<Hash256> cached_hash;

    explicit Node(Kind k) : kind(k) {}
  };

  static std::vector<std::uint8_t> ToNibbles(std::string_view key);
  static std::size_t CommonPrefixLen(const std::vector<std::uint8_t>& a,
                                     std::size_t a_off,
                                     const std::vector<std::uint8_t>& b,
                                     std::size_t b_off);

  /// Recursive insert; returns the (possibly new) subtree root.
  NodePtr Insert(NodePtr node, const std::vector<std::uint8_t>& nibbles,
                 std::size_t depth, std::string_view value);

  /// Recursive delete; sets *removed, returns the new subtree root
  /// (possibly null / collapsed).
  NodePtr Remove(NodePtr node, const std::vector<std::uint8_t>& nibbles,
                 std::size_t depth, bool* removed);

  /// Collapses a branch node that has <= 1 child and no value.
  static NodePtr Normalize(NodePtr node);

  const Node* Find(const Node* node, const std::vector<std::uint8_t>& nibbles,
                   std::size_t depth) const;

  static Hash256 HashNode(const Node& node);
  static std::string EncodeNode(const Node& node);

  void CollectItems(const Node* node, std::vector<std::uint8_t>& prefix,
                    std::vector<std::pair<std::string, std::string>>& out)
      const;
  void CollectProof(const Node* node,
                    const std::vector<std::uint8_t>& nibbles, std::size_t depth,
                    std::vector<std::string>& out) const;

  NodePtr root_;
  std::size_t size_ = 0;
};

}  // namespace nezha
