#include "storage/state_db.h"

#include <algorithm>

#include "common/bytes.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nezha {
namespace {

// Hot-path metric handles: resolved once, then a relaxed atomic add per
// access (docs/OBSERVABILITY.md).
obs::Counter* ReadsCounter() {
  static obs::Counter* c =
      obs::Registry().GetCounter("nezha_statedb_reads_total");
  return c;
}

obs::Counter* WritesCounter() {
  static obs::Counter* c =
      obs::Registry().GetCounter("nezha_statedb_writes_total");
  return c;
}

}  // namespace

StateValue StateDB::Get(Address a) const {
  ReadsCounter()->Inc();
  const Shard& shard = shards_[ShardOf(a)];
  MutexLock lock(shard.mutex);
  const auto it = shard.data.find(a.value);
  return it == shard.data.end() ? 0 : it->second;
}

void StateDB::Set(Address a, StateValue v) {
  WritesCounter()->Inc();
  Shard& shard = shards_[ShardOf(a)];
  MutexLock lock(shard.mutex);
  shard.data[a.value] = v;
  shard.dirty.insert(a.value);
}

void StateDB::ApplyWrites(std::span<const StateWrite> writes) {
  for (const StateWrite& w : writes) Set(w.address, w.value);
}

std::string StateDB::StateKey(Address a) {
  std::string key = "s/";
  PutFixed64(key, a.value);
  return key;
}

std::string StateDB::EncodeValue(StateValue v) {
  std::string out;
  PutFixed64(out, static_cast<std::uint64_t>(v));
  return out;
}

Hash256 StateDB::RootHash() {
  MutexLock trie_lock(trie_mutex_);
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (std::uint64_t addr : shard.dirty) {
      trie_.Put(StateKey(Address(addr)), EncodeValue(shard.data[addr]));
    }
    // Entries stay dirty until Flush() persists them; the trie write is
    // idempotent so re-putting on the next RootHash call is harmless.
  }
  return trie_.RootHash();
}

StateSnapshot StateDB::MakeSnapshot(EpochId epoch) {
  const Hash256 root = RootHash();
  auto merged = std::make_shared<StateSnapshot::Map>();
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    merged->insert(shard.data.begin(), shard.data.end());
  }
  return StateSnapshot(std::move(merged), root, epoch);
}

void StateDB::AppendDirtyTo(WriteBatch& batch) {
  // Sync the commitment trie before the dirty markers are consumed — the
  // trie and the KV store share the same dirty set.
  RootHash();
  // The dirty sets are unordered and were populated by however many threads
  // executed the epoch, so their iteration order varies run to run. Sort
  // before appending: the commit batch (and the journal redo payload built
  // from it) must be byte-identical for identical state transitions, or the
  // kCommit determinism checkpoint and cross-node journal comparisons break.
  std::vector<std::uint64_t> dirty;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    dirty.insert(dirty.end(), shard.dirty.begin(), shard.dirty.end());
  }
  std::sort(dirty.begin(), dirty.end());
  for (std::uint64_t addr : dirty) {
    Shard& shard = shards_[ShardOf(Address(addr))];
    MutexLock lock(shard.mutex);
    batch.Put(StateKey(Address(addr)), EncodeValue(shard.data[addr]));
  }
}

void StateDB::ClearDirty() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.dirty.clear();
  }
}

Status StateDB::Flush() {
  const double start_us = obs::PhaseTracer::NowUs();
  if (const fault::Hit hit = fault::Check(fault::sites::kStateFlush);
      hit.action != fault::Action::kNone) {
    if (hit.action == fault::Action::kCrash) {
      return fault::CrashStatus(fault::sites::kStateFlush);
    }
    return Status::Unavailable("fault: state flush failed");
  }
  WriteBatch batch;
  AppendDirtyTo(batch);
  Status status = Status::Ok();
  if (kv_ != nullptr && !batch.Empty()) status = kv_->Write(batch);
  if (status.ok()) ClearDirty();

  auto& registry = obs::Registry();
  registry.GetCounter("nezha_statedb_flushes_total")->Inc();
  registry.GetCounter("nezha_statedb_flush_entries_total")->Inc(batch.Count());
  registry.GetCounter("nezha_statedb_flush_bytes_total")->Inc(batch.ByteSize());
  registry.GetHistogram("nezha_statedb_flush_us")
      ->Observe(obs::PhaseTracer::NowUs() - start_us);
  return status;
}

Status StateDB::LoadFromStorage() {
  if (kv_ == nullptr) return Status::InvalidArgument("no KV store attached");
  if (Size() != 0) return Status::InvalidArgument("state DB is not empty");
  for (auto it = kv_->NewIterator("s/", "s0"); it.Valid(); it.Next()) {
    if (it.key().size() != 10 || it.value().size() != 8) {
      return Status::Corruption("bad state record");
    }
    const Address address(GetFixed64(std::string_view(it.key()).substr(2)));
    const auto value =
        static_cast<StateValue>(GetFixed64(it.value()));
    Set(address, value);
  }
  return Status::Ok();
}

std::size_t StateDB::Size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.data.size();
  }
  return total;
}

}  // namespace nezha
