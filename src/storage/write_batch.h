// WriteBatch: an ordered group of Put/Delete operations applied atomically
// to a KVStore (LevelDB-shaped API).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nezha {

class WriteBatch {
 public:
  enum class OpType { kPut, kDelete };

  struct Op {
    OpType type;
    std::string key;
    std::string value;  // empty for deletes
  };

  void Put(std::string_view key, std::string_view value) {
    ops_.push_back({OpType::kPut, std::string(key), std::string(value)});
  }

  void Delete(std::string_view key) {
    ops_.push_back({OpType::kDelete, std::string(key), {}});
  }

  void Clear() { ops_.clear(); }

  std::size_t Count() const { return ops_.size(); }
  bool Empty() const { return ops_.empty(); }

  /// Payload bytes carried by the batch (keys + values, framing excluded) —
  /// what the flush-bytes metric reports.
  std::size_t ByteSize() const {
    std::size_t total = 0;
    for (const Op& op : ops_) total += op.key.size() + op.value.size();
    return total;
  }

  const std::vector<Op>& ops() const { return ops_; }

  /// Serializes the batch (varint-framed) for checkpoints and tests.
  std::string Serialize() const;

  /// Parses a serialized batch; returns false on corruption.
  static bool Deserialize(std::string_view data, WriteBatch* out);

 private:
  std::vector<Op> ops_;
};

}  // namespace nezha
