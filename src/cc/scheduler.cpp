#include "cc/scheduler.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/det_checkpoint.h"
#include "analysis/schedule_verifier.h"
#include "common/canonical_text.h"
#include "cc/nezha/tx_sorter.h"
#include "obs/flight_recorder.h"
#include "obs/tx_lifecycle.h"

namespace nezha {
namespace {

std::optional<bool>& VerificationOverride() {
  static std::optional<bool> override_value;
  return override_value;
}

bool VerificationDefault() {
  const char* env = std::getenv("NEZHA_VERIFY_SCHEDULES");
  if (env != nullptr) {
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0 &&
           std::strcmp(env, "off") != 0;
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace

bool ScheduleVerificationEnabled() {
  if (VerificationOverride().has_value()) return *VerificationOverride();
  static const bool resolved = VerificationDefault();
  return resolved;
}

void SetScheduleVerification(std::optional<bool> enabled) {
  VerificationOverride() = enabled;
}

Result<Schedule> Scheduler::BuildSchedule(
    std::span<const ReadWriteSet> rwsets) {
  Result<Schedule> result = BuildScheduleImpl(rwsets);
  if (result.ok()) {
    // kSort determinism checkpoint: the scheduling pipeline's final output,
    // recorded for every scheme at the same boundary. No-op unless the
    // recorder is enabled AND a pipeline epoch is open (unit tests and
    // microbenches build schedules outside any epoch).
    analysis::DetCheckpointRecorder& det =
        analysis::DetCheckpointRecorder::Global();
    if (det.enabled()) {
      det.Record(analysis::DetStage::kSort,
                 CanonicalScheduleEncoding(*result));
    }
  }
  if (!result.ok() || !ScheduleVerificationEnabled()) return result;

  const auto start = std::chrono::steady_clock::now();
  analysis::VerifierOptions options;
  options.snapshot_semantics = snapshot_semantics();
  options.reordered = result->reordered;
  const analysis::VerifyReport report =
      analysis::VerifySchedule(*result, rwsets, options);
  const double micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();

  if (obs::MetricsEnabled()) {
    auto& registry = obs::Registry();
    const obs::Labels by_scheduler = {{"scheduler", std::string(name())}};
    registry.GetCounter("nezha_verify_schedules_total", by_scheduler)->Inc();
    registry.GetHistogram("nezha_verify_us", by_scheduler)->Observe(micros);
    if (!report.ok) {
      registry.GetCounter("nezha_verify_failures_total", by_scheduler)->Inc();
    }
  }

  if (!report.ok) {
    const std::string counterexample = report.counterexample.ToString();
    std::fprintf(stderr,
                 "[nezha] serializability oracle REJECTED a %.*s schedule "
                 "(%zu txs): %s\n",
                 static_cast<int>(name().size()), name().data(), rwsets.size(),
                 counterexample.c_str());
    // Leave the rejected schedule in the flight recorder and trigger a
    // post-mortem dump: the JSONL names the offending epoch and carries the
    // full abort attribution of the schedule the oracle refused.
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    obs::EpochFlightRecord record;
    record.epoch = recorder.CurrentEpoch();
    record.scheme = std::string(name());
    record.txs = static_cast<std::uint32_t>(rwsets.size());
    record.committed = static_cast<std::uint32_t>(result->NumCommitted());
    record.aborted = static_cast<std::uint32_t>(result->NumAborted());
    record.cc_ms = metrics().TotalUs() / 1000.0;
    record.acg_vertices = metrics().graph_vertices;
    record.acg_edges = metrics().graph_edges;
    record.attribution = result->attribution;
    recorder.Record(std::move(record));
    recorder.DumpPostMortem("oracle-rejection");
    return Status::Internal("schedule failed serializability verification: " +
                            counterexample);
  }
  return result;
}

namespace {

std::string Str(std::string_view s) { return std::string(s); }

void PublishPhase(obs::MetricsRegistry& registry, const std::string& scheduler,
                  const char* phase, double micros) {
  const obs::Labels labels = {{"scheduler", scheduler}, {"phase", phase}};
  registry.GetHistogram("nezha_scheduler_phase_us", labels)->Observe(micros);
  registry.GetGauge("nezha_scheduler_last_phase_ns", labels)
      ->Set(static_cast<std::int64_t>(micros * 1000.0));
}

/// Maps a scheme's generic conflict reason onto the abort taxonomy for
/// schedulers that do not emit per-abort records themselves: reasons naming
/// a cycle (cg's "cycle" / "budget-exhausted", nezha's "unserializable"
/// fallback) are dependency-cycle casualties; everything else (occ's
/// "stale-read") is a read-write conflict.
obs::ConflictKind KindFromReason(std::string_view reason) {
  if (reason.find("cycle") != std::string_view::npos ||
      reason.find("budget") != std::string_view::npos ||
      reason.find("unserializable") != std::string_view::npos) {
    return obs::ConflictKind::kRankCycle;
  }
  return obs::ConflictKind::kReadWrite;
}

/// Ensures every aborted transaction carries exactly one AbortRecord:
/// reverts (rwset.ok == false) become kReverted, scheduler aborts without a
/// sorter-emitted record get KindFromReason(conflict_reason).
void CompleteAttribution(Schedule& schedule,
                         std::span<const ReadWriteSet> rwsets,
                         std::string_view conflict_reason) {
  std::vector<bool> has_record(schedule.TxCount(), false);
  for (const obs::AbortRecord& r : schedule.attribution.aborts) {
    if (r.tx < has_record.size()) has_record[r.tx] = true;
  }
  for (TxIndex t = 0; t < schedule.TxCount(); ++t) {
    if (!schedule.aborted[t] || has_record[t]) continue;
    obs::AbortRecord record;
    record.tx = t;
    const bool reverted = t < rwsets.size() && !rwsets[t].ok;
    record.kind = reverted ? obs::ConflictKind::kReverted
                           : KindFromReason(conflict_reason);
    schedule.attribution.aborts.push_back(record);
  }
}

}  // namespace

void PublishSchedulerObs(std::string_view scheduler,
                         const SchedulerMetrics& metrics, Schedule& schedule,
                         std::span<const ReadWriteSet> rwsets,
                         std::string_view conflict_reason) {
  CompleteAttribution(schedule, rwsets, conflict_reason);

  // Lifecycle: this schedule IS the epoch's concurrency-control decision —
  // stamp kScheduled for everything and join each abort with its
  // attribution record. Guarded on the epoch size so schedule builds outside
  // an epoch (microbenches, unit tests) never stamp a stale epoch.
  if (obs::TxLifecycleTracer& lifecycle = obs::Lifecycle();
      lifecycle.enabled() && lifecycle.EpochActive() &&
      lifecycle.CurrentEpochSize() == schedule.TxCount()) {
    lifecycle.StampAll(obs::TxStage::kScheduled);
    if (!schedule.attribution.aborts.empty()) {
      std::vector<std::pair<std::uint32_t, std::uint8_t>> aborts;
      aborts.reserve(schedule.attribution.aborts.size());
      for (const obs::AbortRecord& r : schedule.attribution.aborts) {
        aborts.emplace_back(r.tx, static_cast<std::uint8_t>(r.kind));
      }
      lifecycle.MarkAbortedBatch(aborts);
    }
  }

  if (!obs::MetricsEnabled()) return;
  auto& registry = obs::Registry();
  const std::string name = Str(scheduler);
  const obs::Labels by_scheduler = {{"scheduler", name}};

  PublishPhase(registry, name, "construction", metrics.construction_us);
  PublishPhase(registry, name, "division", metrics.cycle_us);
  PublishPhase(registry, name, "sorting", metrics.sorting_us);

  registry.GetCounter("nezha_scheduler_builds_total", by_scheduler)->Inc();
  registry.GetCounter("nezha_scheduler_txs_total", by_scheduler)
      ->Inc(schedule.TxCount());
  registry.GetCounter("nezha_scheduler_committed_total", by_scheduler)
      ->Inc(schedule.NumCommitted());

  std::uint64_t reverted = 0;
  for (const ReadWriteSet& rw : rwsets) reverted += rw.ok ? 0 : 1;
  const std::uint64_t conflicted = schedule.NumAborted() - reverted;
  if (reverted > 0) {
    registry
        .GetCounter("nezha_scheduler_aborts_total",
                    {{"scheduler", name}, {"reason", "reverted"}})
        ->Inc(reverted);
  }
  if (conflicted > 0) {
    registry
        .GetCounter("nezha_scheduler_aborts_total",
                    {{"scheduler", name}, {"reason", Str(conflict_reason)}})
        ->Inc(conflicted);
  }

  registry.GetGauge("nezha_scheduler_graph_vertices", by_scheduler)
      ->Set(static_cast<std::int64_t>(metrics.graph_vertices));
  registry.GetGauge("nezha_scheduler_graph_edges", by_scheduler)
      ->Set(static_cast<std::int64_t>(metrics.graph_edges));
  registry.GetGauge("nezha_scheduler_last_cycles", by_scheduler)
      ->Set(static_cast<std::int64_t>(metrics.cycles_found));
  registry.GetGauge("nezha_scheduler_last_reordered", by_scheduler)
      ->Set(static_cast<std::int64_t>(metrics.reordered_txs));
  registry.GetGauge("nezha_scheduler_resource_exhausted", by_scheduler)
      ->Set(metrics.resource_exhausted ? 1 : 0);
  if (metrics.cycles_found > 0) {
    registry.GetCounter("nezha_scheduler_cycles_total", by_scheduler)
        ->Inc(metrics.cycles_found);
  }
  if (metrics.reordered_txs > 0) {
    registry.GetCounter("nezha_scheduler_reordered_total", by_scheduler)
        ->Inc(metrics.reordered_txs);
  }

  obs::BucketHistogram* group_size = registry.GetHistogram(
      "nezha_scheduler_commit_group_size", by_scheduler,
      obs::DefaultSizeBounds());
  for (const auto& group : schedule.groups) {
    group_size->Observe(static_cast<double>(group.size()));
  }

  obs::PublishAttribution(scheduler, obs::BuildRollup(schedule.attribution));
}

std::string CanonicalScheduleEncoding(const Schedule& schedule) {
  std::string out = "schedule txs=" + std::to_string(schedule.TxCount()) +
                    " committed=" + std::to_string(schedule.NumCommitted()) +
                    " aborted=" + std::to_string(schedule.NumAborted()) +
                    " groups=" + std::to_string(schedule.groups.size()) + "\n";
  out.reserve(out.size() + 26 * schedule.TxCount() +
              8 * schedule.NumCommitted() + 8 * schedule.reordered.size());
  for (TxIndex t = 0; t < schedule.TxCount(); ++t) {
    out += "t ";
    AppendU64(out, t);
    if (schedule.aborted[t]) {
      out += " aborted\n";
    } else {
      out += " s=";
      AppendU64(out, schedule.sequence[t]);
      out += "\n";
    }
  }
  for (std::size_t g = 0; g < schedule.groups.size(); ++g) {
    out += "g ";
    AppendU64(out, g);
    out += ':';
    for (std::size_t i = 0; i < schedule.groups[g].size(); ++i) {
      if (i != 0) out += ',';
      AppendU64(out, schedule.groups[g][i]);
    }
    out += "\n";
  }
  out += "ro";
  for (const TxIndex t : schedule.reordered) {
    out += ' ';
    AppendU64(out, t);
  }
  out += "\n";
  out += CanonicalAbortRecordsEncoding(schedule.attribution.aborts);
  return out;
}

SchedulerMetrics SchedulerMetricsFromSnapshot(
    const obs::RegistrySnapshot& snapshot, std::string_view scheduler) {
  const std::string name = Str(scheduler);
  const auto phase_us = [&](const char* phase) {
    const std::string labels = obs::RenderLabels(
        {{"scheduler", name}, {"phase", phase}});
    return snapshot.Value("nezha_scheduler_last_phase_ns", labels) / 1000.0;
  };
  const std::string labels = obs::RenderLabels({{"scheduler", name}});
  SchedulerMetrics m;
  m.construction_us = phase_us("construction");
  m.cycle_us = phase_us("division");
  m.sorting_us = phase_us("sorting");
  m.graph_vertices = static_cast<std::size_t>(
      snapshot.Value("nezha_scheduler_graph_vertices", labels));
  m.graph_edges = static_cast<std::size_t>(
      snapshot.Value("nezha_scheduler_graph_edges", labels));
  m.cycles_found = static_cast<std::uint64_t>(
      snapshot.Value("nezha_scheduler_last_cycles", labels));
  m.resource_exhausted =
      snapshot.Value("nezha_scheduler_resource_exhausted", labels) != 0;
  m.reordered_txs = static_cast<std::size_t>(
      snapshot.Value("nezha_scheduler_last_reordered", labels));
  return m;
}

}  // namespace nezha
