#include "cc/scheduler.h"

#include <algorithm>
#include <map>

namespace nezha {

void Schedule::RebuildGroups() {
  groups.clear();
  std::map<SeqNum, std::vector<TxIndex>> by_seq;
  for (TxIndex t = 0; t < sequence.size(); ++t) {
    if (aborted[t]) continue;
    by_seq[sequence[t]].push_back(t);
  }
  groups.reserve(by_seq.size());
  for (auto& [seq, txs] : by_seq) {
    std::sort(txs.begin(), txs.end());
    groups.push_back(std::move(txs));
  }
}

}  // namespace nezha
