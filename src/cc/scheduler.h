// Scheduler: the concurrency-control interface (the paper's "concurrency
// control phase").
//
// Input: the read/write sets produced by speculatively executing one epoch's
// transaction batch against the previous epoch's snapshot.
// Output: a Schedule — which transactions commit, which abort, and a total
// commit order expressed as commit groups: transactions in the same group
// carry the same sequence number and may commit concurrently (they are
// guaranteed conflict-free); groups commit in ascending sequence order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/abort_attribution.h"
#include "obs/metrics.h"
#include "vm/rwset.h"

namespace nezha {

struct Schedule {
  /// Per-transaction sequence number (kUnassignedSeq for aborted txs).
  std::vector<SeqNum> sequence;
  /// Per-transaction abort flag.
  std::vector<bool> aborted;
  /// Commit groups in ascending sequence order; within a group, transactions
  /// are listed by ascending TxIndex. Aborted transactions appear nowhere.
  std::vector<std::vector<TxIndex>> groups;
  /// Committed transactions the scheduler re-seated via the §IV.D reordering
  /// enhancement (empty for schemes without it). The serializability oracle
  /// checks these against the reorder landing rule.
  std::vector<TxIndex> reordered;
  /// Why each aborted transaction aborted, plus rank-division decision
  /// counters and hot addresses. Schedulers fill what they know;
  /// PublishSchedulerObs completes it (reverts, scheme-generic conflicts) so
  /// every scheme leaves BuildSchedule with one record per aborted tx.
  obs::ScheduleAttribution attribution;

  std::size_t TxCount() const { return sequence.size(); }
  std::size_t NumAborted() const {
    std::size_t n = 0;
    for (bool a : aborted) n += a ? 1 : 0;
    return n;
  }
  std::size_t NumCommitted() const { return TxCount() - NumAborted(); }
  double AbortRate() const {
    return TxCount() == 0
               ? 0
               : static_cast<double>(NumAborted()) /
                     static_cast<double>(TxCount());
  }

  /// Rebuilds `groups` from `sequence` + `aborted` (helper for schedulers).
  /// Defined inline so src/analysis can use Schedule without linking the
  /// scheduler implementations (which link src/analysis for the oracle).
  void RebuildGroups() {
    groups.clear();
    std::map<SeqNum, std::vector<TxIndex>> by_seq;
    for (TxIndex t = 0; t < sequence.size(); ++t) {
      if (aborted[t]) continue;
      by_seq[sequence[t]].push_back(t);
    }
    groups.reserve(by_seq.size());
    for (auto& [seq, txs] : by_seq) {
      std::sort(txs.begin(), txs.end());
      groups.push_back(std::move(txs));
    }
  }
};

/// Phase timings and size counters a scheduler reports, matching the paper's
/// Fig. 10 sub-phase breakdown.
struct SchedulerMetrics {
  double construction_us = 0;    ///< graph construction
  double cycle_us = 0;           ///< CG: cycle detection+removal; Nezha: rank division
  double sorting_us = 0;         ///< CG: topological sort; Nezha: transaction sorting
  std::size_t graph_vertices = 0;
  std::size_t graph_edges = 0;
  std::uint64_t cycles_found = 0;       ///< CG only
  bool resource_exhausted = false;      ///< CG cycle enumeration blew its budget
  std::size_t reordered_txs = 0;        ///< Nezha enhanced design (§IV.D)

  double TotalUs() const { return construction_us + cycle_us + sorting_us; }
};

/// Publishes one BuildSchedule outcome into the global metrics registry
/// (docs/OBSERVABILITY.md), all series labeled scheduler=<name>:
///   * nezha_scheduler_phase_us{phase=construction|division|sorting} hists
///     plus nezha_scheduler_last_phase_ns{phase} gauges (last build);
///   * nezha_scheduler_aborts_total{reason=...} — reason="reverted" for
///     application-level reverts, `conflict_reason` for scheduler aborts;
///   * nezha_scheduler_{txs,committed,builds,reordered,cycles}_total;
///   * last-build gauges for graph size, cycles, reorders and exhaustion;
///   * the abort-attribution series of obs::PublishAttribution.
/// Every Scheduler implementation calls this at the end of BuildSchedule,
/// which makes SchedulerMetrics (and EpochReport.cc_metrics) a thin view
/// over the registry: SchedulerMetricsFromSnapshot reconstructs it.
///
/// Also *completes* schedule.attribution in place: every aborted transaction
/// without a record gets one — kReverted when its rwset.ok is false,
/// otherwise a record whose kind is derived from `conflict_reason` (reasons
/// mentioning cycles map to kRankCycle, everything else to kReadWrite) — so
/// downstream consumers (flight recorder, benches, fig11) see one record per
/// abort for every scheme, not just Nezha.
void PublishSchedulerObs(std::string_view scheduler,
                         const SchedulerMetrics& metrics, Schedule& schedule,
                         std::span<const ReadWriteSet> rwsets,
                         std::string_view conflict_reason);

/// Rebuilds the most recent build's SchedulerMetrics from a registry
/// snapshot (inverse of PublishSchedulerObs; timing fields round-trip
/// through nanosecond gauges, so they match to < 1 ns).
SchedulerMetrics SchedulerMetricsFromSnapshot(
    const obs::RegistrySnapshot& snapshot, std::string_view scheduler);

/// Canonical text encoding of a schedule — per-tx sequence/abort, commit
/// groups, §IV.D reorders, and the abort-decision records. Every scheme's
/// BuildSchedule digests this into the kSort determinism checkpoint
/// (src/analysis/det_checkpoint.h), so "same inputs, same schedule" is
/// checkable per stage, per scheme, across thread and shard configurations.
std::string CanonicalScheduleEncoding(const Schedule& schedule);

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  /// Builds a schedule for one batch. Deterministic: identical inputs yield
  /// identical schedules.
  ///
  /// When schedule verification is enabled (ScheduleVerificationEnabled),
  /// every successful build is re-checked by the independent
  /// serializability oracle (src/analysis) before being returned; a
  /// violation dumps the counterexample to stderr and surfaces as
  /// Status::Internal. Outcomes are published as
  /// nezha_verify_{schedules,failures}_total counters and the
  /// nezha_verify_us histogram, labeled scheduler=<name>.
  Result<Schedule> BuildSchedule(std::span<const ReadWriteSet> rwsets);

  /// Metrics of the most recent BuildSchedule call.
  virtual const SchedulerMetrics& metrics() const = 0;

 protected:
  /// Scheme-specific schedule construction; BuildSchedule wraps this with
  /// the verification hook (template method).
  virtual Result<Schedule> BuildScheduleImpl(
      std::span<const ReadWriteSet> rwsets) = 0;

  /// True when the scheme's reads observed the pre-epoch snapshot
  /// (nezha/occ/cg) — the full precedence-graph oracle applies. Serial
  /// execution against the evolving state overrides this to false.
  virtual bool snapshot_semantics() const { return true; }
};

/// Whether BuildSchedule re-checks every schedule with the serializability
/// oracle. Resolution order: SetScheduleVerification override if set, else
/// the NEZHA_VERIFY_SCHEDULES environment variable ("0"/"false"/"off"
/// disables, anything else enables; read once per process), else on in
/// debug builds (NDEBUG not defined) and off in release.
bool ScheduleVerificationEnabled();

/// Programmatic override (wins over the environment variable); pass
/// std::nullopt to fall back to env/build-type resolution.
void SetScheduleVerification(std::optional<bool> enabled);

}  // namespace nezha
