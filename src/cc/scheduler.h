// Scheduler: the concurrency-control interface (the paper's "concurrency
// control phase").
//
// Input: the read/write sets produced by speculatively executing one epoch's
// transaction batch against the previous epoch's snapshot.
// Output: a Schedule — which transactions commit, which abort, and a total
// commit order expressed as commit groups: transactions in the same group
// carry the same sequence number and may commit concurrently (they are
// guaranteed conflict-free); groups commit in ascending sequence order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "vm/rwset.h"

namespace nezha {

struct Schedule {
  /// Per-transaction sequence number (kUnassignedSeq for aborted txs).
  std::vector<SeqNum> sequence;
  /// Per-transaction abort flag.
  std::vector<bool> aborted;
  /// Commit groups in ascending sequence order; within a group, transactions
  /// are listed by ascending TxIndex. Aborted transactions appear nowhere.
  std::vector<std::vector<TxIndex>> groups;

  std::size_t TxCount() const { return sequence.size(); }
  std::size_t NumAborted() const {
    std::size_t n = 0;
    for (bool a : aborted) n += a ? 1 : 0;
    return n;
  }
  std::size_t NumCommitted() const { return TxCount() - NumAborted(); }
  double AbortRate() const {
    return TxCount() == 0
               ? 0
               : static_cast<double>(NumAborted()) /
                     static_cast<double>(TxCount());
  }

  /// Rebuilds `groups` from `sequence` + `aborted` (helper for schedulers).
  void RebuildGroups();
};

/// Phase timings and size counters a scheduler reports, matching the paper's
/// Fig. 10 sub-phase breakdown.
struct SchedulerMetrics {
  double construction_us = 0;    ///< graph construction
  double cycle_us = 0;           ///< CG: cycle detection+removal; Nezha: rank division
  double sorting_us = 0;         ///< CG: topological sort; Nezha: transaction sorting
  std::size_t graph_vertices = 0;
  std::size_t graph_edges = 0;
  std::uint64_t cycles_found = 0;       ///< CG only
  bool resource_exhausted = false;      ///< CG cycle enumeration blew its budget
  std::size_t reordered_txs = 0;        ///< Nezha enhanced design (§IV.D)

  double TotalUs() const { return construction_us + cycle_us + sorting_us; }
};

/// Publishes one BuildSchedule outcome into the global metrics registry
/// (docs/OBSERVABILITY.md), all series labeled scheduler=<name>:
///   * nezha_scheduler_phase_us{phase=construction|division|sorting} hists
///     plus nezha_scheduler_last_phase_ns{phase} gauges (last build);
///   * nezha_scheduler_aborts_total{reason=...} — reason="reverted" for
///     application-level reverts, `conflict_reason` for scheduler aborts;
///   * nezha_scheduler_{txs,committed,builds,reordered,cycles}_total;
///   * last-build gauges for graph size, cycles, reorders and exhaustion.
/// Every Scheduler implementation calls this at the end of BuildSchedule,
/// which makes SchedulerMetrics (and EpochReport.cc_metrics) a thin view
/// over the registry: SchedulerMetricsFromSnapshot reconstructs it.
void PublishSchedulerObs(std::string_view scheduler,
                         const SchedulerMetrics& metrics,
                         const Schedule& schedule,
                         std::span<const ReadWriteSet> rwsets,
                         std::string_view conflict_reason);

/// Rebuilds the most recent build's SchedulerMetrics from a registry
/// snapshot (inverse of PublishSchedulerObs; timing fields round-trip
/// through nanosecond gauges, so they match to < 1 ns).
SchedulerMetrics SchedulerMetricsFromSnapshot(
    const obs::RegistrySnapshot& snapshot, std::string_view scheduler);

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  /// Builds a schedule for one batch. Deterministic: identical inputs yield
  /// identical schedules.
  virtual Result<Schedule> BuildSchedule(
      std::span<const ReadWriteSet> rwsets) = 0;

  /// Metrics of the most recent BuildSchedule call.
  virtual const SchedulerMetrics& metrics() const = 0;
};

}  // namespace nezha
