#include "cc/nezha/rank_division.h"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "common/canonical_text.h"

namespace nezha {
namespace {

using Vertex = Digraph::Vertex;

/// Shared removal bookkeeping for both implementations.
struct LiveDegrees {
  explicit LiveDegrees(const Digraph& g)
      : graph(g),
        reversed(g.Reversed()),
        in_degree(g.InDegrees()),
        out_degree(g.NumVertices()),
        removed(g.NumVertices(), false) {
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      out_degree[v] = g.OutDegree(v);
    }
  }

  /// Removes v; calls on_zero(w) for every successor whose in-degree drops
  /// to zero.
  template <typename OnZero>
  void Remove(Vertex v, OnZero on_zero) {
    removed[v] = true;
    for (Vertex w : graph.OutNeighbors(v)) {
      if (removed[w]) continue;
      if (--in_degree[w] == 0) on_zero(w);
    }
    for (Vertex u : reversed.OutNeighbors(v)) {
      if (removed[u]) continue;
      --out_degree[u];
    }
  }

  const Digraph& graph;
  const Digraph reversed;
  std::vector<std::size_t> in_degree;
  std::vector<std::size_t> out_degree;
  std::vector<bool> removed;
};

}  // namespace

std::vector<Digraph::Vertex> ComputeSortingRanksReference(
    const Digraph& g, RankPolicy policy) {
  // The textbook rendering of Algorithm 1: every round either takes the
  // smallest-subscript in-degree-0 vertex, or — when a cycle blocks
  // everything — scans all live vertices for the tie-break pick.
  // O(V * breaks); kept as the oracle the optimized version is tested
  // against (and as a faithful rendition of the paper's pseudocode).
  const std::size_t n = g.NumVertices();
  LiveDegrees live(g);

  std::vector<Vertex> order;
  order.reserve(n);
  std::priority_queue<Vertex, std::vector<Vertex>, std::greater<>> ready;
  for (Vertex v = 0; v < n; ++v) {
    if (live.in_degree[v] == 0) ready.push(v);
  }
  const auto remove_vertex = [&](Vertex v) {
    order.push_back(v);
    live.Remove(v, [&](Vertex w) { ready.push(w); });
  };

  while (order.size() < n) {
    bool advanced = false;
    while (!ready.empty()) {
      const Vertex v = ready.top();
      ready.pop();
      if (live.removed[v] || live.in_degree[v] != 0) continue;  // stale
      remove_vertex(v);
      advanced = true;
      break;
    }
    if (advanced) continue;

    if (policy == RankPolicy::kNaive) {
      for (Vertex v = 0; v < n; ++v) {
        if (!live.removed[v]) {
          remove_vertex(v);
          break;
        }
      }
      continue;
    }
    std::size_t min_in = SIZE_MAX;
    for (Vertex v = 0; v < n; ++v) {
      if (!live.removed[v]) min_in = std::min(min_in, live.in_degree[v]);
    }
    Vertex selected = 0;
    std::size_t best_out = 0;
    bool found = false;
    for (Vertex v = 0; v < n; ++v) {
      if (live.removed[v] || live.in_degree[v] != min_in) continue;
      if (!found || live.out_degree[v] > best_out) {
        selected = v;
        best_out = live.out_degree[v];
        found = true;
      }
    }
    remove_vertex(selected);
  }
  return order;
}

std::vector<Digraph::Vertex> ComputeSortingRanks(const Digraph& g,
                                                 RankPolicy policy,
                                                 obs::RankDecisionStats* stats) {
  // Optimized implementation with identical output: in-degree-0 vertices
  // flow through a subscript-ordered min-heap (the paper's "first A_j with
  // inDegree == 0" scan order); for cycle-breaks, lazy in-degree buckets
  // replace the full-vertex scans — each decrement pushes one bucket entry,
  // so the amortized cost of all breaks is O(V + E) bucket pops instead of
  // O(V) per break.
  const std::size_t n = g.NumVertices();
  LiveDegrees live(g);

  std::vector<Vertex> order;
  order.reserve(n);
  std::priority_queue<Vertex, std::vector<Vertex>, std::greater<>> ready;

  // buckets[d] holds candidates whose in-degree was d when pushed; entries
  // go stale as degrees drop (validated on inspection).
  std::size_t max_in = 0;
  for (Vertex v = 0; v < n; ++v) max_in = std::max(max_in, live.in_degree[v]);
  std::vector<std::vector<Vertex>> buckets(max_in + 1);
  for (Vertex v = 0; v < n; ++v) {
    if (live.in_degree[v] == 0) {
      ready.push(v);
    } else {
      buckets[live.in_degree[v]].push_back(v);
    }
  }

  const auto remove_vertex = [&](Vertex v) {
    order.push_back(v);
    live.Remove(v, [&](Vertex w) { ready.push(w); });
    // Successors whose in-degree dropped but stayed positive re-enter their
    // new bucket lazily:
    for (Vertex w : g.OutNeighbors(v)) {
      if (!live.removed[w] && live.in_degree[w] > 0) {
        buckets[live.in_degree[w]].push_back(w);
      }
    }
  };

  while (order.size() < n) {
    bool advanced = false;
    while (!ready.empty()) {
      const Vertex v = ready.top();
      ready.pop();
      if (live.removed[v] || live.in_degree[v] != 0) continue;  // stale
      remove_vertex(v);
      advanced = true;
      break;
    }
    if (advanced) {
      if (stats != nullptr) ++stats->zero_indegree_pops;
      continue;
    }

    if (policy == RankPolicy::kNaive) {
      for (Vertex v = 0; v < n; ++v) {
        if (!live.removed[v]) {
          remove_vertex(v);
          break;
        }
      }
      if (stats != nullptr) {
        ++stats->cycle_breaks;
        ++stats->tiebreak_subscript;  // kNaive is pure subscript order
      }
      continue;
    }

    // Find the lowest non-empty bucket with at least one live, current
    // entry; pick max out-degree, ties to the smallest subscript.
    Vertex selected = 0;
    bool found = false;
    std::size_t candidates = 0;      // live entries in the winning bucket
    std::size_t best_out = 0;
    std::size_t best_out_count = 0;  // candidates sharing the max out-degree
    for (std::size_t d = 1; d < buckets.size() && !found; ++d) {
      auto& bucket = buckets[d];
      // Compact the bucket while scanning: drop stale entries for good.
      std::vector<Vertex> valid;
      valid.reserve(bucket.size());
      for (Vertex v : bucket) {
        if (live.removed[v] || live.in_degree[v] != d) continue;
        valid.push_back(v);
        if (!found || live.out_degree[v] > best_out) {
          selected = v;
          best_out = live.out_degree[v];
          best_out_count = 1;
          found = true;
        } else if (live.out_degree[v] == best_out) {
          ++best_out_count;
          if (v < selected) selected = v;
        }
      }
      candidates = valid.size();
      bucket = std::move(valid);
    }
    // found is guaranteed: every live vertex has in-degree >= 1 here and
    // sits (possibly as a stale duplicate) in some bucket at or above its
    // current degree — and one entry at exactly its current degree, since
    // every decrement re-files it.
    if (stats != nullptr) {
      ++stats->cycle_breaks;
      if (candidates <= 1) {
        ++stats->tiebreak_min_indegree;
      } else if (best_out_count == 1) {
        ++stats->tiebreak_out_degree;
      } else {
        ++stats->tiebreak_subscript;
      }
    }
    remove_vertex(selected);
  }
  return order;
}

std::string CanonicalRankEncoding(std::span<const Digraph::Vertex> rank_order,
                                  const obs::RankDecisionStats* stats) {
  std::string out = "rank n=" + std::to_string(rank_order.size());
  if (stats != nullptr) {
    out += " pops=" + std::to_string(stats->zero_indegree_pops) +
           " breaks=" + std::to_string(stats->cycle_breaks) +
           " tb_in=" + std::to_string(stats->tiebreak_min_indegree) +
           " tb_out=" + std::to_string(stats->tiebreak_out_degree) +
           " tb_sub=" + std::to_string(stats->tiebreak_subscript);
  }
  out += "\n";
  out.reserve(out.size() + 16 * rank_order.size());
  for (std::size_t i = 0; i < rank_order.size(); ++i) {
    out += "r ";
    AppendU64(out, i);
    out += " v=";
    AppendU64(out, rank_order[i]);
    out += "\n";
  }
  return out;
}

}  // namespace nezha
