#include "cc/nezha/nezha_scheduler.h"

#include "cc/nezha/acg.h"
#include "cc/nezha/rank_division.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace nezha {

Result<Schedule> NezhaScheduler::BuildScheduleImpl(
    std::span<const ReadWriteSet> rwsets) {
  metrics_ = SchedulerMetrics{};
  Stopwatch watch;

  // Step 1: address-based conflict graph (linear in read/write units).
  AddressConflictGraph acg;
  {
    obs::TraceSpan span("acg_build");
    acg = AddressConflictGraph::Build(rwsets);
  }
  metrics_.construction_us = watch.ElapsedMicros();
  metrics_.graph_vertices = acg.NumAddresses();
  metrics_.graph_edges = acg.NumEdges();

  // Step 2: sorting-rank division over the address-dependency graph.
  watch.Restart();
  std::vector<Digraph::Vertex> ranks;
  {
    obs::TraceSpan span("rank_division");
    ranks = ComputeSortingRanks(acg.dependencies(), options_.rank_policy);
  }
  metrics_.cycle_us = watch.ElapsedMicros();

  // Step 3: per-address transaction sorting.
  watch.Restart();
  TxSorterOptions sorter_options;
  sorter_options.enable_reordering = options_.enable_reordering;
  TxSorterResult sorted;
  {
    obs::TraceSpan span("tx_sorting");
    sorted = SortTransactions(acg, ranks, rwsets.size(), sorter_options);
  }
  metrics_.sorting_us = watch.ElapsedMicros();
  metrics_.reordered_txs = sorted.reordered_txs;

  Schedule schedule;
  schedule.sequence = std::move(sorted.sequence);
  schedule.aborted = std::move(sorted.aborted);
  schedule.reordered = std::move(sorted.reordered);
  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    if (!rwsets[t].ok) {
      // Application-level revert: excluded from the ACG, commits nothing.
      schedule.aborted[t] = true;
      schedule.sequence[t] = kUnassignedSeq;
    } else if (!schedule.aborted[t] && schedule.sequence[t] == kUnassignedSeq) {
      // Touched no address at all: unconstrained, join the first group.
      schedule.sequence[t] = sorter_options.initial_seq;
    }
  }
  schedule.RebuildGroups();
  PublishSchedulerObs(name(), metrics_, schedule, rwsets, "unserializable");
  return schedule;
}

}  // namespace nezha
