#include "cc/nezha/nezha_scheduler.h"

#include "analysis/det_checkpoint.h"
#include "cc/nezha/acg.h"
#include "cc/nezha/rank_division.h"
#include "common/stopwatch.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace nezha {

Result<Schedule> NezhaScheduler::BuildScheduleImpl(
    std::span<const ReadWriteSet> rwsets) {
  metrics_ = SchedulerMetrics{};
  Stopwatch watch;

  // Step 1: address-based conflict graph (linear in read/write units).
  // With a pool configured, construction is sharded across it — same
  // vertices, subscripts and edges, just built in parallel.
  AddressConflictGraph acg;
  if (prebuilt_acg_.has_value()) {
    // The cross-epoch pipeline already built the graph incrementally as the
    // epoch's blocks arrived; consume it and credit the real build time.
    acg = std::move(*prebuilt_acg_);
    prebuilt_acg_.reset();
    metrics_.construction_us = prebuilt_construction_us_;
    prebuilt_construction_us_ = 0;
  } else {
    obs::TraceSpan span("acg_build");
    obs::ProfileSpan pspan("acg_build");
    acg = options_.pool != nullptr
              ? AddressConflictGraph::BuildSharded(rwsets, *options_.pool,
                                                   options_.acg_shards)
              : AddressConflictGraph::Build(rwsets);
    metrics_.construction_us = watch.ElapsedMicros();
  }
  metrics_.graph_vertices = acg.NumAddresses();
  metrics_.graph_edges = acg.NumEdges();

  analysis::DetCheckpointRecorder& det =
      analysis::DetCheckpointRecorder::Global();
  if (det.enabled()) {
    det.Record(analysis::DetStage::kAcg, acg.CanonicalEncoding());
  }

  // Step 2: sorting-rank division over the address-dependency graph.
  watch.Restart();
  std::vector<Digraph::Vertex> ranks;
  obs::RankDecisionStats rank_stats;
  {
    obs::TraceSpan span("rank_division");
    obs::ProfileSpan pspan("rank_division");
    ranks = ComputeSortingRanks(acg.dependencies(), options_.rank_policy,
                                &rank_stats);
  }
  metrics_.cycle_us = watch.ElapsedMicros();

  if (det.enabled()) {
    det.Record(analysis::DetStage::kRank,
               CanonicalRankEncoding(ranks, &rank_stats));
  }

  // Step 3: per-address transaction sorting.
  watch.Restart();
  TxSorterOptions sorter_options;
  sorter_options.enable_reordering = options_.enable_reordering;
  TxSorterResult sorted;
  {
    obs::TraceSpan span("tx_sorting");
    obs::ProfileSpan pspan("tx_sorting");
    sorted = options_.pool != nullptr
                 ? SortTransactionsParallel(acg, ranks, rwsets.size(),
                                            *options_.pool, sorter_options)
                 : SortTransactions(acg, ranks, rwsets.size(), sorter_options);
  }
  metrics_.sorting_us = watch.ElapsedMicros();
  metrics_.reordered_txs = sorted.reordered_txs;

  Schedule schedule;
  schedule.sequence = std::move(sorted.sequence);
  schedule.aborted = std::move(sorted.aborted);
  schedule.reordered = std::move(sorted.reordered);
  schedule.attribution.aborts = std::move(sorted.abort_records);
  schedule.attribution.rank = rank_stats;
  schedule.attribution.reorder_attempts = sorted.reorder_attempts;
  schedule.attribution.reorder_commits = schedule.reordered.size();

  // Hot addresses: every ACG entry's read/write population, abort counts
  // folded in from the records, trimmed to the top 8.
  {
    std::vector<obs::AddressHeat> heat;
    heat.reserve(acg.NumAddresses());
    for (const AddressRWSet& entry : acg.entries()) {
      obs::AddressHeat h;
      h.address = entry.address.value;
      h.readers = static_cast<std::uint32_t>(entry.readers.size());
      h.writers = static_cast<std::uint32_t>(entry.writers.size());
      heat.push_back(h);
    }
    for (const obs::AbortRecord& r : schedule.attribution.aborts) {
      const int idx = acg.IndexOf(Address{r.address});
      if (idx >= 0) ++heat[static_cast<std::size_t>(idx)].aborts;
    }
    obs::SelectTopK(heat, 8);
    schedule.attribution.hot_addresses = std::move(heat);
  }

  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    if (!rwsets[t].ok) {
      // Application-level revert: excluded from the ACG, commits nothing.
      schedule.aborted[t] = true;
      schedule.sequence[t] = kUnassignedSeq;
    } else if (!schedule.aborted[t] && schedule.sequence[t] == kUnassignedSeq) {
      // Touched no address at all: unconstrained, join the first group.
      schedule.sequence[t] = sorter_options.initial_seq;
    }
  }
  schedule.RebuildGroups();
  PublishSchedulerObs(name(), metrics_, schedule, rwsets, "unserializable");
  return schedule;
}

}  // namespace nezha
