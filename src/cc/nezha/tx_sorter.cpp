#include "cc/nezha/tx_sorter.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace nezha {
namespace {

constexpr SeqNum kNoSeq = kUnassignedSeq;  // 0

/// Arrays shared by every cluster of one sorting run. Clusters partition
/// both the transactions and the ACG entries, so concurrent cluster sorters
/// write disjoint elements; the arrays are plain bytes/words (never
/// std::vector<bool>, whose bit packing would make disjoint elements share
/// a memory location and race under TSan).
struct SharedSortState {
  std::vector<SeqNum> seq;
  std::vector<std::uint8_t> aborted;         // 0/1 per TxIndex
  std::vector<std::uint8_t> address_sorted;  // 0/1 per ACG entry index

  // Per transaction: the ACG entry indices it reads / writes (built once,
  // read-only during sorting).
  std::vector<std::vector<std::uint32_t>> tx_reads;
  std::vector<std::vector<std::uint32_t>> tx_writes;

  SharedSortState(const AddressConflictGraph& g, std::size_t num_txs)
      : seq(num_txs, kNoSeq),
        aborted(num_txs, 0),
        address_sorted(g.NumAddresses(), 0),
        tx_reads(num_txs),
        tx_writes(num_txs) {
    for (std::uint32_t e = 0; e < g.NumAddresses(); ++e) {
      for (TxIndex t : g.entries()[e].readers) tx_reads[t].push_back(e);
      for (TxIndex t : g.entries()[e].writers) tx_writes[t].push_back(e);
    }
  }
};

/// Runs the per-address passes of Algorithm 2 over one conflict cluster —
/// or, in the serial path, over the whole batch as a single cluster. Reads
/// and writes only the shared-state elements owned by its cluster; all
/// outputs (abort records, reorder counters) are cluster-local and merged
/// by the caller.
struct ClusterSorter {
  ClusterSorter(const AddressConflictGraph& acg_in,
                const TxSorterOptions& options_in, SharedSortState& st_in)
      : acg(acg_in), options(options_in), st(st_in) {}

  const AddressConflictGraph& acg;
  const TxSorterOptions& options;
  SharedSortState& st;

  std::size_t reordered = 0;
  std::vector<TxIndex> reordered_txs;
  std::vector<obs::AbortRecord> abort_records;
  /// Position in rank_order of each abort decision, parallel to
  /// abort_records — lets the parallel path merge the per-cluster records
  /// back into the exact order the serial sorter emits them in.
  std::vector<std::size_t> abort_rank_pos;
  std::uint64_t reorder_attempts = 0;

  bool Alive(TxIndex t) const { return !st.aborted[t]; }

  /// Aborts t at `entry`, recording the decision for attribution. Call at
  /// the decision point, before the sequence number is surrendered.
  void Abort(TxIndex t, const AddressRWSet& entry, std::size_t rank_pos,
             obs::ConflictKind kind, bool reorder_attempted) {
    st.aborted[t] = 1;
    obs::AbortRecord record;
    record.tx = t;
    record.address = entry.address.value;
    record.kind = kind;
    record.seq_at_decision = st.seq[t];
    record.reorder_attempted = reorder_attempted;
    record.reorder_failure = reorder_attempted
                                 ? obs::ReorderFailure::kUpperBoundHit
                                 : obs::ReorderFailure::kNotAttempted;
    abort_records.push_back(record);
    abort_rank_pos.push_back(rank_pos);
  }

  /// Attempts to raise tx t's sequence number to at least `min_target`
  /// without violating any already-sorted address:
  ///  * on every sorted address t writes: the new number must exceed every
  ///    other live read number and collide with no other live write number;
  ///  * on every sorted address t reads (other than the one currently being
  ///    sorted, whose write side is enforced by the ongoing passes): the new
  ///    number must stay below every other live write number.
  /// Returns true and updates seq[t] on success. Every address it inspects
  /// belongs to t's own cluster (it is an address t touches), so the check
  /// never reads another cluster's in-flight state.
  bool TryRaise(TxIndex t, SeqNum min_target, std::uint32_t current_entry) {
    // Upper bound from the read side: raising a read past a committed write
    // on a sorted address would order that write before the read.
    SeqNum upper = std::numeric_limits<SeqNum>::max();
    for (std::uint32_t e : st.tx_reads[t]) {
      if (!st.address_sorted[e] || e == current_entry) continue;
      for (TxIndex w : acg.entries()[e].writers) {
        if (w == t || !Alive(w) || st.seq[w] == kNoSeq) continue;
        upper = std::min(upper, st.seq[w]);
      }
    }
    SeqNum s = min_target;
    if (s >= upper) return false;

    // Push s upward until it clears every write-side constraint.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t e : st.tx_writes[t]) {
        if (!st.address_sorted[e]) continue;
        const AddressRWSet& entry = acg.entries()[e];
        for (TxIndex r : entry.readers) {
          if (r == t || !Alive(r) || st.seq[r] == kNoSeq) continue;
          if (st.seq[r] >= s) {
            s = st.seq[r] + 1;
            changed = true;
          }
        }
        for (TxIndex w : entry.writers) {
          if (w == t || !Alive(w) || st.seq[w] == kNoSeq) continue;
          if (st.seq[w] == s) {
            ++s;
            changed = true;
          }
        }
      }
      if (s >= upper) return false;
    }
    st.seq[t] = s;
    return true;
  }

  /// Sorts one address (one iteration of Algorithm 2's outer loop).
  /// `rank_pos` is the address's position in the global rank order, used
  /// only to tag abort records for deterministic merging.
  void SortEntry(Digraph::Vertex entry_idx, std::size_t rank_pos) {
    const AddressRWSet& entry = acg.entries()[entry_idx];
    // Mark sorted up front so TryRaise also validates against this address's
    // partially assigned state.
    st.address_sorted[entry_idx] = 1;

    const auto is_reader = [&](TxIndex t) {
      return std::binary_search(entry.readers.begin(), entry.readers.end(), t);
    };

    // ---- Phase A: read units (Algorithm 2 lines 3-15) ----
    SeqNum max_read = 0;
    {
      SeqNum min_assigned = std::numeric_limits<SeqNum>::max();
      SeqNum max_assigned = 0;
      for (TxIndex t : entry.readers) {
        if (!Alive(t) || st.seq[t] == kNoSeq) continue;
        min_assigned = std::min(min_assigned, st.seq[t]);
        max_assigned = std::max(max_assigned, st.seq[t]);
      }
      const bool none_assigned = max_assigned == 0;
      const SeqNum fill = none_assigned ? options.initial_seq : min_assigned;
      bool any_reader = false;
      for (TxIndex t : entry.readers) {
        if (!Alive(t)) continue;
        any_reader = true;
        if (st.seq[t] == kNoSeq) st.seq[t] = fill;
      }
      if (any_reader) {
        max_read = none_assigned ? options.initial_seq : max_assigned;
      }
    }

    // Write numbers already in use on this address (live, assigned writers);
    // fresh writers must skip them (Algorithm 2 lines 30-35).
    std::unordered_set<SeqNum> used_write_seqs;

    // ---- Phase B: writers that also read this address (lines 16-19) ----
    // Such a unit is both a read and a write: its number counts toward
    // max_read, and the write side requires it to exceed all other reads,
    // so a number at or below max_read is re-seated above it.
    //
    // Two read-modify-write transactions on one address are inherently
    // unserializable under snapshot reads (each would have to both precede
    // and follow the other), so at most one survives: the first in
    // subscript order that can be seated, the rest abort.
    bool read_writer_kept = false;
    for (TxIndex t : entry.writers) {
      if (!Alive(t) || st.seq[t] == kNoSeq || !is_reader(t)) continue;
      if (read_writer_kept) {
        Abort(t, entry, rank_pos, obs::ConflictKind::kReadWrite,
              /*reorder_attempted=*/false);
        continue;
      }
      if (st.seq[t] <= max_read) {
        if (!TryRaise(t, max_read + 1, entry_idx)) {
          Abort(t, entry, rank_pos, obs::ConflictKind::kReadWrite,
                /*reorder_attempted=*/true);
          continue;
        }
      }
      read_writer_kept = true;
      max_read = std::max(max_read, st.seq[t]);
      used_write_seqs.insert(st.seq[t]);
    }

    // ---- Phase C: already-numbered writers (lines 20-24) ----
    // A write at or below the maximum read number is the paper's
    // unserializability signature. The §IV.D enhancement re-seats such
    // transactions above everything they touch instead of aborting, when
    // provably safe. Duplicate write numbers (two transactions numbered
    // equal on different addresses earlier, both writing here) are resolved
    // the same way.
    for (TxIndex t : entry.writers) {
      if (!Alive(t) || st.seq[t] == kNoSeq || is_reader(t)) continue;
      const bool below_reads = st.seq[t] <= max_read;
      const bool collides = used_write_seqs.contains(st.seq[t]);
      if (below_reads || collides) {
        if (options.enable_reordering) ++reorder_attempts;
        if (options.enable_reordering &&
            TryRaise(t, max_read + 1, entry_idx)) {
          ++reordered;
          reordered_txs.push_back(t);
        } else {
          // A number at or below the reads is the rank-cycle signature; a
          // pure write-number collision is a write-write conflict §IV.D
          // failed to (or was not allowed to) re-seat.
          Abort(t, entry, rank_pos,
                below_reads ? obs::ConflictKind::kRankCycle
                            : obs::ConflictKind::kWriteWriteUnreorderable,
                /*reorder_attempted=*/options.enable_reordering);
          continue;
        }
      }
      used_write_seqs.insert(st.seq[t]);
    }

    // ---- Phase D: fresh writers (lines 25-35) ----
    SeqNum write_seq = max_read == 0 ? options.initial_seq : max_read + 1;
    for (TxIndex t : entry.writers) {
      if (!Alive(t) || st.seq[t] != kNoSeq) continue;
      while (used_write_seqs.contains(write_seq)) ++write_seq;
      st.seq[t] = write_seq;
      used_write_seqs.insert(write_seq);
      ++write_seq;
    }
  }
};

/// Assembles the public result from the shared arrays and the (already
/// merged, rank-ordered) per-cluster outputs.
TxSorterResult AssembleResult(SharedSortState&& st, std::size_t reordered,
                              std::vector<TxIndex>&& reordered_txs,
                              std::vector<obs::AbortRecord>&& abort_records,
                              std::uint64_t reorder_attempts) {
  TxSorterResult result;
  result.sequence = std::move(st.seq);
  result.aborted.assign(st.aborted.begin(), st.aborted.end());
  result.reordered_txs = reordered;
  // Aborted transactions surrender their numbers.
  for (TxIndex t = 0; t < result.sequence.size(); ++t) {
    if (result.aborted[t]) result.sequence[t] = kNoSeq;
  }
  // Only surviving rescues count as reordered commits (a raise on one
  // address does not shield the transaction on later addresses).
  std::sort(reordered_txs.begin(), reordered_txs.end());
  reordered_txs.erase(std::unique(reordered_txs.begin(), reordered_txs.end()),
                      reordered_txs.end());
  for (const TxIndex t : reordered_txs) {
    if (!result.aborted[t]) result.reordered.push_back(t);
  }
  result.abort_records = std::move(abort_records);
  result.reorder_attempts = reorder_attempts;
  return result;
}

/// Union-find over ACG entry indices, used to carve the batch into conflict
/// clusters: two addresses land in one cluster iff some transaction touches
/// both (directly or transitively).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::uint32_t Find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(std::uint32_t a, std::uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Below this many ACG entries the cluster machinery costs more than the
/// serial sort it replaces.
constexpr std::size_t kParallelSortMinEntries = 64;

}  // namespace

TxSorterResult SortTransactions(const AddressConflictGraph& acg,
                                std::span<const Digraph::Vertex> rank_order,
                                std::size_t num_txs,
                                const TxSorterOptions& options) {
  SharedSortState st(acg, num_txs);
  ClusterSorter sorter(acg, options, st);
  for (std::size_t pos = 0; pos < rank_order.size(); ++pos) {
    sorter.SortEntry(rank_order[pos], pos);
  }
  return AssembleResult(std::move(st), sorter.reordered,
                        std::move(sorter.reordered_txs),
                        std::move(sorter.abort_records),
                        sorter.reorder_attempts);
}

TxSorterResult SortTransactionsParallel(
    const AddressConflictGraph& acg,
    std::span<const Digraph::Vertex> rank_order, std::size_t num_txs,
    ThreadPool& pool, const TxSorterOptions& options) {
  if (pool.size() <= 1 || rank_order.size() < kParallelSortMinEntries) {
    // Serial fallback is one cluster; keep the gauge honest for this build.
    if (obs::MetricsEnabled()) {
      obs::Registry().GetGauge("nezha_parallel_sort_clusters")->Set(1);
    }
    return SortTransactions(acg, rank_order, num_txs, options);
  }
  obs::TraceSpan span("tx_sorting_parallel");
  // Label for the cluster-sort tasks when this sorter is driven directly
  // (benches); under the scheduler it refines the inherited "tx_sorting".
  obs::StageScope stage("tx_sorting");
  SharedSortState st(acg, num_txs);

  // ---- Cluster the ACG: union every entry a transaction touches. ----
  UnionFind uf(acg.NumAddresses());
  for (TxIndex t = 0; t < num_txs; ++t) {
    std::uint32_t first = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t e : st.tx_reads[t]) {
      if (first == std::numeric_limits<std::uint32_t>::max()) {
        first = e;
      } else {
        uf.Union(first, e);
      }
    }
    for (std::uint32_t e : st.tx_writes[t]) {
      if (first == std::numeric_limits<std::uint32_t>::max()) {
        first = e;
      } else {
        uf.Union(first, e);
      }
    }
  }

  // Partition rank_order by cluster, preserving each cluster's subsequence
  // of the global rank order (the order Algorithm 2 must visit it in).
  // Positions are carried alongside so abort records can be merged back
  // into the serial emission order.
  std::unordered_map<std::uint32_t, std::uint32_t> cluster_ids;
  std::vector<std::vector<std::uint32_t>> cluster_positions;
  for (std::uint32_t pos = 0; pos < rank_order.size(); ++pos) {
    const std::uint32_t root = uf.Find(rank_order[pos]);
    const auto [it, inserted] = cluster_ids.emplace(
        root, static_cast<std::uint32_t>(cluster_positions.size()));
    if (inserted) cluster_positions.emplace_back();
    cluster_positions[it->second].push_back(pos);
  }

  // ---- Sort each cluster independently on the pool. ----
  std::vector<ClusterSorter> sorters;
  sorters.reserve(cluster_positions.size());
  for (std::size_t c = 0; c < cluster_positions.size(); ++c) {
    sorters.emplace_back(acg, options, st);
  }
  pool.ParallelFor(0, cluster_positions.size(), [&](std::size_t c) {
    ClusterSorter& sorter = sorters[c];
    for (const std::uint32_t pos : cluster_positions[c]) {
      sorter.SortEntry(rank_order[pos], pos);
    }
  });

  // ---- Merge: counters sum; abort records re-sort into rank order (each
  // record is tagged with its decision position; within one address all
  // records come from one cluster in emission order, so the stable sort
  // reproduces the serial sequence exactly). ----
  std::size_t reordered = 0;
  std::uint64_t reorder_attempts = 0;
  std::vector<TxIndex> reordered_txs;
  std::vector<std::pair<std::size_t, obs::AbortRecord>> tagged;
  for (ClusterSorter& sorter : sorters) {
    reordered += sorter.reordered;
    reorder_attempts += sorter.reorder_attempts;
    reordered_txs.insert(reordered_txs.end(), sorter.reordered_txs.begin(),
                         sorter.reordered_txs.end());
    for (std::size_t i = 0; i < sorter.abort_records.size(); ++i) {
      tagged.emplace_back(sorter.abort_rank_pos[i], sorter.abort_records[i]);
    }
  }
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<obs::AbortRecord> abort_records;
  abort_records.reserve(tagged.size());
  for (auto& tr : tagged) abort_records.push_back(tr.second);

  if (obs::MetricsEnabled()) {
    obs::Registry()
        .GetGauge("nezha_parallel_sort_clusters")
        ->Set(static_cast<std::int64_t>(cluster_positions.size()));
  }
  return AssembleResult(std::move(st), reordered, std::move(reordered_txs),
                        std::move(abort_records), reorder_attempts);
}

std::string CanonicalAbortRecordsEncoding(
    std::span<const obs::AbortRecord> records) {
  std::string out = "aborts n=" + std::to_string(records.size()) + "\n";
  char buf[96];
  for (const obs::AbortRecord& r : records) {
    std::snprintf(buf, sizeof(buf), "x %u a=%llu k=%s s=%llu ra=%d rf=%s\n",
                  r.tx, static_cast<unsigned long long>(r.address),
                  obs::ConflictKindName(r.kind),
                  static_cast<unsigned long long>(r.seq_at_decision),
                  r.reorder_attempted ? 1 : 0,
                  obs::ReorderFailureName(r.reorder_failure));
    out += buf;
  }
  return out;
}

}  // namespace nezha
