#include "cc/nezha/tx_sorter.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace nezha {
namespace {

constexpr SeqNum kNoSeq = kUnassignedSeq;  // 0

/// Mutable sorting state shared across the per-address passes.
struct SorterState {
  const AddressConflictGraph& acg;
  const TxSorterOptions& options;

  std::vector<SeqNum> seq;
  std::vector<bool> aborted;
  std::vector<bool> address_sorted;  // per ACG entry index

  // Per transaction: the ACG entry indices it reads / writes (built once).
  std::vector<std::vector<std::uint32_t>> tx_reads;
  std::vector<std::vector<std::uint32_t>> tx_writes;

  std::size_t reordered = 0;
  std::vector<TxIndex> reordered_txs;
  std::vector<obs::AbortRecord> abort_records;
  std::uint64_t reorder_attempts = 0;

  explicit SorterState(const AddressConflictGraph& g, std::size_t num_txs,
                       const TxSorterOptions& opts)
      : acg(g),
        options(opts),
        seq(num_txs, kNoSeq),
        aborted(num_txs, false),
        address_sorted(g.NumAddresses(), false),
        tx_reads(num_txs),
        tx_writes(num_txs) {
    for (std::uint32_t e = 0; e < g.NumAddresses(); ++e) {
      for (TxIndex t : g.entries()[e].readers) tx_reads[t].push_back(e);
      for (TxIndex t : g.entries()[e].writers) tx_writes[t].push_back(e);
    }
  }

  bool Alive(TxIndex t) const { return !aborted[t]; }

  /// Aborts t at `entry`, recording the decision for attribution. Call at
  /// the decision point, before the sequence number is surrendered.
  void Abort(TxIndex t, const AddressRWSet& entry, obs::ConflictKind kind,
             bool reorder_attempted) {
    aborted[t] = true;
    obs::AbortRecord record;
    record.tx = t;
    record.address = entry.address.value;
    record.kind = kind;
    record.seq_at_decision = seq[t];
    record.reorder_attempted = reorder_attempted;
    record.reorder_failure = reorder_attempted
                                 ? obs::ReorderFailure::kUpperBoundHit
                                 : obs::ReorderFailure::kNotAttempted;
    abort_records.push_back(record);
  }

  /// Attempts to raise tx t's sequence number to at least `min_target`
  /// without violating any already-sorted address:
  ///  * on every sorted address t writes: the new number must exceed every
  ///    other live read number and collide with no other live write number;
  ///  * on every sorted address t reads (other than the one currently being
  ///    sorted, whose write side is enforced by the ongoing passes): the new
  ///    number must stay below every other live write number.
  /// Returns true and updates seq[t] on success.
  bool TryRaise(TxIndex t, SeqNum min_target, std::uint32_t current_entry) {
    // Upper bound from the read side: raising a read past a committed write
    // on a sorted address would order that write before the read.
    SeqNum upper = std::numeric_limits<SeqNum>::max();
    for (std::uint32_t e : tx_reads[t]) {
      if (!address_sorted[e] || e == current_entry) continue;
      for (TxIndex w : acg.entries()[e].writers) {
        if (w == t || !Alive(w) || seq[w] == kNoSeq) continue;
        upper = std::min(upper, seq[w]);
      }
    }
    SeqNum s = min_target;
    if (s >= upper) return false;

    // Push s upward until it clears every write-side constraint.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t e : tx_writes[t]) {
        if (!address_sorted[e]) continue;
        const AddressRWSet& entry = acg.entries()[e];
        for (TxIndex r : entry.readers) {
          if (r == t || !Alive(r) || seq[r] == kNoSeq) continue;
          if (seq[r] >= s) {
            s = seq[r] + 1;
            changed = true;
          }
        }
        for (TxIndex w : entry.writers) {
          if (w == t || !Alive(w) || seq[w] == kNoSeq) continue;
          if (seq[w] == s) {
            ++s;
            changed = true;
          }
        }
      }
      if (s >= upper) return false;
    }
    seq[t] = s;
    return true;
  }
};

}  // namespace

TxSorterResult SortTransactions(const AddressConflictGraph& acg,
                                std::span<const Digraph::Vertex> rank_order,
                                std::size_t num_txs,
                                const TxSorterOptions& options) {
  SorterState st(acg, num_txs, options);

  for (const Digraph::Vertex entry_idx : rank_order) {
    const AddressRWSet& entry = acg.entries()[entry_idx];
    // Mark sorted up front so TryRaise also validates against this address's
    // partially assigned state.
    st.address_sorted[entry_idx] = true;

    const auto is_reader = [&](TxIndex t) {
      return std::binary_search(entry.readers.begin(), entry.readers.end(), t);
    };

    // ---- Phase A: read units (Algorithm 2 lines 3-15) ----
    SeqNum max_read = 0;
    {
      SeqNum min_assigned = std::numeric_limits<SeqNum>::max();
      SeqNum max_assigned = 0;
      for (TxIndex t : entry.readers) {
        if (!st.Alive(t) || st.seq[t] == kNoSeq) continue;
        min_assigned = std::min(min_assigned, st.seq[t]);
        max_assigned = std::max(max_assigned, st.seq[t]);
      }
      const bool none_assigned = max_assigned == 0;
      const SeqNum fill =
          none_assigned ? options.initial_seq : min_assigned;
      bool any_reader = false;
      for (TxIndex t : entry.readers) {
        if (!st.Alive(t)) continue;
        any_reader = true;
        if (st.seq[t] == kNoSeq) st.seq[t] = fill;
      }
      if (any_reader) {
        max_read = none_assigned ? options.initial_seq : max_assigned;
      }
    }

    // Write numbers already in use on this address (live, assigned writers);
    // fresh writers must skip them (Algorithm 2 lines 30-35).
    std::unordered_set<SeqNum> used_write_seqs;

    // ---- Phase B: writers that also read this address (lines 16-19) ----
    // Such a unit is both a read and a write: its number counts toward
    // max_read, and the write side requires it to exceed all other reads,
    // so a number at or below max_read is re-seated above it.
    //
    // Two read-modify-write transactions on one address are inherently
    // unserializable under snapshot reads (each would have to both precede
    // and follow the other), so at most one survives: the first in
    // subscript order that can be seated, the rest abort.
    bool read_writer_kept = false;
    for (TxIndex t : entry.writers) {
      if (!st.Alive(t) || st.seq[t] == kNoSeq || !is_reader(t)) continue;
      if (read_writer_kept) {
        st.Abort(t, entry, obs::ConflictKind::kReadWrite,
                 /*reorder_attempted=*/false);
        continue;
      }
      if (st.seq[t] <= max_read) {
        if (!st.TryRaise(t, max_read + 1, entry_idx)) {
          st.Abort(t, entry, obs::ConflictKind::kReadWrite,
                   /*reorder_attempted=*/true);
          continue;
        }
      }
      read_writer_kept = true;
      max_read = std::max(max_read, st.seq[t]);
      used_write_seqs.insert(st.seq[t]);
    }

    // ---- Phase C: already-numbered writers (lines 20-24) ----
    // A write at or below the maximum read number is the paper's
    // unserializability signature. The §IV.D enhancement re-seats such
    // transactions above everything they touch instead of aborting, when
    // provably safe. Duplicate write numbers (two transactions numbered
    // equal on different addresses earlier, both writing here) are resolved
    // the same way.
    for (TxIndex t : entry.writers) {
      if (!st.Alive(t) || st.seq[t] == kNoSeq || is_reader(t)) continue;
      const bool below_reads = st.seq[t] <= max_read;
      const bool collides = used_write_seqs.contains(st.seq[t]);
      if (below_reads || collides) {
        if (st.options.enable_reordering) ++st.reorder_attempts;
        if (st.options.enable_reordering &&
            st.TryRaise(t, max_read + 1, entry_idx)) {
          ++st.reordered;
          st.reordered_txs.push_back(t);
        } else {
          // A number at or below the reads is the rank-cycle signature; a
          // pure write-number collision is a write-write conflict §IV.D
          // failed to (or was not allowed to) re-seat.
          st.Abort(t, entry,
                   below_reads ? obs::ConflictKind::kRankCycle
                               : obs::ConflictKind::kWriteWriteUnreorderable,
                   /*reorder_attempted=*/st.options.enable_reordering);
          continue;
        }
      }
      used_write_seqs.insert(st.seq[t]);
    }

    // ---- Phase D: fresh writers (lines 25-35) ----
    SeqNum write_seq =
        max_read == 0 ? options.initial_seq : max_read + 1;
    for (TxIndex t : entry.writers) {
      if (!st.Alive(t) || st.seq[t] != kNoSeq) continue;
      while (used_write_seqs.contains(write_seq)) ++write_seq;
      st.seq[t] = write_seq;
      used_write_seqs.insert(write_seq);
      ++write_seq;
    }
  }

  TxSorterResult result;
  result.sequence = std::move(st.seq);
  result.aborted = std::move(st.aborted);
  result.reordered_txs = st.reordered;
  // Aborted transactions surrender their numbers.
  for (TxIndex t = 0; t < result.sequence.size(); ++t) {
    if (result.aborted[t]) result.sequence[t] = kNoSeq;
  }
  // Only surviving rescues count as reordered commits (a raise on one
  // address does not shield the transaction on later addresses).
  std::sort(st.reordered_txs.begin(), st.reordered_txs.end());
  st.reordered_txs.erase(
      std::unique(st.reordered_txs.begin(), st.reordered_txs.end()),
      st.reordered_txs.end());
  for (const TxIndex t : st.reordered_txs) {
    if (!result.aborted[t]) result.reordered.push_back(t);
  }
  result.abort_records = std::move(st.abort_records);
  result.reorder_attempts = st.reorder_attempts;
  return result;
}

}  // namespace nezha
