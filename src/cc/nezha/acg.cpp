#include "cc/nezha/acg.h"

#include <algorithm>
#include <memory>

namespace nezha {

AddressConflictGraph AddressConflictGraph::Build(
    std::span<const ReadWriteSet> rwsets) {
  AddressConflictGraph acg;

  // Pass 1: collect the accessed addresses, deterministically ordered by
  // address value (their "subscripts").
  std::vector<std::uint64_t> addresses;
  for (const ReadWriteSet& rw : rwsets) {
    if (!rw.ok) continue;
    for (Address a : rw.reads) addresses.push_back(a.value);
    for (Address a : rw.writes) addresses.push_back(a.value);
  }
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());

  acg.entries_.reserve(addresses.size());
  acg.index_.reserve(addresses.size());
  for (std::uint64_t a : addresses) {
    acg.index_.emplace(a, acg.entries_.size());
    acg.entries_.push_back(AddressRWSet{Address(a), {}, {}});
  }

  // Pass 2: map each transaction's read/write units onto its addresses.
  // Iterating transactions in subscript order keeps every readers/writers
  // list sorted by TxIndex with no extra sort.
  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    const ReadWriteSet& rw = rwsets[t];
    if (!rw.ok) continue;
    for (Address a : rw.reads) {
      acg.entries_[acg.index_[a.value]].readers.push_back(t);
    }
    for (Address a : rw.writes) {
      acg.entries_[acg.index_[a.value]].writers.push_back(t);
    }
  }

  // Pass 3: address-dependency edges — one edge RW_i -> RW_j per transaction
  // that writes A_i and reads A_j (i != j), deduplicated.
  acg.dependencies_ = std::make_unique<Digraph>(acg.entries_.size());
  for (const ReadWriteSet& rw : rwsets) {
    if (!rw.ok) continue;
    for (Address w : rw.writes) {
      const auto wi = static_cast<Digraph::Vertex>(acg.index_[w.value]);
      for (Address r : rw.reads) {
        if (r == w) continue;
        const auto ri = static_cast<Digraph::Vertex>(acg.index_[r.value]);
        acg.dependencies_->AddEdge(wi, ri, /*deduplicate=*/true);
      }
    }
  }
  return acg;
}

}  // namespace nezha
