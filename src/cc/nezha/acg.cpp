#include "cc/nezha/acg.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/canonical_text.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace nezha {

AddressConflictGraph AddressConflictGraph::Build(
    std::span<const ReadWriteSet> rwsets) {
  AddressConflictGraph acg;

  // Pass 1: collect the accessed addresses, deterministically ordered by
  // address value (their "subscripts").
  std::vector<std::uint64_t> addresses;
  for (const ReadWriteSet& rw : rwsets) {
    if (!rw.ok) continue;
    for (Address a : rw.reads) addresses.push_back(a.value);
    for (Address a : rw.writes) addresses.push_back(a.value);
  }
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());

  acg.entries_.reserve(addresses.size());
  acg.index_.reserve(addresses.size());
  for (std::uint64_t a : addresses) {
    acg.index_.emplace(a, acg.entries_.size());
    acg.entries_.push_back(AddressRWSet{Address(a), {}, {}});
  }

  // Pass 2: map each transaction's read/write units onto its addresses.
  // Iterating transactions in subscript order keeps every readers/writers
  // list sorted by TxIndex with no extra sort.
  for (TxIndex t = 0; t < rwsets.size(); ++t) {
    const ReadWriteSet& rw = rwsets[t];
    if (!rw.ok) continue;
    for (Address a : rw.reads) {
      acg.entries_[acg.index_[a.value]].readers.push_back(t);
    }
    for (Address a : rw.writes) {
      acg.entries_[acg.index_[a.value]].writers.push_back(t);
    }
  }

  // Pass 3: address-dependency edges — one edge RW_i -> RW_j per transaction
  // that writes A_i and reads A_j (i != j), deduplicated.
  acg.dependencies_ = std::make_unique<Digraph>(acg.entries_.size());
  for (const ReadWriteSet& rw : rwsets) {
    if (!rw.ok) continue;
    for (Address w : rw.writes) {
      const auto wi = static_cast<Digraph::Vertex>(acg.index_[w.value]);
      for (Address r : rw.reads) {
        if (r == w) continue;
        const auto ri = static_cast<Digraph::Vertex>(acg.index_[r.value]);
        acg.dependencies_->AddEdge(wi, ri, /*deduplicate=*/true);
      }
    }
  }
  return acg;
}

namespace {

/// Below this many transactions the scatter/merge machinery costs more than
/// the serial pass it replaces.
constexpr std::size_t kShardedBuildMinTxs = 32;

/// splitmix64 finisher: libstdc++'s std::hash<uint64_t> is the identity, so
/// raw `address % shards` would let dense workload addresses stripe
/// pathologically. One mix round spreads any address pattern evenly.
std::uint64_t MixAddress(std::uint64_t a) {
  a += 0x9e3779b97f4a7c15ULL;
  a = (a ^ (a >> 30)) * 0xbf58476d1ce4e5b9ULL;
  a = (a ^ (a >> 27)) * 0x94d049bb133111ebULL;
  return a ^ (a >> 31);
}

/// One scattered unit: which address, which transaction touched it. Chunks
/// emit these in ascending TxIndex order, so concatenating a shard's chunk
/// vectors in chunk order keeps every readers/writers list sorted.
struct Unit {
  std::uint64_t address;
  TxIndex tx;
};

/// Cross-shard totals the merge workers fold their results into; purely
/// observability (the per-shard gauges below), but genuinely shared across
/// the pool, hence the lock.
struct ShardMergeState {
  Mutex mutex;
  std::size_t addresses GUARDED_BY(mutex) = 0;
  std::size_t max_shard_addresses GUARDED_BY(mutex) = 0;
  std::size_t edges GUARDED_BY(mutex) = 0;
};

}  // namespace

AddressConflictGraph AddressConflictGraph::BuildSharded(
    std::span<const ReadWriteSet> rwsets, ThreadPool& pool,
    std::size_t num_shards) {
  if (num_shards == 0) num_shards = pool.size();
  if (num_shards <= 1 || pool.size() <= 1 ||
      rwsets.size() < kShardedBuildMinTxs) {
    // Serial fallback is one shard; keep the gauge honest for this build.
    if (obs::MetricsEnabled()) {
      obs::Registry().GetGauge("nezha_parallel_acg_shards")->Set(1);
    }
    return Build(rwsets);
  }
  obs::TraceSpan build_span("acg_build_sharded");
  // Label for the scatter/merge/fill/edge tasks when the build is driven
  // directly (benches); under the scheduler it matches the inherited stage.
  obs::StageScope stage("acg_build");
  const std::size_t shards = num_shards;
  const std::size_t max_chunks = pool.size();
  const auto shard_of = [shards](std::uint64_t a) {
    return static_cast<std::size_t>(MixAddress(a) % shards);
  };

  // ---- Scatter: chunk the batch across workers; each chunk splits its
  // read/write units per target shard, in transaction order.
  std::vector<std::vector<std::vector<Unit>>> read_parts(max_chunks);
  std::vector<std::vector<std::vector<Unit>>> write_parts(max_chunks);
  for (std::size_t c = 0; c < max_chunks; ++c) {
    read_parts[c].resize(shards);
    write_parts[c].resize(shards);
  }
  pool.ParallelForChunked(
      0, rwsets.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        obs::TraceSpan span("acg_scatter_chunk");
        for (TxIndex t = static_cast<TxIndex>(lo); t < hi; ++t) {
          const ReadWriteSet& rw = rwsets[t];
          if (!rw.ok) continue;
          for (Address a : rw.reads) {
            read_parts[slot][shard_of(a.value)].push_back({a.value, t});
          }
          for (Address a : rw.writes) {
            write_parts[slot][shard_of(a.value)].push_back({a.value, t});
          }
        }
      });

  // ---- Per-shard merge: each shard dedups its own address set. A shard
  // owns every entry of its addresses, so the workers never share a write
  // target; only the observability totals are shared (locked).
  ShardMergeState merge;
  std::vector<std::vector<std::uint64_t>> shard_addrs(shards);
  pool.ParallelFor(0, shards, [&](std::size_t s) {
    obs::TraceSpan span("acg_shard_merge_" + std::to_string(s));
    std::vector<std::uint64_t>& addrs = shard_addrs[s];
    for (std::size_t c = 0; c < max_chunks; ++c) {
      for (const Unit& u : read_parts[c][s]) addrs.push_back(u.address);
      for (const Unit& u : write_parts[c][s]) addrs.push_back(u.address);
    }
    std::sort(addrs.begin(), addrs.end());
    addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
    MutexLock lock(merge.mutex);
    merge.addresses += addrs.size();
    merge.max_shard_addresses = std::max(merge.max_shard_addresses,
                                         addrs.size());
  });

  // ---- Global subscripts: k-way merge of the per-shard sorted address
  // lists into ascending address order — identical to Build()'s sort.
  AddressConflictGraph acg;
  {
    std::size_t total = 0;
    for (const auto& addrs : shard_addrs) total += addrs.size();
    acg.entries_.reserve(total);
    acg.index_.reserve(total);
    std::vector<std::size_t> heads(shards, 0);
    for (;;) {
      std::size_t best = shards;
      for (std::size_t s = 0; s < shards; ++s) {
        if (heads[s] == shard_addrs[s].size()) continue;
        if (best == shards ||
            shard_addrs[s][heads[s]] < shard_addrs[best][heads[best]]) {
          best = s;
        }
      }
      if (best == shards) break;
      const std::uint64_t a = shard_addrs[best][heads[best]++];
      acg.index_.emplace(a, acg.entries_.size());
      acg.entries_.push_back(AddressRWSet{Address(a), {}, {}});
    }
  }

  // ---- Per-shard RW-set fill: chunk order == ascending TxIndex order, so
  // the lists come out sorted exactly as Build()'s pass 2 leaves them.
  pool.ParallelFor(0, shards, [&](std::size_t s) {
    obs::TraceSpan span("acg_shard_fill_" + std::to_string(s));
    for (std::size_t c = 0; c < max_chunks; ++c) {
      for (const Unit& u : read_parts[c][s]) {
        acg.entries_[acg.index_.find(u.address)->second].readers.push_back(
            u.tx);
      }
      for (const Unit& u : write_parts[c][s]) {
        acg.entries_[acg.index_.find(u.address)->second].writers.push_back(
            u.tx);
      }
    }
  });

  // ---- Edges, scattered by source-vertex shard then deduplicated per
  // shard: every (write-address -> read-address) pair of every transaction,
  // packed as (wi << 32) | ri like Digraph's own dedup keys.
  std::vector<std::vector<std::vector<std::uint64_t>>> edge_parts(max_chunks);
  for (std::size_t c = 0; c < max_chunks; ++c) edge_parts[c].resize(shards);
  pool.ParallelForChunked(
      0, rwsets.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        for (TxIndex t = static_cast<TxIndex>(lo); t < hi; ++t) {
          const ReadWriteSet& rw = rwsets[t];
          if (!rw.ok) continue;
          for (Address w : rw.writes) {
            const auto wi = static_cast<std::uint64_t>(
                acg.index_.find(w.value)->second);
            const std::size_t s = shard_of(w.value);
            for (Address r : rw.reads) {
              if (r == w) continue;
              const auto ri = static_cast<std::uint64_t>(
                  acg.index_.find(r.value)->second);
              edge_parts[slot][s].push_back((wi << 32) | ri);
            }
          }
        }
      });
  std::vector<std::vector<std::uint64_t>> shard_edges(shards);
  pool.ParallelFor(0, shards, [&](std::size_t s) {
    obs::TraceSpan span("acg_shard_edges_" + std::to_string(s));
    std::vector<std::uint64_t>& edges = shard_edges[s];
    for (std::size_t c = 0; c < max_chunks; ++c) {
      edges.insert(edges.end(), edge_parts[c][s].begin(),
                   edge_parts[c][s].end());
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    MutexLock lock(merge.mutex);
    merge.edges += edges.size();
  });

  // ---- Assembly: per-shard edge lists are already unique, and a source
  // vertex lives in exactly one shard, so plain AddEdge reproduces the
  // deduplicated edge set without re-probing a hash set.
  acg.dependencies_ = std::make_unique<Digraph>(acg.entries_.size());
  for (const auto& edges : shard_edges) {
    for (const std::uint64_t key : edges) {
      acg.dependencies_->AddEdge(static_cast<Digraph::Vertex>(key >> 32),
                                 static_cast<Digraph::Vertex>(key & 0xffffffff));
    }
  }

  if (obs::MetricsEnabled()) {
    auto& registry = obs::Registry();
    registry.GetCounter("nezha_parallel_acg_builds_total")->Inc();
    MutexLock lock(merge.mutex);
    registry.GetGauge("nezha_parallel_acg_shards")
        ->Set(static_cast<std::int64_t>(shards));
    registry.GetGauge("nezha_parallel_acg_max_shard_addresses")
        ->Set(static_cast<std::int64_t>(merge.max_shard_addresses));
  }
  return acg;
}

/// Per-(segment, shard) scatter buckets. One segment per AppendTxs call (or
/// per scatter chunk within a call): segments accumulate in arrival order,
/// so concatenating a shard's buckets segment-by-segment visits units in
/// ascending TxIndex — the same invariant BuildSharded gets from chunk
/// order, and the reason Seal's fill phase needs no sort.
struct AcgBuilder::Scatter {
  /// (write-address, read-address) of one Definition 3 dependency; address
  /// subscripts do not exist until Seal, so pairs stay as raw addresses.
  struct AddrPair {
    std::uint64_t w;
    std::uint64_t r;
  };

  std::vector<std::vector<std::vector<Unit>>> reads;     ///< [seg][shard]
  std::vector<std::vector<std::vector<Unit>>> writes;    ///< [seg][shard]
  std::vector<std::vector<std::vector<AddrPair>>> edges; ///< [seg][w-shard]
};

AcgBuilder::AcgBuilder(ThreadPool* pool, std::size_t num_shards)
    : pool_(pool),
      num_shards_(num_shards),
      scatter_(std::make_unique<Scatter>()) {}

AcgBuilder::~AcgBuilder() = default;

void AcgBuilder::AppendTxs(std::span<const ReadWriteSet> rwsets) {
  if (rwsets.empty()) return;
  if (shards_ == 0) {
    shards_ = num_shards_ != 0 ? num_shards_
                               : (pool_ != nullptr ? pool_->size() : 1);
    if (shards_ == 0) shards_ = 1;
  }
  const auto base = static_cast<TxIndex>(rwsets_.size());
  rwsets_.insert(rwsets_.end(), rwsets.begin(), rwsets.end());

  const std::size_t shards = shards_;
  const auto shard_of = [shards](std::uint64_t a) {
    return static_cast<std::size_t>(MixAddress(a) % shards);
  };
  const std::size_t max_chunks =
      pool_ != nullptr ? std::max<std::size_t>(1, pool_->size()) : 1;
  std::vector<std::vector<std::vector<Unit>>> read_seg(max_chunks);
  std::vector<std::vector<std::vector<Unit>>> write_seg(max_chunks);
  std::vector<std::vector<std::vector<Scatter::AddrPair>>> edge_seg(
      max_chunks);
  for (std::size_t c = 0; c < max_chunks; ++c) {
    read_seg[c].resize(shards);
    write_seg[c].resize(shards);
    edge_seg[c].resize(shards);
  }
  const auto scatter_range = [&](std::size_t lo, std::size_t hi,
                                 std::size_t slot) {
    obs::TraceSpan span("acg_append_scatter");
    for (std::size_t i = lo; i < hi; ++i) {
      const ReadWriteSet& rw = rwsets[i];
      if (!rw.ok) continue;
      const TxIndex t = base + static_cast<TxIndex>(i);
      for (Address a : rw.reads) {
        read_seg[slot][shard_of(a.value)].push_back({a.value, t});
      }
      for (Address a : rw.writes) {
        write_seg[slot][shard_of(a.value)].push_back({a.value, t});
        const std::size_t s = shard_of(a.value);
        for (Address r : rw.reads) {
          if (r == a) continue;
          edge_seg[slot][s].push_back({a.value, r.value});
        }
      }
    }
  };
  if (pool_ != nullptr && pool_->size() > 1 && shards > 1) {
    obs::StageScope stage("acg_build");
    pool_->ParallelForChunked(0, rwsets.size(), scatter_range);
  } else {
    scatter_range(0, rwsets.size(), 0);
  }
  // Chunk slots cover ascending index ranges, so pushing them in slot order
  // keeps the segment stream TxIndex-sorted.
  for (std::size_t c = 0; c < max_chunks; ++c) {
    scatter_->reads.push_back(std::move(read_seg[c]));
    scatter_->writes.push_back(std::move(write_seg[c]));
    scatter_->edges.push_back(std::move(edge_seg[c]));
  }
}

AddressConflictGraph AcgBuilder::Seal() {
  const std::size_t shards = shards_ == 0 ? 1 : shards_;
  if (pool_ == nullptr || pool_->size() <= 1 || shards <= 1 ||
      rwsets_.size() < kShardedBuildMinTxs) {
    // Same fallback boundary as BuildSharded, decided on the TOTAL appended
    // count — and the same honest one-shard gauge.
    if (obs::MetricsEnabled()) {
      obs::Registry().GetGauge("nezha_parallel_acg_shards")->Set(1);
    }
    return AddressConflictGraph::Build(rwsets_);
  }
  obs::TraceSpan build_span("acg_seal_incremental");
  obs::StageScope stage("acg_build");
  ThreadPool& pool = *pool_;
  const std::size_t segments = scatter_->reads.size();

  // ---- Per-shard merge over every accumulated segment: identical to
  // BuildSharded's shard merge, with (segment) in place of (chunk).
  ShardMergeState merge;
  std::vector<std::vector<std::uint64_t>> shard_addrs(shards);
  pool.ParallelFor(0, shards, [&](std::size_t s) {
    obs::TraceSpan span("acg_shard_merge_" + std::to_string(s));
    std::vector<std::uint64_t>& addrs = shard_addrs[s];
    for (std::size_t seg = 0; seg < segments; ++seg) {
      for (const Unit& u : scatter_->reads[seg][s]) addrs.push_back(u.address);
      for (const Unit& u : scatter_->writes[seg][s]) {
        addrs.push_back(u.address);
      }
    }
    std::sort(addrs.begin(), addrs.end());
    addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
    MutexLock lock(merge.mutex);
    merge.addresses += addrs.size();
    merge.max_shard_addresses =
        std::max(merge.max_shard_addresses, addrs.size());
  });

  // ---- Global subscripts: the same k-way min-scan BuildSharded runs.
  AddressConflictGraph acg;
  {
    std::size_t total = 0;
    for (const auto& addrs : shard_addrs) total += addrs.size();
    acg.entries_.reserve(total);
    acg.index_.reserve(total);
    std::vector<std::size_t> heads(shards, 0);
    for (;;) {
      std::size_t best = shards;
      for (std::size_t s = 0; s < shards; ++s) {
        if (heads[s] == shard_addrs[s].size()) continue;
        if (best == shards ||
            shard_addrs[s][heads[s]] < shard_addrs[best][heads[best]]) {
          best = s;
        }
      }
      if (best == shards) break;
      const std::uint64_t a = shard_addrs[best][heads[best]++];
      acg.index_.emplace(a, acg.entries_.size());
      acg.entries_.push_back(AddressRWSet{Address(a), {}, {}});
    }
  }

  // ---- Per-shard fill in segment order == ascending TxIndex order.
  pool.ParallelFor(0, shards, [&](std::size_t s) {
    obs::TraceSpan span("acg_shard_fill_" + std::to_string(s));
    for (std::size_t seg = 0; seg < segments; ++seg) {
      for (const Unit& u : scatter_->reads[seg][s]) {
        acg.entries_[acg.index_.find(u.address)->second].readers.push_back(
            u.tx);
      }
      for (const Unit& u : scatter_->writes[seg][s]) {
        acg.entries_[acg.index_.find(u.address)->second].writers.push_back(
            u.tx);
      }
    }
  });

  // ---- Edges: the appended (write-address -> read-address) pairs become
  // BuildSharded's packed (wi << 32) | ri keys now that subscripts exist;
  // per-shard sort/unique, then the serial AddEdge sweep.
  std::vector<std::vector<std::uint64_t>> shard_edges(shards);
  pool.ParallelFor(0, shards, [&](std::size_t s) {
    obs::TraceSpan span("acg_shard_edges_" + std::to_string(s));
    std::vector<std::uint64_t>& edges = shard_edges[s];
    for (std::size_t seg = 0; seg < segments; ++seg) {
      for (const Scatter::AddrPair& pair : scatter_->edges[seg][s]) {
        const auto wi =
            static_cast<std::uint64_t>(acg.index_.find(pair.w)->second);
        const auto ri =
            static_cast<std::uint64_t>(acg.index_.find(pair.r)->second);
        edges.push_back((wi << 32) | ri);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    MutexLock lock(merge.mutex);
    merge.edges += edges.size();
  });
  acg.dependencies_ = std::make_unique<Digraph>(acg.entries_.size());
  for (const auto& edges : shard_edges) {
    for (const std::uint64_t key : edges) {
      acg.dependencies_->AddEdge(
          static_cast<Digraph::Vertex>(key >> 32),
          static_cast<Digraph::Vertex>(key & 0xffffffff));
    }
  }

  if (obs::MetricsEnabled()) {
    auto& registry = obs::Registry();
    registry.GetCounter("nezha_parallel_acg_builds_total")->Inc();
    MutexLock lock(merge.mutex);
    registry.GetGauge("nezha_parallel_acg_shards")
        ->Set(static_cast<std::int64_t>(shards));
    registry.GetGauge("nezha_parallel_acg_max_shard_addresses")
        ->Set(static_cast<std::int64_t>(merge.max_shard_addresses));
  }
  return acg;
}

std::string AddressConflictGraph::CanonicalEncoding() const {
  std::string out;
  out.reserve(48 * entries_.size() + 16 * NumEdges() + 32);
  out += "acg v=";
  AppendU64(out, entries_.size());
  out += " e=";
  AppendU64(out, NumEdges());
  out += "\n";
  const auto append_list = [&out](const std::vector<TxIndex>& txs) {
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (i != 0) out += ',';
      AppendU64(out, txs[i]);
    }
  };
  for (std::size_t v = 0; v < entries_.size(); ++v) {
    const AddressRWSet& entry = entries_[v];
    out += "v ";
    AppendU64(out, v);
    out += " a=";
    AppendU64(out, entry.address.value);
    out += " r=";
    append_list(entry.readers);
    out += " w=";
    append_list(entry.writers);
    out += "\n";
  }
  // Edges with neighbors sorted per source: Build (insertion-ordered
  // adjacency) and BuildSharded (sorted adjacency) carry the same edge set
  // in different internal orders; the canonical form must not see that.
  std::vector<Digraph::Vertex> neighbors;
  for (std::size_t u = 0; u < entries_.size(); ++u) {
    const auto out_edges =
        dependencies_->OutNeighbors(static_cast<Digraph::Vertex>(u));
    neighbors.assign(out_edges.begin(), out_edges.end());
    std::sort(neighbors.begin(), neighbors.end());
    for (const Digraph::Vertex v : neighbors) {
      out += "e ";
      AppendU64(out, u);
      out += '>';
      AppendU64(out, v);
      out += "\n";
    }
  }
  return out;
}

}  // namespace nezha
