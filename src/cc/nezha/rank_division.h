// Sorting-rank division — the paper's Algorithm 1.
//
// Ranks the ACG's addresses so transaction sorting proceeds in address-
// dependency order (sorting an address's readers by its writers' order is
// more accurate than the reverse; see the paper's sorting-anomaly analysis,
// Fig. 5). The procedure is a topological sort modified to make progress
// through cycles without removing them:
//
//  * while some vertex has in-degree 0, emit the smallest-subscript such
//    vertex (lines 9-12 of Algorithm 1);
//  * otherwise (a cycle blocks every vertex — unserializable transactions
//    exist), emit the vertex with minimum in-degree, breaking ties by
//    maximum out-degree ("most dependencies"), then by minimum subscript
//    (lines 14-21);
//  * either way, delete the vertex and its edges and repeat.
//
// Unserializable transactions are NOT resolved here — the per-address
// transaction sorter detects them with a plain sequence-number comparison,
// which is Nezha's replacement for Johnson-style cycle enumeration.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "obs/abort_attribution.h"

namespace nezha {

enum class RankPolicy {
  /// Algorithm 1: cycle tie-breaks prefer minimum in-degree, then maximum
  /// out-degree ("most dependencies"), then minimum subscript.
  kNezha,
  /// Ablation baseline: when a cycle blocks progress, just take the
  /// smallest-subscript live vertex, ignoring degrees.
  kNaive,
};

/// Returns the address vertices of `g` in sorting-rank order (highest rank,
/// i.e. sorted first, at position 0). Deterministic. Implemented with lazy
/// in-degree buckets so cycle-breaks cost amortized O(V + E) instead of
/// O(V) each.
///
/// When `stats` is non-null it accumulates one entry per emitted vertex:
/// plain in-degree-0 pops vs. cycle-breaks, and — for each cycle-break —
/// which Algorithm 1 tie-break rule actually decided the pick (a single
/// minimum-in-degree candidate, the maximum-out-degree rule, or the final
/// minimum-subscript fallback). Feeds abort attribution and the epoch
/// flight recorder (docs/OBSERVABILITY.md).
std::vector<Digraph::Vertex> ComputeSortingRanks(
    const Digraph& g, RankPolicy policy = RankPolicy::kNezha,
    obs::RankDecisionStats* stats = nullptr);

/// The paper's pseudocode rendered literally (O(V) scan per cycle-break).
/// Produces byte-identical output to ComputeSortingRanks; kept as the test
/// oracle and for complexity comparisons.
std::vector<Digraph::Vertex> ComputeSortingRanksReference(
    const Digraph& g, RankPolicy policy = RankPolicy::kNezha);

/// Canonical text encoding of a rank order (one `r <pos> v=<vertex>` line
/// per emitted address vertex, plus the cycle-break decision counters).
/// Feeds the kRank determinism checkpoint (src/analysis/det_checkpoint.h).
std::string CanonicalRankEncoding(std::span<const Digraph::Vertex> rank_order,
                                  const obs::RankDecisionStats* stats = nullptr);

}  // namespace nezha
