// Hierarchical sorting, step 2: per-address transaction sorting — the
// paper's Algorithm 2, plus the §IV.D reordering enhancement.
//
// Addresses are visited in sorting-rank order. On each address the sorter
// assigns Lamport-style sequence numbers to the read/write units under the
// paper's three rules:
//   1. every read unit gets a smaller number than every write unit;
//   2. write units are ordered deterministically by transaction subscript;
//   3. read units may share one number (reads never conflict).
// Because transactions are atomic, a number is assigned to the whole
// transaction; units of a transaction on other addresses inherit it.
//
// Unserializable transactions show up as a write unit whose (previously
// assigned) number does not exceed the address's maximum read number —
// detected with one comparison instead of cycle enumeration (the paper's
// replacement for Johnson's algorithm). Such transactions abort, unless the
// reordering enhancement can legally re-seat them: a transaction whose
// conflict stems from write-write ordering can move to a fresh number above
// everything it touches, provided the move provably keeps every
// already-sorted address consistent (the implementation verifies
// read-below-write and write-uniqueness on all affected addresses; the
// paper's §IV.D states the multi-write condition, we enforce the full
// soundness check).
#pragma once

#include <span>
#include <vector>

#include "cc/nezha/acg.h"
#include "cc/scheduler.h"
#include "obs/abort_attribution.h"

namespace nezha {

struct TxSorterOptions {
  /// Enable the §IV.D reordering enhancement (on by default, as in Nezha;
  /// turning it off gives the ablation baseline).
  bool enable_reordering = true;
  /// First sequence number handed out (the paper's initialSeq).
  SeqNum initial_seq = 1;
};

struct TxSorterResult {
  std::vector<SeqNum> sequence;  ///< per TxIndex; kUnassignedSeq = untouched
  std::vector<bool> aborted;     ///< per TxIndex
  std::size_t reordered_txs = 0; ///< §IV.D rescues (raises performed)
  /// Reordered transactions that survived to commit, ascending TxIndex (a
  /// raised transaction can still abort on a later-sorted address, so this
  /// can be shorter than reordered_txs).
  std::vector<TxIndex> reordered;
  /// One record per abort decision, emitted at the address where it fell
  /// (docs/OBSERVABILITY.md abort-cause taxonomy). A transaction aborts at
  /// most once, so records are unique per TxIndex.
  std::vector<obs::AbortRecord> abort_records;
  /// §IV.D raises attempted (successful or not); reordered_txs counts the
  /// successes.
  std::uint64_t reorder_attempts = 0;
};

/// Sorts all transactions of a batch given its ACG and the address rank
/// order (output of ComputeSortingRanks). `num_txs` sizes the result;
/// transactions whose rwset.ok was false never appear in the ACG and keep
/// sequence 0 / aborted=true (they commit nothing).
TxSorterResult SortTransactions(const AddressConflictGraph& acg,
                                std::span<const Digraph::Vertex> rank_order,
                                std::size_t num_txs,
                                const TxSorterOptions& options = {});

/// Parallel Algorithm 2: partitions the ACG into conflict clusters (entries
/// connected through a shared transaction) with a union-find, then sorts
/// each cluster on the pool. Clusters share no transactions and no
/// addresses, so every per-address decision — fills, re-seats, aborts,
/// used-write-number skips — is confined to its cluster and the merged
/// result is byte-identical to SortTransactions (docs/PARALLELISM.md walks
/// the argument; abort records are merged back into address-rank order).
/// The §IV.D reorder pass stays deterministic because rank_order already
/// carries the fixed address-id tie-break and each cluster preserves its
/// subsequence of that order. Small batches fall back to the serial sorter.
TxSorterResult SortTransactionsParallel(
    const AddressConflictGraph& acg,
    std::span<const Digraph::Vertex> rank_order, std::size_t num_txs,
    ThreadPool& pool, const TxSorterOptions& options = {});

/// Canonical text encoding of the sorter's abort decisions (one line per
/// AbortRecord in emission order: tx, conflict kind, address, seq at
/// decision, reorder outcome). Folded into the kSort determinism checkpoint
/// (src/analysis/det_checkpoint.h) so a divergent abort *decision* — not
/// just a divergent final sequence — is localized to the sort stage.
std::string CanonicalAbortRecordsEncoding(
    std::span<const obs::AbortRecord> records);

}  // namespace nezha
