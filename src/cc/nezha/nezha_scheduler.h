// NezhaScheduler: the paper's full concurrency-control pipeline —
// ① ACG construction, ② sorting-rank division, ③ per-address transaction
// sorting (with the §IV.D reordering enhancement) — producing a total commit
// order with concurrency: transactions sharing a sequence number commit in
// parallel.
#pragma once

#include <optional>

#include "cc/nezha/acg.h"
#include "cc/nezha/rank_division.h"
#include "cc/nezha/tx_sorter.h"
#include "cc/scheduler.h"

namespace nezha {

struct NezhaOptions {
  /// §IV.D reordering enhancement; disable for the ablation baseline.
  bool enable_reordering = true;
  /// Algorithm 1 cycle tie-break policy (kNaive is the ablation baseline).
  RankPolicy rank_policy = RankPolicy::kNezha;
  /// When set, ACG construction runs sharded and transaction sorting runs
  /// cluster-parallel on this pool (docs/PARALLELISM.md); output is
  /// byte-identical to the serial pipeline. Not owned; must outlive the
  /// scheduler. nullptr = fully serial build.
  ThreadPool* pool = nullptr;
  /// Shard count for the parallel ACG build (0 = one shard per pool
  /// worker). Ignored when pool is null.
  std::size_t acg_shards = 0;
};

class NezhaScheduler final : public Scheduler {
 public:
  explicit NezhaScheduler(const NezhaOptions& options = {})
      : options_(options) {}

  std::string_view name() const override {
    return options_.enable_reordering ? "nezha" : "nezha-noreorder";
  }

  const SchedulerMetrics& metrics() const override { return metrics_; }

  /// Hands the NEXT BuildSchedule call a conflict graph that was already
  /// constructed incrementally (AcgBuilder::Seal) while the batch streamed
  /// in — the cross-epoch pipeline's step-① overlap. Consumed by exactly
  /// one build; the kAcg checkpoint and all downstream stages see the same
  /// bytes as an in-build construction (AcgBuilder's equivalence contract).
  void SetPrebuiltAcg(AddressConflictGraph&& acg, double construction_us) {
    prebuilt_acg_ = std::move(acg);
    prebuilt_construction_us_ = construction_us;
  }

 protected:
  Result<Schedule> BuildScheduleImpl(
      std::span<const ReadWriteSet> rwsets) override;

 private:
  NezhaOptions options_;
  SchedulerMetrics metrics_;
  std::optional<AddressConflictGraph> prebuilt_acg_;
  double prebuilt_construction_us_ = 0;
};

}  // namespace nezha
