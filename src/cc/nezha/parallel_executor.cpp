#include "cc/nezha/parallel_executor.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/det_checkpoint.h"
#include "common/canonical_text.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/tx_lifecycle.h"

namespace nezha {
namespace {

using WriteBuffer = std::unordered_map<std::uint64_t, StateValue>;

/// Canonical text encoding of the post-execution write buffer: header with
/// the group/write counters, then one line per address in ascending address
/// order. The buffer is an unordered_map, so sorting here is what makes the
/// kExecute checkpoint independent of hash-table iteration order.
std::string CanonicalWriteBufferEncoding(const ParallelExecStats& stats,
                                         const WriteBuffer& buffer) {
  std::vector<std::pair<std::uint64_t, StateValue>> items(buffer.begin(),
                                                          buffer.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  out.reserve(64 + items.size() * 24);
  out += "exec txs=";
  AppendU64(out, stats.committed_txs);
  out += " groups=";
  AppendU64(out, stats.groups);
  out += " max_group=";
  AppendU64(out, stats.max_group);
  out += " writes=";
  AppendU64(out, stats.writes_applied);
  out += " addrs=";
  AppendU64(out, items.size());
  out += '\n';
  for (const auto& [addr, value] : items) {
    out += "w ";
    AppendU64(out, addr);
    out += '=';
    AppendI64(out, static_cast<std::int64_t>(value));
    out += '\n';
  }
  return out;
}

/// Applies the merged buffer to the StateDB in parallel. Every address has
/// exactly one final value, so the apply is order-independent; sorting
/// first keeps the chunk partition (and the sharded-lock access pattern)
/// deterministic for a given pool size.
void ApplyBuffer(ThreadPool& pool, StateDB& state, const WriteBuffer& buffer) {
  obs::ProfileSpan pspan("state_apply");
  std::vector<std::pair<std::uint64_t, StateValue>> items(buffer.begin(),
                                                          buffer.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  pool.ParallelForChunked(
      0, items.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          state.Set(Address(items[i].first), items[i].second);
        }
      });
}

void PublishExecObs(const ParallelExecStats& stats) {
  if (!obs::MetricsEnabled()) return;
  auto& registry = obs::Registry();
  registry.GetCounter("nezha_parallel_exec_txs_total")
      ->Inc(stats.committed_txs);
  registry.GetCounter("nezha_parallel_exec_writes_total")
      ->Inc(stats.writes_applied);
  registry.GetGauge("nezha_parallel_exec_groups")
      ->Set(static_cast<std::int64_t>(stats.groups));
  registry.GetGauge("nezha_parallel_exec_max_group")
      ->Set(static_cast<std::int64_t>(stats.max_group));
}

}  // namespace

ParallelExecStats ExecuteScheduleParallel(ThreadPool& pool, StateDB& state,
                                          const StateSnapshot& snapshot,
                                          const Schedule& schedule,
                                          std::span<const ReadWriteSet> rwsets,
                                          ParallelExecMode mode,
                                          const TxExecFn& exec) {
  obs::TraceSpan span(mode == ParallelExecMode::kApplyRecorded
                          ? "parallel_execute_recorded"
                          : "parallel_execute_rerun");
  // Stage label for every pool task this executor submits (group items,
  // buffer apply chunks); nests inside the node's "commit" envelope.
  obs::ProfileSpan pspan("exec_groups");
  ParallelExecStats stats;
  stats.groups = schedule.groups.size();
  WriteBuffer buffer;

  // Lifecycle: stamp kExecuted only when this run belongs to the active
  // epoch (microbenches execute schedules outside any epoch). In
  // kApplyRecorded mode the whole merge is one pass, so one batch stamp
  // after the sweep keeps the tracer out of the hot loop; re-execution
  // stamps per group as each barrier completes.
  obs::TxLifecycleTracer& lifecycle = obs::Lifecycle();
  const bool stamp_lifecycle = lifecycle.enabled() &&
                               lifecycle.EpochActive() &&
                               lifecycle.CurrentEpochSize() == rwsets.size();

  if (mode == ParallelExecMode::kApplyRecorded) {
    // The group's effects are already known (the speculative rwsets), so
    // "execution" reduces to the deterministic merge: sweep groups in
    // ascending sequence order, transactions in ascending TxIndex, and let
    // the buffer keep each address's last write. The sweep is linear in
    // write units; the heavy part — pushing the buffer into the sharded
    // StateDB — is what runs on the pool.
    for (const auto& group : schedule.groups) {
      stats.committed_txs += group.size();
      stats.max_group = std::max(stats.max_group, group.size());
      for (const TxIndex t : group) {
        const ReadWriteSet& rw = rwsets[t];
        for (std::size_t i = 0; i < rw.writes.size(); ++i) {
          buffer[rw.writes[i].value] = rw.write_values[i];
        }
        stats.writes_applied += rw.writes.size();
      }
    }
    if (stamp_lifecycle) lifecycle.StampAll(obs::TxStage::kExecuted);
  } else {
    // Re-execution: each group's transactions run concurrently against the
    // snapshot plus the overlay of all earlier groups. LoggedStateView only
    // buffers writes locally, and the overlay is read-only while a group is
    // in flight, so in-group execution shares no mutable state; the group
    // barrier then merges write sets in ascending TxIndex order.
    LoggedStateView::Overlay overlay;
    std::vector<ReadWriteSet> fresh(rwsets.size());
    for (const auto& group : schedule.groups) {
      stats.committed_txs += group.size();
      stats.max_group = std::max(stats.max_group, group.size());
      const auto run_one = [&](std::size_t i) {
        const TxIndex t = group[i];
        LoggedStateView view(snapshot, &overlay);
        const Status executed = exec(t, view);
        fresh[t] = view.TakeRWSet();
        if (!executed.ok()) fresh[t].ok = false;
      };
      if (group.size() == 1) {
        run_one(0);  // serial fast path: no dispatch overhead
      } else {
        obs::TraceSpan group_span("exec_group");
        pool.ParallelFor(0, group.size(), run_one);
      }
      stats.reexecuted_txs += group.size();
      for (const TxIndex t : group) {
        const ReadWriteSet& rw = fresh[t];
        if (!rw.ok) continue;  // re-execution revert: commits nothing
        for (std::size_t i = 0; i < rw.writes.size(); ++i) {
          overlay[rw.writes[i].value] = rw.write_values[i];
          buffer[rw.writes[i].value] = rw.write_values[i];
        }
        stats.writes_applied += rw.writes.size();
      }
      if (stamp_lifecycle) {
        lifecycle.StampTxs(group, obs::TxStage::kExecuted);
      }
    }
  }

  stats.buffered_addresses = buffer.size();

  analysis::DetCheckpointRecorder& det =
      analysis::DetCheckpointRecorder::Global();
  if (det.enabled()) {
    det.Record(analysis::DetStage::kExecute,
               CanonicalWriteBufferEncoding(stats, buffer));
  }

  ApplyBuffer(pool, state, buffer);
  PublishExecObs(stats);
  return stats;
}

}  // namespace nezha
