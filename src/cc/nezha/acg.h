// Address-based Conflict Graph (ACG) — the paper's Definition 4.
//
// Instead of capturing a dependency edge per pair of conflicting
// transactions (quadratic), each accessed address A_j keeps a read/write set
// RW_j: the transactions that read it and the transactions that write it.
// Read units are conceptually placed before write units on every address
// (the read-before-write ordering rule), and both lists are kept in
// transaction-subscript order (the deterministic write-write rule).
//
// A directed edge RW_i -> RW_j exists iff some transaction writes A_i and
// reads A_j (Definition 3, address dependency): that transaction's write
// unit sits late in RW_i while its read unit sits early in RW_j, so
// transactions on A_i generally precede those on A_j in the total order.
//
// Construction is O(u * N) for N transactions with u read/write units each —
// the linear-time property the paper claims for step 1 of Nezha.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "graph/digraph.h"
#include "vm/rwset.h"

namespace nezha {

/// RW_j of one address: the transactions reading and writing it.
struct AddressRWSet {
  Address address;
  std::vector<TxIndex> readers;  ///< ascending TxIndex (subscript order)
  std::vector<TxIndex> writers;  ///< ascending TxIndex (subscript order)
};

class AddressConflictGraph {
 public:
  /// Builds the ACG over one batch of read/write sets. Transactions flagged
  /// rwset.ok == false (application-level reverts) contribute no units.
  static AddressConflictGraph Build(std::span<const ReadWriteSet> rwsets);

  /// Sharded parallel construction: addresses are partitioned across
  /// `num_shards` shards by hash (0 = one per pool worker), transactions are
  /// chunked across the pool to scatter their units per shard, and each
  /// shard then merges its own RW-sets and address-dependency edges
  /// independently (docs/PARALLELISM.md). Produces the exact vertex set,
  /// subscript assignment, readers/writers lists, and edge multiset of
  /// Build() — only the Digraph's internal adjacency ordering differs
  /// (sorted instead of insertion-ordered), which no consumer observes.
  /// Batches too small to amortize dispatch fall back to Build().
  static AddressConflictGraph BuildSharded(std::span<const ReadWriteSet> rwsets,
                                           ThreadPool& pool,
                                           std::size_t num_shards = 0);

  /// Accessed addresses in ascending address order; the position of an entry
  /// is its dense "address subscript" used for deterministic tie-breaking.
  const std::vector<AddressRWSet>& entries() const { return entries_; }

  /// Address-dependency graph: vertex i is entries()[i]; edges deduplicated.
  const Digraph& dependencies() const { return *dependencies_; }

  /// Dense index of an address, or -1 if the batch never accessed it.
  int IndexOf(Address a) const {
    const auto it = index_.find(a.value);
    return it == index_.end() ? -1 : static_cast<int>(it->second);
  }

  std::size_t NumAddresses() const { return entries_.size(); }
  std::size_t NumEdges() const { return dependencies_->NumEdges(); }

  /// Canonical text encoding of the graph — vertex set with subscripts,
  /// per-address readers/writers, and the edge multiset with neighbors
  /// sorted (so Build and BuildSharded, which differ only in internal
  /// adjacency ordering, encode identically). Feeds the kAcg determinism
  /// checkpoint (src/analysis/det_checkpoint.h).
  std::string CanonicalEncoding() const;

 private:
  friend class AcgBuilder;

  std::vector<AddressRWSet> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::unique_ptr<Digraph> dependencies_;
};

/// Incremental ACG construction for the cross-epoch pipeline: confirmed
/// blocks append their transactions' read/write sets as they arrive (in
/// consensus order), feeding the same per-shard scatter structures
/// BuildSharded uses, and Seal() runs the merge/fill/edge phases over the
/// accumulated scatter. The sealed graph has the exact vertex set,
/// subscript assignment, readers/writers lists, and edge multiset of a
/// from-scratch Build()/BuildSharded() over the concatenated batch —
/// including the <32-transaction serial-fallback boundary, which is decided
/// on the TOTAL appended count at Seal() time (tests/acg_test.cpp pins the
/// multiset equality on both sides of it).
///
/// Not thread-safe: appends must arrive from one thread in batch order
/// (TxIndex subscripts are assigned by arrival position).
class AcgBuilder {
 public:
  /// `pool` drives the scatter of each append and Seal's merge phases;
  /// nullptr (or a 1-worker pool) makes Seal() the serial Build().
  /// `num_shards` = 0 means one shard per pool worker.
  explicit AcgBuilder(ThreadPool* pool = nullptr, std::size_t num_shards = 0);
  ~AcgBuilder();

  /// Appends one slice of read/write sets in arrival order; the i-th
  /// appended rwset overall gets TxIndex i. Scatters the slice's units into
  /// the per-shard structures immediately (on the pool when available).
  void AppendTxs(std::span<const ReadWriteSet> rwsets);

  /// One confirmed block's worth of (already deduplicated) read/write sets
  /// — the streaming unit of the cross-epoch pipeline. Identical to
  /// AppendTxs; the name documents the call site's granularity.
  void AppendBlock(std::span<const ReadWriteSet> rwsets) { AppendTxs(rwsets); }

  /// Transactions appended so far.
  std::size_t TxCount() const { return rwsets_.size(); }

  /// Merges the accumulated scatter into the finished graph. The builder is
  /// spent afterwards (appending to a sealed builder is undefined).
  AddressConflictGraph Seal();

 private:
  struct Scatter;  ///< per-(segment, shard) unit + edge-pair buckets

  ThreadPool* pool_;
  std::size_t num_shards_;
  std::size_t shards_ = 0;  ///< resolved shard count (0 until first append)
  /// Retained copy of every appended rwset, in arrival order: the serial
  /// fallback (total < 32 txs at Seal) rebuilds from these.
  std::vector<ReadWriteSet> rwsets_;
  std::unique_ptr<Scatter> scatter_;
};

}  // namespace nezha
