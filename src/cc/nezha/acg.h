// Address-based Conflict Graph (ACG) — the paper's Definition 4.
//
// Instead of capturing a dependency edge per pair of conflicting
// transactions (quadratic), each accessed address A_j keeps a read/write set
// RW_j: the transactions that read it and the transactions that write it.
// Read units are conceptually placed before write units on every address
// (the read-before-write ordering rule), and both lists are kept in
// transaction-subscript order (the deterministic write-write rule).
//
// A directed edge RW_i -> RW_j exists iff some transaction writes A_i and
// reads A_j (Definition 3, address dependency): that transaction's write
// unit sits late in RW_i while its read unit sits early in RW_j, so
// transactions on A_i generally precede those on A_j in the total order.
//
// Construction is O(u * N) for N transactions with u read/write units each —
// the linear-time property the paper claims for step 1 of Nezha.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "graph/digraph.h"
#include "vm/rwset.h"

namespace nezha {

/// RW_j of one address: the transactions reading and writing it.
struct AddressRWSet {
  Address address;
  std::vector<TxIndex> readers;  ///< ascending TxIndex (subscript order)
  std::vector<TxIndex> writers;  ///< ascending TxIndex (subscript order)
};

class AddressConflictGraph {
 public:
  /// Builds the ACG over one batch of read/write sets. Transactions flagged
  /// rwset.ok == false (application-level reverts) contribute no units.
  static AddressConflictGraph Build(std::span<const ReadWriteSet> rwsets);

  /// Sharded parallel construction: addresses are partitioned across
  /// `num_shards` shards by hash (0 = one per pool worker), transactions are
  /// chunked across the pool to scatter their units per shard, and each
  /// shard then merges its own RW-sets and address-dependency edges
  /// independently (docs/PARALLELISM.md). Produces the exact vertex set,
  /// subscript assignment, readers/writers lists, and edge multiset of
  /// Build() — only the Digraph's internal adjacency ordering differs
  /// (sorted instead of insertion-ordered), which no consumer observes.
  /// Batches too small to amortize dispatch fall back to Build().
  static AddressConflictGraph BuildSharded(std::span<const ReadWriteSet> rwsets,
                                           ThreadPool& pool,
                                           std::size_t num_shards = 0);

  /// Accessed addresses in ascending address order; the position of an entry
  /// is its dense "address subscript" used for deterministic tie-breaking.
  const std::vector<AddressRWSet>& entries() const { return entries_; }

  /// Address-dependency graph: vertex i is entries()[i]; edges deduplicated.
  const Digraph& dependencies() const { return *dependencies_; }

  /// Dense index of an address, or -1 if the batch never accessed it.
  int IndexOf(Address a) const {
    const auto it = index_.find(a.value);
    return it == index_.end() ? -1 : static_cast<int>(it->second);
  }

  std::size_t NumAddresses() const { return entries_.size(); }
  std::size_t NumEdges() const { return dependencies_->NumEdges(); }

  /// Canonical text encoding of the graph — vertex set with subscripts,
  /// per-address readers/writers, and the edge multiset with neighbors
  /// sorted (so Build and BuildSharded, which differ only in internal
  /// adjacency ordering, encode identically). Feeds the kAcg determinism
  /// checkpoint (src/analysis/det_checkpoint.h).
  std::string CanonicalEncoding() const;

 private:
  std::vector<AddressRWSet> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::unique_ptr<Digraph> dependencies_;
};

}  // namespace nezha
