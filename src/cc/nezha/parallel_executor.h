// Deterministic group-parallel execution of a Nezha schedule — the paper's
// promise that transactions sharing a sequence number run concurrently,
// realized without giving up bit-for-bit reproducibility.
//
// Commit groups are processed in ascending sequence order. Within a group,
// transactions execute (or have their recorded effects gathered) in
// parallel against the immutable epoch snapshot plus an overlay of every
// earlier group's writes; nothing mutates shared state mid-group. At the
// group barrier the group's write sets merge into a write buffer in
// ascending TxIndex order — a fixed, schedule-derived order — so the buffer
// after the last group is exactly the state serial replay of the schedule
// would produce, regardless of thread count or interleaving
// (docs/PARALLELISM.md gives the full determinism argument).
//
// Two modes:
//   * kApplyRecorded — trust the speculative read/write sets (Nezha's
//     normal commitment path): group writes land in the buffer directly,
//     and only the final buffer is applied to the StateDB, in parallel.
//   * kReExecute — run each transaction's code again through a TxExecFn
//     against snapshot+overlay (the oracle-style witness replay, now
//     parallel per group). Used by tests and by deployments that want
//     execute-after-order semantics.
#pragma once

#include <functional>
#include <span>

#include "cc/scheduler.h"
#include "common/thread_pool.h"
#include "storage/state_db.h"
#include "vm/logged_state.h"
#include "vm/rwset.h"

namespace nezha {

enum class ParallelExecMode {
  kApplyRecorded,  ///< apply the schedule's recorded write sets
  kReExecute,      ///< re-run transaction code group-by-group
};

/// Runs one transaction against the given view (group-parallel re-execution
/// callback; the tx index identifies the payload in the caller's batch).
using TxExecFn = std::function<Status(TxIndex tx, LoggedStateView& view)>;

struct ParallelExecStats {
  std::size_t committed_txs = 0;   ///< group members processed
  std::size_t groups = 0;
  std::size_t writes_applied = 0;  ///< write units merged into the buffer
  std::size_t buffered_addresses = 0;  ///< distinct addresses in the buffer
  std::size_t max_group = 0;       ///< peak in-group concurrency
  std::size_t reexecuted_txs = 0;  ///< kReExecute only
};

/// Executes `schedule` against `snapshot` on the pool and applies the merged
/// write buffer to `state`. The final StateDB contents (values, dirty set,
/// root hash) are byte-identical to committing the schedule serially in
/// (sequence, TxIndex) order. Does not flush; callers decide when to
/// persist and hash. `exec` is required in kReExecute mode and ignored in
/// kApplyRecorded mode.
ParallelExecStats ExecuteScheduleParallel(
    ThreadPool& pool, StateDB& state, const StateSnapshot& snapshot,
    const Schedule& schedule, std::span<const ReadWriteSet> rwsets,
    ParallelExecMode mode = ParallelExecMode::kApplyRecorded,
    const TxExecFn& exec = {});

}  // namespace nezha
