#include "cc/cg/cg_scheduler.h"

#include <algorithm>
#include <unordered_map>

#include "common/stopwatch.h"
#include "graph/digraph.h"
#include "graph/johnson.h"
#include "graph/tarjan.h"
#include "graph/toposort.h"

namespace nezha {
namespace {

using Vertex = Digraph::Vertex;

/// Sorted-vector intersection test.
bool Intersects(std::span<const Address> a, std::span<const Address> b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

Result<Schedule> CGScheduler::BuildScheduleImpl(
    std::span<const ReadWriteSet> rwsets) {
  metrics_ = SchedulerMetrics{};
  const std::size_t n = rwsets.size();

  Schedule schedule;
  schedule.sequence.assign(n, kUnassignedSeq);
  schedule.aborted.assign(n, false);
  for (TxIndex t = 0; t < n; ++t) {
    if (!rwsets[t].ok) schedule.aborted[t] = true;
  }

  // ---- Step 1: graph construction (pairwise comparison, Definition 1) ----
  Stopwatch watch;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (TxIndex u = 0; u < n; ++u) {
    if (schedule.aborted[u]) continue;
    for (TxIndex v = u + 1; v < n; ++v) {
      if (schedule.aborted[v]) continue;
      // u < v: rw (u reads what v writes) and ww order u before v;
      // v's reads of u's writes order v before u.
      const bool u_before_v = Intersects(rwsets[u].reads, rwsets[v].writes) ||
                              Intersects(rwsets[u].writes, rwsets[v].writes);
      const bool v_before_u = Intersects(rwsets[v].reads, rwsets[u].writes);
      if (u_before_v) edges.emplace_back(u, v);
      if (v_before_u) edges.emplace_back(v, u);
    }
  }
  metrics_.construction_us = watch.ElapsedMicros();
  metrics_.graph_vertices = n;
  metrics_.graph_edges = edges.size();

  // ---- Step 2: cycle detection and removal ----
  watch.Restart();
  std::uint64_t global_work_remaining = options_.max_total_work;

  const auto build_alive_graph = [&](std::vector<Vertex>& to_original) {
    to_original.clear();
    std::unordered_map<Vertex, Vertex> to_compact;
    for (TxIndex t = 0; t < n; ++t) {
      if (!schedule.aborted[t]) {
        to_compact[t] = static_cast<Vertex>(to_original.size());
        to_original.push_back(t);
      }
    }
    Digraph g(to_original.size());
    for (const auto& [u, v] : edges) {
      if (!schedule.aborted[u] && !schedule.aborted[v]) {
        g.AddEdge(to_compact[u], to_compact[v]);
      }
    }
    return g;
  };

  for (;;) {
    std::vector<Vertex> to_original;
    const Digraph g = build_alive_graph(to_original);
    const auto sccs = TarjanSCC(g);

    std::vector<std::vector<Vertex>> cyclic;
    for (const auto& scc : sccs) {
      if (scc.size() > 1) cyclic.push_back(scc);
    }
    if (cyclic.empty()) break;

    // Deterministic SCC order: by smallest original member.
    for (auto& scc : cyclic) std::sort(scc.begin(), scc.end());
    std::sort(cyclic.begin(), cyclic.end());

    bool exhausted = false;
    for (const auto& scc : cyclic) {
      // Induce the SCC subgraph and enumerate its elementary circuits.
      std::unordered_map<Vertex, Vertex> scc_index;
      for (Vertex v : scc) {
        scc_index[v] = static_cast<Vertex>(scc_index.size());
      }
      Digraph sub(scc.size());
      for (Vertex v : scc) {
        for (Vertex w : g.OutNeighbors(v)) {
          const auto it = scc_index.find(w);
          if (it != scc_index.end()) sub.AddEdge(scc_index[v], it->second);
        }
      }
      JohnsonOptions jopts;
      jopts.max_circuits =
          std::min(options_.max_circuits, global_work_remaining);
      jopts.max_total_vertices = options_.max_total_vertices;
      JohnsonResult circuits;
      if (jopts.max_circuits == 0) {
        circuits.budget_exceeded = true;  // global work budget consumed
      } else {
        circuits = FindElementaryCircuits(sub, jopts);
      }
      metrics_.cycles_found += circuits.circuits.size();
      global_work_remaining -= std::min<std::uint64_t>(
          global_work_remaining, circuits.circuits.size());

      if (circuits.budget_exceeded) {
        // Emulates the paper's out-of-memory failure: give up on precise
        // removal; abort everything in this SCC but its smallest member.
        exhausted = true;
        for (std::size_t i = 1; i < scc.size(); ++i) {
          schedule.aborted[to_original[scc[i]]] = true;
        }
        continue;
      }

      // Abort the transaction participating in the most circuits
      // (Fabric++'s greedy victim choice); ties go to the smallest id.
      std::unordered_map<Vertex, std::uint64_t> participation;
      for (const auto& circuit : circuits.circuits) {
        for (Vertex v : circuit) ++participation[v];
      }
      Vertex victim = scc[0];
      std::uint64_t best = 0;
      for (Vertex v : scc) {
        const auto it = participation.find(scc_index[v]);
        const std::uint64_t count = it == participation.end() ? 0 : it->second;
        if (count > best) {
          best = count;
          victim = v;
        }
      }
      schedule.aborted[to_original[victim]] = true;
    }
    if (exhausted) {
      metrics_.resource_exhausted = true;
      // One more Tarjan pass will confirm acyclicity (SCCs lost all but one
      // member); loop continues until clean.
    }
  }
  metrics_.cycle_us = watch.ElapsedMicros();

  // ---- Step 3: topological sorting (serial commit order) ----
  watch.Restart();
  std::vector<Vertex> to_original;
  const Digraph g = build_alive_graph(to_original);
  const auto order = TopologicalSort(g);
  if (!order.has_value()) {
    return Status::Internal("conflict graph still cyclic after removal");
  }
  SeqNum next = 1;
  for (Vertex v : *order) {
    schedule.sequence[to_original[v]] = next++;
  }
  metrics_.sorting_us = watch.ElapsedMicros();

  schedule.RebuildGroups();
  PublishSchedulerObs(name(), metrics_, schedule, rwsets,
                      metrics_.resource_exhausted ? "budget-exhausted"
                                                  : "cycle");
  return schedule;
}

}  // namespace nezha
