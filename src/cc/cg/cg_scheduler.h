// CGScheduler: the strawman conflict-graph scheme (§III.D), implemented the
// way Fabric++ / FabricSharp do it:
//  ① graph construction — pairwise read/write-set comparison, O((N²-N)/2);
//  ② cycle detection and removal — Tarjan SCCs localize cycles, Johnson's
//     algorithm enumerates elementary circuits, and the transaction
//     appearing in the most circuits aborts, iterating until acyclic;
//  ③ topological sorting — a serial commit order (one transaction per
//     commit group; the scheme has no notion of concurrent commitment).
//
// Johnson's enumeration carries a budget standing in for the memory the
// paper's CG prototype exhausted at high contention (Fig. 9, skew 0.8):
// when it trips, metrics().resource_exhausted is set and every transaction
// in a still-cyclic SCC except its smallest member aborts so the run can
// terminate.
#pragma once

#include <cstdint>

#include "cc/scheduler.h"

namespace nezha {

struct CGOptions {
  /// Johnson budget: maximum elementary circuits per enumeration pass
  /// (stands in for the memory one materialized circuit list may occupy).
  std::uint64_t max_circuits = 200'000;
  /// Johnson budget: total vertices across stored circuits per pass.
  std::uint64_t max_total_vertices = 4'000'000;
  /// Global cap on circuits enumerated across all removal rounds of one
  /// BuildSchedule call (bounds total wall time; the paper's prototype
  /// simply ran until it was killed by the OOM killer).
  std::uint64_t max_total_work = 1'000'000;
};

class CGScheduler final : public Scheduler {
 public:
  explicit CGScheduler(const CGOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "cg"; }

  const SchedulerMetrics& metrics() const override { return metrics_; }

 protected:
  Result<Schedule> BuildScheduleImpl(
      std::span<const ReadWriteSet> rwsets) override;

 private:
  CGOptions options_;
  SchedulerMetrics metrics_;
};

}  // namespace nezha
