// SerialScheduler: the baseline adopted by current DAG-based blockchains —
// no concurrency control at all; every transaction executes and commits
// one-by-one in the deterministic block order. Nothing aborts (each
// transaction sees all earlier effects), and nothing runs concurrently.
//
// Note the execution semantics differ from the speculative schemes: the
// node pipeline executes Serial transactions against the *evolving* state
// at commit time rather than simulating against a snapshot. The schedule it
// emits is simply the identity order with singleton commit groups.
#pragma once

#include "cc/scheduler.h"

namespace nezha {

class SerialScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "serial"; }

  const SchedulerMetrics& metrics() const override { return metrics_; }

 protected:
  Result<Schedule> BuildScheduleImpl(
      std::span<const ReadWriteSet> rwsets) override {
    metrics_ = SchedulerMetrics{};
    const std::size_t n = rwsets.size();
    Schedule schedule;
    schedule.sequence.assign(n, kUnassignedSeq);
    schedule.aborted.assign(n, false);
    SeqNum next = 1;
    for (TxIndex t = 0; t < n; ++t) schedule.sequence[t] = next++;
    schedule.RebuildGroups();
    PublishSchedulerObs(name(), metrics_, schedule, rwsets, "conflict");
    return schedule;
  }

  /// Serial transactions execute against the evolving state, so any total
  /// order is a serial execution; the oracle only checks shape invariants.
  bool snapshot_semantics() const override { return false; }

 private:
  SchedulerMetrics metrics_;
};

}  // namespace nezha
