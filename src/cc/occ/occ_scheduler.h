// OCCScheduler: Fabric-style optimistic concurrency control.
//
// Transactions validate in block (subscript) order against the writes of
// the transactions already admitted from the same batch: a transaction
// whose read set intersects those writes observed a stale snapshot and
// aborts; everything else commits, serially. No scheduling graph is built —
// cheap, but the abort rate explodes under contention (the >40% figure the
// paper cites for Fabric).
#pragma once

#include "cc/scheduler.h"

namespace nezha {

class OCCScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "occ"; }

  const SchedulerMetrics& metrics() const override { return metrics_; }

 protected:
  Result<Schedule> BuildScheduleImpl(
      std::span<const ReadWriteSet> rwsets) override;

 private:
  SchedulerMetrics metrics_;
};

}  // namespace nezha
