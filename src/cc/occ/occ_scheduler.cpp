#include "cc/occ/occ_scheduler.h"

#include <unordered_set>

#include "common/stopwatch.h"

namespace nezha {

Result<Schedule> OCCScheduler::BuildScheduleImpl(
    std::span<const ReadWriteSet> rwsets) {
  metrics_ = SchedulerMetrics{};
  Stopwatch watch;

  const std::size_t n = rwsets.size();
  Schedule schedule;
  schedule.sequence.assign(n, kUnassignedSeq);
  schedule.aborted.assign(n, false);

  std::unordered_set<std::uint64_t> written;
  SeqNum next = 1;
  for (TxIndex t = 0; t < n; ++t) {
    if (!rwsets[t].ok) {
      schedule.aborted[t] = true;
      continue;
    }
    bool stale = false;
    for (Address a : rwsets[t].reads) {
      if (written.contains(a.value)) {
        stale = true;
        break;
      }
    }
    if (stale) {
      schedule.aborted[t] = true;
      continue;
    }
    for (Address a : rwsets[t].writes) written.insert(a.value);
    schedule.sequence[t] = next++;
  }
  metrics_.sorting_us = watch.ElapsedMicros();
  schedule.RebuildGroups();
  PublishSchedulerObs(name(), metrics_, schedule, rwsets, "stale-read");
  return schedule;
}

}  // namespace nezha
