// Directed graph with adjacency lists, shared by the conflict-graph baseline
// (vertices = transactions) and Nezha's rank division (vertices = addresses).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

namespace nezha {

class Digraph {
 public:
  using Vertex = std::uint32_t;

  explicit Digraph(std::size_t num_vertices)
      : out_(num_vertices), in_degree_(num_vertices, 0) {}

  std::size_t NumVertices() const { return out_.size(); }
  std::size_t NumEdges() const { return num_edges_; }

  /// Adds u -> v. Duplicate edges are kept unless deduplicate is true
  /// (deduplication costs a hash probe per insertion).
  void AddEdge(Vertex u, Vertex v, bool deduplicate = false) {
    if (deduplicate) {
      const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
      if (!edge_set_.insert(key).second) return;
    }
    out_[u].push_back(v);
    ++in_degree_[v];
    ++num_edges_;
  }

  bool HasEdge(Vertex u, Vertex v) const {
    for (Vertex w : out_[u]) {
      if (w == v) return true;
    }
    return false;
  }

  std::span<const Vertex> OutNeighbors(Vertex u) const { return out_[u]; }
  std::size_t OutDegree(Vertex u) const { return out_[u].size(); }
  std::size_t InDegree(Vertex u) const { return in_degree_[u]; }

  /// The in-degree array (copy), convenient for Kahn-style algorithms.
  std::vector<std::size_t> InDegrees() const { return in_degree_; }

  /// Graph with every edge reversed.
  Digraph Reversed() const {
    Digraph r(NumVertices());
    for (Vertex u = 0; u < NumVertices(); ++u) {
      for (Vertex v : out_[u]) r.AddEdge(v, u);
    }
    return r;
  }

 private:
  std::vector<std::vector<Vertex>> out_;
  std::vector<std::size_t> in_degree_;
  std::unordered_set<std::uint64_t> edge_set_;
  std::size_t num_edges_ = 0;
};

}  // namespace nezha
