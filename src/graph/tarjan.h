// Tarjan's strongly-connected-components algorithm (iterative, so deep
// recursion on large conflict graphs cannot overflow the stack).
//
// Used by the CG baseline exactly as Fabric++ does: SCCs of size > 1 (or
// self-loops) localize the cycles that Johnson's algorithm then enumerates.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace nezha {

/// Returns the strongly connected components of g. Each component is a list
/// of vertices; components are emitted in reverse topological order (Tarjan's
/// natural output order).
std::vector<std::vector<Digraph::Vertex>> TarjanSCC(const Digraph& g);

/// True if g has at least one directed cycle (an SCC of size > 1 or a
/// self-loop).
bool HasCycle(const Digraph& g);

}  // namespace nezha
