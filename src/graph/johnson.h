// Johnson's algorithm for enumerating all elementary circuits of a directed
// graph (SIAM J. Comput. 1975) — the exact machinery Fabric++ uses for cycle
// detection in the conflict-graph baseline, and the reason that baseline
// degrades so sharply under contention: the number of elementary circuits
// can grow exponentially with conflicts.
//
// To keep experiments runnable where the paper's CG prototype ran out of
// memory, enumeration carries a budget; when it trips, the caller learns the
// workload exceeded the limit (we report this as the "OOM/failed" condition
// from the paper's Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace nezha {

struct JohnsonOptions {
  /// Stop after this many circuits (0 = unlimited).
  std::uint64_t max_circuits = 0;
  /// Stop after this many vertices summed across all circuits (a proxy for
  /// the memory the circuit list would occupy). 0 = unlimited.
  std::uint64_t max_total_vertices = 0;
};

struct JohnsonResult {
  std::vector<std::vector<Digraph::Vertex>> circuits;
  /// True if enumeration stopped because a budget tripped; `circuits` then
  /// holds the prefix found so far.
  bool budget_exceeded = false;
};

/// Enumerates elementary circuits of g. Self-loops count as circuits of
/// length 1.
JohnsonResult FindElementaryCircuits(const Digraph& g,
                                     const JohnsonOptions& options = {});

}  // namespace nezha
