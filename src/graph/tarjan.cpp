#include "graph/tarjan.h"

#include <algorithm>
#include <limits>

namespace nezha {
namespace {

constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

}  // namespace

std::vector<std::vector<Digraph::Vertex>> TarjanSCC(const Digraph& g) {
  using Vertex = Digraph::Vertex;
  const std::size_t n = g.NumVertices();

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<Vertex> stack;
  std::vector<std::vector<Vertex>> components;
  std::uint32_t next_index = 0;

  // Explicit DFS frame: vertex + position in its adjacency list.
  struct Frame {
    Vertex v;
    std::size_t edge_pos;
  };
  std::vector<Frame> dfs;

  for (Vertex root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const Vertex v = frame.v;
      const auto neighbors = g.OutNeighbors(v);
      if (frame.edge_pos < neighbors.size()) {
        const Vertex w = neighbors[frame.edge_pos++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          std::vector<Vertex> component;
          for (;;) {
            const Vertex w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          components.push_back(std::move(component));
        }
      }
    }
  }
  return components;
}

bool HasCycle(const Digraph& g) {
  for (Digraph::Vertex v = 0; v < g.NumVertices(); ++v) {
    for (Digraph::Vertex w : g.OutNeighbors(v)) {
      if (w == v) return true;  // self-loop
    }
  }
  const auto sccs = TarjanSCC(g);
  return std::any_of(sccs.begin(), sccs.end(),
                     [](const auto& c) { return c.size() > 1; });
}

}  // namespace nezha
