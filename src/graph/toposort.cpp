#include "graph/toposort.h"

#include <algorithm>
#include <queue>

namespace nezha {

std::optional<std::vector<Digraph::Vertex>> TopologicalSort(const Digraph& g) {
  using Vertex = Digraph::Vertex;
  const std::size_t n = g.NumVertices();
  std::vector<std::size_t> in_degree = g.InDegrees();

  // Min-heap keyed on vertex id for a deterministic order.
  std::priority_queue<Vertex, std::vector<Vertex>, std::greater<>> ready;
  for (Vertex v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push(v);
  }

  std::vector<Vertex> order;
  order.reserve(n);
  while (!ready.empty()) {
    const Vertex v = ready.top();
    ready.pop();
    order.push_back(v);
    for (Vertex w : g.OutNeighbors(v)) {
      if (--in_degree[w] == 0) ready.push(w);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

std::optional<std::vector<std::uint32_t>> TopologicalLevels(const Digraph& g) {
  using Vertex = Digraph::Vertex;
  const std::size_t n = g.NumVertices();
  std::vector<std::size_t> in_degree = g.InDegrees();
  std::vector<std::uint32_t> level(n, 0);

  std::queue<Vertex> ready;
  for (Vertex v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push(v);
  }

  std::size_t processed = 0;
  while (!ready.empty()) {
    const Vertex v = ready.front();
    ready.pop();
    ++processed;
    for (Vertex w : g.OutNeighbors(v)) {
      level[w] = std::max(level[w], level[v] + 1);
      if (--in_degree[w] == 0) ready.push(w);
    }
  }
  if (processed != n) return std::nullopt;  // cycle
  return level;
}

}  // namespace nezha
