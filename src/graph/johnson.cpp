#include "graph/johnson.h"

#include <algorithm>

#include "graph/tarjan.h"

namespace nezha {
namespace {

using Vertex = Digraph::Vertex;

class CircuitFinder {
 public:
  CircuitFinder(const Digraph& g, const JohnsonOptions& options)
      : g_(g),
        options_(options),
        n_(g.NumVertices()),
        blocked_(n_, false),
        b_lists_(n_),
        in_component_(n_, false) {}

  JohnsonResult Run() {
    for (Vertex s = 0; s < n_ && !stopped_; ++s) {
      // Find the SCC (within the subgraph induced by vertices >= s) that
      // contains s. Cycles with minimal vertex s live entirely inside it.
      if (!ComputeComponentOf(s)) {
        // s participates in no cycle rooted at s; but it may still have a
        // self-loop.
        if (g_.HasEdge(s, s)) EmitCircuit({s});
        continue;
      }
      for (Vertex v = 0; v < n_; ++v) {
        if (in_component_[v]) {
          blocked_[v] = false;
          b_lists_[v].clear();
        }
      }
      start_ = s;
      Circuit(s);
    }
    result_.budget_exceeded = stopped_;
    return std::move(result_);
  }

 private:
  /// Builds in_component_ = the SCC containing s in the subgraph induced by
  /// {s, ..., n-1}. Returns true if that SCC can contain a cycle through s
  /// (size > 1; the self-loop case is handled by the caller).
  bool ComputeComponentOf(Vertex s) {
    // Induced-subgraph Tarjan: map vertices >= s to a compact range.
    const std::size_t m = n_ - s;
    Digraph sub(m);
    for (Vertex v = s; v < n_; ++v) {
      for (Vertex w : g_.OutNeighbors(v)) {
        if (w >= s && w != v) sub.AddEdge(v - s, w - s);
      }
    }
    const auto sccs = TarjanSCC(sub);
    std::fill(in_component_.begin(), in_component_.end(), false);
    for (const auto& scc : sccs) {
      const bool contains_s =
          std::find(scc.begin(), scc.end(), 0u) != scc.end();
      if (!contains_s) continue;
      if (scc.size() < 2) return false;
      for (Vertex v : scc) in_component_[v + s] = true;
      return true;
    }
    return false;
  }

  bool Circuit(Vertex v) {
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (Vertex w : g_.OutNeighbors(v)) {
      if (stopped_) break;
      if (w == v) {
        if (v == start_) EmitCircuit({v});
        continue;  // self-loops elsewhere are separate length-1 circuits
      }
      if (!in_component_[w]) continue;
      if (w == start_) {
        EmitCircuit(path_);
        found = true;
      } else if (!blocked_[w]) {
        if (Circuit(w)) found = true;
      }
    }
    if (found) {
      Unblock(v);
    } else {
      for (Vertex w : g_.OutNeighbors(v)) {
        if (w == v || !in_component_[w]) continue;
        auto& blist = b_lists_[w];
        if (std::find(blist.begin(), blist.end(), v) == blist.end()) {
          blist.push_back(v);
        }
      }
    }
    path_.pop_back();
    return found;
  }

  void Unblock(Vertex v) {
    blocked_[v] = false;
    auto pending = std::move(b_lists_[v]);
    b_lists_[v].clear();
    for (Vertex w : pending) {
      if (blocked_[w]) Unblock(w);
    }
  }

  void EmitCircuit(const std::vector<Vertex>& circuit) {
    if (stopped_) return;
    result_.circuits.push_back(circuit);
    total_vertices_ += circuit.size();
    if ((options_.max_circuits != 0 &&
         result_.circuits.size() >= options_.max_circuits) ||
        (options_.max_total_vertices != 0 &&
         total_vertices_ >= options_.max_total_vertices)) {
      stopped_ = true;
    }
  }

  const Digraph& g_;
  const JohnsonOptions options_;
  const std::size_t n_;

  std::vector<bool> blocked_;
  std::vector<std::vector<Vertex>> b_lists_;
  std::vector<bool> in_component_;
  std::vector<Vertex> path_;
  Vertex start_ = 0;

  JohnsonResult result_;
  std::uint64_t total_vertices_ = 0;
  bool stopped_ = false;
};

}  // namespace

JohnsonResult FindElementaryCircuits(const Digraph& g,
                                     const JohnsonOptions& options) {
  if (g.NumVertices() == 0) return {};
  CircuitFinder finder(g, options);
  return finder.Run();
}

}  // namespace nezha
