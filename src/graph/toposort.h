// Kahn's topological sort, plus a "leveled" variant that groups vertices by
// longest-path depth — the leveled form is what lets a schedule commit
// non-conflicting transactions concurrently (all vertices of one level have
// no edges among them).
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace nezha {

/// Topological order of g (smallest-vertex-first among ready vertices, so
/// the result is deterministic). nullopt if g has a cycle.
std::optional<std::vector<Digraph::Vertex>> TopologicalSort(const Digraph& g);

/// Level assignment: level[v] = 1 + max(level[u] : u -> v), 0 for sources.
/// Vertices sharing a level are mutually unordered and can run concurrently.
/// nullopt if g has a cycle.
std::optional<std::vector<std::uint32_t>> TopologicalLevels(const Digraph& g);

}  // namespace nezha
