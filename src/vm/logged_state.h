// LoggedStateView: the EVM-style read/write logger.
//
// Wraps an immutable state snapshot; every Read/Write a contract performs is
// recorded. Reads observe the transaction's own earlier writes
// (read-your-writes), and only reads that actually hit the backing state are
// reported in the read set.
//
// An optional overlay map layers committed-but-unflushed writes over the
// snapshot — the serializability validator uses it to replay schedules
// against an evolving state.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "storage/state_db.h"
#include "vm/rwset.h"

namespace nezha {

class LoggedStateView {
 public:
  using Overlay = std::unordered_map<std::uint64_t, StateValue>;

  explicit LoggedStateView(const StateSnapshot& snapshot,
                           const Overlay* overlay = nullptr)
      : snapshot_(&snapshot), overlay_(overlay) {}

  /// Reads an address; records the read unless satisfied by an own write.
  StateValue Read(Address a) {
    if (const auto it = local_writes_.find(a.value);
        it != local_writes_.end()) {
      return it->second;
    }
    reads_.insert(a.value);
    if (overlay_ != nullptr) {
      if (const auto it = overlay_->find(a.value); it != overlay_->end()) {
        return it->second;
      }
    }
    return snapshot_->Get(a);
  }

  /// Buffers a write (visible to subsequent own reads).
  void Write(Address a, StateValue v) { local_writes_[a.value] = v; }

  /// Marks the execution as failed; the transaction will commit nothing.
  void Revert() { reverted_ = true; }
  bool reverted() const { return reverted_; }

  /// Produces the final read/write set (sorted, deduplicated).
  ReadWriteSet TakeRWSet() {
    ReadWriteSet rw;
    rw.ok = !reverted_;
    rw.reads.reserve(reads_.size());
    for (std::uint64_t a : reads_) rw.reads.push_back(Address(a));
    std::sort(rw.reads.begin(), rw.reads.end());

    std::vector<std::pair<std::uint64_t, StateValue>> writes(
        local_writes_.begin(), local_writes_.end());
    std::sort(writes.begin(), writes.end());
    rw.writes.reserve(writes.size());
    rw.write_values.reserve(writes.size());
    for (const auto& [addr, value] : writes) {
      rw.writes.push_back(Address(addr));
      rw.write_values.push_back(value);
    }
    return rw;
  }

 private:
  const StateSnapshot* snapshot_;
  const Overlay* overlay_;
  std::unordered_set<std::uint64_t> reads_;
  std::unordered_map<std::uint64_t, StateValue> local_writes_;
  bool reverted_ = false;
};

}  // namespace nezha
