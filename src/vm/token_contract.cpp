#include "vm/token_contract.h"

namespace nezha {
namespace {

Status NeedArgs(const TxPayload& payload, std::size_t n) {
  return payload.args.size() == n
             ? Status::Ok()
             : Status::InvalidArgument("wrong token contract arg count");
}

void Emit(Program& p, OpCode op, std::int64_t imm = 0) {
  p.push_back({op, imm});
}

std::int64_t AddrImm(Address a) { return static_cast<std::int64_t>(a.value); }

}  // namespace

TxPayload MakeTokenCall(TokenOp op,
                        std::initializer_list<std::uint64_t> args) {
  TxPayload payload;
  payload.contract = kTokenContract;
  payload.op = static_cast<std::uint32_t>(op);
  payload.args.assign(args.begin(), args.end());
  return payload;
}

Status ExecuteTokenContract(const TxPayload& payload, LoggedStateView& state) {
  if (payload.contract != kTokenContract) {
    return Status::InvalidArgument("not a token contract call");
  }
  const auto& args = payload.args;
  switch (static_cast<TokenOp>(payload.op)) {
    case TokenOp::kMint: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      const Address to = TokenBalanceAddress(args[0]);
      const StateValue balance = state.Read(to);
      state.Write(to, balance + static_cast<StateValue>(args[1]));
      return Status::Ok();
    }
    case TokenOp::kTransfer: {
      if (Status s = NeedArgs(payload, 3); !s.ok()) return s;
      const Address from = TokenBalanceAddress(args[0]);
      const Address to = TokenBalanceAddress(args[1]);
      const auto amount = static_cast<StateValue>(args[2]);
      // Operation order mirrors the compiled bytecode exactly.
      const StateValue from_balance = state.Read(from);
      if (from_balance < amount) {
        state.Revert();
        return Status::Ok();
      }
      state.Write(from, from_balance - amount);
      const StateValue to_balance = state.Read(to);
      state.Write(to, to_balance + amount);
      return Status::Ok();
    }
    case TokenOp::kApprove: {
      if (Status s = NeedArgs(payload, 3); !s.ok()) return s;
      state.Write(TokenAllowanceAddress(args[0], args[1]),
                  static_cast<StateValue>(args[2]));
      return Status::Ok();
    }
    case TokenOp::kTransferFrom: {
      if (Status s = NeedArgs(payload, 4); !s.ok()) return s;
      const std::uint64_t spender = args[0];
      const std::uint64_t owner = args[1];
      const Address to = TokenBalanceAddress(args[2]);
      const auto amount = static_cast<StateValue>(args[3]);
      const Address allowance_addr = TokenAllowanceAddress(owner, spender);
      const Address owner_balance_addr = TokenBalanceAddress(owner);

      const StateValue allowance = state.Read(allowance_addr);
      if (allowance < amount) {
        state.Revert();
        return Status::Ok();
      }
      const StateValue owner_balance = state.Read(owner_balance_addr);
      if (owner_balance < amount) {
        state.Revert();
        return Status::Ok();
      }
      state.Write(allowance_addr, allowance - amount);
      state.Write(owner_balance_addr, owner_balance - amount);
      const StateValue to_balance = state.Read(to);
      state.Write(to, to_balance + amount);
      return Status::Ok();
    }
    case TokenOp::kBalanceOf: {
      if (Status s = NeedArgs(payload, 1); !s.ok()) return s;
      (void)state.Read(TokenBalanceAddress(args[0]));
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown token contract op");
}

Result<Program> CompileTokenContract(const TxPayload& payload) {
  if (payload.contract != kTokenContract) {
    return Status::InvalidArgument("not a token contract call");
  }
  const auto& args = payload.args;
  Program p;
  switch (static_cast<TokenOp>(payload.op)) {
    case TokenOp::kMint: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      const Address to = TokenBalanceAddress(args[0]);
      Emit(p, OpCode::kPush, AddrImm(to));
      Emit(p, OpCode::kDup);
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPush, static_cast<std::int64_t>(args[1]));
      Emit(p, OpCode::kAdd);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
    case TokenOp::kTransfer: {
      if (Status s = NeedArgs(payload, 3); !s.ok()) return s;
      const Address from = TokenBalanceAddress(args[0]);
      const Address to = TokenBalanceAddress(args[1]);
      const auto amount = static_cast<std::int64_t>(args[2]);
      Emit(p, OpCode::kPush, AddrImm(from));  // 0
      Emit(p, OpCode::kSLoad);                // 1  [bf]
      Emit(p, OpCode::kDup);                  // 2  [bf bf]
      Emit(p, OpCode::kPush, amount);         // 3  [bf bf amt]
      Emit(p, OpCode::kLt);                   // 4  [bf (bf<amt)]
      Emit(p, OpCode::kJumpI, 15);            // 5  -> revert
      Emit(p, OpCode::kPush, amount);         // 6  [bf amt]
      Emit(p, OpCode::kSub);                  // 7  [bf-amt]
      Emit(p, OpCode::kPush, AddrImm(from));  // 8
      Emit(p, OpCode::kSwap);                 // 9  [from bf-amt]
      Emit(p, OpCode::kSStore);               // 10
      Emit(p, OpCode::kPush, AddrImm(to));    // 11
      Emit(p, OpCode::kDup);                  // 12
      Emit(p, OpCode::kSLoad);                // 13
      Emit(p, OpCode::kPush, amount);         // 14 -- wait, collides with 15
      // (see fixup below)
      Emit(p, OpCode::kAdd);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      Emit(p, OpCode::kRevert);
      // Fix the revert target to the actual REVERT slot.
      p[5].imm = static_cast<std::int64_t>(p.size() - 1);
      return p;
    }
    case TokenOp::kApprove: {
      if (Status s = NeedArgs(payload, 3); !s.ok()) return s;
      Emit(p, OpCode::kPush,
           AddrImm(TokenAllowanceAddress(args[0], args[1])));
      Emit(p, OpCode::kPush, static_cast<std::int64_t>(args[2]));
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
    case TokenOp::kTransferFrom: {
      if (Status s = NeedArgs(payload, 4); !s.ok()) return s;
      const Address allowance_addr = TokenAllowanceAddress(args[1], args[0]);
      const Address owner_addr = TokenBalanceAddress(args[1]);
      const Address to_addr = TokenBalanceAddress(args[2]);
      const auto amount = static_cast<std::int64_t>(args[3]);
      // allowance check
      Emit(p, OpCode::kPush, AddrImm(allowance_addr));
      Emit(p, OpCode::kSLoad);         // [al]
      Emit(p, OpCode::kDup);           // [al al]
      Emit(p, OpCode::kPush, amount);  // [al al amt]
      Emit(p, OpCode::kLt);            // [al (al<amt)]
      const std::size_t jump1 = p.size();
      Emit(p, OpCode::kJumpI, 0);      // -> revert (patched)
      // owner balance check
      Emit(p, OpCode::kPush, AddrImm(owner_addr));
      Emit(p, OpCode::kSLoad);         // [al ob]
      Emit(p, OpCode::kDup);           // [al ob ob]
      Emit(p, OpCode::kPush, amount);  // [al ob ob amt]
      Emit(p, OpCode::kLt);            // [al ob (ob<amt)]
      const std::size_t jump2 = p.size();
      Emit(p, OpCode::kJumpI, 0);      // -> revert (patched)
      // allowance -= amount  (allowance value is below owner balance)
      Emit(p, OpCode::kSwap);          // [ob al]
      Emit(p, OpCode::kPush, amount);  // [ob al amt]
      Emit(p, OpCode::kSub);           // [ob al-amt]
      Emit(p, OpCode::kPush, AddrImm(allowance_addr));
      Emit(p, OpCode::kSwap);          // [ob addr al-amt]
      Emit(p, OpCode::kSStore);        // [ob]
      // owner -= amount
      Emit(p, OpCode::kPush, amount);  // [ob amt]
      Emit(p, OpCode::kSub);           // [ob-amt]
      Emit(p, OpCode::kPush, AddrImm(owner_addr));
      Emit(p, OpCode::kSwap);
      Emit(p, OpCode::kSStore);
      // to += amount
      Emit(p, OpCode::kPush, AddrImm(to_addr));
      Emit(p, OpCode::kDup);
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPush, amount);
      Emit(p, OpCode::kAdd);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      const std::size_t revert_slot = p.size();
      Emit(p, OpCode::kRevert);
      p[jump1].imm = static_cast<std::int64_t>(revert_slot);
      p[jump2].imm = static_cast<std::int64_t>(revert_slot);
      return p;
    }
    case TokenOp::kBalanceOf: {
      if (Status s = NeedArgs(payload, 1); !s.ok()) return s;
      Emit(p, OpCode::kPush, AddrImm(TokenBalanceAddress(args[0])));
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPop);
      Emit(p, OpCode::kStop);
      return p;
    }
  }
  return Status::InvalidArgument("unknown token contract op");
}

}  // namespace nezha
