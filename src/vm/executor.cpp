#include "vm/executor.h"

#include "vm/contract.h"
#include "vm/logged_state.h"

namespace nezha {

Result<ReadWriteSet> SimulateTransaction(const StateSnapshot& snapshot,
                                         const Transaction& tx,
                                         ExecMode mode) {
  LoggedStateView view(snapshot);
  if (mode == ExecMode::kNative) {
    if (Status s = ExecuteContract(tx.payload, view); !s.ok()) return s;
  } else {
    auto program = CompileContract(tx.payload);
    if (!program.ok()) return program.status();
    const VmOutcome outcome = RunProgram(program.value(), view);
    if (!outcome.status.ok()) return outcome.status;
  }
  return view.TakeRWSet();
}

}  // namespace nezha
