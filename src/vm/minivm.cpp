#include "vm/minivm.h"

#include <sstream>

#include "vm/smallbank.h"

namespace nezha {

std::uint64_t GasCost(OpCode op) {
  switch (op) {
    case OpCode::kSLoad:
      return 20;
    case OpCode::kSStore:
      return 50;
    case OpCode::kJump:
    case OpCode::kJumpI:
      return 8;
    default:
      return 1;
  }
}

VmOutcome RunProgram(const Program& program, LoggedStateView& state,
                     const VmLimits& limits) {
  VmOutcome outcome;
  std::vector<std::int64_t> stack;
  stack.reserve(16);
  std::size_t pc = 0;

  const auto pop = [&](std::int64_t* out) -> bool {
    if (stack.empty()) return false;
    *out = stack.back();
    stack.pop_back();
    return true;
  };

  while (pc < program.size()) {
    const Instruction& ins = program[pc];
    outcome.gas_used += GasCost(ins.op);
    if (outcome.gas_used > limits.gas_limit) {
      outcome.status = Status::Aborted("out of gas");
      return outcome;
    }
    switch (ins.op) {
      case OpCode::kPush: {
        if (stack.size() >= limits.max_stack) {
          outcome.status = Status::Aborted("stack overflow");
          return outcome;
        }
        stack.push_back(ins.imm);
        break;
      }
      case OpCode::kPop: {
        std::int64_t v;
        if (!pop(&v)) {
          outcome.status = Status::Aborted("stack underflow");
          return outcome;
        }
        break;
      }
      case OpCode::kDup: {
        if (stack.empty()) {
          outcome.status = Status::Aborted("stack underflow");
          return outcome;
        }
        stack.push_back(stack.back());
        break;
      }
      case OpCode::kSwap: {
        if (stack.size() < 2) {
          outcome.status = Status::Aborted("stack underflow");
          return outcome;
        }
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kLt:
      case OpCode::kEq: {
        std::int64_t b, a;
        if (!pop(&b) || !pop(&a)) {
          outcome.status = Status::Aborted("stack underflow");
          return outcome;
        }
        std::int64_t r = 0;
        switch (ins.op) {
          case OpCode::kAdd:
            r = a + b;
            break;
          case OpCode::kSub:
            r = a - b;
            break;
          case OpCode::kMul:
            r = a * b;
            break;
          case OpCode::kLt:
            r = a < b ? 1 : 0;
            break;
          case OpCode::kEq:
            r = a == b ? 1 : 0;
            break;
          default:
            break;
        }
        stack.push_back(r);
        break;
      }
      case OpCode::kJump: {
        if (ins.imm < 0 ||
            static_cast<std::size_t>(ins.imm) >= program.size()) {
          outcome.status = Status::Aborted("jump out of range");
          return outcome;
        }
        pc = static_cast<std::size_t>(ins.imm);
        continue;
      }
      case OpCode::kJumpI: {
        std::int64_t cond;
        if (!pop(&cond)) {
          outcome.status = Status::Aborted("stack underflow");
          return outcome;
        }
        if (cond != 0) {
          if (ins.imm < 0 ||
              static_cast<std::size_t>(ins.imm) >= program.size()) {
            outcome.status = Status::Aborted("jump out of range");
            return outcome;
          }
          pc = static_cast<std::size_t>(ins.imm);
          continue;
        }
        break;
      }
      case OpCode::kSLoad: {
        std::int64_t addr;
        if (!pop(&addr)) {
          outcome.status = Status::Aborted("stack underflow");
          return outcome;
        }
        if (addr < 0) {
          outcome.status = Status::Aborted("negative state address");
          return outcome;
        }
        stack.push_back(state.Read(Address(static_cast<std::uint64_t>(addr))));
        break;
      }
      case OpCode::kSStore: {
        std::int64_t value, addr;
        if (!pop(&value) || !pop(&addr)) {
          outcome.status = Status::Aborted("stack underflow");
          return outcome;
        }
        if (addr < 0) {
          outcome.status = Status::Aborted("negative state address");
          return outcome;
        }
        state.Write(Address(static_cast<std::uint64_t>(addr)), value);
        break;
      }
      case OpCode::kRevert: {
        state.Revert();
        outcome.reverted = true;
        return outcome;
      }
      case OpCode::kStop:
        return outcome;
    }
    ++pc;
  }
  // Falling off the end is a normal stop.
  return outcome;
}

namespace {

void Emit(Program& p, OpCode op, std::int64_t imm = 0) {
  p.push_back({op, imm});
}

std::int64_t AddrImm(Address a) { return static_cast<std::int64_t>(a.value); }

}  // namespace

Result<Program> CompileSmallBank(const TxPayload& payload) {
  if (payload.contract != kSmallBankContract) {
    return Status::InvalidArgument("not a SmallBank call");
  }
  const auto& args = payload.args;
  const auto op = static_cast<SmallBankOp>(payload.op);
  Program p;

  switch (op) {
    case SmallBankOp::kUpdateSavings:
    case SmallBankOp::kUpdateBalance: {
      if (args.size() != 2) {
        return Status::InvalidArgument("wrong SmallBank arg count");
      }
      const Address addr = op == SmallBankOp::kUpdateSavings
                               ? SavingsAddress(args[0])
                               : CheckingAddress(args[0]);
      Emit(p, OpCode::kPush, AddrImm(addr));   // [addr]
      Emit(p, OpCode::kDup);                   // [addr addr]
      Emit(p, OpCode::kSLoad);                 // [addr bal]
      Emit(p, OpCode::kPush,
           static_cast<std::int64_t>(args[1]));  // [addr bal delta]
      Emit(p, OpCode::kAdd);                     // [addr bal+delta]
      Emit(p, OpCode::kSStore);                  // []
      Emit(p, OpCode::kStop);
      return p;
    }
    case SmallBankOp::kSendPayment: {
      if (args.size() != 3) {
        return Status::InvalidArgument("wrong SmallBank arg count");
      }
      const Address from = CheckingAddress(args[0]);
      const Address to = CheckingAddress(args[1]);
      const auto amount = static_cast<std::int64_t>(args[2]);
      Emit(p, OpCode::kPush, AddrImm(from));
      Emit(p, OpCode::kDup);
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPush, amount);
      Emit(p, OpCode::kSub);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kPush, AddrImm(to));
      Emit(p, OpCode::kDup);
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPush, amount);
      Emit(p, OpCode::kAdd);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
    case SmallBankOp::kWriteCheck: {
      if (args.size() != 2) {
        return Status::InvalidArgument("wrong SmallBank arg count");
      }
      const Address savings = SavingsAddress(args[0]);
      const Address checking = CheckingAddress(args[0]);
      const auto amount = static_cast<std::int64_t>(args[1]);
      // total = savings + checking; overdraft = total < amount
      Emit(p, OpCode::kPush, AddrImm(savings));  // 0
      Emit(p, OpCode::kSLoad);                   // 1
      Emit(p, OpCode::kPush, AddrImm(checking)); // 2
      Emit(p, OpCode::kSLoad);                   // 3
      Emit(p, OpCode::kAdd);                     // 4  [total]
      Emit(p, OpCode::kPush, amount);            // 5
      Emit(p, OpCode::kLt);                      // 6  [total<amount]
      Emit(p, OpCode::kJumpI, 15);               // 7  -> overdraft branch
      // Normal: checking -= amount
      Emit(p, OpCode::kPush, AddrImm(checking)); // 8
      Emit(p, OpCode::kDup);                     // 9
      Emit(p, OpCode::kSLoad);                   // 10
      Emit(p, OpCode::kPush, amount);            // 11
      Emit(p, OpCode::kSub);                     // 12
      Emit(p, OpCode::kSStore);                  // 13
      Emit(p, OpCode::kStop);                    // 14
      // Overdraft: checking -= amount + 1 (penalty)
      Emit(p, OpCode::kPush, AddrImm(checking)); // 15
      Emit(p, OpCode::kDup);                     // 16
      Emit(p, OpCode::kSLoad);                   // 17
      Emit(p, OpCode::kPush, amount + 1);        // 18
      Emit(p, OpCode::kSub);                     // 19
      Emit(p, OpCode::kSStore);                  // 20
      Emit(p, OpCode::kStop);                    // 21
      return p;
    }
    case SmallBankOp::kAmalgamate: {
      if (args.size() != 2) {
        return Status::InvalidArgument("wrong SmallBank arg count");
      }
      const Address from_savings = SavingsAddress(args[0]);
      const Address from_checking = CheckingAddress(args[0]);
      const Address to_checking = CheckingAddress(args[1]);
      Emit(p, OpCode::kPush, AddrImm(to_checking));   // [to]
      Emit(p, OpCode::kPush, AddrImm(from_savings));  // [to fs]
      Emit(p, OpCode::kSLoad);                        // [to sv]
      Emit(p, OpCode::kPush, AddrImm(from_checking)); // [to sv fc]
      Emit(p, OpCode::kSLoad);                        // [to sv cv]
      Emit(p, OpCode::kAdd);                          // [to sv+cv]
      Emit(p, OpCode::kPush, AddrImm(to_checking));   // [to sum tc]
      Emit(p, OpCode::kSLoad);                        // [to sum tv]
      Emit(p, OpCode::kAdd);                          // [to sum+tv]
      Emit(p, OpCode::kSStore);                       // []
      Emit(p, OpCode::kPush, AddrImm(from_savings));
      Emit(p, OpCode::kPush, 0);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kPush, AddrImm(from_checking));
      Emit(p, OpCode::kPush, 0);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
    case SmallBankOp::kGetBalance: {
      if (args.size() != 1) {
        return Status::InvalidArgument("wrong SmallBank arg count");
      }
      Emit(p, OpCode::kPush, AddrImm(SavingsAddress(args[0])));
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPush, AddrImm(CheckingAddress(args[0])));
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kAdd);
      Emit(p, OpCode::kPop);
      Emit(p, OpCode::kStop);
      return p;
    }
  }
  return Status::InvalidArgument("unknown SmallBank op");
}

std::string Disassemble(const Program& program) {
  static constexpr const char* kNames[] = {
      "PUSH", "POP",  "DUP",   "SWAP",   "ADD",    "SUB",  "MUL", "LT",
      "EQ",   "JUMP", "JUMPI", "SLOAD", "SSTORE", "REVERT", "STOP"};
  std::ostringstream out;
  for (std::size_t i = 0; i < program.size(); ++i) {
    const Instruction& ins = program[i];
    out << i << ": " << kNames[static_cast<std::size_t>(ins.op)];
    if (ins.op == OpCode::kPush || ins.op == OpCode::kJump ||
        ins.op == OpCode::kJumpI) {
      out << ' ' << ins.imm;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace nezha
