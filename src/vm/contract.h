// Contract registry: the dispatch table from TxPayload::contract to an
// executable contract.
//
// Every contract provides two equivalent execution paths — a native C++
// implementation and a MiniVM compiler — exactly like SmallBank. Each
// contract owns a disjoint slice of the state-address space via a 40-bit
// namespace shift, so heterogeneous transactions can share one chain
// without colliding:
//   SmallBank (id 1): raw addresses [0, 2^40)  (2 cells per account)
//   KVStore   (id 2): (1 << 40) | key
//   Token     (id 3): (2 << 40) | ...
#pragma once

#include "common/status.h"
#include "ledger/transaction.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"

namespace nezha {

struct ContractInfo {
  std::uint32_t id;
  const char* name;
  Status (*execute)(const TxPayload&, LoggedStateView&);
  Result<Program> (*compile)(const TxPayload&);
};

/// Looks up a registered contract; nullptr for unknown ids.
const ContractInfo* FindContract(std::uint32_t id);

/// Executes any registered contract natively.
/// Contract-level reverts return OK with view.reverted() set.
Status ExecuteContract(const TxPayload& payload, LoggedStateView& view);

/// Compiles any registered contract's call to MiniVM bytecode.
Result<Program> CompileContract(const TxPayload& payload);

}  // namespace nezha
