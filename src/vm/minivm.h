// MiniVM: a small stack-based virtual machine standing in for the EVM.
//
// The paper's prototype executes Solidity SmallBank through the EVM and logs
// every state read/write. MiniVM reproduces that execution model: programs
// are sequences of simple instructions over a 64-bit operand stack; SLOAD /
// SSTORE go through a LoggedStateView so the interpreter produces exactly
// the read/write sets concurrency control needs. Gas metering bounds
// runaway programs.
//
// CompileSmallBank translates a SmallBank call into MiniVM bytecode; the
// result is behaviourally identical to the native ExecuteSmallBank (tested
// property: equal read sets, write sets, and written values).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ledger/transaction.h"
#include "vm/logged_state.h"

namespace nezha {

enum class OpCode : std::uint8_t {
  kPush,    ///< push imm
  kPop,     ///< discard top
  kDup,     ///< push stack[-1]
  kSwap,    ///< swap top two
  kAdd,     ///< pop b, a; push a + b
  kSub,     ///< pop b, a; push a - b
  kMul,     ///< pop b, a; push a * b
  kLt,      ///< pop b, a; push (a < b) ? 1 : 0
  kEq,      ///< pop b, a; push (a == b) ? 1 : 0
  kJump,    ///< unconditional jump to instruction index imm
  kJumpI,   ///< pop cond; jump to imm if cond != 0
  kSLoad,   ///< pop addr; push state[addr]  (logged read)
  kSStore,  ///< pop value, addr; state[addr] = value  (logged write)
  kRevert,  ///< abort: no writes commit
  kStop,    ///< normal termination
};

struct Instruction {
  OpCode op;
  std::int64_t imm = 0;
};

using Program = std::vector<Instruction>;

struct VmLimits {
  std::uint64_t gas_limit = 100'000;
  std::size_t max_stack = 1024;
};

struct VmOutcome {
  Status status;          ///< OK unless the VM itself faulted
  bool reverted = false;  ///< explicit kRevert executed
  std::uint64_t gas_used = 0;
};

/// Gas cost of one instruction (EVM-flavoured: storage ops dominate).
std::uint64_t GasCost(OpCode op);

/// Runs `program` to completion against the logged state view.
VmOutcome RunProgram(const Program& program, LoggedStateView& state,
                     const VmLimits& limits = {});

/// Compiles a SmallBank call into MiniVM bytecode.
/// Returns InvalidArgument for malformed payloads.
Result<Program> CompileSmallBank(const TxPayload& payload);

/// Disassembles for debugging/tests: one instruction per line.
std::string Disassemble(const Program& program);

}  // namespace nezha
