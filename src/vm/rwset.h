// ReadWriteSet: the product of speculative execution and the input to
// concurrency control.
//
// The concurrent execution phase simulates every transaction of an epoch
// against the previous epoch's state snapshot and records, per transaction:
// the addresses it read (RS), the addresses it wrote (WS), and the values it
// would write. A transaction may appear in both sets for the same address
// (read-modify-write); both the CG baseline and Nezha's ACG handle that case
// explicitly.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/types.h"
#include "storage/state_db.h"

namespace nezha {

struct ReadWriteSet {
  /// Addresses read from the snapshot (sorted, unique). A read that is
  /// satisfied by the transaction's own earlier write is not recorded —
  /// it depends on no other transaction.
  std::vector<Address> reads;
  /// Addresses written (sorted, unique), aligned with write_values.
  std::vector<Address> writes;
  /// Final value per written address (last write wins within the tx).
  std::vector<StateValue> write_values;
  /// False if the contract aborted at the application level (e.g. an
  /// explicit REVERT); such a transaction commits no writes.
  bool ok = true;

  bool ReadsAddress(Address a) const {
    return std::binary_search(reads.begin(), reads.end(), a);
  }
  bool WritesAddress(Address a) const {
    return std::binary_search(writes.begin(), writes.end(), a);
  }

  /// Materializes the writes as StateWrite records for the commit phase.
  std::vector<StateWrite> ToStateWrites() const {
    std::vector<StateWrite> out;
    out.reserve(writes.size());
    for (std::size_t i = 0; i < writes.size(); ++i) {
      out.push_back({writes[i], write_values[i]});
    }
    return out;
  }
};

/// True if u happens-before-conflicts v per Definition 1: an address read or
/// written by u is also written by v (rw or ww dependency u -> v).
inline bool HasDependency(const ReadWriteSet& u, const ReadWriteSet& v) {
  const auto intersects = [](std::span<const Address> a,
                             std::span<const Address> b) {
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) return true;
      if (a[i] < b[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  };
  return intersects(u.reads, v.writes) || intersects(u.writes, v.writes);
}

/// True if the two transactions conflict at all (some address is written by
/// one and accessed by the other). Pure reads never conflict.
inline bool Conflicts(const ReadWriteSet& a, const ReadWriteSet& b) {
  return HasDependency(a, b) || HasDependency(b, a);
}

}  // namespace nezha
