// Transaction simulation: the "concurrent execution phase" entry point.
//
// Executes one transaction speculatively against an immutable snapshot and
// returns its read/write set. Two execution paths exist:
//  * kNative — the contract's C++ implementation (fast path);
//  * kBytecode — compile to MiniVM and interpret (the EVM-like path).
// They are behaviourally identical (tested); benches default to native and
// use the cost model to account for EVM-grade interpretation overhead.
#pragma once

#include "common/status.h"
#include "ledger/transaction.h"
#include "storage/state_db.h"
#include "vm/rwset.h"

namespace nezha {

enum class ExecMode { kNative, kBytecode };

/// Simulates `tx` against `snapshot`; returns its read/write set.
/// Errors on malformed payloads or unknown contracts; a contract-level
/// revert yields ok() status with rwset.ok == false.
Result<ReadWriteSet> SimulateTransaction(const StateSnapshot& snapshot,
                                         const Transaction& tx,
                                         ExecMode mode = ExecMode::kNative);

}  // namespace nezha
