#include "vm/smallbank.h"

namespace nezha {

TxPayload MakeSmallBankCall(SmallBankOp op,
                            std::initializer_list<std::uint64_t> args) {
  TxPayload payload;
  payload.contract = kSmallBankContract;
  payload.op = static_cast<std::uint32_t>(op);
  payload.args.assign(args.begin(), args.end());
  return payload;
}

const char* SmallBankOpName(SmallBankOp op) {
  switch (op) {
    case SmallBankOp::kUpdateSavings:
      return "updateSavings";
    case SmallBankOp::kUpdateBalance:
      return "updateBalance";
    case SmallBankOp::kSendPayment:
      return "sendPayment";
    case SmallBankOp::kWriteCheck:
      return "writeCheck";
    case SmallBankOp::kAmalgamate:
      return "amalgamate";
    case SmallBankOp::kGetBalance:
      return "getBalance";
  }
  return "unknown";
}

Status ExecuteSmallBank(const TxPayload& payload, LoggedStateView& state) {
  if (payload.contract != kSmallBankContract) {
    return Status::InvalidArgument("not a SmallBank call");
  }
  const auto op = static_cast<SmallBankOp>(payload.op);
  const auto& args = payload.args;
  const auto need_args = [&](std::size_t n) {
    return args.size() == n
               ? Status::Ok()
               : Status::InvalidArgument("wrong SmallBank arg count");
  };

  switch (op) {
    case SmallBankOp::kUpdateSavings: {
      if (Status s = need_args(2); !s.ok()) return s;
      const Address addr = SavingsAddress(args[0]);
      const StateValue balance = state.Read(addr);
      state.Write(addr, balance + static_cast<StateValue>(args[1]));
      return Status::Ok();
    }
    case SmallBankOp::kUpdateBalance: {
      if (Status s = need_args(2); !s.ok()) return s;
      const Address addr = CheckingAddress(args[0]);
      const StateValue balance = state.Read(addr);
      state.Write(addr, balance + static_cast<StateValue>(args[1]));
      return Status::Ok();
    }
    case SmallBankOp::kSendPayment: {
      if (Status s = need_args(3); !s.ok()) return s;
      const Address from = CheckingAddress(args[0]);
      const Address to = CheckingAddress(args[1]);
      const auto amount = static_cast<StateValue>(args[2]);
      // Read/write interleaving mirrors the compiled bytecode exactly so the
      // two execution paths agree even on degenerate self-payments.
      const StateValue from_balance = state.Read(from);
      state.Write(from, from_balance - amount);
      const StateValue to_balance = state.Read(to);
      state.Write(to, to_balance + amount);
      return Status::Ok();
    }
    case SmallBankOp::kWriteCheck: {
      if (Status s = need_args(2); !s.ok()) return s;
      const Address savings = SavingsAddress(args[0]);
      const Address checking = CheckingAddress(args[0]);
      const auto amount = static_cast<StateValue>(args[1]);
      const StateValue total = state.Read(savings) + state.Read(checking);
      // SmallBank: if the check overdraws, charge a 1-unit penalty.
      const StateValue checking_balance = state.Read(checking);
      if (total < amount) {
        state.Write(checking, checking_balance - amount - 1);
      } else {
        state.Write(checking, checking_balance - amount);
      }
      return Status::Ok();
    }
    case SmallBankOp::kAmalgamate: {
      if (Status s = need_args(2); !s.ok()) return s;
      const Address from_savings = SavingsAddress(args[0]);
      const Address from_checking = CheckingAddress(args[0]);
      const Address to_checking = CheckingAddress(args[1]);
      // Same operation order as the compiled bytecode (reads, then the
      // destination write, then the zeroing writes).
      const StateValue savings_balance = state.Read(from_savings);
      const StateValue checking_balance = state.Read(from_checking);
      const StateValue to_balance = state.Read(to_checking);
      state.Write(to_checking, to_balance + savings_balance + checking_balance);
      state.Write(from_savings, 0);
      state.Write(from_checking, 0);
      return Status::Ok();
    }
    case SmallBankOp::kGetBalance: {
      if (Status s = need_args(1); !s.ok()) return s;
      // Read both balances; the "return value" is observational only.
      (void)state.Read(SavingsAddress(args[0]));
      (void)state.Read(CheckingAddress(args[0]));
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown SmallBank op");
}

}  // namespace nezha
