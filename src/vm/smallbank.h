// SmallBank: the benchmark contract from the paper's evaluation (§VI.A).
//
// Six operations over per-account savings and checking balances; the first
// five write, getBalance only reads. Each account occupies two state
// addresses (savings and checking), so 10k accounts span 20k addresses.
//
// Two interchangeable executions are provided:
//  * ExecuteSmallBank — a native C++ implementation (fast path);
//  * the MiniVM bytecode produced by CompileSmallBank (src/vm/minivm.h),
//    which interprets the same logic instruction-by-instruction.
// Both must produce identical read/write sets and values (tested).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "ledger/transaction.h"
#include "vm/logged_state.h"

namespace nezha {

/// Contract id carried in TxPayload::contract.
inline constexpr std::uint32_t kSmallBankContract = 1;

/// Operation selectors (TxPayload::op).
enum class SmallBankOp : std::uint32_t {
  kUpdateSavings = 0,  ///< args: account, delta        (writes savings)
  kUpdateBalance = 1,  ///< args: account, delta        (writes checking)
  kSendPayment = 2,    ///< args: from, to, amount      (writes 2 checkings)
  kWriteCheck = 3,     ///< args: account, amount       (reads both, writes checking)
  kAmalgamate = 4,     ///< args: from, to              (moves all funds)
  kGetBalance = 5,     ///< args: account               (read-only)
};
inline constexpr std::uint32_t kNumSmallBankOps = 6;

/// State-address mapping: account a -> savings cell 2a, checking cell 2a+1.
inline Address SavingsAddress(std::uint64_t account) {
  return Address(account * 2);
}
inline Address CheckingAddress(std::uint64_t account) {
  return Address(account * 2 + 1);
}
/// The account owning a state address.
inline std::uint64_t AccountOfAddress(Address a) { return a.value / 2; }
inline bool IsSavingsAddress(Address a) { return a.value % 2 == 0; }

/// Builds a transaction payload for one SmallBank call.
TxPayload MakeSmallBankCall(SmallBankOp op,
                            std::initializer_list<std::uint64_t> args);

/// Executes one SmallBank call natively against the logged view.
/// Returns InvalidArgument for malformed payloads; contract-level failures
/// (e.g. insufficient funds on writeCheck per the lax SmallBank semantics)
/// do not fail — SmallBank permits overdrafts, matching common usage.
Status ExecuteSmallBank(const TxPayload& payload, LoggedStateView& state);

/// Human-readable op name ("sendPayment" etc.).
const char* SmallBankOpName(SmallBankOp op);

}  // namespace nezha
