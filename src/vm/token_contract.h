// TokenContract: an ERC20-style fungible token (contract id 3).
//
// Exercises the contract-level REVERT path through the whole pipeline: a
// transfer exceeding the sender's balance (or an allowance-violating
// transferFrom) reverts, producing rwset.ok == false — such transactions
// abort at execution and never reach concurrency control.
//
// State layout in the (2 << 40) namespace:
//   balance(holder)            = (2 << 40) | holder
//   allowance(owner, spender)  = (2 << 40) | (1 << 39) | (owner << 19) | spender
// Holder/owner/spender ids must stay below 2^19 (plenty for benchmarks).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "ledger/transaction.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"

namespace nezha {

inline constexpr std::uint32_t kTokenContract = 3;

enum class TokenOp : std::uint32_t {
  kMint = 0,          ///< args: to, amount
  kTransfer = 1,      ///< args: from, to, amount        (reverts if short)
  kApprove = 2,       ///< args: owner, spender, amount
  kTransferFrom = 3,  ///< args: spender, owner, to, amount
  kBalanceOf = 4,     ///< args: holder                  (read only)
};

inline Address TokenBalanceAddress(std::uint64_t holder) {
  return Address((2ull << 40) | holder);
}
inline Address TokenAllowanceAddress(std::uint64_t owner,
                                     std::uint64_t spender) {
  return Address((2ull << 40) | (1ull << 39) | (owner << 19) | spender);
}

TxPayload MakeTokenCall(TokenOp op, std::initializer_list<std::uint64_t> args);

Status ExecuteTokenContract(const TxPayload& payload, LoggedStateView& state);
Result<Program> CompileTokenContract(const TxPayload& payload);

}  // namespace nezha
