// KVContract: a raw key-value smart contract (contract id 2).
//
// Unlike SmallBank — where every write is a read-modify-write — this
// contract issues genuine BLIND writes (kSet, kMultiSet), the access shape
// that makes the §IV.D reordering enhancement fire inside the full pipeline
// (Fig. 8's write-write conflicts). kAdd provides the RMW shape, kGet the
// read-only one.
//
// Keys occupy the (1 << 40) address namespace.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "ledger/transaction.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"

namespace nezha {

inline constexpr std::uint32_t kKVContract = 2;

enum class KVOp : std::uint32_t {
  kSet = 0,       ///< args: key, value               (blind write)
  kGet = 1,       ///< args: key                      (read only)
  kAdd = 2,       ///< args: key, delta               (read-modify-write)
  kMultiSet = 3,  ///< args: k1, v1, k2, v2           (two blind writes)
  kCopy = 4,      ///< args: src, dst                 (read src, blind-write dst)
};

/// Key -> state address (namespaced).
inline Address KVAddress(std::uint64_t key) {
  return Address((1ull << 40) | (key & ((1ull << 40) - 1)));
}

TxPayload MakeKVCall(KVOp op, std::initializer_list<std::uint64_t> args);

Status ExecuteKVContract(const TxPayload& payload, LoggedStateView& state);
Result<Program> CompileKVContract(const TxPayload& payload);

}  // namespace nezha
