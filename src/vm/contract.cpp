#include "vm/contract.h"

#include "vm/kv_contract.h"
#include "vm/smallbank.h"
#include "vm/token_contract.h"

namespace nezha {
namespace {

constexpr ContractInfo kContracts[] = {
    {kSmallBankContract, "smallbank", &ExecuteSmallBank, &CompileSmallBank},
    {kKVContract, "kvstore", &ExecuteKVContract, &CompileKVContract},
    {kTokenContract, "token", &ExecuteTokenContract, &CompileTokenContract},
};

}  // namespace

const ContractInfo* FindContract(std::uint32_t id) {
  for (const ContractInfo& contract : kContracts) {
    if (contract.id == id) return &contract;
  }
  return nullptr;
}

Status ExecuteContract(const TxPayload& payload, LoggedStateView& view) {
  const ContractInfo* contract = FindContract(payload.contract);
  if (contract == nullptr) {
    return Status::InvalidArgument("unknown contract id");
  }
  return contract->execute(payload, view);
}

Result<Program> CompileContract(const TxPayload& payload) {
  const ContractInfo* contract = FindContract(payload.contract);
  if (contract == nullptr) {
    return Status::InvalidArgument("unknown contract id");
  }
  return contract->compile(payload);
}

}  // namespace nezha
