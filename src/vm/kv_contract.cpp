#include "vm/kv_contract.h"

namespace nezha {
namespace {

Status NeedArgs(const TxPayload& payload, std::size_t n) {
  return payload.args.size() == n
             ? Status::Ok()
             : Status::InvalidArgument("wrong KV contract arg count");
}

void Emit(Program& p, OpCode op, std::int64_t imm = 0) {
  p.push_back({op, imm});
}

std::int64_t AddrImm(Address a) { return static_cast<std::int64_t>(a.value); }

}  // namespace

TxPayload MakeKVCall(KVOp op, std::initializer_list<std::uint64_t> args) {
  TxPayload payload;
  payload.contract = kKVContract;
  payload.op = static_cast<std::uint32_t>(op);
  payload.args.assign(args.begin(), args.end());
  return payload;
}

Status ExecuteKVContract(const TxPayload& payload, LoggedStateView& state) {
  if (payload.contract != kKVContract) {
    return Status::InvalidArgument("not a KV contract call");
  }
  const auto& args = payload.args;
  switch (static_cast<KVOp>(payload.op)) {
    case KVOp::kSet: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      state.Write(KVAddress(args[0]), static_cast<StateValue>(args[1]));
      return Status::Ok();
    }
    case KVOp::kGet: {
      if (Status s = NeedArgs(payload, 1); !s.ok()) return s;
      (void)state.Read(KVAddress(args[0]));
      return Status::Ok();
    }
    case KVOp::kAdd: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      const Address addr = KVAddress(args[0]);
      const StateValue current = state.Read(addr);
      state.Write(addr, current + static_cast<StateValue>(args[1]));
      return Status::Ok();
    }
    case KVOp::kMultiSet: {
      if (Status s = NeedArgs(payload, 4); !s.ok()) return s;
      state.Write(KVAddress(args[0]), static_cast<StateValue>(args[1]));
      state.Write(KVAddress(args[2]), static_cast<StateValue>(args[3]));
      return Status::Ok();
    }
    case KVOp::kCopy: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      const StateValue value = state.Read(KVAddress(args[0]));
      state.Write(KVAddress(args[1]), value);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown KV contract op");
}

Result<Program> CompileKVContract(const TxPayload& payload) {
  if (payload.contract != kKVContract) {
    return Status::InvalidArgument("not a KV contract call");
  }
  const auto& args = payload.args;
  Program p;
  switch (static_cast<KVOp>(payload.op)) {
    case KVOp::kSet: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      Emit(p, OpCode::kPush, AddrImm(KVAddress(args[0])));
      Emit(p, OpCode::kPush, static_cast<std::int64_t>(args[1]));
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
    case KVOp::kGet: {
      if (Status s = NeedArgs(payload, 1); !s.ok()) return s;
      Emit(p, OpCode::kPush, AddrImm(KVAddress(args[0])));
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPop);
      Emit(p, OpCode::kStop);
      return p;
    }
    case KVOp::kAdd: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      const Address addr = KVAddress(args[0]);
      Emit(p, OpCode::kPush, AddrImm(addr));
      Emit(p, OpCode::kDup);
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kPush, static_cast<std::int64_t>(args[1]));
      Emit(p, OpCode::kAdd);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
    case KVOp::kMultiSet: {
      if (Status s = NeedArgs(payload, 4); !s.ok()) return s;
      Emit(p, OpCode::kPush, AddrImm(KVAddress(args[0])));
      Emit(p, OpCode::kPush, static_cast<std::int64_t>(args[1]));
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kPush, AddrImm(KVAddress(args[2])));
      Emit(p, OpCode::kPush, static_cast<std::int64_t>(args[3]));
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
    case KVOp::kCopy: {
      if (Status s = NeedArgs(payload, 2); !s.ok()) return s;
      Emit(p, OpCode::kPush, AddrImm(KVAddress(args[1])));  // dst
      Emit(p, OpCode::kPush, AddrImm(KVAddress(args[0])));  // src
      Emit(p, OpCode::kSLoad);
      Emit(p, OpCode::kSStore);
      Emit(p, OpCode::kStop);
      return p;
    }
  }
  return Status::InvalidArgument("unknown KV contract op");
}

}  // namespace nezha
