// CostModel: calibrated EVM-grade execution costs.
//
// The paper's prototype executes Solidity SmallBank through the Go EVM on
// 16-vCPU nodes; our MiniVM interprets the same logic in microseconds. To
// reproduce the paper's *latency shape* without the authors' testbed, the
// execution-phase latencies of the Serial baseline and the concurrent
// simulation phase are modelled from per-transaction costs calibrated
// against the paper's own Table IV (see DESIGN.md §4):
//
//   Table IV, skew = 0, block size 200, 16 worker threads:
//     Nezha execute ("e"): 123.4 ms at 400 txs with 16 workers
//       -> 123.4 * 16 / 400 = ~4.936 ms/tx of pure EVM execution, constant
//          across every Table IV column (the "e" row is linear in N).
//     Serial latency: 4,700 ms at 400 txs (11.75 ms/tx) but 36,600 ms at
//       2,400 txs (15.25 ms/tx) — the per-transaction cost grows with the
//       batch because serial commitment walks an ever-deeper MPT and a
//       growing LevelDB. A logarithmic per-tx term fits all six columns:
//         per_tx(N) = a + b * ln(N),  a = 0.047, b = 1.9533
//       (solved exactly from the N=400 and N=2400 endpoints; the interior
//       columns land within 4%).
//
// Concurrency-control and commitment latencies are NEVER modelled — those
// are measured on the real implementation; the model covers only the EVM
// execution time the paper itself treats as an orthogonal constant.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

namespace nezha {

struct CostModel {
  /// Per-transaction EVM execution cost (simulation phase), milliseconds.
  double execute_ms_per_tx = 4.936;
  /// Serial per-transaction total cost: serial_a + serial_b * ln(N) ms.
  double serial_a = 0.047;
  double serial_b = 1.9533;
  /// Worker threads of the modelled full node (16 vCPUs in the paper).
  std::size_t workers = 16;

  /// Latency of serially executing + committing n transactions.
  double SerialLatencyMs(std::size_t n) const {
    if (n == 0) return 0;
    const double per_tx =
        serial_a + serial_b * std::log(static_cast<double>(n));
    return static_cast<double>(n) * per_tx;
  }

  /// Latency of the concurrent speculative-execution phase over n
  /// transactions (perfectly divisible work across `workers`).
  double ConcurrentExecuteLatencyMs(std::size_t n) const {
    const double per_worker =
        static_cast<double>(n) / static_cast<double>(std::max<std::size_t>(
                                     1, workers));
    return per_worker * execute_ms_per_tx;
  }

  /// Latency of group-parallel re-execution of a schedule's commit groups
  /// with `threads` workers (docs/PARALLELISM.md). Consecutive groups are
  /// barriers; transactions inside a group are conflict-free and perfectly
  /// parallel, so a group of g transactions costs ceil(g / threads) serial
  /// transaction slots. This is the modelled-threads methodology the bench
  /// suite uses on single-core CI runners, where wall-clock speedup is
  /// unmeasurable but the schedule's group structure is exact.
  double GroupExecuteLatencyMs(std::span<const std::size_t> group_sizes,
                               std::size_t threads) const {
    const std::size_t t = std::max<std::size_t>(1, threads);
    double slots = 0;
    for (const std::size_t g : group_sizes) {
      slots += static_cast<double>((g + t - 1) / t);
    }
    return slots * execute_ms_per_tx;
  }
};

}  // namespace nezha
