#include "node/full_node.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/det_checkpoint.h"
#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/acg.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/nezha/parallel_executor.h"
#include "cc/occ/occ_scheduler.h"
#include "cc/serial/serial_scheduler.h"
#include "common/canonical_text.h"
#include "common/stopwatch.h"
#include "fault/fault.h"
#include "node/commit_journal.h"
#include "obs/abort_attribution.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tx_lifecycle.h"
#include "runtime/concurrent_executor.h"
#include "vm/contract.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"

namespace nezha {

std::unique_ptr<Scheduler> MakeScheduler(SchemeKind kind, ThreadPool* pool) {
  switch (kind) {
    case SchemeKind::kSerial:
      return std::make_unique<SerialScheduler>();
    case SchemeKind::kOcc:
      return std::make_unique<OCCScheduler>();
    case SchemeKind::kCg:
      return std::make_unique<CGScheduler>();
    case SchemeKind::kNezha: {
      NezhaOptions options;
      options.pool = pool;
      return std::make_unique<NezhaScheduler>(options);
    }
    case SchemeKind::kNezhaNoReorder: {
      NezhaOptions options;
      options.enable_reordering = false;
      options.pool = pool;
      return std::make_unique<NezhaScheduler>(options);
    }
  }
  return nullptr;
}

const char* SchemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSerial:
      return "serial";
    case SchemeKind::kOcc:
      return "occ";
    case SchemeKind::kCg:
      return "cg";
    case SchemeKind::kNezha:
      return "nezha";
    case SchemeKind::kNezhaNoReorder:
      return "nezha-noreorder";
  }
  return "?";
}

Result<SchemeKind> ParseScheme(std::string_view name) {
  if (name == "serial") return SchemeKind::kSerial;
  if (name == "occ") return SchemeKind::kOcc;
  if (name == "cg") return SchemeKind::kCg;
  if (name == "nezha") return SchemeKind::kNezha;
  if (name == "nezha-noreorder") return SchemeKind::kNezhaNoReorder;
  return Status::InvalidArgument("unknown scheme: " + std::string(name));
}

FullNode::FullNode(const NodeConfig& config, KVStore* kv)
    : config_(config),
      kv_(kv),
      ledger_(config.max_chains, kv),
      state_(kv),
      pool_(std::make_unique<ThreadPool>(config.worker_threads)),
      scheduler_(MakeScheduler(config.scheme, pool_.get())),
      receipts_(kv) {}

namespace {

/// Opens lifecycle tracking for one epoch batch: keys every transaction,
/// claims its mempool ingress stamps, and stamps kConfirmed (the batch
/// reaching the pipeline IS the epoch's DAG confirmation — SealEpoch
/// happened just before ProcessEpoch). Returns the epoch's slot id (0 when
/// the tracer is disabled) so a pipelined commit thread can bind to it.
std::uint64_t BeginLifecycleEpoch(const NodeConfig& config,
                                  const EpochBatch& batch) {
  obs::TxLifecycleTracer& lifecycle = obs::Lifecycle();
  if (!lifecycle.enabled()) return 0;
  std::vector<std::uint64_t> keys;
  keys.reserve(batch.txs.size());
  for (const Transaction& tx : batch.txs) keys.push_back(LifecycleKey(tx));
  const std::uint64_t slot =
      lifecycle.BeginEpoch(batch.epoch, SchemeName(config.scheme), keys);
  lifecycle.StampAll(obs::TxStage::kConfirmed);
  return slot;
}

/// Mirrors one finished EpochReport into the global metrics registry so
/// dashboards see what the report structs see (docs/OBSERVABILITY.md).
void PublishEpochObs(const NodeConfig& config, const EpochReport& report) {
  if (!obs::MetricsEnabled()) return;
  auto& registry = obs::Registry();
  const std::string scheme = SchemeName(config.scheme);
  const obs::Labels by_scheme = {{"scheme", scheme}};

  const auto observe_phase = [&](const char* phase, double ms) {
    registry
        .GetHistogram("nezha_node_phase_ms",
                      {{"scheme", scheme}, {"phase", phase}},
                      obs::DefaultLatencyBoundsMs())
        ->Observe(ms);
  };
  observe_phase("validate", report.validate_ms);
  observe_phase("execute", report.execute_ms);
  observe_phase("cc", report.cc_ms);
  observe_phase("commit", report.commit_ms);
  registry
      .GetHistogram("nezha_node_epoch_total_ms", by_scheme,
                    obs::DefaultLatencyBoundsMs())
      ->Observe(report.TotalMs());

  registry.GetCounter("nezha_node_epochs_total", by_scheme)->Inc();
  registry.GetCounter("nezha_node_txs_total", by_scheme)->Inc(report.txs);
  registry.GetCounter("nezha_node_committed_total", by_scheme)
      ->Inc(report.committed);
  registry.GetCounter("nezha_node_aborted_total", by_scheme)
      ->Inc(report.aborted);
  registry.GetGauge("nezha_node_last_epoch", by_scheme)
      ->Set(static_cast<std::int64_t>(report.epoch));
  registry.GetGauge("nezha_node_block_concurrency", by_scheme)
      ->Set(static_cast<std::int64_t>(report.block_concurrency));
  registry.GetGauge("nezha_node_max_commit_group", by_scheme)
      ->Set(static_cast<std::int64_t>(report.max_commit_group));
}

/// Leaves one flight-recorder record behind for a finished epoch
/// (docs/OBSERVABILITY.md flight-recorder schema).
void RecordEpochFlight(const NodeConfig& config, const EpochReport& report,
                       std::size_t blocks,
                       obs::ScheduleAttribution attribution,
                       const ParallelExecStats* exec_stats = nullptr,
                       std::uint32_t acg_shards = 0,
                       std::uint32_t sort_clusters = 0) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  if (!recorder.enabled()) return;
  obs::EpochFlightRecord record;
  if (exec_stats != nullptr) {
    record.parallel_exec_groups =
        static_cast<std::uint32_t>(exec_stats->groups);
    record.parallel_max_group =
        static_cast<std::uint32_t>(exec_stats->max_group);
    // Captured from the last-build gauges right after this epoch's
    // BuildSchedule, on the prepare thread: under pipelining the live
    // gauges may already describe the NEXT epoch's build by now.
    record.parallel_acg_shards = acg_shards;
    record.parallel_sort_clusters = sort_clusters;
  }
  record.epoch = report.epoch;
  record.scheme = SchemeName(config.scheme);
  record.blocks = static_cast<std::uint32_t>(blocks);
  record.txs = static_cast<std::uint32_t>(report.txs);
  record.committed = static_cast<std::uint32_t>(report.committed);
  record.aborted = static_cast<std::uint32_t>(report.aborted);
  record.validate_ms = report.validate_ms;
  record.execute_ms = report.execute_ms;
  record.cc_ms = report.cc_ms;
  record.commit_ms = report.commit_ms;
  record.acg_vertices = report.cc_metrics.graph_vertices;
  record.acg_edges = report.cc_metrics.graph_edges;
  record.attribution = std::move(attribution);
  record.latency = report.latency;
  record.profile = report.profile;
  recorder.Record(std::move(record));
}

/// Records the kCommit determinism checkpoint: epoch id, the two roots the
/// epoch commits to, and a digest of the serialized commit batch (the exact
/// bytes handed to the KVStore). The batch digest is what catches byte-level
/// nondeterminism in the durable write path — e.g. dirty-set iteration order
/// leaking into record order. `commit_batch` is null when no KV store is
/// attached (in-memory commit: only the roots are checkable).
void RecordCommitCheckpoint(EpochId epoch, const EpochReport& report,
                            const WriteBatch* commit_batch) {
  analysis::DetCheckpointRecorder& det =
      analysis::DetCheckpointRecorder::Global();
  if (!det.enabled()) return;
  std::string canonical;
  canonical.reserve(256);
  canonical += "commit epoch=";
  AppendU64(canonical, static_cast<std::uint64_t>(epoch));
  canonical += '\n';
  canonical += "state_root=" + report.state_root.ToHex() + "\n";
  canonical += "receipt_root=" + report.receipt_root.ToHex() + "\n";
  if (commit_batch != nullptr) {
    canonical += "batch records=";
    AppendU64(canonical, commit_batch->Count());
    canonical += " bytes=";
    AppendU64(canonical, commit_batch->ByteSize());
    canonical += '\n';
    canonical +=
        "batch_digest=" + Sha256::Digest(commit_batch->Serialize()).ToHex() +
        "\n";
  } else {
    canonical += "batch=none\n";
  }
  det.Record(analysis::DetStage::kCommit, canonical);
}

}  // namespace

Result<EpochReport> FullNode::ProcessEpoch(const EpochBatch& batch) {
  if (config_.scheme == SchemeKind::kSerial) return ProcessSerial(batch);
  obs::TraceSpan epoch_span("epoch " + std::to_string(batch.epoch));
  Result<PreparedEpoch> prepared = PrepareEpoch(batch);
  if (!prepared.ok()) return prepared.status();
  return CommitPrepared(std::move(prepared.value()));
}

namespace {

/// Per-block slices of the deduplicated batch: replays the first-appearance
/// dedup of EpochBatch::FromBlocks to find, for each block, the (offset,
/// count) range of batch.txs it contributed. Empty (signalling "stream
/// per block is impossible, fall back to whole-batch") when the blocks do
/// not reconstruct the flattened batch — e.g. a hand-built batch whose txs
/// were not derived from its blocks.
std::vector<std::pair<std::size_t, std::size_t>> BlockSlices(
    const EpochBatch& batch) {
  std::vector<std::pair<std::size_t, std::size_t>> slices;
  slices.reserve(batch.blocks.size());
  std::unordered_set<Hash256> seen;
  std::size_t offset = 0;
  for (const Block& block : batch.blocks) {
    std::size_t fresh = 0;
    for (const Transaction& tx : block.transactions) {
      if (seen.insert(tx.Id()).second) ++fresh;
    }
    slices.emplace_back(offset, fresh);
    offset += fresh;
  }
  if (offset != batch.txs.size()) return {};
  return slices;
}

}  // namespace

Result<PreparedEpoch> FullNode::PrepareEpoch(const EpochBatch& batch,
                                             bool incremental_acg) {
  if (config_.scheme == SchemeKind::kSerial) {
    return Status::InvalidArgument(
        "serial scheme has no prepare/commit split");
  }
  obs::FlightRecorder::Global().SetCurrentEpoch(batch.epoch);
  if (analysis::DetCheckpointRecorder::Global().enabled()) {
    analysis::DetCheckpointRecorder::Global().BeginEpoch(
        batch.epoch, SchemeName(config_.scheme));
  }
  PreparedEpoch prep;
  prep.batch = &batch;
  prep.lifecycle_slot = BeginLifecycleEpoch(config_, batch);
  prep.profile_window = obs::Profiler().BeginEpochWindow(
      batch.epoch, SchemeName(config_.scheme), pool_->size());
  prep.report.epoch = batch.epoch;
  prep.report.block_concurrency = batch.BlockConcurrency();
  prep.report.txs = batch.TxCount();

  // ---- Phase 1: validation ----
  Stopwatch watch;
  {
    obs::TraceSpan span("validate");
    obs::ProfileSpan pspan("validate");
    for (const Block& block : batch.blocks) {
      // Blocks already appended to the ledger were validated on the way in;
      // re-check the semantic parts that depend on the current state.
      if (block.header.prev_state_root !=
          ledger_.StateRootBefore(batch.epoch)) {
        return Status::InvalidArgument("block state root does not match epoch");
      }
      if (block.header.tx_root != ComputeTxMerkleRoot(block.transactions)) {
        return Status::InvalidArgument("block tx merkle root mismatch");
      }
    }
  }
  prep.report.validate_ms = watch.ElapsedMillis();

  // ---- Phase 2: concurrent speculative execution ----
  const bool nezha_scheme = config_.scheme == SchemeKind::kNezha ||
                            config_.scheme == SchemeKind::kNezhaNoReorder;
  std::vector<std::pair<std::size_t, std::size_t>> slices;
  if (incremental_acg && nezha_scheme) slices = BlockSlices(batch);
  watch.Restart();
  prep.snapshot = state_.MakeSnapshot(batch.epoch);
  {
    obs::TraceSpan span("execute");
    obs::ProfileSpan pspan("execute");
    if (!slices.empty()) {
      // Incremental path: speculatively execute each confirmed block's
      // slice of the deduplicated batch and append its read/write sets to
      // the ACG builder as they land. Per-transaction execution against the
      // immutable snapshot is independent, so the concatenated rwsets are
      // identical to the whole-batch call — and Seal() produces the exact
      // graph Build() would (tests/acg_test.cpp proves the multiset).
      AcgBuilder builder(pool_.get());
      double acg_us = 0;
      prep.exec.rwsets.reserve(batch.txs.size());
      for (const auto& [offset, count] : slices) {
        if (count == 0) continue;
        BatchExecutionResult slice_exec = ExecuteBatchConcurrent(
            *pool_, prep.snapshot,
            std::span<const Transaction>(batch.txs).subspan(offset, count),
            config_.exec_mode);
        prep.exec.malformed += slice_exec.malformed;
        Stopwatch acg_watch;
        builder.AppendBlock(slice_exec.rwsets);
        acg_us += acg_watch.ElapsedMicros();
        for (ReadWriteSet& rw : slice_exec.rwsets) {
          prep.exec.rwsets.push_back(std::move(rw));
        }
      }
      Stopwatch seal_watch;
      AddressConflictGraph acg = builder.Seal();
      acg_us += seal_watch.ElapsedMicros();
      static_cast<NezhaScheduler*>(scheduler_.get())
          ->SetPrebuiltAcg(std::move(acg), acg_us);
    } else {
      prep.exec = ExecuteBatchConcurrent(*pool_, prep.snapshot, batch.txs,
                                         config_.exec_mode);
    }
  }
  prep.report.execute_ms = watch.ElapsedMillis();
  if (config_.model_execution_cost) {
    prep.report.execute_ms =
        config_.cost_model.ConcurrentExecuteLatencyMs(batch.TxCount());
  }

  // ---- Phase 3: concurrency control ----
  watch.Restart();
  Result<Schedule> schedule = Schedule{};
  {
    obs::TraceSpan span("cc");
    obs::ProfileSpan pspan("cc");
    schedule = scheduler_->BuildSchedule(prep.exec.rwsets);
  }
  if (!schedule.ok()) return schedule.status();
  prep.report.cc_ms = watch.ElapsedMillis();
  prep.report.cc_metrics = scheduler_->metrics();
  prep.schedule = std::move(schedule.value());
  if (nezha_scheme && obs::MetricsEnabled()) {
    // The scheduler just finished this epoch's build, so the last-build
    // gauges describe exactly this epoch; capture them now, before a
    // pipelined prepare of the next epoch overwrites them.
    auto& registry = obs::Registry();
    prep.acg_shards = static_cast<std::uint32_t>(
        registry.GetGauge("nezha_parallel_acg_shards")->Value());
    prep.sort_clusters = static_cast<std::uint32_t>(
        registry.GetGauge("nezha_parallel_sort_clusters")->Value());
  }
  // Receipts are a pure function of the batch, the rwsets and the schedule
  // — built here so the commit half touches only state and storage.
  prep.receipts =
      BuildReceipts(batch.epoch, batch.txs, prep.exec.rwsets, prep.schedule);
  prep.report.receipt_root = ComputeReceiptRoot(prep.receipts);
  return prep;
}

Result<EpochReport> FullNode::CommitPrepared(
    PreparedEpoch&& prepared, const std::function<void()>& after_assemble) {
  PreparedEpoch prep = std::move(prepared);
  const EpochBatch& batch = *prep.batch;
  EpochReport report = std::move(prep.report);
  // Bind this thread to the epoch's observability contexts: under
  // pipelining the prepare thread has already opened the NEXT epoch's, so
  // stamps must resolve by binding, not by "the current epoch".
  analysis::DetCheckpointRecorder& det =
      analysis::DetCheckpointRecorder::Global();
  if (det.enabled()) det.BindThread(batch.epoch, SchemeName(config_.scheme));
  obs::TxLifecycleTracer& lifecycle = obs::Lifecycle();
  if (lifecycle.enabled() && prep.lifecycle_slot != 0) {
    lifecycle.BindEpochForThread(prep.lifecycle_slot);
  }
  std::optional<obs::ProfileWindowScope> window_scope;
  if (prep.profile_window != obs::kProfileWindowNone) {
    window_scope.emplace(prep.profile_window);
  }

  // ---- Phase 4: commitment ----
  // Group-parallel executor: merges the schedule's effects into a write
  // buffer in sequence order and applies it across the pool — byte-identical
  // to serial replay of the commit groups (docs/PARALLELISM.md).
  Stopwatch watch;
  ParallelExecStats commit;
  Status commit_status = Status::Ok();
  {
    obs::TraceSpan span("commit");
    obs::ProfileSpan pspan("commit");
    commit = ExecuteScheduleParallel(*pool_, state_, prep.snapshot,
                                     prep.schedule, prep.exec.rwsets);
    report.state_root = state_.RootHash();
    Result<CommitPlan> plan = AssembleCommit(batch, report, prep.receipts);
    // The handoff fires even on failure: a pipeline waiting on it must not
    // deadlock when the commit errors out (it surfaces the error instead).
    if (after_assemble) after_assemble();
    if (!plan.ok()) {
      commit_status = plan.status();
    } else if (Status s = WriteCommit(batch, report, plan.value()); !s.ok()) {
      commit_status = s;
    }
    if (commit_status.ok()) {
      lifecycle.StampAll(obs::TxStage::kCommitted);
    }
  }
  if (!commit_status.ok()) {
    det.UnbindThread();
    return commit_status;
  }
  report.commit_ms = watch.ElapsedMillis();

  report.committed = commit.committed_txs;
  report.aborted = prep.schedule.NumAborted();
  report.max_commit_group = commit.max_group;
  report.latency = lifecycle.FinishEpoch();
  report.profile = obs::Profiler().FinishEpochWindow(prep.profile_window);
  det.UnbindThread();

  PublishEpochObs(config_, report);
  RecordEpochFlight(config_, report, batch.blocks.size(),
                    std::move(prep.schedule.attribution), &commit,
                    prep.acg_shards, prep.sort_clusters);
  return report;
}

Result<FullNode::CommitPlan> FullNode::AssembleCommit(
    const EpochBatch& batch, EpochReport& report,
    std::span<const Receipt> receipts) {
  obs::ProfileSpan pspan("durable_commit");
  if (const fault::Hit hit = fault::Check(fault::sites::kCommitBeforeJournal);
      hit.fired()) {
    if (hit.action == fault::Action::kCrash) {
      return fault::CrashStatus(fault::sites::kCommitBeforeJournal);
    }
    return Status::Unavailable("fault: commit rejected before journal");
  }
  CommitPlan plan;
  if (kv_ == nullptr) {
    // No persistence attached: nothing to assemble. The root still installs
    // here — before the pipeline handoff — so the next epoch's validation
    // reads it without racing the in-memory flush tail.
    ledger_.CommitEpochRootLocal(batch.epoch, report.state_root);
    return plan;
  }

  // Assemble the entire epoch commit as ONE WriteBatch: state records,
  // receipts, the epoch root, the "j/last" journal header, and the delete
  // of the pending slot. Applied atomically, a reader (or a restarted
  // node) sees all of it or none of it.
  state_.AppendDirtyTo(plan.batch);
  ReceiptStore::AppendTo(plan.batch, receipts);
  const auto [root_key, root_value] =
      ParallelChainLedger::EpochRootRecord(batch.epoch, report.state_root);
  plan.batch.Put(root_key, root_value);

  CommitJournal journal;
  journal.epoch = batch.epoch;
  journal.state_root = report.state_root;
  journal.receipt_root = report.receipt_root;
  journal.block_ids.reserve(batch.blocks.size());
  for (const Block& block : batch.blocks) {
    journal.block_ids.push_back(block.Hash());
  }
  for (ChainId chain = 0; chain < ledger_.num_chains(); ++chain) {
    journal.chain_tips.emplace_back(chain, ledger_.ChainTip(chain));
  }
  plan.batch.Put(kLastJournalKey, journal.Header().Serialize());
  plan.batch.Delete(kPendingJournalKey);
  // The redo payload IS the commit batch: recovery re-applies it verbatim
  // to roll a torn or missing commit forward.
  journal.redo = plan.batch.Serialize();
  plan.journal_bytes = journal.Serialize();
  plan.durable = true;
  // The in-memory root installs at assemble time — the last ledger access
  // of this epoch's commit, so the pipeline may hand the ledger to the next
  // epoch's prepare right after this returns. (Idempotent in the ledger, so
  // legacy callers that also install it later stay correct.)
  ledger_.CommitEpochRootLocal(batch.epoch, report.state_root);
  return plan;
}

Status FullNode::WriteCommit(const EpochBatch& batch, EpochReport& report,
                             CommitPlan& plan) {
  obs::ProfileSpan pspan("durable_commit");
  if (!plan.durable) {
    // No persistence attached: Flush() still syncs the commitment trie and
    // clears the dirty markers; nothing can tear.
    if (Status s = state_.Flush(); !s.ok()) return s;
    RecordCommitCheckpoint(batch.epoch, report, nullptr);
    return Status::Ok();
  }
  // Step 1 — write-ahead: the pending journal, a single-key put (atomic by
  // the KVStore contract even under injected tears).
  if (Status s = kv_->Put(kPendingJournalKey, plan.journal_bytes); !s.ok()) {
    return s;
  }
  if (const fault::Hit hit = fault::Check(fault::sites::kCommitAfterJournal);
      hit.fired()) {
    if (hit.action == fault::Action::kCrash) {
      return fault::CrashStatus(fault::sites::kCommitAfterJournal);
    }
    return Status::Unavailable("fault: commit interrupted after journal");
  }
  if (const fault::Hit hit = fault::Check(fault::sites::kCommitBeforeFlush);
      hit.fired()) {
    if (hit.action == fault::Action::kCrash) {
      return fault::CrashStatus(fault::sites::kCommitBeforeFlush);
    }
    return Status::Unavailable("fault: commit interrupted before flush");
  }
  // Step 2 — the atomic commit batch (the kvstore/write site can fail,
  // tear, or crash it; the journal repairs all three).
  if (Status s = kv_->Write(plan.batch); !s.ok()) return s;
  state_.ClearDirty();
  RecordCommitCheckpoint(batch.epoch, report, &plan.batch);
  if (obs::MetricsEnabled()) {
    auto& registry = obs::Registry();
    registry.GetCounter("nezha_commit_journal_writes_total")->Inc();
    registry.GetCounter("nezha_commit_batch_records_total")
        ->Inc(plan.batch.Count());
    registry.GetCounter("nezha_commit_batch_bytes_total")
        ->Inc(plan.batch.ByteSize());
  }
  if (const fault::Hit hit = fault::Check(fault::sites::kCommitAfterFlush);
      hit.action == fault::Action::kCrash) {
    return fault::CrashStatus(fault::sites::kCommitAfterFlush);
  }
  return Status::Ok();
}

Status FullNode::CommitEpochDurable(const EpochBatch& batch,
                                    EpochReport& report,
                                    std::span<const Receipt> receipts) {
  Result<CommitPlan> plan = AssembleCommit(batch, report, receipts);
  if (!plan.ok()) return plan.status();
  return WriteCommit(batch, report, plan.value());
}

Result<FullNode::RecoveryReport> FullNode::Recover() {
  if (kv_ == nullptr) return Status::InvalidArgument("no KV store attached");
  RecoveryReport recovery;
  // Corruption discovered during recovery is exactly what the flight
  // recorder exists for: dump whatever epochs it still holds before failing.
  const auto corrupt = [](std::string message) {
    obs::FlightRecorder::Global().DumpPostMortem("recovery-corruption");
    return Status::Corruption(std::move(message));
  };
  // Step 1 — a pending journal means the node died with a commit in flight.
  // Re-applying its redo batch is idempotent (pure overwrites), so a torn,
  // partial, or entirely missing commit batch all converge to the fully
  // committed store. The redo batch ends by installing "j/last" and
  // deleting the pending slot.
  if (auto pending = kv_->Get(kPendingJournalKey); pending.ok()) {
    auto journal = CommitJournal::Deserialize(*pending);
    if (!journal.ok()) {
      // The pending slot is written in one atomic put, so bad contents are
      // bit rot, not a tear — nothing trustworthy to roll forward from.
      return corrupt("pending commit journal is corrupt: " +
                                journal.status().message());
    }
    WriteBatch redo;
    if (!WriteBatch::Deserialize(journal->redo, &redo)) {
      return corrupt("pending commit journal redo does not parse");
    }
    if (Status s = kv_->Write(redo); !s.ok()) return s;
    recovery.rolled_forward = true;
    obs::Registry()
        .GetCounter("nezha_recovery_total", {{"outcome", "rolled_forward"}})
        ->Inc();
    obs::FlightRecorder::Global().DumpPostMortem("recovery-rolled-forward");
  }
  // Step 2 — rebuild the ledger (with full block re-validation) and the
  // state from storage.
  if (Status s = ledger_.LoadFromStorage(); !s.ok()) return s;
  if (Status s = state_.LoadFromStorage(); !s.ok()) return s;
  recovery.state_root = state_.RootHash();
  // Step 3 — the recovered state must hash to the last committed epoch
  // root (StateRootBefore of any future epoch is the newest root).
  const Hash256 expected =
      ledger_.StateRootBefore(std::numeric_limits<EpochId>::max());
  if (!expected.IsZero() && recovery.state_root != expected) {
    return corrupt(
        "recovered state root does not match the last epoch root");
  }
  // Step 4 — cross-check the commit journal against the recovered ledger:
  // its epoch must be the newest committed one, its roots must match, and
  // its block ids and chain tips must all still be in the ledger (tips may
  // have been extended by appends the crash cut short, but never replaced).
  if (auto last = kv_->Get(kLastJournalKey); last.ok()) {
    auto journal = CommitJournal::Deserialize(*last);
    if (!journal.ok()) {
      return corrupt("commit journal is corrupt: " +
                                journal.status().message());
    }
    recovery.last_committed = journal->epoch;
    recovery.receipt_root = journal->receipt_root;
    if (!ledger_.HasCommittedRoot() ||
        journal->epoch != ledger_.LastCommittedEpoch()) {
      return corrupt("commit journal epoch disagrees with ledger");
    }
    if (journal->state_root != expected) {
      return corrupt(
          "commit journal state root disagrees with epoch root");
    }
    for (const Hash256& id : journal->block_ids) {
      if (!ledger_.ContainsBlock(id)) {
        return corrupt("journaled block missing from ledger");
      }
    }
    for (const auto& [chain, tip] : journal->chain_tips) {
      if (!tip.IsZero() && !ledger_.ChainContains(chain, tip)) {
        return corrupt(
            "journaled chain tip missing from recovered chain " +
            std::to_string(chain));
      }
    }
  }
  if (!recovery.rolled_forward) {
    obs::Registry()
        .GetCounter("nezha_recovery_total", {{"outcome", "clean"}})
        ->Inc();
  }
  return recovery;
}

Status FullNode::RecoverFromStorage() { return Recover().status(); }

Result<EpochReport> FullNode::ProcessSerial(const EpochBatch& batch) {
  obs::FlightRecorder::Global().SetCurrentEpoch(batch.epoch);
  if (analysis::DetCheckpointRecorder::Global().enabled()) {
    analysis::DetCheckpointRecorder::Global().BeginEpoch(
        batch.epoch, SchemeName(config_.scheme));
  }
  BeginLifecycleEpoch(config_, batch);
  obs::Profiler().BeginEpoch(batch.epoch, SchemeName(config_.scheme),
                             pool_->size());
  obs::TraceSpan epoch_span("epoch " + std::to_string(batch.epoch));
  EpochReport report;
  report.epoch = batch.epoch;
  report.block_concurrency = batch.BlockConcurrency();
  report.txs = batch.TxCount();

  Stopwatch watch;
  {
    obs::TraceSpan span("validate");
    obs::ProfileSpan pspan("validate");
    for (const Block& block : batch.blocks) {
      if (block.header.prev_state_root !=
          ledger_.StateRootBefore(batch.epoch)) {
        return Status::InvalidArgument("block state root does not match epoch");
      }
      if (block.header.tx_root != ComputeTxMerkleRoot(block.transactions)) {
        return Status::InvalidArgument("block tx merkle root mismatch");
      }
    }
  }
  report.validate_ms = watch.ElapsedMillis();

  // Execute + commit one transaction at a time against the live state —
  // what today's DAG-based blockchains do after consensus. An overlay over
  // one snapshot makes each transaction see all earlier effects without
  // re-snapshotting the whole state per transaction.
  watch.Restart();
  obs::TraceSpan commit_span("commit");
  // optional: the span must close before Profiler().FinishEpoch() below,
  // while this function (and commit_span) runs on to the return.
  std::optional<obs::ProfileSpan> commit_pspan;
  commit_pspan.emplace("serial_execute_commit");
  const StateSnapshot base = state_.MakeSnapshot(batch.epoch);
  LoggedStateView::Overlay overlay;
  obs::TxLifecycleTracer& lifecycle = obs::Lifecycle();
  for (std::size_t t = 0; t < batch.txs.size(); ++t) {
    const Transaction& tx = batch.txs[t];
    LoggedStateView view(base, &overlay);
    Status executed;
    if (config_.exec_mode == ExecMode::kNative) {
      executed = ExecuteContract(tx.payload, view);
    } else {
      auto program = CompileContract(tx.payload);
      executed = program.ok() ? RunProgram(program.value(), view).status
                              : program.status();
    }
    if (!executed.ok()) {
      ++report.aborted;  // malformed transaction: skipped
      lifecycle.MarkAborted(
          static_cast<std::uint32_t>(t),
          static_cast<std::uint8_t>(obs::ConflictKind::kReverted));
      continue;
    }
    ReadWriteSet rw = view.TakeRWSet();
    for (std::size_t i = 0; i < rw.writes.size(); ++i) {
      overlay[rw.writes[i].value] = rw.write_values[i];
      state_.Set(rw.writes[i], rw.write_values[i]);
    }
    ++report.committed;
    lifecycle.StampTx(static_cast<std::uint32_t>(t), obs::TxStage::kExecuted);
  }
  // Serial has no scheduler stages; its kExecute checkpoint is the overlay
  // of all committed writes, in ascending address order (the overlay is an
  // unordered_map — sorting is what makes the encoding canonical).
  if (analysis::DetCheckpointRecorder& det =
          analysis::DetCheckpointRecorder::Global();
      det.enabled()) {
    std::vector<std::pair<std::uint64_t, StateValue>> items(overlay.begin(),
                                                            overlay.end());
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::string canonical;
    canonical.reserve(64 + items.size() * 24);
    canonical += "exec serial txs=";
    AppendU64(canonical, batch.txs.size());
    canonical += " committed=";
    AppendU64(canonical, report.committed);
    canonical += " addrs=";
    AppendU64(canonical, items.size());
    canonical += '\n';
    for (const auto& [addr, value] : items) {
      canonical += "w ";
      AppendU64(canonical, addr);
      canonical += '=';
      AppendI64(canonical, static_cast<std::int64_t>(value));
      canonical += '\n';
    }
    det.Record(analysis::DetStage::kExecute, canonical);
  }
  report.state_root = state_.RootHash();
  // Same durable-commit tail as the concurrent pipeline (no receipts: the
  // serial baseline has no abort outcomes to attest).
  if (Status s = CommitEpochDurable(batch, report, {}); !s.ok()) return s;
  lifecycle.StampAll(obs::TxStage::kCommitted);
  report.commit_ms = watch.ElapsedMillis();
  if (config_.model_execution_cost) {
    report.commit_ms = 0;
    report.execute_ms = config_.cost_model.SerialLatencyMs(batch.TxCount());
  }
  report.latency = lifecycle.FinishEpoch();
  commit_pspan.reset();
  report.profile = obs::Profiler().FinishEpoch();
  PublishEpochObs(config_, report);
  // Serial builds no schedule, so the record carries empty attribution.
  RecordEpochFlight(config_, report, batch.blocks.size(), {});
  return report;
}

}  // namespace nezha
