#include "node/full_node.h"

#include <limits>

#include "cc/cg/cg_scheduler.h"
#include "cc/nezha/nezha_scheduler.h"
#include "cc/occ/occ_scheduler.h"
#include "cc/serial/serial_scheduler.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/committer.h"
#include "runtime/concurrent_executor.h"
#include "vm/contract.h"
#include "vm/logged_state.h"
#include "vm/minivm.h"

namespace nezha {

std::unique_ptr<Scheduler> MakeScheduler(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSerial:
      return std::make_unique<SerialScheduler>();
    case SchemeKind::kOcc:
      return std::make_unique<OCCScheduler>();
    case SchemeKind::kCg:
      return std::make_unique<CGScheduler>();
    case SchemeKind::kNezha:
      return std::make_unique<NezhaScheduler>();
    case SchemeKind::kNezhaNoReorder: {
      NezhaOptions options;
      options.enable_reordering = false;
      return std::make_unique<NezhaScheduler>(options);
    }
  }
  return nullptr;
}

const char* SchemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSerial:
      return "serial";
    case SchemeKind::kOcc:
      return "occ";
    case SchemeKind::kCg:
      return "cg";
    case SchemeKind::kNezha:
      return "nezha";
    case SchemeKind::kNezhaNoReorder:
      return "nezha-noreorder";
  }
  return "?";
}

Result<SchemeKind> ParseScheme(std::string_view name) {
  if (name == "serial") return SchemeKind::kSerial;
  if (name == "occ") return SchemeKind::kOcc;
  if (name == "cg") return SchemeKind::kCg;
  if (name == "nezha") return SchemeKind::kNezha;
  if (name == "nezha-noreorder") return SchemeKind::kNezhaNoReorder;
  return Status::InvalidArgument("unknown scheme: " + std::string(name));
}

FullNode::FullNode(const NodeConfig& config, KVStore* kv)
    : config_(config),
      kv_(kv),
      ledger_(config.max_chains, kv),
      state_(kv),
      pool_(std::make_unique<ThreadPool>(config.worker_threads)),
      scheduler_(MakeScheduler(config.scheme)),
      receipts_(kv) {}

namespace {

/// Mirrors one finished EpochReport into the global metrics registry so
/// dashboards see what the report structs see (docs/OBSERVABILITY.md).
void PublishEpochObs(const NodeConfig& config, const EpochReport& report) {
  if (!obs::MetricsEnabled()) return;
  auto& registry = obs::Registry();
  const std::string scheme = SchemeName(config.scheme);
  const obs::Labels by_scheme = {{"scheme", scheme}};

  const auto observe_phase = [&](const char* phase, double ms) {
    registry
        .GetHistogram("nezha_node_phase_ms",
                      {{"scheme", scheme}, {"phase", phase}},
                      obs::DefaultLatencyBoundsMs())
        ->Observe(ms);
  };
  observe_phase("validate", report.validate_ms);
  observe_phase("execute", report.execute_ms);
  observe_phase("cc", report.cc_ms);
  observe_phase("commit", report.commit_ms);
  registry
      .GetHistogram("nezha_node_epoch_total_ms", by_scheme,
                    obs::DefaultLatencyBoundsMs())
      ->Observe(report.TotalMs());

  registry.GetCounter("nezha_node_epochs_total", by_scheme)->Inc();
  registry.GetCounter("nezha_node_txs_total", by_scheme)->Inc(report.txs);
  registry.GetCounter("nezha_node_committed_total", by_scheme)
      ->Inc(report.committed);
  registry.GetCounter("nezha_node_aborted_total", by_scheme)
      ->Inc(report.aborted);
  registry.GetGauge("nezha_node_last_epoch", by_scheme)
      ->Set(static_cast<std::int64_t>(report.epoch));
  registry.GetGauge("nezha_node_block_concurrency", by_scheme)
      ->Set(static_cast<std::int64_t>(report.block_concurrency));
  registry.GetGauge("nezha_node_max_commit_group", by_scheme)
      ->Set(static_cast<std::int64_t>(report.max_commit_group));
}

}  // namespace

Result<EpochReport> FullNode::ProcessEpoch(const EpochBatch& batch) {
  if (config_.scheme == SchemeKind::kSerial) return ProcessSerial(batch);

  obs::TraceSpan epoch_span("epoch " + std::to_string(batch.epoch));
  EpochReport report;
  report.epoch = batch.epoch;
  report.block_concurrency = batch.BlockConcurrency();
  report.txs = batch.TxCount();

  // ---- Phase 1: validation ----
  Stopwatch watch;
  {
    obs::TraceSpan span("validate");
    for (const Block& block : batch.blocks) {
      // Blocks already appended to the ledger were validated on the way in;
      // re-check the semantic parts that depend on the current state.
      if (block.header.prev_state_root !=
          ledger_.StateRootBefore(batch.epoch)) {
        return Status::InvalidArgument("block state root does not match epoch");
      }
      if (block.header.tx_root != ComputeTxMerkleRoot(block.transactions)) {
        return Status::InvalidArgument("block tx merkle root mismatch");
      }
    }
  }
  report.validate_ms = watch.ElapsedMillis();

  // ---- Phase 2: concurrent speculative execution ----
  watch.Restart();
  BatchExecutionResult exec;
  {
    obs::TraceSpan span("execute");
    const StateSnapshot snapshot = state_.MakeSnapshot(batch.epoch);
    exec =
        ExecuteBatchConcurrent(*pool_, snapshot, batch.txs, config_.exec_mode);
  }
  report.execute_ms = watch.ElapsedMillis();
  if (config_.model_execution_cost) {
    report.execute_ms =
        config_.cost_model.ConcurrentExecuteLatencyMs(batch.TxCount());
  }

  // ---- Phase 3: concurrency control ----
  watch.Restart();
  Result<Schedule> schedule = Schedule{};
  {
    obs::TraceSpan span("cc");
    schedule = scheduler_->BuildSchedule(exec.rwsets);
  }
  if (!schedule.ok()) return schedule.status();
  report.cc_ms = watch.ElapsedMillis();
  report.cc_metrics = scheduler_->metrics();

  // ---- Phase 4: commitment ----
  watch.Restart();
  CommitStats commit;
  {
    obs::TraceSpan span("commit");
    commit = CommitSchedule(*pool_, state_, schedule.value(), exec.rwsets);
    if (Status s = state_.Flush(); !s.ok()) return s;
    report.state_root = state_.RootHash();
  }
  report.commit_ms = watch.ElapsedMillis();

  report.committed = commit.committed_txs;
  report.aborted = schedule->NumAborted();
  report.max_commit_group = commit.max_group;

  // Receipts: the per-transaction outcome record, committed to by a root.
  const std::vector<Receipt> receipts =
      BuildReceipts(batch.epoch, batch.txs, exec.rwsets, *schedule);
  report.receipt_root = ComputeReceiptRoot(receipts);
  if (Status s = receipts_.Put(receipts); !s.ok()) return s;

  ledger_.CommitEpochRoot(batch.epoch, report.state_root);
  PublishEpochObs(config_, report);
  return report;
}

Status FullNode::RecoverFromStorage() {
  if (kv_ == nullptr) return Status::InvalidArgument("no KV store attached");
  if (Status s = ledger_.LoadFromStorage(); !s.ok()) return s;
  if (Status s = state_.LoadFromStorage(); !s.ok()) return s;
  // Cross-check: the recovered state must hash to the last committed epoch
  // root (StateRootBefore of any future epoch is the newest root).
  const Hash256 expected =
      ledger_.StateRootBefore(std::numeric_limits<EpochId>::max());
  if (!expected.IsZero() && state_.RootHash() != expected) {
    return Status::Corruption(
        "recovered state root does not match the last epoch root");
  }
  return Status::Ok();
}

Result<EpochReport> FullNode::ProcessSerial(const EpochBatch& batch) {
  obs::TraceSpan epoch_span("epoch " + std::to_string(batch.epoch));
  EpochReport report;
  report.epoch = batch.epoch;
  report.block_concurrency = batch.BlockConcurrency();
  report.txs = batch.TxCount();

  Stopwatch watch;
  {
    obs::TraceSpan span("validate");
    for (const Block& block : batch.blocks) {
      if (block.header.prev_state_root !=
          ledger_.StateRootBefore(batch.epoch)) {
        return Status::InvalidArgument("block state root does not match epoch");
      }
      if (block.header.tx_root != ComputeTxMerkleRoot(block.transactions)) {
        return Status::InvalidArgument("block tx merkle root mismatch");
      }
    }
  }
  report.validate_ms = watch.ElapsedMillis();

  // Execute + commit one transaction at a time against the live state —
  // what today's DAG-based blockchains do after consensus. An overlay over
  // one snapshot makes each transaction see all earlier effects without
  // re-snapshotting the whole state per transaction.
  watch.Restart();
  obs::TraceSpan commit_span("commit");
  const StateSnapshot base = state_.MakeSnapshot(batch.epoch);
  LoggedStateView::Overlay overlay;
  for (const Transaction& tx : batch.txs) {
    LoggedStateView view(base, &overlay);
    Status executed;
    if (config_.exec_mode == ExecMode::kNative) {
      executed = ExecuteContract(tx.payload, view);
    } else {
      auto program = CompileContract(tx.payload);
      executed = program.ok() ? RunProgram(program.value(), view).status
                              : program.status();
    }
    if (!executed.ok()) {
      ++report.aborted;  // malformed transaction: skipped
      continue;
    }
    ReadWriteSet rw = view.TakeRWSet();
    for (std::size_t i = 0; i < rw.writes.size(); ++i) {
      overlay[rw.writes[i].value] = rw.write_values[i];
      state_.Set(rw.writes[i], rw.write_values[i]);
    }
    ++report.committed;
  }
  if (Status s = state_.Flush(); !s.ok()) return s;
  report.state_root = state_.RootHash();
  report.commit_ms = watch.ElapsedMillis();
  if (config_.model_execution_cost) {
    report.commit_ms = 0;
    report.execute_ms = config_.cost_model.SerialLatencyMs(batch.TxCount());
  }
  ledger_.CommitEpochRoot(batch.epoch, report.state_root);
  PublishEpochObs(config_, report);
  return report;
}

}  // namespace nezha
