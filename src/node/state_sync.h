// State synchronization: how a freshly joining full node obtains the world
// state without replaying the whole chain history.
//
// The paper's deployment has one "full node" synchronizing the entire
// system state (§VI.A); this module provides the fast-sync protocol for
// that role:
//  * the SERVER walks its state in address order and serves fixed-size
//    chunks of (address, value) records, each chunk tagged with the serving
//    snapshot's state root and a Merkle proof of its first and last record
//    (so a malicious server cannot reorder or substitute ranges
//    undetected);
//  * the CLIENT verifies each chunk's boundary proofs against the trusted
//    root (obtained from a block header), accumulates the records, and at
//    the end rebuilds the commitment trie — accepting the state only if the
//    rebuilt root equals the trusted root exactly (catching any tampering
//    the boundary proofs cannot).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "storage/state_db.h"

namespace nezha {

struct StateChunk {
  std::uint64_t index = 0;  ///< chunk sequence number, 0-based
  bool last = false;        ///< no further chunks follow
  std::vector<StateWrite> records;  ///< ascending address order
  Hash256 root{};           ///< state root this chunk was served from
  /// Merkle proofs for the first and last record (empty for empty chunks).
  std::vector<std::string> first_proof;
  std::vector<std::string> last_proof;
  /// Server-computed digest over every field above: in-flight corruption is
  /// caught per chunk (and just re-requested) instead of poisoning the
  /// whole stream until the final root rebuild. A malicious server can
  /// forge it — which is exactly what the boundary proofs still catch.
  Hash256 checksum{};
  /// Simulated transport latency (fault injection); never serialized.
  double delay_ms = 0;

  /// The digest `checksum` must carry.
  Hash256 ComputeChecksum() const;
};

/// Serves chunks from one immutable state snapshot.
class StateSyncServer {
 public:
  /// Captures the snapshot of `db` (records + trie) at construction time.
  explicit StateSyncServer(StateDB& db, std::size_t chunk_size = 1024);

  Hash256 root() const { return root_; }
  std::uint64_t NumChunks() const;

  /// Chunk by index; OutOfRange past the end.
  Result<StateChunk> GetChunk(std::uint64_t index) const;

 private:
  std::size_t chunk_size_;
  std::vector<StateWrite> records_;  ///< ascending address order
  MerklePatriciaTrie trie_;
  Hash256 root_{};
};

/// Transport abstraction over "fetch chunk i from somewhere": lets the
/// retry driver treat an in-process server, a flaky injected one, and (in a
/// real deployment) a network peer identically.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Fetches chunk `index`. A source that cannot deliver within
  /// `timeout_ms` reports Unavailable (retryable) instead of blocking.
  virtual Result<StateChunk> FetchChunk(std::uint64_t index,
                                        double timeout_ms) = 0;

  /// Human-readable identity for logs / metrics labels.
  virtual std::string Name() const = 0;
};

/// ChunkSource over an in-process StateSyncServer. Injected delays
/// (statesync/server/chunk, kDelay) are compared against the caller's
/// timeout deterministically — no real sleeping.
class ServerChunkSource : public ChunkSource {
 public:
  explicit ServerChunkSource(const StateSyncServer& server,
                             std::string name = "local")
      : server_(server), name_(std::move(name)) {}

  Result<StateChunk> FetchChunk(std::uint64_t index,
                                double timeout_ms) override;
  std::string Name() const override { return name_; }

 private:
  const StateSyncServer& server_;
  std::string name_;
};

/// Retry/backoff/blacklist knobs for StateSyncClient::SyncFrom.
/// All time is simulated (accounted, never slept) so tests stay
/// deterministic and instant.
struct SyncRetryPolicy {
  std::size_t max_attempts_per_chunk = 8;  ///< per chunk, per source
  double chunk_timeout_ms = 50;            ///< per-fetch deadline
  double initial_backoff_ms = 5;           ///< first retry delay
  double max_backoff_ms = 250;             ///< backoff growth cap
  double backoff_multiplier = 2.0;         ///< exponential growth factor
  double jitter = 0.25;                    ///< +/- fraction, seeded draw
  /// A source is blacklisted after this many proof-level failures (wrong
  /// root, invalid/forged boundary proof, non-ascending records). Transport
  /// corruption (checksum mismatch) only burns retry attempts.
  std::size_t blacklist_after_proof_failures = 3;
  std::uint64_t seed = 0x5eedc0de;  ///< jitter RNG seed
};

/// What a SyncFrom run did (mirrored into the obs metrics registry).
struct SyncStats {
  std::uint64_t chunks_verified = 0;
  std::uint64_t fetch_attempts = 0;
  std::uint64_t retries = 0;         ///< attempts beyond the first per chunk
  std::uint64_t drops = 0;           ///< Unavailable fetches (drop/timeout)
  std::uint64_t checksum_failures = 0;  ///< transport corruption, retried
  std::uint64_t proof_failures = 0;  ///< forged/invalid proof-level chunks
  std::uint64_t sources_blacklisted = 0;
  double backoff_ms_total = 0;       ///< simulated waiting time
};

/// Assembles and verifies a state from chunks.
class StateSyncClient {
 public:
  /// `trusted_root`: the state root from a validated block header.
  explicit StateSyncClient(const Hash256& trusted_root)
      : trusted_root_(trusted_root) {}

  /// Feeds the next chunk (must arrive in index order). The chunk checksum
  /// and boundary proofs are verified immediately; Corruption on any
  /// mismatch (checksum failures carry the "chunk checksum mismatch"
  /// message prefix — see IsChecksumFailure).
  Status AddChunk(const StateChunk& chunk);

  /// True iff `status` is AddChunk's transport-corruption verdict (as
  /// opposed to a proof-level failure only a lying server can produce).
  static bool IsChecksumFailure(const Status& status);

  bool Complete() const { return complete_; }

  /// After the last chunk: rebuilds the commitment trie and installs the
  /// records into `db` iff the rebuilt root equals the trusted root.
  Status Finish(StateDB& db);

  /// End-to-end resilient sync driver: fetches every remaining chunk from
  /// `sources` with per-chunk timeout, bounded exponential backoff with
  /// seeded jitter, re-requests of dropped/corrupt chunks (verified chunks
  /// are never re-fetched), and blacklisting of sources after repeated
  /// proof failures; then runs Finish(db). Fails Unavailable when every
  /// source is blacklisted or a chunk exhausts its attempts everywhere.
  Status SyncFrom(std::span<ChunkSource* const> sources, StateDB& db,
                  const SyncRetryPolicy& policy = {});

  /// Single-source convenience overload.
  Status SyncFrom(ChunkSource& source, StateDB& db,
                  const SyncRetryPolicy& policy = {});

  /// Counters from the last SyncFrom run.
  const SyncStats& stats() const { return stats_; }

 private:
  Hash256 trusted_root_;
  std::vector<StateWrite> records_;
  std::uint64_t next_index_ = 0;
  bool complete_ = false;
  SyncStats stats_;
};

}  // namespace nezha
