// State synchronization: how a freshly joining full node obtains the world
// state without replaying the whole chain history.
//
// The paper's deployment has one "full node" synchronizing the entire
// system state (§VI.A); this module provides the fast-sync protocol for
// that role:
//  * the SERVER walks its state in address order and serves fixed-size
//    chunks of (address, value) records, each chunk tagged with the serving
//    snapshot's state root and a Merkle proof of its first and last record
//    (so a malicious server cannot reorder or substitute ranges
//    undetected);
//  * the CLIENT verifies each chunk's boundary proofs against the trusted
//    root (obtained from a block header), accumulates the records, and at
//    the end rebuilds the commitment trie — accepting the state only if the
//    rebuilt root equals the trusted root exactly (catching any tampering
//    the boundary proofs cannot).
#pragma once

#include <optional>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "storage/state_db.h"

namespace nezha {

struct StateChunk {
  std::uint64_t index = 0;  ///< chunk sequence number, 0-based
  bool last = false;        ///< no further chunks follow
  std::vector<StateWrite> records;  ///< ascending address order
  Hash256 root{};           ///< state root this chunk was served from
  /// Merkle proofs for the first and last record (empty for empty chunks).
  std::vector<std::string> first_proof;
  std::vector<std::string> last_proof;
};

/// Serves chunks from one immutable state snapshot.
class StateSyncServer {
 public:
  /// Captures the snapshot of `db` (records + trie) at construction time.
  explicit StateSyncServer(StateDB& db, std::size_t chunk_size = 1024);

  Hash256 root() const { return root_; }
  std::uint64_t NumChunks() const;

  /// Chunk by index; OutOfRange past the end.
  Result<StateChunk> GetChunk(std::uint64_t index) const;

 private:
  std::size_t chunk_size_;
  std::vector<StateWrite> records_;  ///< ascending address order
  MerklePatriciaTrie trie_;
  Hash256 root_{};
};

/// Assembles and verifies a state from chunks.
class StateSyncClient {
 public:
  /// `trusted_root`: the state root from a validated block header.
  explicit StateSyncClient(const Hash256& trusted_root)
      : trusted_root_(trusted_root) {}

  /// Feeds the next chunk (must arrive in index order). Boundary proofs are
  /// verified immediately; Corruption on any mismatch.
  Status AddChunk(const StateChunk& chunk);

  bool Complete() const { return complete_; }

  /// After the last chunk: rebuilds the commitment trie and installs the
  /// records into `db` iff the rebuilt root equals the trusted root.
  Status Finish(StateDB& db);

 private:
  Hash256 trusted_root_;
  std::vector<StateWrite> records_;
  std::uint64_t next_index_ = 0;
  bool complete_ = false;
};

}  // namespace nezha
