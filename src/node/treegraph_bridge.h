// TreeGraphDeferredExecutor: deferred execution over the Conflux-style
// tree-graph substrate.
//
// The tree-graph's epochs are already protocol-defined (one per confirmed
// pivot block, containing that pivot's newly covered DAG blocks in a
// deterministic topological order), so they map 1:1 onto execution batches
// — exactly the paper's B_e model, and deferred execution is precisely what
// Conflux itself does (§II.B). Replica consistency follows from every node
// deriving the same confirmed epochs.
#pragma once

#include "consensus/treegraph.h"
#include "node/deferred_executor.h"

namespace nezha {

class TreeGraphDeferredExecutor {
 public:
  explicit TreeGraphDeferredExecutor(const DeferredExecConfig& config)
      : pipeline_(config) {}

  StateDB& state() { return pipeline_.state(); }
  std::size_t executed_epochs() const { return next_epoch_index_; }

  /// Executes every confirmed epoch `view` has finalized beyond what this
  /// executor has already processed. One EpochReport per epoch, in pivot
  /// order.
  Result<std::vector<EpochReport>> CatchUp(const TreeGraphView& view);

 private:
  DeferredExecutionPipeline pipeline_;
  std::size_t next_epoch_index_ = 0;
};

}  // namespace nezha
