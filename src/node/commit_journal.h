// Epoch-commit journal: the write-ahead record that makes epoch commitment
// crash-consistent (docs/ROBUSTNESS.md).
//
// Committing an epoch touches several KV namespaces — state cells ("s/"),
// receipts ("t/"), the epoch root ("r/") — and a crash between any two of
// those writes used to leave the store torn: ledger and state disagreeing
// about which epoch the node is at. The journal closes that window:
//
//   1. before the commit batch, the node writes "j/pending": the journal
//      header (epoch id, block ids, state root, receipt root, chain tips)
//      plus a *redo payload* — the serialized WriteBatch of the entire
//      commit (a single-key put, atomic in the KVStore contract);
//   2. the commit batch itself is ONE atomic WriteBatch: all state records,
//      all receipts, the epoch root, "j/last" (the header, for cross-checks)
//      and a delete of "j/pending";
//   3. recovery finding "j/pending" simply re-applies the redo payload —
//      idempotent overwrites, so a torn or missing commit batch rolls
//      forward to exactly the committed state; finding none, the store is
//      either pre-epoch or fully committed, never a hybrid.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "common/types.h"

namespace nezha {

/// KV keys of the two journal slots.
inline constexpr char kPendingJournalKey[] = "j/pending";
inline constexpr char kLastJournalKey[] = "j/last";

struct CommitJournal {
  EpochId epoch = 0;
  Hash256 state_root{};
  Hash256 receipt_root{};
  /// Hashes of the epoch's blocks, in consensus (chain-id) order.
  std::vector<Hash256> block_ids;
  /// Per-chain ledger tips at commit time (every chain, in id order).
  std::vector<std::pair<ChainId, Hash256>> chain_tips;
  /// Serialized WriteBatch re-applying the full commit; empty in "j/last".
  std::string redo;

  /// Copy with the redo payload stripped — what "j/last" stores.
  CommitJournal Header() const;

  /// Checksummed binary encoding (magic + fields + SHA-256 trailer).
  std::string Serialize() const;

  /// Rejects truncated or bit-flipped input with a descriptive Corruption.
  static Result<CommitJournal> Deserialize(std::string_view data);
};

}  // namespace nezha
