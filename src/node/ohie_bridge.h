// OhieDeferredExecutor: deferred execution over the OHIE substrate.
//
// In the paper's processing framework (Fig. 2b) execution happens AFTER
// consensus: miners ship unexecuted blocks; every node independently runs
// the four-phase pipeline over the confirmed block sequence.
//
// Epoch boundaries must be part of the protocol, not of the observer:
// speculative execution snapshots the state once per batch, so two replicas
// that sliced the confirmed sequence differently would speculate against
// different snapshots and commit different values. The bridge therefore
// batches by fixed RANK WINDOWS: execution epoch i covers the confirmed
// blocks with rank in [i*W, (i+1)*W), and a window only executes once the
// node's confirm bar has passed its upper edge (at which point OHIE
// guarantees every replica sees exactly the same blocks in it, in the same
// (rank, chain) order). Replicas may call CatchUp at arbitrary times and
// still walk the identical epoch sequence — the replica-consistency
// property the integration tests pin down.
#pragma once

#include "consensus/ohie_node.h"
#include "node/deferred_executor.h"

namespace nezha {

struct OhieBridgeConfig : DeferredExecConfig {
  /// Width of one execution epoch in rank units (protocol parameter; must
  /// match across replicas).
  std::uint64_t ranks_per_epoch = 4;
};

class OhieDeferredExecutor {
 public:
  explicit OhieDeferredExecutor(const OhieBridgeConfig& config)
      : config_(config), pipeline_(config) {}

  StateDB& state() { return pipeline_.state(); }

  /// Number of rank windows already executed.
  std::uint64_t executed_windows() const { return next_window_; }
  std::size_t executed_blocks() const { return executed_blocks_; }

  /// Executes every rank window completed by `view`'s confirm bar that has
  /// not been executed yet (possibly none -> empty result). One EpochReport
  /// per executed window, in order.
  Result<std::vector<EpochReport>> CatchUp(const OhieNodeView& view);

 private:
  OhieBridgeConfig config_;
  DeferredExecutionPipeline pipeline_;
  std::uint64_t next_window_ = 0;
  std::size_t executed_blocks_ = 0;
};

}  // namespace nezha
