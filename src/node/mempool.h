// Mempool: the client-facing transaction pool miners draw block payloads
// from.
//
// FIFO admission with content-addressed deduplication and a capacity bound.
// Thread-safe: clients submit concurrently while the miner drains batches.
// When a block from another miner commits, RemoveCommitted() drops the
// transactions it carried so they are not proposed twice (the epoch
// flattening would deduplicate them anyway, but re-proposing wastes block
// space).
//
// Observability: every admission stamps the transaction's lifecycle
// (TxStage::kSubmitted) and every drain stamps kIncluded, so end-to-end
// latency counts mempool queueing. The pool also keeps two gauges current —
// nezha_mempool_depth and nezha_mempool_oldest_age_ms (age of the
// longest-waiting pending transaction) — updated on add/drain/evict.
#pragma once

#include <deque>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "ledger/transaction.h"

namespace nezha::obs {
class Counter;
class Gauge;
}  // namespace nezha::obs

namespace nezha {

class Mempool {
 public:
  explicit Mempool(std::size_t capacity = 100'000);

  /// Admits a transaction. AlreadyExists for duplicates (by id, including
  /// transactions that already left in a batch but were not yet forgotten) —
  /// an idempotent reject: the pool is unchanged, no lifecycle stamp is
  /// recorded, and nezha_mempool_duplicate_total counts the re-submission.
  /// ResourceExhausted-like OutOfRange when the pool is full.
  Status Add(Transaction tx);

  /// Admits a batch; returns the number actually admitted.
  std::size_t AddAll(std::span<const Transaction> txs);

  /// Pops up to n transactions in admission order. Their ids stay in the
  /// dedup set until RemoveCommitted()/Forget() drops them.
  std::vector<Transaction> TakeBatch(std::size_t n);

  /// Drops pending transactions with the given ids and releases their dedup
  /// entries (call when blocks commit).
  void RemoveCommitted(std::span<const Hash256> ids);

  bool Contains(const Hash256& id) const;
  std::size_t PendingCount() const;
  bool Empty() const { return PendingCount() == 0; }

 private:
  struct Pending {
    Transaction tx;
    double admit_us = 0;  ///< lifecycle-clock admission time
  };

  /// Refreshes the depth / oldest-age gauges from the current queue.
  void UpdateGauges() REQUIRES(mutex_);

  const std::size_t capacity_;
  // Stable registry pointers fetched once (see obs/metrics.h) so per-add
  // cost is two relaxed stores, not a registry lookup.
  obs::Gauge* const depth_gauge_;
  obs::Gauge* const oldest_age_gauge_;
  obs::Counter* const duplicate_counter_;
  mutable Mutex mutex_;
  std::deque<Pending> pending_ GUARDED_BY(mutex_);
  /// Ids of pending + taken-but-not-committed transactions.
  std::unordered_set<Hash256> known_ GUARDED_BY(mutex_);
};

}  // namespace nezha
