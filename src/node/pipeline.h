// EpochPipeline: cross-epoch pipelined scheduling over one FullNode.
//
// The batch driver processes epochs strictly one after another: build the
// epoch's blocks, seal, then run all four phases (§III.B) to completion
// before the next epoch may even be assembled. This driver overlaps the
// halves that are provably independent, on two dedicated threads:
//
//   prepare thread: block build/append → seal → validation → concurrent
//                   speculative execution (incrementally feeding the ACG
//                   per confirmed block) → rank division → sorting →
//                   receipts                                  [epoch N+1]
//   commit thread:  group-parallel execution → state root → commit batch
//                   assembly → HANDOFF → durable write tail    [epoch N]
//
// The handoff is the determinism hinge: epoch N+1's prepare half may only
// start once epoch N's commit has (a) applied every state write, (b)
// computed the state root, (c) read the ledger chain tips into the commit
// journal, and (d) installed the in-memory epoch root — i.e. once
// FullNode::AssembleCommit returns. From that point the ledger and the
// state VALUES are final for epoch N, and the only work left (the durable
// write tail: pending-journal put, atomic KV write, dirty clear) touches
// nothing the prepare half reads, through interfaces that are themselves
// thread-safe. Every epoch therefore observes exactly the inputs the batch
// driver would feed it, and the outputs — stage digests, schedules, state
// and receipt roots, commit-batch bytes — are byte-identical
// (tests/pipelined_node_test.cpp holds this across seeds, depths and
// thread counts; docs/PARALLELISM.md gives the full argument).
//
// Durable commits stay strictly in epoch order on the single commit
// thread: epoch N's journal and atomic batch land before epoch N+1's, so
// the crash-recovery contract (node/commit_journal.h) is unchanged.
//
// Backpressure: at most `depth` epochs may be in flight (submitted but not
// committed); Submit blocks when the window is full. The Serial scheme has
// no prepare/commit split — its epochs pass through whole on the commit
// thread, and the pipeline degrades to the batch driver.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "node/full_node.h"

namespace nezha {

struct PipelineOptions {
  /// Maximum epochs in flight (submitted but not committed). Depth 1 still
  /// overlaps epoch N's durable write tail with epoch N+1's prepare half;
  /// deeper windows let Submit run ahead when commits are the bottleneck.
  std::size_t depth = 2;
  /// Feed the Nezha schemes' ACG incrementally, block by block, as the
  /// prepare half executes each confirmed block's slice (cc/nezha/acg.h).
  bool incremental_acg = true;
};

/// Wall-clock accounting of one pipeline run (valid after Drain).
struct PipelineStats {
  std::size_t epochs = 0;
  std::uint64_t backpressure_waits = 0;
  double prepare_us = 0;  ///< Σ prepare-half wall (handoff wait excluded)
  double commit_us = 0;   ///< Σ commit-half wall
  double tail_us = 0;     ///< Σ post-handoff durable tail wall
  /// Σ wall time epoch N's commit half and epoch N+1's prepare half ran
  /// concurrently — the time the pipeline saves over the batch driver.
  double overlap_us = 0;
  /// Per committed epoch, Submit() -> durable commit wall (submission
  /// order). Includes the in-window queueing a deeper pipeline trades for
  /// throughput — the latency the bench's p50/p95 gate watches.
  std::vector<double> epoch_latency_ms;
};

class EpochPipeline {
 public:
  EpochPipeline(FullNode& node, const PipelineOptions& options);
  /// Drains (discarding results) if Drain was never called.
  ~EpochPipeline();

  EpochPipeline(const EpochPipeline&) = delete;
  EpochPipeline& operator=(const EpochPipeline&) = delete;

  /// Feeds one epoch: `chain_txs[c]` is the payload of the block chain c
  /// contributes (empty = no block on that chain). Blocks are built,
  /// appended and sealed on the prepare thread once the previous epoch's
  /// handoff fires — their parent hashes and prev_state_root are exactly
  /// what the batch driver would have produced. Blocks while `depth`
  /// epochs are in flight; returns the pipeline's first error once one is
  /// latched (the epoch is then dropped).
  Status Submit(EpochId epoch,
                std::vector<std::vector<Transaction>> chain_txs);

  /// Closes the input, waits for every submitted epoch, joins the threads,
  /// and returns the per-epoch reports in submission order — or the first
  /// error any epoch hit. Idempotent.
  Result<std::vector<EpochReport>> Drain();

  /// Valid after Drain().
  const PipelineStats& stats() const { return stats_; }

 private:
  struct Work {
    std::uint64_t seq = 0;
    EpochId epoch = 0;
    std::vector<std::vector<Transaction>> chain_txs;
  };
  /// One prepared epoch awaiting commit. `prepared` is empty for the
  /// Serial passthrough, where `batch` rides whole to the commit thread.
  struct Ready {
    std::uint64_t seq = 0;
    std::optional<PreparedEpoch> prepared;
    std::unique_ptr<EpochBatch> serial_batch;
  };
  struct EpochTiming {
    double submit_us = 0;
    double prep_start_us = 0;
    double prep_end_us = 0;
    double commit_start_us = 0;
    double handoff_us = 0;
    double commit_end_us = 0;
  };

  void PrepareLoop();
  void CommitLoop();
  void LatchError(const Status& status);
  /// Marks seq's handoff: epoch seq+1's prepare may start.
  void SignalHandoff(std::uint64_t seq);

  FullNode& node_;
  const PipelineOptions options_;

  Mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<Work> input_ GUARDED_BY(mutex_);
  std::deque<Ready> ready_ GUARDED_BY(mutex_);
  std::vector<EpochReport> reports_ GUARDED_BY(mutex_);
  std::vector<EpochTiming> timings_ GUARDED_BY(mutex_);
  Status error_ GUARDED_BY(mutex_) = Status::Ok();
  std::uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  std::uint64_t committed_ GUARDED_BY(mutex_) = 0;
  /// Count of epochs whose handoff fired; epoch seq may prepare once
  /// handoffs_ >= seq (epoch 0 needs none).
  std::uint64_t handoffs_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
  bool prepare_done_ GUARDED_BY(mutex_) = false;
  bool drained_ = false;

  PipelineStats stats_;
  std::thread prepare_thread_;
  std::thread commit_thread_;
};

}  // namespace nezha
