// DagRiderDeferredExecutor: deferred execution over the BFT DAG substrate.
//
// DAG-Rider's committed sequence arrives in protocol-defined batches — one
// per committed wave anchor (the anchor's newly delivered causal history) —
// which map 1:1 onto execution epochs, exactly like the tree-graph's
// epochs. Replica consistency follows from BFT agreement on the committed
// sequence plus the pipeline's determinism.
#pragma once

#include "consensus/dagrider.h"
#include "node/deferred_executor.h"

namespace nezha {

class DagRiderDeferredExecutor {
 public:
  explicit DagRiderDeferredExecutor(const DeferredExecConfig& config)
      : pipeline_(config) {}

  StateDB& state() { return pipeline_.state(); }
  std::size_t executed_batches() const { return next_batch_; }

  /// Executes every committed batch beyond what has been processed.
  Result<std::vector<EpochReport>> CatchUp(const DagRiderView& view);

 private:
  DeferredExecutionPipeline pipeline_;
  std::size_t next_batch_ = 0;
};

}  // namespace nezha
