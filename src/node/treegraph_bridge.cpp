#include "node/treegraph_bridge.h"

namespace nezha {

Result<std::vector<EpochReport>> TreeGraphDeferredExecutor::CatchUp(
    const TreeGraphView& view) {
  const std::vector<TGEpoch> epochs = view.ConfirmedEpochs();
  std::vector<EpochReport> reports;
  if (epochs.size() < next_epoch_index_) {
    return Status::InvalidArgument(
        "confirmed epochs shrank — not an extension of the executed prefix");
  }
  for (std::size_t i = next_epoch_index_; i < epochs.size(); ++i) {
    std::vector<Transaction> txs;
    for (const TGBlock* block : epochs[i].blocks) {
      txs.insert(txs.end(), block->txs.begin(), block->txs.end());
    }
    auto report = pipeline_.ProcessBatch(txs);
    if (!report.ok()) return report.status();
    report->block_concurrency = epochs[i].blocks.size();
    reports.push_back(std::move(report.value()));
  }
  next_epoch_index_ = epochs.size();
  return reports;
}

}  // namespace nezha
