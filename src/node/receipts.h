// Transaction receipts: the client-visible outcome record of every
// processed transaction.
//
// Under concurrent processing a transaction can end three ways — committed
// (with its commit sequence number), reverted by the contract at execution
// (e.g. a token overdraft), or aborted by concurrency control (an
// unserializable victim). Clients need to distinguish the latter two: a
// reverted transaction is final, while a cc-aborted one can simply be
// resubmitted in a later epoch (the paper's abort semantics).
//
// Each epoch commits to its receipts with a Merkle root (stored in the
// EpochReport next to the state root); individual receipts persist in the
// KV store under "t/<tx id>".
#pragma once

#include <optional>
#include <vector>

#include "cc/scheduler.h"
#include "common/sha256.h"
#include "common/status.h"
#include "common/types.h"
#include "ledger/transaction.h"
#include "storage/kvstore.h"
#include "vm/rwset.h"

namespace nezha {

enum class TxOutcome : std::uint8_t {
  kCommitted = 0,          ///< writes applied at sequence `seq`
  kRevertedAtExecution = 1,///< contract-level revert; final
  kAbortedBySchedule = 2,  ///< unserializable victim; safe to resubmit
};

const char* TxOutcomeName(TxOutcome outcome);

struct Receipt {
  Hash256 tx_id{};
  TxOutcome outcome = TxOutcome::kCommitted;
  EpochId epoch = 0;
  SeqNum seq = kUnassignedSeq;   ///< commit group (committed only)
  std::uint32_t writes = 0;      ///< state cells written (committed only)

  std::string Serialize() const;
  static Result<Receipt> Deserialize(std::string_view data);

  friend bool operator==(const Receipt& a, const Receipt& b) {
    return a.tx_id == b.tx_id && a.outcome == b.outcome &&
           a.epoch == b.epoch && a.seq == b.seq && a.writes == b.writes;
  }
};

/// Builds the receipts for one processed batch, in batch order.
std::vector<Receipt> BuildReceipts(EpochId epoch,
                                   std::span<const Transaction> txs,
                                   std::span<const ReadWriteSet> rwsets,
                                   const Schedule& schedule);

/// Binary Merkle root over the serialized receipts (zero hash when empty).
Hash256 ComputeReceiptRoot(std::span<const Receipt> receipts);

/// KV-backed receipt index: lookup by transaction id.
class ReceiptStore {
 public:
  explicit ReceiptStore(KVStore* kv) : kv_(kv) {}

  Status Put(std::span<const Receipt> receipts);
  Result<Receipt> Get(const Hash256& tx_id) const;

  /// Appends the receipts' KV puts to `batch` without writing — FullNode
  /// folds them into the atomic epoch-commit batch.
  static void AppendTo(WriteBatch& batch, std::span<const Receipt> receipts);

 private:
  static std::string Key(const Hash256& tx_id);
  KVStore* kv_;
};

}  // namespace nezha
