#include "node/state_sync.h"

#include <algorithm>

namespace nezha {

StateSyncServer::StateSyncServer(StateDB& db, std::size_t chunk_size)
    : chunk_size_(chunk_size == 0 ? 1 : chunk_size) {
  const StateSnapshot snapshot = db.MakeSnapshot(0);
  records_.reserve(snapshot.Size());
  for (const auto& [address, value] : snapshot.items()) {
    records_.push_back({Address(address), value});
  }
  std::sort(records_.begin(), records_.end(),
            [](const StateWrite& a, const StateWrite& b) {
              return a.address < b.address;
            });
  for (const StateWrite& record : records_) {
    trie_.Put(StateDB::StateKey(record.address),
              StateDB::EncodeValue(record.value));
  }
  root_ = trie_.RootHash();
}

std::uint64_t StateSyncServer::NumChunks() const {
  if (records_.empty()) return 1;  // one empty terminal chunk
  return (records_.size() + chunk_size_ - 1) / chunk_size_;
}

Result<StateChunk> StateSyncServer::GetChunk(std::uint64_t index) const {
  if (index >= NumChunks()) {
    return Status::OutOfRange("chunk index past the end");
  }
  StateChunk chunk;
  chunk.index = index;
  chunk.root = root_;
  const std::size_t begin = static_cast<std::size_t>(index) * chunk_size_;
  const std::size_t end = std::min(records_.size(), begin + chunk_size_);
  chunk.records.assign(records_.begin() + static_cast<std::ptrdiff_t>(begin),
                       records_.begin() + static_cast<std::ptrdiff_t>(end));
  chunk.last = end == records_.size();
  if (!chunk.records.empty()) {
    chunk.first_proof =
        trie_.GenerateProof(StateDB::StateKey(chunk.records.front().address));
    chunk.last_proof =
        trie_.GenerateProof(StateDB::StateKey(chunk.records.back().address));
  }
  return chunk;
}

Status StateSyncClient::AddChunk(const StateChunk& chunk) {
  if (complete_) return Status::InvalidArgument("sync already complete");
  if (chunk.index != next_index_) {
    return Status::InvalidArgument("chunk out of order");
  }
  if (chunk.root != trusted_root_) {
    return Status::Corruption("chunk served from a different state root");
  }
  if (!chunk.records.empty()) {
    // Boundary checks: the first and last record must prove against the
    // trusted root with exactly the claimed values.
    const auto check = [&](const StateWrite& record,
                           const std::vector<std::string>& proof) -> Status {
      auto proven = MerklePatriciaTrie::VerifyProof(
          trusted_root_, StateDB::StateKey(record.address), proof);
      if (!proven.ok()) {
        return Status::Corruption("boundary proof invalid: " +
                                  proven.status().ToString());
      }
      if (*proven != StateDB::EncodeValue(record.value)) {
        return Status::Corruption("boundary record value mismatch");
      }
      return Status::Ok();
    };
    if (Status s = check(chunk.records.front(), chunk.first_proof); !s.ok()) {
      return s;
    }
    if (Status s = check(chunk.records.back(), chunk.last_proof); !s.ok()) {
      return s;
    }
    // Records must continue strictly ascending across the whole stream.
    Address previous = records_.empty()
                           ? Address(0)
                           : records_.back().address;
    const bool have_previous = !records_.empty();
    for (std::size_t i = 0; i < chunk.records.size(); ++i) {
      const Address current = chunk.records[i].address;
      if ((have_previous || i > 0) && !(previous < current)) {
        return Status::Corruption("records not strictly ascending");
      }
      previous = current;
    }
    records_.insert(records_.end(), chunk.records.begin(),
                    chunk.records.end());
  }
  ++next_index_;
  if (chunk.last) complete_ = true;
  return Status::Ok();
}

Status StateSyncClient::Finish(StateDB& db) {
  if (!complete_) return Status::InvalidArgument("sync not complete");
  // Rebuild the commitment trie from scratch: only a byte-exact state can
  // reproduce the trusted root.
  MerklePatriciaTrie trie;
  for (const StateWrite& record : records_) {
    trie.Put(StateDB::StateKey(record.address),
             StateDB::EncodeValue(record.value));
  }
  if (trie.RootHash() != trusted_root_) {
    return Status::Corruption("rebuilt state root does not match");
  }
  for (const StateWrite& record : records_) {
    db.Set(record.address, record.value);
  }
  return Status::Ok();
}

}  // namespace nezha
