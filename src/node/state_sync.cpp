#include "node/state_sync.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace nezha {

namespace {

// AddChunk's transport-corruption verdict; SyncFrom distinguishes it from
// proof-level failures (which only a lying server can produce and which
// count toward blacklisting).
constexpr std::string_view kChecksumMismatch = "chunk checksum mismatch";

obs::Counter* SyncCounter(const char* name) {
  return obs::Registry().GetCounter(name);
}

}  // namespace

Hash256 StateChunk::ComputeChecksum() const {
  Sha256 hasher;
  std::string header;
  PutFixed64(header, index);
  header.push_back(last ? 1 : 0);
  hasher.Update(header);
  hasher.Update(root.bytes);
  for (const StateWrite& record : records) {
    std::string encoded;
    PutFixed64(encoded, record.address.value);
    PutFixed64(encoded, record.value);
    hasher.Update(encoded);
  }
  for (const auto* proof : {&first_proof, &last_proof}) {
    std::string frame;
    PutVarint64(frame, proof->size());
    hasher.Update(frame);
    for (const std::string& node : *proof) {
      std::string len;
      PutVarint64(len, node.size());
      hasher.Update(len).Update(node);
    }
  }
  return hasher.Finish();
}

StateSyncServer::StateSyncServer(StateDB& db, std::size_t chunk_size)
    : chunk_size_(chunk_size == 0 ? 1 : chunk_size) {
  const StateSnapshot snapshot = db.MakeSnapshot(0);
  records_.reserve(snapshot.Size());
  for (const auto& [address, value] : snapshot.items()) {
    records_.push_back({Address(address), value});
  }
  std::sort(records_.begin(), records_.end(),
            [](const StateWrite& a, const StateWrite& b) {
              return a.address < b.address;
            });
  for (const StateWrite& record : records_) {
    trie_.Put(StateDB::StateKey(record.address),
              StateDB::EncodeValue(record.value));
  }
  root_ = trie_.RootHash();
}

std::uint64_t StateSyncServer::NumChunks() const {
  if (records_.empty()) return 1;  // one empty terminal chunk
  return (records_.size() + chunk_size_ - 1) / chunk_size_;
}

Result<StateChunk> StateSyncServer::GetChunk(std::uint64_t index) const {
  if (index >= NumChunks()) {
    return Status::OutOfRange("chunk index past the end");
  }
  StateChunk chunk;
  chunk.index = index;
  chunk.root = root_;
  const std::size_t begin = static_cast<std::size_t>(index) * chunk_size_;
  const std::size_t end = std::min(records_.size(), begin + chunk_size_);
  chunk.records.assign(records_.begin() + static_cast<std::ptrdiff_t>(begin),
                       records_.begin() + static_cast<std::ptrdiff_t>(end));
  chunk.last = end == records_.size();
  if (!chunk.records.empty()) {
    chunk.first_proof =
        trie_.GenerateProof(StateDB::StateKey(chunk.records.front().address));
    chunk.last_proof =
        trie_.GenerateProof(StateDB::StateKey(chunk.records.back().address));
  }
  chunk.checksum = chunk.ComputeChecksum();

  // Injection site: everything below models what happens to the chunk
  // between an honest server and the client.
  const fault::Hit hit = fault::Check(fault::sites::kSyncServeChunk);
  switch (hit.action) {
    case fault::Action::kNone:
      break;
    case fault::Action::kDrop:
      return Status::Unavailable("fault: chunk dropped in transit");
    case fault::Action::kDelay:
      // Simulated latency in ms; the ChunkSource compares it against the
      // client's timeout — no real sleeping.
      chunk.delay_ms = static_cast<double>(hit.param);
      break;
    case fault::Action::kCorrupt:
      if (!chunk.records.empty()) {
        if (hit.param == 0) {
          // Transport corruption: a record flipped after the checksum was
          // computed. The client detects the mismatch and re-requests.
          chunk.records[chunk.records.size() / 2].value ^= 0x1;
        } else {
          // Malicious server: a boundary record is forged and the checksum
          // recomputed to match, so only the (now stale) boundary proof can
          // expose the lie — this is the blacklist trigger.
          chunk.records.back().value ^= 0x1;
          chunk.checksum = chunk.ComputeChecksum();
        }
      }
      break;
    case fault::Action::kTruncate:
      // Tail records lost in transit, checksum now stale.
      if (chunk.records.size() > 1) {
        chunk.records.resize(chunk.records.size() / 2);
      }
      break;
    case fault::Action::kFail:
    case fault::Action::kCrash:
      return fault::CrashStatus(fault::sites::kSyncServeChunk);
    case fault::Action::kTear:
      break;  // not meaningful for a read path
  }
  return chunk;
}

Result<StateChunk> ServerChunkSource::FetchChunk(std::uint64_t index,
                                                 double timeout_ms) {
  auto chunk = server_.GetChunk(index);
  if (!chunk.ok()) return chunk;
  if (chunk->delay_ms > timeout_ms) {
    return Status::Unavailable("fault: chunk fetch timed out");
  }
  return chunk;
}

Status StateSyncClient::AddChunk(const StateChunk& chunk) {
  if (complete_) return Status::InvalidArgument("sync already complete");
  if (chunk.index != next_index_) {
    return Status::InvalidArgument("chunk out of order");
  }
  // Integrity first: cheap, and catches in-flight damage (bit flips,
  // truncation) without touching the proof machinery.
  if (chunk.checksum != chunk.ComputeChecksum()) {
    return Status::Corruption(std::string(kChecksumMismatch));
  }
  if (chunk.root != trusted_root_) {
    return Status::Corruption("chunk served from a different state root");
  }
  if (!chunk.records.empty()) {
    // Boundary checks: the first and last record must prove against the
    // trusted root with exactly the claimed values.
    const auto check = [&](const StateWrite& record,
                           const std::vector<std::string>& proof) -> Status {
      auto proven = MerklePatriciaTrie::VerifyProof(
          trusted_root_, StateDB::StateKey(record.address), proof);
      if (!proven.ok()) {
        return Status::Corruption("boundary proof invalid: " +
                                  proven.status().ToString());
      }
      if (*proven != StateDB::EncodeValue(record.value)) {
        return Status::Corruption("boundary record value mismatch");
      }
      return Status::Ok();
    };
    if (Status s = check(chunk.records.front(), chunk.first_proof); !s.ok()) {
      return s;
    }
    if (Status s = check(chunk.records.back(), chunk.last_proof); !s.ok()) {
      return s;
    }
    // Records must continue strictly ascending across the whole stream.
    Address previous = records_.empty()
                           ? Address(0)
                           : records_.back().address;
    const bool have_previous = !records_.empty();
    for (std::size_t i = 0; i < chunk.records.size(); ++i) {
      const Address current = chunk.records[i].address;
      if ((have_previous || i > 0) && !(previous < current)) {
        return Status::Corruption("records not strictly ascending");
      }
      previous = current;
    }
    records_.insert(records_.end(), chunk.records.begin(),
                    chunk.records.end());
  }
  ++next_index_;
  if (chunk.last) complete_ = true;
  return Status::Ok();
}

bool StateSyncClient::IsChecksumFailure(const Status& status) {
  return status.code() == StatusCode::kCorruption &&
         std::string_view(status.message()).substr(0, kChecksumMismatch.size())
             == kChecksumMismatch;
}

Status StateSyncClient::Finish(StateDB& db) {
  if (!complete_) return Status::InvalidArgument("sync not complete");
  // Rebuild the commitment trie from scratch: only a byte-exact state can
  // reproduce the trusted root.
  MerklePatriciaTrie trie;
  for (const StateWrite& record : records_) {
    trie.Put(StateDB::StateKey(record.address),
             StateDB::EncodeValue(record.value));
  }
  if (trie.RootHash() != trusted_root_) {
    return Status::Corruption("rebuilt state root does not match");
  }
  for (const StateWrite& record : records_) {
    db.Set(record.address, record.value);
  }
  return Status::Ok();
}

Status StateSyncClient::SyncFrom(std::span<ChunkSource* const> sources,
                                 StateDB& db, const SyncRetryPolicy& policy) {
  if (sources.empty()) {
    return Status::InvalidArgument("no chunk sources");
  }
  stats_ = {};
  Rng rng(policy.seed);
  std::vector<std::size_t> proof_failures(sources.size(), 0);
  std::vector<bool> blacklisted(sources.size(), false);
  std::size_t source_index = 0;

  const auto next_live_source = [&]() -> ChunkSource* {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const std::size_t candidate = (source_index + i) % sources.size();
      if (!blacklisted[candidate]) {
        source_index = candidate;
        return sources[candidate];
      }
    }
    return nullptr;
  };

  const auto blacklist_current = [&] {
    blacklisted[source_index] = true;
    ++stats_.sources_blacklisted;
    SyncCounter("nezha_sync_sources_blacklisted_total")->Inc();
  };

  while (!complete_) {
    const std::uint64_t index = next_index_;
    ChunkSource* source = next_live_source();
    if (source == nullptr) {
      return Status::Unavailable("all sync sources blacklisted");
    }
    // Attempt loop for this one chunk; attempts and backoff reset when the
    // driver moves to a different source mid-chunk (after a blacklist).
    std::size_t attempts = 0;
    double backoff = policy.initial_backoff_ms;
    bool verified = false;
    while (!verified) {
      ++attempts;
      ++stats_.fetch_attempts;
      SyncCounter("nezha_sync_fetch_attempts_total")->Inc();
      Status verdict = Status::Ok();
      auto chunk = source->FetchChunk(index, policy.chunk_timeout_ms);
      if (chunk.ok()) {
        verdict = AddChunk(*chunk);
      } else {
        verdict = chunk.status();
      }
      if (verdict.ok()) {
        verified = true;
        ++stats_.chunks_verified;
        SyncCounter("nezha_sync_chunks_verified_total")->Inc();
        break;
      }
      switch (verdict.code()) {
        case StatusCode::kUnavailable:
          ++stats_.drops;
          SyncCounter("nezha_sync_drops_total")->Inc();
          break;
        case StatusCode::kAborted:
          // An injected server crash; treat like a drop and retry.
          ++stats_.drops;
          SyncCounter("nezha_sync_drops_total")->Inc();
          break;
        case StatusCode::kCorruption:
          if (IsChecksumFailure(verdict)) {
            ++stats_.checksum_failures;
            SyncCounter("nezha_sync_checksum_failures_total")->Inc();
          } else {
            // Proof-level lie: wrong root, forged boundary proof, or a
            // non-ascending stream. Only a dishonest (or broken beyond
            // retrying) server produces these.
            ++stats_.proof_failures;
            SyncCounter("nezha_sync_proof_failures_total")->Inc();
            ++proof_failures[source_index];
            if (proof_failures[source_index] >=
                policy.blacklist_after_proof_failures) {
              blacklist_current();
              source = next_live_source();
              if (source == nullptr) {
                return Status::Unavailable("all sync sources blacklisted");
              }
              attempts = 0;
              backoff = policy.initial_backoff_ms;
              continue;
            }
          }
          break;
        default:
          // InvalidArgument / OutOfRange etc.: a protocol bug, not a
          // transient fault — retrying cannot help.
          return verdict;
      }
      if (attempts >= policy.max_attempts_per_chunk) {
        // This source cannot deliver this chunk; try the next one, or give
        // up when none are left untried.
        blacklist_current();
        source = next_live_source();
        if (source == nullptr) {
          return Status::Unavailable("chunk unfetchable from every source");
        }
        attempts = 0;
        backoff = policy.initial_backoff_ms;
        continue;
      }
      ++stats_.retries;
      SyncCounter("nezha_sync_retries_total")->Inc();
      // Bounded exponential backoff with symmetric jitter; the wait is
      // accounted, never slept, so the whole driver is deterministic.
      const double jittered =
          backoff * (1.0 + policy.jitter * (2.0 * rng.NextDouble() - 1.0));
      stats_.backoff_ms_total += jittered;
      obs::Registry().GetHistogram("nezha_sync_backoff_ms")->Observe(jittered);
      backoff = std::min(backoff * policy.backoff_multiplier,
                         policy.max_backoff_ms);
    }
  }
  return Finish(db);
}

Status StateSyncClient::SyncFrom(ChunkSource& source, StateDB& db,
                                 const SyncRetryPolicy& policy) {
  ChunkSource* const sources[] = {&source};
  return SyncFrom(std::span<ChunkSource* const>(sources), db, policy);
}

}  // namespace nezha
