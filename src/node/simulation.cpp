#include "node/simulation.h"

#include <algorithm>

#include "node/mempool.h"

namespace nezha {
namespace {

double MeanOf(const std::vector<EpochReport>& reports,
              double (*get)(const EpochReport&)) {
  if (reports.empty()) return 0;
  double sum = 0;
  for (const EpochReport& r : reports) sum += get(r);
  return sum / static_cast<double>(reports.size());
}

}  // namespace

std::size_t SimulationSummary::TotalTxs() const {
  std::size_t n = 0;
  for (const auto& r : reports) n += r.txs;
  return n;
}

std::size_t SimulationSummary::TotalCommitted() const {
  std::size_t n = 0;
  for (const auto& r : reports) n += r.committed;
  return n;
}

std::size_t SimulationSummary::TotalAborted() const {
  std::size_t n = 0;
  for (const auto& r : reports) n += r.aborted;
  return n;
}

double SimulationSummary::AbortRate() const {
  const std::size_t total = TotalTxs();
  return total == 0 ? 0
                    : static_cast<double>(TotalAborted()) /
                          static_cast<double>(total);
}

double SimulationSummary::MeanValidateMs() const {
  return MeanOf(reports, [](const EpochReport& r) { return r.validate_ms; });
}
double SimulationSummary::MeanExecuteMs() const {
  return MeanOf(reports, [](const EpochReport& r) { return r.execute_ms; });
}
double SimulationSummary::MeanCcMs() const {
  return MeanOf(reports, [](const EpochReport& r) { return r.cc_ms; });
}
double SimulationSummary::MeanCommitMs() const {
  return MeanOf(reports, [](const EpochReport& r) { return r.commit_ms; });
}
double SimulationSummary::MeanCcCommitMs() const {
  return MeanOf(reports,
                [](const EpochReport& r) { return r.cc_ms + r.commit_ms; });
}
double SimulationSummary::MeanTotalMs() const {
  return MeanOf(reports, [](const EpochReport& r) { return r.TotalMs(); });
}

double SimulationSummary::EffectiveTps(double epoch_interval_s) const {
  if (reports.empty()) return 0;
  double total_time_s = 0;
  for (const auto& r : reports) {
    total_time_s += std::max(epoch_interval_s, r.TotalMs() / 1000.0);
  }
  return total_time_s == 0
             ? 0
             : static_cast<double>(TotalCommitted()) / total_time_s;
}

Result<SimulationSummary> RunSimulation(const SimulationConfig& config) {
  if (config.block_concurrency == 0 || config.block_size == 0) {
    return Status::InvalidArgument("block concurrency/size must be > 0");
  }
  NodeConfig node_config = config.node;
  node_config.max_chains = std::max<ChainId>(
      node_config.max_chains,
      static_cast<ChainId>(config.block_concurrency));

  FullNode node(node_config, nullptr);
  SmallBankWorkload workload(config.workload, config.seed);

  // Genesis: fund the accounts and record the pre-epoch-1 state root.
  SmallBankWorkload::InitAccounts(node.state(), config.workload.num_accounts,
                                  config.initial_savings,
                                  config.initial_checking);
  if (Status s = node.state().Flush(); !s.ok()) return s;
  node.ledger().CommitEpochRoot(0, node.state().RootHash());

  // Blocks draw their payloads through a Mempool rather than straight from
  // the generator, so client-observed latency includes mempool queueing and
  // the pool's depth/age gauges stay live. MakeBatch is one sequential RNG
  // stream and TakeBatch is FIFO, so splitting one big MakeBatch across the
  // epoch's blocks yields byte-identical payloads to the per-block calls.
  const std::size_t epoch_txs = config.block_size * config.block_concurrency;
  Mempool mempool(std::max<std::size_t>(100'000, epoch_txs + 1));

  SimulationSummary summary;
  summary.reports.reserve(config.epochs);
  for (EpochId epoch = 1; epoch <= config.epochs; ++epoch) {
    const std::vector<Transaction> arrivals = workload.MakeBatch(epoch_txs);
    mempool.AddAll(arrivals);
    for (ChainId chain = 0;
         chain < static_cast<ChainId>(config.block_concurrency); ++chain) {
      Block block = node.ledger().BuildBlock(
          chain, epoch, mempool.TakeBatch(config.block_size));
      if (Status s = node.ledger().AppendBlock(std::move(block)); !s.ok()) {
        return s;
      }
    }
    auto batch = node.ledger().SealEpoch(epoch);
    if (!batch.ok()) return batch.status();
    auto report = node.ProcessEpoch(batch.value());
    if (!report.ok()) return report.status();
    summary.reports.push_back(std::move(report.value()));
  }
  return summary;
}

Result<SimulationSummary> RunSimulationPipelined(const SimulationConfig& config,
                                                 std::size_t pipeline_depth,
                                                 bool incremental_acg,
                                                 PipelineStats* pipeline_stats) {
  if (config.block_concurrency == 0 || config.block_size == 0) {
    return Status::InvalidArgument("block concurrency/size must be > 0");
  }
  NodeConfig node_config = config.node;
  node_config.max_chains = std::max<ChainId>(
      node_config.max_chains,
      static_cast<ChainId>(config.block_concurrency));

  FullNode node(node_config, nullptr);
  SmallBankWorkload workload(config.workload, config.seed);

  SmallBankWorkload::InitAccounts(node.state(), config.workload.num_accounts,
                                  config.initial_savings,
                                  config.initial_checking);
  if (Status s = node.state().Flush(); !s.ok()) return s;
  node.ledger().CommitEpochRoot(0, node.state().RootHash());

  // Identical payload stream to RunSimulation: one MakeBatch per epoch,
  // FIFO mempool drain per block. Only the DRIVER differs — blocks are
  // built on the pipeline's prepare thread, after the previous epoch's
  // handoff, so their headers match the batch driver's byte for byte.
  const std::size_t epoch_txs = config.block_size * config.block_concurrency;
  Mempool mempool(std::max<std::size_t>(100'000, epoch_txs + 1));

  PipelineOptions options;
  options.depth = pipeline_depth;
  options.incremental_acg = incremental_acg;
  EpochPipeline pipeline(node, options);
  for (EpochId epoch = 1; epoch <= config.epochs; ++epoch) {
    const std::vector<Transaction> arrivals = workload.MakeBatch(epoch_txs);
    mempool.AddAll(arrivals);
    std::vector<std::vector<Transaction>> chain_txs(config.block_concurrency);
    for (std::size_t chain = 0; chain < config.block_concurrency; ++chain) {
      chain_txs[chain] = mempool.TakeBatch(config.block_size);
    }
    if (Status s = pipeline.Submit(epoch, std::move(chain_txs)); !s.ok()) {
      return s;
    }
  }
  auto reports = pipeline.Drain();
  if (!reports.ok()) return reports.status();
  if (pipeline_stats != nullptr) *pipeline_stats = pipeline.stats();
  SimulationSummary summary;
  summary.reports = std::move(reports.value());
  return summary;
}

}  // namespace nezha
