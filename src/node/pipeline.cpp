#include "node/pipeline.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace nezha {

EpochPipeline::EpochPipeline(FullNode& node, const PipelineOptions& options)
    : node_(node), options_(options) {
  if (obs::MetricsEnabled()) {
    obs::Registry()
        .GetGauge("nezha_pipeline_depth")
        ->Set(static_cast<std::int64_t>(std::max<std::size_t>(1,
                                                              options_.depth)));
  }
  prepare_thread_ = std::thread([this] {
    obs::SetThreadName("pipeline-prepare");
    PrepareLoop();
  });
  commit_thread_ = std::thread([this] {
    obs::SetThreadName("pipeline-commit");
    CommitLoop();
  });
}

EpochPipeline::~EpochPipeline() { (void)Drain(); }

Status EpochPipeline::Submit(EpochId epoch,
                             std::vector<std::vector<Transaction>> chain_txs) {
  const std::size_t depth = std::max<std::size_t>(1, options_.depth);
  MutexLock lock(mutex_);
  if (closed_) return Status::InvalidArgument("pipeline already drained");
  // Backpressure: at most `depth` epochs submitted but not committed.
  bool waited = false;
  while (error_.ok() && next_seq_ - committed_ >= depth) {
    waited = true;
    cv_.wait(mutex_);
  }
  if (waited) {
    ++stats_.backpressure_waits;
    if (obs::MetricsEnabled()) {
      obs::Registry()
          .GetCounter("nezha_pipeline_backpressure_waits_total")
          ->Inc();
    }
  }
  if (!error_.ok()) return error_;
  Work work;
  work.seq = next_seq_++;
  work.epoch = epoch;
  work.chain_txs = std::move(chain_txs);
  input_.push_back(std::move(work));
  timings_.resize(static_cast<std::size_t>(next_seq_));
  timings_.back().submit_us = obs::PhaseTracer::NowUs();
  if (obs::MetricsEnabled()) {
    obs::Registry().GetGauge("nezha_pipeline_inflight")->Add(1);
  }
  cv_.notify_all();
  return Status::Ok();
}

Result<std::vector<EpochReport>> EpochPipeline::Drain() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }
  if (!drained_) {
    drained_ = true;
    if (prepare_thread_.joinable()) prepare_thread_.join();
    if (commit_thread_.joinable()) commit_thread_.join();
    MutexLock lock(mutex_);
    // Close the books: per-epoch wall accounting and the overlap between
    // epoch N's commit half and epoch N+1's prepare half.
    stats_.epochs = reports_.size();
    for (std::size_t k = 0; k < static_cast<std::size_t>(committed_); ++k) {
      const EpochTiming& t = timings_[k];
      stats_.prepare_us += std::max(0.0, t.prep_end_us - t.prep_start_us);
      stats_.commit_us += std::max(0.0, t.commit_end_us - t.commit_start_us);
      stats_.epoch_latency_ms.push_back(
          std::max(0.0, t.commit_end_us - t.submit_us) / 1000.0);
      if (t.handoff_us > 0) {
        stats_.tail_us += std::max(0.0, t.commit_end_us - t.handoff_us);
      }
      if (k + 1 < static_cast<std::size_t>(committed_)) {
        const EpochTiming& n = timings_[k + 1];
        if (n.prep_start_us > 0 && t.handoff_us > 0) {
          const double lo = std::max(t.handoff_us, n.prep_start_us);
          const double hi = std::min(t.commit_end_us, n.prep_end_us);
          if (hi > lo) stats_.overlap_us += hi - lo;
        }
      }
    }
    if (obs::MetricsEnabled() && stats_.overlap_us > 0) {
      obs::Registry()
          .GetCounter("nezha_pipeline_overlap_us_total")
          ->Inc(static_cast<std::uint64_t>(stats_.overlap_us));
    }
  }
  MutexLock lock(mutex_);
  if (!error_.ok()) return error_;
  return std::move(reports_);
}

void EpochPipeline::LatchError(const Status& status) {
  MutexLock lock(mutex_);
  if (error_.ok()) error_ = status;
  // Unblock everyone: Submit callers, the other loop, Drain.
  input_.clear();
  ready_.clear();
  cv_.notify_all();
}

void EpochPipeline::SignalHandoff(std::uint64_t seq) {
  MutexLock lock(mutex_);
  handoffs_ = std::max(handoffs_, seq + 1);
  timings_[static_cast<std::size_t>(seq)].handoff_us =
      obs::PhaseTracer::NowUs();
  cv_.notify_all();
}

void EpochPipeline::PrepareLoop() {
  const bool serial = node_.config().scheme == SchemeKind::kSerial;
  for (;;) {
    Work work;
    {
      MutexLock lock(mutex_);
      // Next input item, in submission order; the handoff gate below is
      // what enforces "epoch N+1 prepares only after epoch N's commit
      // batch is assembled".
      while (error_.ok() && input_.empty() && !closed_) cv_.wait(mutex_);
      if (!error_.ok() || (input_.empty() && closed_)) {
        prepare_done_ = true;
        cv_.notify_all();
        return;
      }
      work = std::move(input_.front());
      input_.pop_front();
      while (error_.ok() && handoffs_ < work.seq) cv_.wait(mutex_);
      if (!error_.ok()) {
        prepare_done_ = true;
        cv_.notify_all();
        return;
      }
      timings_[static_cast<std::size_t>(work.seq)].prep_start_us =
          obs::PhaseTracer::NowUs();
    }

    obs::StageScope stage("pipeline_prepare");
    obs::TraceSpan span("prepare epoch " + std::to_string(work.epoch));
    // Build/append/seal on this side of the handoff: parent hashes and
    // prev_state_root now read exactly the post-previous-epoch ledger the
    // batch driver would have given them.
    Status build = Status::Ok();
    for (ChainId chain = 0;
         chain < static_cast<ChainId>(work.chain_txs.size()); ++chain) {
      if (work.chain_txs[chain].empty()) continue;
      Block block = node_.ledger().BuildBlock(
          chain, work.epoch, std::move(work.chain_txs[chain]));
      if (build = node_.ledger().AppendBlock(std::move(block)); !build.ok()) {
        break;
      }
    }
    if (!build.ok()) {
      LatchError(build);
      continue;
    }
    Result<EpochBatch> sealed = node_.ledger().SealEpoch(work.epoch);
    if (!sealed.ok()) {
      LatchError(sealed.status());
      continue;
    }
    auto batch = std::make_unique<EpochBatch>(std::move(sealed.value()));

    Ready ready;
    ready.seq = work.seq;
    if (serial) {
      // Serial has no split: the whole epoch rides to the commit thread.
      ready.serial_batch = std::move(batch);
    } else {
      Result<PreparedEpoch> prepared =
          node_.PrepareEpoch(*batch, options_.incremental_acg);
      if (!prepared.ok()) {
        LatchError(prepared.status());
        continue;
      }
      ready.prepared = std::move(prepared.value());
      ready.prepared->owned_batch = std::move(batch);
    }
    {
      MutexLock lock(mutex_);
      timings_[static_cast<std::size_t>(work.seq)].prep_end_us =
          obs::PhaseTracer::NowUs();
      ready_.push_back(std::move(ready));
      cv_.notify_all();
    }
  }
}

void EpochPipeline::CommitLoop() {
  for (;;) {
    Ready ready;
    {
      MutexLock lock(mutex_);
      while (error_.ok() && ready_.empty() && !prepare_done_) cv_.wait(mutex_);
      if (!error_.ok() || (ready_.empty() && prepare_done_)) return;
      ready = std::move(ready_.front());
      ready_.pop_front();
      timings_[static_cast<std::size_t>(ready.seq)].commit_start_us =
          obs::PhaseTracer::NowUs();
    }

    obs::StageScope stage("pipeline_commit");
    Result<EpochReport> report = EpochReport{};
    if (ready.serial_batch != nullptr) {
      // Serial passthrough: the full four phases run here; the handoff
      // fires only after the whole epoch committed (no overlap, by
      // construction — serial commits against the live state throughout).
      report = node_.ProcessEpoch(*ready.serial_batch);
      SignalHandoff(ready.seq);
    } else {
      obs::TraceSpan span("commit epoch " +
                          std::to_string(ready.prepared->report.epoch));
      const std::uint64_t seq = ready.seq;
      report = node_.CommitPrepared(std::move(*ready.prepared),
                                    [this, seq] { SignalHandoff(seq); });
    }
    if (!report.ok()) {
      LatchError(report.status());
      return;
    }
    MutexLock lock(mutex_);
    reports_.push_back(std::move(report.value()));
    ++committed_;
    timings_[static_cast<std::size_t>(ready.seq)].commit_end_us =
        obs::PhaseTracer::NowUs();
    if (obs::MetricsEnabled()) {
      obs::Registry().GetGauge("nezha_pipeline_inflight")->Add(-1);
      obs::Registry().GetCounter("nezha_pipeline_epochs_total")->Inc();
    }
    cv_.notify_all();
  }
}

}  // namespace nezha
