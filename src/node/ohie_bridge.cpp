#include "node/ohie_bridge.h"

namespace nezha {

Result<std::vector<EpochReport>> OhieDeferredExecutor::CatchUp(
    const OhieNodeView& view) {
  const std::uint64_t bar = view.ConfirmBar();
  const std::uint64_t W = config_.ranks_per_epoch;
  std::vector<EpochReport> reports;
  if ((next_window_ + 1) * W > bar) return reports;  // nothing completed

  // Confirmed order is sorted by (rank, chain); executed_blocks_ marks the
  // boundary of everything already consumed by previous windows.
  const auto confirmed = view.ConfirmedOrder();
  std::size_t cursor = executed_blocks_;

  while ((next_window_ + 1) * W <= bar) {
    const std::uint64_t window_end = (next_window_ + 1) * W;
    std::vector<Transaction> txs;
    std::size_t blocks_in_window = 0;
    while (cursor < confirmed.size() &&
           confirmed[cursor]->rank < window_end) {
      txs.insert(txs.end(), confirmed[cursor]->txs.begin(),
                 confirmed[cursor]->txs.end());
      ++cursor;
      ++blocks_in_window;
    }
    auto report = pipeline_.ProcessBatch(txs);
    if (!report.ok()) return report.status();
    report->block_concurrency = blocks_in_window;
    reports.push_back(std::move(report.value()));
    ++next_window_;
  }
  executed_blocks_ = cursor;
  return reports;
}

}  // namespace nezha
