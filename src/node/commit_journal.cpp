#include "node/commit_journal.h"

#include "common/bytes.h"

namespace nezha {

namespace {

constexpr char kJournalMagic[4] = {'N', 'Z', 'J', 'L'};
constexpr std::size_t kDigestSize = 32;

void PutHash(std::string& out, const Hash256& hash) {
  out.append(reinterpret_cast<const char*>(hash.bytes.data()), 32);
}

bool GetHash(std::string_view data, std::size_t* offset, Hash256* out) {
  if (*offset + 32 > data.size()) return false;
  for (std::size_t i = 0; i < 32; ++i) {
    out->bytes[i] = static_cast<std::uint8_t>(data[*offset + i]);
  }
  *offset += 32;
  return true;
}

}  // namespace

CommitJournal CommitJournal::Header() const {
  CommitJournal header = *this;
  header.redo.clear();
  return header;
}

std::string CommitJournal::Serialize() const {
  std::string out(kJournalMagic, sizeof(kJournalMagic));
  PutVarint64(out, epoch);
  PutHash(out, state_root);
  PutHash(out, receipt_root);
  PutVarint64(out, block_ids.size());
  for (const Hash256& id : block_ids) PutHash(out, id);
  PutVarint64(out, chain_tips.size());
  for (const auto& [chain, tip] : chain_tips) {
    PutFixed32(out, chain);
    PutHash(out, tip);
  }
  PutVarint64(out, redo.size());
  out += redo;
  const Hash256 digest = Sha256::Digest(out);
  out.append(reinterpret_cast<const char*>(digest.bytes.data()), kDigestSize);
  return out;
}

Result<CommitJournal> CommitJournal::Deserialize(std::string_view data) {
  if (data.size() < sizeof(kJournalMagic) + kDigestSize) {
    return Status::Corruption("commit journal truncated");
  }
  if (data.compare(0, sizeof(kJournalMagic),
                   std::string_view(kJournalMagic, sizeof(kJournalMagic))) !=
      0) {
    return Status::Corruption("commit journal magic mismatch");
  }
  const std::string_view body = data.substr(0, data.size() - kDigestSize);
  const Hash256 digest = Sha256::Digest(body);
  if (std::string_view(reinterpret_cast<const char*>(digest.bytes.data()),
                       kDigestSize) != data.substr(data.size() - kDigestSize)) {
    return Status::Corruption("commit journal checksum mismatch");
  }
  CommitJournal journal;
  std::size_t offset = sizeof(kJournalMagic);
  std::uint64_t count = 0;
  if (!GetVarint64(body, &offset, &journal.epoch) ||
      !GetHash(body, &offset, &journal.state_root) ||
      !GetHash(body, &offset, &journal.receipt_root) ||
      !GetVarint64(body, &offset, &count)) {
    return Status::Corruption("commit journal header does not parse");
  }
  journal.block_ids.resize(count);
  for (Hash256& id : journal.block_ids) {
    if (!GetHash(body, &offset, &id)) {
      return Status::Corruption("commit journal block ids truncated");
    }
  }
  if (!GetVarint64(body, &offset, &count)) {
    return Status::Corruption("commit journal tip count truncated");
  }
  journal.chain_tips.resize(count);
  for (auto& [chain, tip] : journal.chain_tips) {
    if (offset + 4 > body.size()) {
      return Status::Corruption("commit journal chain tips truncated");
    }
    chain = GetFixed32(body.substr(offset));
    offset += 4;
    if (!GetHash(body, &offset, &tip)) {
      return Status::Corruption("commit journal chain tips truncated");
    }
  }
  std::uint64_t redo_size = 0;
  if (!GetVarint64(body, &offset, &redo_size) ||
      offset + redo_size != body.size()) {
    return Status::Corruption("commit journal redo payload truncated");
  }
  journal.redo = std::string(body.substr(offset, redo_size));
  return journal;
}

}  // namespace nezha
