#include "node/receipts.h"

#include "common/bytes.h"

namespace nezha {

const char* TxOutcomeName(TxOutcome outcome) {
  switch (outcome) {
    case TxOutcome::kCommitted:
      return "committed";
    case TxOutcome::kRevertedAtExecution:
      return "reverted";
    case TxOutcome::kAbortedBySchedule:
      return "aborted";
  }
  return "?";
}

std::string Receipt::Serialize() const {
  std::string out;
  out.append(reinterpret_cast<const char*>(tx_id.bytes.data()), 32);
  out.push_back(static_cast<char>(outcome));
  PutVarint64(out, epoch);
  PutVarint64(out, seq);
  PutVarint64(out, writes);
  return out;
}

Result<Receipt> Receipt::Deserialize(std::string_view data) {
  if (data.size() < 33) return Status::Corruption("truncated receipt");
  Receipt receipt;
  for (int i = 0; i < 32; ++i) {
    receipt.tx_id.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(data[static_cast<std::size_t>(i)]);
  }
  const auto outcome = static_cast<std::uint8_t>(data[32]);
  if (outcome > 2) return Status::Corruption("bad receipt outcome");
  receipt.outcome = static_cast<TxOutcome>(outcome);
  std::size_t offset = 33;
  std::uint64_t seq = 0, writes = 0;
  if (!GetVarint64(data, &offset, &receipt.epoch) ||
      !GetVarint64(data, &offset, &seq) ||
      !GetVarint64(data, &offset, &writes) || offset != data.size()) {
    return Status::Corruption("truncated receipt fields");
  }
  receipt.seq = static_cast<SeqNum>(seq);
  receipt.writes = static_cast<std::uint32_t>(writes);
  return receipt;
}

std::vector<Receipt> BuildReceipts(EpochId epoch,
                                   std::span<const Transaction> txs,
                                   std::span<const ReadWriteSet> rwsets,
                                   const Schedule& schedule) {
  std::vector<Receipt> receipts;
  receipts.reserve(txs.size());
  for (TxIndex t = 0; t < txs.size(); ++t) {
    Receipt receipt;
    receipt.tx_id = txs[t].Id();
    receipt.epoch = epoch;
    if (!schedule.aborted[t]) {
      receipt.outcome = TxOutcome::kCommitted;
      receipt.seq = schedule.sequence[t];
      receipt.writes = static_cast<std::uint32_t>(rwsets[t].writes.size());
    } else if (!rwsets[t].ok) {
      receipt.outcome = TxOutcome::kRevertedAtExecution;
    } else {
      receipt.outcome = TxOutcome::kAbortedBySchedule;
    }
    receipts.push_back(receipt);
  }
  return receipts;
}

Hash256 ComputeReceiptRoot(std::span<const Receipt> receipts) {
  if (receipts.empty()) return Hash256{};
  std::vector<Hash256> level;
  level.reserve(receipts.size());
  for (const Receipt& receipt : receipts) {
    level.push_back(Sha256::Digest(receipt.Serialize()));
  }
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    std::vector<Hash256> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      Sha256 hasher;
      hasher.Update(std::span<const std::uint8_t>(level[i].bytes.data(), 32));
      hasher.Update(
          std::span<const std::uint8_t>(level[i + 1].bytes.data(), 32));
      next.push_back(hasher.Finish());
    }
    level = std::move(next);
  }
  return level[0];
}

std::string ReceiptStore::Key(const Hash256& tx_id) {
  std::string key = "t/";
  key.append(reinterpret_cast<const char*>(tx_id.bytes.data()), 32);
  return key;
}

Status ReceiptStore::Put(std::span<const Receipt> receipts) {
  if (kv_ == nullptr) return Status::Ok();  // no persistence attached
  WriteBatch batch;
  AppendTo(batch, receipts);
  return kv_->Write(batch);
}

void ReceiptStore::AppendTo(WriteBatch& batch,
                            std::span<const Receipt> receipts) {
  for (const Receipt& receipt : receipts) {
    batch.Put(Key(receipt.tx_id), receipt.Serialize());
  }
}

Result<Receipt> ReceiptStore::Get(const Hash256& tx_id) const {
  if (kv_ == nullptr) return Status::NotFound("no receipt store attached");
  auto bytes = kv_->Get(Key(tx_id));
  if (!bytes.ok()) return Status::NotFound("no receipt for transaction");
  return Receipt::Deserialize(bytes.value());
}

}  // namespace nezha
