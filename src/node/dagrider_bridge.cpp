#include "node/dagrider_bridge.h"

namespace nezha {

Result<std::vector<EpochReport>> DagRiderDeferredExecutor::CatchUp(
    const DagRiderView& view) {
  std::vector<EpochReport> reports;
  if (view.NumBatches() < next_batch_) {
    return Status::InvalidArgument(
        "committed batches shrank — not an extension of the executed prefix");
  }
  for (std::size_t i = next_batch_; i < view.NumBatches(); ++i) {
    std::vector<Transaction> txs;
    const auto batch = view.Batch(i);
    for (const DagVertex* vertex : batch) {
      txs.insert(txs.end(), vertex->txs.begin(), vertex->txs.end());
    }
    auto report = pipeline_.ProcessBatch(txs);
    if (!report.ok()) return report.status();
    report->block_concurrency = batch.size();
    reports.push_back(std::move(report.value()));
  }
  next_batch_ = view.NumBatches();
  return reports;
}

}  // namespace nezha
