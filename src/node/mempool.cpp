#include "node/mempool.h"

namespace nezha {

Status Mempool::Add(Transaction tx) {
  const Hash256 id = tx.Id();
  MutexLock lock(mutex_);
  if (pending_.size() >= capacity_) {
    return Status::OutOfRange("mempool full");
  }
  if (!known_.insert(id).second) {
    return Status::AlreadyExists("duplicate transaction");
  }
  pending_.push_back(std::move(tx));
  return Status::Ok();
}

std::size_t Mempool::AddAll(std::span<const Transaction> txs) {
  std::size_t admitted = 0;
  for (const Transaction& tx : txs) {
    if (Add(tx).ok()) ++admitted;
  }
  return admitted;
}

std::vector<Transaction> Mempool::TakeBatch(std::size_t n) {
  MutexLock lock(mutex_);
  std::vector<Transaction> batch;
  batch.reserve(std::min(n, pending_.size()));
  while (!pending_.empty() && batch.size() < n) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return batch;
}

void Mempool::RemoveCommitted(std::span<const Hash256> ids) {
  MutexLock lock(mutex_);
  std::unordered_set<Hash256> dropping(ids.begin(), ids.end());
  for (const Hash256& id : dropping) known_.erase(id);
  std::deque<Transaction> keep;
  for (Transaction& tx : pending_) {
    if (!dropping.contains(tx.Id())) keep.push_back(std::move(tx));
  }
  pending_ = std::move(keep);
}

bool Mempool::Contains(const Hash256& id) const {
  MutexLock lock(mutex_);
  return known_.contains(id);
}

std::size_t Mempool::PendingCount() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

}  // namespace nezha
