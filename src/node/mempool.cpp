#include "node/mempool.h"

#include "obs/metrics.h"
#include "obs/tx_lifecycle.h"

namespace nezha {

Mempool::Mempool(std::size_t capacity)
    : capacity_(capacity),
      depth_gauge_(obs::Registry().GetGauge("nezha_mempool_depth")),
      oldest_age_gauge_(
          obs::Registry().GetGauge("nezha_mempool_oldest_age_ms")),
      duplicate_counter_(
          obs::Registry().GetCounter("nezha_mempool_duplicate_total")) {}

void Mempool::UpdateGauges() {
  depth_gauge_->Set(static_cast<std::int64_t>(pending_.size()));
  if (pending_.empty()) {
    oldest_age_gauge_->Set(0);
    return;
  }
  const double age_ms =
      (obs::TxLifecycleTracer::NowUs() - pending_.front().admit_us) / 1000.0;
  oldest_age_gauge_->Set(static_cast<std::int64_t>(age_ms));
}

Status Mempool::Add(Transaction tx) {
  const Hash256 id = tx.Id();
  const std::uint64_t key = LifecycleKey(tx);
  MutexLock lock(mutex_);
  if (pending_.size() >= capacity_) {
    return Status::OutOfRange("mempool full");
  }
  if (!known_.insert(id).second) {
    duplicate_counter_->Inc();
    return Status::AlreadyExists("duplicate transaction");
  }
  const double now_us = obs::TxLifecycleTracer::NowUs();
  pending_.push_back(Pending{std::move(tx), now_us});
  obs::Lifecycle().StampIngress(key, obs::TxStage::kSubmitted);
  UpdateGauges();
  return Status::Ok();
}

std::size_t Mempool::AddAll(std::span<const Transaction> txs) {
  std::size_t admitted = 0;
  for (const Transaction& tx : txs) {
    if (Add(tx).ok()) ++admitted;
  }
  return admitted;
}

std::vector<Transaction> Mempool::TakeBatch(std::size_t n) {
  MutexLock lock(mutex_);
  std::vector<Transaction> batch;
  std::vector<std::uint64_t> keys;
  const std::size_t take = std::min(n, pending_.size());
  batch.reserve(take);
  keys.reserve(take);
  while (!pending_.empty() && batch.size() < n) {
    batch.push_back(std::move(pending_.front().tx));
    keys.push_back(LifecycleKey(batch.back()));
    pending_.pop_front();
  }
  obs::Lifecycle().StampIngressBatch(keys, obs::TxStage::kIncluded);
  UpdateGauges();
  return batch;
}

void Mempool::RemoveCommitted(std::span<const Hash256> ids) {
  MutexLock lock(mutex_);
  std::unordered_set<Hash256> dropping(ids.begin(), ids.end());
  for (const Hash256& id : dropping) known_.erase(id);
  std::deque<Pending> keep;
  for (Pending& entry : pending_) {
    if (dropping.contains(entry.tx.Id())) {
      // Dropped without ever reaching an epoch: forget the ingress stamps.
      obs::Lifecycle().DropIngress(LifecycleKey(entry.tx));
    } else {
      keep.push_back(std::move(entry));
    }
  }
  pending_ = std::move(keep);
  UpdateGauges();
}

bool Mempool::Contains(const Hash256& id) const {
  MutexLock lock(mutex_);
  return known_.contains(id);
}

std::size_t Mempool::PendingCount() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

}  // namespace nezha
