// DeferredExecutionPipeline: the shared post-consensus execution engine
// behind both DAG bridges (OHIE rank windows and Conflux-style epochs).
//
// Feeds one deterministic transaction batch at a time through concurrent
// speculative execution -> the configured scheduler -> grouped commitment,
// deduplicating transactions across batches (first confirmed appearance
// wins, §III.B).
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "cc/scheduler.h"
#include "common/thread_pool.h"
#include "node/full_node.h"
#include "storage/state_db.h"

namespace nezha {

struct DeferredExecConfig {
  SchemeKind scheme = SchemeKind::kNezha;
  std::size_t worker_threads = 0;
  ExecMode exec_mode = ExecMode::kNative;
};

class DeferredExecutionPipeline {
 public:
  explicit DeferredExecutionPipeline(const DeferredExecConfig& config);

  StateDB& state() { return state_; }

  /// Executes one batch (already in its protocol-defined order); duplicates
  /// of transactions seen in earlier batches are dropped before execution.
  Result<EpochReport> ProcessBatch(const std::vector<Transaction>& txs);

 private:
  DeferredExecConfig config_;
  StateDB state_;
  ThreadPool pool_;
  std::unique_ptr<Scheduler> scheduler_;
  EpochId next_epoch_ = 1;
  std::unordered_set<Hash256> seen_txs_;
};

}  // namespace nezha
